package lshjoin

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// openTwice opens the same store twice and fails the test on error.
func openTwice(t *testing.T, dir string) (*Collection, *Collection) {
	t.Helper()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("first Open: %v", err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	return a, b
}

// requireSameCollection checks two collections are observably identical:
// same shape, same vectors, same exact join, and — the strictest check —
// identical seeded estimator draws, which only hold if the bucket
// sequences match entry for entry.
func requireSameCollection(t *testing.T, a, b *Collection) {
	t.Helper()
	if a.N() != b.N() || a.K() != b.K() || a.Tables() != b.Tables() || a.Version() != b.Version() {
		t.Fatalf("shape differs: n=%d/%d k=%d/%d ell=%d/%d v=%d/%d",
			a.N(), b.N(), a.K(), b.K(), a.Tables(), b.Tables(), a.Version(), b.Version())
	}
	for i := 0; i < a.N(); i++ {
		if Cosine(a.Vector(i), b.Vector(i)) < 1-1e-12 {
			t.Fatalf("vector %d differs after reopen", i)
		}
	}
	ea, err := a.Estimator(AlgoLSHSS, WithEstimatorSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimator(AlgoLSHSS, WithEstimatorSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.2, 0.4, 0.6} {
		x, err1 := ea.Estimate(tau)
		y, err2 := eb.Estimate(tau)
		if err1 != nil || err2 != nil {
			t.Fatalf("estimate errs: %v %v", err1, err2)
		}
		if x != y {
			t.Fatalf("seeded estimates diverge at tau=%v: %v vs %v", tau, x, y)
		}
	}
	xa, err := a.ExactJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := b.ExactJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if xa != xb {
		t.Fatalf("exact join differs: %d vs %d", xa, xb)
	}
}

func TestDurableRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	vecs := fixtureVectors(t, 260)

	c, err := New(vecs[:200], Options{Dir: dir, K: 8, Tables: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs[200:230] {
		c.Insert(v)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	a, b := openTwice(t, dir)
	if a.N() != 230 {
		t.Fatalf("reopened N = %d, want 230", a.N())
	}
	if a.K() != 8 || a.Tables() != 2 {
		t.Fatalf("hash params not recovered: k=%d ell=%d", a.K(), a.Tables())
	}
	requireSameCollection(t, a, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Mutations after a reopen must be durable too.
	for _, v := range vecs[230:] {
		a.Insert(v)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	d, e := openTwice(t, dir)
	if d.N() != 260 {
		t.Fatalf("after second cycle N = %d, want 260", d.N())
	}
	requireSameCollection(t, d, e)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// A durable cross join abandoned without Close — the crash case — must
// recover both sides to their last durably published versions and serve
// draw-for-draw identical estimates: same version-vector pair, same N_H,
// same exact join, and the same seeded estimator stream the writer would
// have produced at those versions.
func TestDurableCrossJoinRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "xjoin")
	vecs := fixtureVectors(t, 280)
	left, right := vecs[:120], vecs[120:240]
	taus := []float64{0.3, 0.5, 0.7}

	cj, err := NewCrossJoin(left, right, Options{Dir: dir, Shards: 2, K: 8, Seed: 7, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs[240:260] {
		cj.InsertLeft(v)
	}
	for _, v := range vecs[260:] {
		cj.InsertRight(v)
	}
	wantLV, wantRV := cj.LeftVersions(), cj.RightVersions()
	wantNH := cj.PairsSharingBucket()
	wantExact := cj.ExactJoinSize(0.6)
	// The writer's first estimator draws (seed counter 1, 2, 3) — the stream
	// a recovered join, whose counter restarts at zero, must reproduce.
	wantEst := make([]float64, len(taus))
	for i, tau := range taus {
		if wantEst[i], err = cj.EstimateJoinSize(tau); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the writer is abandoned here, like a killed process. Every
	// published version is already fsynced, so nothing may be lost.

	r, err := OpenCrossJoin(dir, Options{})
	if err != nil {
		t.Fatalf("OpenCrossJoin: %v", err)
	}
	if r.Shards() != 2 || r.opt.K != 8 || r.opt.Seed != 7 {
		t.Fatalf("shape not recovered: s=%d k=%d seed=%d", r.Shards(), r.opt.K, r.opt.Seed)
	}
	if r.LeftN() != 140 || r.RightN() != 140 {
		t.Fatalf("sides recovered to %d/%d vectors, want 140/140", r.LeftN(), r.RightN())
	}
	if gotLV, gotRV := r.LeftVersions(), r.RightVersions(); !slices.Equal(gotLV, wantLV) || !slices.Equal(gotRV, wantRV) {
		t.Fatalf("recovered version pair (%v, %v), want (%v, %v)", gotLV, gotRV, wantLV, wantRV)
	}
	if got := r.PairsSharingBucket(); got != wantNH {
		t.Fatalf("recovered N_H = %d, want %d", got, wantNH)
	}
	if got := r.ExactJoinSize(0.6); got != wantExact {
		t.Fatalf("recovered exact join = %d, want %d", got, wantExact)
	}
	for i, tau := range taus {
		got, err := r.EstimateJoinSize(tau)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantEst[i] {
			t.Fatalf("recovered estimate at tau=%v: %v, want %v (draw stream diverged)", tau, got, wantEst[i])
		}
	}

	// Mutations after recovery persist across a clean Close cycle on both
	// sides.
	r.InsertLeft(vecs[240])
	r.InsertRight(vecs[260])
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	r2, err := OpenCrossJoin(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.LeftN() != 141 || r2.RightN() != 141 {
		t.Fatalf("after second cycle sides hold %d/%d vectors, want 141/141", r2.LeftN(), r2.RightN())
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// Opener error surface, matching Open/OpenSharded.
	if _, err := OpenCrossJoin(filepath.Join(t.TempDir(), "nope"), Options{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenCrossJoin of missing dir: got %v, want ErrNoStore", err)
	}
	if _, err := NewCrossJoin(left, right, Options{Dir: dir}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("NewCrossJoin over existing store: got %v, want ErrStoreExists", err)
	}
	if _, err := OpenCrossJoin(dir, Options{Shards: 3}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("shard-count conflict: got %v, want ErrInvalidOptions", err)
	}
	if _, err := OpenCrossJoin(dir, Options{Tables: 2}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Tables=2 against a cross store: got %v, want ErrInvalidOptions", err)
	}
}

// Options.CheckpointBytes must reach every store a constructor or opener
// touches — single, sharded and both cross-join sides.
func TestCheckpointBytesRoundtrip(t *testing.T) {
	vecs := fixtureVectors(t, 64)
	const threshold = 1 << 12

	dir := filepath.Join(t.TempDir(), "plain")
	c, err := New(vecs, Options{Dir: dir, CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.store.CheckpointBytes(); got != threshold {
		t.Fatalf("New store threshold %d, want %d", got, threshold)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c, err = Open(dir, Options{CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.store.CheckpointBytes(); got != threshold {
		t.Fatalf("Open store threshold %d, want %d", got, threshold)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	sdir := filepath.Join(t.TempDir(), "group")
	sc, err := NewSharded(vecs, Options{Dir: sdir, Shards: 2, CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err = OpenSharded(sdir, Options{CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range sc.stores {
		if got := st.CheckpointBytes(); got != threshold {
			t.Fatalf("sharded store %d threshold %d, want %d", s, got, threshold)
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	xdir := filepath.Join(t.TempDir(), "xjoin")
	cj, err := NewCrossJoin(vecs[:32], vecs[32:], Options{Dir: xdir, Shards: 2, CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if err := cj.Close(); err != nil {
		t.Fatal(err)
	}
	cj, err = OpenCrossJoin(xdir, Options{CheckpointBytes: threshold})
	if err != nil {
		t.Fatal(err)
	}
	for s := range cj.leftStores {
		if got := cj.leftStores[s].CheckpointBytes(); got != threshold {
			t.Fatalf("cross left store %d threshold %d, want %d", s, got, threshold)
		}
		if got := cj.rightStores[s].CheckpointBytes(); got != threshold {
			t.Fatalf("cross right store %d threshold %d, want %d", s, got, threshold)
		}
	}
	if err := cj.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nowhere"), Options{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("Open of missing dir: got %v, want ErrNoStore", err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	vecs := fixtureVectors(t, 32)
	c, err := New(vecs, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(vecs, Options{Dir: dir}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("New over existing store: got %v, want ErrStoreExists", err)
	}

	// Flip a byte in the middle of the manifest: recovery must refuse, not guess.
	manifest := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(manifest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptStore) {
		t.Errorf("Open of corrupted store: got %v, want ErrCorruptStore", err)
	}
}

func TestDurableOpenOptionConflicts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	c, err := New(fixtureVectors(t, 32), Options{Dir: dir, K: 8, Tables: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	conflicts := []struct {
		name string
		opt  Options
	}{
		{"k", Options{K: 9}},
		{"tables", Options{Tables: 3}},
		{"seed", Options{Seed: 6}},
		{"measure", Options{Measure: JaccardSimilarity}},
	}
	for _, tc := range conflicts {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(dir, tc.opt); !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("got %v, want ErrInvalidOptions", err)
			}
		})
	}

	// Asserting the true stored values is fine, and runtime options pass through.
	got, err := Open(dir, Options{K: 8, Tables: 2, Seed: 5, PublishEvery: 4})
	if err != nil {
		t.Fatalf("matching assertion rejected: %v", err)
	}
	if got.opt.PublishEvery != 4 {
		t.Errorf("PublishEvery not honored: %d", got.opt.PublishEvery)
	}
	if err := got.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableShardedRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "group")
	vecs := fixtureVectors(t, 300)

	c, err := NewSharded(vecs[:240], Options{Dir: dir, Shards: 3, K: 8, Tables: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sharded ids pack (shard, local); remember the ids Insert hands out so
	// we can check the same vectors come back after recovery.
	insertedIDs := make([]int, 0, 60)
	for _, v := range vecs[240:] {
		insertedIDs = append(insertedIDs, c.Insert(v))
	}
	wantExact, err := c.ExactJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := OpenSharded(dir, Options{Shards: 4}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("shard-count conflict: got %v, want ErrInvalidOptions", err)
	}
	if _, err := OpenSharded(filepath.Join(t.TempDir(), "nope"), Options{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenSharded of missing dir: got %v, want ErrNoStore", err)
	}
	if _, err := NewSharded(vecs[:240], Options{Dir: dir, Shards: 3}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("NewSharded over existing group: got %v, want ErrStoreExists", err)
	}

	r, err := OpenSharded(dir, Options{})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if r.Shards() != 3 || r.K() != 8 || r.Tables() != 2 {
		t.Fatalf("group shape not recovered: s=%d k=%d ell=%d", r.Shards(), r.K(), r.Tables())
	}
	if r.N() != 300 {
		t.Fatalf("reopened N = %d, want 300", r.N())
	}
	for j, id := range insertedIDs {
		if Cosine(r.Vector(id), vecs[240+j]) < 1-1e-12 {
			t.Fatalf("vector id %d differs after reopen", id)
		}
	}
	gotExact, err := r.ExactJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gotExact != wantExact {
		t.Fatalf("exact join after reopen: %d, want %d", gotExact, wantExact)
	}
	for _, q := range []int{3, 77, 141} {
		hits := r.SearchSimilar(vecs[q], 0.7)
		found := false
		for _, h := range hits {
			found = found || Cosine(r.Vector(h), vecs[q]) >= 1-1e-12
		}
		if !found {
			t.Fatalf("query %d does not find itself after reopen", q)
		}
	}

	// Mutations after reopen persist across another cycle.
	extra, err := GenerateDataset(DatasetDBLP, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	r.InsertBatch(extra)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenSharded(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.N() != 320 {
		t.Fatalf("after second cycle N = %d, want 320", r2.N())
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}
