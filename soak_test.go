package lshjoin

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPerInsertPublishSoak is the public-layer soak for incremental snapshot
// publication: a writer streams single-vector inserts into a Collection with
// PublishEvery=1 (one Fenwick-merged version per insert) while concurrent
// readers run Estimate, SearchSimilar and ExactJoinSize against whatever
// version they observe. Run under -race (the CI race job does); the
// assertions check that every observed version is internally consistent:
//
//   - Version, N and PairsSharingBucket (N_H) only ever move forward —
//     inserts never remove pairs, so any decrease means a reader saw a
//     half-published or regressed version.
//   - ExactJoinSize at a fixed τ is non-decreasing for the same reason.
//   - Estimates stay within [0, C(n,2)] for the n the reader observed after
//     the estimate (N only grows, so the bound is valid for the estimator's
//     own version too).
//   - SearchSimilar ids always fall inside the collection observed after the
//     call.
func TestPerInsertPublishSoak(t *testing.T) {
	const base, extra = 400, 250
	vecs := fixtureVectors(t, base+extra)
	coll, err := New(vecs[:base], Options{K: 12, Seed: 91, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if coll.Version() != 1 {
		t.Fatalf("fresh version = %d", coll.Version())
	}

	var writerWg, wg sync.WaitGroup
	stop := make(chan struct{})
	var estimates, searches, exacts atomic.Int64

	writerWg.Add(1)
	go func() { // writer: one published version per insert
		defer writerWg.Done()
		for _, v := range vecs[base:] {
			coll.Insert(v)
		}
	}()

	// Readers run until told to stop — past the end of the insert stream if
	// needed, so every reader kind gets iterations in even on one core.
	reader := func(step func(i int) bool) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if !step(i) {
				return
			}
		}
	}

	// Estimator readers: construct a snapshot-bound estimator per iteration
	// (the per-insert-publication serving pattern) and sanity-check the
	// estimate against the pair-count bound of the version they saw.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go reader(func(i int) bool {
			est, err := coll.Estimator(AlgoLSHSS,
				WithEstimatorSeed(uint64(93+i)),
				WithSampleBudget(200, 200))
			if err != nil {
				t.Errorf("estimator: %v", err)
				return false
			}
			got, err := est.Estimate(0.8)
			if err != nil {
				t.Errorf("estimate: %v", err)
				return false
			}
			n := int64(coll.N()) // ≥ the estimator's version size
			if got < 0 || got > float64(n*(n-1)/2) {
				t.Errorf("estimate %v outside [0, C(%d,2)]", got, n)
				return false
			}
			estimates.Add(1)
			return true
		})
	}

	// Search reader: candidate ids must exist in the collection.
	wg.Add(1)
	go reader(func(i int) bool {
		ids := coll.SearchSimilar(vecs[i%base], 0.5)
		n := coll.N()
		for _, id := range ids {
			if id < 0 || id >= n {
				t.Errorf("search id %d outside collection of %d", id, n)
				return false
			}
		}
		searches.Add(1)
		return true
	})

	// Monotonicity reader: version, size, N_H and the exact join size at a
	// fixed τ can only grow while inserts stream in.
	var lastVer uint64
	var lastN int
	var lastNH, lastJoin int64
	wg.Add(1)
	go reader(func(i int) bool {
		ver, n, nh := coll.Version(), coll.N(), coll.PairsSharingBucket()
		join, err := coll.ExactJoinSize(0.7)
		if err != nil {
			t.Errorf("exact join: %v", err)
			return false
		}
		if ver < lastVer || n < lastN || nh < lastNH || join < lastJoin {
			t.Errorf("regression: ver %d→%d n %d→%d nh %d→%d join %d→%d",
				lastVer, ver, lastN, n, lastNH, nh, lastJoin, join)
			return false
		}
		lastVer, lastN, lastNH, lastJoin = ver, n, nh, join
		exacts.Add(1)
		return true
	})

	writerWg.Wait()
	// Let every reader kind complete at least one iteration against the
	// converged collection before shutting the soak down.
	deadline := time.Now().Add(10 * time.Second)
	for estimates.Load() == 0 || searches.Load() == 0 || exacts.Load() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Per-insert policy: every insert published, nothing left pending — the
	// final version must already reflect all vectors without a publish-on-read.
	if n := coll.N(); n != base+extra {
		t.Fatalf("final N = %d, want %d", n, base+extra)
	}
	if v := coll.Version(); v != uint64(1+extra) {
		t.Fatalf("final version = %d, want %d (one per insert)", v, 1+extra)
	}
	if estimates.Load() == 0 || searches.Load() == 0 || exacts.Load() == 0 {
		t.Fatalf("a reader never completed an iteration: est=%d search=%d exact=%d",
			estimates.Load(), searches.Load(), exacts.Load())
	}
	// The converged collection answers exactly like a freshly built one.
	fresh, err := New(vecs, Options{K: 12, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	wantJoin, _ := fresh.ExactJoinSize(0.7)
	gotJoin, _ := coll.ExactJoinSize(0.7)
	if wantJoin != gotJoin {
		t.Fatalf("exact join after soak %d, fresh build %d", gotJoin, wantJoin)
	}
	if fresh.PairsSharingBucket() != coll.PairsSharingBucket() {
		t.Fatalf("N_H after soak %d, fresh build %d",
			coll.PairsSharingBucket(), fresh.PairsSharingBucket())
	}
}

// TestDurableCloseOpenSoak is the disk-backed variant of the soak above:
// several concurrent phases — a writer streaming per-insert publishes while
// estimator, search and monotonicity readers hammer the same collection —
// separated by full Close/Open cycles against one on-disk store. Run under
// -race (the CI race job does). Across every cycle boundary the recovered
// collection must resume exactly where the closed one stopped: version and
// N carry over (and only ever grow), hashing options come back from disk,
// and estimates stay inside [0, C(n,2)] in every phase. The converged store
// must answer exactly like a fresh in-memory build of the same vectors.
func TestDurableCloseOpenSoak(t *testing.T) {
	const base, perCycle, cycles = 300, 80, 4
	vecs := fixtureVectors(t, base+perCycle*cycles)
	dir := filepath.Join(t.TempDir(), "store")

	coll, err := New(vecs[:base], Options{Dir: dir, K: 10, Seed: 7, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastVer uint64
	lastN := base

	for cyc := 0; cyc < cycles; cyc++ {
		if cyc > 0 {
			coll, err = Open(dir, Options{PublishEvery: 1})
			if err != nil {
				t.Fatalf("cycle %d: Open: %v", cyc, err)
			}
			if coll.Version() < lastVer || coll.N() != lastN {
				t.Fatalf("cycle %d: reopened at version %d (last %d), N %d (last %d)",
					cyc, coll.Version(), lastVer, coll.N(), lastN)
			}
			if coll.K() != 10 || coll.Tables() != 1 {
				t.Fatalf("cycle %d: hash params not recovered: k=%d ell=%d", cyc, coll.K(), coll.Tables())
			}
		}
		c := coll
		chunk := vecs[base+cyc*perCycle : base+(cyc+1)*perCycle]

		var writerWg, wg sync.WaitGroup
		stop := make(chan struct{})
		var estimates, searches atomic.Int64

		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for _, v := range chunk {
				c.Insert(v)
			}
		}()

		reader := func(step func(i int) bool) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if !step(i) {
					return
				}
			}
		}

		wg.Add(1)
		go reader(func(i int) bool {
			est, err := c.Estimator(AlgoLSHSS,
				WithEstimatorSeed(uint64(1000*cyc+i)),
				WithSampleBudget(100, 100))
			if err != nil {
				t.Errorf("cycle %d estimator: %v", cyc, err)
				return false
			}
			got, err := est.Estimate(0.8)
			if err != nil {
				t.Errorf("cycle %d estimate: %v", cyc, err)
				return false
			}
			n := int64(c.N())
			if got < 0 || got > float64(n*(n-1)/2) {
				t.Errorf("cycle %d: estimate %v outside [0, C(%d,2)]", cyc, got, n)
				return false
			}
			estimates.Add(1)
			return true
		})

		var phaseVer uint64
		var phaseN int
		wg.Add(1)
		go reader(func(i int) bool {
			ver, n := c.Version(), c.N()
			if ver < phaseVer || n < phaseN {
				t.Errorf("cycle %d: regression ver %d→%d n %d→%d", cyc, phaseVer, ver, phaseN, n)
				return false
			}
			phaseVer, phaseN = ver, n
			ids := c.SearchSimilar(vecs[i%base], 0.5)
			for _, id := range ids {
				if id < 0 || id >= n+len(chunk) {
					t.Errorf("cycle %d: search id %d out of range", cyc, id)
					return false
				}
			}
			searches.Add(1)
			return true
		})

		writerWg.Wait()
		deadline := time.Now().Add(10 * time.Second)
		for estimates.Load() == 0 || searches.Load() == 0 {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
		if estimates.Load() == 0 || searches.Load() == 0 {
			t.Fatalf("cycle %d: a reader never completed: est=%d search=%d",
				cyc, estimates.Load(), searches.Load())
		}

		lastVer, lastN = coll.Version(), coll.N()
		if lastN != base+(cyc+1)*perCycle {
			t.Fatalf("cycle %d: N = %d, want %d", cyc, lastN, base+(cyc+1)*perCycle)
		}
		if err := coll.Close(); err != nil {
			t.Fatalf("cycle %d: Close: %v", cyc, err)
		}
	}

	final, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.N() != base+cycles*perCycle || final.Version() < lastVer {
		t.Fatalf("final store: N=%d version=%d (want N=%d, version ≥ %d)",
			final.N(), final.Version(), base+cycles*perCycle, lastVer)
	}
	fresh, err := New(vecs, Options{K: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantJoin, _ := fresh.ExactJoinSize(0.7)
	gotJoin, _ := final.ExactJoinSize(0.7)
	if wantJoin != gotJoin {
		t.Fatalf("exact join after durable soak %d, fresh build %d", gotJoin, wantJoin)
	}
	if fresh.PairsSharingBucket() != final.PairsSharingBucket() {
		t.Fatalf("N_H after durable soak %d, fresh build %d",
			final.PairsSharingBucket(), fresh.PairsSharingBucket())
	}
}
