// Command vsjest estimates the similarity self-join size of a vector dataset
// at one or more thresholds, optionally comparing against the exact answer.
//
// Usage:
//
//	vsjest -in dblp.vsjv -tau 0.5,0.7,0.9 -algo lsh-ss -reps 10 -exact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lshjoin"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset file from vsjgen (required)")
		tauList = flag.String("tau", "0.5,0.7,0.9", "comma-separated thresholds")
		algo    = flag.String("algo", string(lshjoin.AlgoLSHSS), "algorithm: "+algoList())
		k       = flag.Int("k", 20, "LSH hash functions per table")
		tables  = flag.Int("tables", 1, "LSH tables ℓ (median/virtual need > 1)")
		seed    = flag.Uint64("seed", 1, "hashing/sampling seed")
		reps    = flag.Int("reps", 5, "estimates per threshold (reports mean)")
		exact   = flag.Bool("exact", false, "also compute the exact join size")
		jaccard = flag.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
	)
	flag.Parse()
	if err := run(*in, *tauList, *algo, *k, *tables, *seed, *reps, *exact, *jaccard); err != nil {
		fmt.Fprintln(os.Stderr, "vsjest:", err)
		os.Exit(1)
	}
}

func algoList() string {
	names := make([]string, 0)
	for _, a := range lshjoin.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, " | ")
}

func run(in, tauList, algo string, k, tables int, seed uint64, reps int, exact, jaccard bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be ≥ 1")
	}
	taus, err := parseTaus(tauList)
	if err != nil {
		return err
	}
	vecs, err := lshjoin.LoadVectors(in)
	if err != nil {
		return err
	}
	opt := lshjoin.Options{K: k, Tables: tables, Seed: seed}
	if jaccard {
		opt.Measure = lshjoin.JaccardSimilarity
	}
	t0 := time.Now()
	coll, err := lshjoin.New(vecs, opt)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d vectors (k=%d, ℓ=%d) in %v; index ≈ %.1f MB, N_H = %d\n",
		coll.N(), coll.K(), coll.Tables(), time.Since(t0).Round(time.Millisecond),
		float64(coll.IndexBytes())/(1<<20), coll.PairsSharingBucket())
	est, err := coll.Estimator(lshjoin.Algorithm(algo), lshjoin.WithEstimatorSeed(seed+1))
	if err != nil {
		return err
	}
	for _, tau := range taus {
		var sum float64
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			v, err := est.Estimate(tau)
			if err != nil {
				return err
			}
			sum += v
		}
		per := time.Since(t0) / time.Duration(reps)
		line := fmt.Sprintf("τ=%.2f  %s ≈ %.0f  (%v/estimate, mean of %d)", tau, est.Name(), sum/float64(reps), per.Round(time.Microsecond), reps)
		if exact {
			t1 := time.Now()
			truth, err := coll.ExactJoinSize(tau)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("  exact = %d (%v)", truth, time.Since(t1).Round(time.Millisecond))
		}
		fmt.Println(line)
	}
	return nil
}

func parseTaus(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thresholds given")
	}
	return out, nil
}
