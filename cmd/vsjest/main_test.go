package main

import "testing"

func TestParseTaus(t *testing.T) {
	got, err := parseTaus("0.5, 0.7 ,0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.5 || got[1] != 0.7 || got[2] != 0.9 {
		t.Errorf("parseTaus = %v", got)
	}
	if _, err := parseTaus("0.5,abc"); err == nil {
		t.Error("garbage threshold accepted")
	}
	if _, err := parseTaus(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "0.5", "lsh-ss", 20, 1, 1, 5, false, false); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run("x.vsjv", "0.5", "lsh-ss", 20, 1, 1, 0, false, false); err == nil {
		t.Error("zero reps accepted")
	}
	if err := run("/nonexistent/file.vsjv", "0.5", "lsh-ss", 20, 1, 1, 5, false, false); err == nil {
		t.Error("missing file accepted")
	}
}
