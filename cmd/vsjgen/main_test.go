package main

import (
	"path/filepath"
	"testing"

	"lshjoin"
)

func TestRunValidation(t *testing.T) {
	if err := run("dblp", 10, 1, ""); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("bogus", 10, 1, filepath.Join(t.TempDir(), "x.vsjv")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.vsjv")
	if err := run("dblp", 50, 3, path); err != nil {
		t.Fatal(err)
	}
	vecs, err := lshjoin.LoadVectors(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 50 {
		t.Errorf("loaded %d vectors, want 50", len(vecs))
	}
}
