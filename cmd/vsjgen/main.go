// Command vsjgen generates a synthetic vector dataset (one of the paper's
// three corpus shapes) and writes it in the lshjoin binary format.
//
// Usage:
//
//	vsjgen -kind dblp -n 20000 -seed 42 -out dblp.vsjv
package main

import (
	"flag"
	"fmt"
	"os"

	"lshjoin"
)

func main() {
	var (
		kind = flag.String("kind", "dblp", "dataset kind: dblp | nyt | pubmed")
		n    = flag.Int("n", 20000, "number of vectors")
		seed = flag.Uint64("seed", 42, "generator seed")
		out  = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if err := run(*kind, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "vsjgen:", err)
		os.Exit(1)
	}
}

func run(kind string, n int, seed uint64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetKind(kind), n, seed)
	if err != nil {
		return err
	}
	if err := lshjoin.SaveVectors(out, vecs); err != nil {
		return err
	}
	k, err := lshjoin.RecommendedK(lshjoin.DatasetKind(kind))
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d %s vectors to %s (recommended LSH k: %d)\n", len(vecs), kind, out, k)
	return nil
}
