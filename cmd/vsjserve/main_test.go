package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lshjoin"
)

// startShards runs S in-process shard servers via runServe on free loopback
// ports and returns the comma-joined address list.
func startShards(t *testing.T, S int) string {
	t.Helper()
	addrs := make([]string, S)
	for s := 0; s < S; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		ln.Close() // runServe re-listens on the probed address
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func(addr string) {
			done <- runServe([]string{"-addr", addr, "-k", "6", "-tables", "2", "-seed", "5"},
				os.Stderr, stop)
		}(addrs[s])
		t.Cleanup(func() {
			close(stop)
			if err := <-done; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	// Wait for every listener to come up.
	for _, addr := range addrs {
		for i := 0; ; i++ {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				conn.Close()
				break
			}
			if i > 100 {
				t.Fatalf("shard %s never came up: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return strings.Join(addrs, ",")
}

func TestServeCoordinateLoadgen(t *testing.T) {
	shards := startShards(t, 2)

	var pre strings.Builder
	out := filepath.Join(t.TempDir(), "bench.json")
	err := runLoadgen([]string{
		"-shards", shards, "-n", "400", "-duration", "300ms", "-workers", "2",
		"-mix", "estimate=1,insert=4,search=2", "-out", out,
	}, &pre)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, pre.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bench serveBench
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Shards != 2 || bench.Preload.Vectors != 400 || len(bench.Ops) == 0 {
		t.Fatalf("bench report: %+v", bench)
	}
	for name, st := range bench.Ops {
		if st.Count <= 0 || st.OpsPerSec <= 0 || st.P99Ms < st.P50Ms {
			t.Fatalf("op %s stats: %+v", name, st)
		}
	}

	var co strings.Builder
	err = runCoordinate([]string{
		"-shards", shards, "-tau", "0.8", "-reps", "2", "-exact", "-verify",
		"-estimator-seed", "41",
	}, &co)
	if err != nil {
		t.Fatalf("coordinate: %v\n%s", err, co.String())
	}
	if !strings.Contains(co.String(), "sampling verified") || !strings.Contains(co.String(), "exact = ") {
		t.Fatalf("coordinate output:\n%s", co.String())
	}

	// A fresh coordinator over the grown corpus still estimates (the cache
	// starts cold and the workload-inserted vectors are all visible).
	rem, err := lshjoin.Connect(strings.Split(shards, ","), lshjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	n, err := rem.N()
	if err != nil {
		t.Fatal(err)
	}
	if n < 400 {
		t.Fatalf("n = %d after preloading 400", n)
	}
	est, err := rem.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(91))
	if err != nil {
		t.Fatal(err)
	}
	v, err := est.Estimate(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if max := float64(n) * float64(n-1) / 2; v < 0 || v > max {
		t.Fatalf("estimate %v outside [0, %v]", v, max)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseShards(""); err == nil {
		t.Error("empty -shards accepted")
	}
	if addrs, err := parseShards("a:1, b:2 ,"); err != nil || len(addrs) != 2 {
		t.Errorf("parseShards: %v %v", addrs, err)
	}
	if _, err := parseMix("estimate=1,bogus=2"); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := parseMix("estimate"); err == nil {
		t.Error("weightless entry accepted")
	}
	m, err := parseMix("estimate=2,search=0")
	if err != nil || m["estimate"] != 2 || m["search"] != 0 || m["insert"] != 0 {
		t.Errorf("parseMix: %v %v", m, err)
	}
	if _, err := parseTaus("0.5,x"); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestRunServeDurableDir(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 2; round++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- runServe([]string{"-addr", addr, "-k", "6", "-seed", "5", "-dir", dir}, os.Stderr, stop)
		}()
		var rem *lshjoin.RemoteCollection
		for i := 0; ; i++ {
			rem, err = lshjoin.Connect([]string{addr}, lshjoin.Options{})
			if err == nil {
				break
			}
			if i > 100 {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if round == 0 {
			vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 32, 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rem.InsertBatch(vecs); err != nil {
				t.Fatal(err)
			}
		}
		n, err := rem.N()
		if err != nil {
			t.Fatal(err)
		}
		if n != 32 {
			t.Fatalf("round %d: n = %d, want 32", round, n)
		}
		rem.Close()
		close(stop)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
