// Command vsjserve runs the network shard serving layer: shard servers
// owning one LSH index each, and a coordinator running the paper's
// estimators over them — bit-equal to the in-process sharded collection.
//
// Usage:
//
//	vsjserve serve -addr :7801 -k 20 -tables 1 -seed 1 [-dir shard0/] [-jaccard]
//	vsjserve coordinate -shards host:7801,host:7802 -tau 0.5,0.8 -algo lsh-ss [-exact] [-verify]
//	vsjserve loadgen -shards host:7801,host:7802 -n 20000 -duration 10s -workers 4 [-out BENCH_serve.json]
//
// serve owns one shard; run S of them (one per shard) and hand all S
// addresses to coordinate or loadgen. With -dir the shard is durable:
// every version published while serving persists, and restarting on the
// same directory recovers it. loadgen preloads -n dataset vectors through
// the coordinator, then drives a mixed estimate/insert/search workload and
// reports throughput and latency percentiles (JSON with -out; the
// committed BENCH_serve.json baseline comes from this mode).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lshjoin"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vsjserve serve|coordinate|loadgen [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:], os.Stdout, nil)
	case "coordinate":
		err = runCoordinate(os.Args[2:], os.Stdout)
	case "loadgen":
		err = runLoadgen(os.Args[2:], os.Stdout)
	default:
		err = fmt.Errorf("unknown mode %q (serve|coordinate|loadgen)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsjserve:", err)
		os.Exit(1)
	}
}

// runServe starts one shard server and blocks until SIGINT/SIGTERM (or a
// close of the test-supplied stop channel), then checkpoints and exits.
func runServe(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7801", "listen address")
		k       = fs.Int("k", 20, "LSH hash functions per table")
		tables  = fs.Int("tables", 1, "LSH tables ℓ")
		seed    = fs.Uint64("seed", 1, "hashing seed (must match across shards)")
		jaccard = fs.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
		dir     = fs.String("dir", "", "durable store directory (created or recovered)")
		publish = fs.Int("publish-every", 0, "publish a version every N ingested vectors (0: on demand)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := lshjoin.Options{K: *k, Tables: *tables, Seed: *seed, Dir: *dir, PublishEvery: *publish}
	if *jaccard {
		opt.Measure = lshjoin.JaccardSimilarity
	}
	srv, err := lshjoin.NewShardServer(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "serving shard on %s (k=%d, ℓ=%d, n=%d)\n", ln.Addr(), srv.K(), srv.Tables(), srv.N())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-stop:
	case err := <-done:
		srv.Close()
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	return <-done
}

// runCoordinate connects to the shard servers and answers estimates over
// the distributed corpus.
func runCoordinate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	var (
		shards  = fs.String("shards", "", "comma-separated shard server addresses (required)")
		tauList = fs.String("tau", "0.5,0.7,0.9", "comma-separated thresholds")
		algo    = fs.String("algo", string(lshjoin.AlgoLSHSS), "estimation algorithm")
		reps    = fs.Int("reps", 5, "estimates per threshold (reports mean)")
		seed    = fs.Uint64("estimator-seed", 0, "estimator seed (0: fresh randomness per estimator)")
		exact   = fs.Bool("exact", false, "also compute the exact join size over the fetched corpus")
		verify  = fs.Bool("verify", false, "cross-check server-side sampling against local reconstruction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs, err := parseShards(*shards)
	if err != nil {
		return err
	}
	taus, err := parseTaus(*tauList)
	if err != nil {
		return err
	}
	rem, err := lshjoin.Connect(addrs, lshjoin.Options{})
	if err != nil {
		return err
	}
	defer rem.Close()
	n, err := rem.N()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "coordinating %d shards: n=%d, k=%d, ℓ=%d\n", rem.Shards(), n, rem.K(), rem.Tables())
	if *verify {
		for s := 0; s < rem.Shards(); s++ {
			for t := 0; t < rem.Tables(); t++ {
				if err := rem.VerifyShardSampling(s, t, 64, *seed+1); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stdout, "sampling verified: every shard reproduces the coordinator's draws\n")
	}
	for _, tau := range taus {
		var opts []lshjoin.EstimatorOption
		if *seed != 0 {
			opts = append(opts, lshjoin.WithEstimatorSeed(*seed))
		}
		est, err := rem.Estimator(lshjoin.Algorithm(*algo), opts...)
		if err != nil {
			return err
		}
		var sum float64
		t0 := time.Now()
		for r := 0; r < *reps; r++ {
			v, err := est.Estimate(tau)
			if err != nil {
				return err
			}
			sum += v
		}
		per := time.Since(t0) / time.Duration(*reps)
		line := fmt.Sprintf("τ=%.2f  %s ≈ %.0f  (%v/estimate, mean of %d)",
			tau, est.Name(), sum/float64(*reps), per.Round(time.Microsecond), *reps)
		if *exact {
			t1 := time.Now()
			truth, err := rem.ExactJoinSize(tau)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("  exact = %d (%v)", truth, time.Since(t1).Round(time.Millisecond))
		}
		fmt.Fprintln(stdout, line)
	}
	return nil
}

// serveBench is the loadgen report, the committed BENCH_serve.json shape.
type serveBench struct {
	GoVersion  string            `json:"go_version"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Shards     int               `json:"shards"`
	Workers    int               `json:"workers"`
	Dataset    string            `json:"dataset"`
	Preload    preloadStats      `json:"preload"`
	Duration   float64           `json:"duration_sec"`
	Ops        map[string]opStat `json:"ops"`
}

type preloadStats struct {
	Vectors       int     `json:"vectors"`
	Seconds       float64 `json:"seconds"`
	VectorsPerSec float64 `json:"vectors_per_sec"`
}

type opStat struct {
	Count     int64   `json:"count"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// runLoadgen preloads the corpus through the coordinator, then drives a
// mixed workload against the shard servers and reports the baseline.
func runLoadgen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		shards   = fs.String("shards", "", "comma-separated shard server addresses (required)")
		dataset  = fs.String("dataset", "dblp", "synthetic corpus: dblp | nyt | pubmed")
		n        = fs.Int("n", 20000, "vectors to preload")
		duration = fs.Duration("duration", 10*time.Second, "mixed-workload run time")
		workers  = fs.Int("workers", 4, "concurrent workload workers")
		mix      = fs.String("mix", "estimate=1,insert=8,search=4", "op weights")
		tau      = fs.Float64("tau", 0.8, "similarity threshold for estimate/search ops")
		seed     = fs.Uint64("seed", 7, "dataset and workload seed")
		out      = fs.String("out", "", "write the JSON report here (default: stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs, err := parseShards(*shards)
	if err != nil {
		return err
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	if *n < 2 || *workers < 1 {
		return fmt.Errorf("-n must be ≥ 2 and -workers ≥ 1")
	}
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetKind(*dataset), 2*(*n), *seed)
	if err != nil {
		return err
	}
	preloadVecs, extraVecs := vecs[:*n], vecs[*n:]
	rem, err := lshjoin.Connect(addrs, lshjoin.Options{})
	if err != nil {
		return err
	}
	defer rem.Close()

	t0 := time.Now()
	if _, err := rem.InsertBatch(preloadVecs); err != nil {
		return err
	}
	if _, err := rem.N(); err != nil { // publish + warm the snapshot cache
		return err
	}
	preSec := time.Since(t0).Seconds()
	fmt.Fprintf(stdout, "preloaded %d vectors into %d shards in %.2fs (%.0f vectors/sec)\n",
		*n, rem.Shards(), preSec, float64(*n)/preSec)

	// One coordinator (connection set) per worker: the protocol serializes
	// calls per connection, so workload parallelism needs parallel clients —
	// exactly how S independent application servers would drive the shards.
	rems := make([]*lshjoin.RemoteCollection, *workers)
	for w := range rems {
		if rems[w], err = lshjoin.Connect(addrs, lshjoin.Options{}); err != nil {
			return err
		}
		defer rems[w].Close()
	}

	type opKind int
	const (
		opEstimate opKind = iota
		opInsert
		opSearch
		opKinds
	)
	names := [opKinds]string{"estimate", "insert", "search"}
	cum := make([]int, opKinds) // cumulative weights: estimate, insert, search
	total := 0
	for i, name := range names {
		total += weights[name]
		cum[i] = total
	}
	if total == 0 {
		return fmt.Errorf("-mix has no positive weights")
	}

	lat := make([][opKinds][]time.Duration, *workers)
	var failures atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(*seed) + int64(w)))
			rc := rems[w]
			for time.Now().Before(deadline) {
				pick := rng.Intn(total)
				kind := opEstimate
				for int(kind) < len(cum) && pick >= cum[kind] {
					kind++
				}
				t0 := time.Now()
				var err error
				switch kind {
				case opEstimate:
					var est lshjoin.Estimator
					if est, err = rc.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithSampleBudget(256, 256)); err == nil {
						_, err = est.Estimate(*tau)
					}
				case opInsert:
					_, err = rc.Insert(extraVecs[rng.Intn(len(extraVecs))])
				case opSearch:
					_, err = rc.SearchSimilar(vecs[rng.Intn(len(vecs))], *tau)
				}
				if err != nil {
					failures.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat[w][kind] = append(lat[w][kind], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d workload ops failed; first: %v", n, firstErr)
	}

	bench := serveBench{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     rem.Shards(),
		Workers:    *workers,
		Dataset:    fmt.Sprintf("%s n=%d mix=%s tau=%.2f", *dataset, *n, *mix, *tau),
		Preload:    preloadStats{Vectors: *n, Seconds: preSec, VectorsPerSec: float64(*n) / preSec},
		Duration:   duration.Seconds(),
		Ops:        make(map[string]opStat, opKinds),
	}
	for kind := opEstimate; kind < opKinds; kind++ {
		var all []time.Duration
		for w := range lat {
			all = append(all, lat[w][kind]...)
		}
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			return float64(all[int(p*float64(len(all)-1))].Microseconds()) / 1e3
		}
		st := opStat{
			Count:     int64(len(all)),
			OpsPerSec: float64(len(all)) / duration.Seconds(),
			P50Ms:     pct(0.50), P90Ms: pct(0.90), P99Ms: pct(0.99),
		}
		bench.Ops[names[kind]] = st
		fmt.Fprintf(stdout, "%-9s %7d ops  %8.1f ops/sec  p50 %6.2fms  p90 %6.2fms  p99 %6.2fms\n",
			names[kind], st.Count, st.OpsPerSec, st.P50Ms, st.P90Ms, st.P99Ms)
	}
	if *out != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}

func parseShards(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-shards is required")
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards names no addresses")
	}
	return out, nil
}

func parseTaus(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thresholds given")
	}
	return out, nil
}

func parseMix(s string) (map[string]int, error) {
	out := map[string]int{"estimate": 0, "insert": 0, "search": 0}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		if _, known := out[name]; !known {
			return nil, fmt.Errorf("unknown op %q in -mix (estimate|insert|search)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		out[name] = w
	}
	return out, nil
}
