// Command vsjjoin runs the exact similarity self-join on a dataset and
// prints the matching pairs (or just the count), serving both as ground
// truth for vsjest and as the join operator the estimators feed.
//
// Usage:
//
//	vsjjoin -in dblp.vsjv -tau 0.9 -limit 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lshjoin"
)

func main() {
	var (
		in    = flag.String("in", "", "input dataset file from vsjgen (required)")
		tau   = flag.Float64("tau", 0.9, "similarity threshold")
		limit = flag.Int("limit", 10, "max pairs to print (0 = count only)")
	)
	flag.Parse()
	if err := run(*in, *tau, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "vsjjoin:", err)
		os.Exit(1)
	}
}

func run(in string, tau float64, limit int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	vecs, err := lshjoin.LoadVectors(in)
	if err != nil {
		return err
	}
	coll, err := lshjoin.New(vecs, lshjoin.Options{})
	if err != nil {
		return err
	}
	t0 := time.Now()
	if limit == 0 {
		count, err := coll.ExactJoinSize(tau)
		if err != nil {
			return err
		}
		fmt.Printf("join size at τ=%.2f: %d pairs (%v)\n", tau, count, time.Since(t0).Round(time.Millisecond))
		return nil
	}
	pairs, err := coll.JoinPairs(tau)
	if err != nil {
		return err
	}
	fmt.Printf("join size at τ=%.2f: %d pairs (%v)\n", tau, len(pairs), time.Since(t0).Round(time.Millisecond))
	for i, p := range pairs {
		if i >= limit {
			fmt.Printf("... %d more\n", len(pairs)-limit)
			break
		}
		fmt.Printf("  (%d, %d) sim=%.4f\n", p.U, p.V, p.Sim)
	}
	return nil
}
