package main

import (
	"path/filepath"
	"testing"

	"lshjoin"
)

func TestRunValidation(t *testing.T) {
	if err := run("", 0.9, 10); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run("/nonexistent.vsjv", 0.9, 10); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunCountAndPairs(t *testing.T) {
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.vsjv")
	if err := lshjoin.SaveVectors(path, vecs); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0.5, 0); err != nil {
		t.Errorf("count mode: %v", err)
	}
	if err := run(path, 0.5, 3); err != nil {
		t.Errorf("pairs mode: %v", err)
	}
}
