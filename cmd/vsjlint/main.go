// Command vsjlint runs the repo's correctness-invariant analyzers
// (internal/analysis/registry) over Go packages and their assembly.
//
// Standalone:
//
//	go run ./cmd/vsjlint ./...          # exit 1 if any finding survives
//	go run ./cmd/vsjlint -list          # enumerate the suite
//
// As a go vet tool (unitchecker protocol — go vet invokes the tool once
// per package with a JSON .cfg file):
//
//	go build -o /tmp/vsjlint ./cmd/vsjlint
//	go vet -vettool=/tmp/vsjlint ./...
//
// Findings can be waived in place with a reasoned directive on or above
// the offending line, in Go and assembly files alike:
//
//	//vsjlint:ignore <analyzer> <reason>
//
// Stale, malformed, or unknown-analyzer directives are themselves findings
// (analyzer name "suppress"), so waivers cannot outlive the code they
// excuse.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lshjoin/internal/analysis"
	"lshjoin/internal/analysis/registry"
)

func main() {
	args := os.Args[1:]
	// The go vet protocol probes the tool before use: -V=full asks for a
	// version line ending in a content hash (for build caching), -flags for
	// the tool's flag schema, and the real invocation is a single *.cfg.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitcheck(args[0]))
		}
	}

	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vsjlint [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range registry.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, registry.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsjlint:", err)
	os.Exit(2)
}

// printVersion emits the version line the go command hashes for its build
// cache: the last field must identify this binary's content.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("vsjlint version devel buildID=%02x\n", h.Sum(nil))
}

// vetConfig is the subset of the go vet unit-checker config vsjlint needs.
// The go command writes one per package compilation unit.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit described by a go vet .cfg file
// and returns the process exit code: 0 clean, 2 findings, 1 on internal
// error.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsjlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vsjlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// vsjlint exports no facts, but the go command expects the output file
	// to exist before it records the action as done.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vsjlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// go vet analyzes test variants too; vsjlint's invariants are about
	// production code (test files intentionally violate some of them, e.g.
	// the plain seed-counter replica in crossjoin_test.go), so skip any
	// unit that compiles test files.
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsjlint:", err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vsjlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	var sFiles []string
	for _, f := range cfg.NonGoFiles {
		if strings.HasSuffix(f, ".s") {
			sFiles = append(sFiles, f)
		}
	}
	pkg := &analysis.Package{
		Path:       cfg.ImportPath,
		Name:       tpkg.Name(),
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		GoFiles:    cfg.GoFiles,
		OtherFiles: sFiles,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, registry.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsjlint:", err)
		return 1
	}
	for _, d := range diags {
		pos := d.Position
		if rel, err := filepath.Rel(cfg.Dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
