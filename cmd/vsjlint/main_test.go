package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnitcheckFlagsNegativeFixture drives the go vet protocol path
// directly: build a .cfg for the intentionally-violating persist fixture
// (as the go command would), run unitcheck, and require findings (exit
// code 2) plus the facts file the build system expects.
func TestUnitcheckFlagsNegativeFixture(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/analysis/selftest/testdata/negative/persist")
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("go", "list", "-export", "-deps", "-f",
		"{{if .Export}}{{.ImportPath}} {{.Export}}{{end}}", "os").Output()
	if err != nil {
		t.Fatalf("go list -export -deps os: %v", err)
	}
	packageFile := map[string]string{}
	importMap := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 {
			packageFile[f[0]] = f[1]
			importMap[f[0]] = f[0]
		}
	}
	dir := t.TempDir()
	vetx := filepath.Join(dir, "persist.vetx")
	cfg := vetConfig{
		ID:          "negpersist",
		Dir:         fixture,
		ImportPath:  "negpersist",
		GoFiles:     []string{filepath.Join(fixture, "persist.go")},
		ImportMap:   importMap,
		PackageFile: packageFile,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := unitcheck(cfgPath); code != 2 {
		t.Errorf("unitcheck on the violating fixture returned %d, want 2 (findings)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("unitcheck did not write the facts file: %v", err)
	}
}

// TestUnitcheckSkipsTestVariants pins the production-only scope: a unit
// compiling _test.go files is skipped wholesale, since test code may
// intentionally violate the invariants.
func TestUnitcheckSkipsTestVariants(t *testing.T) {
	dir := t.TempDir()
	cfg := vetConfig{
		ID:         "x [x.test]",
		ImportPath: "x",
		GoFiles:    []string{filepath.Join(dir, "x_test.go")},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := unitcheck(cfgPath); code != 0 {
		t.Errorf("unitcheck on a test variant returned %d, want 0 (skipped)", code)
	}
}
