package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run("", false, 0, 0, 0, 0, 0, ""); err == nil {
		t.Error("neither -all nor -exp rejected")
	}
	if err := run("nope", false, 100, 100, 100, 2, 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperimentToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) experiment")
	}
	out := filepath.Join(t.TempDir(), "out.md")
	if err := run("space", false, 800, 200, 200, 2, 7, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{"LSH table size vs k", "| k ", "Total runtime"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
