package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"lshjoin"
	"lshjoin/internal/core"
	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Perf trajectory tooling: `vsjbench -perf` times the hot paths of the LSH
// layer (index build, per-vector signing, LSH-SS estimation, candidate
// retrieval, snapshot publication — including per-insert publication through
// the Fenwick weight index at two bucket counts, against an emulated eager
// prefix-sum rebuild — mixed Estimate+Insert serving workloads, single
// index and 4-shard, and the sharded cross-join estimate path) with
// testing.Benchmark and writes the results as JSON.
// The file is committed as BENCH_lsh.json at the repo root so future changes
// can be diffed against the recorded baseline; GOMAXPROCS is pinned by the
// -gomaxprocs flag (default 1) before any benchmark runs, so entries are
// comparable across machines.
//
// `-perf -compare <baseline.json>` is the CI perf gate: after recording, the
// gated hot-path benchmarks are checked against the baseline's ns/op with a
// fractional tolerance (-tolerance, default ±30%), and any regression — or a
// gated benchmark missing from either side — fails the run.

type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type perfReport struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Corpus     string       `json:"corpus"`
	Results    []perfResult `json:"results"`
}

// perfData mirrors the DBLP-shaped corpus of the lsh package benchmarks.
func perfData(n, dims, nnz int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		ds := make([]uint32, nnz)
		for j := range ds {
			ds[j] = uint32(rng.Intn(dims))
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

func runPerf(outPath string) (*perfReport, error) {
	const (
		n    = 5000
		dims = 56000
		nnz  = 14
		k    = 20
	)
	data := perfData(n, dims, nnz, 1)
	idx, err := lsh.Build(data, lsh.NewSimHash(3), 8, 4)
	if err != nil {
		return nil, err
	}
	snap1, err := lsh.BuildSnapshot(data, lsh.NewSimHash(5), k, 1)
	if err != nil {
		return nil, err
	}
	est, err := core.NewLSHSS(snap1, nil)
	if err != nil {
		return nil, err
	}

	report := perfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     fmt.Sprintf("uniform n=%d dims=%d nnz=%d", n, dims, nnz),
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Results = append(report.Results, perfResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	add("build_k20_l1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lsh.Build(data, lsh.NewSimHash(uint64(i+1)), k, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("sign_fused_k20_l8", func(b *testing.B) {
		// 8 fused tables: ℓ·k = 160 lanes per vocabulary row, all signed in
		// one pass over a resident projection cache.
		for i := 0; i < b.N; i++ {
			_ = lsh.SignDigest(data, lsh.NewSimHash(uint64(i+1)), k, 8, lsh.SignConfig{PanelBytes: 256 << 20})
		}
	})
	add("sign_panel_streamed", func(b *testing.B) {
		// Same workload under a 4 MiB budget: the projection cache streams in
		// dimension-block panels with identical output.
		for i := 0; i < b.N; i++ {
			_ = lsh.SignDigest(data, lsh.NewSimHash(uint64(i+1)), k, 8, lsh.SignConfig{PanelBytes: 4 << 20})
		}
	})
	add("sign_float32_lane", func(b *testing.B) {
		// Fused again in the float32 lane: half the cache bytes per row.
		for i := 0; i < b.N; i++ {
			_ = lsh.SignDigest(data, lsh.NewSimHash(uint64(i+1)), k, 8, lsh.SignConfig{Float32: true, PanelBytes: 256 << 20})
		}
	})
	add("signature_simhash_k20_naive", func(b *testing.B) {
		f := lsh.NewSimHash(7)
		for i := 0; i < b.N; i++ {
			for fn := 0; fn < k; fn++ {
				_ = f.Hash(fn, data[0])
			}
		}
	})
	add("estimate_lshss_tau08", func(b *testing.B) {
		rng := xrand.New(11)
		for i := 0; i < b.N; i++ {
			if _, err := est.Estimate(0.8, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("query_k8_l4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = idx.Query(data[i%len(data)])
		}
	})
	add("insert_batch_1000_k20_publish", func(b *testing.B) {
		tail := perfData(1000, dims, nnz, 2)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ix, err := lsh.Build(data, lsh.NewSimHash(uint64(i+1)), k, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			ix.InsertBatch(tail)
			ix.Snapshot()
		}
	})
	add("snapshot_publish_after_insert", func(b *testing.B) {
		ix, err := lsh.Build(data, lsh.NewSimHash(13), k, 1)
		if err != nil {
			b.Fatal(err)
		}
		v := data[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(v)
			ix.Snapshot()
		}
	})
	// Per-insert publication through the public policy (PublishEvery=1):
	// every Insert cuts a fresh Fenwick-merged version. Run at the base
	// corpus and at 4× the buckets — the ns/op pair demonstrates that
	// publication cost is independent of total bucket count at fixed delta
	// size (the O(d · log #buckets) merge contract).
	perInsert := func(nvec int, seed uint64) func(b *testing.B) {
		return func(b *testing.B) {
			corpus := perfData(nvec, dims, nnz, seed)
			coll, err := lshjoin.New(corpus, lshjoin.Options{K: k, Seed: seed, PublishEvery: 1})
			if err != nil {
				b.Fatal(err)
			}
			v := corpus[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coll.Insert(v)
			}
		}
	}
	add("publish_per_insert", perInsert(n, 17))
	add("publish_per_insert_4x_buckets", perInsert(4*n, 19))
	// The pre-Fenwick alternative at the larger size: publication plus an
	// eager O(#buckets) prefix-sum rebuild per version, which is what every
	// publish used to pay regardless of delta size.
	add("publish_prefix_sum_rebuild_4x_buckets", func(b *testing.B) {
		corpus := perfData(4*n, dims, nnz, 19)
		ix, err := lsh.Build(corpus, lsh.NewSimHash(19), k, 1)
		if err != nil {
			b.Fatal(err)
		}
		v := corpus[0]
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(v)
			s := ix.Snapshot()
			sizes := s.Table(0).BucketSizes()
			cum := make([]int64, len(sizes))
			var total int64
			for j, sz := range sizes {
				total += int64(sz) * int64(sz-1) / 2
				cum[j] = total
			}
			sink += cum[len(cum)-1]
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	})
	// Mixed serving workload: a background writer streams single-vector
	// inserts into a live Collection while the measured loop constructs a
	// snapshot-bound estimator and answers one estimate per op — the
	// "estimate under ingest" case the snapshot refactor exists for.
	add("serve_mixed_estimate_insert", func(b *testing.B) {
		coll, err := lshjoin.New(data, lshjoin.Options{K: k, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		tail := perfData(2000, dims, nnz, 3)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				coll.Insert(tail[i%len(tail)])
				runtime.Gosched()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := coll.Estimator(lshjoin.AlgoLSHSS,
				lshjoin.WithEstimatorSeed(uint64(i+1)),
				lshjoin.WithSampleBudget(500, 500))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Estimate(0.8); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
	// Sharded serving workload: same shape as serve_mixed_estimate_insert,
	// but over a 4-shard collection — background inserts spread across
	// shards with per-insert publication while the measured loop builds a
	// merged estimator over the captured shard-snapshot vector and answers
	// one estimate per op.
	add("sharded_serve_s4_estimate_insert", func(b *testing.B) {
		coll, err := lshjoin.NewSharded(data, lshjoin.Options{K: k, Seed: 7, Shards: 4, PublishEvery: 1})
		if err != nil {
			b.Fatal(err)
		}
		tail := perfData(2000, dims, nnz, 3)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				coll.Insert(tail[i%len(tail)])
				runtime.Gosched()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := coll.Estimator(lshjoin.AlgoLSHSS,
				lshjoin.WithEstimatorSeed(uint64(i+1)),
				lshjoin.WithSampleBudget(500, 500))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Estimate(0.8); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})

	// Sharded cross-join serving: a live 4-shard-per-side CrossJoin answers
	// one general LSH-SS estimate per op. Each estimate captures the two
	// shard-snapshot vectors, builds the merged bipartite stratum (the
	// S_left·S_right per-shard-pair bucket matchings) and samples through
	// it — the whole general-join serving path of App. B.2.2 over shards.
	add("cross_join_sharded_estimate", func(b *testing.B) {
		right := perfData(3000, dims, nnz, 5)
		copy(right[:300], data[:300]) // plant cross matches
		cj, err := lshjoin.NewCrossJoinSharded(data, right, lshjoin.Options{K: k, Seed: 7}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cj.EstimateJoinSizeBudget(0.8, 500, 500); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Durable store hot paths: checkpointing a full n-vector snapshot
	// (encode + write + fsync + atomic rename), cold-opening a checkpointed
	// store, and recovery that replays a 1000-record delta log on top of
	// its checkpoint — the three costs a crash-safe serving process pays.
	add("snapshot_save", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "vsjbench-save-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		ix, err := lsh.Build(data, lsh.NewSimHash(23), k, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := persist.Create(faultfs.OS{}, dir, ix)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		snap := ix.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Checkpoint(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("snapshot_load", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "vsjbench-load-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		ix, err := lsh.Build(data, lsh.NewSimHash(23), k, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := persist.Create(faultfs.OS{}, dir, ix)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := persist.Open(faultfs.OS{}, dir)
			if err != nil {
				b.Fatal(err)
			}
			st.Close()
		}
	})
	add("recover_replay_1000", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "vsjbench-replay-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		ix, err := lsh.Build(data, lsh.NewSimHash(23), k, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := persist.Create(faultfs.OS{}, dir, ix)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range perfData(1000, dims, nnz, 29) {
			ix.Insert(v)
		}
		ix.Snapshot() // publish: flushes and fsyncs the 1000-record delta log
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rx, st, err := persist.Open(faultfs.OS{}, dir)
			if err != nil {
				b.Fatal(err)
			}
			if rx.N() != n+1000 {
				b.Fatalf("recovered %d vectors, want %d", rx.N(), n+1000)
			}
			st.Close()
		}
	})

	// Durable cross-join hot paths: checkpointing both sides' shard stores
	// (the cost CrossJoin.Close pays), and recovering the whole two-sided
	// store through the public opener.
	add("cross_join_checkpoint", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "vsjbench-xckpt-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		fam := lsh.NewSimHash(31)
		lg, err := lsh.NewShardGroup(data[:2000], fam, k, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := lsh.NewShardGroup(perfData(2000, dims, nnz, 37), fam, k, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		lst, rst, err := persist.CreateCross(faultfs.OS{}, dir, lg, rg)
		if err != nil {
			b.Fatal(err)
		}
		groups := []*lsh.ShardGroup{lg, rg}
		stores := [][]*persist.Store{lst, rst}
		defer func() {
			for _, side := range stores {
				for _, st := range side {
					st.Close()
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for side, g := range groups {
				for s := 0; s < g.S(); s++ {
					if err := stores[side][s].Checkpoint(g.Shard(s).Snapshot()); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	add("cross_join_recover", func(b *testing.B) {
		tmp, err := os.MkdirTemp("", "vsjbench-xrec-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir := tmp + "/xj"
		right := perfData(2000, dims, nnz, 41)
		cj, err := lshjoin.NewCrossJoin(data[:2000], right, lshjoin.Options{K: k, Seed: 7, Shards: 2, Dir: dir, PublishEvery: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Leave a published-but-not-checkpointed tail so recovery replays a
		// real delta log, then close cleanly.
		tail := perfData(200, dims, nnz, 43)
		for i, v := range tail {
			if i%2 == 0 {
				cj.InsertLeft(v)
			} else {
				cj.InsertRight(v)
			}
		}
		if err := cj.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := lshjoin.OpenCrossJoin(dir, lshjoin.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer() // Close re-checkpoints; keep the op pure recovery
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	// Per-insert publication on a durable collection with an aggressive
	// rotation threshold: every few publishes switch to a fresh delta log and
	// hand the checkpoint to the background goroutine. The measured loop is
	// the publish tail — append + fsync only — so its ns/op must stay flat
	// relative to publish_per_insert plus the fsync, not grow by a full
	// snapshot encode per rotation.
	add("publish_tail_with_rotation", func(b *testing.B) {
		tmp, err := os.MkdirTemp("", "vsjbench-rot-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		coll, err := lshjoin.New(data[:2000], lshjoin.Options{
			K: k, Seed: 31, Dir: tmp + "/db", PublishEvery: 1, CheckpointBytes: 64 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		v := data[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			coll.Insert(v)
		}
		b.StopTimer()
		if err := coll.Close(); err != nil {
			b.Fatal(err)
		}
	})

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	buf = append(buf, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return &report, err
	}
	return &report, os.WriteFile(outPath, buf, 0o644)
}

// gatedBenchmarks names the hot paths the CI perf gate enforces: index
// build, candidate retrieval, estimation, snapshot publication and the two
// serving workloads. Non-gated entries (the emulated pre-Fenwick rebuild,
// the naive signing baseline) are recorded for trajectory only.
var gatedBenchmarks = []string{
	"build_k20_l1",
	"sign_fused_k20_l8",
	"sign_panel_streamed",
	"sign_float32_lane",
	"query_k8_l4",
	"estimate_lshss_tau08",
	"snapshot_publish_after_insert",
	"publish_per_insert",
	"insert_batch_1000_k20_publish",
	"serve_mixed_estimate_insert",
	"sharded_serve_s4_estimate_insert",
	"cross_join_sharded_estimate",
	"snapshot_save",
	"snapshot_load",
	"recover_replay_1000",
	"cross_join_checkpoint",
	"cross_join_recover",
	"publish_tail_with_rotation",
}

// comparePerf gates a fresh perf report against the committed baseline:
// every gated benchmark must exist on both sides and its fresh ns/op must
// not exceed baseline·(1+tol). Exceeding the tolerance — or a missing gated
// entry — returns an error listing every violation.
func comparePerf(baselinePath string, fresh *perfReport, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf gate: %w", err)
	}
	var baseline perfReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("perf gate: parsing %s: %w", baselinePath, err)
	}
	if fresh.GOMAXPROCS != baseline.GOMAXPROCS {
		fmt.Fprintf(os.Stderr, "perf gate: warning: GOMAXPROCS %d vs baseline %d — timings may not be comparable\n",
			fresh.GOMAXPROCS, baseline.GOMAXPROCS)
	}
	index := func(r *perfReport) map[string]perfResult {
		m := make(map[string]perfResult, len(r.Results))
		for _, res := range r.Results {
			m[res.Name] = res
		}
		return m
	}
	base, cur := index(&baseline), index(fresh)
	var violations []string
	for _, name := range gatedBenchmarks {
		b, okB := base[name]
		c, okC := cur[name]
		switch {
		case !okB:
			violations = append(violations, fmt.Sprintf("%s: missing from baseline %s (re-record it)", name, baselinePath))
		case !okC:
			violations = append(violations, fmt.Sprintf("%s: missing from fresh run", name))
		case c.NsPerOp > b.NsPerOp*(1+tol):
			violations = append(violations, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%% > +%.0f%% tolerance)",
				name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		default:
			fmt.Fprintf(os.Stderr, "perf gate: ok %-36s %10.0f ns/op (baseline %10.0f, %+.0f%%)\n",
				name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("perf gate: %d hot-path regression(s):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return nil
}
