// Command vsjbench regenerates the paper's evaluation: every table and
// figure of §6 and Appendix C as markdown tables (the same rows/series the
// paper reports), at a configurable scale.
//
// Usage:
//
//	vsjbench -all                       # full suite, default scale
//	vsjbench -exp fig2 -reps 100        # one experiment, paper's repetitions
//	vsjbench -all -dblp 8000 -reps 20   # quicker pass
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lshjoin/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id: "+strings.Join(experiments.IDs(), " | "))
		all      = flag.Bool("all", false, "run the full suite")
		dblp     = flag.Int("dblp", 0, "DBLP-like collection size (default 20000)")
		nyt      = flag.Int("nyt", 0, "NYT-like collection size (default 5000)")
		pubmed   = flag.Int("pubmed", 0, "PUBMED-like collection size (default 8000)")
		reps     = flag.Int("reps", 0, "estimates per cell (default 50; paper uses 100)")
		seed     = flag.Uint64("seed", 0, "suite seed (default 42)")
		out      = flag.String("out", "", "write markdown to file instead of stdout")
		perf     = flag.Bool("perf", false, "time the LSH hot paths and emit JSON instead of running experiments")
		perfout  = flag.String("perfout", "BENCH_lsh.json", "output path for -perf (\"-\" for stdout)")
		maxprocs = flag.Int("gomaxprocs", 1, "pin GOMAXPROCS for -perf so recorded timings are comparable across machines (0 keeps the runner's value)")
		compare  = flag.String("compare", "", "with -perf: baseline JSON to gate the fresh timings against; exit 1 on hot-path regression")
		tol      = flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression per gated benchmark for -compare")
	)
	flag.Parse()
	if *perf {
		if *maxprocs > 0 {
			runtime.GOMAXPROCS(*maxprocs)
		}
		report, err := runPerf(*perfout)
		if err == nil && *compare != "" {
			err = comparePerf(*compare, report, *tol)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsjbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *all, *dblp, *nyt, *pubmed, *reps, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "vsjbench:", err)
		os.Exit(1)
	}
}

func run(exp string, all bool, dblp, nyt, pubmed, reps int, seed uint64, out string) error {
	if !all && exp == "" {
		return fmt.Errorf("pass -all or -exp <id>; ids: %s", strings.Join(experiments.IDs(), ", "))
	}
	suite := experiments.NewSuite(experiments.Config{
		DBLPN: dblp, NYTN: nyt, PubMedN: pubmed, Reps: reps, Seed: seed,
	})
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cfg := suite.Config()
	fmt.Fprintf(w, "# lshjoin experiment run\n\n")
	fmt.Fprintf(w, "Scale: DBLP n=%d, NYT n=%d, PUBMED n=%d; reps/cell=%d; seed=%d.\n\n",
		cfg.DBLPN, cfg.NYTN, cfg.PubMedN, cfg.Reps, cfg.Seed)
	t0 := time.Now()
	var tables []*experiments.Table
	var err error
	if all {
		tables, err = suite.RunAll()
	} else {
		runner, ok := experiments.Registry()[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q; ids: %s", exp, strings.Join(experiments.IDs(), ", "))
		}
		tables, err = runner(suite)
	}
	if err != nil {
		return err
	}
	if err := experiments.RenderAll(w, tables); err != nil {
		return err
	}
	fmt.Fprintf(w, "Total runtime: %v.\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
