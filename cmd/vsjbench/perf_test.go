package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gateReport builds a report covering every gated benchmark at the given
// ns/op, so the comparison logic can be exercised without running real
// benchmarks.
func gateReport(ns float64) *perfReport {
	r := &perfReport{GoVersion: "test", GOMAXPROCS: 1, Corpus: "synthetic"}
	for _, name := range gatedBenchmarks {
		r.Results = append(r.Results, perfResult{Name: name, NsPerOp: ns})
	}
	return r
}

func writeReport(t *testing.T, r *perfReport) string {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePerfWithinTolerance(t *testing.T) {
	base := writeReport(t, gateReport(1000))
	if err := comparePerf(base, gateReport(1250), 0.30); err != nil {
		t.Fatalf("+25%% rejected at ±30%%: %v", err)
	}
	// Speedups always pass.
	if err := comparePerf(base, gateReport(10), 0.30); err != nil {
		t.Fatalf("speedup rejected: %v", err)
	}
}

func TestComparePerfRegressionFails(t *testing.T) {
	base := writeReport(t, gateReport(1000))
	err := comparePerf(base, gateReport(1400), 0.30)
	if err == nil {
		t.Fatal("+40% accepted at ±30%")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, name := range gatedBenchmarks {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("violation list missing %s: %v", name, err)
		}
	}
}

func TestComparePerfMissingEntryFails(t *testing.T) {
	base := writeReport(t, gateReport(1000))
	fresh := gateReport(1000)
	fresh.Results = fresh.Results[:len(fresh.Results)-1] // drop one gated entry
	if err := comparePerf(base, fresh, 0.30); err == nil {
		t.Fatal("missing gated benchmark accepted")
	}
	// And the other direction: a stale baseline must be called out too.
	short := gateReport(1000)
	short.Results = short.Results[1:]
	stale := writeReport(t, short)
	if err := comparePerf(stale, gateReport(1000), 0.30); err == nil {
		t.Fatal("gated benchmark missing from baseline accepted")
	}
}

func TestComparePerfBadBaseline(t *testing.T) {
	if err := comparePerf(filepath.Join(t.TempDir(), "nope.json"), gateReport(1), 0.3); err == nil {
		t.Fatal("missing baseline file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := comparePerf(bad, gateReport(1), 0.3); err == nil {
		t.Fatal("unparseable baseline accepted")
	}
}

// The committed BENCH_lsh.json must stay in sync with the gated set: every
// gated benchmark has a recorded baseline entry (otherwise the CI gate can
// never pass), recorded at the pinned GOMAXPROCS=1.
func TestCommittedBaselineCoversGate(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_lsh.json"))
	if err != nil {
		t.Fatal(err)
	}
	var baseline perfReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if baseline.GOMAXPROCS != 1 {
		t.Errorf("baseline recorded at GOMAXPROCS=%d, want 1 (vsjbench -perf -gomaxprocs 1)", baseline.GOMAXPROCS)
	}
	have := map[string]bool{}
	for _, r := range baseline.Results {
		have[r.Name] = true
	}
	for _, name := range gatedBenchmarks {
		if !have[name] {
			t.Errorf("BENCH_lsh.json missing gated benchmark %q — re-record with vsjbench -perf", name)
		}
	}
}
