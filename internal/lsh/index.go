package lsh

import (
	"fmt"
	"sync"

	"lshjoin/internal/vecmath"
)

// Index is an LSH index I_G = {D_g1, ..., D_gℓ}: ℓ tables, each keyed by the
// concatenation of k hash functions from a Family. Table t uses hash
// functions [t·k, (t+1)·k), so tables are mutually independent.
//
// The index keeps a reference to the vector collection it was built over;
// estimators address vectors by their position in that slice.
type Index struct {
	family Family
	k, ell int
	data   []vecmath.Vector
	tables []*Table

	// qpool recycles Query working state (hash scratch + epoch-stamped
	// visited array) so candidate retrieval allocates no map per call while
	// staying safe for concurrent Query callers.
	qpool sync.Pool
}

// Build hashes every vector of data into ℓ tables of k concatenated hash
// functions each, through the batched signature engine (see engine.go):
// keyed-stream rows are materialized once per distinct dimension and vector
// signing is parallelized. The result is deterministic for a given family
// seed, independent of GOMAXPROCS.
func Build(data []vecmath.Vector, family Family, k, ell int) (*Index, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty vector collection")
	}
	idx := &Index{family: family, k: k, ell: ell, data: data}
	sigs := newEngine(family, k, ell).sign(data)
	idx.tables = make([]*Table, ell)
	for t := 0; t < ell; t++ {
		idx.tables[t] = sigs.table(t, k, t*k, family.Bits())
	}
	return idx, nil
}

// Family returns the hash family the index was built with.
func (x *Index) Family() Family { return x.family }

// K returns the number of hash functions per table.
func (x *Index) K() int { return x.k }

// L returns the number of tables ℓ.
func (x *Index) L() int { return x.ell }

// N returns the number of indexed vectors.
func (x *Index) N() int { return len(x.data) }

// Data returns the indexed vector collection. Callers must not modify it.
func (x *Index) Data() []vecmath.Vector { return x.data }

// Table returns table t (0-based).
func (x *Index) Table(t int) *Table { return x.tables[t] }

// Tables returns all ℓ tables.
func (x *Index) Tables() []*Table { return x.tables }

// narrow reports whether the index's tables use machine-word keys.
func (x *Index) narrow() bool { return isNarrow(x.k, x.family.Bits()) }

// hashInto fills vals with the k hash values of v for table t.
func (x *Index) hashInto(t int, v vecmath.Vector, vals []uint64) {
	base := t * x.k
	for j := 0; j < x.k; j++ {
		vals[j] = x.family.Hash(base+j, v)
	}
}

// KeyFor computes the bucket key of an arbitrary (possibly out-of-index)
// vector in table t, in canonical string form, for use by similarity search
// and bipartite joins.
func (x *Index) KeyFor(t int, v vecmath.Vector) string {
	vals := make([]uint64, x.k)
	x.hashInto(t, v, vals)
	return packKey(vals, x.family.Bits())
}

// SameAnyBucket reports whether vectors i and j share a bucket in at least
// one of the ℓ tables — the "virtual bucket" membership test of App. B.2.1.
func (x *Index) SameAnyBucket(i, j int) bool {
	for _, t := range x.tables {
		if t.SameBucket(i, j) {
			return true
		}
	}
	return false
}

// BucketMultiplicity returns the number of tables in which vectors i and j
// share a bucket (0..ℓ).
func (x *Index) BucketMultiplicity(i, j int) int {
	m := 0
	for _, t := range x.tables {
		if t.SameBucket(i, j) {
			m++
		}
	}
	return m
}

// visitState is the reusable Query working set: k hash values and an
// epoch-stamped visited array (stamp[id] == epoch marks id as emitted this
// query), replacing a per-call map[int32]struct{}.
type visitState struct {
	vals  []uint64
	stamp []uint32
	epoch uint32
}

func (x *Index) getVisit() *visitState {
	vs, _ := x.qpool.Get().(*visitState)
	if vs == nil {
		vs = &visitState{}
	}
	if len(vs.vals) < x.k {
		vs.vals = make([]uint64, x.k)
	}
	if len(vs.stamp) < len(x.data) {
		vs.stamp = make([]uint32, len(x.data))
		vs.epoch = 0
	}
	vs.epoch++
	if vs.epoch == 0 { // wrapped: stale stamps could collide, reset
		for i := range vs.stamp {
			vs.stamp[i] = 0
		}
		vs.epoch = 1
	}
	return vs
}

// Query returns the ids of all vectors sharing a bucket with v in any table,
// excluding duplicates — the standard LSH candidate-retrieval operation the
// index exists for. The order is deterministic (first table, bucket order).
func (x *Index) Query(v vecmath.Vector) []int32 {
	vs := x.getVisit()
	vals := vs.vals[:x.k]
	narrow := x.narrow()
	bits := x.family.Bits()
	var out []int32
	for t := 0; t < x.ell; t++ {
		x.hashInto(t, v, vals)
		var ids []int32
		if narrow {
			ids = x.tables[t].bucket64(packWord(vals, bits))
		} else {
			ids = x.tables[t].BucketIDs(packKey(vals, bits))
		}
		for _, id := range ids {
			if vs.stamp[id] != vs.epoch {
				vs.stamp[id] = vs.epoch
				out = append(out, id)
			}
		}
	}
	x.qpool.Put(vs)
	return out
}

// Search returns the ids of indexed vectors u with sim(u, v) ≥ τ among the
// LSH candidates of v — approximate similarity search with the usual LSH
// false-negative caveat.
func (x *Index) Search(v vecmath.Vector, tau float64) []int32 {
	var out []int32
	for _, id := range x.Query(v) {
		if x.family.Sim(x.data[id], v) >= tau {
			out = append(out, id)
		}
	}
	return out
}

// SizeBytes estimates the total space of all tables (see Table.SizeBytes).
func (x *Index) SizeBytes() int64 {
	var s int64
	for _, t := range x.tables {
		s += t.SizeBytes()
	}
	return s
}
