package lsh

import (
	"fmt"
	"runtime"
	"sync"

	"lshjoin/internal/vecmath"
)

// Index is an LSH index I_G = {D_g1, ..., D_gℓ}: ℓ tables, each keyed by the
// concatenation of k hash functions from a Family. Table t uses hash
// functions [t·k, (t+1)·k), so tables are mutually independent.
//
// The index keeps a reference to the vector collection it was built over;
// estimators address vectors by their position in that slice.
type Index struct {
	family Family
	k, ell int
	data   []vecmath.Vector
	tables []*Table
}

// Build hashes every vector of data into ℓ tables of k concatenated hash
// functions each. Signature computation is parallelized across vectors;
// the result is deterministic for a given family seed.
func Build(data []vecmath.Vector, family Family, k, ell int) (*Index, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty vector collection")
	}
	idx := &Index{family: family, k: k, ell: ell, data: data}

	// Compute all ℓ·k hash values per vector in parallel, then assemble
	// tables serially (cheap) to keep bucket insertion order deterministic.
	keys := make([][]string, ell)
	for t := range keys {
		keys[t] = make([]string, len(data))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(data) {
		workers = len(data)
	}
	var wg sync.WaitGroup
	chunk := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			vals := make([]uint64, k)
			for i := lo; i < hi; i++ {
				for t := 0; t < ell; t++ {
					base := t * k
					for j := 0; j < k; j++ {
						vals[j] = family.Hash(base+j, data[i])
					}
					keys[t][i] = packKey(vals, family.Bits())
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	idx.tables = make([]*Table, ell)
	sv := make([]signedVectors, len(data))
	for t := 0; t < ell; t++ {
		for i := range data {
			sv[i] = signedVectors{key: keys[t][i]}
		}
		idx.tables[t] = newTable(sv, k, t*k)
	}
	return idx, nil
}

// Family returns the hash family the index was built with.
func (x *Index) Family() Family { return x.family }

// K returns the number of hash functions per table.
func (x *Index) K() int { return x.k }

// L returns the number of tables ℓ.
func (x *Index) L() int { return x.ell }

// N returns the number of indexed vectors.
func (x *Index) N() int { return len(x.data) }

// Data returns the indexed vector collection. Callers must not modify it.
func (x *Index) Data() []vecmath.Vector { return x.data }

// Table returns table t (0-based).
func (x *Index) Table(t int) *Table { return x.tables[t] }

// Tables returns all ℓ tables.
func (x *Index) Tables() []*Table { return x.tables }

// KeyFor computes the bucket key of an arbitrary (possibly out-of-index)
// vector in table t, for use by similarity search and bipartite joins.
func (x *Index) KeyFor(t int, v vecmath.Vector) string {
	vals := make([]uint64, x.k)
	base := t * x.k
	for j := 0; j < x.k; j++ {
		vals[j] = x.family.Hash(base+j, v)
	}
	return packKey(vals, x.family.Bits())
}

// SameAnyBucket reports whether vectors i and j share a bucket in at least
// one of the ℓ tables — the "virtual bucket" membership test of App. B.2.1.
func (x *Index) SameAnyBucket(i, j int) bool {
	for _, t := range x.tables {
		if t.SameBucket(i, j) {
			return true
		}
	}
	return false
}

// BucketMultiplicity returns the number of tables in which vectors i and j
// share a bucket (0..ℓ).
func (x *Index) BucketMultiplicity(i, j int) int {
	m := 0
	for _, t := range x.tables {
		if t.SameBucket(i, j) {
			m++
		}
	}
	return m
}

// Query returns the ids of all vectors sharing a bucket with v in any table,
// excluding duplicates — the standard LSH candidate-retrieval operation the
// index exists for. The order is deterministic (first table, bucket order).
func (x *Index) Query(v vecmath.Vector) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for t := 0; t < x.ell; t++ {
		key := x.KeyFor(t, v)
		for _, id := range x.tables[t].BucketIDs(key) {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

// Search returns the ids of indexed vectors u with sim(u, v) ≥ τ among the
// LSH candidates of v — approximate similarity search with the usual LSH
// false-negative caveat.
func (x *Index) Search(v vecmath.Vector, tau float64) []int32 {
	var out []int32
	for _, id := range x.Query(v) {
		if x.family.Sim(x.data[id], v) >= tau {
			out = append(out, id)
		}
	}
	return out
}

// SizeBytes estimates the total space of all tables (see Table.SizeBytes).
func (x *Index) SizeBytes() int64 {
	var s int64
	for _, t := range x.tables {
		s += t.SizeBytes()
	}
	return s
}
