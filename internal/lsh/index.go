package lsh

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lshjoin/internal/vecmath"
)

// Index is an LSH index I_G = {D_g1, ..., D_gℓ}: ℓ tables, each keyed by the
// concatenation of k hash functions from a Family. Table t uses hash
// functions [t·k, (t+1)·k), so tables are mutually independent.
//
// The index separates a mutable write side from immutable read views.
// Insert and InsertBatch only append to a pending delta (hashed vectors and
// their bucket keys); Snapshot merges the delta into a fresh immutable
// Snapshot and publishes it with a single atomic pointer store. Readers
// therefore never observe a half-applied mutation: they either run against
// the version they already hold, or pick up the latest published version,
// lock-free, via Current. All methods are safe for concurrent use; writers
// are serialized by an internal mutex.
//
// The convenience read methods on Index (Query, Search, Table, ...) publish
// any pending delta first, preserving read-your-writes for single-goroutine
// callers. Concurrent readers that want stable, lock-free views should hold
// a *Snapshot instead.
type Index struct {
	mu    sync.Mutex // serializes Insert / InsertBatch / publish
	cur   atomic.Pointer[Snapshot]
	npend atomic.Int64 // vectors in the pending delta

	pendData []vecmath.Vector
	pend64   [][]uint64 // narrow mode: pending bucket keys, [table][i]
	pendStr  [][]string // wide mode
	scratch  []uint64   // per-writer hash scratch (guarded by mu)
	hook     WriteHook  // durability observer (guarded by mu); nil when not persisted
}

// WriteHook observes the index's write path under the writer lock, in
// exactly the order mutations are applied — the contract the durability
// layer's delta log depends on: OnInsert/OnInsertBatch fire with the ids
// just assigned, OnPublish fires with each freshly published version, and
// no two callbacks ever run concurrently. Callbacks must not call back into
// the index's write methods.
type WriteHook interface {
	OnInsert(id int, v vecmath.Vector)
	OnInsertBatch(first int, vs []vecmath.Vector)
	OnPublish(s *Snapshot)
}

// SetWriteHook installs (or, with nil, removes) the write hook. Mutations
// already pending keep their place: they reach the hook only through the
// OnPublish of the version that publishes them, so callers that need every
// insert logged should install the hook before writing.
func (x *Index) SetWriteHook(h WriteHook) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.hook = h
}

// PublishAndThen publishes any pending inserts and runs fn on the resulting
// snapshot while still holding the writer lock, so no insert or publish can
// interleave between the publication and fn. The durability layer uses this
// to checkpoint: fn persists the snapshot knowing the delta log contains
// nothing beyond it.
func (x *Index) PublishAndThen(fn func(s *Snapshot)) *Snapshot {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := x.publishLocked()
	fn(s)
	return s
}

// Build hashes every vector of data into ℓ tables of k concatenated hash
// functions each, through the batched signature engine (see engine.go):
// keyed-stream rows are materialized once per distinct dimension and vector
// signing is parallelized, as is bucket construction (see build.go). The
// result is deterministic for a given family seed, independent of
// GOMAXPROCS.
func Build(data []vecmath.Vector, family Family, k, ell int) (*Index, error) {
	return BuildSigned(data, family, k, ell, SignConfig{})
}

// BuildSigned is Build with an explicit signing configuration: the float32
// projection lane and/or a panel budget for the projection cache (see
// SignConfig). The zero config is exactly Build. The config is recorded on
// every published snapshot, so single-vector hashing (KeyFor, Insert) and
// later InsertBatch signing stay consistent with the batch build.
func BuildSigned(data []vecmath.Vector, family Family, k, ell int, cfg SignConfig) (*Index, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if cfg.PanelBytes < 0 {
		return nil, fmt.Errorf("lsh: negative sign panel budget %d", cfg.PanelBytes)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty vector collection")
	}
	sigs := newEngine(family, k, ell, cfg).sign(data)
	// Clamp capacity so later delta merges can never append into spare
	// capacity of the caller's slice (which would overwrite caller-owned
	// elements past the indexed prefix).
	data = data[:len(data):len(data)]
	snap := &Snapshot{
		version: 1,
		family:  family,
		k:       k,
		ell:     ell,
		narrow:  isNarrow(k, family.Bits()),
		sign:    cfg,
		data:    data,
		tables:  make([]*Table, ell),
		pool:    &sync.Pool{},
	}
	for t := 0; t < ell; t++ {
		snap.tables[t] = sigs.table(t, k, t*k, family.Bits())
	}
	x := &Index{}
	if snap.narrow {
		x.pend64 = make([][]uint64, ell)
	} else {
		x.pendStr = make([][]string, ell)
	}
	x.cur.Store(snap)
	return x, nil
}

// BuildSnapshot builds an index and returns its initial immutable view, for
// callers that only ever read (estimator probes, bipartite joins).
func BuildSnapshot(data []vecmath.Vector, family Family, k, ell int) (*Snapshot, error) {
	x, err := Build(data, family, k, ell)
	if err != nil {
		return nil, err
	}
	return x.Current(), nil
}

// Current returns the latest published snapshot without publishing pending
// inserts. It never blocks.
func (x *Index) Current() *Snapshot { return x.cur.Load() }

// Pending returns the number of inserted vectors not yet published as a
// snapshot. It never blocks; publication policies (see the public
// Collection) use it to decide when to cut a version.
func (x *Index) Pending() int { return int(x.npend.Load()) }

// Snapshot publishes any pending inserts as a new immutable version and
// returns it. With no pending delta this is one atomic load. The merge cost
// for a d-key delta is O(d · log #buckets) per table: only the buckets the
// delta touches are copied, each landing in the persistent Fenwick weight
// index with one root-path copy (see fenwick.go and dynamic.go) — there is
// no prefix-sum rebuild and no bucket-order copy, so publication cost is
// independent of the total bucket count and per-insert publication is
// affordable on large tables.
func (x *Index) Snapshot() *Snapshot {
	if x.npend.Load() == 0 {
		return x.cur.Load()
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.publishLocked()
}

// publishLocked merges the pending delta into the current snapshot and
// atomically swaps the result in. Callers must hold x.mu.
func (x *Index) publishLocked() *Snapshot {
	cur := x.cur.Load()
	if len(x.pendData) == 0 {
		return cur
	}
	next := &Snapshot{
		version: cur.version + 1,
		family:  cur.family,
		k:       cur.k,
		ell:     cur.ell,
		narrow:  cur.narrow,
		sign:    cur.sign,
		data:    append(cur.data, x.pendData...),
		tables:  make([]*Table, cur.ell),
		pool:    cur.pool,
	}
	for t := range next.tables {
		if cur.narrow {
			next.tables[t] = cur.tables[t].merge64(x.pend64[t])
			x.pend64[t] = x.pend64[t][:0]
		} else {
			next.tables[t] = cur.tables[t].mergeStr(x.pendStr[t])
			x.pendStr[t] = x.pendStr[t][:0]
		}
	}
	x.pendData = x.pendData[:0]
	x.cur.Store(next)
	x.npend.Store(0)
	if x.hook != nil {
		x.hook.OnPublish(next)
	}
	return next
}

// Family returns the hash family the index was built with.
func (x *Index) Family() Family { return x.Current().family }

// K returns the number of hash functions per table.
func (x *Index) K() int { return x.Current().k }

// L returns the number of tables ℓ.
func (x *Index) L() int { return x.Current().ell }

// N returns the number of indexed vectors, including pending inserts (which
// it publishes).
func (x *Index) N() int { return x.Snapshot().N() }

// Data returns the indexed vector collection at the latest version
// (publishing pending inserts). Callers must not modify it.
func (x *Index) Data() []vecmath.Vector { return x.Snapshot().data }

// Table returns table t (0-based) at the latest version.
func (x *Index) Table(t int) *Table { return x.Snapshot().tables[t] }

// Tables returns all ℓ tables at the latest version.
func (x *Index) Tables() []*Table { return x.Snapshot().tables }

// KeyFor computes the bucket key of an arbitrary vector in table t at the
// latest version; see Snapshot.KeyFor.
func (x *Index) KeyFor(t int, v vecmath.Vector) string { return x.Snapshot().KeyFor(t, v) }

// SameAnyBucket reports whether vectors i and j share a bucket in at least
// one table at the latest version.
func (x *Index) SameAnyBucket(i, j int) bool { return x.Snapshot().SameAnyBucket(i, j) }

// BucketMultiplicity returns the number of tables in which vectors i and j
// share a bucket (0..ℓ) at the latest version.
func (x *Index) BucketMultiplicity(i, j int) int { return x.Snapshot().BucketMultiplicity(i, j) }

// Query returns the ids of all vectors sharing a bucket with v in any table
// at the latest version; see Snapshot.Query.
func (x *Index) Query(v vecmath.Vector) []int32 { return x.Snapshot().Query(v) }

// Search returns the ids of indexed vectors u with sim(u, v) ≥ τ among the
// LSH candidates of v at the latest version; see Snapshot.Search.
func (x *Index) Search(v vecmath.Vector, tau float64) []int32 { return x.Snapshot().Search(v, tau) }

// SizeBytes estimates the total space of all tables at the latest version.
func (x *Index) SizeBytes() int64 { return x.Snapshot().SizeBytes() }
