package lsh

import (
	"math"
	"testing"
	"testing/quick"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func vec(t *testing.T, entries ...vecmath.Entry) vecmath.Vector {
	t.Helper()
	v, err := vecmath.New(entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func randVec(rng *xrand.RNG, dims, nnz int) vecmath.Vector {
	es := make([]vecmath.Entry, 0, nnz)
	for i := 0; i < nnz; i++ {
		es = append(es, vecmath.Entry{Dim: uint32(rng.Intn(dims)), Weight: float32(rng.Norm())})
	}
	v, err := vecmath.New(es)
	if err != nil {
		panic(err)
	}
	return v
}

func TestSimHashDeterministic(t *testing.T) {
	f := NewSimHash(42)
	v := vec(t, vecmath.Entry{Dim: 1, Weight: 1}, vecmath.Entry{Dim: 7, Weight: -2})
	for fn := 0; fn < 50; fn++ {
		if f.Hash(fn, v) != f.Hash(fn, v) {
			t.Fatalf("fn %d: non-deterministic hash", fn)
		}
		if h := f.Hash(fn, v); h != 0 && h != 1 {
			t.Fatalf("fn %d: hash %d not a bit", fn, h)
		}
	}
}

func TestSimHashSeedMatters(t *testing.T) {
	a, b := NewSimHash(1), NewSimHash(2)
	v := vec(t, vecmath.Entry{Dim: 3, Weight: 1.5})
	diff := 0
	for fn := 0; fn < 256; fn++ {
		if a.Hash(fn, v) != b.Hash(fn, v) {
			diff++
		}
	}
	if diff < 64 {
		t.Fatalf("seeds 1 and 2 differ on only %d/256 functions", diff)
	}
}

func TestSimHashScaleInvariant(t *testing.T) {
	f := NewSimHash(7)
	rng := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		v := randVec(rng, 100, 10)
		s := v.Scale(3.7)
		for fn := 0; fn < 20; fn++ {
			if f.Hash(fn, v) != f.Hash(fn, s) {
				t.Fatalf("trial %d fn %d: positive scaling changed sign bit", trial, fn)
			}
		}
	}
}

func TestSimHashNegationFlips(t *testing.T) {
	f := NewSimHash(7)
	rng := xrand.New(2)
	flips := 0
	const trials, fns = 20, 20
	for trial := 0; trial < trials; trial++ {
		v := randVec(rng, 100, 10)
		neg := v.Scale(-1)
		for fn := 0; fn < fns; fn++ {
			if f.Hash(fn, v) != f.Hash(fn, neg) {
				flips++
			}
		}
	}
	// P(a·v = 0 exactly) is 0, so negation should flip essentially always.
	if flips < trials*fns-2 {
		t.Fatalf("negation flipped only %d/%d sign bits", flips, trials*fns)
	}
}

// TestSimHashCollisionMatchesTheory is the core statistical contract: the
// empirical collision rate over many hash functions must match
// p(s) = 1 − arccos(s)/π.
func TestSimHashCollisionMatchesTheory(t *testing.T) {
	f := NewSimHash(99)
	rng := xrand.New(3)
	// Build a pair with a controlled cosine: u = e0, v = cosθ·e0 + sinθ·e1
	// in a 2-dimensional subspace of a sparse space.
	for _, target := range []float64{0.0, 0.3, 0.6, 0.9} {
		theta := math.Acos(target)
		u := vec(t, vecmath.Entry{Dim: 10, Weight: 1})
		v := vec(t,
			vecmath.Entry{Dim: 10, Weight: float32(math.Cos(theta))},
			vecmath.Entry{Dim: 20, Weight: float32(math.Sin(theta))},
		)
		if got := vecmath.Cosine(u, v); math.Abs(got-target) > 1e-6 {
			t.Fatalf("setup: cosine %v, want %v", got, target)
		}
		const fns = 20000
		coll := 0
		for fn := 0; fn < fns; fn++ {
			if f.Hash(fn, u) == f.Hash(fn, v) {
				coll++
			}
		}
		want := f.CollisionProb(target)
		got := float64(coll) / fns
		se := math.Sqrt(want * (1 - want) / fns)
		if math.Abs(got-want) > 5*se+1e-3 {
			t.Errorf("sim %.1f: collision rate %.4f, theory %.4f", target, got, want)
		}
		_ = rng
	}
}

func TestSimHashCollisionProbCurve(t *testing.T) {
	f := NewSimHash(0)
	cases := []struct{ s, p float64 }{
		{1, 1},
		{-1, 0},
		{0, 0.5},
		{0.5, 1 - math.Acos(0.5)/math.Pi},
	}
	for _, c := range cases {
		if got := f.CollisionProb(c.s); math.Abs(got-c.p) > 1e-12 {
			t.Errorf("CollisionProb(%v) = %v, want %v", c.s, got, c.p)
		}
	}
	// Clamping out-of-range input.
	if f.CollisionProb(1.5) != 1 || f.CollisionProb(-1.5) != 0 {
		t.Error("CollisionProb should clamp to [-1,1]")
	}
}

func TestSimHashInverseCollisionProb(t *testing.T) {
	f := NewSimHash(0)
	quickCheck := func(s float64) bool {
		if s < -1 || s > 1 || math.IsNaN(s) {
			return true
		}
		p := f.CollisionProb(s)
		return math.Abs(f.SimFromCollisionProb(p)-s) < 1e-9
	}
	if err := quick.Check(quickCheck, nil); err != nil {
		t.Error(err)
	}
}

func TestSimHashCollisionProbMonotone(t *testing.T) {
	f := NewSimHash(0)
	prev := -1.0
	for s := -1.0; s <= 1.0; s += 0.01 {
		p := f.CollisionProb(s)
		if p < prev {
			t.Fatalf("CollisionProb not monotone at s=%v", s)
		}
		prev = p
	}
}

func TestMinHashDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewMinHash(5), NewMinHash(6)
	v := vecmath.FromDims([]uint32{1, 2, 3, 4, 5})
	if a.Hash(0, v) != a.Hash(0, v) {
		t.Fatal("MinHash not deterministic")
	}
	diff := 0
	for fn := 0; fn < 64; fn++ {
		if a.Hash(fn, v) != b.Hash(fn, v) {
			diff++
		}
	}
	if diff < 32 {
		t.Fatalf("different seeds agree on %d/64 functions", 64-diff)
	}
}

func TestMinHashCollisionMatchesJaccard(t *testing.T) {
	f := NewMinHash(11)
	// |A∩B| = 2, |A∪B| = 6 → J = 1/3.
	a := vecmath.FromDims([]uint32{1, 2, 3, 4})
	b := vecmath.FromDims([]uint32{3, 4, 5, 6})
	want := vecmath.Jaccard(a, b)
	const fns = 30000
	coll := 0
	for fn := 0; fn < fns; fn++ {
		if f.Hash(fn, a) == f.Hash(fn, b) {
			coll++
		}
	}
	got := float64(coll) / fns
	se := math.Sqrt(want * (1 - want) / fns)
	if math.Abs(got-want) > 5*se+1e-3 {
		t.Errorf("collision rate %.4f, Jaccard %.4f", got, want)
	}
}

func TestMinHashEmptyVector(t *testing.T) {
	f := NewMinHash(1)
	var zero vecmath.Vector
	if f.Hash(0, zero) != f.Hash(0, zero) {
		t.Error("empty-vector hash not stable")
	}
}

func TestMinHashIdenticalSetsAlwaysCollide(t *testing.T) {
	f := NewMinHash(3)
	a := vecmath.FromDims([]uint32{9, 17, 200})
	// Same support, different weights: MinHash only sees the support.
	b, err := vecmath.New([]vecmath.Entry{{Dim: 9, Weight: 5}, {Dim: 17, Weight: 0.1}, {Dim: 200, Weight: -3}})
	if err != nil {
		t.Fatal(err)
	}
	for fn := 0; fn < 100; fn++ {
		if f.Hash(fn, a) != f.Hash(fn, b) {
			t.Fatalf("fn %d: same support hashed differently", fn)
		}
	}
}

func TestFamilyBitsWidth(t *testing.T) {
	if NewSimHash(0).Bits() != 1 {
		t.Error("SimHash should emit 1 bit")
	}
	if NewMinHash(0).Bits() != 32 {
		t.Error("MinHash should emit 32 bits")
	}
	v := vecmath.FromDims([]uint32{1, 2, 3})
	if h := NewMinHash(0).Hash(0, v); h >= 1<<32 {
		t.Errorf("MinHash value %d exceeds 32 bits", h)
	}
}
