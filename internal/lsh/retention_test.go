package lsh

import "testing"

// The retention tests assert snapshot GC health through the RetainedBytes
// accounting walk (accounting.go) instead of heap sampling: the walk is
// deterministic, immune to GC noise and allocator slack, and it measures
// the thing we actually care about — how many bytes version v pins beyond
// version v-1 — rather than a whole-process proxy for it.

// retentionWorkload publishes `rounds` per-insert versions of one index,
// measuring each version's marginal retention over its predecessor. Every
// insert hits the same bucket, so each publish should path-copy only that
// bucket's header, its O(log #buckets) weight-tree root path, and the
// appended key/vector — about 1KB here. If the index, the weight tree or
// the overlay maps accidentally stopped sharing structure between
// versions, the marginals would jump to the footprint scale (see the
// sensitivity control).
func retentionWorkload(t *testing.T, rounds int) (meanMarginal, maxMarginal int64, first, last *Snapshot) {
	t.Helper()
	data := randData(2000, 400, 6, 91)
	idx, err := Build(data, NewSimHash(17), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	first = idx.Snapshot()
	v := data[0]
	prev := first
	var sum int64
	for i := 0; i < rounds; i++ {
		idx.Insert(v)
		last = idx.Snapshot()
		m := last.RetainedBytes(prev)
		if m < 0 {
			t.Fatalf("negative marginal retention %d at round %d", m, i)
		}
		sum += m
		if m > maxMarginal {
			maxMarginal = m
		}
		prev = last
	}
	meanMarginal = sum / int64(rounds)
	return meanMarginal, maxMarginal, first, last
}

// TestSnapshotRetentionBounded is the memory-accounting groundwork for the
// ROADMAP snapshot-GC item: across thousands of per-insert publishes the
// MEAN marginal retention must stay at the path-copy scale. The mean (not
// the max) is the right statistic because backing-array reallocations
// legitimately spike single versions — doubling a 4000-entry key array
// charges that one version tens of KB — but amortize to nothing.
func TestSnapshotRetentionBounded(t *testing.T) {
	const rounds = 1500
	mean, _, first, last := retentionWorkload(t, rounds)

	// Measured mean is ~1KB/version (bucket header + log-depth wnode path +
	// one vector); 4KB separates it cleanly from any sharing regression,
	// which lands at the ~400KB footprint scale per version.
	const bound = 4 << 10
	if mean > bound {
		t.Fatalf("mean marginal retention %d bytes/version over %d per-insert publishes (bound %d): versions have stopped sharing structure",
			mean, rounds, bound)
	}
	if last.N() != first.N()+rounds {
		t.Fatalf("latest version has %d vectors, want %d", last.N(), first.N()+rounds)
	}
	// Holding ONE old version stays cheap and keeps working: structural
	// sharing pins that version's arrays, not every intermediate.
	if first.N() != 2000 || first.Table(0).N() != 2000 {
		t.Fatalf("held snapshot regressed: N=%d", first.N())
	}
}

// TestSnapshotRetentionDetectorSensitivity is the control for the bound
// above: the walker must be measuring sharing, not just reporting small
// numbers. A snapshot's total footprint (RetainedBytes(nil)) has to dwarf
// the per-version marginal, and comparing against an unrelated index —
// where no structure can be shared — has to land at footprint scale too.
func TestSnapshotRetentionDetectorSensitivity(t *testing.T) {
	const rounds = 300
	mean, _, _, last := retentionWorkload(t, rounds)

	total := last.RetainedBytes(nil)
	if total < 100*(mean+1) {
		t.Fatalf("footprint %d not clearly above mean marginal %d: the walk no longer discriminates shared from fresh structure",
			total, mean)
	}

	// An unrelated index of the same shape shares nothing; charging it as a
	// base must not discount anything material.
	other, err := Build(randData(2000, 400, 6, 17), NewSimHash(23), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	cross := last.RetainedBytes(other.Snapshot())
	if cross < total/2 {
		t.Fatalf("cross-index retention %d under half the footprint %d: sharing detected where none exists", cross, total)
	}
}

// TestRetainedBytesEdgeCases pins the identities the accounting API
// documents: self-retention is zero, nil snapshots retain nothing, and a
// base only discounts — it never inflates.
func TestRetainedBytesEdgeCases(t *testing.T) {
	idx, err := Build(randData(200, 100, 5, 3), NewSimHash(7), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := idx.Snapshot()
	if got := s.RetainedBytes(s); got != 0 {
		t.Errorf("self retention = %d, want 0", got)
	}
	var nilSnap *Snapshot
	if got := nilSnap.RetainedBytes(nil); got != 0 {
		t.Errorf("nil snapshot retention = %d, want 0", got)
	}
	idx.Insert(randData(1, 100, 5, 4)[0])
	next := idx.Snapshot()
	if next.RetainedBytes(s) > next.RetainedBytes(nil) {
		t.Errorf("marginal %d exceeds footprint %d", next.RetainedBytes(s), next.RetainedBytes(nil))
	}
	if next.RetainedBytes(nil) <= 0 {
		t.Errorf("footprint = %d, want positive", next.RetainedBytes(nil))
	}
}
