package lsh

import (
	"runtime"
	"testing"
)

// heapAlloc settles the GC and reads live heap bytes.
func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// retentionWorkload publishes `rounds` per-insert versions of one index,
// returning the heap growth across the loop and the first and last
// versions. When keepAll is set every intermediate version stays reachable
// (the regression scenario); otherwise each publish drops the previous
// version's only reference, which is how a serving system behaves.
func retentionWorkload(t *testing.T, rounds int, keepAll bool) (growth int64, first, last *Snapshot, kept []*Snapshot) {
	t.Helper()
	data := randData(2000, 400, 6, 91)
	idx, err := Build(data, NewSimHash(17), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	first = idx.Snapshot()
	v := data[0]
	before := heapAlloc()
	for i := 0; i < rounds; i++ {
		idx.Insert(v)
		last = idx.Snapshot()
		if keepAll {
			kept = append(kept, last)
		}
	}
	growth = int64(heapAlloc()) - int64(before)
	return growth, first, last, kept
}

// TestSnapshotRetentionBounded is the memory-accounting groundwork for the
// ROADMAP snapshot-GC item: publishing thousands of versions and dropping
// the old references must not retain the version history. Every insert hits
// the same bucket, so each publish path-copies that bucket's header and its
// O(log #buckets) weight-tree root path (~1KB/version here, measured by the
// sensitivity control below); if anything — the index, the weight tree, the
// overlay maps — accidentally kept old roots reachable, growth would scale
// with the version count instead of staying at the O(rounds) appended data.
func TestSnapshotRetentionBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory soak")
	}
	const rounds = 4000
	growth, first, last, _ := retentionWorkload(t, rounds, false)

	// Measured live set after dropping references is ~200KB (appended
	// vector headers, grown key arrays, the one latest version); retaining
	// the history costs ~1KB/version ≈ 4MB (see the control). 1.5MB cleanly
	// separates the two regimes with margin for GC noise on both sides.
	const bound = 3 << 19
	if growth > bound {
		t.Fatalf("retained %d bytes after %d per-insert publishes (bound %d): old versions appear to be pinned",
			growth, rounds, bound)
	}
	if last.N() != first.N()+rounds {
		t.Fatalf("latest version has %d vectors, want %d", last.N(), first.N()+rounds)
	}
	// Holding ONE old version is cheap and keeps working: structural
	// sharing pins that version's arrays, not every intermediate.
	if first.N() != 2000 || first.Table(0).N() != 2000 {
		t.Fatalf("held snapshot regressed: N=%d", first.N())
	}
}

// TestSnapshotRetentionDetectorSensitivity is the control for the bound
// above: deliberately keeping every version reachable must blow well past
// it, proving the detector distinguishes the regimes rather than passing
// vacuously.
func TestSnapshotRetentionDetectorSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("memory soak")
	}
	const rounds = 4000
	growth, _, _, kept := retentionWorkload(t, rounds, true)
	if len(kept) != rounds || kept[0].Version() != 2 {
		t.Fatalf("control kept %d versions from %d", len(kept), kept[0].Version())
	}
	if growth < 2*(3<<19) {
		t.Fatalf("control growth %d under 2× the bound: the retention bound no longer discriminates", growth)
	}
}
