package persist

import (
	"fmt"
	"path/filepath"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
)

// A cross-join store is two independent group stores under one CROSS
// manifest:
//
//	dir/CROSS        the cross manifest (family, k, shards, version vectors)
//	dir/left/...     the left side's group store (GROUP + per-shard stores)
//	dir/right/...    the right side's group store
//
// Each side recovers exactly like a sharded store — shard by shard to its
// last durably published version — so the recovered state is a
// componentwise-consistent version-vector pair: every per-shard snapshot on
// either side is one the writer published, and the bipartite estimators are
// defined over any such pair. The CROSS manifest is written last at
// creation, as the commit point: left/right stores without it mean the
// manifest was lost (ErrCorrupt), a missing directory means no store.

const (
	crossLeftDir  = "left"
	crossRightDir = "right"
)

// CrossSideDir returns the group-store directory of one side of a cross
// store rooted at dir (left reports the left side).
func CrossSideDir(dir string, left bool) string {
	if left {
		return filepath.Join(dir, crossLeftDir)
	}
	return filepath.Join(dir, crossRightDir)
}

// CreateCross initializes a two-sided store for a cross join: one group
// store per side, then the CROSS manifest as the commit point. Both sides
// must share family, k and shard count (cross estimators require it). It
// must complete before either group is shared with writers.
func CreateCross(fsys faultfs.FS, dir string, left, right *lsh.ShardGroup) (leftStores, rightStores []*Store, err error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("persist: create cross %s: %w", dir, err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, crossName)); err == nil {
		return nil, nil, fmt.Errorf("persist: %s: %w", dir, ErrExists)
	} else if !faultfs.IsNotExist(err) {
		return nil, nil, fmt.Errorf("persist: create cross %s: %w", dir, err)
	}
	spec, err := lsh.SpecOf(left.Family())
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	rspec, err := lsh.SpecOf(right.Family())
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	if spec != rspec || left.K() != right.K() || left.L() != right.L() || left.S() != right.S() {
		return nil, nil, fmt.Errorf("persist: cross sides disagree on family or shape")
	}
	if leftStores, err = CreateGroup(fsys, CrossSideDir(dir, true), left); err != nil {
		return nil, nil, fmt.Errorf("left side: %w", err)
	}
	if rightStores, err = CreateGroup(fsys, CrossSideDir(dir, false), right); err != nil {
		return nil, nil, fmt.Errorf("right side: %w", err)
	}
	meta := CrossMeta{
		Family: spec, K: left.K(), Shards: left.S(),
		LeftVersions:  groupVersions(leftStores),
		RightVersions: groupVersions(rightStores),
	}
	if err := WriteCrossManifest(fsys, dir, meta); err != nil {
		return nil, nil, err
	}
	return leftStores, rightStores, nil
}

// OpenCross recovers a two-sided store: the CROSS manifest names the shared
// shape, then each side recovers independently through OpenGroup, shard by
// shard, to its last durably published version. The returned meta carries
// the recovered version-vector pair.
func OpenCross(fsys faultfs.FS, dir string) (left, right *lsh.ShardGroup, leftStores, rightStores []*Store, meta CrossMeta, err error) {
	fail := func(err error) (*lsh.ShardGroup, *lsh.ShardGroup, []*Store, []*Store, CrossMeta, error) {
		for _, st := range leftStores {
			st.Close()
		}
		for _, st := range rightStores {
			st.Close()
		}
		return nil, nil, nil, nil, meta, err
	}
	mdata, err := fsys.ReadFile(filepath.Join(dir, crossName))
	if err != nil {
		if !faultfs.IsNotExist(err) {
			return fail(fmt.Errorf("persist: open cross %s: %w", dir, err))
		}
		if hasCrossFiles(fsys, dir) {
			return fail(fmt.Errorf("persist: %s has side stores but no cross manifest: %w", dir, ErrCorrupt))
		}
		return fail(fmt.Errorf("persist: %s: %w", dir, ErrNotExist))
	}
	if meta, err = decodeCrossManifest(mdata); err != nil {
		return fail(err)
	}
	var lmeta, rmeta GroupMeta
	if left, leftStores, lmeta, err = OpenGroup(fsys, CrossSideDir(dir, true)); err != nil {
		return fail(fmt.Errorf("left side: %w", err))
	}
	if right, rightStores, rmeta, err = OpenGroup(fsys, CrossSideDir(dir, false)); err != nil {
		return fail(fmt.Errorf("right side: %w", err))
	}
	for _, side := range []GroupMeta{lmeta, rmeta} {
		if side.Family != meta.Family || side.K != meta.K || side.Shards != meta.Shards || side.Ell != 1 {
			return fail(corrupt("persist: cross manifest and side store disagree on family or shape"))
		}
	}
	meta.LeftVersions, meta.RightVersions = lmeta.Versions, rmeta.Versions
	return left, right, leftStores, rightStores, meta, nil
}

// WriteCrossManifest atomically (re)writes the CROSS manifest.
func WriteCrossManifest(fsys faultfs.FS, dir string, m CrossMeta) error {
	st := &Store{fs: fsys, dir: dir}
	return st.writeFileSync(crossName, encodeCrossManifest(m))
}

// hasCrossFiles reports whether side-store state exists under dir, probed
// by file (not directory listing: the fault filesystem's ReadDir lists
// files only). Side stores without the CROSS commit point mean the cross
// manifest was lost.
func hasCrossFiles(fsys faultfs.FS, dir string) bool {
	for _, side := range []string{crossLeftDir, crossRightDir} {
		sd := filepath.Join(dir, side)
		if _, err := fsys.ReadFile(filepath.Join(sd, groupName)); err == nil {
			return true
		}
		if names, err := fsys.ReadDir(sd); err == nil && (hasGroupFiles(names) || hasStoreFiles(names)) {
			return true
		}
	}
	return false
}
