package persist

import (
	"errors"
	"fmt"
	"testing"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

// Crash-consistency property test: a fixed workload (build → create store →
// inserts with periodic publishes → mid-workload checkpoint → final
// checkpoint) is run once per injection point of every fault mode, the
// filesystem is crashed, and recovery must land in exactly one of two
// states:
//
//   - Open succeeds: the recovered index is deep-equal (SamplePair
//     draw-for-draw) to a version the clean run actually published, no
//     newer than the last one, and — for modes that cannot destroy synced
//     bytes — no older than the faulty run's own durable floor.
//   - Open fails: with a typed error (ErrCorrupt or ErrNotExist), only in
//     runs where the fault could have mangled durable state (bit flips) or
//     interrupted store creation itself.
//
// No run may panic, and every successful recovery must accept further
// writes and reopen again.

const (
	crashInitial = 6
	crashTotal   = 22
	crashK       = 4
	crashEll     = 2
)

func crashFamily() lsh.Family { return lsh.NewSimHash(131) }

// crashWorkload drives the recorded workload against fsys. record, when
// non-nil, captures every published snapshot by version (the shadow of the
// clean run). abortOnErr simulates a process that notices the store failure
// and exits mid-workload. Returns the store's durable floor (0 if Create
// failed) and whether the store hooks were ever installed.
func crashWorkload(data []vecmath.Vector, fsys faultfs.FS, record map[uint64]*lsh.Snapshot, abortOnErr bool) (floor uint64, created bool) {
	idx, err := lsh.Build(data[:crashInitial], crashFamily(), crashK, crashEll)
	if err != nil {
		panic(err) // in-memory build cannot fail on valid input
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		return 0, false
	}
	if record != nil {
		record[idx.Current().Version()] = idx.Current()
	}
	checkpoint := func() {
		idx.PublishAndThen(func(s *lsh.Snapshot) {
			if record != nil {
				record[s.Version()] = s
			}
			st.Checkpoint(s) // failure is sticky; recovery owns the outcome
		})
	}
	for i := crashInitial; i < crashTotal; i++ {
		idx.Insert(data[i])
		if (i-crashInitial)%3 == 2 {
			s := idx.Snapshot()
			if record != nil {
				record[s.Version()] = s
			}
		}
		if i == 14 {
			checkpoint()
		}
		if abortOnErr && st.Err() != nil {
			floor = st.DurableVersion()
			st.Close()
			return floor, true
		}
	}
	checkpoint()
	floor = st.DurableVersion()
	st.Close()
	return floor, true
}

// crashRun is one cell of the injection matrix.
func crashRun(t *testing.T, data []vecmath.Vector, shadow map[uint64]*lsh.Snapshot, ceiling uint64, plan faultfs.Plan, keepUnsynced, abortOnErr bool) {
	t.Helper()
	fsys := faultfs.NewMem()
	fsys.SetPlan(plan)
	floor, created := crashWorkload(data, fsys, nil, abortOnErr)
	fsys.Crash(keepUnsynced)

	lossy := plan.Mode == faultfs.ModeBitFlip
	idx, st, err := Open(fsys, "db")
	if err != nil {
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotExist) {
			t.Fatalf("recovery failed with untyped error: %v", err)
		}
		if created && !lossy {
			t.Fatalf("non-lossy mode must recover once the store exists, got %v", err)
		}
		return
	}
	v := idx.Current().Version()
	want, ok := shadow[v]
	if !ok {
		t.Fatalf("recovered version %d was never published (ceiling %d)", v, ceiling)
	}
	if v > ceiling {
		t.Fatalf("recovered version %d beyond ceiling %d", v, ceiling)
	}
	if !lossy && v < floor {
		t.Fatalf("recovered version %d below durable floor %d", v, floor)
	}
	snapshotsEqual(t, want, idx.Current(), 7001+uint64(plan.Op))

	// A recovered store must keep working: one more durable publish, then a
	// second recovery sees it.
	idx.Insert(data[0])
	next := idx.Snapshot()
	if st.Err() != nil {
		t.Fatalf("store broken after recovery: %v", st.Err())
	}
	if st.DurableVersion() != next.Version() {
		t.Fatalf("post-recovery durable = %d, want %d", st.DurableVersion(), next.Version())
	}
	st.Close()
	idx2, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	snapshotsEqual(t, next, idx2.Current(), 7501+uint64(plan.Op))
	st2.Close()
}

// TestCrashConsistencyProperty sweeps every injection point × fault mode ×
// crash-retention policy over the recorded workload.
func TestCrashConsistencyProperty(t *testing.T) {
	data := testData(crashTotal, 211)

	// Shadow run: record every published version and count the ops the
	// clean workload performs — the sweep bound.
	shadowFS := faultfs.NewMem()
	shadow := make(map[uint64]*lsh.Snapshot)
	crashWorkload(data, shadowFS, shadow, false)
	totalOps := shadowFS.Ops()
	if totalOps < 20 {
		t.Fatalf("workload too small to be interesting: %d ops", totalOps)
	}
	var ceiling uint64
	for v := range shadow {
		if v > ceiling {
			ceiling = v
		}
	}

	type cell struct {
		mode  faultfs.Mode
		keeps []bool // crash-retention policies to sweep
		abort bool   // also run the abort-on-error variant
	}
	cells := []cell{
		// A pure crash drops unsynced state; sweeping keep=true too checks
		// that "everything made it to media" also recovers.
		{faultfs.ModeCrash, []bool{false, true}, false},
		{faultfs.ModeErr, []bool{true}, true},
		{faultfs.ModeShortWrite, []bool{true}, true},
		{faultfs.ModeNoSpace, []bool{true}, true},
		{faultfs.ModeSyncErr, []bool{true}, true},
		{faultfs.ModeBitFlip, []bool{true}, true},
	}
	for _, c := range cells {
		c := c
		t.Run(c.mode.String(), func(t *testing.T) {
			for op := 1; op <= totalOps; op++ {
				for _, keep := range c.keeps {
					plan := faultfs.Plan{Op: op, Mode: c.mode}
					name := fmt.Sprintf("op%03d/keep=%v", op, keep)
					t.Run(name, func(t *testing.T) {
						crashRun(t, data, shadow, ceiling, plan, keep, false)
					})
					if c.abort {
						t.Run(name+"/abort", func(t *testing.T) {
							crashRun(t, data, shadow, ceiling, plan, keep, true)
						})
					}
				}
			}
		})
	}
}
