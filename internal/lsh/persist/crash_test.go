package persist

import (
	"errors"
	"fmt"
	"testing"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

// Crash-consistency property test: a fixed workload (build → create store →
// inserts with periodic publishes → mid-workload checkpoint → final
// checkpoint) is run once per injection point of every fault mode, the
// filesystem is crashed, and recovery must land in exactly one of two
// states:
//
//   - Open succeeds: the recovered index is deep-equal (SamplePair
//     draw-for-draw) to a version the clean run actually published, no
//     newer than the last one, and — for modes that cannot destroy synced
//     bytes — no older than the faulty run's own durable floor.
//   - Open fails: with a typed error (ErrCorrupt or ErrNotExist), only in
//     runs where the fault could have mangled durable state (bit flips) or
//     interrupted store creation itself.
//
// No run may panic, and every successful recovery must accept further
// writes and reopen again.

const (
	crashInitial = 6
	crashTotal   = 22
	crashK       = 4
	crashEll     = 2
)

func crashFamily() lsh.Family { return lsh.NewSimHash(131) }

// crashWorkload drives the recorded workload against fsys. record, when
// non-nil, captures every published snapshot by version (the shadow of the
// clean run). abortOnErr simulates a process that notices the store failure
// and exits mid-workload. Returns the store's durable floor (0 if Create
// failed) and whether the store hooks were ever installed.
func crashWorkload(data []vecmath.Vector, fsys faultfs.FS, record map[uint64]*lsh.Snapshot, abortOnErr bool) (floor uint64, created bool) {
	idx, err := lsh.Build(data[:crashInitial], crashFamily(), crashK, crashEll)
	if err != nil {
		panic(err) // in-memory build cannot fail on valid input
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		return 0, false
	}
	if record != nil {
		record[idx.Current().Version()] = idx.Current()
	}
	checkpoint := func() {
		idx.PublishAndThen(func(s *lsh.Snapshot) {
			if record != nil {
				record[s.Version()] = s
			}
			st.Checkpoint(s) // failure is sticky; recovery owns the outcome
		})
	}
	for i := crashInitial; i < crashTotal; i++ {
		idx.Insert(data[i])
		if (i-crashInitial)%3 == 2 {
			s := idx.Snapshot()
			if record != nil {
				record[s.Version()] = s
			}
		}
		if i == 14 {
			checkpoint()
		}
		if abortOnErr && st.Err() != nil {
			floor = st.DurableVersion()
			st.Close()
			return floor, true
		}
	}
	checkpoint()
	floor = st.DurableVersion()
	st.Close()
	return floor, true
}

// crashWorkloadFunc is one single-store recorded workload; crashWorkload and
// bgCrashWorkload both fit, so one runner sweeps either.
type crashWorkloadFunc func(data []vecmath.Vector, fsys faultfs.FS, record map[uint64]*lsh.Snapshot, abortOnErr bool) (floor uint64, created bool)

// crashRun is one cell of the injection matrix.
func crashRun(t *testing.T, workload crashWorkloadFunc, data []vecmath.Vector, shadow map[uint64]*lsh.Snapshot, ceiling uint64, plan faultfs.Plan, keepUnsynced, abortOnErr bool) {
	t.Helper()
	fsys := faultfs.NewMem()
	fsys.SetPlan(plan)
	floor, created := workload(data, fsys, nil, abortOnErr)
	fsys.Crash(keepUnsynced)

	lossy := plan.Mode == faultfs.ModeBitFlip
	idx, st, err := Open(fsys, "db")
	if err != nil {
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotExist) {
			t.Fatalf("recovery failed with untyped error: %v", err)
		}
		if created && !lossy {
			t.Fatalf("non-lossy mode must recover once the store exists, got %v", err)
		}
		return
	}
	v := idx.Current().Version()
	want, ok := shadow[v]
	if !ok {
		t.Fatalf("recovered version %d was never published (ceiling %d)", v, ceiling)
	}
	if v > ceiling {
		t.Fatalf("recovered version %d beyond ceiling %d", v, ceiling)
	}
	if !lossy && v < floor {
		t.Fatalf("recovered version %d below durable floor %d", v, floor)
	}
	snapshotsEqual(t, want, idx.Current(), 7001+uint64(plan.Op))

	// A recovered store must keep working: one more durable publish, then a
	// second recovery sees it.
	idx.Insert(data[0])
	next := idx.Snapshot()
	if st.Err() != nil {
		t.Fatalf("store broken after recovery: %v", st.Err())
	}
	if st.DurableVersion() != next.Version() {
		t.Fatalf("post-recovery durable = %d, want %d", st.DurableVersion(), next.Version())
	}
	st.Close()
	idx2, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	snapshotsEqual(t, next, idx2.Current(), 7501+uint64(plan.Op))
	st2.Close()
}

// crashCells is the fault-mode × crash-retention × abort matrix every
// crash-consistency sweep covers.
type crashCell struct {
	mode  faultfs.Mode
	keeps []bool // crash-retention policies to sweep
	abort bool   // also run the abort-on-error variant
}

func crashCells() []crashCell {
	return []crashCell{
		// A pure crash drops unsynced state; sweeping keep=true too checks
		// that "everything made it to media" also recovers.
		{faultfs.ModeCrash, []bool{false, true}, false},
		{faultfs.ModeErr, []bool{true}, true},
		{faultfs.ModeShortWrite, []bool{true}, true},
		{faultfs.ModeNoSpace, []bool{true}, true},
		{faultfs.ModeSyncErr, []bool{true}, true},
		{faultfs.ModeBitFlip, []bool{true}, true},
	}
}

// sweepSingleStore runs a single-store workload once per injection point of
// every fault mode and checks the recovery property each time.
func sweepSingleStore(t *testing.T, workload crashWorkloadFunc, data []vecmath.Vector) {
	// Shadow run: record every published version and count the ops the
	// clean workload performs — the sweep bound.
	shadowFS := faultfs.NewMem()
	shadow := make(map[uint64]*lsh.Snapshot)
	workload(data, shadowFS, shadow, false)
	totalOps := shadowFS.Ops()
	if totalOps < 20 {
		t.Fatalf("workload too small to be interesting: %d ops", totalOps)
	}
	var ceiling uint64
	for v := range shadow {
		if v > ceiling {
			ceiling = v
		}
	}

	for _, c := range crashCells() {
		c := c
		t.Run(c.mode.String(), func(t *testing.T) {
			for op := 1; op <= totalOps; op++ {
				for _, keep := range c.keeps {
					plan := faultfs.Plan{Op: op, Mode: c.mode}
					name := fmt.Sprintf("op%03d/keep=%v", op, keep)
					t.Run(name, func(t *testing.T) {
						crashRun(t, workload, data, shadow, ceiling, plan, keep, false)
					})
					if c.abort {
						t.Run(name+"/abort", func(t *testing.T) {
							crashRun(t, workload, data, shadow, ceiling, plan, keep, true)
						})
					}
				}
			}
		})
	}
}

// TestCrashConsistencyProperty sweeps every injection point × fault mode ×
// crash-retention policy over the recorded workload.
func TestCrashConsistencyProperty(t *testing.T) {
	sweepSingleStore(t, crashWorkload, testData(crashTotal, 211))
}

// bgCrashWorkload mirrors crashWorkload with a 1-byte checkpoint threshold
// and per-insert publication, so every publish switches to a fresh delta log
// and hands its snapshot to the background checkpointer — injected faults
// land inside log switches, background snapshot commits and sealed-log
// cleanup, not just the publish path. Close drains the checkpointer, so the
// crash always interrupts media state, never an in-flight goroutine.
func bgCrashWorkload(data []vecmath.Vector, fsys faultfs.FS, record map[uint64]*lsh.Snapshot, abortOnErr bool) (floor uint64, created bool) {
	idx, err := lsh.Build(data[:crashInitial], crashFamily(), crashK, crashEll)
	if err != nil {
		panic(err) // in-memory build cannot fail on valid input
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		return 0, false
	}
	st.SetCheckpointBytes(1)
	if record != nil {
		record[idx.Current().Version()] = idx.Current()
	}
	for i := crashInitial; i < crashTotal; i++ {
		idx.Insert(data[i])
		s := idx.Snapshot()
		if record != nil {
			record[s.Version()] = s
		}
		if abortOnErr && st.Err() != nil {
			break
		}
	}
	floor = st.DurableVersion()
	st.Close()
	return floor, true
}

// TestCrashConsistencyBackgroundCheckpoint is the rotation-heavy sweep: the
// same recovery property must hold when faults interrupt a store that
// switches logs and checkpoints in the background on every publish.
func TestCrashConsistencyBackgroundCheckpoint(t *testing.T) {
	sweepSingleStore(t, bgCrashWorkload, testData(crashTotal, 223))
}

// Cross-store crash consistency: the same property, per (side, shard). A
// fault may land in either side's stores or the CROSS manifest itself;
// recovery must either fail typed (only when creation itself was
// interrupted or the mode is lossy) or land every shard of both sides on a
// version that side actually published, within [floor, ceiling].

const (
	xShards  = 2
	xInitial = 8 // initial vectors per side
	xTotal   = 26
)

// crossRecord is the per-(side, shard) shadow: version → published snapshot.
type crossRecord [2][]map[uint64]*lsh.Snapshot

func newCrossRecord() crossRecord {
	var r crossRecord
	for side := range r {
		r[side] = make([]map[uint64]*lsh.Snapshot, xShards)
		for s := range r[side] {
			r[side][s] = make(map[uint64]*lsh.Snapshot)
		}
	}
	return r
}

// crossCrashWorkload drives the recorded two-sided workload: create the
// cross store, alternate inserts between sides with per-shard publishes, a
// mid-workload left-side checkpoint, then final checkpoints on both sides.
func crossCrashWorkload(data []vecmath.Vector, fsys faultfs.FS, record crossRecord, abortOnErr bool) (floors [2][]uint64, created bool) {
	fam := crashFamily()
	lg, err := lsh.NewShardGroup(data[:xInitial], fam, crashK, 1, xShards)
	if err != nil {
		panic(err) // in-memory build cannot fail on valid input
	}
	rg, err := lsh.NewShardGroup(data[xInitial:2*xInitial], fam, crashK, 1, xShards)
	if err != nil {
		panic(err)
	}
	lst, rst, err := CreateCross(fsys, "xj", lg, rg)
	if err != nil {
		return floors, false
	}
	groups := [2]*lsh.ShardGroup{lg, rg}
	stores := [2][]*Store{lst, rst}
	rec := func(side, shard int, s *lsh.Snapshot) {
		if record[side] != nil {
			record[side][shard][s.Version()] = s
		}
	}
	for side := range groups {
		for s := 0; s < xShards; s++ {
			rec(side, s, groups[side].Shard(s).Current())
		}
	}
	checkpoint := func(side int) {
		for s := 0; s < xShards; s++ {
			st := stores[side][s]
			shard := s
			groups[side].Shard(s).PublishAndThen(func(snap *lsh.Snapshot) {
				rec(side, shard, snap)
				st.Checkpoint(snap) // failure is sticky; recovery owns the outcome
			})
		}
	}
	broken := func() bool {
		for side := range stores {
			for _, st := range stores[side] {
				if st.Err() != nil {
					return true
				}
			}
		}
		return false
	}
	aborted := false
	for i := 2 * xInitial; i < len(data); i++ {
		side := i % 2
		id := groups[side].Insert(data[i])
		shard, _ := lsh.SplitGroupID(id)
		if i%3 != 0 {
			rec(side, shard, groups[side].Shard(shard).Snapshot())
		}
		if i == 2*xInitial+6 {
			checkpoint(0)
		}
		if abortOnErr && broken() {
			aborted = true
			break
		}
	}
	if !aborted {
		checkpoint(0)
		checkpoint(1)
	}
	for side := range stores {
		floors[side] = make([]uint64, xShards)
		for s, st := range stores[side] {
			floors[side][s] = st.DurableVersion()
			st.Close()
		}
	}
	return floors, true
}

// crossCrashRun is one cell of the two-sided injection matrix.
func crossCrashRun(t *testing.T, data []vecmath.Vector, shadow crossRecord, ceilings [2][]uint64, plan faultfs.Plan, keepUnsynced, abortOnErr bool) {
	t.Helper()
	fsys := faultfs.NewMem()
	fsys.SetPlan(plan)
	floors, created := crossCrashWorkload(data, fsys, crossRecord{}, abortOnErr)
	fsys.Crash(keepUnsynced)

	lossy := plan.Mode == faultfs.ModeBitFlip
	lg, rg, lst, rst, meta, err := OpenCross(fsys, "xj")
	if err != nil {
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotExist) {
			t.Fatalf("recovery failed with untyped error: %v", err)
		}
		if created && !lossy {
			t.Fatalf("non-lossy mode must recover once the store exists, got %v", err)
		}
		return
	}
	groups := [2]*lsh.ShardGroup{lg, rg}
	stores := [2][]*Store{lst, rst}
	vers := [2][]uint64{meta.LeftVersions, meta.RightVersions}
	for side := range groups {
		for s := 0; s < xShards; s++ {
			v := vers[side][s]
			want, ok := shadow[side][s][v]
			if !ok {
				t.Fatalf("side %d shard %d recovered version %d was never published", side, s, v)
			}
			if v > ceilings[side][s] {
				t.Fatalf("side %d shard %d recovered version %d beyond ceiling %d", side, s, v, ceilings[side][s])
			}
			if !lossy && created && v < floors[side][s] {
				t.Fatalf("side %d shard %d recovered version %d below durable floor %d", side, s, v, floors[side][s])
			}
			snapshotsEqual(t, want, groups[side].Shard(s).Current(), 8101+uint64(plan.Op)+uint64(side*xShards+s))
		}
	}

	// Both sides must keep working: one more durable publish per side, then
	// a second recovery sees the whole pair again.
	for side := range groups {
		id := groups[side].Insert(data[side])
		shard, _ := lsh.SplitGroupID(id)
		next := groups[side].Shard(shard).Snapshot()
		st := stores[side][shard]
		if st.Err() != nil {
			t.Fatalf("side %d store broken after recovery: %v", side, st.Err())
		}
		if st.DurableVersion() != next.Version() {
			t.Fatalf("side %d post-recovery durable = %d, want %d", side, st.DurableVersion(), next.Version())
		}
	}
	for side := range stores {
		for _, st := range stores[side] {
			st.Close()
		}
	}
	_, _, lst2, rst2, _, err := OpenCross(fsys, "xj")
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	for _, st := range append(lst2, rst2...) {
		st.Close()
	}
}

// TestCrossCrashConsistencyProperty sweeps every injection point × fault
// mode × crash-retention policy over the two-sided workload.
func TestCrossCrashConsistencyProperty(t *testing.T) {
	data := testData(xTotal, 307)

	shadowFS := faultfs.NewMem()
	shadow := newCrossRecord()
	crossCrashWorkload(data, shadowFS, shadow, false)
	totalOps := shadowFS.Ops()
	if totalOps < 30 {
		t.Fatalf("workload too small to be interesting: %d ops", totalOps)
	}
	var ceilings [2][]uint64
	for side := range shadow {
		ceilings[side] = make([]uint64, xShards)
		for s := range shadow[side] {
			for v := range shadow[side][s] {
				if v > ceilings[side][s] {
					ceilings[side][s] = v
				}
			}
		}
	}

	for _, c := range crashCells() {
		c := c
		t.Run(c.mode.String(), func(t *testing.T) {
			for op := 1; op <= totalOps; op++ {
				for _, keep := range c.keeps {
					plan := faultfs.Plan{Op: op, Mode: c.mode}
					name := fmt.Sprintf("op%03d/keep=%v", op, keep)
					t.Run(name, func(t *testing.T) {
						crossCrashRun(t, data, shadow, ceilings, plan, keep, false)
					})
					if c.abort {
						t.Run(name+"/abort", func(t *testing.T) {
							crossCrashRun(t, data, shadow, ceilings, plan, keep, true)
						})
					}
				}
			}
		})
	}
}
