package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

// On-disk snapshot format. A snapshot file is the magic string followed by
// a sequence of checksummed sections:
//
//	8 bytes  magic "LSHSNAP1"
//	repeat:
//	    uint32  section type
//	    uint64  payload length
//	    payload
//	    uint32  CRC32-C over (type, length, payload)
//
// in the fixed order meta, data, one table section per table, end. The end
// section (empty payload) doubles as an explicit EOF marker, so a file
// truncated at any byte — even exactly at a section boundary — fails
// decoding. Sections are checksummed individually to localize corruption;
// every decode failure, including trailing garbage after the end section,
// reports ErrCorrupt.
//
// The meta section carries the family spec (name, seed, bit width), k, ℓ,
// the snapshot version and the vector count. The data section carries the
// vectors in vecio's encoding (uvarint nnz, delta-coded dims, float32
// weights). A table section carries the bucket sequence in deterministic
// first-appearance order: per bucket, the packed key (8 bytes narrow,
// 8·k wide) and the member ids delta-coded ascending. That sequence is the
// whole table — per-vector keys, lookup maps and the Fenwick weight tree
// are rebuilt on load, which lsh.RestoreIndex proves equivalent (including
// SamplePair draw-for-draw; see restore.go and persist_test.go).

const (
	snapMagic     = "LSHSNAP1"
	manifestMagic = "LSHMAN1\n"
	groupMagic    = "LSHGRP1\n"
	crossMagic    = "LSHXJN1\n"
	walMagic      = "LSHWAL1\n"

	secMeta  = uint32(1)
	secData  = uint32(2)
	secTable = uint32(3)
	secEnd   = uint32(0x444E45) // "END"

	formatVersion = 1

	// Decode limits: corrupted lengths must not drive huge allocations.
	maxNameLen = 64
	maxEll     = 1 << 12
	maxK       = 1 << 16
	maxN       = 1<<31 - 1
	maxNNZ     = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// appendSection frames payload as one checksummed section.
func appendSection(buf []byte, typ uint32, payload []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// cursor is a bounds-checked reader over a decoded byte slice. Every read
// failure is an ErrCorrupt.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) rem() int { return len(c.data) - c.off }

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.rem() < n {
		return nil, corrupt("persist: truncated at offset %d", c.off)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, corrupt("persist: bad uvarint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// section reads the next section, verifying its checksum, and returns its
// type and payload.
func (c *cursor) section() (uint32, []byte, error) {
	start := c.off
	typ, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	plen, err := c.u64()
	if err != nil {
		return 0, nil, err
	}
	if plen > uint64(c.rem()) {
		return 0, nil, corrupt("persist: section length %d exceeds file", plen)
	}
	payload, err := c.bytes(int(plen))
	if err != nil {
		return 0, nil, err
	}
	sum := crc32.Checksum(c.data[start:c.off], crcTable)
	want, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	if sum != want {
		return 0, nil, corrupt("persist: section type %d checksum mismatch", typ)
	}
	return typ, payload, nil
}

// snapMeta is the decoded meta section.
type snapMeta struct {
	spec    lsh.FamilySpec
	k, ell  int
	version uint64
	n       int
}

// appendVector serializes one vector (uvarint nnz, then per entry a
// delta-coded dim and the float32 weight bits).
func appendVector(buf []byte, v vecmath.Vector) []byte {
	es := v.Entries()
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	prev := uint32(0)
	for _, e := range es {
		buf = binary.AppendUvarint(buf, uint64(e.Dim-prev))
		prev = e.Dim
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(e.Weight))
	}
	return buf
}

// decodeVector inverts appendVector, validating through vecmath.New so
// corrupt entries (non-finite weights, overflowing dims) are rejected.
func decodeVector(c *cursor) (vecmath.Vector, error) {
	nnz, err := c.uvarint()
	if err != nil {
		return vecmath.Vector{}, err
	}
	if nnz > maxNNZ || nnz > uint64(c.rem()) {
		return vecmath.Vector{}, corrupt("persist: vector nnz %d exceeds limits", nnz)
	}
	es := make([]vecmath.Entry, 0, nnz)
	dim := uint64(0)
	for e := uint64(0); e < nnz; e++ {
		delta, err := c.uvarint()
		if err != nil {
			return vecmath.Vector{}, err
		}
		dim += delta
		if dim > math.MaxUint32 {
			return vecmath.Vector{}, corrupt("persist: vector dim overflows")
		}
		bits, err := c.u32()
		if err != nil {
			return vecmath.Vector{}, err
		}
		es = append(es, vecmath.Entry{Dim: uint32(dim), Weight: math.Float32frombits(bits)})
	}
	v, err := vecmath.New(es)
	if err != nil {
		return vecmath.Vector{}, corrupt("persist: bad vector: %v", err)
	}
	return v, nil
}

// encodeSnapshot serializes a published snapshot.
func encodeSnapshot(s *lsh.Snapshot) ([]byte, error) {
	spec, err := lsh.SpecOf(s.Family())
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if s.N() > maxN {
		return nil, fmt.Errorf("persist: %d vectors exceed format limit", s.N())
	}
	buf := []byte(snapMagic)

	var meta []byte
	meta = binary.AppendUvarint(meta, formatVersion)
	meta = binary.AppendUvarint(meta, uint64(len(spec.Name)))
	meta = append(meta, spec.Name...)
	meta = binary.LittleEndian.AppendUint64(meta, spec.Seed)
	meta = binary.AppendUvarint(meta, uint64(spec.Bits))
	meta = binary.AppendUvarint(meta, uint64(s.K()))
	meta = binary.AppendUvarint(meta, uint64(s.L()))
	meta = binary.LittleEndian.AppendUint64(meta, s.Version())
	meta = binary.AppendUvarint(meta, uint64(s.N()))
	buf = appendSection(buf, secMeta, meta)

	var data []byte
	for _, v := range s.Data() {
		data = appendVector(data, v)
	}
	buf = appendSection(buf, secData, data)

	for t := 0; t < s.L(); t++ {
		tab := s.Table(t)
		var sec []byte
		sec = binary.AppendUvarint(sec, uint64(tab.NumBuckets()))
		tab.ForEachBucket(func(key string, ids []int32) bool {
			sec = append(sec, key...)
			sec = binary.AppendUvarint(sec, uint64(len(ids)))
			prev := int32(-1)
			for _, id := range ids {
				sec = binary.AppendUvarint(sec, uint64(id-prev))
				prev = id
			}
			return true
		})
		buf = appendSection(buf, secTable, sec)
	}
	return appendSection(buf, secEnd, nil), nil
}

// decodeMeta parses the meta section payload.
func decodeMeta(payload []byte) (snapMeta, error) {
	c := &cursor{data: payload}
	var m snapMeta
	fv, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if fv != formatVersion {
		return m, corrupt("persist: unsupported format version %d", fv)
	}
	nameLen, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if nameLen > maxNameLen {
		return m, corrupt("persist: family name length %d", nameLen)
	}
	name, err := c.bytes(int(nameLen))
	if err != nil {
		return m, err
	}
	m.spec.Name = string(name)
	if m.spec.Seed, err = c.u64(); err != nil {
		return m, err
	}
	bits, err := c.uvarint()
	if err != nil {
		return m, err
	}
	m.spec.Bits = int(bits)
	k, err := c.uvarint()
	if err != nil {
		return m, err
	}
	ell, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if k < 1 || k > maxK || ell < 1 || ell > maxEll {
		return m, corrupt("persist: parameters k=%d ℓ=%d out of range", k, ell)
	}
	m.k, m.ell = int(k), int(ell)
	if m.version, err = c.u64(); err != nil {
		return m, err
	}
	n, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if n > maxN {
		return m, corrupt("persist: vector count %d out of range", n)
	}
	m.n = int(n)
	if c.rem() != 0 {
		return m, corrupt("persist: %d trailing bytes in meta section", c.rem())
	}
	return m, nil
}

// decodeTable parses one table section payload into the bucket sequence.
func decodeTable(payload []byte, keyLen, n int) ([]lsh.RestoredBucket, error) {
	c := &cursor{data: payload}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// Each bucket occupies at least keyLen+2 bytes, and non-empty buckets
	// cannot outnumber vectors.
	if count > uint64(n) || count > uint64(len(payload)/(keyLen+2)+1) {
		return nil, corrupt("persist: bucket count %d out of range", count)
	}
	seq := make([]lsh.RestoredBucket, 0, count)
	for b := uint64(0); b < count; b++ {
		key, err := c.bytes(keyLen)
		if err != nil {
			return nil, err
		}
		sz, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if sz > uint64(n) || sz > uint64(c.rem()+1) {
			return nil, corrupt("persist: bucket size %d out of range", sz)
		}
		ids := make([]int32, 0, sz)
		prev := int64(-1)
		for i := uint64(0); i < sz; i++ {
			delta, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if delta == 0 || delta > uint64(n) {
				return nil, corrupt("persist: bucket id delta %d invalid", delta)
			}
			prev += int64(delta)
			if prev >= int64(n) {
				return nil, corrupt("persist: bucket id %d out of range", prev)
			}
			ids = append(ids, int32(prev))
		}
		seq = append(seq, lsh.RestoredBucket{Key: string(key), IDs: ids})
	}
	if c.rem() != 0 {
		return nil, corrupt("persist: %d trailing bytes in table section", c.rem())
	}
	return seq, nil
}

// decodeSnapshot parses a snapshot file and rebuilds the writable index at
// that version. It never panics on arbitrary input (FuzzSnapshotDecode).
func decodeSnapshot(data []byte) (*lsh.Index, error) {
	c := &cursor{data: data}
	magic, err := c.bytes(len(snapMagic))
	if err != nil || string(magic) != snapMagic {
		return nil, corrupt("persist: bad snapshot magic")
	}
	typ, payload, err := c.section()
	if err != nil {
		return nil, err
	}
	if typ != secMeta {
		return nil, corrupt("persist: first section type %d, want meta", typ)
	}
	meta, err := decodeMeta(payload)
	if err != nil {
		return nil, err
	}
	family, err := lsh.FamilyFromSpec(meta.spec)
	if err != nil {
		return nil, corrupt("persist: %v", err)
	}

	typ, payload, err = c.section()
	if err != nil {
		return nil, err
	}
	if typ != secData {
		return nil, corrupt("persist: second section type %d, want data", typ)
	}
	dc := &cursor{data: payload}
	if meta.n > len(payload) {
		return nil, corrupt("persist: %d vectors in %d-byte data section", meta.n, len(payload))
	}
	vectors := make([]vecmath.Vector, 0, meta.n)
	for i := 0; i < meta.n; i++ {
		v, err := decodeVector(dc)
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, v)
	}
	if dc.rem() != 0 {
		return nil, corrupt("persist: %d trailing bytes in data section", dc.rem())
	}

	keyLen := 8
	if meta.k*meta.spec.Bits > 64 {
		keyLen = 8 * meta.k
	}
	tables := make([][]lsh.RestoredBucket, meta.ell)
	for t := 0; t < meta.ell; t++ {
		typ, payload, err = c.section()
		if err != nil {
			return nil, err
		}
		if typ != secTable {
			return nil, corrupt("persist: section type %d, want table", typ)
		}
		if tables[t], err = decodeTable(payload, keyLen, meta.n); err != nil {
			return nil, err
		}
	}

	typ, payload, err = c.section()
	if err != nil {
		return nil, err
	}
	if typ != secEnd || len(payload) != 0 {
		return nil, corrupt("persist: missing end section")
	}
	if c.rem() != 0 {
		return nil, corrupt("persist: %d bytes after end section", c.rem())
	}

	idx, err := lsh.RestoreIndex(family, meta.k, meta.ell, meta.version, vectors, tables)
	if err != nil {
		return nil, corrupt("persist: %v", err)
	}
	return idx, nil
}

// encodeManifest frames the durable snapshot version.
func encodeManifest(version uint64) []byte {
	buf := []byte(manifestMagic)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeManifest inverts encodeManifest.
func decodeManifest(data []byte) (uint64, error) {
	if len(data) != len(manifestMagic)+12 || string(data[:len(manifestMagic)]) != manifestMagic {
		return 0, corrupt("persist: bad manifest")
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, corrupt("persist: manifest checksum mismatch")
	}
	v := binary.LittleEndian.Uint64(data[len(manifestMagic):])
	if v < 1 {
		return 0, corrupt("persist: manifest version 0")
	}
	return v, nil
}

// GroupMeta is the sharded store's group manifest: the shared hashing
// parameters plus the per-shard snapshot versions at the last group write
// (informational — each shard's own manifest is authoritative for
// recovery).
type GroupMeta struct {
	Family   lsh.FamilySpec
	K, Ell   int
	Shards   int
	Versions []uint64
}

// encodeGroupManifest frames a GroupMeta.
func encodeGroupManifest(m GroupMeta) []byte {
	buf := []byte(groupMagic)
	buf = binary.AppendUvarint(buf, formatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.Family.Name)))
	buf = append(buf, m.Family.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Family.Seed)
	buf = binary.AppendUvarint(buf, uint64(m.Family.Bits))
	buf = binary.AppendUvarint(buf, uint64(m.K))
	buf = binary.AppendUvarint(buf, uint64(m.Ell))
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	for s := 0; s < m.Shards; s++ {
		v := uint64(0)
		if s < len(m.Versions) {
			v = m.Versions[s]
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeGroupManifest inverts encodeGroupManifest.
func decodeGroupManifest(data []byte) (GroupMeta, error) {
	var m GroupMeta
	if len(data) < len(groupMagic)+4 || string(data[:len(groupMagic)]) != groupMagic {
		return m, corrupt("persist: bad group manifest")
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return m, corrupt("persist: group manifest checksum mismatch")
	}
	c := &cursor{data: body, off: len(groupMagic)}
	fv, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if fv != formatVersion {
		return m, corrupt("persist: unsupported group format version %d", fv)
	}
	nameLen, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if nameLen > maxNameLen {
		return m, corrupt("persist: family name length %d", nameLen)
	}
	name, err := c.bytes(int(nameLen))
	if err != nil {
		return m, err
	}
	m.Family.Name = string(name)
	if m.Family.Seed, err = c.u64(); err != nil {
		return m, err
	}
	bits, err := c.uvarint()
	if err != nil {
		return m, err
	}
	m.Family.Bits = int(bits)
	k, err := c.uvarint()
	if err != nil {
		return m, err
	}
	ell, err := c.uvarint()
	if err != nil {
		return m, err
	}
	shards, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if k < 1 || k > maxK || ell < 1 || ell > maxEll || shards < 1 || shards > lsh.MaxShards {
		return m, corrupt("persist: group parameters out of range")
	}
	m.K, m.Ell, m.Shards = int(k), int(ell), int(shards)
	m.Versions = make([]uint64, m.Shards)
	for s := 0; s < m.Shards; s++ {
		if m.Versions[s], err = c.u64(); err != nil {
			return m, err
		}
	}
	if c.rem() != 0 {
		return m, corrupt("persist: %d trailing bytes in group manifest", c.rem())
	}
	return m, nil
}

// CrossMeta is the two-sided (cross-join) store's CROSS manifest: the
// hashing parameters shared by both sides plus the per-shard snapshot
// version vector of each side at the last cross write (informational —
// each side's group store is authoritative for recovery). Cross joins
// stratify by a single bipartite matching, so ℓ is always 1.
type CrossMeta struct {
	Family lsh.FamilySpec
	K      int
	Shards int // per side
	LeftVersions,
	RightVersions []uint64
}

// encodeCrossManifest frames a CrossMeta.
func encodeCrossManifest(m CrossMeta) []byte {
	buf := []byte(crossMagic)
	buf = binary.AppendUvarint(buf, formatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.Family.Name)))
	buf = append(buf, m.Family.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Family.Seed)
	buf = binary.AppendUvarint(buf, uint64(m.Family.Bits))
	buf = binary.AppendUvarint(buf, uint64(m.K))
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	for _, side := range [][]uint64{m.LeftVersions, m.RightVersions} {
		for s := 0; s < m.Shards; s++ {
			v := uint64(0)
			if s < len(side) {
				v = side[s]
			}
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeCrossManifest inverts encodeCrossManifest.
func decodeCrossManifest(data []byte) (CrossMeta, error) {
	var m CrossMeta
	if len(data) < len(crossMagic)+4 || string(data[:len(crossMagic)]) != crossMagic {
		return m, corrupt("persist: bad cross manifest")
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return m, corrupt("persist: cross manifest checksum mismatch")
	}
	c := &cursor{data: body, off: len(crossMagic)}
	fv, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if fv != formatVersion {
		return m, corrupt("persist: unsupported cross format version %d", fv)
	}
	nameLen, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if nameLen > maxNameLen {
		return m, corrupt("persist: family name length %d", nameLen)
	}
	name, err := c.bytes(int(nameLen))
	if err != nil {
		return m, err
	}
	m.Family.Name = string(name)
	if m.Family.Seed, err = c.u64(); err != nil {
		return m, err
	}
	bits, err := c.uvarint()
	if err != nil {
		return m, err
	}
	m.Family.Bits = int(bits)
	k, err := c.uvarint()
	if err != nil {
		return m, err
	}
	shards, err := c.uvarint()
	if err != nil {
		return m, err
	}
	if k < 1 || k > maxK || shards < 1 || shards > lsh.MaxShards {
		return m, corrupt("persist: cross parameters out of range")
	}
	m.K, m.Shards = int(k), int(shards)
	m.LeftVersions = make([]uint64, m.Shards)
	m.RightVersions = make([]uint64, m.Shards)
	for _, side := range [][]uint64{m.LeftVersions, m.RightVersions} {
		for s := 0; s < m.Shards; s++ {
			if side[s], err = c.u64(); err != nil {
				return m, err
			}
		}
	}
	if c.rem() != 0 {
		return m, corrupt("persist: %d trailing bytes in cross manifest", c.rem())
	}
	return m, nil
}
