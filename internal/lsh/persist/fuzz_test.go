package persist

import (
	"testing"

	"lshjoin/internal/lsh"
)

// fuzzSeedBlobs encodes real store artifacts so the fuzzer starts from the
// valid format and mutates inward, instead of spending its budget on magic
// bytes.
func fuzzSeedBlobs(tb testing.TB) [][]byte {
	tb.Helper()
	var blobs [][]byte
	for _, cfg := range roundtripConfigs {
		data := testData(12, 171)
		idx, err := lsh.Build(data, cfg.family, cfg.k, cfg.ell)
		if err != nil {
			tb.Fatal(err)
		}
		blob, err := encodeSnapshot(idx.Current())
		if err != nil {
			tb.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	blobs = append(blobs, encodeManifest(3))
	wal := appendWalHeader(nil, 1)
	wal = appendInsertRec(wal, 12, testData(1, 5)[0])
	wal = appendBatchRec(wal, 13, testData(3, 6))
	wal = appendPublishRec(wal, 2)
	blobs = append(blobs, wal)
	blobs = append(blobs, encodeGroupManifest(GroupMeta{
		Family: lsh.FamilySpec{Name: "simhash", Seed: 9, Bits: 1},
		K:      4, Ell: 2, Shards: 3, Versions: []uint64{1, 2, 3},
	}))
	blobs = append(blobs, encodeCrossManifest(CrossMeta{
		Family: lsh.FamilySpec{Name: "simhash", Seed: 11, Bits: 1},
		K:      4, Shards: 2,
		LeftVersions: []uint64{2, 5}, RightVersions: []uint64{3, 1},
	}))
	return blobs
}

// FuzzSnapshotDecode asserts the whole decode surface never panics on
// arbitrary bytes — snapshots, manifests, group manifests and delta logs
// all go through it, since any of those files can arrive corrupted. A
// successfully decoded snapshot must additionally be a usable index.
func FuzzSnapshotDecode(f *testing.F) {
	for _, blob := range fuzzSeedBlobs(f) {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if idx, err := decodeSnapshot(data); err == nil {
			s := idx.Current()
			if s.Version() < 1 {
				t.Fatalf("decoded snapshot with version %d", s.Version())
			}
			for ti := 0; ti < s.L(); ti++ {
				s.Table(ti).NH() // exercises the rebuilt Fenwick tree
			}
		}
		decodeManifest(data)
		decodeGroupManifest(data)
		decodeCrossManifest(data)
		scanWAL(data, 1)
	})
}
