package persist

import (
	"encoding/binary"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

// Exported codec entry points for the network layer (internal/shardrpc).
// The wire protocol deliberately reuses the store's formats: a shard
// server's snapshot-fetch response carries exactly the bytes a checkpoint
// file holds, and streamed ingest carries vectors in the delta log's vector
// encoding. One codec, one set of decode limits, one fuzz surface.

// EncodeSnapshot serializes a published snapshot in the checkpoint file
// format (magic, checksummed meta/data/table/end sections).
func EncodeSnapshot(s *lsh.Snapshot) ([]byte, error) { return encodeSnapshot(s) }

// DecodeSnapshot parses a snapshot encoding and rebuilds the writable index
// at that version. Decoding validates everything a corrupted or adversarial
// peer could get wrong and never panics; failures wrap ErrCorrupt.
func DecodeSnapshot(data []byte) (*lsh.Index, error) { return decodeSnapshot(data) }

// EncodeVectors frames a vector batch: a uvarint count followed by each
// vector in the store's encoding (uvarint nnz, delta-coded dims, float32
// weight bits).
func EncodeVectors(vs []vecmath.Vector) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(vs)))
	for _, v := range vs {
		buf = appendVector(buf, v)
	}
	return buf
}

// DecodeVectors inverts EncodeVectors, rejecting trailing bytes and
// applying the store's decode limits; failures wrap ErrCorrupt.
func DecodeVectors(payload []byte) ([]vecmath.Vector, error) {
	c := &cursor{data: payload}
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	// A vector occupies at least one byte, so a count past the payload size
	// is corrupt regardless of contents.
	if n > maxN || n > uint64(len(payload)) {
		return nil, corrupt("persist: vector count %d exceeds limits", n)
	}
	vs := make([]vecmath.Vector, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := decodeVector(c)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	if c.rem() != 0 {
		return nil, corrupt("persist: %d trailing bytes after vectors", c.rem())
	}
	return vs, nil
}
