// Package persist gives LSH indexes a crash-safe on-disk home. The design
// follows the snapshot discipline of the in-memory layer: immutable
// published versions are the durability unit.
//
// A store directory holds three kinds of files:
//
//	MANIFEST        names the latest durable checkpoint version v
//	snap-<v>.lsnap  the checkpointed snapshot (format.go)
//	wal-<v>.log     the pending-delta log extending checkpoint v (wal.go)
//
// Checkpoints are written cold-path atomic: snapshot to a temp file, fsync,
// rename, directory fsync, then the manifest the same way, then a fresh
// empty delta log — so a crash at any byte leaves either the old checkpoint
// chain or the new one, never a mix. Between checkpoints, the Store hangs
// off the index's write hook (lsh.WriteHook): inserts append records to an
// in-memory buffer, and each publish appends a marker, writes the buffer to
// the log and fsyncs it. Recovery (Open) is therefore pure replay: load
// snap-<v>, re-insert the log's records, and cut versions at the markers —
// which reproduces the exact merge sequence of the original process, so the
// reopened index is deep-equal to the last durable publish, SamplePair
// draw-for-draw included.
//
// Failure handling is sticky: the first log write or sync error disables
// further appends (a half-written record must never be followed by a valid
// one, or recovery would see mid-file corruption instead of a torn tail).
// A later successful checkpoint repairs the store — the snapshot supersedes
// the broken log — which is what Close attempts. The crash-consistency
// property test (persist_test.go) drives every injection point of
// internal/faultfs through this machinery.
package persist

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

var (
	// ErrCorrupt reports a store whose on-disk state fails validation in a
	// way recovery must not paper over: checksum mismatches away from the
	// log tail, impossible structure, version skew between files.
	ErrCorrupt = errors.New("persist: corrupt store")
	// ErrExists reports a Create into a directory that already holds a store.
	ErrExists = errors.New("persist: store already exists")
	// ErrNotExist reports an Open of a directory holding no store.
	ErrNotExist = errors.New("persist: store does not exist")
)

const (
	manifestName = "MANIFEST"
	groupName    = "GROUP"

	// DefaultCheckpointBytes caps delta-log growth: once a publish leaves
	// the log larger than this, the store checkpoints inline, bounding
	// both recovery replay time and disk usage.
	DefaultCheckpointBytes = 4 << 20

	// maxBatchRecVectors splits large InsertBatch calls across several log
	// records, keeping any single record's length well inside uint32.
	maxBatchRecVectors = 1 << 16
)

func snapName(v uint64) string { return fmt.Sprintf("snap-%016x.lsnap", v) }
func walName(v uint64) string  { return fmt.Sprintf("wal-%016x.log", v) }

// Store is the durable backing of one lsh.Index. It implements
// lsh.WriteHook; install it with idx.SetWriteHook (Create and Open do).
// Hook callbacks run under the index's writer lock, so the log order always
// matches the id-assignment order.
//
// Insert cannot return errors through the public API, so log failures are
// sticky and surface at Close (or Err): after one, the store stops logging
// and the durable state freezes at the last version that reached disk,
// until a successful checkpoint repairs it.
type Store struct {
	fs  faultfs.FS
	dir string

	mu              sync.Mutex
	wal             faultfs.File
	walBase         uint64 // checkpoint version the current log extends
	walLen          int    // bytes written to the log, header included
	durable         uint64 // last version known durable
	buf             []byte // records encoded but not yet written
	err             error  // sticky first failure; cleared by checkpoint
	closed          bool
	checkpointBytes int
}

// Create initializes a fresh store in dir from the index's current state
// (publishing any pending inserts) and installs the write hook. It must
// complete before the index is shared with concurrent writers. Creating
// over an existing store reports ErrExists.
func Create(fsys faultfs.FS, dir string, idx *lsh.Index) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("persist: %s: %w", dir, ErrExists)
	} else if !faultfs.IsNotExist(err) {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	st := &Store{fs: fsys, dir: dir, checkpointBytes: DefaultCheckpointBytes}
	st.mu.Lock()
	err := st.checkpointLocked(idx.Snapshot())
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	idx.SetWriteHook(st)
	return st, nil
}

// Open recovers the store in dir: the manifest's checkpoint is loaded, the
// delta log's valid prefix replayed (a torn tail is truncated, never
// served), and the write hook installed on the recovered index. It must
// complete before the index is shared. A directory without a store reports
// ErrNotExist; one whose contents fail validation reports ErrCorrupt.
func Open(fsys faultfs.FS, dir string) (*lsh.Index, *Store, error) {
	mdata, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if !faultfs.IsNotExist(err) {
			return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
		}
		// No manifest. An empty or missing directory is "no store"; store
		// files without a manifest mean the manifest was lost — corrupt.
		names, derr := fsys.ReadDir(dir)
		if derr == nil && hasStoreFiles(names) {
			return nil, nil, fmt.Errorf("persist: %s has store files but no manifest: %w", dir, ErrCorrupt)
		}
		return nil, nil, fmt.Errorf("persist: %s: %w", dir, ErrNotExist)
	}
	v, err := decodeManifest(mdata)
	if err != nil {
		return nil, nil, err
	}
	blob, err := fsys.ReadFile(filepath.Join(dir, snapName(v)))
	if err != nil {
		return nil, nil, corrupt("persist: manifest names version %d but its snapshot is unreadable (%v)", v, err)
	}
	idx, err := decodeSnapshot(blob)
	if err != nil {
		return nil, nil, err
	}
	if got := idx.Current().Version(); got != v {
		return nil, nil, corrupt("persist: snapshot file carries version %d, manifest %d", got, v)
	}

	st := &Store{
		fs: fsys, dir: dir,
		walBase: v, durable: v,
		checkpointBytes: DefaultCheckpointBytes,
	}
	wpath := filepath.Join(dir, walName(v))
	wdata, err := fsys.ReadFile(wpath)
	switch {
	case faultfs.IsNotExist(err):
		wdata = nil // crashed between manifest and log creation: empty log
	case err != nil:
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	recs, validLen, err := scanWAL(wdata, v)
	if err != nil {
		return nil, nil, err
	}
	if err := replay(idx, st, recs); err != nil {
		return nil, nil, err
	}
	// Make the truncation durable before appending anything: rewrite the
	// valid prefix (or a fresh header) atomically, then reopen for append.
	if validLen < len(wdata) || len(wdata) < walHeaderLen {
		prefix := wdata[:validLen]
		if validLen == 0 {
			prefix = appendWalHeader(nil, v)
		}
		if err := st.writeFileSync(walName(v), prefix); err != nil {
			return nil, nil, err
		}
		st.walLen = len(prefix)
	} else {
		st.walLen = validLen
	}
	if st.wal, err = fsys.Append(wpath); err != nil {
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	idx.SetWriteHook(st)
	return idx, st, nil
}

// replay applies the decoded delta-log records to the checkpointed index,
// verifying that ids and versions land exactly where the log says they did
// — any disagreement means the log and snapshot are not from the same
// history.
func replay(idx *lsh.Index, st *Store, recs []walRec) error {
	for _, rec := range recs {
		switch rec.kind {
		case recInsert:
			if id := idx.Insert(rec.vecs[0]); id != rec.id {
				return corrupt("persist: replayed insert got id %d, log says %d", id, rec.id)
			}
		case recBatch:
			if first := idx.InsertBatch(rec.vecs); first != rec.id {
				return corrupt("persist: replayed batch got first id %d, log says %d", first, rec.id)
			}
		case recPublish:
			s := idx.Snapshot()
			if s.Version() != rec.version {
				return corrupt("persist: replayed publish got version %d, log says %d", s.Version(), rec.version)
			}
			st.durable = rec.version
		}
	}
	return nil
}

// hasStoreFiles reports whether any directory entry looks like store state
// (temp files from an interrupted create don't count).
func hasStoreFiles(names []string) bool {
	for _, name := range names {
		if name == manifestName || name == groupName {
			return true
		}
		if filepath.Ext(name) == ".lsnap" || filepath.Ext(name) == ".log" {
			return true
		}
	}
	return false
}

// Err returns the sticky failure, if any. While non-nil, inserts are not
// being logged and the durable state is frozen at DurableVersion.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// DurableVersion returns the last snapshot version known to be durable:
// every publish up to it has either been checkpointed or fsynced to the
// delta log.
func (st *Store) DurableVersion() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.durable
}

// SetCheckpointBytes overrides DefaultCheckpointBytes (0 disables inline
// checkpointing).
func (st *Store) SetCheckpointBytes(n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.checkpointBytes = n
}

// OnInsert implements lsh.WriteHook.
func (st *Store) OnInsert(id int, v vecmath.Vector) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	st.buf = appendInsertRec(st.buf, id, v)
}

// OnInsertBatch implements lsh.WriteHook.
func (st *Store) OnInsertBatch(first int, vs []vecmath.Vector) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	for len(vs) > maxBatchRecVectors {
		st.buf = appendBatchRec(st.buf, first, vs[:maxBatchRecVectors])
		first += maxBatchRecVectors
		vs = vs[maxBatchRecVectors:]
	}
	st.buf = appendBatchRec(st.buf, first, vs)
}

// OnPublish implements lsh.WriteHook: the publish marker is appended and
// the whole buffer flushed + fsynced, making the new version durable. When
// the log has outgrown the checkpoint threshold, the store checkpoints
// inline (the callback runs under the index writer lock, so the snapshot is
// guaranteed current).
func (st *Store) OnPublish(s *lsh.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	st.buf = appendPublishRec(st.buf, s.Version())
	if err := st.flushLocked(); err != nil {
		st.err = err
		return
	}
	st.durable = s.Version()
	if st.checkpointBytes > 0 && st.walLen > st.checkpointBytes {
		if err := st.checkpointLocked(s); err != nil {
			st.err = err
		}
	}
}

// flushLocked writes the buffered records to the log and fsyncs.
func (st *Store) flushLocked() error {
	if len(st.buf) == 0 {
		return nil
	}
	n, err := st.wal.Write(st.buf)
	if err != nil {
		st.buf = nil // a partial record may be on disk; never append again
		return fmt.Errorf("persist: delta log write: %w", err)
	}
	st.walLen += n
	st.buf = st.buf[:0]
	if err := st.wal.Sync(); err != nil {
		st.buf = nil
		return fmt.Errorf("persist: delta log sync: %w", err)
	}
	return nil
}

// Checkpoint persists s as a fresh durable checkpoint and resets the delta
// log. The snapshot must be the index's current version with no log records
// beyond it — call it from idx.PublishAndThen (or before the index is
// shared), never from an unsynchronized goroutine. A successful checkpoint
// clears a sticky error: the snapshot supersedes whatever the broken log
// was missing.
func (st *Store) Checkpoint(s *lsh.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.checkpointLocked(s)
}

func (st *Store) checkpointLocked(s *lsh.Snapshot) error {
	if st.closed {
		return fmt.Errorf("persist: store is closed")
	}
	v := s.Version()
	blob, err := encodeSnapshot(s)
	if err != nil {
		st.err = err
		return err
	}
	if err := st.writeFileSync(snapName(v), blob); err != nil {
		st.err = err
		return err
	}
	if err := st.writeFileSync(manifestName, encodeManifest(v)); err != nil {
		st.err = err
		return err
	}
	// The old checkpoint chain is no longer named; start the new log. A
	// crash before the log exists is fine — Open treats a missing log as
	// empty — so the store is already durable at v from here on.
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	f, err := st.fs.Create(filepath.Join(st.dir, walName(v)))
	if err != nil {
		st.err = err
		return fmt.Errorf("persist: create delta log: %w", err)
	}
	hdr := appendWalHeader(nil, v)
	_, err = f.Write(hdr)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		st.err = err
		return fmt.Errorf("persist: init delta log: %w", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		f.Close()
		st.err = err
		return fmt.Errorf("persist: sync store dir: %w", err)
	}
	st.wal, st.walBase, st.walLen = f, v, len(hdr)
	st.buf = nil
	st.durable = v
	st.err = nil
	st.cleanupLocked(v)
	return nil
}

// cleanupLocked removes snapshots and logs from before the checkpoint at
// keep, best-effort: failures leave garbage files, never inconsistency.
func (st *Store) cleanupLocked(keep uint64) {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		stale := (filepath.Ext(name) == ".lsnap" && name != snapName(keep)) ||
			(filepath.Ext(name) == ".log" && name != walName(keep)) ||
			filepath.Ext(name) == ".tmp"
		if stale {
			st.fs.Remove(filepath.Join(st.dir, name))
		}
	}
}

// writeFileSync writes name atomically: temp file, fsync, rename, directory
// fsync.
func (st *Store) writeFileSync(name string, data []byte) error {
	tmp := filepath.Join(st.dir, name+".tmp")
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: create %s: %w", tmp, err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := st.fs.Rename(tmp, filepath.Join(st.dir, name)); err != nil {
		return fmt.Errorf("persist: rename %s: %w", name, err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("persist: sync store dir: %w", err)
	}
	return nil
}

// Close releases the log handle and reports the sticky error, if any. It
// does not checkpoint — callers that want shutdown durability checkpoint
// first via idx.PublishAndThen (the public Collection.Close does). Close is
// idempotent; a closed store ignores further hook callbacks.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	return st.err
}

// shardDirName names shard s's store directory inside a group store.
func shardDirName(s int) string { return fmt.Sprintf("shard-%04d", s) }

// ShardDir returns the store directory of shard s inside the group store
// rooted at dir.
func ShardDir(dir string, s int) string { return filepath.Join(dir, shardDirName(s)) }

// CreateGroup initializes a sharded store: one sub-store per shard plus the
// GROUP manifest, written last as the commit point. It must complete before
// the group is shared with writers.
func CreateGroup(fsys faultfs.FS, dir string, g *lsh.ShardGroup) ([]*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create group %s: %w", dir, err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, groupName)); err == nil {
		return nil, fmt.Errorf("persist: %s: %w", dir, ErrExists)
	} else if !faultfs.IsNotExist(err) {
		return nil, fmt.Errorf("persist: create group %s: %w", dir, err)
	}
	spec, err := lsh.SpecOf(g.Family())
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	stores := make([]*Store, g.S())
	for s := 0; s < g.S(); s++ {
		if stores[s], err = Create(fsys, ShardDir(dir, s), g.Shard(s)); err != nil {
			return nil, err
		}
	}
	meta := GroupMeta{Family: spec, K: g.K(), Ell: g.L(), Shards: g.S(), Versions: groupVersions(stores)}
	if err := WriteGroupManifest(fsys, dir, meta); err != nil {
		return nil, err
	}
	return stores, nil
}

// OpenGroup recovers a sharded store: the GROUP manifest names the shape,
// each shard recovers independently through Open, and the reassembled group
// routes exactly as the one that wrote the stores.
func OpenGroup(fsys faultfs.FS, dir string) (*lsh.ShardGroup, []*Store, GroupMeta, error) {
	var meta GroupMeta
	mdata, err := fsys.ReadFile(filepath.Join(dir, groupName))
	if err != nil {
		if !faultfs.IsNotExist(err) {
			return nil, nil, meta, fmt.Errorf("persist: open group %s: %w", dir, err)
		}
		names, derr := fsys.ReadDir(dir)
		if derr == nil && hasGroupFiles(names) {
			return nil, nil, meta, fmt.Errorf("persist: %s has shard stores but no group manifest: %w", dir, ErrCorrupt)
		}
		return nil, nil, meta, fmt.Errorf("persist: %s: %w", dir, ErrNotExist)
	}
	if meta, err = decodeGroupManifest(mdata); err != nil {
		return nil, nil, meta, err
	}
	family, err := lsh.FamilyFromSpec(meta.Family)
	if err != nil {
		return nil, nil, meta, corrupt("persist: %v", err)
	}
	idxs := make([]*lsh.Index, meta.Shards)
	stores := make([]*Store, meta.Shards)
	for s := 0; s < meta.Shards; s++ {
		if idxs[s], stores[s], err = Open(fsys, ShardDir(dir, s)); err != nil {
			return nil, nil, meta, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	g, err := lsh.NewShardGroupFromIndexes(family, meta.K, meta.Ell, idxs)
	if err != nil {
		return nil, nil, meta, corrupt("persist: %v", err)
	}
	meta.Versions = groupVersions(stores)
	return g, stores, meta, nil
}

// WriteGroupManifest atomically (re)writes the GROUP manifest.
func WriteGroupManifest(fsys faultfs.FS, dir string, m GroupMeta) error {
	st := &Store{fs: fsys, dir: dir}
	return st.writeFileSync(groupName, encodeGroupManifest(m))
}

// groupVersions collects the per-shard durable versions.
func groupVersions(stores []*Store) []uint64 {
	out := make([]uint64, len(stores))
	for s, st := range stores {
		out[s] = st.DurableVersion()
	}
	return out
}

// hasGroupFiles reports whether names contains shard store directories.
func hasGroupFiles(names []string) bool {
	for _, name := range names {
		if len(name) >= 6 && name[:6] == "shard-" {
			return true
		}
	}
	return false
}
