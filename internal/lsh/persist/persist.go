// Package persist gives LSH indexes a crash-safe on-disk home. The design
// follows the snapshot discipline of the in-memory layer: immutable
// published versions are the durability unit.
//
// A store directory holds three kinds of files:
//
//	MANIFEST        names the latest durable checkpoint version v
//	snap-<v>.lsnap  the checkpointed snapshot (format.go)
//	wal-<v>.log     a delta log whose records extend version v (wal.go)
//
// Checkpoints are written cold-path atomic: snapshot to a temp file, fsync,
// rename, directory fsync, then the manifest the same way, then a fresh
// empty delta log — so a crash at any byte leaves either the old checkpoint
// chain or the new one, never a mix. Between checkpoints, the Store hangs
// off the index's write hook (lsh.WriteHook): inserts append records to an
// in-memory buffer, and each publish appends a marker, writes the buffer to
// the log and fsyncs it. Recovery (Open) is therefore pure replay: load
// snap-<v>, re-insert the log's records, and cut versions at the markers —
// which reproduces the exact merge sequence of the original process, so the
// reopened index is deep-equal to the last durable publish, SamplePair
// draw-for-draw included.
//
// Checkpoint rotation runs off the publish path. When RetainedBytes — the
// record bytes a recovery would replay — outgrows the threshold, the
// publishing goroutine only switches logs: it seals the current log (whose
// final record is the publish marker of version v), starts wal-<v>, and
// hands the published snapshot to a per-store checkpointer goroutine that
// encodes and commits snap-<v> + MANIFEST in the background. Until that
// commit lands, the durable state is a chain — checkpoint, sealed log(s),
// live log — and Open replays the chain link by link: a sealed log ends
// with the publish marker of the next link's base. Publish latency therefore
// stays flat at "append + fsync" no matter how large snapshots grow.
//
// Failure handling is sticky: the first log write or sync error disables
// further appends (a half-written record must never be followed by a valid
// one, or recovery would see mid-file corruption instead of a torn tail).
// A later successful checkpoint repairs the store — the snapshot supersedes
// the broken log — which is what Close attempts. The crash-consistency
// property test (persist_test.go) drives every injection point of
// internal/faultfs through this machinery.
package persist

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

var (
	// ErrCorrupt reports a store whose on-disk state fails validation in a
	// way recovery must not paper over: checksum mismatches away from the
	// log tail, impossible structure, version skew between files.
	ErrCorrupt = errors.New("persist: corrupt store")
	// ErrExists reports a Create into a directory that already holds a store.
	ErrExists = errors.New("persist: store already exists")
	// ErrNotExist reports an Open of a directory holding no store.
	ErrNotExist = errors.New("persist: store does not exist")
)

const (
	manifestName = "MANIFEST"
	groupName    = "GROUP"
	crossName    = "CROSS"

	// DefaultCheckpointBytes caps delta-log growth: once a publish leaves
	// more than this many record bytes beyond the manifest checkpoint
	// (RetainedBytes), the store switches logs and checkpoints in the
	// background, bounding both recovery replay time and disk usage.
	DefaultCheckpointBytes = 4 << 20

	// maxBatchRecVectors splits large InsertBatch calls across several log
	// records, keeping any single record's length well inside uint32.
	maxBatchRecVectors = 1 << 16
)

func snapName(v uint64) string { return fmt.Sprintf("snap-%016x.lsnap", v) }
func walName(v uint64) string  { return fmt.Sprintf("wal-%016x.log", v) }

// walBaseFromName inverts walName, so cleanup can tell chain links (base at
// or after the manifest checkpoint) from superseded generations.
func walBaseFromName(name string) (uint64, bool) {
	const pre, suf = "wal-", ".log"
	if len(name) != len(pre)+16+len(suf) ||
		!strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(pre):len(pre)+16], 16, 64)
	return v, err == nil
}

// Store is the durable backing of one lsh.Index. It implements
// lsh.WriteHook; install it with idx.SetWriteHook (Create and Open do).
// Hook callbacks run under the index's writer lock, so the log order always
// matches the id-assignment order.
//
// Insert cannot return errors through the public API, so log failures are
// sticky and surface at Close (or Err): after one, the store stops logging
// and the durable state freezes at the last version that reached disk,
// until a successful checkpoint repairs it.
type Store struct {
	fs  faultfs.FS
	dir string

	// ckptMu serializes checkpoint commits — the inline Checkpoint and the
	// background checkpointer both write snap + MANIFEST and clean up under
	// it, so a lagging background commit can never regress the manifest
	// past a newer inline checkpoint. Lock order: ckptMu before mu.
	ckptMu sync.Mutex

	mu              sync.Mutex
	wal             faultfs.File
	walBase         uint64 // version the current (live) log extends
	walLen          int    // bytes written to the live log, header included
	durable         uint64 // last version known durable
	ckptVer         uint64 // version the MANIFEST names
	retained        int64  // record bytes a recovery would replay (all chain links)
	buf             []byte // records encoded but not yet written
	err             error  // sticky first failure; cleared by inline checkpoint
	closed          bool
	checkpointBytes int
	rotating        bool // a background checkpoint is signaled or running
	ckptC           chan *lsh.Snapshot
	ckptDone        chan struct{}
}

// Create initializes a fresh store in dir from the index's current state
// (publishing any pending inserts) and installs the write hook. It must
// complete before the index is shared with concurrent writers. Creating
// over an existing store reports ErrExists.
func Create(fsys faultfs.FS, dir string, idx *lsh.Index) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("persist: %s: %w", dir, ErrExists)
	} else if !faultfs.IsNotExist(err) {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	st := &Store{fs: fsys, dir: dir, checkpointBytes: DefaultCheckpointBytes}
	st.ckptMu.Lock()
	st.mu.Lock()
	err := st.checkpointLocked(idx.Snapshot())
	st.mu.Unlock()
	st.ckptMu.Unlock()
	if err != nil {
		return nil, err
	}
	idx.SetWriteHook(st)
	return st, nil
}

// Open recovers the store in dir: the manifest's checkpoint is loaded, the
// delta log's valid prefix replayed (a torn tail is truncated, never
// served), and the write hook installed on the recovered index. It must
// complete before the index is shared. A directory without a store reports
// ErrNotExist; one whose contents fail validation reports ErrCorrupt.
func Open(fsys faultfs.FS, dir string) (*lsh.Index, *Store, error) {
	mdata, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if !faultfs.IsNotExist(err) {
			return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
		}
		// No manifest. An empty or missing directory is "no store"; store
		// files without a manifest mean the manifest was lost — corrupt.
		names, derr := fsys.ReadDir(dir)
		if derr == nil && hasStoreFiles(names) {
			return nil, nil, fmt.Errorf("persist: %s has store files but no manifest: %w", dir, ErrCorrupt)
		}
		return nil, nil, fmt.Errorf("persist: %s: %w", dir, ErrNotExist)
	}
	v, err := decodeManifest(mdata)
	if err != nil {
		return nil, nil, err
	}
	blob, err := fsys.ReadFile(filepath.Join(dir, snapName(v)))
	if err != nil {
		return nil, nil, corrupt("persist: manifest names version %d but its snapshot is unreadable (%v)", v, err)
	}
	idx, err := decodeSnapshot(blob)
	if err != nil {
		return nil, nil, err
	}
	if got := idx.Current().Version(); got != v {
		return nil, nil, corrupt("persist: snapshot file carries version %d, manifest %d", got, v)
	}

	st := &Store{
		fs: fsys, dir: dir,
		walBase: v, durable: v, ckptVer: v,
		checkpointBytes: DefaultCheckpointBytes,
	}
	// Replay the log chain. A background checkpoint that had not committed
	// by the crash leaves the manifest one or more log switches behind: the
	// log at the manifest version is sealed (its final record is the
	// publish marker of the next link's base) and the chain continues in
	// wal-<that version>, ending at the live log.
	for base := v; ; {
		wpath := filepath.Join(dir, walName(base))
		wdata, err := fsys.ReadFile(wpath)
		switch {
		case faultfs.IsNotExist(err):
			wdata = nil // crashed between manifest/switch and log creation: empty log
		case err != nil:
			return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
		}
		recs, validLen, err := scanWAL(wdata, base)
		if err != nil {
			return nil, nil, err
		}
		if err := replay(idx, st, recs); err != nil {
			return nil, nil, err
		}
		if validLen > walHeaderLen {
			st.retained += int64(validLen - walHeaderLen)
		}
		torn := validLen < len(wdata) || len(wdata) < walHeaderLen
		if next := st.durable; next != base {
			if _, err := fsys.ReadFile(filepath.Join(dir, walName(next))); err == nil {
				// A successor exists, so this log was sealed by a log
				// switch and never appended to again; every byte of it was
				// fsynced. A torn tail here is damage, not a crash.
				if torn {
					return nil, nil, corrupt("persist: sealed delta log %s has a torn tail", walName(base))
				}
				base = next
				continue
			} else if !faultfs.IsNotExist(err) {
				return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
			}
		}
		// Live tail of the chain. Make the truncation durable before
		// appending anything: rewrite the valid prefix (or a fresh header)
		// atomically, then reopen for append.
		if torn {
			prefix := wdata[:validLen]
			if validLen == 0 {
				prefix = appendWalHeader(nil, base)
			}
			if err := st.writeFileSync(walName(base), prefix); err != nil {
				return nil, nil, err
			}
			st.walLen = len(prefix)
		} else {
			st.walLen = validLen
		}
		st.walBase = base
		if st.wal, err = fsys.Append(wpath); err != nil {
			return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
		}
		break
	}
	// Every log switch seals its predecessor with a publish marker, so a
	// log based past the recovered version means the replayable prefix of
	// some sealed link lost fsynced records — damage, not a crash.
	names, err := fsys.ReadDir(dir)
	if err != nil {
		st.wal.Close()
		return nil, nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	for _, name := range names {
		if b, ok := walBaseFromName(name); ok && b > st.durable {
			st.wal.Close()
			return nil, nil, corrupt("persist: delta log %s extends past recovered version %d", name, st.durable)
		}
	}
	idx.SetWriteHook(st)
	return idx, st, nil
}

// replay applies the decoded delta-log records to the checkpointed index,
// verifying that ids and versions land exactly where the log says they did
// — any disagreement means the log and snapshot are not from the same
// history.
func replay(idx *lsh.Index, st *Store, recs []walRec) error {
	for _, rec := range recs {
		switch rec.kind {
		case recInsert:
			if id := idx.Insert(rec.vecs[0]); id != rec.id {
				return corrupt("persist: replayed insert got id %d, log says %d", id, rec.id)
			}
		case recBatch:
			if first := idx.InsertBatch(rec.vecs); first != rec.id {
				return corrupt("persist: replayed batch got first id %d, log says %d", first, rec.id)
			}
		case recPublish:
			s := idx.Snapshot()
			if s.Version() != rec.version {
				return corrupt("persist: replayed publish got version %d, log says %d", s.Version(), rec.version)
			}
			st.durable = rec.version
		}
	}
	return nil
}

// hasStoreFiles reports whether any directory entry looks like store state
// (temp files from an interrupted create don't count).
func hasStoreFiles(names []string) bool {
	for _, name := range names {
		if name == manifestName || name == groupName {
			return true
		}
		if filepath.Ext(name) == ".lsnap" || filepath.Ext(name) == ".log" {
			return true
		}
	}
	return false
}

// Err returns the sticky failure, if any. While non-nil, inserts are not
// being logged and the durable state is frozen at DurableVersion.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// DurableVersion returns the last snapshot version known to be durable:
// every publish up to it has either been checkpointed or fsynced to the
// delta log.
func (st *Store) DurableVersion() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.durable
}

// RetainedBytes reports the delta-log record bytes a recovery would have to
// replay on top of the manifest checkpoint — every chain link counted, not
// just the live log. It is the rotation pressure: once it passes the
// checkpoint threshold, the next publish switches logs and checkpoints in
// the background.
func (st *Store) RetainedBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.retained
}

// SetCheckpointBytes overrides DefaultCheckpointBytes (0 disables background
// checkpointing).
func (st *Store) SetCheckpointBytes(n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.checkpointBytes = n
}

// CheckpointBytes returns the rotation threshold currently in force.
func (st *Store) CheckpointBytes() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.checkpointBytes
}

// OnInsert implements lsh.WriteHook.
func (st *Store) OnInsert(id int, v vecmath.Vector) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	st.buf = appendInsertRec(st.buf, id, v)
}

// OnInsertBatch implements lsh.WriteHook.
func (st *Store) OnInsertBatch(first int, vs []vecmath.Vector) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	for len(vs) > maxBatchRecVectors {
		st.buf = appendBatchRec(st.buf, first, vs[:maxBatchRecVectors])
		first += maxBatchRecVectors
		vs = vs[maxBatchRecVectors:]
	}
	st.buf = appendBatchRec(st.buf, first, vs)
}

// OnPublish implements lsh.WriteHook: the publish marker is appended and
// the whole buffer flushed + fsynced, making the new version durable. When
// the retained record bytes have outgrown the checkpoint threshold, the
// store switches to a fresh log (cheap: create + header + fsync) and hands
// the snapshot to the background checkpointer — the expensive snapshot
// encode and write never run on the publish path.
func (st *Store) OnPublish(s *lsh.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.closed {
		return
	}
	st.buf = appendPublishRec(st.buf, s.Version())
	if err := st.flushLocked(); err != nil {
		st.err = err
		return
	}
	st.durable = s.Version()
	if st.checkpointBytes > 0 && st.retained > int64(st.checkpointBytes) && !st.rotating {
		if err := st.switchLogLocked(s.Version()); err != nil {
			st.err = err
			return
		}
		st.signalCheckpointLocked(s)
	}
}

// flushLocked writes the buffered records to the log and fsyncs.
func (st *Store) flushLocked() error {
	if len(st.buf) == 0 {
		return nil
	}
	n, err := st.wal.Write(st.buf)
	if err != nil {
		st.buf = nil // a partial record may be on disk; never append again
		return fmt.Errorf("persist: delta log write: %w", err)
	}
	st.walLen += n
	st.retained += int64(n)
	st.buf = st.buf[:0]
	if err := st.wal.Sync(); err != nil {
		st.buf = nil
		return fmt.Errorf("persist: delta log sync: %w", err)
	}
	return nil
}

// switchLogLocked seals the current log — its final record is the publish
// marker of v, just flushed — and starts wal-<v> as the live log. The new
// log is created, headered, fsynced and its directory entry synced before
// the old handle is released, so the chain on disk is never broken. A
// failure here is sticky: appending to the old log after a half-created
// successor exists would make recovery ambiguous.
func (st *Store) switchLogLocked(v uint64) error {
	if v == st.walBase {
		return nil
	}
	f, err := st.fs.Create(filepath.Join(st.dir, walName(v)))
	if err != nil {
		return fmt.Errorf("persist: create delta log: %w", err)
	}
	hdr := appendWalHeader(nil, v)
	if _, err = f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: init delta log: %w", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		f.Close()
		return fmt.Errorf("persist: sync store dir: %w", err)
	}
	if st.wal != nil {
		st.wal.Close()
	}
	st.wal, st.walBase, st.walLen = f, v, len(hdr)
	return nil
}

// signalCheckpointLocked hands s to the per-store checkpointer goroutine,
// starting it on first use. The rotating flag guarantees at most one
// outstanding signal, so the buffered send never blocks the publish path.
func (st *Store) signalCheckpointLocked(s *lsh.Snapshot) {
	if st.ckptC == nil {
		st.ckptC = make(chan *lsh.Snapshot, 1)
		st.ckptDone = make(chan struct{})
		go st.checkpointer(st.ckptC, st.ckptDone)
	}
	st.rotating = true
	st.ckptC <- s
}

// checkpointer is the background goroutine: one commit at a time, exits
// when Close drains the channel.
func (st *Store) checkpointer(c chan *lsh.Snapshot, done chan struct{}) {
	defer close(done)
	for s := range c {
		st.backgroundCheckpoint(s)
		st.mu.Lock()
		st.rotating = false
		st.mu.Unlock()
	}
}

// backgroundCheckpoint commits s — already sealed into the log chain by a
// log switch — as the manifest checkpoint. It never touches the live log
// and never clears a sticky error: the active log may hold the very torn
// record the error is about, and only an inline Checkpoint (which cuts a
// fresh log) supersedes it. Failures set the sticky error; the store then
// freezes at its current durable version, which recovery serves exactly.
func (st *Store) backgroundCheckpoint(s *lsh.Snapshot) {
	v := s.Version()
	blob, err := encodeSnapshot(s)
	if err != nil {
		st.setErr(err)
		return
	}
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	st.mu.Lock()
	stale := st.ckptVer >= v
	st.mu.Unlock()
	if stale {
		return // a newer inline checkpoint already committed
	}
	if err := st.writeFileSync(snapName(v), blob); err != nil {
		st.setErr(err)
		return
	}
	if err := st.writeFileSync(manifestName, encodeManifest(v)); err != nil {
		st.setErr(err)
		return
	}
	st.mu.Lock()
	st.ckptVer = v
	if st.walBase == v {
		st.retained = int64(st.walLen - walHeaderLen)
	}
	st.mu.Unlock()
	st.cleanup(v)
}

func (st *Store) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// Checkpoint persists s as a fresh durable checkpoint and resets the delta
// log. The snapshot must be the index's current version with no log records
// beyond it — call it from idx.PublishAndThen (or before the index is
// shared), never from an unsynchronized goroutine. A successful checkpoint
// clears a sticky error: the snapshot supersedes whatever the broken log
// was missing.
func (st *Store) Checkpoint(s *lsh.Snapshot) error {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.checkpointLocked(s)
}

// checkpointLocked runs with both ckptMu and mu held.
func (st *Store) checkpointLocked(s *lsh.Snapshot) error {
	if st.closed {
		return fmt.Errorf("persist: store is closed")
	}
	v := s.Version()
	blob, err := encodeSnapshot(s)
	if err != nil {
		st.err = err
		return err
	}
	if err := st.writeFileSync(snapName(v), blob); err != nil {
		st.err = err
		return err
	}
	if err := st.writeFileSync(manifestName, encodeManifest(v)); err != nil {
		st.err = err
		return err
	}
	// The old checkpoint chain is no longer named; start the new log. A
	// crash before the log exists is fine — Open treats a missing log as
	// empty — so the store is already durable at v from here on.
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	f, err := st.fs.Create(filepath.Join(st.dir, walName(v)))
	if err != nil {
		st.err = err
		return fmt.Errorf("persist: create delta log: %w", err)
	}
	hdr := appendWalHeader(nil, v)
	_, err = f.Write(hdr)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		st.err = err
		return fmt.Errorf("persist: init delta log: %w", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		f.Close()
		st.err = err
		return fmt.Errorf("persist: sync store dir: %w", err)
	}
	st.wal, st.walBase, st.walLen = f, v, len(hdr)
	st.buf = nil
	st.durable = v
	st.ckptVer = v
	st.retained = 0
	st.err = nil
	st.cleanup(v)
	return nil
}

// cleanup removes snapshots and logs superseded by the checkpoint at keep
// — chain links whose base is at or after keep stay — best-effort:
// failures leave garbage files, never inconsistency. Callers hold ckptMu,
// so no checkpoint commit has a temp file in flight.
func (st *Store) cleanup(keep uint64) {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		var stale bool
		switch filepath.Ext(name) {
		case ".lsnap":
			stale = name != snapName(keep)
		case ".log":
			base, ok := walBaseFromName(name)
			stale = !ok || base < keep
		case ".tmp":
			stale = true
		}
		if stale {
			st.fs.Remove(filepath.Join(st.dir, name))
		}
	}
}

// writeFileSync writes name atomically: temp file, fsync, rename, directory
// fsync.
func (st *Store) writeFileSync(name string, data []byte) error {
	tmp := filepath.Join(st.dir, name+".tmp")
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: create %s: %w", tmp, err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmp, err)
	}
	if err := st.fs.Rename(tmp, filepath.Join(st.dir, name)); err != nil {
		return fmt.Errorf("persist: rename %s: %w", name, err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return fmt.Errorf("persist: sync store dir: %w", err)
	}
	return nil
}

// Close drains the background checkpointer (a signaled rotation finishes
// committing), releases the log handle and reports the sticky error, if
// any. It does not checkpoint — callers that want shutdown durability
// checkpoint first via idx.PublishAndThen (the public Collection.Close
// does). Close is idempotent; a closed store ignores further hook
// callbacks.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	c, done := st.ckptC, st.ckptDone
	st.ckptC, st.ckptDone = nil, nil
	st.mu.Unlock()
	if c != nil {
		close(c)
		<-done
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	return st.err
}

// shardDirName names shard s's store directory inside a group store.
func shardDirName(s int) string { return fmt.Sprintf("shard-%04d", s) }

// ShardDir returns the store directory of shard s inside the group store
// rooted at dir.
func ShardDir(dir string, s int) string { return filepath.Join(dir, shardDirName(s)) }

// CreateGroup initializes a sharded store: one sub-store per shard plus the
// GROUP manifest, written last as the commit point. It must complete before
// the group is shared with writers.
func CreateGroup(fsys faultfs.FS, dir string, g *lsh.ShardGroup) ([]*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: create group %s: %w", dir, err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, groupName)); err == nil {
		return nil, fmt.Errorf("persist: %s: %w", dir, ErrExists)
	} else if !faultfs.IsNotExist(err) {
		return nil, fmt.Errorf("persist: create group %s: %w", dir, err)
	}
	spec, err := lsh.SpecOf(g.Family())
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	stores := make([]*Store, g.S())
	for s := 0; s < g.S(); s++ {
		if stores[s], err = Create(fsys, ShardDir(dir, s), g.Shard(s)); err != nil {
			return nil, err
		}
	}
	meta := GroupMeta{Family: spec, K: g.K(), Ell: g.L(), Shards: g.S(), Versions: groupVersions(stores)}
	if err := WriteGroupManifest(fsys, dir, meta); err != nil {
		return nil, err
	}
	return stores, nil
}

// OpenGroup recovers a sharded store: the GROUP manifest names the shape,
// each shard recovers independently through Open, and the reassembled group
// routes exactly as the one that wrote the stores.
func OpenGroup(fsys faultfs.FS, dir string) (*lsh.ShardGroup, []*Store, GroupMeta, error) {
	var meta GroupMeta
	mdata, err := fsys.ReadFile(filepath.Join(dir, groupName))
	if err != nil {
		if !faultfs.IsNotExist(err) {
			return nil, nil, meta, fmt.Errorf("persist: open group %s: %w", dir, err)
		}
		names, derr := fsys.ReadDir(dir)
		if derr == nil && hasGroupFiles(names) {
			return nil, nil, meta, fmt.Errorf("persist: %s has shard stores but no group manifest: %w", dir, ErrCorrupt)
		}
		return nil, nil, meta, fmt.Errorf("persist: %s: %w", dir, ErrNotExist)
	}
	if meta, err = decodeGroupManifest(mdata); err != nil {
		return nil, nil, meta, err
	}
	family, err := lsh.FamilyFromSpec(meta.Family)
	if err != nil {
		return nil, nil, meta, corrupt("persist: %v", err)
	}
	idxs := make([]*lsh.Index, meta.Shards)
	stores := make([]*Store, meta.Shards)
	for s := 0; s < meta.Shards; s++ {
		if idxs[s], stores[s], err = Open(fsys, ShardDir(dir, s)); err != nil {
			return nil, nil, meta, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	g, err := lsh.NewShardGroupFromIndexes(family, meta.K, meta.Ell, idxs)
	if err != nil {
		return nil, nil, meta, corrupt("persist: %v", err)
	}
	meta.Versions = groupVersions(stores)
	return g, stores, meta, nil
}

// WriteGroupManifest atomically (re)writes the GROUP manifest.
func WriteGroupManifest(fsys faultfs.FS, dir string, m GroupMeta) error {
	st := &Store{fs: fsys, dir: dir}
	return st.writeFileSync(groupName, encodeGroupManifest(m))
}

// groupVersions collects the per-shard durable versions.
func groupVersions(stores []*Store) []uint64 {
	out := make([]uint64, len(stores))
	for s, st := range stores {
		out[s] = st.DurableVersion()
	}
	return out
}

// hasGroupFiles reports whether names contains shard store directories.
func hasGroupFiles(names []string) bool {
	for _, name := range names {
		if len(name) >= 6 && name[:6] == "shard-" {
			return true
		}
	}
	return false
}
