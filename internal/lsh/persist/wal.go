package persist

import (
	"encoding/binary"
	"hash/crc32"

	"lshjoin/internal/vecmath"
)

// The pending-delta log (write-ahead log). Between checkpoints, every
// mutation of the owning index is appended here so recovery can replay it
// on top of the last snapshot:
//
//	8 bytes  magic "LSHWAL1\n"
//	uint64   base version (the checkpoint this log extends)
//	uint32   CRC32-C over magic + base version
//	repeat:
//	    uint32  payload length
//	    uint32  CRC32-C over payload
//	    payload
//
// Record payloads are typed: recInsert (uvarint id, vector), recBatch
// (uvarint first id, uvarint count, vectors), recPublish (uvarint version).
// Records buffer in memory and are written + fsynced at publish markers, so
// the log's durable prefix always ends at a record boundary on an honest
// disk, and the durability unit is exactly "the last published version".
//
// Recovery scans the valid prefix. A scan failure at the tail — truncated
// header, record extending past EOF, checksum mismatch on the final record
// — is a torn tail: the prefix is kept, the tail truncated, never served.
// The same failure followed by further bytes means mid-file corruption and
// reports ErrCorrupt instead: silently dropping an interior record would
// resurface later records against the wrong state.

const (
	recInsert  = byte(1)
	recBatch   = byte(2)
	recPublish = byte(3)

	walHeaderLen = len(walMagic) + 8 + 4

	// maxRecordLen bounds one record so corrupted lengths cannot drive
	// huge allocations; batches above it are split by the store.
	maxRecordLen = 1 << 28
)

// walRec is one decoded record.
type walRec struct {
	kind    byte
	id      int // insert id, or first id of a batch
	version uint64
	vecs    []vecmath.Vector
}

// appendWalHeader frames a fresh log for the given base version.
func appendWalHeader(buf []byte, base uint64) []byte {
	start := len(buf)
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, base)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// appendRecord frames one payload.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// appendInsertRec frames one insert.
func appendInsertRec(buf []byte, id int, v vecmath.Vector) []byte {
	payload := []byte{recInsert}
	payload = binary.AppendUvarint(payload, uint64(id))
	payload = appendVector(payload, v)
	return appendRecord(buf, payload)
}

// appendBatchRec frames one batch insert.
func appendBatchRec(buf []byte, first int, vs []vecmath.Vector) []byte {
	payload := []byte{recBatch}
	payload = binary.AppendUvarint(payload, uint64(first))
	payload = binary.AppendUvarint(payload, uint64(len(vs)))
	for _, v := range vs {
		payload = appendVector(payload, v)
	}
	return appendRecord(buf, payload)
}

// appendPublishRec frames one publish marker.
func appendPublishRec(buf []byte, version uint64) []byte {
	payload := []byte{recPublish}
	payload = binary.AppendUvarint(payload, version)
	return appendRecord(buf, payload)
}

// decodeRecPayload parses one checksum-valid record payload. Since the
// checksum matched, the bytes are exactly what the store wrote; a parse
// failure here is real corruption, never a torn tail.
func decodeRecPayload(payload []byte) (walRec, error) {
	var r walRec
	if len(payload) == 0 {
		return r, corrupt("persist: empty delta-log record")
	}
	c := &cursor{data: payload, off: 1}
	r.kind = payload[0]
	switch r.kind {
	case recInsert:
		id, err := c.uvarint()
		if err != nil {
			return r, err
		}
		if id > maxN {
			return r, corrupt("persist: insert id %d out of range", id)
		}
		r.id = int(id)
		v, err := decodeVector(c)
		if err != nil {
			return r, err
		}
		r.vecs = []vecmath.Vector{v}
	case recBatch:
		first, err := c.uvarint()
		if err != nil {
			return r, err
		}
		count, err := c.uvarint()
		if err != nil {
			return r, err
		}
		if first > maxN || count > uint64(c.rem()) {
			return r, corrupt("persist: batch header out of range")
		}
		r.id = int(first)
		r.vecs = make([]vecmath.Vector, 0, count)
		for i := uint64(0); i < count; i++ {
			v, err := decodeVector(c)
			if err != nil {
				return r, err
			}
			r.vecs = append(r.vecs, v)
		}
	case recPublish:
		v, err := c.uvarint()
		if err != nil {
			return r, err
		}
		r.version = v
	default:
		return r, corrupt("persist: unknown delta-log record type %d", r.kind)
	}
	if c.rem() != 0 {
		return r, corrupt("persist: %d trailing bytes in delta-log record", c.rem())
	}
	return r, nil
}

// scanWAL parses a delta log for the given base version. It returns the
// decoded records of the valid prefix and that prefix's byte length. A torn
// tail (any structural failure that extends to EOF) is excluded from
// validLen for the caller to truncate; corruption not explicable as a torn
// tail reports ErrCorrupt.
func scanWAL(data []byte, base uint64) (recs []walRec, validLen int, err error) {
	if len(data) < walHeaderLen {
		// Torn header: the log was created but its first write never
		// completed, so no records can follow. Treat as empty.
		return nil, 0, nil
	}
	hdr := data[:walHeaderLen]
	sum := crc32.Checksum(hdr[:walHeaderLen-4], crcTable)
	headerOK := string(hdr[:len(walMagic)]) == walMagic &&
		sum == binary.LittleEndian.Uint32(hdr[walHeaderLen-4:])
	if !headerOK {
		if len(data) == walHeaderLen {
			return nil, 0, nil // torn or flipped header, nothing after it
		}
		return nil, 0, corrupt("persist: delta-log header invalid with records following")
	}
	if got := binary.LittleEndian.Uint64(data[len(walMagic):]); got != base {
		return nil, 0, corrupt("persist: delta log extends version %d, manifest names %d", got, base)
	}
	off := walHeaderLen
	for off < len(data) {
		if len(data)-off < 8 {
			return recs, off, nil // torn record header at EOF
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		want := binary.LittleEndian.Uint32(data[off+4:])
		if uint64(plen) > maxRecordLen {
			if isTail(data, off) {
				return recs, off, nil
			}
			return nil, 0, corrupt("persist: delta-log record length %d", plen)
		}
		end := off + 8 + int(plen)
		if end > len(data) {
			return recs, off, nil // record extends past EOF: torn tail
		}
		payload := data[off+8 : end]
		if crc32.Checksum(payload, crcTable) != want {
			if end == len(data) {
				return recs, off, nil // checksum failure on the final record: torn
			}
			return nil, 0, corrupt("persist: delta-log record checksum mismatch mid-file")
		}
		rec, err := decodeRecPayload(payload)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rec)
		off = end
	}
	return recs, off, nil
}

// isTail reports whether a structural failure at off can be explained as a
// torn final record — i.e. nothing after off parses as a record boundary we
// would have to drop. With a corrupted length field the distinction is
// heuristic; err on the side of torn only when off is in the final
// maxRecordLen window.
func isTail(data []byte, off int) bool {
	return len(data)-off <= maxRecordLen
}
