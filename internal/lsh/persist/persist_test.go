package persist

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// testData generates n sparse vectors over a small dimension universe, so
// bucket collisions (and hence non-trivial Fenwick weights) are common.
func testData(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	out := make([]vecmath.Vector, n)
	for i := range out {
		dims := map[uint32]struct{}{}
		for len(dims) < 2+rng.Intn(3) {
			dims[uint32(rng.Intn(40))] = struct{}{}
		}
		flat := make([]uint32, 0, len(dims))
		for d := range dims {
			flat = append(flat, d)
		}
		out[i] = vecmath.FromDims(flat)
	}
	return out
}

type bucketDump struct {
	key string
	ids []int32
}

func dumpTable(tb *lsh.Table) []bucketDump {
	var out []bucketDump
	tb.ForEachBucket(func(key string, ids []int32) bool {
		out = append(out, bucketDump{key: key, ids: append([]int32(nil), ids...)})
		return true
	})
	return out
}

// snapshotsEqual asserts got is observably identical to want: parameters,
// version, vector data, canonical bucket dumps, stratum weights, and the
// exact SamplePair draw stream under a fixed seed (the strongest equivalence
// the estimators can distinguish).
func snapshotsEqual(t *testing.T, want, got *lsh.Snapshot, seed uint64) {
	t.Helper()
	if got.Version() != want.Version() {
		t.Fatalf("version = %d, want %d", got.Version(), want.Version())
	}
	if got.N() != want.N() || got.K() != want.K() || got.L() != want.L() {
		t.Fatalf("shape (n=%d k=%d l=%d), want (n=%d k=%d l=%d)",
			got.N(), got.K(), got.L(), want.N(), want.K(), want.L())
	}
	if got.Family() != want.Family() {
		t.Fatalf("family %v, want %v", got.Family(), want.Family())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if !vecmath.Equal(wd[i], gd[i]) {
			t.Fatalf("vector %d differs", i)
		}
	}
	for ti := 0; ti < want.L(); ti++ {
		wt, gt := want.Table(ti), got.Table(ti)
		if wt.NH() != gt.NH() {
			t.Fatalf("table %d: NH %d, want %d", ti, gt.NH(), wt.NH())
		}
		wb, gb := dumpTable(wt), dumpTable(gt)
		if len(wb) != len(gb) {
			t.Fatalf("table %d: %d buckets, want %d", ti, len(gb), len(wb))
		}
		for bi := range wb {
			if wb[bi].key != gb[bi].key {
				t.Fatalf("table %d bucket %d: key mismatch", ti, bi)
			}
			if len(wb[bi].ids) != len(gb[bi].ids) {
				t.Fatalf("table %d bucket %d: %d ids, want %d", ti, bi, len(gb[bi].ids), len(wb[bi].ids))
			}
			for k := range wb[bi].ids {
				if wb[bi].ids[k] != gb[bi].ids[k] {
					t.Fatalf("table %d bucket %d id %d: %d, want %d",
						ti, bi, k, gb[bi].ids[k], wb[bi].ids[k])
				}
			}
		}
		if wt.NH() == 0 {
			continue
		}
		ra, rb := xrand.New(seed+uint64(ti)), xrand.New(seed+uint64(ti))
		for d := 0; d < 64; d++ {
			wi, wj, wok := wt.SamplePair(ra)
			gi, gj, gok := gt.SamplePair(rb)
			if wi != gi || wj != gj || wok != gok {
				t.Fatalf("table %d draw %d: (%d,%d,%v), want (%d,%d,%v)",
					ti, d, gi, gj, gok, wi, wj, wok)
			}
		}
	}
}

var roundtripConfigs = []struct {
	name   string
	family lsh.Family
	k, ell int
}{
	{"simhash_narrow", lsh.NewSimHash(11), 8, 3}, // 8·1 ≤ 64: uint64 keys
	{"simhash_wide", lsh.NewSimHash(12), 70, 2},  // 70·1 > 64: string keys
	{"minhash_narrow", lsh.NewMinHash(13), 2, 2}, // 2·32 ≤ 64
	{"minhash_wide", lsh.NewMinHash(14), 3, 1},   // 3·32 > 64
}

// TestRoundtrip checks the core durability contract across all key-width ×
// family configurations: a checkpointed store reopens deep-equal to the last
// published version, SamplePair draw-for-draw.
func TestRoundtrip(t *testing.T) {
	for _, cfg := range roundtripConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			fsys := faultfs.NewMem()
			data := testData(40, 21)
			idx, err := lsh.Build(data[:25], cfg.family, cfg.k, cfg.ell)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Create(fsys, "db", idx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 25; i < 40; i++ {
				idx.Insert(data[i])
				if i%4 == 0 {
					idx.Snapshot()
				}
			}
			var want *lsh.Snapshot
			idx.PublishAndThen(func(s *lsh.Snapshot) {
				want = s
				if err := st.Checkpoint(s); err != nil {
					t.Errorf("checkpoint: %v", err)
				}
			})
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			got, st2, err := Open(fsys, "db")
			if err != nil {
				t.Fatal(err)
			}
			snapshotsEqual(t, want, got.Current(), 77)
			if st2.DurableVersion() != want.Version() {
				t.Fatalf("durable = %d, want %d", st2.DurableVersion(), want.Version())
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReplayWithoutCheckpoint checks the delta-log path alone: versions
// published after the initial checkpoint recover by replay, and inserts never
// reaching a publish are (by contract) not durable.
func TestReplayWithoutCheckpoint(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(30, 31)
	idx, err := lsh.Build(data[:10], lsh.NewSimHash(5), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	var want *lsh.Snapshot
	for i := 10; i < 30; i++ {
		idx.Insert(data[i])
		if i%3 == 0 {
			want = idx.Snapshot()
		}
	}
	// Three inserts (28, 29 plus the unpublished 27) are pending or
	// buffered but never published: the durability unit is the publish.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snapshotsEqual(t, want, got.Current(), 99)
	if got.Pending() != 0 {
		t.Fatalf("recovered index has %d pending", got.Pending())
	}

	// The reopened store keeps extending the same log.
	got.Insert(data[0])
	next := got.Snapshot()
	if st2.Err() != nil {
		t.Fatal(st2.Err())
	}
	if st2.DurableVersion() != next.Version() {
		t.Fatalf("durable = %d, want %d", st2.DurableVersion(), next.Version())
	}
	st2.Close()
	got2, st3, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	snapshotsEqual(t, next, got2.Current(), 100)
}

// writeRaw replaces a file's bytes directly, bypassing the store.
func writeRaw(t *testing.T, fsys faultfs.FS, name string, data []byte) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// logSetup builds a store whose delta log holds several published versions,
// returning the filesystem, the log path, and the published snapshots by
// version.
func logSetup(t *testing.T) (*faultfs.MemFS, string, map[uint64]*lsh.Snapshot) {
	t.Helper()
	fsys := faultfs.NewMem()
	data := testData(26, 41)
	idx, err := lsh.Build(data[:10], lsh.NewSimHash(7), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	published := map[uint64]*lsh.Snapshot{1: idx.Current()}
	for i := 10; i < 26; i++ {
		idx.Insert(data[i])
		if i%2 == 1 {
			s := idx.Snapshot()
			published[s.Version()] = s
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return fsys, filepath.Join("db", walName(1)), published
}

// TestTornTailTruncated simulates a torn final record: recovery drops it,
// serves the previous published version, and makes the truncation durable so
// the store keeps working.
func TestTornTailTruncated(t *testing.T) {
	fsys, wpath, published := logSetup(t)
	wdata, err := fsys.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	writeRaw(t, fsys, wpath, wdata[:len(wdata)-3])

	got, st, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v := got.Current().Version()
	want, ok := published[v]
	if !ok {
		t.Fatalf("recovered unknown version %d", v)
	}
	snapshotsEqual(t, want, got.Current(), 55)

	// The torn record was a publish marker (the log ends with one), so
	// exactly one version is lost.
	var max uint64
	for pv := range published {
		if pv > max {
			max = pv
		}
	}
	if v != max-1 {
		t.Fatalf("recovered version %d, want %d", v, max-1)
	}

	// Appending after the truncation must yield a log that reopens cleanly.
	got.Insert(testData(1, 9)[0])
	next := got.Snapshot()
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	st.Close()
	got2, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snapshotsEqual(t, next, got2.Current(), 56)
}

// TestMidFileCorruptionDetected flips a byte in an interior log record:
// recovery must refuse (ErrCorrupt), not resurrect later records against the
// wrong state.
func TestMidFileCorruptionDetected(t *testing.T) {
	fsys, wpath, _ := logSetup(t)
	wdata, err := fsys.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), wdata...)
	mut[walHeaderLen+12] ^= 0x01 // inside the first record's payload
	writeRaw(t, fsys, wpath, mut)

	if _, _, err := Open(fsys, "db"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotAndManifestCorruptionDetected flips bytes in the checkpoint
// files: both must surface as ErrCorrupt.
func TestSnapshotAndManifestCorruptionDetected(t *testing.T) {
	for _, target := range []string{snapName(1), manifestName} {
		t.Run(target, func(t *testing.T) {
			fsys, _, _ := logSetup(t)
			path := filepath.Join("db", target)
			data, err := fsys.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mut := append([]byte(nil), data...)
			mut[len(mut)/2] ^= 0x40
			writeRaw(t, fsys, path, mut)
			if _, _, err := Open(fsys, "db"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestOpenErrors pins the typed-error contract of Open and Create.
func TestOpenErrors(t *testing.T) {
	fsys := faultfs.NewMem()
	if _, _, err := Open(fsys, "nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing dir: err = %v, want ErrNotExist", err)
	}
	if err := fsys.MkdirAll("empty"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(fsys, "empty"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("empty dir: err = %v, want ErrNotExist", err)
	}
	// Store files without a manifest: the manifest was lost, not absent.
	if err := fsys.MkdirAll("half"); err != nil {
		t.Fatal(err)
	}
	writeRaw(t, fsys, filepath.Join("half", snapName(1)), []byte("x"))
	if _, _, err := Open(fsys, "half"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("manifest-less dir: err = %v, want ErrCorrupt", err)
	}

	data := testData(8, 3)
	idx, err := lsh.Build(data, lsh.NewSimHash(1), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	idx2, _ := lsh.Build(data, lsh.NewSimHash(1), 4, 1)
	if _, err := Create(fsys, "db", idx2); !errors.Is(err, ErrExists) {
		t.Fatalf("create over store: err = %v, want ErrExists", err)
	}
}

// TestStickyErrorRepairedByCheckpoint: after a log failure the store stops
// logging (durable version frozen), and a successful checkpoint repairs it —
// the snapshot supersedes the broken log.
func TestStickyErrorRepairedByCheckpoint(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(30, 51)
	idx, err := lsh.Build(data[:10], lsh.NewSimHash(5), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	frozen := st.DurableVersion()

	fsys.SetPlan(faultfs.Plan{Op: 1, Mode: faultfs.ModeErr}) // next log write fails
	idx.Insert(data[10])
	idx.Snapshot()
	if st.Err() == nil {
		t.Fatal("expected sticky error after injected log failure")
	}
	if st.DurableVersion() != frozen {
		t.Fatalf("durable moved to %d while broken", st.DurableVersion())
	}
	// Further writes are ignored, not half-logged.
	for i := 11; i < 20; i++ {
		idx.Insert(data[i])
	}
	idx.Snapshot()
	if st.DurableVersion() != frozen {
		t.Fatalf("durable moved to %d while broken", st.DurableVersion())
	}

	var want *lsh.Snapshot
	idx.PublishAndThen(func(s *lsh.Snapshot) {
		want = s
		if err := st.Checkpoint(s); err != nil {
			t.Errorf("repair checkpoint: %v", err)
		}
	})
	if st.Err() != nil {
		t.Fatalf("sticky error survived checkpoint: %v", st.Err())
	}
	if st.DurableVersion() != want.Version() {
		t.Fatalf("durable = %d, want %d", st.DurableVersion(), want.Version())
	}
	st.Close()

	got, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snapshotsEqual(t, want, got.Current(), 61)
}

// TestBackgroundCheckpointRotation: with a tiny threshold every publish
// switches logs and checkpoints in the background. Publishes are durable
// the moment they return, the manifest advances off the publish path,
// Close drains the checkpointer, superseded generations are cleaned up,
// and the store reopens to the exact final state.
func TestBackgroundCheckpointRotation(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(24, 71)
	idx, err := lsh.Build(data[:10], lsh.NewSimHash(5), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	st.SetCheckpointBytes(1)
	var want *lsh.Snapshot
	for i := 10; i < 24; i++ {
		idx.Insert(data[i])
		want = idx.Snapshot()
		if st.Err() != nil {
			t.Fatal(st.Err())
		}
		if st.DurableVersion() != want.Version() {
			t.Fatalf("durable = %d, want %d", st.DurableVersion(), want.Version())
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	mdata, err := fsys.ReadFile(filepath.Join("db", manifestName))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := decodeManifest(mdata)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt <= 1 {
		t.Fatalf("manifest still at version %d: rotation never committed", ckpt)
	}
	names, err := fsys.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		switch filepath.Ext(name) {
		case ".lsnap":
			if name != snapName(ckpt) {
				t.Fatalf("stale snapshot %s with manifest at %d (have %v)", name, ckpt, names)
			}
		case ".log":
			if base, ok := walBaseFromName(name); !ok || base < ckpt {
				t.Fatalf("stale log %s with manifest at %d (have %v)", name, ckpt, names)
			}
		}
	}
	got, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snapshotsEqual(t, want, got.Current(), 81)
}

// TestChainRecovery: when checkpoint commits lag behind log switches the
// durable state is a chain — manifest checkpoint, sealed logs, live log —
// and Open replays it link by link. The chain is built deterministically
// with hand-driven switches (the background path performs the identical
// switch; its commit timing is covered by the rotation test and the crash
// sweep).
func TestChainRecovery(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(30, 111)
	idx, err := lsh.Build(data[:8], lsh.NewSimHash(9), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(fsys, "db", idx)
	if err != nil {
		t.Fatal(err)
	}
	st.SetCheckpointBytes(0) // no automatic rotation: switch by hand
	var want *lsh.Snapshot
	insertPublish := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			idx.Insert(data[i])
		}
		want = idx.Snapshot()
	}
	switchLog := func() {
		st.mu.Lock()
		err := st.switchLogLocked(want.Version())
		st.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}
	insertPublish(8, 14)
	switchLog()
	insertPublish(14, 20)
	switchLog()
	insertPublish(20, 30)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Three links on disk, manifest still at the create checkpoint.
	for _, name := range []string{walName(1), walName(2), walName(3)} {
		if _, err := fsys.ReadFile(filepath.Join("db", name)); err != nil {
			t.Fatalf("chain link %s: %v", name, err)
		}
	}
	got, st2, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, want, got.Current(), 123)
	if st2.RetainedBytes() <= 0 {
		t.Errorf("RetainedBytes = %d after replaying a chain, want > 0", st2.RetainedBytes())
	}
	// The reopened store appends to the live tail and survives another
	// recovery.
	got.Insert(data[0])
	want = got.Snapshot()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	got3, st3, err := Open(fsys, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	snapshotsEqual(t, want, got3.Current(), 129)
}

// TestChainDamageCorrupt: sealed links were fully fsynced before their
// successor existed, so losing their tail or orphaning a successor is
// damage and must refuse with ErrCorrupt, never silently truncate.
func TestChainDamageCorrupt(t *testing.T) {
	build := func(t *testing.T) faultfs.FS {
		fsys := faultfs.NewMem()
		data := testData(24, 141)
		idx, err := lsh.Build(data[:8], lsh.NewSimHash(9), 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Create(fsys, "db", idx)
		if err != nil {
			t.Fatal(err)
		}
		st.SetCheckpointBytes(0)
		for i := 8; i < 14; i++ {
			idx.Insert(data[i])
			idx.Snapshot()
		}
		st.mu.Lock()
		err = st.switchLogLocked(idx.Current().Version())
		st.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		for i := 14; i < 20; i++ {
			idx.Insert(data[i])
			idx.Snapshot()
		}
		st.Close()
		return fsys
	}

	t.Run("sealed link torn tail", func(t *testing.T) {
		fsys := build(t)
		// The sealed wal-1 ends with the publish marker of the switch
		// version; shaving bytes off it makes the valid prefix stop at an
		// earlier publish while the successor still exists.
		path := filepath.Join("db", walName(1))
		wdata, err := fsys.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		writeRaw(t, fsys, path, wdata[:len(wdata)-3])
		_, _, err = Open(fsys, "db")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open after sealed-link truncation: %v, want ErrCorrupt", err)
		}
	})

	t.Run("orphaned successor", func(t *testing.T) {
		fsys := build(t)
		// Rewrite the sealed link so only its first publish survives: the
		// replay then ends before the switch version, and wal-<switch>
		// becomes unreachable — fsynced records would be lost.
		path := filepath.Join("db", walName(1))
		wdata, err := fsys.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		end := walHeaderLen
		for end < len(wdata) {
			plen := int(binary.LittleEndian.Uint32(wdata[end:]))
			kind := wdata[end+8]
			end += 8 + plen
			if kind == recPublish {
				break
			}
		}
		writeRaw(t, fsys, path, wdata[:end])
		_, _, err = Open(fsys, "db")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with orphaned chain link: %v, want ErrCorrupt", err)
		}
	})
}

// TestGroupRoundtrip: a sharded store reopens as a group that routes and
// samples identically, with the GROUP manifest carrying the shard version
// vector.
func TestGroupRoundtrip(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(60, 91)
	g, err := lsh.NewShardGroup(data[:40], lsh.NewSimHash(17), 6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := CreateGroup(fsys, "grp", g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[40:] {
		g.Insert(v)
	}
	g.Capture() // publish every shard
	want := make([]*lsh.Snapshot, g.S())
	for s := 0; s < g.S(); s++ {
		sh, st := g.Shard(s), stores[s]
		sh.PublishAndThen(func(snap *lsh.Snapshot) {
			want[s] = snap
			if err := st.Checkpoint(snap); err != nil {
				t.Errorf("shard %d checkpoint: %v", s, err)
			}
		})
	}
	meta := GroupMeta{
		Family: mustSpec(t, g.Family()), K: g.K(), Ell: g.L(), Shards: g.S(),
		Versions: groupVersions(stores),
	}
	if err := WriteGroupManifest(fsys, "grp", meta); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	g2, stores2, meta2, err := OpenGroup(fsys, "grp")
	if err != nil {
		t.Fatal(err)
	}
	if g2.S() != g.S() || g2.K() != g.K() || g2.L() != g.L() || g2.Family() != g.Family() {
		t.Fatalf("group shape mismatch")
	}
	for s := 0; s < g.S(); s++ {
		snapshotsEqual(t, want[s], g2.Shard(s).Current(), 90+uint64(s))
		if meta2.Versions[s] != want[s].Version() {
			t.Fatalf("shard %d manifest version %d, want %d", s, meta2.Versions[s], want[s].Version())
		}
	}
	// Routing must agree vector-for-vector, or reopened inserts would land
	// on the wrong shard's store.
	for _, v := range data {
		if g.Route(v) != g2.Route(v) {
			t.Fatal("routing diverged after reopen")
		}
	}
	for _, st := range stores2 {
		st.Close()
	}

	if _, _, _, err := OpenGroup(fsys, "nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing group: err = %v, want ErrNotExist", err)
	}
	if _, err := CreateGroup(fsys, "grp", g); !errors.Is(err, ErrExists) {
		t.Fatalf("create over group: err = %v, want ErrExists", err)
	}
}

// TestGroupEmptyShard: a shard the routing left empty must still roundtrip
// (zero-vector snapshot encoding).
func TestGroupEmptyShard(t *testing.T) {
	fsys := faultfs.NewMem()
	// A single vector can populate at most one of 4 shards.
	g, err := lsh.NewShardGroup(testData(1, 13), lsh.NewSimHash(19), 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := CreateGroup(fsys, "grp", g)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		st.Close()
	}
	g2, stores2, _, err := OpenGroup(fsys, "grp")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.S(); s++ {
		snapshotsEqual(t, g.Shard(s).Current(), g2.Shard(s).Current(), 120+uint64(s))
	}
	for _, st := range stores2 {
		st.Close()
	}
}

// TestCrossRoundtrip: a two-sided store reopens as a pair of groups whose
// shards recover to a componentwise-consistent version-vector pair, deep-
// equal to the last durable publish of each.
func TestCrossRoundtrip(t *testing.T) {
	fsys := faultfs.NewMem()
	data := testData(80, 151)
	left, err := lsh.NewShardGroup(data[:20], lsh.NewSimHash(29), 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	right, err := lsh.NewShardGroup(data[40:60], lsh.NewSimHash(29), 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls, rs, err := CreateCross(fsys, "xj", left, right)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[20:40] {
		left.Insert(v)
	}
	for _, v := range data[60:] {
		right.Insert(v)
	}
	left.Capture()
	right.Capture()
	wantL := make([]*lsh.Snapshot, left.S())
	wantR := make([]*lsh.Snapshot, right.S())
	for s := 0; s < left.S(); s++ {
		s := s
		left.Shard(s).PublishAndThen(func(snap *lsh.Snapshot) {
			wantL[s] = snap
			if err := ls[s].Checkpoint(snap); err != nil {
				t.Errorf("left shard %d checkpoint: %v", s, err)
			}
		})
		right.Shard(s).PublishAndThen(func(snap *lsh.Snapshot) {
			wantR[s] = snap
			if err := rs[s].Checkpoint(snap); err != nil {
				t.Errorf("right shard %d checkpoint: %v", s, err)
			}
		})
	}
	meta := CrossMeta{
		Family: mustSpec(t, left.Family()), K: left.K(), Shards: left.S(),
		LeftVersions: groupVersions(ls), RightVersions: groupVersions(rs),
	}
	if err := WriteCrossManifest(fsys, "xj", meta); err != nil {
		t.Fatal(err)
	}
	for _, st := range append(ls, rs...) {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	left2, right2, ls2, rs2, meta2, err := OpenCross(fsys, "xj")
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Family != meta.Family || meta2.K != meta.K || meta2.Shards != meta.Shards {
		t.Fatalf("cross meta = %+v, want %+v", meta2, meta)
	}
	for s := 0; s < left.S(); s++ {
		snapshotsEqual(t, wantL[s], left2.Shard(s).Current(), 150+uint64(s))
		snapshotsEqual(t, wantR[s], right2.Shard(s).Current(), 160+uint64(s))
		if meta2.LeftVersions[s] != wantL[s].Version() || meta2.RightVersions[s] != wantR[s].Version() {
			t.Fatalf("recovered versions (%d,%d), want (%d,%d)",
				meta2.LeftVersions[s], meta2.RightVersions[s], wantL[s].Version(), wantR[s].Version())
		}
	}
	// Routing must agree side by side after reopen.
	for _, v := range data {
		if left.Route(v) != left2.Route(v) || right.Route(v) != right2.Route(v) {
			t.Fatal("routing diverged after reopen")
		}
	}
	for _, st := range append(ls2, rs2...) {
		st.Close()
	}

	if _, _, _, _, _, err := OpenCross(fsys, "nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing cross store: err = %v, want ErrNotExist", err)
	}
	if _, _, err := CreateCross(fsys, "xj", left, right); !errors.Is(err, ErrExists) {
		t.Fatalf("create over cross store: err = %v, want ErrExists", err)
	}
	// Side stores without the CROSS commit point mean the manifest was
	// lost.
	if err := fsys.Remove(filepath.Join("xj", crossName)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := OpenCross(fsys, "xj"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cross store without manifest: err = %v, want ErrCorrupt", err)
	}
}

func mustSpec(t *testing.T, f lsh.Family) lsh.FamilySpec {
	t.Helper()
	sp, err := lsh.SpecOf(f)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestStoreOnRealFS exercises the faultfs.OS backend end to end in a temp
// directory: the same roundtrip contract must hold on a real filesystem.
func TestStoreOnRealFS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	data := testData(30, 101)
	idx, err := lsh.Build(data[:20], lsh.NewSimHash(23), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Create(faultfs.OS{}, dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[20:] {
		idx.Insert(v)
	}
	var want *lsh.Snapshot
	idx.PublishAndThen(func(s *lsh.Snapshot) {
		want = s
		if err := st.Checkpoint(s); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, st2, err := Open(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snapshotsEqual(t, want, got.Current(), 111)
}
