package lsh

import (
	"math"
	"testing"

	"lshjoin/internal/vecmath"
)

func TestBitSamplingValidation(t *testing.T) {
	if _, err := NewBitSampling(1, 0); err == nil {
		t.Error("zero universe accepted")
	}
	f, err := NewBitSampling(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "bitsampling" || f.Bits() != 1 || f.Universe() != 100 {
		t.Errorf("family metadata wrong: %+v", f)
	}
}

func TestBitSamplingHammingSim(t *testing.T) {
	f, err := NewBitSampling(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := vecmath.FromDims([]uint32{1, 2, 3})
	b := vecmath.FromDims([]uint32{2, 3, 4, 5})
	// Symmetric difference {1,4,5} → Hamming 3 → sim 1 − 3/10 = 0.7.
	if got := f.Sim(a, b); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Sim = %v, want 0.7", got)
	}
	if got := f.Sim(a, a); got != 1 {
		t.Errorf("self Sim = %v", got)
	}
}

// TestBitSamplingDefinition3Exact: the empirical collision rate over many
// functions equals the Hamming similarity — this family realizes the
// paper's idealized Definition 3 with no distortion.
func TestBitSamplingDefinition3Exact(t *testing.T) {
	const universe = 64
	f, err := NewBitSampling(7, universe)
	if err != nil {
		t.Fatal(err)
	}
	a := vecmath.FromDims([]uint32{0, 1, 2, 3, 4, 5, 6, 7})
	b := vecmath.FromDims([]uint32{4, 5, 6, 7, 8, 9, 10, 11})
	want := f.Sim(a, b) // Hamming 8 of 64 → 0.875
	if math.Abs(want-0.875) > 1e-12 {
		t.Fatalf("setup: sim = %v", want)
	}
	const fns = 40000
	coll := 0
	for fn := 0; fn < fns; fn++ {
		if f.Hash(fn, a) == f.Hash(fn, b) {
			coll++
		}
	}
	got := float64(coll) / fns
	se := math.Sqrt(want * (1 - want) / fns)
	if math.Abs(got-want) > 5*se+1e-3 {
		t.Errorf("collision rate %v, Hamming similarity %v", got, want)
	}
}

func TestBitSamplingDeterministicPerFunction(t *testing.T) {
	f, err := NewBitSampling(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	v := vecmath.FromDims([]uint32{1, 7, 33})
	for fn := 0; fn < 100; fn++ {
		if f.Hash(fn, v) != f.Hash(fn, v) {
			t.Fatalf("fn %d not deterministic", fn)
		}
	}
}

func TestBitSamplingIndexBuild(t *testing.T) {
	f, err := NewBitSampling(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	data := randData(150, 200, 10, 11)
	idx, err := Build(data, f, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Identical vectors always share buckets.
	dup := append([]vecmath.Vector{data[0], data[0]}, data...)
	idx2, err := Build(dup, f, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !idx2.Table(0).SameBucket(0, 1) {
		t.Error("duplicates must share a bit-sampling bucket")
	}
	_ = idx
}
