package lsh

// Persistent Fenwick weight index. The estimators sample buckets with
// probability proportional to their pair weight C(b_j, 2), which used to be
// served from an eager prefix-sum array rebuilt in O(#buckets) on every
// publish — the dominant cost of Index.Snapshot() and the blocker for
// per-insert publication on large tables. fenwick replaces that array with a
// path-copying binary indexed tree over the bucket sequence: leaf i carries
// bucket i and its pair weight, internal nodes carry subtree weight sums.
//
// The tree is persistent in the functional-data-structure sense. A published
// table holds one immutable root; updating leaf i allocates the O(log
// #buckets) nodes on the root-to-leaf path and shares every other subtree
// with the predecessor version, exactly the way bucket id slices and key
// backing arrays are already shared between consecutive snapshots. A merge of
// d delta keys therefore costs O(d · log #buckets) node copies — independent
// of the total bucket count — instead of the old O(#buckets) prefix-sum and
// bucket-order copies.
//
// All read operations (prefix sums, weighted search, positional lookup,
// in-order traversal) run against one root pointer and never mutate nodes,
// so they are safe for unsynchronized concurrent use on published trees.
// The mutating methods (set, push) replace only the fenwick value's root
// field; callers must own that value exclusively (merges operate on the new
// table's copy, serialized by Index.mu).

// wnode is one immutable tree node. Leaves (span 1) carry b; internal nodes
// carry children. A nil node is an all-zero, bucket-free subtree.
type wnode struct {
	sum  int64 // total pair weight of the node's span
	l, r *wnode
	b    *bucket // non-nil exactly at leaves
}

func wsum(n *wnode) int64 {
	if n == nil {
		return 0
	}
	return n.sum
}

// fenwick indexes the bucket sequence [0, size) under a power-of-two span.
// The zero value is an empty index. Copying the struct is the O(1)
// copy-on-write publication primitive: the copy shares every node until one
// side calls set or push.
type fenwick struct {
	root *wnode
	size int // bucket indices in use: [0, size)
	span int // power-of-two leaf capacity of root (0 when empty)
}

// newFenwick builds the index bottom-up over a freshly constructed bucket
// order in O(#buckets).
func newFenwick(order []*bucket) fenwick {
	n := len(order)
	if n == 0 {
		return fenwick{}
	}
	span := 1
	for span < n {
		span *= 2
	}
	// One arena backs every node of the fresh tree: n leaves plus at most
	// n-1+log2(span) internal nodes. The capacity is an upper bound, so
	// append never reallocates and handed-out pointers stay valid. Nodes are
	// immutable after construction (set and push path-copy), so sharing the
	// arena across snapshots is as safe as sharing individual nodes.
	arena := make([]wnode, 0, 2*n+64)
	var build func(lo, sp int) *wnode
	build = func(lo, sp int) *wnode {
		if lo >= n {
			return nil
		}
		if sp == 1 {
			b := order[lo]
			arena = append(arena, wnode{sum: pairs2(int64(len(b.ids))), b: b})
		} else {
			half := sp / 2
			l := build(lo, half)
			r := build(lo+half, half)
			arena = append(arena, wnode{sum: wsum(l) + wsum(r), l: l, r: r})
		}
		return &arena[len(arena)-1]
	}
	return fenwick{root: build(0, span), size: n, span: span}
}

// total returns the summed pair weight N_H in O(1).
func (f *fenwick) total() int64 { return wsum(f.root) }

// grow extends the root span to cover at least n leaves. Wrapping the old
// root as a left child is O(1) per doubling and shares the entire existing
// tree.
func (f *fenwick) grow(n int) {
	if f.span == 0 {
		f.span = 1
	}
	for f.span < n {
		if f.root != nil {
			f.root = &wnode{sum: f.root.sum, l: f.root}
		}
		f.span *= 2
	}
}

// set publishes bucket b (with its current pair weight) at index i,
// path-copying the O(log span) nodes from the root down and sharing every
// untouched subtree with the previous root.
func (f *fenwick) set(i int, b *bucket) {
	f.grow(i + 1)
	f.root = setRec(f.root, f.span, i, b)
	if i >= f.size {
		f.size = i + 1
	}
}

func setRec(n *wnode, sp, i int, b *bucket) *wnode {
	if sp == 1 {
		return &wnode{sum: pairs2(int64(len(b.ids))), b: b}
	}
	half := sp / 2
	var l, r *wnode
	if n != nil {
		l, r = n.l, n.r
	}
	if i < half {
		l = setRec(l, half, i, b)
	} else {
		r = setRec(r, half, i-half, b)
	}
	return &wnode{sum: wsum(l) + wsum(r), l: l, r: r}
}

// push appends b as bucket index size.
func (f *fenwick) push(b *bucket) { f.set(f.size, b) }

// at returns the bucket at index i (nil when out of range).
func (f *fenwick) at(i int) *bucket {
	if i < 0 || i >= f.size {
		return nil
	}
	n, sp := f.root, f.span
	for n != nil && sp > 1 {
		half := sp / 2
		if i < half {
			n = n.l
		} else {
			n = n.r
			i -= half
		}
		sp = half
	}
	if n == nil {
		return nil
	}
	return n.b
}

// prefix returns the cumulative pair weight of buckets [0, i] — the value the
// frozen cum[i] array used to hold — in O(log span).
func (f *fenwick) prefix(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= f.size {
		i = f.size - 1
	}
	var s int64
	n, sp := f.root, f.span
	for n != nil && sp > 1 {
		half := sp / 2
		if i < half {
			n = n.l
		} else {
			s += wsum(n.l)
			n = n.r
			i -= half
		}
		sp = half
	}
	return s + wsum(n)
}

// find returns the first bucket index whose cumulative weight exceeds x —
// the weighted-sampling descent, equivalent to sort.Search over the old
// prefix-sum array. Callers must ensure 0 ≤ x < total(); the descent can
// never land on a zero-weight leaf.
func (f *fenwick) find(x int64) (int, *bucket) {
	n, sp, lo := f.root, f.span, 0
	for sp > 1 {
		half := sp / 2
		if ls := wsum(n.l); x < ls {
			n = n.l
		} else {
			x -= ls
			n = n.r
			lo += half
		}
		sp = half
	}
	return lo, n.b
}

// walk visits buckets [0, size) in index order, stopping early when fn
// returns false.
func (f *fenwick) walk(fn func(i int, b *bucket) bool) {
	var rec func(n *wnode, lo, sp int) bool
	rec = func(n *wnode, lo, sp int) bool {
		if n == nil {
			return true
		}
		if sp == 1 {
			return fn(lo, n.b)
		}
		half := sp / 2
		return rec(n.l, lo, half) && rec(n.r, lo+half, half)
	}
	rec(f.root, 0, f.span)
}
