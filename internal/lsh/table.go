package lsh

import (
	"encoding/binary"
	"fmt"

	"lshjoin/internal/xrand"
)

// Table is one LSH hash table D_g, where g concatenates k hash functions of
// a Family. It is the paper's extended LSH table (§4.1.1): buckets carry
// their member counts, and the table maintains N_H = Σ_j C(b_j, 2) plus a
// persistent Fenwick weight index over the bucket sequence (fenwick.go) so
// that a uniform random pair from stratum H can be drawn in O(log #buckets).
//
// Storage comes in two modes. When the concatenated hash value fits in a
// machine word (k·Bits() ≤ 64 — SimHash up to k=64, MinHash up to k=2) the
// table keys buckets by uint64, so neither construction nor lookup allocates
// key strings. Wider configurations fall back to the packed string keys of
// packKey. Both modes expose the same canonical string form through KeyOf /
// BucketIDs / ForEachBucket.
//
// A Table is immutable once published: construction (build.go) and delta
// merging (dynamic.go) always produce a fresh value and never touch a table
// that readers may already hold, so every method here is safe for
// unsynchronized concurrent use. Bucket lookup goes through two layers: the
// sharded base maps built by the shard-parallel constructor cover the first
// nbase buckets, and a small overlay map covers buckets created by merges
// since the base was last compacted. The buckets themselves, in their
// deterministic first-appearance order, live in the leaves of the weight
// tree, which consecutive versions share structurally — a merge path-copies
// only the touched leaves' root paths instead of copying the bucket order
// and rebuilding prefix sums.
type Table struct {
	k      int
	fnBase int // hash function indices used: [fnBase, fnBase+k)
	n      int
	bits   int  // bit width of each hash value
	narrow bool // k·bits ≤ 64: uint64 key mode

	keys64  []uint64 // narrow mode: per-vector bucket key, index = vector id
	keysStr []string // wide mode

	base64  []map[uint64]int32 // narrow: tableShards maps, frozen at build/compact
	baseStr []map[string]int32 // wide mode equivalent
	nbase   int                // buckets covered by the base maps: indices [0, nbase)
	ovl64   map[uint64]int32   // buckets appended by merges since the base
	ovlStr  map[string]int32

	w fenwick // bucket sequence + pair weights, shared across versions
}

type bucket struct {
	key64  uint64 // narrow mode
	keyStr string // wide mode
	ids    []int32
}

// pairs2 returns C(b, 2) without overflow for b up to ~3e9.
func pairs2(b int64) int64 { return b * (b - 1) / 2 }

// isNarrow reports whether k hash values of the given width pack into one
// machine word.
func isNarrow(k, bits int) bool { return k*bits <= 64 }

// tableShards is the fixed bucket-map shard count. It is independent of
// GOMAXPROCS so that the table layout — and therefore the shard-parallel
// build — is deterministic on any machine.
const tableShards = 64

// shard64 maps a machine-word key to its map shard (top 6 bits of a
// Fibonacci mix, since packWord concentrates entropy in the low bits).
func shard64(w uint64) int { return int((w * 0x9E3779B97F4A7C15) >> 58) }

// shardStr is shard64 for wide string keys (FNV-1a).
func shardStr(s string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h >> 58)
}

// bucketIndex64 resolves a machine-word key to its bucket index.
func (t *Table) bucketIndex64(w uint64) (int32, bool) {
	if m := t.base64[shard64(w)]; m != nil {
		if bi, ok := m[w]; ok {
			return bi, true
		}
	}
	if t.ovl64 != nil {
		if bi, ok := t.ovl64[w]; ok {
			return bi, true
		}
	}
	return 0, false
}

// bucketIndexStr resolves a string key to its bucket index.
func (t *Table) bucketIndexStr(key string) (int32, bool) {
	if m := t.baseStr[shardStr(key)]; m != nil {
		if bi, ok := m[key]; ok {
			return bi, true
		}
	}
	if t.ovlStr != nil {
		if bi, ok := t.ovlStr[key]; ok {
			return bi, true
		}
	}
	return 0, false
}

// keyString renders the canonical string form of b's key.
func (b *bucket) keyString(narrow bool) string {
	if narrow {
		return key64String(b.key64)
	}
	return b.keyStr
}

// N returns the number of indexed vectors.
func (t *Table) N() int { return t.n }

// K returns the number of hash functions concatenated into g.
func (t *Table) K() int { return t.k }

// FnBase returns the index of the first hash function used by this table.
func (t *Table) FnBase() int { return t.fnBase }

// Narrow reports whether the table uses machine-word bucket keys.
func (t *Table) Narrow() bool { return t.narrow }

// NumBuckets returns the number of non-empty buckets n_g.
func (t *Table) NumBuckets() int { return t.w.size }

// M returns the total number of unordered vector pairs C(n, 2).
func (t *Table) M() int64 { return pairs2(int64(t.n)) }

// NH returns N_H = Σ_j C(b_j, 2), the number of pairs sharing a bucket
// (the weight tree's root sum, O(1)).
func (t *Table) NH() int64 { return t.w.total() }

// NL returns N_L = M − N_H, the number of pairs not sharing a bucket.
func (t *Table) NL() int64 { return t.M() - t.w.total() }

// CumWeight returns the cumulative pair weight Σ_{j ≤ i} C(b_j, 2) of the
// buckets up to index i in the deterministic bucket order — the quantity the
// frozen prefix-sum array used to expose — in O(log #buckets).
func (t *Table) CumWeight(i int) int64 { return t.w.prefix(i) }

// KeyOf returns the bucket key of vector i in canonical string form (the
// 8-byte big-endian packed word in narrow mode).
func (t *Table) KeyOf(i int) string {
	if t.narrow {
		return key64String(t.keys64[i])
	}
	return t.keysStr[i]
}

// key64 returns the machine-word key of vector i (narrow mode only).
func (t *Table) key64(i int) uint64 { return t.keys64[i] }

// SameBucket reports whether vectors i and j hash to the same bucket,
// i.e. whether the pair (i, j) belongs to stratum H of this table.
func (t *Table) SameBucket(i, j int) bool {
	if t.narrow {
		return t.keys64[i] == t.keys64[j]
	}
	return t.keysStr[i] == t.keysStr[j]
}

// SameBucketAcross reports whether vector i of this table and vector j of
// table u hash to the same bucket key. The tables must share k, fnBase and
// bit width (true for the same table index of two shard snapshots); narrow
// mode compares machine words without allocating.
func (t *Table) SameBucketAcross(i int, u *Table, j int) bool {
	if t.narrow && u.narrow {
		return t.keys64[i] == u.keys64[j]
	}
	return t.KeyOf(i) == u.KeyOf(j)
}

// BucketIDs returns the member ids of the bucket with the given key in
// canonical string form (nil if absent). Callers must not modify the
// returned slice.
func (t *Table) BucketIDs(key string) []int32 {
	if t.narrow {
		w, ok := parseKey64(key)
		if !ok {
			return nil
		}
		return t.bucket64(w)
	}
	bi, ok := t.bucketIndexStr(key)
	if !ok {
		return nil
	}
	return t.w.at(int(bi)).ids
}

// bucket64 returns the member ids of the bucket keyed by w (narrow mode).
func (t *Table) bucket64(w uint64) []int32 {
	bi, ok := t.bucketIndex64(w)
	if !ok {
		return nil
	}
	return t.w.at(int(bi)).ids
}

// BucketSizes returns the multiset of bucket counts b_j in deterministic
// order.
func (t *Table) BucketSizes() []int {
	out := make([]int, 0, t.w.size)
	t.w.walk(func(_ int, b *bucket) bool {
		out = append(out, len(b.ids))
		return true
	})
	return out
}

// MaxBucket returns the largest bucket count (0 for an empty table).
func (t *Table) MaxBucket() int {
	max := 0
	t.w.walk(func(_ int, b *bucket) bool {
		if len(b.ids) > max {
			max = len(b.ids)
		}
		return true
	})
	return max
}

// SamplePair draws a uniform random pair from stratum H: a bucket B_j chosen
// with weight C(b_j, 2) by descending the weight tree, then a uniform
// distinct pair inside it. ok is false when the table has no co-located
// pairs (N_H = 0). The descent consumes the same RNG stream and selects the
// same bucket as the former prefix-sum binary search.
func (t *Table) SamplePair(rng *xrand.RNG) (i, j int, ok bool) {
	nh := t.w.total()
	if nh == 0 {
		return 0, 0, false
	}
	x := int64(rng.Uint64n(uint64(nh)))
	_, bk := t.w.find(x)
	ids := bk.ids
	a := rng.Intn(len(ids))
	b := rng.Intn(len(ids) - 1)
	if b >= a {
		b++
	}
	return int(ids[a]), int(ids[b]), true
}

// ForEachIntraPair calls fn for every unordered pair (i, j), i < j, sharing a
// bucket. It stops early if fn returns false. This exact enumeration costs
// Θ(N_H) and backs the probability tables of the evaluation (Tables 1–2).
func (t *Table) ForEachIntraPair(fn func(i, j int32) bool) {
	t.w.walk(func(_ int, b *bucket) bool {
		ids := b.ids
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				if !fn(ids[x], ids[y]) {
					return false
				}
			}
		}
		return true
	})
}

// ForEachBucket calls fn for every bucket in deterministic order with the
// canonical string key; it stops early if fn returns false.
func (t *Table) ForEachBucket(fn func(key string, ids []int32) bool) {
	t.w.walk(func(_ int, b *bucket) bool {
		return fn(b.keyString(t.narrow), b.ids)
	})
}

// SizeBytes estimates the space of the extended LSH table using the paper's
// accounting (§6.3): per bucket, the g value (key) plus a bucket count, plus
// one 4-byte id per member. Go map/runtime overheads are deliberately
// excluded to mirror "ignoring implementation-dependent overheads".
func (t *Table) SizeBytes() int64 {
	var s int64
	t.w.walk(func(_ int, b *bucket) bool {
		keyBytes := int64(8)
		if !t.narrow {
			keyBytes = int64(len(b.keyStr))
		}
		s += keyBytes + 8 + 4*int64(len(b.ids))
		return true
	})
	return s
}

// packWord packs k hash values, each using `bits` low bits, into one machine
// word; callers must have checked isNarrow(k, bits).
func packWord(vals []uint64, bits int) uint64 {
	var w uint64
	for _, v := range vals {
		w = w<<uint(bits) | v
	}
	return w
}

// key64String renders a machine-word key in the canonical 8-byte big-endian
// string form, matching what packKey produces for the same values.
func key64String(w uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], w)
	return string(buf[:])
}

// parseKey64 inverts key64String without allocating.
func parseKey64(key string) (uint64, bool) {
	if len(key) != 8 {
		return 0, false
	}
	return uint64(key[0])<<56 | uint64(key[1])<<48 | uint64(key[2])<<40 |
		uint64(key[3])<<32 | uint64(key[4])<<24 | uint64(key[5])<<16 |
		uint64(key[6])<<8 | uint64(key[7]), true
}

// packKey encodes k hash values, each using `bits` low bits, into a compact
// string key. When everything fits in 64 bits the key is the 8-byte
// big-endian packed word; otherwise it is the concatenation of 8-byte words.
func packKey(vals []uint64, bits int) string {
	if bits*len(vals) <= 64 {
		return key64String(packWord(vals, bits))
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], v)
	}
	return string(buf)
}

// validateParams checks the (k, ℓ) configuration against a family.
func validateParams(f Family, k, ell int) error {
	if f == nil {
		return fmt.Errorf("lsh: nil family")
	}
	if k < 1 {
		return fmt.Errorf("lsh: k must be ≥ 1, got %d", k)
	}
	if ell < 1 {
		return fmt.Errorf("lsh: ℓ must be ≥ 1, got %d", ell)
	}
	if f.Bits() < 1 || f.Bits() > 64 {
		return fmt.Errorf("lsh: family %s has invalid bit width %d", f.Name(), f.Bits())
	}
	return nil
}
