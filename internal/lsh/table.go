package lsh

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lshjoin/internal/xrand"
)

// Table is one LSH hash table D_g, where g concatenates k hash functions of
// a Family. It is the paper's extended LSH table (§4.1.1): buckets carry
// their member counts, and the table maintains N_H = Σ_j C(b_j, 2) plus a
// cumulative-weight array so that a uniform random pair from stratum H can
// be drawn in O(log #buckets).
//
// Build tables through Build (single table via BuildTable); a built table is
// immutable.
type Table struct {
	k      int
	fnBase int // hash function indices used: [fnBase, fnBase+k)
	n      int

	keys    []string // per-vector bucket key, index = vector id
	buckets map[string]*bucket
	order   []*bucket // deterministic (insertion) order for sampling
	cum     []int64   // cum[i] = Σ_{j ≤ i} C(order[j].size, 2)
	nh      int64
	dirty   bool // inserts invalidated cum; rebuilt lazily (see dynamic.go)
}

type bucket struct {
	key string
	ids []int32
}

// pairs2 returns C(b, 2) without overflow for b up to ~3e9.
func pairs2(b int64) int64 { return b * (b - 1) / 2 }

// newTable hashes every vector of data with functions [fnBase, fnBase+k) of
// family and freezes the result.
func newTable(data []signedVectors, k, fnBase int) *Table {
	t := &Table{
		k:       k,
		fnBase:  fnBase,
		n:       len(data),
		keys:    make([]string, len(data)),
		buckets: make(map[string]*bucket),
	}
	for i, sv := range data {
		key := sv.key
		t.keys[i] = key
		b, ok := t.buckets[key]
		if !ok {
			b = &bucket{key: key}
			t.buckets[key] = b
			t.order = append(t.order, b)
		}
		b.ids = append(b.ids, int32(i))
	}
	t.freeze()
	return t
}

// signedVectors pairs a vector id with its precomputed bucket key for one
// table. (Signatures are computed in parallel by Build.)
type signedVectors struct {
	key string
}

func (t *Table) freeze() {
	t.cum = make([]int64, len(t.order))
	var total int64
	for i, b := range t.order {
		total += pairs2(int64(len(b.ids)))
		t.cum[i] = total
	}
	t.nh = total
}

// N returns the number of indexed vectors.
func (t *Table) N() int { return t.n }

// K returns the number of hash functions concatenated into g.
func (t *Table) K() int { return t.k }

// FnBase returns the index of the first hash function used by this table.
func (t *Table) FnBase() int { return t.fnBase }

// NumBuckets returns the number of non-empty buckets n_g.
func (t *Table) NumBuckets() int { return len(t.order) }

// M returns the total number of unordered vector pairs C(n, 2).
func (t *Table) M() int64 { return pairs2(int64(t.n)) }

// NH returns N_H = Σ_j C(b_j, 2), the number of pairs sharing a bucket.
func (t *Table) NH() int64 { return t.nh }

// NL returns N_L = M − N_H, the number of pairs not sharing a bucket.
func (t *Table) NL() int64 { return t.M() - t.nh }

// KeyOf returns the bucket key of vector i.
func (t *Table) KeyOf(i int) string { return t.keys[i] }

// SameBucket reports whether vectors i and j hash to the same bucket,
// i.e. whether the pair (i, j) belongs to stratum H of this table.
func (t *Table) SameBucket(i, j int) bool { return t.keys[i] == t.keys[j] }

// BucketIDs returns the member ids of the bucket with the given key (nil if
// absent). Callers must not modify the returned slice.
func (t *Table) BucketIDs(key string) []int32 {
	b, ok := t.buckets[key]
	if !ok {
		return nil
	}
	return b.ids
}

// BucketSizes returns the multiset of bucket counts b_j in deterministic
// order.
func (t *Table) BucketSizes() []int {
	out := make([]int, len(t.order))
	for i, b := range t.order {
		out[i] = len(b.ids)
	}
	return out
}

// MaxBucket returns the largest bucket count (0 for an empty table).
func (t *Table) MaxBucket() int {
	max := 0
	for _, b := range t.order {
		if len(b.ids) > max {
			max = len(b.ids)
		}
	}
	return max
}

// SamplePair draws a uniform random pair from stratum H: a bucket B_j chosen
// with weight C(b_j, 2), then a uniform distinct pair inside it. ok is false
// when the table has no co-located pairs (N_H = 0).
func (t *Table) SamplePair(rng *xrand.RNG) (i, j int, ok bool) {
	t.ensureFrozen()
	if t.nh == 0 {
		return 0, 0, false
	}
	x := int64(rng.Uint64n(uint64(t.nh)))
	// First bucket whose cumulative weight exceeds x.
	bi := sort.Search(len(t.cum), func(k int) bool { return t.cum[k] > x })
	ids := t.order[bi].ids
	a := rng.Intn(len(ids))
	b := rng.Intn(len(ids) - 1)
	if b >= a {
		b++
	}
	return int(ids[a]), int(ids[b]), true
}

// ForEachIntraPair calls fn for every unordered pair (i, j), i < j, sharing a
// bucket. It stops early if fn returns false. This exact enumeration costs
// Θ(N_H) and backs the probability tables of the evaluation (Tables 1–2).
func (t *Table) ForEachIntraPair(fn func(i, j int32) bool) {
	for _, b := range t.order {
		ids := b.ids
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				if !fn(ids[x], ids[y]) {
					return
				}
			}
		}
	}
}

// ForEachBucket calls fn for every bucket in deterministic order; it stops
// early if fn returns false.
func (t *Table) ForEachBucket(fn func(key string, ids []int32) bool) {
	for _, b := range t.order {
		if !fn(b.key, b.ids) {
			return
		}
	}
}

// SizeBytes estimates the space of the extended LSH table using the paper's
// accounting (§6.3): per bucket, the g value (key) plus a bucket count, plus
// one 4-byte id per member. Go map/runtime overheads are deliberately
// excluded to mirror "ignoring implementation-dependent overheads".
func (t *Table) SizeBytes() int64 {
	var s int64
	for _, b := range t.order {
		s += int64(len(b.key)) + 8 + 4*int64(len(b.ids))
	}
	return s
}

// packKey encodes k hash values, each using `bits` low bits, into a compact
// string key. When everything fits in 64 bits the key is the 8-byte
// big-endian packed word; otherwise it is the concatenation of 8-byte words.
func packKey(vals []uint64, bits int) string {
	if bits*len(vals) <= 64 {
		var word uint64
		for _, v := range vals {
			word = word<<uint(bits) | v
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], word)
		return string(buf[:])
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], v)
	}
	return string(buf)
}

// validateParams checks the (k, ℓ) configuration against a family.
func validateParams(f Family, k, ell int) error {
	if f == nil {
		return fmt.Errorf("lsh: nil family")
	}
	if k < 1 {
		return fmt.Errorf("lsh: k must be ≥ 1, got %d", k)
	}
	if ell < 1 {
		return fmt.Errorf("lsh: ℓ must be ≥ 1, got %d", ell)
	}
	if f.Bits() < 1 || f.Bits() > 64 {
		return fmt.Errorf("lsh: family %s has invalid bit width %d", f.Name(), f.Bits())
	}
	return nil
}
