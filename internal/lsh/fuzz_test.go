package lsh

import (
	"testing"

	"lshjoin/internal/vecmath"
)

// FuzzTableMergePublish feeds arbitrary delta key streams through the
// incremental merge path — base build, then publish-sized delta chunks
// merged one at a time — and requires the result to be indistinguishable
// from a from-scratch rebuild over the concatenated keys, in both narrow
// (uint64) and wide (string) key modes.
//
// Byte layout: data[0] picks the chunking rhythm; every following byte is
// one key, folded into a small alphabet so buckets genuinely collide and
// overlay compaction triggers on longer inputs.
func FuzzTableMergePublish(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 1, 2, 3, 9, 9, 1})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{7, 255, 254, 253, 1, 1, 1, 2, 2, 40, 41, 42, 43})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		chunk := int(data[0]%13) + 1
		raw := data[1:]
		keys := make([]uint64, len(raw))
		for i, b := range raw {
			keys[i] = uint64(b % 37) // collision-rich alphabet
		}

		// Narrow mode: base is the first chunk, then merge64 one chunk per
		// publish — the exact per-insert publication path when chunk == 1.
		base := keys[:min(chunk, len(keys))]
		inc := buildTable64(append([]uint64(nil), base...), 8, 0, 1, 1)
		for lo := len(base); lo < len(keys); lo += chunk {
			hi := min(lo+chunk, len(keys))
			inc = inc.merge64(keys[lo:hi])
		}
		full := buildTable64(append([]uint64(nil), keys...), 8, 0, 1, 1)
		tablesEqual(t, full, inc)

		// Wide mode: same stream as 70-bit packed string keys via mergeStr.
		skeys := make([]string, len(keys))
		vals := make([]uint64, 70)
		for i, w := range keys {
			vals[0], vals[69] = w%7, w/7
			skeys[i] = packKey(vals, 1)
		}
		sbase := skeys[:min(chunk, len(skeys))]
		sinc := buildTableStr(append([]string(nil), sbase...), 70, 0, 1, 1)
		for lo := len(sbase); lo < len(skeys); lo += chunk {
			hi := min(lo+chunk, len(skeys))
			sinc = sinc.mergeStr(skeys[lo:hi])
		}
		sfull := buildTableStr(append([]string(nil), skeys...), 70, 0, 1, 1)
		tablesEqual(t, sfull, sinc)
	})
}

// FuzzShardedGroupNH feeds arbitrary corpora through the shard layer and
// requires the sharded merge identity to hold exactly: per-shard N_H plus
// cross-shard bipartite N_H must equal the N_H of one index built over the
// union, and the per-pair membership tests must agree pair for pair — in
// both narrow (SimHash) and wide (MinHash) key modes.
//
// Byte layout: data[0] picks the shard count; every following byte is one
// vector over a tiny dimension alphabet, so buckets genuinely collide within
// and across shards.
func FuzzShardedGroupNH(f *testing.F) {
	f.Add([]byte{2, 1, 2, 3, 1, 2, 3, 9, 9, 1})
	f.Add([]byte{5, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{1, 255, 254, 1, 1, 2, 2, 40, 41})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		s := int(data[0]%7) + 1
		raw := data[1:]
		if len(raw) > 64 {
			raw = raw[:64] // keep the O(n²) membership sweep cheap
		}
		vecs := make([]vecmath.Vector, len(raw))
		for i, b := range raw {
			vecs[i] = vecmath.FromDims([]uint32{uint32(b % 8), uint32(b/8%8) + 8})
		}
		for _, fam := range []Family{NewSimHash(3), NewMinHash(3)} {
			k := 4
			if fam.Bits() > 16 {
				k = 3 // MinHash: force the wide string-key mode
			}
			g, err := NewShardGroup(vecs, fam, k, 2, s)
			if err != nil {
				t.Fatal(err)
			}
			gs := g.Capture()
			union, err := BuildSnapshot(gs.Data(), fam, k, 2)
			if err != nil {
				t.Fatal(err)
			}
			for ti := 0; ti < 2; ti++ {
				var sum int64
				for a := 0; a < gs.S(); a++ {
					sum += gs.Snap(a).Table(ti).NH()
					for b := a + 1; b < gs.S(); b++ {
						bp, err := NewBipartite(gs.Snap(a), gs.Snap(b), ti)
						if err != nil {
							t.Fatal(err)
						}
						sum += bp.NH()
					}
				}
				if want := union.Table(ti).NH(); sum != want {
					t.Fatalf("s=%d table %d: sharded N_H %d, union %d", s, ti, sum, want)
				}
				for i := 0; i < gs.N(); i++ {
					for j := i + 1; j < gs.N(); j++ {
						if got, want := gs.SameBucketInTable(ti, i, j), union.Table(ti).SameBucket(i, j); got != want {
							t.Fatalf("s=%d t=%d SameBucket(%d,%d)=%v union %v", s, ti, i, j, got, want)
						}
					}
				}
			}
		}
	})
}

// FuzzCrossGroupNH feeds arbitrary two-sided corpora through the shard layer
// and requires the cross-group bipartite decomposition to hold exactly: the
// S_left·S_right per-shard-pair bipartite N_H must sum to the N_H of one
// bipartite matching over the union sides, and SameBucketAcrossGroups must
// agree pair for pair with the union matching — in both narrow (SimHash) and
// wide (MinHash) key modes. This is the identity the merged general-join
// stratum (core.MergedBipartiteStratum) is built on.
//
// Byte layout: data[0] and data[1] pick the two shard counts; the remaining
// bytes split into the left and right corpora, one vector per byte over a
// tiny dimension alphabet so buckets genuinely collide within and across
// groups.
func FuzzCrossGroupNH(f *testing.F) {
	f.Add([]byte{2, 3, 1, 2, 3, 1, 2, 3, 9, 9, 1})
	f.Add([]byte{4, 1, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{1, 1, 255, 254, 1, 1, 2, 2, 40, 41})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		sl := int(data[0]%5) + 1
		sr := int(data[1]%5) + 1
		raw := data[2:]
		if len(raw) > 48 {
			raw = raw[:48] // keep the O(|U|·|V|) membership sweep cheap
		}
		half := len(raw) / 2
		mk := func(bs []byte) []vecmath.Vector {
			vecs := make([]vecmath.Vector, len(bs))
			for i, b := range bs {
				vecs[i] = vecmath.FromDims([]uint32{uint32(b % 8), uint32(b/8%8) + 8})
			}
			return vecs
		}
		lvecs, rvecs := mk(raw[:half]), mk(raw[half:])
		for _, fam := range []Family{NewSimHash(3), NewMinHash(3)} {
			k := 4
			if fam.Bits() > 16 {
				k = 3 // MinHash: force the wide string-key mode
			}
			gl, err := NewShardGroup(lvecs, fam, k, 2, sl)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := NewShardGroup(rvecs, fam, k, 2, sr)
			if err != nil {
				t.Fatal(err)
			}
			lgs, rgs := gl.Capture(), gr.Capture()
			if err := CompatibleCross(lgs, rgs); err != nil {
				t.Fatal(err)
			}
			ul, err := BuildSnapshot(lgs.Data(), fam, k, 2)
			if err != nil {
				t.Fatal(err)
			}
			ur, err := BuildSnapshot(rgs.Data(), fam, k, 2)
			if err != nil {
				t.Fatal(err)
			}
			for ti := 0; ti < 2; ti++ {
				union, err := NewBipartite(ul, ur, ti)
				if err != nil {
					t.Fatal(err)
				}
				var sum int64
				for a := 0; a < lgs.S(); a++ {
					for b := 0; b < rgs.S(); b++ {
						bp, err := NewBipartite(lgs.Snap(a), rgs.Snap(b), ti)
						if err != nil {
							t.Fatal(err)
						}
						sum += bp.NH()
					}
				}
				if sum != union.NH() {
					t.Fatalf("sl=%d sr=%d table %d: per-pair N_H sum %d, union %d", sl, sr, ti, sum, union.NH())
				}
				for i := 0; i < lgs.N(); i++ {
					for j := 0; j < rgs.N(); j++ {
						if got, want := lgs.SameBucketAcrossGroups(ti, i, rgs, j), union.SameBucket(i, j); got != want {
							t.Fatalf("sl=%d sr=%d t=%d SameBucketAcrossGroups(%d,%d)=%v union %v", sl, sr, ti, i, j, got, want)
						}
					}
				}
			}
		}
	})
}
