package lsh

import "testing"

// FuzzTableMergePublish feeds arbitrary delta key streams through the
// incremental merge path — base build, then publish-sized delta chunks
// merged one at a time — and requires the result to be indistinguishable
// from a from-scratch rebuild over the concatenated keys, in both narrow
// (uint64) and wide (string) key modes.
//
// Byte layout: data[0] picks the chunking rhythm; every following byte is
// one key, folded into a small alphabet so buckets genuinely collide and
// overlay compaction triggers on longer inputs.
func FuzzTableMergePublish(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 1, 2, 3, 9, 9, 1})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{7, 255, 254, 253, 1, 1, 1, 2, 2, 40, 41, 42, 43})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		chunk := int(data[0]%13) + 1
		raw := data[1:]
		keys := make([]uint64, len(raw))
		for i, b := range raw {
			keys[i] = uint64(b % 37) // collision-rich alphabet
		}

		// Narrow mode: base is the first chunk, then merge64 one chunk per
		// publish — the exact per-insert publication path when chunk == 1.
		base := keys[:min(chunk, len(keys))]
		inc := buildTable64(append([]uint64(nil), base...), 8, 0, 1, 1)
		for lo := len(base); lo < len(keys); lo += chunk {
			hi := min(lo+chunk, len(keys))
			inc = inc.merge64(keys[lo:hi])
		}
		full := buildTable64(append([]uint64(nil), keys...), 8, 0, 1, 1)
		tablesEqual(t, full, inc)

		// Wide mode: same stream as 70-bit packed string keys via mergeStr.
		skeys := make([]string, len(keys))
		vals := make([]uint64, 70)
		for i, w := range keys {
			vals[0], vals[69] = w%7, w/7
			skeys[i] = packKey(vals, 1)
		}
		sbase := skeys[:min(chunk, len(skeys))]
		sinc := buildTableStr(append([]string(nil), sbase...), 70, 0, 1, 1)
		for lo := len(sbase); lo < len(skeys); lo += chunk {
			hi := min(lo+chunk, len(skeys))
			sinc = sinc.mergeStr(skeys[lo:hi])
		}
		sfull := buildTableStr(append([]string(nil), skeys...), 70, 0, 1, 1)
		tablesEqual(t, sfull, sinc)
	})
}
