package lsh

import (
	"reflect"
	"unsafe"

	"lshjoin/internal/vecmath"
)

// Per-version space accounting. Consecutive snapshots share almost all of
// their structure (key backing arrays, bucket id slices, base lookup maps,
// Fenwick subtrees), so the interesting quantity for snapshot GC is not a
// version's total footprint but what it retains *beyond* the version it
// grew from — the bytes that stay pinned as long as both versions are
// reachable, and the bytes freed when the older one is dropped.
//
// RetainedBytes computes that by structure walking, not heap sampling: it
// prunes every Fenwick subtree, bucket, backing array and lookup map that
// is pointer-identical to (or backing-shared with) the base version and
// charges only what this snapshot allocated on top. The numbers are
// estimates in the same spirit as Table.SizeBytes — struct sizes via
// unsafe.Sizeof plus a flat per-entry cost for maps, ignoring Go runtime
// overheads — but they are deterministic, allocation-free to compute for
// small deltas, and monotone in the real retention, which is what the
// retention tests assert against (see retention_test.go).

const (
	// mapEntryBytes is the flat per-entry estimate for bucket lookup maps.
	mapEntryBytes = 16
)

var (
	wnodeBytes     = int64(unsafe.Sizeof(wnode{}))
	bucketHdrBytes = int64(unsafe.Sizeof(bucket{}))
	strHdrBytes    = int64(unsafe.Sizeof(""))
	vecHdrBytes    = int64(unsafe.Sizeof(vecmath.Vector{}))
	entryBytes     = int64(unsafe.Sizeof(vecmath.Entry{}))
	snapHdrBytes   = int64(unsafe.Sizeof(Snapshot{}))
	tableHdrBytes  = int64(unsafe.Sizeof(Table{}))
)

// sliceShared reports whether cur extends base in place: same backing
// array, so only the elements past len(base) are new.
func sliceShared[T any](cur, base []T) bool {
	return len(base) > 0 && len(cur) >= len(base) && &cur[0] == &base[0]
}

// mapPtr returns the identity of a map value (0 for nil).
func mapPtr[K comparable, V any](m map[K]V) uintptr {
	if m == nil {
		return 0
	}
	return reflect.ValueOf(m).Pointer()
}

// RetainedBytes estimates the bytes of index structure this snapshot keeps
// alive beyond what base already keeps alive. RetainedBytes(nil) is the
// snapshot's total estimated footprint; s.RetainedBytes(s) is 0; for
// consecutive versions v-1, v the result is the marginal cost of holding
// version v while v-1 is still reachable — the per-version retention bound
// the GC tests assert.
func (s *Snapshot) RetainedBytes(base *Snapshot) int64 {
	if s == nil || s == base {
		return 0
	}
	if base != nil && (base.ell != s.ell || base.narrow != s.narrow) {
		base = nil // not versions of one index; no sharing to discover
	}
	total := snapHdrBytes + int64(s.ell)*tableHdrBytes
	var baseData []vecmath.Vector
	if base != nil {
		baseData = base.data
	}
	total += retainedVectors(s.data, baseData, base != nil)
	for t := 0; t < s.ell; t++ {
		var bt *Table
		if base != nil {
			bt = base.tables[t]
		}
		total += s.tables[t].retainedBytes(bt)
	}
	return total
}

// retainedVectors charges the vector collection. A shared backing array
// costs only the appended suffix (headers + entry payloads); a reallocated
// one costs the fresh header array but not the entry payloads, which the
// vectors still share with the base version.
func retainedVectors(cur, base []vecmath.Vector, haveBase bool) int64 {
	if sliceShared(cur, base) {
		var total int64
		for _, v := range cur[len(base):] {
			total += vecHdrBytes + entryBytes*int64(len(v.Entries()))
		}
		return total
	}
	if haveBase && len(base) > 0 {
		return vecHdrBytes * int64(cap(cur))
	}
	total := vecHdrBytes * int64(cap(cur)-len(cur))
	for _, v := range cur {
		total += vecHdrBytes + entryBytes*int64(len(v.Entries()))
	}
	return total
}

// retainedBytes charges one table against its base-version counterpart.
func (t *Table) retainedBytes(bt *Table) int64 {
	var total int64
	// Per-vector key arrays.
	if t.narrow {
		if bt != nil && sliceShared(t.keys64, bt.keys64) {
			total += 8 * int64(len(t.keys64)-len(bt.keys64))
		} else {
			total += 8 * int64(cap(t.keys64))
		}
	} else {
		if bt != nil && sliceShared(t.keysStr, bt.keysStr) {
			total += strHdrBytes * int64(len(t.keysStr)-len(bt.keysStr))
		} else {
			total += strHdrBytes * int64(cap(t.keysStr))
		}
	}
	// Base lookup maps are shared wholesale until a compaction rebuilds
	// them; the overlay map is copied whenever a merge appends buckets.
	baseShared := bt != nil &&
		(sliceShared(t.base64, bt.base64) || sliceShared(t.baseStr, bt.baseStr))
	if !baseShared {
		total += mapEntryBytes * int64(t.nbase)
	}
	ovlShared := bt != nil &&
		mapPtr(t.ovl64) == mapPtr(bt.ovl64) && mapPtr(t.ovlStr) == mapPtr(bt.ovlStr)
	if !ovlShared {
		total += mapEntryBytes * int64(len(t.ovl64)+len(t.ovlStr))
	}
	// Fenwick nodes and buckets: walk this table's tree, pruning every
	// subtree shared with the base version, and charge new leaves against
	// the base bucket at the same index (bucket indices are stable — the
	// sequence only ever appends).
	var baseNodes map[*wnode]struct{}
	var baseBuckets []*bucket
	if bt != nil {
		baseNodes = make(map[*wnode]struct{})
		var collect func(n *wnode)
		collect = func(n *wnode) {
			if n == nil {
				return
			}
			baseNodes[n] = struct{}{}
			collect(n.l)
			collect(n.r)
		}
		collect(bt.w.root)
		baseBuckets = make([]*bucket, 0, bt.w.size)
		bt.w.walk(func(_ int, b *bucket) bool {
			baseBuckets = append(baseBuckets, b)
			return true
		})
	}
	var rec func(n *wnode, lo, sp int)
	rec = func(n *wnode, lo, sp int) {
		if n == nil {
			return
		}
		if _, shared := baseNodes[n]; shared {
			return
		}
		total += wnodeBytes
		if sp <= 1 {
			var old *bucket
			if lo < len(baseBuckets) {
				old = baseBuckets[lo]
			}
			total += t.retainedBucket(n.b, old)
			return
		}
		rec(n.l, lo, sp/2)
		rec(n.r, lo+sp/2, sp/2)
	}
	rec(t.w.root, 0, t.w.span)
	return total
}

// retainedBucket charges one bucket header against the base version's
// bucket at the same index: a pointer-identical bucket costs nothing, a
// copied header extending the same id backing costs the appended ids, and
// a reallocated one costs its full id capacity.
func (t *Table) retainedBucket(b, old *bucket) int64 {
	if b == nil || b == old {
		return 0
	}
	total := bucketHdrBytes
	if !t.narrow && old == nil {
		total += int64(len(b.keyStr)) // new bucket: its key string is new too
	}
	if old != nil && sliceShared(b.ids, old.ids) {
		total += 4 * int64(len(b.ids)-len(old.ids))
	} else {
		total += 4 * int64(cap(b.ids))
	}
	return total
}
