package lsh

import (
	"fmt"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// BitSampling is the Hamming-distance LSH family (Indyk–Motwani): hash
// function fn reads one fixed, randomly chosen coordinate of the binary
// vector. For binary vectors over a universe of D dimensions,
//
//	P(h(u) = h(v)) = 1 − Hamming(u, v)/D,
//
// which equals the Hamming similarity — so this family satisfies the
// paper's idealized Definition 3 (p(s) = s) exactly, like MinHash does for
// Jaccard. Weights are ignored; any non-zero entry reads as a set bit.
type BitSampling struct {
	seed     uint64
	universe uint32
}

// NewBitSampling returns the family for binary vectors over dimensions
// [0, universe).
func NewBitSampling(seed uint64, universe uint32) (BitSampling, error) {
	if universe == 0 {
		return BitSampling{}, fmt.Errorf("lsh: bit sampling needs a positive universe size")
	}
	return BitSampling{seed: seed, universe: universe}, nil
}

// Name implements Family.
func (BitSampling) Name() string { return "bitsampling" }

// Bits implements Family: one bit per function.
func (BitSampling) Bits() int { return 1 }

// Universe returns the dimension count D.
func (f BitSampling) Universe() uint32 { return f.universe }

// Sim implements Family with Hamming similarity 1 − Hamming(u,v)/D over the
// supports of u and v.
func (f BitSampling) Sim(u, v vecmath.Vector) float64 {
	inter := vecmath.Overlap(u, v)
	// Hamming distance of the supports = |A| + |B| − 2|A∩B|.
	d := u.NNZ() + v.NNZ() - 2*inter
	return 1 - float64(d)/float64(f.universe)
}

// Hash implements Family: the bit of v at the coordinate owned by fn.
func (f BitSampling) Hash(fn int, v vecmath.Vector) uint64 {
	dim := uint32(xrand.Mix2(f.seed^0xB17B17, uint64(fn)) % uint64(f.universe))
	if v.Weight(dim) != 0 {
		return 1
	}
	return 0
}

// CollisionProb implements Family: exactly the Hamming similarity.
func (BitSampling) CollisionProb(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SimFromCollisionProb implements Family.
func (BitSampling) SimFromCollisionProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
