package lsh

import "lshjoin/internal/xrand"

// gaussComponent returns the dim-th gaussian component of the fn-th random
// hyperplane for the given family seed. Deterministic and storage-free.
func gaussComponent(seed, fn, dim uint64) float64 {
	return xrand.KeyedGaussian(seed, fn, dim)
}

// hash64 returns a 64-bit keyed hash of (seed, fn, elem).
func hash64(seed, fn, elem uint64) uint64 {
	return xrand.KeyedHash(seed, fn, elem)
}
