package lsh

import (
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// TestInsertEquivalentToRebuild: building incrementally must produce exactly
// the same buckets, keys and N_H as building from scratch (hashing is a pure
// function of the vector).
func TestInsertEquivalentToRebuild(t *testing.T) {
	data := randData(300, 60, 8, 71)
	full, err := Build(data, NewSimHash(72), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	half, err := Build(data[:150], NewSimHash(72), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first := half.InsertBatch(data[150:]); first != 150 {
		t.Fatalf("first inserted id = %d, want 150", first)
	}
	if half.N() != full.N() {
		t.Fatalf("sizes differ: %d vs %d", half.N(), full.N())
	}
	for ti := 0; ti < full.L(); ti++ {
		ft, ht := full.Table(ti), half.Table(ti)
		if ft.NH() != ht.NH() {
			t.Errorf("table %d: NH %d vs %d", ti, ht.NH(), ft.NH())
		}
		if ft.NumBuckets() != ht.NumBuckets() {
			t.Errorf("table %d: buckets %d vs %d", ti, ht.NumBuckets(), ft.NumBuckets())
		}
		for i := 0; i < full.N(); i++ {
			if ft.KeyOf(i) != ht.KeyOf(i) {
				t.Fatalf("table %d vector %d: key mismatch", ti, i)
			}
		}
	}
}

// TestInsertMaintainsNHIncrementally: N_H in each published version equals
// the enumeration count over that version, and sampling works against the
// merged tables. (Tables are immutable now, so each iteration re-fetches
// the latest version via Index.Table.)
func TestInsertMaintainsNH(t *testing.T) {
	data := randData(80, 30, 6, 73)
	idx, err := Build(data[:40], NewSimHash(74), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[40:] {
		idx.Insert(v)
		tab := idx.Table(0) // publishes the pending insert
		var count int64
		tab.ForEachIntraPair(func(i, j int32) bool { count++; return true })
		if count != tab.NH() {
			t.Fatalf("after insert: NH=%d but enumeration finds %d", tab.NH(), count)
		}
	}
	tab := idx.Table(0)
	if tab.NH() == 0 {
		t.Skip("degenerate bucket structure")
	}
	rng := xrand.New(75)
	for s := 0; s < 2000; s++ {
		i, j, ok := tab.SamplePair(rng)
		if !ok {
			t.Fatal("sampling failed after inserts")
		}
		if !tab.SameBucket(i, j) {
			t.Fatal("sampled pair not co-bucketed after inserts")
		}
	}
}

// TestInsertDuplicateAlwaysCoBucketed: inserting a copy of an indexed vector
// must land in the same bucket in every table and raise N_H.
func TestInsertDuplicateAlwaysCoBucketed(t *testing.T) {
	data := randData(50, 40, 6, 77)
	idx, err := Build(data, NewSimHash(78), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Table(0).NH()
	id := idx.Insert(data[7])
	for ti := 0; ti < idx.L(); ti++ {
		if !idx.Table(ti).SameBucket(7, id) {
			t.Errorf("table %d: duplicate not co-bucketed", ti)
		}
	}
	if idx.Table(0).NH() <= before {
		t.Errorf("NH did not grow: %d → %d", before, idx.Table(0).NH())
	}
}

// TestInsertVisibleToQueries: new vectors are retrievable via Query/Search.
func TestInsertVisibleToQueries(t *testing.T) {
	data := randData(60, 40, 6, 79)
	idx, err := Build(data, NewSimHash(80), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := vecmath.FromDims([]uint32{1000, 1001, 1002})
	id := idx.Insert(v)
	found := false
	for _, got := range idx.Query(v) {
		if int(got) == id {
			found = true
		}
	}
	if !found {
		t.Error("inserted vector not retrievable by Query")
	}
	hits := idx.Search(v, 0.999)
	found = false
	for _, got := range hits {
		if int(got) == id {
			found = true
		}
	}
	if !found {
		t.Error("inserted vector not found by Search at τ≈1")
	}
}
