package lsh

import (
	"sync"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// TestSnapshotIsolation: a snapshot taken before an insert is bit-frozen —
// later inserts change neither its size nor its tables — while the next
// snapshot sees the delta and carries a higher version.
func TestSnapshotIsolation(t *testing.T) {
	data := randData(200, 60, 8, 301)
	idx, err := Build(data, NewSimHash(302), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	s1 := idx.Snapshot()
	if s1.Version() != 1 {
		t.Fatalf("fresh version = %d", s1.Version())
	}
	if again := idx.Snapshot(); again != s1 {
		t.Error("no-delta Snapshot should return the same version object")
	}
	nh := s1.Table(0).NH()
	nb := s1.Table(0).NumBuckets()
	idx.Insert(data[0])
	idx.Insert(vecmath.FromDims([]uint32{9000, 9001}))
	if s1.N() != 200 || s1.Table(0).N() != 200 {
		t.Fatalf("old snapshot grew: N=%d", s1.N())
	}
	if s1.Table(0).NH() != nh || s1.Table(0).NumBuckets() != nb {
		t.Error("old snapshot's table changed under insert")
	}
	s2 := idx.Snapshot()
	if s2.Version() != 2 {
		t.Fatalf("published version = %d, want 2", s2.Version())
	}
	if s2.N() != 202 || s2.Table(0).N() != 202 {
		t.Fatalf("new snapshot N = %d, want 202", s2.N())
	}
	if !s2.Table(0).SameBucket(0, 200) {
		t.Error("duplicate insert not co-bucketed in new version")
	}
	// Old snapshot still samples and queries correctly.
	if nh > 0 {
		rng := xrand.New(303)
		for r := 0; r < 500; r++ {
			i, j, ok := s1.Table(0).SamplePair(rng)
			if !ok || i >= 200 || j >= 200 {
				t.Fatalf("old snapshot sampled out of its version: (%d,%d,%v)", i, j, ok)
			}
		}
	}
}

// TestMergeEquivalentToRebuild: any interleaving of Insert/InsertBatch and
// Snapshot must converge to exactly the tables a from-scratch build of the
// full data produces (narrow mode).
func TestMergeEquivalentToRebuild(t *testing.T) {
	data := randData(500, 80, 8, 311)
	full, err := BuildSnapshot(data, NewSimHash(312), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(data[:100], NewSimHash(312), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[100:150] {
		idx.Insert(v)
	}
	idx.Snapshot() // publish mid-way
	idx.InsertBatch(data[150:400])
	for _, v := range data[400:] {
		idx.Insert(v)
	}
	got := idx.Snapshot()
	for ti := 0; ti < 2; ti++ {
		tablesEqual(t, full.Table(ti), got.Table(ti))
	}
}

// TestMergeEquivalentToRebuildWide is the same contract for string keys
// (k·bits > 64) whose merges go through mergeStr.
func TestMergeEquivalentToRebuildWide(t *testing.T) {
	data := randData(300, 50, 6, 321)
	full, err := BuildSnapshot(data, NewSimHash(322), 70, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(data[:120], NewSimHash(322), 70, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx.InsertBatch(data[120:250])
	idx.Snapshot()
	for _, v := range data[250:] {
		idx.Insert(v)
	}
	tablesEqual(t, full.Table(0), idx.Snapshot().Table(0))
}

// TestOverlayCompaction drives enough new-bucket merges through a small base
// table to trip maybeCompact, then verifies lookups and a full rebuild
// comparison still hold.
func TestOverlayCompaction(t *testing.T) {
	base := randData(50, 40, 6, 331)
	idx, err := Build(base, NewSimHash(332), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mostly-distinct vectors in a fresh dimension range: nearly every
	// insert creates a new bucket, growing the overlay far beyond the base.
	extra := make([]vecmath.Vector, 0, 600)
	rng := xrand.New(333)
	for i := 0; i < 600; i++ {
		dims := []uint32{uint32(100000 + i), uint32(200000 + rng.Intn(1<<20)), uint32(400000 + rng.Intn(1<<20))}
		extra = append(extra, vecmath.FromDims(dims))
	}
	all := append(append([]vecmath.Vector(nil), base...), extra...)
	// One-by-one publishes exercise repeated small merges; the batch at the
	// end exercises one big merge.
	for _, v := range extra[:300] {
		idx.Insert(v)
		idx.Snapshot()
	}
	idx.InsertBatch(extra[300:])
	got := idx.Snapshot()
	tab := got.Table(0)
	if tab.ovl64 != nil && len(tab.ovl64)*4 > tab.nbase && len(tab.ovl64) > 256 {
		t.Errorf("overlay never compacted: %d overlay vs %d base buckets", len(tab.ovl64), tab.nbase)
	}
	full, err := BuildSnapshot(all, NewSimHash(332), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, full.Table(0), tab)
}

// TestInsertDoesNotClobberCallerSlice: building over a prefix of a larger
// caller slice must never let delta merges append into the caller's spare
// capacity and overwrite their live tail elements.
func TestInsertDoesNotClobberCallerSlice(t *testing.T) {
	backing := randData(60, 40, 6, 351)
	pristine := randData(60, 40, 6, 351) // same seed → identical values
	idx, err := Build(backing[:40], NewSimHash(352), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx.Insert(vecmath.FromDims([]uint32{77777}))
	idx.InsertBatch(randData(5, 40, 6, 353))
	idx.Snapshot()
	for i := 40; i < 60; i++ {
		if backing[i].NNZ() != pristine[i].NNZ() || vecmath.Cosine(backing[i], pristine[i]) != 1 {
			t.Fatalf("caller-owned element %d was overwritten by a merge", i)
		}
	}
}

// TestConcurrentInsertQuerySnapshot is the package-level race check: one
// writer streams inserts while readers query, sample, search and snapshot.
// Run with -race; correctness assertions are deliberately version-relative.
func TestConcurrentInsertQuerySnapshot(t *testing.T) {
	data := randData(800, 120, 8, 341)
	idx, err := Build(data[:400], NewSimHash(342), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for _, v := range data[400:] {
			idx.Insert(v)
		}
		idx.Snapshot()
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(343 + w))
			for {
				select {
				case <-done:
					return
				default:
				}
				s := idx.Snapshot()
				n := s.N()
				if n < 400 || n > 800 {
					t.Errorf("snapshot N = %d out of range", n)
					return
				}
				ids := s.Query(data[rng.Intn(400)])
				for _, id := range ids {
					if int(id) >= n {
						t.Errorf("query id %d exceeds snapshot size %d", id, n)
						return
					}
				}
				if tab := s.Table(0); tab.NH() > 0 {
					i, j, ok := tab.SamplePair(rng)
					if !ok || i >= n || j >= n {
						t.Errorf("sample (%d,%d,%v) out of version n=%d", i, j, ok, n)
						return
					}
				}
				_ = s.Search(data[rng.Intn(400)], 0.9)
			}
		}(w)
	}
	wg.Wait()
	final := idx.Snapshot()
	if final.N() != 800 {
		t.Fatalf("final N = %d", final.N())
	}
	want, err := BuildSnapshot(data, NewSimHash(342), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 2; ti++ {
		tablesEqual(t, want.Table(ti), final.Table(ti))
	}
}
