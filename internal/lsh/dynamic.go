package lsh

import "lshjoin/internal/vecmath"

// Dynamic maintenance: the paper pitches the estimator as "minimal addition
// to the existing LSH index", and existing LSH indexes grow as applications
// ingest vectors. Insert keeps the bucket counts and N_H that estimation
// depends on exact under appends; the weighted-sampling prefix sums are
// rebuilt lazily on the next SamplePair.
//
// Indexes are not safe for concurrent mutation; synchronize externally if
// estimating while inserting. Estimators constructed before an Insert hold a
// snapshot of the data slice and must be rebuilt to see new vectors.

// insert appends one pre-hashed vector to the table, maintaining N_H
// incrementally (adding to a bucket of size b creates b new co-located
// pairs) and deferring the cumulative-weight rebuild.
func (t *Table) insert(key string) {
	t.keys = append(t.keys, key)
	b, ok := t.buckets[key]
	if !ok {
		b = &bucket{key: key}
		t.buckets[key] = b
		t.order = append(t.order, b)
	}
	t.nh += int64(len(b.ids))
	b.ids = append(b.ids, int32(t.n))
	t.n++
	t.dirty = true
}

// ensureFrozen rebuilds the sampling prefix sums if inserts invalidated them.
func (t *Table) ensureFrozen() {
	if t.dirty {
		t.freeze()
		t.dirty = false
	}
}

// Insert hashes v into every table and appends it to the indexed collection,
// returning its id. Cost: ℓ·k hash evaluations plus O(1) bucket updates; the
// next SamplePair on each table pays one O(#buckets) prefix-sum rebuild.
func (x *Index) Insert(v vecmath.Vector) int {
	id := len(x.data)
	x.data = append(x.data, v)
	vals := make([]uint64, x.k)
	for t := 0; t < x.ell; t++ {
		base := t * x.k
		for j := 0; j < x.k; j++ {
			vals[j] = x.family.Hash(base+j, v)
		}
		x.tables[t].insert(packKey(vals, x.family.Bits()))
	}
	return id
}

// InsertBatch inserts vectors in order and returns the id of the first.
func (x *Index) InsertBatch(vs []vecmath.Vector) int {
	first := len(x.data)
	for _, v := range vs {
		x.Insert(v)
	}
	return first
}
