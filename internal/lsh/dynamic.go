package lsh

import "lshjoin/internal/vecmath"

// Dynamic maintenance: the paper pitches the estimator as "minimal addition
// to the existing LSH index", and existing LSH indexes grow while they serve
// reads. Insert and InsertBatch append hashed vectors to a pending delta;
// Snapshot merges the delta into a fresh immutable version — keeping bucket
// counts and N_H exact — and publishes it atomically. Readers (queries,
// samplers, estimators) are never invalidated: whatever Snapshot they hold
// keeps answering over its own version, and new readers pick up the merged
// version lock-free.
//
// A merge is copy-on-write and costs O(d · log #buckets) for a d-key delta:
// the new version shares the base lookup maps, the key-array backing and —
// through the persistent Fenwick weight index (fenwick.go) — every untouched
// bucket and weight subtree with its predecessor. Only the buckets the delta
// touches get fresh headers, and each lands in the weight tree with one
// O(log #buckets) path copy; there is no bucket-order copy and no prefix-sum
// rebuild, which is what makes per-insert publication affordable on large
// tables. Appends to shared backing arrays are safe because exactly one
// writer extends them (serialized by Index.mu) and readers of older versions
// never index past their own length.

// merge64 returns a new narrow-mode table extending t with the pending
// bucket keys, leaving t untouched for its readers.
func (t *Table) merge64(keys []uint64) *Table {
	nt := &Table{
		k: t.k, fnBase: t.fnBase, n: t.n + len(keys), bits: t.bits, narrow: true,
		keys64: append(t.keys64, keys...),
		base64: t.base64,
		nbase:  t.nbase,
		ovl64:  t.ovl64,
		w:      t.w, // O(1) copy; set/push below path-copy away from t's root
	}
	// touched maps bucket index → this merge's private header, so a bucket
	// hit several times in one delta is copied (and re-published) once;
	// appended collects brand-new buckets at indices size0, size0+1, ...
	size0 := t.w.size
	touched := make(map[int32]*bucket, len(keys))
	var appended []*bucket
	ovlCopied := false
	for i, key := range keys {
		id := int32(t.n + i)
		bi, ok := nt.bucketIndex64(key)
		if !ok {
			if !ovlCopied {
				m := make(map[uint64]int32, len(t.ovl64)+len(keys)-i)
				for k2, v2 := range t.ovl64 {
					m[k2] = v2
				}
				nt.ovl64 = m
				ovlCopied = true
			}
			bi = int32(size0 + len(appended))
			nt.ovl64[key] = bi
			appended = append(appended, &bucket{key64: key, ids: []int32{id}})
			continue
		}
		var b *bucket
		if int(bi) >= size0 {
			b = appended[int(bi)-size0]
		} else if b = touched[bi]; b == nil {
			// First touch of a shared bucket: copy-on-write its header so
			// readers of t keep their length.
			shared := t.w.at(int(bi))
			b = &bucket{key64: shared.key64, ids: shared.ids}
			touched[bi] = b
		}
		b.ids = append(b.ids, id)
	}
	nt.applyDelta(touched, appended)
	nt.maybeCompact()
	return nt
}

// applyDelta publishes a merge's touched and appended buckets into the new
// table's weight tree. Small deltas take the incremental path: one O(log
// #buckets) path copy per bucket, sharing everything else with the
// predecessor. A delta touching a large fraction of the buckets flips to a
// bulk freeze — one O(#buckets) rebuild is cheaper than per-bucket path
// copies once d · log #buckets exceeds #buckets — so bulk loads never pay
// more than the old eager publication did.
func (t *Table) applyDelta(touched map[int32]*bucket, appended []*bucket) {
	size0 := t.w.size
	if d := len(touched) + len(appended); d*8 >= size0 {
		order := make([]*bucket, 0, size0+len(appended))
		t.w.walk(func(i int, b *bucket) bool {
			if tb := touched[int32(i)]; tb != nil {
				b = tb
			}
			order = append(order, b)
			return true
		})
		order = append(order, appended...)
		t.w = newFenwick(order)
		return
	}
	for bi, b := range touched {
		t.w.set(int(bi), b)
	}
	for _, b := range appended {
		t.w.push(b)
	}
}

// mergeStr is merge64 for wide-mode tables.
func (t *Table) mergeStr(keys []string) *Table {
	nt := &Table{
		k: t.k, fnBase: t.fnBase, n: t.n + len(keys), bits: t.bits, narrow: false,
		keysStr: append(t.keysStr, keys...),
		baseStr: t.baseStr,
		nbase:   t.nbase,
		ovlStr:  t.ovlStr,
		w:       t.w,
	}
	size0 := t.w.size
	touched := make(map[int32]*bucket, len(keys))
	var appended []*bucket
	ovlCopied := false
	for i, key := range keys {
		id := int32(t.n + i)
		bi, ok := nt.bucketIndexStr(key)
		if !ok {
			if !ovlCopied {
				m := make(map[string]int32, len(t.ovlStr)+len(keys)-i)
				for k2, v2 := range t.ovlStr {
					m[k2] = v2
				}
				nt.ovlStr = m
				ovlCopied = true
			}
			bi = int32(size0 + len(appended))
			nt.ovlStr[key] = bi
			appended = append(appended, &bucket{keyStr: key, ids: []int32{id}})
			continue
		}
		var b *bucket
		if int(bi) >= size0 {
			b = appended[int(bi)-size0]
		} else if b = touched[bi]; b == nil {
			shared := t.w.at(int(bi))
			b = &bucket{keyStr: shared.keyStr, ids: shared.ids}
			touched[bi] = b
		}
		b.ids = append(b.ids, id)
	}
	nt.applyDelta(touched, appended)
	nt.maybeCompact()
	return nt
}

// maybeCompact folds the overlay into fresh sharded base maps once it has
// outgrown its role as a small delta, keeping lookups near one map probe.
// This is the one publication path that walks every bucket (via the weight
// tree's in-order traversal); it runs only when the overlay exceeds a
// quarter of the base, so its O(#buckets) cost amortizes over the merges
// that grew the overlay.
func (t *Table) maybeCompact() {
	ovl := len(t.ovl64) + len(t.ovlStr)
	if ovl <= 256 || ovl*4 <= t.nbase {
		return
	}
	if t.narrow {
		base := make([]map[uint64]int32, tableShards)
		t.w.walk(func(gi int, b *bucket) bool {
			s := shard64(b.key64)
			if base[s] == nil {
				base[s] = make(map[uint64]int32)
			}
			base[s][b.key64] = int32(gi)
			return true
		})
		t.base64, t.ovl64 = base, nil
	} else {
		base := make([]map[string]int32, tableShards)
		t.w.walk(func(gi int, b *bucket) bool {
			s := shardStr(b.keyStr)
			if base[s] == nil {
				base[s] = make(map[string]int32)
			}
			base[s][b.keyStr] = int32(gi)
			return true
		})
		t.baseStr, t.ovlStr = base, nil
	}
	t.nbase = t.w.size
}

// Insert hashes v into every table's pending delta and logically appends it
// to the collection, returning its id. Cost: ℓ·k hash evaluations plus O(1)
// appends; the mutation becomes visible to new readers at the next Snapshot
// (which the Index read methods take automatically). In narrow-key mode no
// strings are allocated. Safe for concurrent use with readers and other
// writers.
func (x *Index) Insert(v vecmath.Vector) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	cur := x.cur.Load()
	if len(x.scratch) < cur.k {
		x.scratch = make([]uint64, cur.k)
	}
	vals := x.scratch[:cur.k]
	id := cur.N() + len(x.pendData)
	x.pendData = append(x.pendData, v)
	bits := cur.family.Bits()
	for t := 0; t < cur.ell; t++ {
		cur.hashInto(t, v, vals)
		if cur.narrow {
			x.pend64[t] = append(x.pend64[t], packWord(vals, bits))
		} else {
			x.pendStr[t] = append(x.pendStr[t], packKey(vals, bits))
		}
	}
	x.npend.Add(1)
	if x.hook != nil {
		x.hook.OnInsert(id, v)
	}
	return id
}

// InsertBatch inserts vectors in order and returns the id of the first. The
// batch is signed by the signature engine — keyed-stream rows shared by the
// batch are computed once, and signing runs in parallel — so bulk loading
// costs far less than len(vs) repeated Inserts. Like Insert, the batch lands
// in the pending delta and is published by the next Snapshot.
func (x *Index) InsertBatch(vs []vecmath.Vector) int {
	// Sign outside the writer lock: the signatures are a pure function of
	// (family, k, ℓ, vs) — all version-invariant — so a long batch never
	// stalls readers that publish, only the final appends serialize.
	cur := x.cur.Load()
	var sigs *signatures
	if len(vs) > 0 {
		sigs = newEngine(cur.family, cur.k, cur.ell, cur.sign).sign(vs)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	first := x.cur.Load().N() + len(x.pendData)
	if len(vs) == 0 {
		return first
	}
	x.pendData = append(x.pendData, vs...)
	for t := 0; t < cur.ell; t++ {
		if sigs.narrow {
			x.pend64[t] = append(x.pend64[t], sigs.u64[t]...)
		} else {
			x.pendStr[t] = append(x.pendStr[t], sigs.str[t]...)
		}
	}
	x.npend.Add(int64(len(vs)))
	if x.hook != nil {
		x.hook.OnInsertBatch(first, vs)
	}
	return first
}
