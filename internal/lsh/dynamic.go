package lsh

import "lshjoin/internal/vecmath"

// Dynamic maintenance: the paper pitches the estimator as "minimal addition
// to the existing LSH index", and existing LSH indexes grow as applications
// ingest vectors. Insert keeps the bucket counts and N_H that estimation
// depends on exact under appends; the weighted-sampling prefix sums are
// rebuilt lazily on the next SamplePair.
//
// Indexes are not safe for concurrent mutation; synchronize externally if
// estimating while inserting. Estimators constructed before an Insert hold a
// snapshot of the data slice and must be rebuilt to see new vectors.

// insert64 appends one pre-hashed vector to a narrow-mode table, maintaining
// N_H incrementally (adding to a bucket of size b creates b new co-located
// pairs) and deferring the cumulative-weight rebuild.
func (t *Table) insert64(key uint64) {
	t.keys64 = append(t.keys64, key)
	bi, ok := t.idx64[key]
	if !ok {
		bi = int32(len(t.order))
		t.idx64[key] = bi
		t.order = append(t.order, &bucket{key64: key})
	}
	b := t.order[bi]
	t.nh += int64(len(b.ids))
	b.ids = append(b.ids, int32(t.n))
	t.n++
	t.dirty = true
}

// insertStr is insert64 for wide-mode tables.
func (t *Table) insertStr(key string) {
	t.keysStr = append(t.keysStr, key)
	bi, ok := t.idxStr[key]
	if !ok {
		bi = int32(len(t.order))
		t.idxStr[key] = bi
		t.order = append(t.order, &bucket{keyStr: key})
	}
	b := t.order[bi]
	t.nh += int64(len(b.ids))
	b.ids = append(b.ids, int32(t.n))
	t.n++
	t.dirty = true
}

// ensureFrozen rebuilds the sampling prefix sums if inserts invalidated them.
func (t *Table) ensureFrozen() {
	if t.dirty {
		t.freeze()
		t.dirty = false
	}
}

// Insert hashes v into every table and appends it to the indexed collection,
// returning its id. Cost: ℓ·k hash evaluations plus O(1) bucket updates; the
// next SamplePair on each table pays one O(#buckets) prefix-sum rebuild. In
// narrow-key mode no strings are allocated.
func (x *Index) Insert(v vecmath.Vector) int {
	id := len(x.data)
	x.data = append(x.data, v)
	vals := make([]uint64, x.k)
	narrow := x.narrow()
	for t := 0; t < x.ell; t++ {
		x.hashInto(t, v, vals)
		if narrow {
			x.tables[t].insert64(packWord(vals, x.family.Bits()))
		} else {
			x.tables[t].insertStr(packKey(vals, x.family.Bits()))
		}
	}
	return id
}

// InsertBatch inserts vectors in order and returns the id of the first. The
// batch is signed by the signature engine — keyed-stream rows shared by the
// batch are computed once, and signing runs in parallel — so bulk loading
// costs far less than len(vs) repeated Inserts.
func (x *Index) InsertBatch(vs []vecmath.Vector) int {
	first := len(x.data)
	if len(vs) == 0 {
		return first
	}
	x.data = append(x.data, vs...)
	sigs := newEngine(x.family, x.k, x.ell).sign(vs)
	for t := 0; t < x.ell; t++ {
		tab := x.tables[t]
		if sigs.narrow {
			for _, key := range sigs.u64[t] {
				tab.insert64(key)
			}
		} else {
			for _, key := range sigs.str[t] {
				tab.insertStr(key)
			}
		}
	}
	return first
}
