package lsh

import (
	"testing"

	"lshjoin/internal/xrand"
)

// mkBucket returns a bucket with the given member count (ids content is
// irrelevant to the weight tree, which only reads len(ids)).
func mkBucket(size int) *bucket {
	return &bucket{ids: make([]int32, size)}
}

// fenwickOracle is the naive flat-array model the tree must agree with.
type fenwickOracle struct {
	sizes []int
}

func (o *fenwickOracle) total() int64 {
	var s int64
	for _, sz := range o.sizes {
		s += pairs2(int64(sz))
	}
	return s
}

func (o *fenwickOracle) prefix(i int) int64 {
	var s int64
	if i >= len(o.sizes) {
		i = len(o.sizes) - 1
	}
	for j := 0; j <= i; j++ {
		s += pairs2(int64(o.sizes[j]))
	}
	return s
}

func (o *fenwickOracle) find(x int64) int {
	var s int64
	for j, sz := range o.sizes {
		s += pairs2(int64(sz))
		if s > x {
			return j
		}
	}
	return -1
}

// checkAgainstOracle compares every observable of the tree with the flat
// model: total, per-index bucket identity and prefix sums, in-order walk,
// and the weighted-search descent for a spread of x values.
func checkAgainstOracle(t *testing.T, f *fenwick, o *fenwickOracle) {
	t.Helper()
	if f.size != len(o.sizes) {
		t.Fatalf("size %d, oracle %d", f.size, len(o.sizes))
	}
	if f.total() != o.total() {
		t.Fatalf("total %d, oracle %d", f.total(), o.total())
	}
	for i := range o.sizes {
		b := f.at(i)
		if b == nil || len(b.ids) != o.sizes[i] {
			t.Fatalf("at(%d): got %v, want size %d", i, b, o.sizes[i])
		}
		if got, want := f.prefix(i), o.prefix(i); got != want {
			t.Fatalf("prefix(%d) = %d, want %d", i, got, want)
		}
	}
	visited := 0
	f.walk(func(i int, b *bucket) bool {
		if i != visited {
			t.Fatalf("walk visited index %d, want %d", i, visited)
		}
		if len(b.ids) != o.sizes[i] {
			t.Fatalf("walk index %d: size %d, want %d", i, len(b.ids), o.sizes[i])
		}
		visited++
		return true
	})
	if visited != len(o.sizes) {
		t.Fatalf("walk visited %d buckets, want %d", visited, len(o.sizes))
	}
	if tot := f.total(); tot > 0 {
		// Probe the descent at stratum boundaries and interior points.
		xs := []int64{0, tot - 1, tot / 2, tot / 3, 2 * tot / 3}
		for _, x := range xs {
			gi, gb := f.find(x)
			wi := o.find(x)
			if gi != wi {
				t.Fatalf("find(%d) = %d, oracle %d", x, gi, wi)
			}
			if gb == nil || len(gb.ids) != o.sizes[wi] {
				t.Fatalf("find(%d) bucket size mismatch at %d", x, wi)
			}
		}
	}
}

// TestFenwickBuildMatchesOracle: bottom-up construction over assorted sizes,
// including non-power-of-two bucket counts and zero-weight (singleton)
// buckets.
func TestFenwickBuildMatchesOracle(t *testing.T) {
	rng := xrand.New(501)
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 64, 100, 1023} {
		order := make([]*bucket, n)
		o := &fenwickOracle{sizes: make([]int, n)}
		for i := range order {
			sz := rng.Intn(6) // frequent 0/1-weight buckets
			order[i] = mkBucket(sz)
			o.sizes[i] = sz
		}
		f := newFenwick(order)
		checkAgainstOracle(t, &f, o)
	}
}

// TestFenwickPersistence: a copied fenwick value must keep answering over
// its own version while the successor pushes and re-sets buckets.
func TestFenwickPersistence(t *testing.T) {
	order := []*bucket{mkBucket(3), mkBucket(1), mkBucket(5)}
	v1 := newFenwick(order)
	o1 := &fenwickOracle{sizes: []int{3, 1, 5}}

	v2 := v1 // O(1) copy-on-write publication
	v2.set(1, mkBucket(4))
	for i := 0; i < 10; i++ {
		v2.push(mkBucket(i % 3))
	}
	o2 := &fenwickOracle{sizes: []int{3, 4, 5, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0}}

	checkAgainstOracle(t, &v1, o1) // untouched by v2's mutations
	checkAgainstOracle(t, &v2, o2)
}

// TestFenwickGrowFromEmpty: pushing through capacity doublings starting from
// the zero value (the empty-base merge path the fuzzers hit).
func TestFenwickGrowFromEmpty(t *testing.T) {
	var f fenwick
	o := &fenwickOracle{}
	for i := 0; i < 300; i++ {
		sz := (i * 7) % 9
		f.push(mkBucket(sz))
		o.sizes = append(o.sizes, sz)
	}
	checkAgainstOracle(t, &f, o)
}

// TestFenwickFindSkipsZeroWeights: the descent must never land on a bucket
// with fewer than two members, mirroring sort.Search over strict prefix
// sums.
func TestFenwickFindSkipsZeroWeights(t *testing.T) {
	sizes := []int{0, 1, 4, 0, 1, 2, 1, 0, 3}
	order := make([]*bucket, len(sizes))
	for i, sz := range sizes {
		order[i] = mkBucket(sz)
	}
	f := newFenwick(order)
	for x := int64(0); x < f.total(); x++ {
		i, b := f.find(x)
		if len(b.ids) < 2 {
			t.Fatalf("find(%d) landed on zero-weight bucket %d", x, i)
		}
		want := (&fenwickOracle{sizes: sizes}).find(x)
		if i != want {
			t.Fatalf("find(%d) = %d, oracle %d", x, i, want)
		}
	}
}

// FuzzFenwickWeights drives arbitrary push / re-set / query interleavings
// against the naive flat-array oracle. Each input byte pair is one op:
// push a bucket, grow an existing bucket, or shrink-replace one.
func FuzzFenwickWeights(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 1, 1, 2, 4})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 0, 1, 0, 2, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fw fenwick
		o := &fenwickOracle{}
		for p := 0; p+1 < len(data); p += 2 {
			op, arg := data[p]%3, int(data[p+1])
			switch {
			case op == 0 || len(o.sizes) == 0:
				sz := arg % 17
				fw.push(mkBucket(sz))
				o.sizes = append(o.sizes, sz)
			case op == 1: // grow bucket arg by one member
				i := arg % len(o.sizes)
				o.sizes[i]++
				fw.set(i, mkBucket(o.sizes[i]))
			default: // replace bucket arg with a fresh size
				i := arg % len(o.sizes)
				o.sizes[i] = (arg / 3) % 11
				fw.set(i, mkBucket(o.sizes[i]))
			}
		}
		checkAgainstOracle(t, &fw, o)
	})
}
