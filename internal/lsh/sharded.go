package lsh

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Horizontal sharding over the snapshot layer (the ROADMAP item). A
// ShardGroup partitions the key space across S independent Indexes that all
// hash with the same family, k and ℓ, so a vector's bucket keys are
// shard-invariant: the same vector lands in the same buckets whichever shard
// stores it. Routing is consistent key-hashing — jump consistent hash over a
// content key of the vector — so a vector's home shard is a pure function of
// its value and S, independent of insert interleaving, and growing S from n
// to n+1 remaps only ~1/(n+1) of the keys.
//
// Each shard is a full writer/reader Index: inserts on different shards
// serialize only on their own shard's writer lock and never contend with one
// another, and each shard publishes its own snapshot versions (per-write
// publication stays O(delta · log #buckets) through the per-shard Fenwick
// weight index). Readers capture a shard-snapshot vector — one atomic
// pointer load per shard — and serve estimates and searches over that
// immutable GroupSnapshot.
//
// Because bucket keys are shard-invariant, the estimators' stratum-H
// statistics are additive across the partition: a union bucket with m_s
// members on shard s contributes C(Σm_s, 2) = Σ_s C(m_s, 2) + Σ_{a<b}
// m_a·m_b pairs, i.e. the per-shard intra counts plus the cross-shard
// bipartite counts. internal/core's merged estimators exploit exactly this
// identity (see core/sharded.go).

// MaxShards bounds the shard count so (shard, local) ids pack into an int64.
const MaxShards = 1 << 20

// shardIDShift positions the shard number above the per-shard local id in a
// packed GroupID: locals up to 2^40 vectors per shard, shards up to 2^20.
const shardIDShift = 40

// GroupID packs a (shard, local) pair into the group-wide vector id returned
// by ShardGroup.Insert. With one shard the id equals the local id, which is
// what keeps an S=1 group bit-compatible with a plain Index.
func GroupID(shard, local int) int64 {
	return int64(shard)<<shardIDShift | int64(local)
}

// SplitGroupID inverts GroupID.
func SplitGroupID(id int64) (shard, local int) {
	return int(id >> shardIDShift), int(id & (1<<shardIDShift - 1))
}

// contentKey hashes a vector's entries into the 64-bit routing key. Equal
// vectors always share a key, so duplicates co-locate and re-inserting a
// vector routes to the same shard.
func contentKey(v vecmath.Vector) uint64 {
	h := uint64(0x5EED0FCA11ED1234)
	for _, e := range v.Entries() {
		h = xrand.Mix2(h, uint64(e.Dim)<<32|uint64(math.Float32bits(e.Weight)))
	}
	return h
}

// jumpHash is Lamping & Veach's jump consistent hash: a uniform bucket in
// [0, n) such that growing n moves only the minimal fraction of keys.
func jumpHash(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardGroup is a horizontally sharded LSH index: S independent Indexes over
// one logical collection, with consistent key-hash routing. All methods are
// safe for concurrent use; writers contend only within a shard.
type ShardGroup struct {
	family Family
	k, ell int
	shards []*Index
}

// NewShardGroup routes every vector of data to its home shard and builds the
// S per-shard indexes (each through the shard-parallel batched build). With
// s == 1 the single shard indexes data in place, producing an Index
// bit-identical to Build(data, family, k, ell).
func NewShardGroup(data []vecmath.Vector, family Family, k, ell, s int) (*ShardGroup, error) {
	return NewShardGroupSigned(data, family, k, ell, s, SignConfig{})
}

// NewShardGroupSigned is NewShardGroup with an explicit signing
// configuration applied to every shard (see SignConfig and BuildSigned).
func NewShardGroupSigned(data []vecmath.Vector, family Family, k, ell, s int, cfg SignConfig) (*ShardGroup, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if s < 1 || s > MaxShards {
		return nil, fmt.Errorf("lsh: shard count must be in [1, %d], got %d", MaxShards, s)
	}
	g := &ShardGroup{family: family, k: k, ell: ell, shards: make([]*Index, s)}
	parts := make([][]vecmath.Vector, s)
	if s == 1 {
		parts[0] = data
	} else {
		for _, v := range data {
			sh := g.Route(v)
			parts[sh] = append(parts[sh], v)
		}
	}
	var err error
	for sh := range g.shards {
		if len(parts[sh]) == 0 {
			g.shards[sh] = emptyIndexSigned(family, k, ell, cfg)
			continue
		}
		if g.shards[sh], err = BuildSigned(parts[sh], family, k, ell, cfg); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// NewShardGroupFromIndexes assembles a group over already-constructed
// per-shard indexes — the reopen path of the durability layer, which
// restores each shard from its own store and needs them under one router.
// Every index must hash with the given family, k and ℓ; the shard order
// must match the routing that populated the stores.
func NewShardGroupFromIndexes(family Family, k, ell int, shards []*Index) (*ShardGroup, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if len(shards) < 1 || len(shards) > MaxShards {
		return nil, fmt.Errorf("lsh: shard count must be in [1, %d], got %d", MaxShards, len(shards))
	}
	for s, x := range shards {
		if x == nil {
			return nil, fmt.Errorf("lsh: shard %d is nil", s)
		}
		if x.Family() != family || x.K() != k || x.L() != ell {
			return nil, fmt.Errorf("lsh: shard %d was hashed with different parameters", s)
		}
	}
	return &ShardGroup{family: family, k: k, ell: ell, shards: shards}, nil
}

// emptyIndex constructs a zero-vector Index (version 1, empty tables) for
// shards the initial routing left unpopulated.
func emptyIndex(family Family, k, ell int) *Index {
	return emptyIndexSigned(family, k, ell, SignConfig{})
}

func emptyIndexSigned(family Family, k, ell int, cfg SignConfig) *Index {
	narrow := isNarrow(k, family.Bits())
	snap := &Snapshot{
		version: 1,
		family:  family,
		k:       k,
		ell:     ell,
		narrow:  narrow,
		sign:    cfg,
		tables:  make([]*Table, ell),
		pool:    &sync.Pool{},
	}
	for t := 0; t < ell; t++ {
		if narrow {
			snap.tables[t] = newTable64(nil, k, t*k, family.Bits())
		} else {
			snap.tables[t] = newTableStr(nil, k, t*k, family.Bits())
		}
	}
	x := &Index{}
	if narrow {
		x.pend64 = make([][]uint64, ell)
	} else {
		x.pendStr = make([][]string, ell)
	}
	x.cur.Store(snap)
	return x
}

// S returns the shard count.
func (g *ShardGroup) S() int { return len(g.shards) }

// K returns the per-table hash function count.
func (g *ShardGroup) K() int { return g.k }

// L returns the number of tables ℓ.
func (g *ShardGroup) L() int { return g.ell }

// Family returns the shared hash family.
func (g *ShardGroup) Family() Family { return g.family }

// Shard returns shard s's Index, for per-shard inspection.
func (g *ShardGroup) Shard(s int) *Index { return g.shards[s] }

// Route returns the home shard of v under consistent key-hash routing.
func (g *ShardGroup) Route(v vecmath.Vector) int {
	return RouteVector(v, len(g.shards))
}

// Insert routes v to its home shard and appends it there, returning the
// packed group-wide id (see GroupID). Only the home shard's writer lock is
// taken, so inserts on different shards proceed fully in parallel.
func (g *ShardGroup) Insert(v vecmath.Vector) int64 {
	s := g.Route(v)
	return GroupID(s, g.shards[s].Insert(v))
}

// InsertBatch routes each vector to its home shard, batch-inserts the
// per-shard runs (each through the batched signature engine), and returns the
// per-vector group ids aligned with vs.
func (g *ShardGroup) InsertBatch(vs []vecmath.Vector) []int64 {
	ids := make([]int64, len(vs))
	if len(g.shards) == 1 {
		first := g.shards[0].InsertBatch(vs)
		for i := range ids {
			ids[i] = int64(first + i)
		}
		return ids
	}
	parts := make([][]vecmath.Vector, len(g.shards))
	home := make([]int, len(vs))
	for i, v := range vs {
		s := g.Route(v)
		home[i] = s
		parts[s] = append(parts[s], v)
	}
	first := make([]int, len(g.shards))
	for s, part := range parts {
		if len(part) > 0 {
			first[s] = g.shards[s].InsertBatch(part)
		}
	}
	next := first
	for i := range vs {
		s := home[i]
		ids[i] = GroupID(s, next[s])
		next[s]++
	}
	return ids
}

// Pending returns the total number of inserted vectors not yet published by
// any shard.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, x := range g.shards {
		n += x.Pending()
	}
	return n
}

// Capture publishes any pending inserts shard by shard and returns the
// resulting shard-snapshot vector. Each element is that shard's latest
// immutable version; shards that raced concurrent writers may differ by a
// version, but every element is internally consistent and the vector as a
// whole is stable once returned.
func (g *ShardGroup) Capture() *GroupSnapshot {
	snaps := make([]*Snapshot, len(g.shards))
	for s, x := range g.shards {
		snaps[s] = x.Snapshot()
	}
	return newGroupSnapshot(snaps)
}

// Current returns the shard-snapshot vector of the latest published versions
// without publishing pending inserts. One atomic load per shard; never
// blocks.
func (g *ShardGroup) Current() *GroupSnapshot {
	snaps := make([]*Snapshot, len(g.shards))
	for s, x := range g.shards {
		snaps[s] = x.Current()
	}
	return newGroupSnapshot(snaps)
}

// GroupSnapshot is an atomically captured shard-snapshot vector: one
// immutable Snapshot per shard, plus the dense-id view estimators sample
// over. Dense ids enumerate the union corpus shard by shard — vector i lives
// at Locate(i) — and every method is safe for unsynchronized concurrent use.
type GroupSnapshot struct {
	snaps   []*Snapshot
	offsets []int // offsets[s] = dense id of shard s's first vector; len S+1

	dataOnce sync.Once
	data     []vecmath.Vector
}

// SingleSnapshot wraps one snapshot as a single-shard GroupSnapshot, so
// code written against the shard-vector view (the merged estimator
// constructors, which all delegate to their single-snapshot counterparts at
// S = 1) can serve an unsharded index without a separate code path.
func SingleSnapshot(s *Snapshot) *GroupSnapshot {
	return newGroupSnapshot([]*Snapshot{s})
}

func newGroupSnapshot(snaps []*Snapshot) *GroupSnapshot {
	g := &GroupSnapshot{snaps: snaps, offsets: make([]int, len(snaps)+1)}
	for s, sn := range snaps {
		g.offsets[s+1] = g.offsets[s] + sn.N()
	}
	return g
}

// S returns the shard count.
func (g *GroupSnapshot) S() int { return len(g.snaps) }

// Snap returns shard s's snapshot.
func (g *GroupSnapshot) Snap(s int) *Snapshot { return g.snaps[s] }

// N returns the total vector count across shards.
func (g *GroupSnapshot) N() int { return g.offsets[len(g.snaps)] }

// K returns the per-table hash function count.
func (g *GroupSnapshot) K() int { return g.snaps[0].K() }

// L returns the number of tables ℓ.
func (g *GroupSnapshot) L() int { return g.snaps[0].L() }

// Family returns the shared hash family.
func (g *GroupSnapshot) Family() Family { return g.snaps[0].Family() }

// Versions returns the per-shard publish versions of the captured vector.
func (g *GroupSnapshot) Versions() []uint64 {
	out := make([]uint64, len(g.snaps))
	for s, sn := range g.snaps {
		out[s] = sn.Version()
	}
	return out
}

// Offset returns the dense id of shard s's first vector.
func (g *GroupSnapshot) Offset(s int) int { return g.offsets[s] }

// Locate maps a dense id to its (shard, local) coordinates.
func (g *GroupSnapshot) Locate(i int) (shard, local int) {
	// offsets is short (S+1) and ascending; binary search keeps Locate
	// O(log S) even for wide groups.
	s := sort.Search(len(g.snaps), func(s int) bool { return g.offsets[s+1] > i })
	return s, i - g.offsets[s]
}

// Dense maps (shard, local) coordinates to the dense id.
func (g *GroupSnapshot) Dense(shard, local int) int { return g.offsets[shard] + local }

// At returns the vector at dense id i.
func (g *GroupSnapshot) At(i int) vecmath.Vector {
	s, l := g.Locate(i)
	return g.snaps[s].Data()[l]
}

// Data returns the union corpus in dense-id order. The concatenation is
// materialized once per GroupSnapshot (single-shard groups return the
// underlying snapshot's slice directly); callers must not modify it.
func (g *GroupSnapshot) Data() []vecmath.Vector {
	g.dataOnce.Do(func() {
		if len(g.snaps) == 1 {
			g.data = g.snaps[0].Data()
			return
		}
		out := make([]vecmath.Vector, 0, g.N())
		for _, sn := range g.snaps {
			out = append(out, sn.Data()...)
		}
		g.data = out
	})
	return g.data
}

// SameBucketInTable reports whether dense vectors i and j share table t's
// bucket in the logical union index. Same-shard pairs compare their stored
// keys directly; cross-shard pairs compare keys across tables — both
// allocation-free in narrow mode.
func (g *GroupSnapshot) SameBucketInTable(t, i, j int) bool {
	sa, la := g.Locate(i)
	sb, lb := g.Locate(j)
	if sa == sb {
		return g.snaps[sa].Table(t).SameBucket(la, lb)
	}
	return g.snaps[sa].Table(t).SameBucketAcross(la, g.snaps[sb].Table(t), lb)
}

// SameAnyBucket reports whether dense vectors i and j share a bucket in at
// least one of the ℓ tables of the logical union index.
func (g *GroupSnapshot) SameAnyBucket(i, j int) bool {
	sa, la := g.Locate(i)
	sb, lb := g.Locate(j)
	if sa == sb {
		return g.snaps[sa].SameAnyBucket(la, lb)
	}
	for t := 0; t < g.L(); t++ {
		if g.snaps[sa].Table(t).SameBucketAcross(la, g.snaps[sb].Table(t), lb) {
			return true
		}
	}
	return false
}

// BucketMultiplicity returns the number of tables in which dense vectors i
// and j share a bucket (0..ℓ) in the logical union index.
func (g *GroupSnapshot) BucketMultiplicity(i, j int) int {
	sa, la := g.Locate(i)
	sb, lb := g.Locate(j)
	if sa == sb {
		return g.snaps[sa].BucketMultiplicity(la, lb)
	}
	m := 0
	for t := 0; t < g.L(); t++ {
		if g.snaps[sa].Table(t).SameBucketAcross(la, g.snaps[sb].Table(t), lb) {
			m++
		}
	}
	return m
}

// CompatibleCross validates that two captured groups were hashed with
// identical LSH functions, so bucket keys are comparable across them — the
// precondition for the bipartite bucket-match stratum of App. B.2.2. It is
// the group-level analogue of NewBipartite's per-snapshot checks: one error
// up front instead of S_left·S_right identical ones per shard pair.
func CompatibleCross(left, right *GroupSnapshot) error {
	if left == nil || right == nil {
		return fmt.Errorf("lsh: cross-group matching needs two group snapshots")
	}
	if left.Family() != right.Family() {
		return fmt.Errorf("lsh: cross-group matching requires identical families on both sides")
	}
	if left.K() != right.K() {
		return fmt.Errorf("lsh: cross-group k mismatch: %d vs %d", left.K(), right.K())
	}
	return nil
}

// SameBucketAcrossGroups reports whether dense vector i of this group and
// dense vector j of group h hash to the same bucket key in table t — the
// cross-group membership test of the bipartite stratum H. Both groups must
// be hashed with the same family and k (see CompatibleCross); narrow mode
// compares machine words without allocating.
func (g *GroupSnapshot) SameBucketAcrossGroups(t, i int, h *GroupSnapshot, j int) bool {
	sa, la := g.Locate(i)
	sb, lb := h.Locate(j)
	return g.snaps[sa].Table(t).SameBucketAcross(la, h.snaps[sb].Table(t), lb)
}

// SizeBytes sums the index size estimate across shards.
func (g *GroupSnapshot) SizeBytes() int64 {
	var sz int64
	for _, sn := range g.snaps {
		sz += sn.SizeBytes()
	}
	return sz
}
