// Package lsh implements Locality Sensitive Hashing for cosine and Jaccard
// similarity, and the LSH index (hash tables keyed by concatenated hash
// values) that the size estimators of the paper piggyback on.
//
// The central extension over a vanilla LSH index — §4.1.1 of the paper — is
// that every bucket carries its member count b_j, and each table maintains
// N_H = Σ_j C(b_j, 2), the number of vector pairs co-located in a bucket.
// Tables also support sampling a uniform random pair from stratum H (pairs
// sharing a bucket) in O(log #buckets) time.
//
// # The signature engine
//
// Hash families are stateless: Hash(fn, v) materializes hyperplane
// components (SimHash) or element ranks (MinHash) on demand from keyed
// streams, so no O(d) state is ever stored per function. Naively, building
// an index evaluates those streams once per (vector, function, entry) —
// O(n·ℓ·k·nnz) keyed-stream calls. Build, InsertBatch and the benchmarks
// instead go through the batched signature engine (engine.go), which hashes
// in dimension-major order: each distinct dimension's ℓ·k stream values are
// computed exactly once and vectors are signed by streaming their entries
// against the cached rows. The engine is proven byte-identical to the
// per-vector path by engine_test.go.
//
// # Bucket keys
//
// A table's bucket key is the concatenation of its k hash values. Whenever
// k·Bits() ≤ 64 — SimHash up to k = 64, MinHash up to k = 2 — keys live in
// a single uint64 and tables index buckets by machine word, allocation
// free. Wider configurations fall back to packed big-endian strings. KeyOf,
// BucketIDs and ForEachBucket always speak the canonical string form;
// SameBucket, Query and the bipartite matcher use word compares in narrow
// mode.
//
// # Snapshots
//
// Mutation is separated from reading: Index owns a pending delta that
// Insert/InsertBatch append to, and Snapshot merges the delta into a fresh
// immutable Snapshot published by one atomic pointer store (snapshot.go,
// dynamic.go). Tables are frozen at publication and never mutated, so
// queries, sampling and estimators run lock-free against whatever version
// they hold.
package lsh

import (
	"math"

	"lshjoin/internal/vecmath"
)

// Family is a locality-sensitive hash family for some similarity measure.
// Implementations are stateless given their seed: Hash(fn, v) is a pure
// function, so hash functions are addressed by index and never stored.
type Family interface {
	// Name identifies the family (e.g. "simhash", "minhash").
	Name() string
	// Sim returns the similarity measure the family is sensitive to.
	Sim(u, v vecmath.Vector) float64
	// Hash evaluates hash function fn on v. The result uses Bits() low bits.
	Hash(fn int, v vecmath.Vector) uint64
	// Bits is the width in bits of each hash value (1 for sign random
	// projection, up to 64 for MinHash).
	Bits() int
	// CollisionProb returns p(s) = P(h(u) = h(v)) given sim(u,v) = s.
	CollisionProb(s float64) float64
	// SimFromCollisionProb inverts CollisionProb (clamped to valid range).
	SimFromCollisionProb(p float64) float64
}

// SimHash is Charikar's sign-random-projection family for cosine similarity:
// h(v) = [a·v ≥ 0] with a a random gaussian hyperplane. Collision probability
// is p(s) = 1 − arccos(s)/π.
//
// Hyperplane components are materialized on demand from a keyed gaussian
// stream, so a function over a 100k-dimensional space costs no storage.
type SimHash struct {
	seed uint64
}

// NewSimHash returns the family determined by seed.
func NewSimHash(seed uint64) SimHash { return SimHash{seed: seed} }

// Name implements Family.
func (SimHash) Name() string { return "simhash" }

// Bits implements Family: sign projections emit a single bit.
func (SimHash) Bits() int { return 1 }

// Sim implements Family with cosine similarity.
func (SimHash) Sim(u, v vecmath.Vector) float64 { return vecmath.Cosine(u, v) }

// Hash implements Family: the sign bit of the projection of v onto the
// fn-th random hyperplane.
func (f SimHash) Hash(fn int, v vecmath.Vector) uint64 {
	var dot float64
	for _, e := range v.Entries() {
		dot += float64(e.Weight) * gaussComponent(f.seed, uint64(fn), uint64(e.Dim))
	}
	if dot >= 0 {
		return 1
	}
	return 0
}

// CollisionProb implements Family: p(s) = 1 − arccos(s)/π.
func (SimHash) CollisionProb(s float64) float64 {
	if s > 1 {
		s = 1
	}
	if s < -1 {
		s = -1
	}
	return 1 - math.Acos(s)/math.Pi
}

// SimFromCollisionProb implements Family: s = cos(π(1−p)).
func (SimHash) SimFromCollisionProb(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return math.Cos(math.Pi * (1 - p))
}

// MinHash is the min-wise independent permutation family for Jaccard
// similarity over vector supports: h(v) = argmin over support dims of a keyed
// hash. Collision probability is exactly p(s) = s, the idealized Definition 3
// of the paper.
type MinHash struct {
	seed uint64
	bits int
}

// NewMinHash returns a MinHash family with 32-bit hash values.
func NewMinHash(seed uint64) MinHash { return MinHash{seed: seed, bits: 32} }

// Name implements Family.
func (MinHash) Name() string { return "minhash" }

// Bits implements Family.
func (f MinHash) Bits() int { return f.bits }

// Sim implements Family with Jaccard similarity of supports.
func (MinHash) Sim(u, v vecmath.Vector) float64 { return vecmath.Jaccard(u, v) }

// Hash implements Family: the minimum keyed hash over support dimensions,
// truncated to Bits() bits. The empty vector hashes to a sentinel derived
// from fn so all empty vectors share buckets per function.
func (f MinHash) Hash(fn int, v vecmath.Vector) uint64 {
	es := v.Entries()
	if len(es) == 0 {
		return hash64(f.seed, uint64(fn), math.MaxUint64) >> (64 - f.bits)
	}
	best := uint64(math.MaxUint64)
	for _, e := range es {
		if h := hash64(f.seed, uint64(fn), uint64(e.Dim)); h < best {
			best = h
		}
	}
	return best >> (64 - f.bits)
}

// CollisionProb implements Family: exactly the Jaccard similarity (truncation
// collisions are negligible at 32 bits).
func (MinHash) CollisionProb(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SimFromCollisionProb implements Family.
func (MinHash) SimFromCollisionProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
