package lsh

import (
	"runtime"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// naiveKeys computes per-table bucket keys exactly as the pre-engine code
// did: Family.Hash per (vector, function), packKey per table. This is the
// reference the signature engine must match byte for byte.
func naiveKeys(data []vecmath.Vector, f Family, k, ell int) [][]string {
	keys := make([][]string, ell)
	vals := make([]uint64, k)
	for t := 0; t < ell; t++ {
		keys[t] = make([]string, len(data))
		for i, v := range data {
			for j := 0; j < k; j++ {
				vals[j] = f.Hash(t*k+j, v)
			}
			keys[t][i] = packKey(vals, f.Bits())
		}
	}
	return keys
}

func engineCorpus(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		if i%17 == 0 {
			data[i] = vecmath.Vector{} // empty vectors exercise sentinels
			continue
		}
		nnz := 1 + rng.Intn(12)
		ds := make([]uint32, nnz)
		for j := range ds {
			// Zipf-ish reuse plus a long tail of rare dimensions.
			if rng.Float64() < 0.7 {
				ds[j] = uint32(rng.Intn(50))
			} else {
				ds[j] = uint32(rng.Intn(5000))
			}
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

// TestEngineMatchesNaive is the mandatory equivalence layer: for every
// family and a sweep of (k, ℓ) covering both narrow (word-keyed) and wide
// (string-keyed) tables, the engine-built index must assign every vector the
// same canonical bucket key as the naive Family.Hash + packKey path.
func TestEngineMatchesNaive(t *testing.T) {
	data := engineCorpus(200, 11)
	bitSampling, err := NewBitSampling(77, 5000)
	if err != nil {
		t.Fatal(err)
	}
	families := []Family{NewSimHash(42), NewMinHash(42), bitSampling}
	type cfg struct{ k, ell int }
	cfgs := []cfg{{1, 1}, {2, 3}, {8, 2}, {20, 1}, {64, 1}, {70, 1}, {3, 2}}
	for _, f := range families {
		for _, c := range cfgs {
			if c.k*f.Bits() > 64 && c.k > 3 && f.Bits() > 1 {
				continue // MinHash wide already covered by k=3
			}
			idx, err := Build(data, f, c.k, c.ell)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveKeys(data, f, c.k, c.ell)
			for tb := 0; tb < c.ell; tb++ {
				tab := idx.Table(tb)
				if wantNarrow := c.k*f.Bits() <= 64; tab.Narrow() != wantNarrow {
					t.Fatalf("%s k=%d: Narrow()=%v, want %v", f.Name(), c.k, tab.Narrow(), wantNarrow)
				}
				for i := range data {
					if got := tab.KeyOf(i); got != want[tb][i] {
						t.Fatalf("%s k=%d ℓ=%d: table %d vector %d: engine key %q != naive key %q",
							f.Name(), c.k, c.ell, tb, i, got, want[tb][i])
					}
				}
			}
		}
	}
}

// TestBuildDeterministic asserts Build output is invariant across repeated
// runs and across GOMAXPROCS settings — the engine's parallel signing must
// not leak scheduling into bucket assignment or bucket order.
func TestBuildDeterministic(t *testing.T) {
	data := engineCorpus(300, 5)
	build := func() *Index {
		idx, err := Build(data, NewSimHash(9), 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	ref := build()
	check := func(idx *Index, label string) {
		t.Helper()
		for tb := 0; tb < ref.L(); tb++ {
			rt, it := ref.Table(tb), idx.Table(tb)
			if rt.NH() != it.NH() || rt.NumBuckets() != it.NumBuckets() {
				t.Fatalf("%s: table %d shape differs (NH %d vs %d, buckets %d vs %d)",
					label, tb, rt.NH(), it.NH(), rt.NumBuckets(), it.NumBuckets())
			}
			for i := range data {
				if rt.KeyOf(i) != it.KeyOf(i) {
					t.Fatalf("%s: table %d vector %d key differs", label, tb, i)
				}
			}
			rs, is := rt.BucketSizes(), it.BucketSizes()
			for b := range rs {
				if rs[b] != is[b] {
					t.Fatalf("%s: table %d bucket order differs at %d", label, tb, b)
				}
			}
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		check(build(), "GOMAXPROCS="+string(rune('0'+procs)))
		check(build(), "repeat run")
	}
}

// TestQueryAllocations pins down the epoch-stamped visited array: steady-
// state Query must not allocate a map (or anything besides the result
// slice).
func TestQueryAllocations(t *testing.T) {
	data := engineCorpus(500, 3)
	idx, err := Build(data, NewSimHash(4), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx.Query(data[0]) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		idx.Query(data[7])
	})
	// The returned candidate slice may grow a few times; a per-call map or
	// visited array would add tens of allocations.
	if allocs > 4 {
		t.Fatalf("Query allocates %.1f objects per call; want ≤ 4 (result slice only)", allocs)
	}
}

// TestQueryMatchesSearchSemantics cross-checks the pooled-visited Query
// against a straightforward map-deduplicated reimplementation.
func TestQueryMatchesSearchSemantics(t *testing.T) {
	data := engineCorpus(300, 8)
	idx, err := Build(data, NewMinHash(6), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 50; probe++ {
		v := data[probe*5%len(data)]
		var want []int32
		seen := make(map[int32]bool)
		for tb := 0; tb < idx.L(); tb++ {
			for _, id := range idx.Table(tb).BucketIDs(idx.KeyFor(tb, v)) {
				if !seen[id] {
					seen[id] = true
					want = append(want, id)
				}
			}
		}
		got := idx.Query(v)
		if len(got) != len(want) {
			t.Fatalf("probe %d: Query returned %d ids, want %d", probe, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %d: Query order diverges at %d", probe, i)
			}
		}
	}
}

// TestInsertBatchMatchesNaiveInserts asserts the engine-signed batch path
// lands every vector in the same bucket as repeated single Inserts.
func TestInsertBatchMatchesNaiveInserts(t *testing.T) {
	data := engineCorpus(240, 21)
	for _, f := range []Family{NewSimHash(2), NewMinHash(2)} {
		one, err := Build(data[:80], f, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Build(data[:80], f, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range data[80:] {
			one.Insert(v)
		}
		if first := batch.InsertBatch(data[80:]); first != 80 {
			t.Fatalf("InsertBatch returned first id %d, want 80", first)
		}
		for tb := 0; tb < one.L(); tb++ {
			ot, bt := one.Table(tb), batch.Table(tb)
			if ot.NH() != bt.NH() {
				t.Fatalf("%s table %d: NH %d (single) vs %d (batch)", f.Name(), tb, ot.NH(), bt.NH())
			}
			for i := range data {
				if ot.KeyOf(i) != bt.KeyOf(i) {
					t.Fatalf("%s table %d vector %d: batch key differs from single-insert key", f.Name(), tb, i)
				}
			}
		}
	}
}

// TestEnginePanelMatchesNaive forces panel streaming with a budget far below
// the fused cache size and requires the exact naive keys again — across both
// families, narrow and wide tables, and serial and parallel signing. Panel
// order must not leak into signatures.
func TestEnginePanelMatchesNaive(t *testing.T) {
	data := engineCorpus(200, 13)
	families := []Family{NewSimHash(42), NewMinHash(42)}
	type cfg struct{ k, ell int }
	cfgs := []cfg{{2, 3}, {20, 1}, {70, 1}, {3, 2}}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, f := range families {
			for _, c := range cfgs {
				if c.k*f.Bits() > 64 && c.k > 3 && f.Bits() > 1 {
					continue
				}
				// A few hundred bytes per panel forces hundreds of panels.
				idx, err := BuildSigned(data, f, c.k, c.ell, SignConfig{PanelBytes: 512})
				if err != nil {
					t.Fatal(err)
				}
				want := naiveKeys(data, f, c.k, c.ell)
				for tb := 0; tb < c.ell; tb++ {
					tab := idx.Table(tb)
					for i := range data {
						if got := tab.KeyOf(i); got != want[tb][i] {
							t.Fatalf("procs=%d %s k=%d ℓ=%d: table %d vector %d: panel key %q != naive key %q",
								procs, f.Name(), c.k, c.ell, tb, i, got, want[tb][i])
						}
					}
				}
			}
		}
	}
}

// TestFloat32SigningConsistent pins the float32 lane's internal agreements:
// the panel-streamed build must equal the fused build key for key, the batch
// build must agree with single-vector hashing (Insert and KeyFor route
// through signOne32), and InsertBatch must land vectors exactly where the
// batch build would have.
func TestFloat32SigningConsistent(t *testing.T) {
	data := engineCorpus(240, 31)
	f := NewSimHash(17)
	for _, c := range []struct{ k, ell int }{{20, 1}, {12, 3}, {70, 1}} {
		fused, err := BuildSigned(data, f, c.k, c.ell, SignConfig{Float32: true})
		if err != nil {
			t.Fatal(err)
		}
		panel, err := BuildSigned(data, f, c.k, c.ell, SignConfig{Float32: true, PanelBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		for tb := 0; tb < c.ell; tb++ {
			ft, pt := fused.Table(tb), panel.Table(tb)
			for i, v := range data {
				key := ft.KeyOf(i)
				if pk := pt.KeyOf(i); pk != key {
					t.Fatalf("k=%d ℓ=%d table %d vector %d: float32 panel key differs from fused", c.k, c.ell, tb, i)
				}
				if kf := fused.KeyFor(tb, v); kf != key {
					t.Fatalf("k=%d ℓ=%d table %d vector %d: KeyFor %q != batch key %q", c.k, c.ell, tb, i, kf, key)
				}
			}
		}
	}

	one, err := BuildSigned(data[:80], f, 6, 2, SignConfig{Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := BuildSigned(data[:80], f, 6, 2, SignConfig{Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[80:] {
		one.Insert(v)
	}
	batch.InsertBatch(data[80:])
	for tb := 0; tb < one.L(); tb++ {
		ot, bt := one.Table(tb), batch.Table(tb)
		for i := range data {
			if ot.KeyOf(i) != bt.KeyOf(i) {
				t.Fatalf("table %d vector %d: float32 batch key differs from single-insert key", tb, i)
			}
		}
	}
}

// TestFloat32SignFlipRate bounds how often the float32 lane's sign decisions
// diverge from float64: flips require a projection within float32 rounding
// error of zero, so across thousands of (vector, function) pairs only a tiny
// fraction may differ. A broken float32 path (wrong stream, wrong fold
// order) flips ~50% and fails loudly.
func TestFloat32SignFlipRate(t *testing.T) {
	data := engineCorpus(500, 47)
	f := NewSimHash(29)
	const k = 20
	vals32 := make([]uint64, k)
	total, flips := 0, 0
	for _, v := range data {
		if len(v.Entries()) == 0 {
			continue
		}
		signOne32(f, 0, k, v, vals32)
		for j := 0; j < k; j++ {
			total++
			if vals32[j] != f.Hash(j, v) {
				flips++
			}
		}
	}
	if total == 0 {
		t.Fatal("empty corpus")
	}
	if rate := float64(flips) / float64(total); rate > 0.01 {
		t.Fatalf("float32 sign flip rate %.4f (%d/%d), want ≤ 0.01", rate, flips, total)
	}
}
