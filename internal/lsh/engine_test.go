package lsh

import (
	"runtime"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// naiveKeys computes per-table bucket keys exactly as the pre-engine code
// did: Family.Hash per (vector, function), packKey per table. This is the
// reference the signature engine must match byte for byte.
func naiveKeys(data []vecmath.Vector, f Family, k, ell int) [][]string {
	keys := make([][]string, ell)
	vals := make([]uint64, k)
	for t := 0; t < ell; t++ {
		keys[t] = make([]string, len(data))
		for i, v := range data {
			for j := 0; j < k; j++ {
				vals[j] = f.Hash(t*k+j, v)
			}
			keys[t][i] = packKey(vals, f.Bits())
		}
	}
	return keys
}

func engineCorpus(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		if i%17 == 0 {
			data[i] = vecmath.Vector{} // empty vectors exercise sentinels
			continue
		}
		nnz := 1 + rng.Intn(12)
		ds := make([]uint32, nnz)
		for j := range ds {
			// Zipf-ish reuse plus a long tail of rare dimensions.
			if rng.Float64() < 0.7 {
				ds[j] = uint32(rng.Intn(50))
			} else {
				ds[j] = uint32(rng.Intn(5000))
			}
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

// TestEngineMatchesNaive is the mandatory equivalence layer: for every
// family and a sweep of (k, ℓ) covering both narrow (word-keyed) and wide
// (string-keyed) tables, the engine-built index must assign every vector the
// same canonical bucket key as the naive Family.Hash + packKey path.
func TestEngineMatchesNaive(t *testing.T) {
	data := engineCorpus(200, 11)
	bitSampling, err := NewBitSampling(77, 5000)
	if err != nil {
		t.Fatal(err)
	}
	families := []Family{NewSimHash(42), NewMinHash(42), bitSampling}
	type cfg struct{ k, ell int }
	cfgs := []cfg{{1, 1}, {2, 3}, {8, 2}, {20, 1}, {64, 1}, {70, 1}, {3, 2}}
	for _, f := range families {
		for _, c := range cfgs {
			if c.k*f.Bits() > 64 && c.k > 3 && f.Bits() > 1 {
				continue // MinHash wide already covered by k=3
			}
			idx, err := Build(data, f, c.k, c.ell)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveKeys(data, f, c.k, c.ell)
			for tb := 0; tb < c.ell; tb++ {
				tab := idx.Table(tb)
				if wantNarrow := c.k*f.Bits() <= 64; tab.Narrow() != wantNarrow {
					t.Fatalf("%s k=%d: Narrow()=%v, want %v", f.Name(), c.k, tab.Narrow(), wantNarrow)
				}
				for i := range data {
					if got := tab.KeyOf(i); got != want[tb][i] {
						t.Fatalf("%s k=%d ℓ=%d: table %d vector %d: engine key %q != naive key %q",
							f.Name(), c.k, c.ell, tb, i, got, want[tb][i])
					}
				}
			}
		}
	}
}

// TestBuildDeterministic asserts Build output is invariant across repeated
// runs and across GOMAXPROCS settings — the engine's parallel signing must
// not leak scheduling into bucket assignment or bucket order.
func TestBuildDeterministic(t *testing.T) {
	data := engineCorpus(300, 5)
	build := func() *Index {
		idx, err := Build(data, NewSimHash(9), 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	ref := build()
	check := func(idx *Index, label string) {
		t.Helper()
		for tb := 0; tb < ref.L(); tb++ {
			rt, it := ref.Table(tb), idx.Table(tb)
			if rt.NH() != it.NH() || rt.NumBuckets() != it.NumBuckets() {
				t.Fatalf("%s: table %d shape differs (NH %d vs %d, buckets %d vs %d)",
					label, tb, rt.NH(), it.NH(), rt.NumBuckets(), it.NumBuckets())
			}
			for i := range data {
				if rt.KeyOf(i) != it.KeyOf(i) {
					t.Fatalf("%s: table %d vector %d key differs", label, tb, i)
				}
			}
			rs, is := rt.BucketSizes(), it.BucketSizes()
			for b := range rs {
				if rs[b] != is[b] {
					t.Fatalf("%s: table %d bucket order differs at %d", label, tb, b)
				}
			}
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		check(build(), "GOMAXPROCS="+string(rune('0'+procs)))
		check(build(), "repeat run")
	}
}

// TestQueryAllocations pins down the epoch-stamped visited array: steady-
// state Query must not allocate a map (or anything besides the result
// slice).
func TestQueryAllocations(t *testing.T) {
	data := engineCorpus(500, 3)
	idx, err := Build(data, NewSimHash(4), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx.Query(data[0]) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		idx.Query(data[7])
	})
	// The returned candidate slice may grow a few times; a per-call map or
	// visited array would add tens of allocations.
	if allocs > 4 {
		t.Fatalf("Query allocates %.1f objects per call; want ≤ 4 (result slice only)", allocs)
	}
}

// TestQueryMatchesSearchSemantics cross-checks the pooled-visited Query
// against a straightforward map-deduplicated reimplementation.
func TestQueryMatchesSearchSemantics(t *testing.T) {
	data := engineCorpus(300, 8)
	idx, err := Build(data, NewMinHash(6), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 50; probe++ {
		v := data[probe*5%len(data)]
		var want []int32
		seen := make(map[int32]bool)
		for tb := 0; tb < idx.L(); tb++ {
			for _, id := range idx.Table(tb).BucketIDs(idx.KeyFor(tb, v)) {
				if !seen[id] {
					seen[id] = true
					want = append(want, id)
				}
			}
		}
		got := idx.Query(v)
		if len(got) != len(want) {
			t.Fatalf("probe %d: Query returned %d ids, want %d", probe, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %d: Query order diverges at %d", probe, i)
			}
		}
	}
}

// TestInsertBatchMatchesNaiveInserts asserts the engine-signed batch path
// lands every vector in the same bucket as repeated single Inserts.
func TestInsertBatchMatchesNaiveInserts(t *testing.T) {
	data := engineCorpus(240, 21)
	for _, f := range []Family{NewSimHash(2), NewMinHash(2)} {
		one, err := Build(data[:80], f, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Build(data[:80], f, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range data[80:] {
			one.Insert(v)
		}
		if first := batch.InsertBatch(data[80:]); first != 80 {
			t.Fatalf("InsertBatch returned first id %d, want 80", first)
		}
		for tb := 0; tb < one.L(); tb++ {
			ot, bt := one.Table(tb), batch.Table(tb)
			if ot.NH() != bt.NH() {
				t.Fatalf("%s table %d: NH %d (single) vs %d (batch)", f.Name(), tb, ot.NH(), bt.NH())
			}
			for i := range data {
				if ot.KeyOf(i) != bt.KeyOf(i) {
					t.Fatalf("%s table %d vector %d: batch key differs from single-insert key", f.Name(), tb, i)
				}
			}
		}
	}
}
