package lsh

import "fmt"

// FamilySpec is the serializable identity of a hash family: everything the
// durability layer needs to persist so that a reopened index hashes — and
// therefore buckets — exactly like the one that was saved. Families are
// stateless given their seed, so (Name, Seed, Bits) reconstructs them
// completely.
type FamilySpec struct {
	Name string
	Seed uint64
	Bits int
}

// SpecOf extracts the spec of one of the built-in families. Custom Family
// implementations are not serializable and report an error.
func SpecOf(f Family) (FamilySpec, error) {
	switch fam := f.(type) {
	case SimHash:
		return FamilySpec{Name: fam.Name(), Seed: fam.seed, Bits: fam.Bits()}, nil
	case MinHash:
		return FamilySpec{Name: fam.Name(), Seed: fam.seed, Bits: fam.bits}, nil
	}
	if f == nil {
		return FamilySpec{}, fmt.Errorf("lsh: nil family has no spec")
	}
	return FamilySpec{}, fmt.Errorf("lsh: family %s is not serializable", f.Name())
}

// FamilyFromSpec inverts SpecOf, validating the spec so corrupted on-disk
// parameters cannot construct a family the hashing layer would choke on.
func FamilyFromSpec(sp FamilySpec) (Family, error) {
	switch sp.Name {
	case "simhash":
		if sp.Bits != 1 {
			return nil, fmt.Errorf("lsh: simhash spec with bit width %d (want 1)", sp.Bits)
		}
		return NewSimHash(sp.Seed), nil
	case "minhash":
		if sp.Bits != 32 {
			return nil, fmt.Errorf("lsh: minhash spec with bit width %d (want 32)", sp.Bits)
		}
		return NewMinHash(sp.Seed), nil
	}
	return nil, fmt.Errorf("lsh: unknown family %q", sp.Name)
}
