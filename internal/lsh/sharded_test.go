package lsh

import (
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func TestGroupIDRoundTrip(t *testing.T) {
	cases := []struct{ shard, local int }{
		{0, 0}, {0, 1}, {1, 0}, {7, 12345}, {MaxShards - 1, 1<<shardIDShift - 1},
	}
	for _, c := range cases {
		s, l := SplitGroupID(GroupID(c.shard, c.local))
		if s != c.shard || l != c.local {
			t.Fatalf("GroupID(%d,%d) round-tripped to (%d,%d)", c.shard, c.local, s, l)
		}
	}
	if GroupID(0, 42) != 42 {
		t.Fatalf("single-shard ids must equal local ids, got %d", GroupID(0, 42))
	}
}

// Jump consistent hashing: growing the shard count from n to n+1 either
// keeps a key in place or moves it to the new shard n — never to another
// existing shard — and the spread over shards is roughly uniform.
func TestJumpHashConsistency(t *testing.T) {
	rng := xrand.New(11)
	for n := 1; n <= 8; n++ {
		counts := make([]int, n+1)
		for i := 0; i < 4000; i++ {
			key := rng.Uint64()
			a := jumpHash(key, n)
			b := jumpHash(key, n+1)
			if a < 0 || a >= n || b < 0 || b >= n+1 {
				t.Fatalf("jumpHash out of range: %d of %d, %d of %d", a, n, b, n+1)
			}
			if b != a && b != n {
				t.Fatalf("growing %d→%d moved key to shard %d (was %d)", n, n+1, b, a)
			}
			counts[b]++
		}
		for s, c := range counts {
			if want := 4000 / (n + 1); c < want/2 || c > want*2 {
				t.Fatalf("n=%d: shard %d holds %d of 4000 keys (want ≈%d)", n+1, s, c, want)
			}
		}
	}
}

// Routing is a pure function of the vector value: equal vectors share a
// shard, and the route does not depend on insert order or group state.
func TestRouteDeterministic(t *testing.T) {
	data := randData(200, 500, 8, 21)
	g1, err := NewShardGroup(data, NewSimHash(3), 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewShardGroup(data[:10], NewSimHash(3), 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if g1.Route(v) != g2.Route(v) {
			t.Fatalf("vector %d routed differently by two groups", i)
		}
		dup, _ := vecmath.New(append([]vecmath.Entry(nil), v.Entries()...))
		if g1.Route(dup) != g1.Route(v) {
			t.Fatalf("vector %d: equal vectors routed to different shards", i)
		}
	}
}

// An S=1 group is the plain Index: same tables after build and after a mixed
// Insert/InsertBatch workload.
func TestShardGroupSingleShardMatchesBuild(t *testing.T) {
	data := randData(300, 2000, 10, 31)
	tail := randData(60, 2000, 10, 32)
	fam := NewSimHash(5)

	g, err := NewShardGroup(data, fam, 12, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(data, fam, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tail {
		if i%3 == 0 {
			gids := g.InsertBatch(tail[i : i+1])
			wid := want.InsertBatch(tail[i : i+1])
			if gids[0] != int64(wid) {
				t.Fatalf("insert %d: group id %d, index id %d", i, gids[0], wid)
			}
			continue
		}
		gid := g.Insert(v)
		wid := want.Insert(v)
		if gid != int64(wid) {
			t.Fatalf("insert %d: group id %d, index id %d", i, gid, wid)
		}
	}
	gs := g.Capture()
	ws := want.Snapshot()
	if gs.N() != ws.N() {
		t.Fatalf("N %d vs %d", gs.N(), ws.N())
	}
	for ti := 0; ti < 2; ti++ {
		tablesEqual(t, ws.Table(ti), gs.Snap(0).Table(ti))
	}
}

// buildGroupAndUnion routes data into a group and builds a single union
// index over the same vectors in dense order, so dense ids align between the
// two and per-pair observables can be compared directly.
func buildGroupAndUnion(t *testing.T, data []vecmath.Vector, fam Family, k, ell, s int) (*ShardGroup, *GroupSnapshot, *Snapshot) {
	t.Helper()
	g, err := NewShardGroup(data, fam, k, ell, s)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.Capture()
	union, err := BuildSnapshot(gs.Data(), fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	return g, gs, union
}

// The dense view enumerates exactly the routed union: every input vector
// appears once, Locate/Dense/At are mutually consistent, and the per-pair
// bucket tests agree with a single index built over the dense order.
func TestGroupSnapshotMatchesUnion(t *testing.T) {
	for _, tc := range []struct {
		name string
		fam  Family
		k    int
	}{
		{"narrow-simhash", NewSimHash(7), 10},
		{"wide-minhash", NewMinHash(7), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := randData(160, 300, 6, 41) // small universe: plenty of collisions
			_, gs, union := buildGroupAndUnion(t, data, tc.fam, tc.k, 2, 3)
			if gs.N() != len(data) {
				t.Fatalf("dense view holds %d vectors, want %d", gs.N(), len(data))
			}
			for i := 0; i < gs.N(); i++ {
				s, l := gs.Locate(i)
				if gs.Dense(s, l) != i {
					t.Fatalf("Locate/Dense disagree at %d", i)
				}
				if gs.At(i).String() != gs.Data()[i].String() {
					t.Fatalf("At(%d) differs from Data()[%d]", i, i)
				}
			}
			for i := 0; i < gs.N(); i++ {
				for j := i + 1; j < gs.N(); j++ {
					for ti := 0; ti < 2; ti++ {
						if got, want := gs.SameBucketInTable(ti, i, j), union.Table(ti).SameBucket(i, j); got != want {
							t.Fatalf("SameBucketInTable(%d,%d,%d) = %v, union %v", ti, i, j, got, want)
						}
					}
					if got, want := gs.SameAnyBucket(i, j), union.SameAnyBucket(i, j); got != want {
						t.Fatalf("SameAnyBucket(%d,%d) = %v, union %v", i, j, got, want)
					}
					if got, want := gs.BucketMultiplicity(i, j), union.BucketMultiplicity(i, j); got != want {
						t.Fatalf("BucketMultiplicity(%d,%d) = %d, union %d", i, j, got, want)
					}
				}
			}
		})
	}
}

// Stratum-H additivity: per-shard N_H plus cross-shard bipartite N_H equals
// the union index's N_H exactly, table by table — the identity the merged
// estimators are built on.
func TestGroupNHAdditivity(t *testing.T) {
	data := randData(400, 250, 5, 51)
	for _, s := range []int{1, 2, 3, 5} {
		_, gs, union := buildGroupAndUnion(t, data, NewSimHash(9), 8, 2, s)
		for ti := 0; ti < 2; ti++ {
			var sum int64
			for a := 0; a < gs.S(); a++ {
				sum += gs.Snap(a).Table(ti).NH()
				for b := a + 1; b < gs.S(); b++ {
					bp, err := NewBipartite(gs.Snap(a), gs.Snap(b), ti)
					if err != nil {
						t.Fatal(err)
					}
					sum += bp.NH()
				}
			}
			if want := union.Table(ti).NH(); sum != want {
				t.Fatalf("s=%d table %d: sharded N_H %d, union %d", s, ti, sum, want)
			}
		}
	}
}

// A group with more shards than vectors leaves some shards empty; captures,
// reads and subsequent inserts must all work.
func TestGroupEmptyShards(t *testing.T) {
	data := randData(5, 100, 4, 61)
	g, err := NewShardGroup(data, NewSimHash(3), 6, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.Capture()
	if gs.N() != len(data) {
		t.Fatalf("N = %d, want %d", gs.N(), len(data))
	}
	empty := 0
	for s := 0; s < gs.S(); s++ {
		if gs.Snap(s).N() == 0 {
			empty++
			if ids := gs.Snap(s).Query(data[0]); len(ids) != 0 {
				t.Fatalf("query on empty shard returned %v", ids)
			}
		}
	}
	if empty == 0 {
		t.Fatal("expected at least one empty shard with 5 vectors over 16 shards")
	}
	tail := randData(200, 100, 4, 62)
	for _, v := range tail {
		g.Insert(v)
	}
	if got := g.Capture().N(); got != len(data)+len(tail) {
		t.Fatalf("after inserts N = %d, want %d", got, len(data)+len(tail))
	}
}

// InsertBatch must leave every shard in the same state as routing the same
// vectors through one-at-a-time Inserts, and report ids for the same homes.
func TestGroupInsertBatchMatchesInserts(t *testing.T) {
	data := randData(100, 400, 6, 71)
	tail := randData(150, 400, 6, 72)
	fam := NewMinHash(13) // wide keys: exercise the string path too
	ga, err := NewShardGroup(data, fam, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewShardGroup(data, fam, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	batchIDs := ga.InsertBatch(tail)
	oneIDs := make([]int64, len(tail))
	for i, v := range tail {
		oneIDs[i] = gb.Insert(v)
	}
	for i := range tail {
		if batchIDs[i] != oneIDs[i] {
			t.Fatalf("vector %d: batch id %d, insert id %d", i, batchIDs[i], oneIDs[i])
		}
	}
	sa, sb := ga.Capture(), gb.Capture()
	for s := 0; s < 4; s++ {
		for ti := 0; ti < 2; ti++ {
			tablesEqual(t, sb.Snap(s).Table(ti), sa.Snap(s).Table(ti))
		}
	}
}

// Capture reflects per-shard versions: inserting into one shard bumps only
// that shard's version at the next capture.
func TestGroupVersions(t *testing.T) {
	data := randData(64, 200, 5, 81)
	g, err := NewShardGroup(data, NewSimHash(3), 8, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Capture().Versions()
	v := randData(1, 200, 5, 82)[0]
	home := g.Route(v)
	g.Insert(v)
	after := g.Capture().Versions()
	for s := range after {
		want := before[s]
		if s == home {
			want++
		}
		if after[s] != want {
			t.Fatalf("shard %d version %d, want %d (home %d)", s, after[s], want, home)
		}
	}
	// Current never publishes: pending inserts stay invisible to it.
	g.Insert(v)
	cur := g.Current().Versions()
	for s := range cur {
		if cur[s] != after[s] {
			t.Fatalf("Current bumped shard %d to %d", s, cur[s])
		}
	}
}

// Cross-group bipartite decomposition: the S_left·S_right per-shard-pair
// bipartite matchings partition the union bipartite stratum H, so their N_H
// values sum to the N_H of one matching built over the two union sides, and
// SameBucketAcrossGroups agrees pair-for-pair with the union matching's
// membership test.
func TestCrossGroupMatchesUnionBipartite(t *testing.T) {
	family := NewSimHash(5)
	const k, ell = 6, 2
	left := randData(120, 40, 4, 31) // small dims so buckets genuinely collide
	right := randData(90, 40, 4, 33)
	copy(right[:15], left[:15]) // plant shared vectors for high-sim matches
	gl, err := NewShardGroup(left, family, k, ell, 3)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewShardGroup(right, family, k, ell, 2)
	if err != nil {
		t.Fatal(err)
	}
	lgs, rgs := gl.Capture(), gr.Capture()
	if err := CompatibleCross(lgs, rgs); err != nil {
		t.Fatal(err)
	}
	ul, err := BuildSnapshot(lgs.Data(), family, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := BuildSnapshot(rgs.Data(), family, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < ell; ti++ {
		union, err := NewBipartite(ul, ur, ti)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for a := 0; a < lgs.S(); a++ {
			for b := 0; b < rgs.S(); b++ {
				bp, err := NewBipartite(lgs.Snap(a), rgs.Snap(b), ti)
				if err != nil {
					t.Fatal(err)
				}
				sum += bp.NH()
			}
		}
		if sum != union.NH() {
			t.Fatalf("table %d: per-shard-pair N_H sum %d, union %d", ti, sum, union.NH())
		}
		if sum == 0 {
			t.Fatalf("table %d: degenerate fixture, N_H = 0", ti)
		}
		for i := 0; i < lgs.N(); i++ {
			for j := 0; j < rgs.N(); j++ {
				if got, want := lgs.SameBucketAcrossGroups(ti, i, rgs, j), union.SameBucket(i, j); got != want {
					t.Fatalf("table %d: SameBucketAcrossGroups(%d,%d)=%v, union %v", ti, i, j, got, want)
				}
			}
		}
	}
}

// CompatibleCross rejects group pairs whose bucket keys are not comparable.
func TestCompatibleCrossValidation(t *testing.T) {
	data := randData(8, 40, 3, 7)
	mk := func(fam Family, k int) *GroupSnapshot {
		g, err := NewShardGroup(data, fam, k, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return g.Capture()
	}
	base := mk(NewSimHash(1), 6)
	if err := CompatibleCross(base, mk(NewSimHash(1), 6)); err != nil {
		t.Fatalf("same family+k rejected: %v", err)
	}
	if err := CompatibleCross(base, mk(NewSimHash(2), 6)); err == nil {
		t.Error("mismatched families accepted")
	}
	if err := CompatibleCross(base, mk(NewSimHash(1), 5)); err == nil {
		t.Error("mismatched k accepted")
	}
	if err := CompatibleCross(base, nil); err == nil {
		t.Error("nil side accepted")
	}
}
