package lsh

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Shard-parallel table construction (the ROADMAP item "shard-parallel table
// build"). Bucket insertion used to walk the key slice serially, paying one
// map operation per vector on a single core. The builder here splits that
// work by key shard:
//
//  1. classify every key into one of tableShards shards (parallel over
//     fixed-size chunks),
//  2. stable-scatter the vector ids into per-shard runs, preserving global
//     id order within each shard (parallel over the same chunks),
//  3. build each shard's buckets and its base map independently (parallel
//     over shards),
//  4. merge: the global bucket order sorts all shard buckets by first
//     member id — exactly the first-appearance order a serial walk
//     produces — then shard maps are rewritten to global bucket indices
//     (parallel over shards).
//
// Every intermediate is a pure function of the keys: the shard of a key,
// the chunk boundaries (fixed buildChunk, never GOMAXPROCS), the scatter
// positions and the merged order are all worker-count independent, so the
// resulting table is byte-identical whatever the parallelism — build_test.go
// asserts this against the workers=1 path.

// buildChunk is the fixed scatter granularity. It must not depend on the
// worker count: chunk boundaries determine nothing in the output (scatter
// positions are precomputed per chunk), but keeping them fixed makes the
// execution schedule itself deterministic and easy to reason about.
const buildChunk = 8192

// buildSerialCutoff is the table size below which the builder stays on one
// goroutine: spawning workers costs more than the build itself.
const buildSerialCutoff = 4096

// buildWorkers picks the worker count for n keys.
func buildWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 || n < buildSerialCutoff {
		return 1
	}
	return w
}

// parallelN runs fn(0..n-1) on up to workers goroutines, stealing indices
// from a shared counter. fn must write only to state owned by its index.
func parallelN(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// scatter partitions [0, n) into tableShards runs by shardOf, preserving
// ascending id order within each run. It returns the concatenated runs and
// the start offset of each shard (starts has tableShards+1 entries).
func scatter(n, workers int, shardOf func(i int) uint8) (idxs []int32, starts []int32) {
	nch := (n + buildChunk - 1) / buildChunk
	shards := make([]uint8, n)
	counts := make([]int32, nch*tableShards)
	parallelN(nch, workers, func(c int) {
		lo, hi := c*buildChunk, (c+1)*buildChunk
		if hi > n {
			hi = n
		}
		row := counts[c*tableShards : (c+1)*tableShards]
		for i := lo; i < hi; i++ {
			s := shardOf(i)
			shards[i] = s
			row[s]++
		}
	})
	starts = make([]int32, tableShards+1)
	for s := 0; s < tableShards; s++ {
		var tot int32
		for c := 0; c < nch; c++ {
			tot += counts[c*tableShards+s]
		}
		starts[s+1] = starts[s] + tot
	}
	// Rewrite counts in place into per-(chunk, shard) write positions.
	for s := 0; s < tableShards; s++ {
		pos := starts[s]
		for c := 0; c < nch; c++ {
			pos, counts[c*tableShards+s] = pos+counts[c*tableShards+s], pos
		}
	}
	idxs = make([]int32, n)
	parallelN(nch, workers, func(c int) {
		lo, hi := c*buildChunk, (c+1)*buildChunk
		if hi > n {
			hi = n
		}
		row := counts[c*tableShards : (c+1)*tableShards]
		for i := lo; i < hi; i++ {
			s := shards[i]
			idxs[row[s]] = int32(i)
			row[s]++
		}
	})
	return idxs, starts
}

// fillBucketIDs carves one shared int32 arena into per-bucket id slices. vb
// maps each vector id to its bucket index; walking vb in id order reproduces
// the ascending ids a serial append walk yields. Each bucket's slice is
// capacity-clamped to its arena range, so a later dynamic append migrates
// that bucket onto its own backing instead of clobbering a neighbour.
func fillBucketIDs(order []*bucket, vb []int32) {
	counts := getI32(len(order))
	for i := range counts {
		counts[i] = 0
	}
	for _, bi := range vb {
		counts[bi]++
	}
	arena := make([]int32, len(vb))
	pos := int32(0)
	for bi, b := range order {
		c := counts[bi]
		b.ids = arena[pos : pos : pos+c]
		pos += c
	}
	for i, bi := range vb {
		b := order[bi]
		b.ids = append(b.ids, int32(i))
	}
	putI32(counts)
}

// mergeShardBuckets flattens per-shard bucket lists into the global bucket
// order (ascending first member id — the serial first-appearance order) and
// returns, per shard, the global index of each of its buckets.
func mergeShardBuckets(sb [][]*bucket, narrow bool) (order []*bucket, globals [][]int32) {
	total := 0
	for _, bks := range sb {
		total += len(bks)
	}
	order = make([]*bucket, 0, total)
	for _, bks := range sb {
		order = append(order, bks...)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].ids[0] < order[b].ids[0] })
	globals = make([][]int32, tableShards)
	for s, bks := range sb {
		if len(bks) > 0 {
			globals[s] = make([]int32, 0, len(bks))
		}
	}
	// Shard bucket lists are themselves sorted by first id, so appending in
	// global order recovers each shard's local order.
	for gi, b := range order {
		var s int
		if narrow {
			s = shard64(b.key64)
		} else {
			s = shardStr(b.keyStr)
		}
		globals[s] = append(globals[s], int32(gi))
	}
	return order, globals
}

// freezeOrder publishes a freshly built bucket order as the table's weight
// tree (O(#buckets), once per full build or compaction) and marks every
// bucket as base-map covered.
func (t *Table) freezeOrder(order []*bucket) {
	t.w = newFenwick(order)
	t.nbase = len(order)
}

// newTable64 builds a narrow-mode table over pre-computed uint64 bucket keys
// (one per vector), in parallel for large inputs.
func newTable64(keys []uint64, k, fnBase, bits int) *Table {
	return buildTable64(keys, k, fnBase, bits, buildWorkers(len(keys)))
}

// buildTable64 is newTable64 with an explicit worker count (build_test.go
// compares workers=1 against workers>1). workers=1 takes the direct serial
// walk — one pass, first-appearance bucket order by construction; workers>1
// takes the scatter/merge pipeline, which reproduces that order exactly.
func buildTable64(keys []uint64, k, fnBase, bits, workers int) *Table {
	t := &Table{
		k: k, fnBase: fnBase, n: len(keys), bits: bits, narrow: true,
		keys64: keys,
		base64: make([]map[uint64]int32, tableShards),
	}
	if workers <= 1 {
		// Serial walk with arena allocation: bucket structs come from one
		// backing slice whose capacity (#keys) bounds the distinct-key count,
		// so append never reallocates and the *bucket pointers stay valid.
		// Ids are carved from one shared arena afterwards — two allocations
		// where the naive walk paid two per distinct key.
		bks := make([]bucket, 0, len(keys))
		order := make([]*bucket, 0, len(keys))
		vb := getI32(len(keys))
		sizeHint := len(keys)/tableShards + 16
		for i, key := range keys {
			s := shard64(key)
			m := t.base64[s]
			if m == nil {
				m = make(map[uint64]int32, sizeHint)
				t.base64[s] = m
			}
			bi, ok := m[key]
			if !ok {
				bi = int32(len(order))
				m[key] = bi
				bks = append(bks, bucket{key64: key})
				order = append(order, &bks[len(bks)-1])
			}
			vb[i] = bi
		}
		fillBucketIDs(order, vb[:len(keys)])
		putI32(vb)
		t.freezeOrder(order)
		return t
	}
	idxs, starts := scatter(len(keys), workers, func(i int) uint8 { return uint8(shard64(keys[i])) })
	sb := make([][]*bucket, tableShards)
	parallelN(tableShards, workers, func(s int) {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			return
		}
		m := make(map[uint64]int32, int(hi-lo)/2+1)
		var bks []*bucket
		for _, i := range idxs[lo:hi] {
			key := keys[i]
			li, ok := m[key]
			if !ok {
				li = int32(len(bks))
				m[key] = li
				bks = append(bks, &bucket{key64: key})
			}
			b := bks[li]
			b.ids = append(b.ids, i)
		}
		t.base64[s] = m
		sb[s] = bks
	})
	order, globals := mergeShardBuckets(sb, true)
	parallelN(tableShards, workers, func(s int) {
		for local, b := range sb[s] {
			t.base64[s][b.key64] = globals[s][local]
		}
	})
	t.freezeOrder(order)
	return t
}

// newTableStr builds a wide-mode table over pre-computed string bucket keys,
// in parallel for large inputs.
func newTableStr(keys []string, k, fnBase, bits int) *Table {
	return buildTableStr(keys, k, fnBase, bits, buildWorkers(len(keys)))
}

// buildTableStr is newTableStr with an explicit worker count; see
// buildTable64 for the serial/parallel split.
func buildTableStr(keys []string, k, fnBase, bits, workers int) *Table {
	t := &Table{
		k: k, fnBase: fnBase, n: len(keys), bits: bits, narrow: false,
		keysStr: keys,
		baseStr: make([]map[string]int32, tableShards),
	}
	if workers <= 1 {
		// Same arena scheme as buildTable64's serial walk.
		bks := make([]bucket, 0, len(keys))
		order := make([]*bucket, 0, len(keys))
		vb := getI32(len(keys))
		sizeHint := len(keys)/tableShards + 16
		for i, key := range keys {
			s := shardStr(key)
			m := t.baseStr[s]
			if m == nil {
				m = make(map[string]int32, sizeHint)
				t.baseStr[s] = m
			}
			bi, ok := m[key]
			if !ok {
				bi = int32(len(order))
				m[key] = bi
				bks = append(bks, bucket{keyStr: key})
				order = append(order, &bks[len(bks)-1])
			}
			vb[i] = bi
		}
		fillBucketIDs(order, vb[:len(keys)])
		putI32(vb)
		t.freezeOrder(order)
		return t
	}
	idxs, starts := scatter(len(keys), workers, func(i int) uint8 { return uint8(shardStr(keys[i])) })
	sb := make([][]*bucket, tableShards)
	parallelN(tableShards, workers, func(s int) {
		lo, hi := starts[s], starts[s+1]
		if lo == hi {
			return
		}
		m := make(map[string]int32, int(hi-lo)/2+1)
		var bks []*bucket
		for _, i := range idxs[lo:hi] {
			key := keys[i]
			li, ok := m[key]
			if !ok {
				li = int32(len(bks))
				m[key] = li
				bks = append(bks, &bucket{keyStr: key})
			}
			b := bks[li]
			b.ids = append(b.ids, i)
		}
		t.baseStr[s] = m
		sb[s] = bks
	})
	order, globals := mergeShardBuckets(sb, false)
	parallelN(tableShards, workers, func(s int) {
		for local, b := range sb[s] {
			t.baseStr[s][b.keyStr] = globals[s][local]
		}
	})
	t.freezeOrder(order)
	return t
}
