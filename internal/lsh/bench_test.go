package lsh

import (
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func benchData(n, dims, nnz int) []vecmath.Vector {
	rng := xrand.New(1)
	data := make([]vecmath.Vector, n)
	for i := range data {
		ds := make([]uint32, nnz)
		for j := range ds {
			ds[j] = uint32(rng.Intn(dims))
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

// BenchmarkBuildK20 measures single-table index construction at the paper's
// k = 20 over DBLP-shaped vectors.
func BenchmarkBuildK20(b *testing.B) {
	data := benchData(5000, 56000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(data, NewSimHash(uint64(i+1)), 20, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildK20Naive measures the same construction through the naive
// per-vector Family.Hash path the engine replaced, as the speedup reference.
func BenchmarkBuildK20Naive(b *testing.B) {
	data := benchData(5000, 56000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewSimHash(uint64(i + 1))
		keys := naiveKeys(data, f, 20, 1)
		if tab := newTableStr(keys[0], 20, 0, 1); tab.N() != len(data) {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkInsertBatch measures bulk loading 1000 vectors into an existing
// k=20 index through the engine-signed batch path.
func BenchmarkInsertBatch(b *testing.B) {
	data := benchData(6000, 56000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx, err := Build(data[:5000], NewSimHash(uint64(i+1)), 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		idx.InsertBatch(data[5000:])
	}
}

// BenchmarkInsertLoop is the single-Insert loop InsertBatch replaced.
func BenchmarkInsertLoop(b *testing.B) {
	data := benchData(6000, 56000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx, err := Build(data[:5000], NewSimHash(uint64(i+1)), 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, v := range data[5000:] {
			idx.Insert(v)
		}
	}
}

// BenchmarkSimHash20 measures hashing one vector with 20 functions.
func BenchmarkSimHash20(b *testing.B) {
	data := benchData(1, 56000, 14)
	f := NewSimHash(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for fn := 0; fn < 20; fn++ {
			_ = f.Hash(fn, data[0])
		}
	}
}

// BenchmarkMinHash20 measures MinHash with 20 functions on the same vector.
func BenchmarkMinHash20(b *testing.B) {
	data := benchData(1, 56000, 14)
	f := NewMinHash(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for fn := 0; fn < 20; fn++ {
			_ = f.Hash(fn, data[0])
		}
	}
}

// BenchmarkSamplePair measures one weighted stratum-H pair draw.
func BenchmarkSamplePair(b *testing.B) {
	data := benchData(5000, 500, 8) // dense enough for real buckets
	idx, err := Build(data, NewSimHash(3), 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	tab := idx.Table(0)
	if tab.NH() == 0 {
		b.Skip("degenerate bucket structure")
	}
	rng := xrand.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := tab.SamplePair(rng); !ok {
			b.Fatal("sampling failed")
		}
	}
}

// BenchmarkQuery measures candidate retrieval across 4 tables.
func BenchmarkQuery(b *testing.B) {
	data := benchData(5000, 500, 8)
	idx, err := Build(data, NewSimHash(3), 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Query(data[i%len(data)])
	}
}

// BenchmarkVocabularyLUT measures the dimension→row assignment pass in its
// dense regime: max dimension small enough (≤ 8·NNZ) that the epoch-stamped
// direct lookup table is used.
func BenchmarkVocabularyLUT(b *testing.B) {
	data := benchData(5000, 56000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vocabulary(data).release()
	}
}

// BenchmarkVocabularyMap measures the same pass in the sparse regime: a huge
// dimension space forces the pre-sized map path.
func BenchmarkVocabularyMap(b *testing.B) {
	data := benchData(5000, 50_000_000, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vocabulary(data).release()
	}
}
