package lsh

import (
	"testing"

	"lshjoin/internal/xrand"
)

// collectBuckets snapshots a table's bucket sequence in deterministic order
// via the weight tree's in-order traversal.
func collectBuckets(tab *Table) []*bucket {
	out := make([]*bucket, 0, tab.NumBuckets())
	tab.w.walk(func(_ int, b *bucket) bool {
		out = append(out, b)
		return true
	})
	return out
}

// tablesEqual deep-compares every observable of two tables: per-vector keys,
// bucket order and membership, N_H, cumulative weights, and lookups for
// every key.
func tablesEqual(t *testing.T, a, b *Table) {
	t.Helper()
	if a.N() != b.N() || a.K() != b.K() || a.FnBase() != b.FnBase() || a.Narrow() != b.Narrow() {
		t.Fatalf("table shape differs: n=%d/%d k=%d/%d", a.N(), b.N(), a.K(), b.K())
	}
	if a.NH() != b.NH() || a.NumBuckets() != b.NumBuckets() {
		t.Fatalf("NH %d vs %d, buckets %d vs %d", a.NH(), b.NH(), a.NumBuckets(), b.NumBuckets())
	}
	for i := 0; i < a.N(); i++ {
		if a.KeyOf(i) != b.KeyOf(i) {
			t.Fatalf("vector %d: key mismatch", i)
		}
	}
	oa, ob := collectBuckets(a), collectBuckets(b)
	if len(oa) != len(ob) || len(oa) != a.NumBuckets() {
		t.Fatalf("bucket walk lengths %d/%d vs NumBuckets %d", len(oa), len(ob), a.NumBuckets())
	}
	for bi := range oa {
		ba, bb := oa[bi], ob[bi]
		if ba.keyString(a.narrow) != bb.keyString(b.narrow) {
			t.Fatalf("bucket %d: key %q vs %q", bi, ba.keyString(a.narrow), bb.keyString(b.narrow))
		}
		if len(ba.ids) != len(bb.ids) {
			t.Fatalf("bucket %d: %d vs %d members", bi, len(ba.ids), len(bb.ids))
		}
		for x := range ba.ids {
			if ba.ids[x] != bb.ids[x] {
				t.Fatalf("bucket %d member %d: id %d vs %d", bi, x, ba.ids[x], bb.ids[x])
			}
		}
		if a.CumWeight(bi) != b.CumWeight(bi) {
			t.Fatalf("bucket %d: cum %d vs %d", bi, a.CumWeight(bi), b.CumWeight(bi))
		}
	}
	for i := 0; i < a.N(); i++ {
		key := a.KeyOf(i)
		ia := a.BucketIDs(key)
		ib := b.BucketIDs(key)
		if len(ia) == 0 || len(ia) != len(ib) || ia[0] != ib[0] {
			t.Fatalf("lookup of key of vector %d disagrees", i)
		}
	}
}

// TestParallelBuild64MatchesSerial: the shard-parallel narrow-mode builder
// must be byte-identical to the workers=1 path for the same keys.
func TestParallelBuild64MatchesSerial(t *testing.T) {
	rng := xrand.New(401)
	for _, n := range []int{1, 7, 100, buildChunk - 1, buildChunk + 1, 3 * buildChunk} {
		keys := make([]uint64, n)
		for i := range keys {
			// ~n/3 distinct values so buckets have real membership lists.
			keys[i] = rng.Uint64n(uint64(n)/3 + 1)
		}
		serial := buildTable64(append([]uint64(nil), keys...), 8, 0, 1, 1)
		for _, workers := range []int{2, 3, 8} {
			par := buildTable64(append([]uint64(nil), keys...), 8, 0, 1, workers)
			tablesEqual(t, serial, par)
		}
	}
}

// TestParallelBuildStrMatchesSerial mirrors the wide-mode path.
func TestParallelBuildStrMatchesSerial(t *testing.T) {
	rng := xrand.New(403)
	n := 2*buildChunk + 17
	vals := make([]uint64, 70)
	keys := make([]string, n)
	for i := range keys {
		for j := range vals {
			vals[j] = 0
		}
		// A couple of low-entropy slots so keys collide into shared buckets.
		vals[0] = rng.Uint64n(40)
		vals[69] = rng.Uint64n(7)
		keys[i] = packKey(vals, 1)
	}
	serial := buildTableStr(append([]string(nil), keys...), 70, 0, 1, 1)
	for _, workers := range []int{2, 8} {
		par := buildTableStr(append([]string(nil), keys...), 70, 0, 1, workers)
		tablesEqual(t, serial, par)
	}
}

// TestParallelBuildFirstAppearanceOrder pins the bucket-order contract the
// samplers rely on: order[i] buckets appear by ascending first member id.
func TestParallelBuildFirstAppearanceOrder(t *testing.T) {
	rng := xrand.New(405)
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64n(700)
	}
	tab := buildTable64(keys, 8, 0, 1, 4)
	prev := int32(-1)
	for bi, b := range collectBuckets(tab) {
		if len(b.ids) == 0 {
			t.Fatalf("bucket %d empty", bi)
		}
		if b.ids[0] <= prev {
			t.Fatalf("bucket %d: first id %d not after %d", bi, b.ids[0], prev)
		}
		prev = b.ids[0]
	}
}

// TestBuildThroughIndexMatchesForcedWorkers: a real SimHash build (which
// routes through newTable64 with auto worker count) matches an explicitly
// serial table construction of the same signatures.
func TestBuildThroughIndexMatchesForcedWorkers(t *testing.T) {
	data := randData(6000, 800, 10, 407)
	fam := NewSimHash(408)
	snap, err := BuildSnapshot(data, fam, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	sigs := newEngine(fam, 16, 2, SignConfig{}).sign(data)
	for ti := 0; ti < 2; ti++ {
		serial := buildTable64(sigs.u64[ti], 16, ti*16, 1, 1)
		tablesEqual(t, serial, snap.Table(ti))
	}
}
