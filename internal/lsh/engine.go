package lsh

import (
	"runtime"
	"sync"

	"lshjoin/internal/kernel"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// SignConfig tunes how the batch engine signs a corpus. The zero value is
// the default build: float64 projections, fused single-pass cache with a
// 64 MiB panel budget — and produces signatures byte-identical to the naive
// Family.Hash path.
type SignConfig struct {
	// Float32 switches SimHash projection caching and accumulation to the
	// float32 lane: half the cache footprint and bandwidth, at the cost of
	// occasional sign flips on near-orthogonal vectors (and therefore
	// different — not worse, just different — signatures than the float64
	// lane). MinHash and generic families ignore it (integer pipelines).
	Float32 bool

	// PanelBytes caps the resident projection cache. When the fused cache
	// (|vocab| · ℓ·k · lane bytes) would exceed it, the engine signs in
	// dimension-block panels instead of one resident cache: vocabulary rows
	// are sorted by dimension and vectors keep a cursor, so accumulation
	// order — and output — is identical to the fused pass. 0 means the
	// 64 MiB default; negative is rejected by the public options layer.
	PanelBytes int
}

const defaultPanelBytes = 64 << 20

// panelRows returns how many vocabulary rows fit the panel budget at the
// given lane width.
func (e *engine) panelRows(elemBytes int) int {
	pb := e.cfg.PanelBytes
	if pb <= 0 {
		pb = defaultPanelBytes
	}
	pr := pb / (e.lk * elemBytes)
	if pr < 1 {
		pr = 1
	}
	return pr
}

// engine computes bucket keys for whole batches of vectors at once. The
// naive path — Family.Hash per (vector, function) — recomputes every keyed
// gaussian / keyed hash once per vector that touches a dimension, an
// O(n·ℓ·k·nnz) bill dominated by the keyed-stream evaluations. The engine
// flips the loop to dimension-major order and fuses all ℓ tables: one
// vocabulary pass assigns each distinct dimension a dense row, one fill pass
// materializes the fused ℓ·k-wide keyed-stream row of every dimension
// exactly once (xrand.FillGaussRow / FillHashRow, batched and inlined), and
// one signing pass folds each vector's entries into all ℓ·k accumulators via
// the unrolled kernels in internal/kernel. Corpora that reuse dimensions
// (any Zipfian vocabulary) pay the expensive keyed streams only once per
// dimension, and the fused layout touches the corpus once instead of ℓ
// times.
//
// When the fused cache would exceed SignConfig.PanelBytes the engine streams
// dimension-block panels instead: vocabulary rows are renumbered in
// ascending dimension order (so each vector's row indices are monotone) and
// a per-vector cursor consumes entries panel by panel, preserving the exact
// per-lane accumulation order of the fused pass.
//
// The engine is an internal optimization, not a semantic change: in the
// default float64 lane it produces keys byte-identical to the Family.Hash +
// packKey path for every family and for both the fused and panel schedules
// (engine_test.go enforces this), because cached rows come from the same
// keyed streams and per-lane accumulation visits entries in the same order
// as the naive hash. The opt-in float32 lane is the one documented
// exception: it rounds projections to float32 and so defines its own —
// internally consistent — signature function.
type engine struct {
	fam    Family
	k, ell int
	lk     int // ell * k, the fused row width
	bits   int
	narrow bool
	cfg    SignConfig

	// Kernels are selected once at construction (build tags pick the
	// unrolled or purego bodies); the engine only ever calls through these.
	f64MulAdd     func(dst, row []float64, w float64)
	f64MulAdd2    func(dst, r1, r2 []float64, w1, w2 float64)
	f64MulAdd4    func(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64)
	f64MulAddSet  func(dst, row []float64, w float64)
	f64MulAdd2Set func(dst, r1, r2 []float64, w1, w2 float64)
	f64MulAdd4Set func(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64)
	f32MulAdd     func(dst, row []float32, w float32)
	f32MulAdd2    func(dst, r1, r2 []float32, w1, w2 float32)
	f32MulAdd4    func(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32)
	f32MulAddSet  func(dst, row []float32, w float32)
	f32MulAdd2Set func(dst, r1, r2 []float32, w1, w2 float32)
	f32MulAdd4Set func(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32)
	u64Min        func(dst, row []uint64)
	u64Min2       func(dst, r1, r2 []uint64)
}

// signatures holds per-table bucket keys for a batch of vectors: u64 in
// narrow mode (k·bits ≤ 64), canonical packed strings otherwise.
type signatures struct {
	narrow bool
	u64    [][]uint64 // [table][vector]
	str    [][]string
}

func newEngine(fam Family, k, ell int, cfg SignConfig) *engine {
	return &engine{
		fam:           fam,
		k:             k,
		ell:           ell,
		lk:            ell * k,
		bits:          fam.Bits(),
		narrow:        isNarrow(k, fam.Bits()),
		cfg:           cfg,
		f64MulAdd:     kernel.F64MulAdd,
		f64MulAdd2:    kernel.F64MulAdd2,
		f64MulAdd4:    kernel.F64MulAdd4,
		f64MulAddSet:  kernel.F64MulAddSet,
		f64MulAdd2Set: kernel.F64MulAdd2Set,
		f64MulAdd4Set: kernel.F64MulAdd4Set,
		f32MulAdd:     kernel.F32MulAdd,
		f32MulAdd2:    kernel.F32MulAdd2,
		f32MulAdd4:    kernel.F32MulAdd4,
		f32MulAddSet:  kernel.F32MulAddSet,
		f32MulAdd2Set: kernel.F32MulAdd2Set,
		f32MulAdd4Set: kernel.F32MulAdd4Set,
		u64Min:        kernel.U64Min,
		u64Min2:       kernel.U64Min2,
	}
}

// newSignatures allocates the per-table key slices for n vectors. These are
// never pooled: tables retain them as their key columns.
func (e *engine) newSignatures(n int) *signatures {
	s := &signatures{narrow: e.narrow}
	if e.narrow {
		s.u64 = make([][]uint64, e.ell)
		for t := range s.u64 {
			s.u64[t] = make([]uint64, n)
		}
		return s
	}
	s.str = make([][]string, e.ell)
	for t := range s.str {
		s.str[t] = make([]string, n)
	}
	return s
}

// table builds table t from the signatures.
func (s *signatures) table(t, k, fnBase, bits int) *Table {
	if s.narrow {
		return newTable64(s.u64[t], k, fnBase, bits)
	}
	return newTableStr(s.str[t], k, fnBase, bits)
}

// sign computes the bucket key of every vector in every table. The result is
// deterministic and independent of GOMAXPROCS: workers write disjoint,
// index-addressed slots, and all cached values are pure functions of
// (seed, fn, dim).
func (e *engine) sign(data []vecmath.Vector) *signatures {
	sigs := e.newSignatures(len(data))
	if len(data) == 0 {
		return sigs
	}
	switch f := e.fam.(type) {
	case SimHash:
		e.signSimHash(f, data, sigs)
	case MinHash:
		e.signMinHash(f, data, sigs)
	default:
		e.signGeneric(data, sigs)
	}
	return sigs
}

// SignDigest signs data with the batch engine and folds every produced key
// into a 64-bit FNV-style checksum. It exists for benchmarks and profiling:
// it exercises exactly the signing path Build uses — vocabulary, fill,
// accumulate, pack — without paying for table construction.
func SignDigest(data []vecmath.Vector, family Family, k, ell int, cfg SignConfig) uint64 {
	sigs := newEngine(family, k, ell, cfg).sign(data)
	h := uint64(14695981039346656037)
	if sigs.narrow {
		for _, col := range sigs.u64 {
			for _, w := range col {
				h = (h ^ w) * 1099511628211
			}
		}
		return h
	}
	for _, col := range sigs.str {
		for _, s := range col {
			for i := 0; i < len(s); i++ {
				h = (h ^ uint64(s[i])) * 1099511628211
			}
		}
	}
	return h
}

// vocab is the batch vocabulary: every distinct dimension gets a dense row
// index (first-appearance order in the fused schedule; ascending-dimension
// order after sortByDim), and each vector's entries are pre-translated to
// row indices so the signing loops never touch a dimension lookup.
type vocab struct {
	dims   []uint32  // row -> dimension
	rowIdx [][]int32 // per vector: row index of each entry, aligned with Entries()

	backing []int32 // pooled storage behind rowIdx, returned by release
}

// release returns the vocabulary's pooled buffers. The vocab (and every
// rowIdx slice) must not be used afterwards.
func (v *vocab) release() {
	putU32(v.dims)
	putI32(v.backing)
}

// vocabulary builds the batch vocabulary in one pass. When the dimension
// space is small relative to the batch it uses a flat lookup table instead
// of a map (DBLP-shaped corpora live here; the cutoff bounds LUT memory by a
// small multiple of the batch itself). The map path is pre-sized from the
// batch NNZ so growth never rehashes.
func vocabulary(data []vecmath.Vector) *vocab {
	var maxDim uint32
	total := 0
	for _, v := range data {
		if d := v.MaxDim(); d > maxDim {
			maxDim = d
		}
		total += v.NNZ()
	}
	// Distinct dimensions never exceed total entries, so a total-capacity
	// dims buffer (pooled, like the rowIdx backing) can't reallocate.
	voc := &vocab{rowIdx: make([][]int32, len(data))}
	voc.dims = getU32(total)[:0]
	voc.backing = getI32(total)
	backing := voc.backing
	if int64(maxDim) <= 8*int64(total)+4096 && total < lutRowMax {
		lut := getLUT(int(maxDim))
		defer putLUT(lut)
		slots := lut.slots
		tag := lut.epoch << 24
		for i, v := range data {
			es := v.Entries()
			ri := backing[:len(es):len(es)]
			backing = backing[len(es):]
			for e, en := range es {
				var r int32
				if s := slots[en.Dim]; s>>24 == lut.epoch {
					r = int32(s&lutRowMax) - 1
				} else {
					r = int32(len(voc.dims))
					voc.dims = append(voc.dims, en.Dim)
					slots[en.Dim] = tag | uint32(len(voc.dims))
				}
				ri[e] = r
			}
			voc.rowIdx[i] = ri
		}
		return voc
	}
	rows := make(map[uint32]int32, total)
	for i, v := range data {
		es := v.Entries()
		ri := backing[:len(es):len(es)]
		backing = backing[len(es):]
		for e, en := range es {
			r, ok := rows[en.Dim]
			if !ok {
				r = int32(len(voc.dims))
				rows[en.Dim] = r
				voc.dims = append(voc.dims, en.Dim)
			}
			ri[e] = r
		}
		voc.rowIdx[i] = ri
	}
	return voc
}

// sortByDim renumbers vocabulary rows in ascending dimension order (LSD
// radix sort, deterministic) and rewrites every vector's row indices. Since
// vector entries are dimension-sorted, each rowIdx slice becomes monotone
// non-decreasing afterwards — the invariant the panel-streamed schedules
// need so a per-vector cursor can consume entries in order across panels.
func (v *vocab) sortByDim() {
	rows := len(v.dims)
	if rows < 2 {
		return
	}
	dims := v.dims
	tmpD := make([]uint32, rows)
	old := make([]int32, rows)
	tmpO := make([]int32, rows)
	for i := range old {
		old[i] = int32(i)
	}
	var counts [1 << 11]int32
	for shift := uint(0); shift < 32; shift += 11 {
		for i := range counts {
			counts[i] = 0
		}
		for _, d := range dims {
			counts[(d>>shift)&2047]++
		}
		sum := int32(0)
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for i, d := range dims {
			dig := (d >> shift) & 2047
			p := counts[dig]
			counts[dig] = p + 1
			tmpD[p] = d
			tmpO[p] = old[i]
		}
		dims, tmpD = tmpD, dims
		old, tmpO = tmpO, old
	}
	newOf := tmpO // free after the passes; reuse as old-row -> new-row map
	for p, o := range old {
		newOf[o] = int32(p)
	}
	v.dims = dims
	for _, ri := range v.rowIdx {
		for m := range ri {
			ri[m] = newOf[ri[m]]
		}
	}
}

// Scratch pools recycle the large signing buffers — projection / rank caches
// and fused accumulators — across builds and insert batches, which removes
// the allocator's page-zeroing from the hot path. Contents are undefined on
// get; every user either fully overwrites or explicitly resets. Signature
// key slices are never pooled (tables retain them).
var (
	f64Pool sync.Pool
	f32Pool sync.Pool
	u64Pool sync.Pool
	i32Pool sync.Pool
	u32Pool sync.Pool
)

func getF64(n int) []float64 {
	if p, _ := f64Pool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}
func putF64(s []float64) { f64Pool.Put(&s) }

func getF32(n int) []float32 {
	if p, _ := f32Pool.Get().(*[]float32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float32, n)
}
func putF32(s []float32) { f32Pool.Put(&s) }

func getU64(n int) []uint64 {
	if p, _ := u64Pool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint64, n)
}
func putU64(s []uint64) { u64Pool.Put(&s) }

func getI32(n int) []int32 {
	if p, _ := i32Pool.Get().(*[]int32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}
func putI32(s []int32) { i32Pool.Put(&s) }

func getU32(n int) []uint32 {
	if p, _ := u32Pool.Get().(*[]uint32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint32, n)
}
func putU32(s []uint32) { u32Pool.Put(&s) }

// dimLUT is the pooled dimension-to-row lookup table. Each slot holds the
// owner's epoch in the high 8 bits and row+1 in the low 24, so reusing the
// table only needs an epoch bump — stale slots from earlier builds fail the
// tag compare. A real clear happens once every 255 reuses (and for the zeroed
// memory of a fresh allocation, whose tag 0 never matches a live epoch).
type dimLUT struct {
	epoch uint32
	slots []uint32
}

// lutRowMax bounds row+1 to the 24 bits a slot can hold; vocabularies at
// least this large take the map path instead.
const lutRowMax = 1<<24 - 1

var lutPool sync.Pool

func getLUT(n int) *dimLUT {
	l, _ := lutPool.Get().(*dimLUT)
	if l == nil || cap(l.slots) < n {
		l = &dimLUT{slots: make([]uint32, n)}
	}
	l.slots = l.slots[:n]
	l.epoch++
	if l.epoch == 256 {
		l.epoch = 1
		clear(l.slots[:cap(l.slots)])
	}
	return l
}

func putLUT(l *dimLUT) { lutPool.Put(l) }

// parallelChunks invokes fn over [0, n) split into contiguous chunks, one
// per available CPU. fn must only write to slots in its own range.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// lane constrains the SimHash projection element type: float64 (default,
// byte-identical to the naive path) or float32 (opt-in half-width lane).
type lane interface {
	~float32 | ~float64
}

// packSim packs one vector's fused sign bits into every table's key slot.
// dots holds all ℓ·k accumulators, table-major.
func packSim[F lane](e *engine, sigs *signatures, i int, dots []F, vals []uint64) {
	k := e.k
	if sigs.narrow {
		for t := 0; t < e.ell; t++ {
			var word uint64
			for _, dot := range dots[t*k : (t+1)*k] {
				word <<= 1
				if dot >= 0 {
					word |= 1
				}
			}
			sigs.u64[t][i] = word
		}
		return
	}
	for t := 0; t < e.ell; t++ {
		for j, dot := range dots[t*k : (t+1)*k] {
			if dot >= 0 {
				vals[j] = 1
			} else {
				vals[j] = 0
			}
		}
		sigs.str[t][i] = packKey(vals, 1)
	}
}

// signSimHash signs the batch against a fused ℓ·k-wide hyperplane cache:
// proj[row·ℓk + t·k + j] = a_{t·k+j}[dim(row)]. One vocabulary, one fill
// pass, one accumulate pass for all tables. Per-lane accumulation order
// equals the naive SimHash.Hash entry order (the paired kernel folds
// (dst + w1·r1) + w2·r2 in exactly that association), so float64 dot
// products — and their signs — are bit-identical to the per-vector path.
func (e *engine) signSimHash(f SimHash, data []vecmath.Vector, sigs *signatures) {
	voc := vocabulary(data)
	defer voc.release()
	streams := make([]xrand.GaussStream, e.lk)
	for fn := range streams {
		streams[fn] = xrand.NewGaussStream(f.seed, uint64(fn))
	}
	if e.cfg.Float32 {
		signSimLane[float32](e, data, voc, streams, sigs, xrand.FillGaussRows32,
			simKernels[float32]{e.f32MulAdd, e.f32MulAdd2, e.f32MulAdd4, e.f32MulAddSet, e.f32MulAdd2Set, e.f32MulAdd4Set},
			getF32, putF32, e.panelRows(4))
		return
	}
	signSimLane[float64](e, data, voc, streams, sigs, xrand.FillGaussRows,
		simKernels[float64]{e.f64MulAdd, e.f64MulAdd2, e.f64MulAdd4, e.f64MulAddSet, e.f64MulAdd2Set, e.f64MulAdd4Set},
		getF64, putF64, e.panelRows(8))
}

// simKernels bundles one lane's multiply-add kernels: fold variants
// accumulate into dst, Set variants overwrite it on a vector's first fold so
// accumulators never need clearing.
type simKernels[F lane] struct {
	mulAdd     func(dst, row []F, w F)
	mulAdd2    func(dst, r1, r2 []F, w1, w2 F)
	mulAdd4    func(dst, r1, r2, r3, r4 []F, w1, w2, w3, w4 F)
	mulAddSet  func(dst, row []F, w F)
	mulAdd2Set func(dst, r1, r2 []F, w1, w2 F)
	mulAdd4Set func(dst, r1, r2, r3, r4 []F, w1, w2, w3, w4 F)
}

// simEmpty returns the signature of an empty vector: every dot is zero, so
// every sign bit is 1.
func (e *engine) simEmpty(narrow bool) (word uint64, key string) {
	if narrow {
		return ^uint64(0) >> (64 - uint(e.k)), ""
	}
	ones := make([]uint64, e.k)
	for j := range ones {
		ones[j] = 1
	}
	return 0, packKey(ones, 1)
}

// signSimLane is the lane-generic SimHash schedule: fused single-pass when
// the whole projection cache fits the panel budget, panel-streamed
// otherwise. Both schedules fold each vector's entries in entry order per
// lane, so they produce identical output for a given lane type.
func signSimLane[F lane](
	e *engine, data []vecmath.Vector, voc *vocab, streams []xrand.GaussStream, sigs *signatures,
	fill func(dst []F, streams []xrand.GaussStream, dims []uint32),
	kn simKernels[F],
	grab func(int) []F, drop func([]F),
	panelRows int,
) {
	lk := e.lk
	rows := len(voc.dims)
	n := len(data)
	emptyWord, emptyKey := e.simEmpty(sigs.narrow)
	storeEmpty := func(i int) {
		if sigs.narrow {
			for t := 0; t < e.ell; t++ {
				sigs.u64[t][i] = emptyWord
			}
			return
		}
		for t := 0; t < e.ell; t++ {
			sigs.str[t][i] = emptyKey
		}
	}

	if panelRows >= rows {
		// Fused single pass: the whole cache is resident.
		proj := grab(rows * lk)
		defer drop(proj)
		parallelChunks(rows, func(lo, hi int) {
			fill(proj[lo*lk:hi*lk], streams, voc.dims[lo:hi])
		})
		parallelChunks(n, func(lo, hi int) {
			dots := make([]F, lk)
			var vals []uint64
			if !sigs.narrow {
				vals = make([]uint64, e.k)
			}
			for i := lo; i < hi; i++ {
				es := data[i].Entries()
				ri := voc.rowIdx[i]
				if len(ri) == 0 {
					storeEmpty(i)
					continue
				}
				c := 0
				if len(ri) >= 4 {
					b1, b2 := int(ri[0])*lk, int(ri[1])*lk
					b3, b4 := int(ri[2])*lk, int(ri[3])*lk
					kn.mulAdd4Set(dots, proj[b1:b1+lk], proj[b2:b2+lk], proj[b3:b3+lk], proj[b4:b4+lk],
						F(es[0].Weight), F(es[1].Weight), F(es[2].Weight), F(es[3].Weight))
					for c = 4; c+4 <= len(ri); c += 4 {
						b1, b2 = int(ri[c])*lk, int(ri[c+1])*lk
						b3, b4 = int(ri[c+2])*lk, int(ri[c+3])*lk
						kn.mulAdd4(dots, proj[b1:b1+lk], proj[b2:b2+lk], proj[b3:b3+lk], proj[b4:b4+lk],
							F(es[c].Weight), F(es[c+1].Weight), F(es[c+2].Weight), F(es[c+3].Weight))
					}
				}
				if c+2 <= len(ri) {
					b1, b2 := int(ri[c])*lk, int(ri[c+1])*lk
					if c == 0 {
						kn.mulAdd2Set(dots, proj[b1:b1+lk], proj[b2:b2+lk], F(es[c].Weight), F(es[c+1].Weight))
					} else {
						kn.mulAdd2(dots, proj[b1:b1+lk], proj[b2:b2+lk], F(es[c].Weight), F(es[c+1].Weight))
					}
					c += 2
				}
				if c < len(ri) {
					b := int(ri[c]) * lk
					if c == 0 {
						kn.mulAddSet(dots, proj[b:b+lk], F(es[c].Weight))
					} else {
						kn.mulAdd(dots, proj[b:b+lk], F(es[c].Weight))
					}
				}
				packSim(e, sigs, i, dots, vals)
			}
		})
		return
	}

	// Panel-streamed: renumber rows by dimension so per-vector row indices
	// are monotone, then sweep dimension-block panels with persistent
	// accumulators and per-vector cursors. A vector's first fold (cursor 0)
	// uses the Set kernels, so the pooled accumulator block never needs
	// clearing.
	voc.sortByDim()
	dots := grab(n * lk)
	defer drop(dots)
	cur := getI32(n)
	defer putI32(cur)
	for j := range cur {
		cur[j] = 0
	}
	proj := grab(panelRows * lk)
	defer drop(proj)
	for r0 := 0; r0 < rows; r0 += panelRows {
		r1 := r0 + panelRows
		if r1 > rows {
			r1 = rows
		}
		parallelChunks(r1-r0, func(lo, hi int) {
			fill(proj[lo*lk:hi*lk], streams, voc.dims[r0+lo:r0+hi])
		})
		lim := int32(r1)
		parallelChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := voc.rowIdx[i]
				c := int(cur[i])
				if c >= len(ri) || ri[c] >= lim {
					continue
				}
				es := data[i].Entries()
				d := dots[i*lk : i*lk+lk]
				if c == 0 {
					if len(ri) >= 2 && ri[1] < lim {
						b1 := (int(ri[0]) - r0) * lk
						b2 := (int(ri[1]) - r0) * lk
						kn.mulAdd2Set(d, proj[b1:b1+lk], proj[b2:b2+lk], F(es[0].Weight), F(es[1].Weight))
						c = 2
					} else {
						b := (int(ri[0]) - r0) * lk
						kn.mulAddSet(d, proj[b:b+lk], F(es[0].Weight))
						c = 1
					}
				}
				for c+2 <= len(ri) && ri[c+1] < lim {
					b1 := (int(ri[c]) - r0) * lk
					b2 := (int(ri[c+1]) - r0) * lk
					kn.mulAdd2(d, proj[b1:b1+lk], proj[b2:b2+lk], F(es[c].Weight), F(es[c+1].Weight))
					c += 2
				}
				if c < len(ri) && ri[c] < lim {
					b := (int(ri[c]) - r0) * lk
					kn.mulAdd(d, proj[b:b+lk], F(es[c].Weight))
					c++
				}
				cur[i] = int32(c)
			}
		})
	}
	parallelChunks(n, func(lo, hi int) {
		var vals []uint64
		if !sigs.narrow {
			vals = make([]uint64, e.k)
		}
		for i := lo; i < hi; i++ {
			if len(voc.rowIdx[i]) == 0 {
				storeEmpty(i)
				continue
			}
			packSim(e, sigs, i, dots[i*lk:i*lk+lk], vals)
		}
	})
}

// signOne32 evaluates the float32 SimHash lane for a single vector,
// matching the batch engine bit for bit: per function, float32 keyed-stream
// values times float32 weights, accumulated in float32 in entry order.
// Snapshot.hashInto routes here when the snapshot was signed in the float32
// lane, so single-vector inserts and lookups agree with the batch build.
func signOne32(f SimHash, base, k int, v vecmath.Vector, vals []uint64) {
	es := v.Entries()
	for j := 0; j < k; j++ {
		st := xrand.NewGaussStream(f.seed, uint64(base+j))
		var dot float32
		for _, en := range es {
			dot += en.Weight * float32(st.At(uint64(en.Dim)))
		}
		if dot >= 0 {
			vals[j] = 1
		} else {
			vals[j] = 0
		}
	}
}

// minhashEmpty precomputes the per-table sentinel key shared by empty
// vectors: per function, hash64(seed, fn, ^0) truncated to Bits().
func (e *engine) minhashEmpty(f MinHash, sigs *signatures) (words []uint64, keys []string) {
	shift := uint(64 - f.bits)
	vals := make([]uint64, e.k)
	if sigs.narrow {
		words = make([]uint64, e.ell)
	} else {
		keys = make([]string, e.ell)
	}
	for t := 0; t < e.ell; t++ {
		fnBase := uint64(t * e.k)
		for j := 0; j < e.k; j++ {
			vals[j] = hash64(f.seed, fnBase+uint64(j), ^uint64(0)) >> shift
		}
		if sigs.narrow {
			words[t] = packWord(vals, f.bits)
		} else {
			keys[t] = packKey(vals, f.bits)
		}
	}
	return
}

// packMin packs one vector's fused minima into every table's key slot.
func (e *engine) packMin(f MinHash, sigs *signatures, i int, best []uint64, vals []uint64) {
	k := e.k
	shift := uint(64 - f.bits)
	if sigs.narrow {
		for t := 0; t < e.ell; t++ {
			var word uint64
			for _, b := range best[t*k : (t+1)*k] {
				word = word<<uint(f.bits) | b>>shift
			}
			sigs.u64[t][i] = word
		}
		return
	}
	for t := 0; t < e.ell; t++ {
		for j, b := range best[t*k : (t+1)*k] {
			vals[j] = b >> shift
		}
		sigs.str[t][i] = packKey(vals, f.bits)
	}
}

// signMinHash signs the batch against a fused ℓ·k-wide rank cache
// rank[row·ℓk + t·k + j] = hash64(seed, t·k+j, dim(row)); each vector takes
// elementwise minima over its entries (order-independent, so trivially
// identical to the naive path) and truncates to Bits(). Falls back to the
// panel-streamed schedule when the cache exceeds the panel budget.
func (e *engine) signMinHash(f MinHash, data []vecmath.Vector, sigs *signatures) {
	voc := vocabulary(data)
	defer voc.release()
	lk := e.lk
	rows := len(voc.dims)
	n := len(data)
	streams := make([]xrand.HashStream, lk)
	for fn := range streams {
		streams[fn] = xrand.NewHashStream(f.seed, uint64(fn))
	}
	emptyWords, emptyKeys := e.minhashEmpty(f, sigs)
	storeEmpty := func(i int) {
		if sigs.narrow {
			for t := 0; t < e.ell; t++ {
				sigs.u64[t][i] = emptyWords[t]
			}
			return
		}
		for t := 0; t < e.ell; t++ {
			sigs.str[t][i] = emptyKeys[t]
		}
	}

	panelRows := e.panelRows(8)
	if panelRows >= rows {
		rank := getU64(rows * lk)
		defer putU64(rank)
		parallelChunks(rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				xrand.FillHashRow(rank[r*lk:r*lk+lk], streams, uint64(voc.dims[r]))
			}
		})
		parallelChunks(n, func(lo, hi int) {
			best := make([]uint64, lk)
			vals := make([]uint64, e.k)
			for i := lo; i < hi; i++ {
				ri := voc.rowIdx[i]
				if len(ri) == 0 {
					storeEmpty(i)
					continue
				}
				for j := range best {
					best[j] = ^uint64(0)
				}
				c := 0
				for ; c+2 <= len(ri); c += 2 {
					b1 := int(ri[c]) * lk
					b2 := int(ri[c+1]) * lk
					e.u64Min2(best, rank[b1:b1+lk], rank[b2:b2+lk])
				}
				if c < len(ri) {
					b := int(ri[c]) * lk
					e.u64Min(best, rank[b:b+lk])
				}
				e.packMin(f, sigs, i, best, vals)
			}
		})
		return
	}

	// Panel-streamed minima: same cursor sweep as SimHash, min instead of
	// multiply-add (order-irrelevant, but the sweep keeps it anyway).
	voc.sortByDim()
	best := getU64(n * lk)
	defer putU64(best)
	for j := range best {
		best[j] = ^uint64(0)
	}
	cur := getI32(n)
	defer putI32(cur)
	for j := range cur {
		cur[j] = 0
	}
	rank := getU64(panelRows * lk)
	defer putU64(rank)
	for r0 := 0; r0 < rows; r0 += panelRows {
		r1 := r0 + panelRows
		if r1 > rows {
			r1 = rows
		}
		parallelChunks(r1-r0, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				xrand.FillHashRow(rank[r*lk:r*lk+lk], streams, uint64(voc.dims[r0+r]))
			}
		})
		lim := int32(r1)
		parallelChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := voc.rowIdx[i]
				c := int(cur[i])
				if c >= len(ri) || ri[c] >= lim {
					continue
				}
				b := best[i*lk : i*lk+lk]
				for c+2 <= len(ri) && ri[c+1] < lim {
					b1 := (int(ri[c]) - r0) * lk
					b2 := (int(ri[c+1]) - r0) * lk
					e.u64Min2(b, rank[b1:b1+lk], rank[b2:b2+lk])
					c += 2
				}
				if c < len(ri) && ri[c] < lim {
					bb := (int(ri[c]) - r0) * lk
					e.u64Min(b, rank[bb:bb+lk])
					c++
				}
				cur[i] = int32(c)
			}
		})
	}
	parallelChunks(n, func(lo, hi int) {
		vals := make([]uint64, e.k)
		for i := lo; i < hi; i++ {
			if len(voc.rowIdx[i]) == 0 {
				storeEmpty(i)
				continue
			}
			e.packMin(f, sigs, i, best[i*lk:i*lk+lk], vals)
		}
	})
}

// signGeneric signs the batch through Family.Hash — no dimension cache, but
// one worker spawn covers all ℓ tables, parallel across vectors and
// allocation-free in narrow mode. All family implementations not known to
// the engine take this path.
func (e *engine) signGeneric(data []vecmath.Vector, sigs *signatures) {
	k := e.k
	parallelChunks(len(data), func(lo, hi int) {
		vals := make([]uint64, k)
		for i := lo; i < hi; i++ {
			for t := 0; t < e.ell; t++ {
				base := t * k
				for j := 0; j < k; j++ {
					vals[j] = e.fam.Hash(base+j, data[i])
				}
				if sigs.narrow {
					sigs.u64[t][i] = packWord(vals, e.bits)
				} else {
					sigs.str[t][i] = packKey(vals, e.bits)
				}
			}
		}
	})
}
