package lsh

import (
	"runtime"
	"sync"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// engine computes bucket keys for whole batches of vectors at once. The
// naive path — Family.Hash per (vector, function) — recomputes every keyed
// gaussian / keyed hash once per vector that touches a dimension, an
// O(n·ℓ·k·nnz) bill dominated by the keyed-stream evaluations. The engine
// flips the loop to dimension-major order: for each table it materializes
// the ℓ·k keyed-stream rows of every distinct dimension in the batch exactly
// once (O(|vocab|·ℓ·k) stream evaluations), then signs vectors by streaming
// their entries against the cached rows with plain multiply-adds or min
// scans. Corpora that reuse dimensions (any Zipfian vocabulary) pay the
// expensive keyed streams only once per dimension.
//
// The engine is an internal optimization, not a semantic change: for every
// family it produces keys byte-identical to the Family.Hash + packKey path
// (engine_test.go enforces this), because cached rows come from the same
// keyed streams and per-vector accumulation visits entries in the same
// order as the naive hash.
type engine struct {
	fam    Family
	k, ell int
	bits   int
	narrow bool
}

// signatures holds per-table bucket keys for a batch of vectors: u64 in
// narrow mode (k·bits ≤ 64), canonical packed strings otherwise.
type signatures struct {
	narrow bool
	u64    [][]uint64 // [table][vector]
	str    [][]string
}

func newEngine(fam Family, k, ell int) *engine {
	return &engine{fam: fam, k: k, ell: ell, bits: fam.Bits(), narrow: isNarrow(k, fam.Bits())}
}

// newSignatures allocates the per-table key slices for n vectors.
func (e *engine) newSignatures(n int) *signatures {
	s := &signatures{narrow: e.narrow}
	if e.narrow {
		s.u64 = make([][]uint64, e.ell)
		for t := range s.u64 {
			s.u64[t] = make([]uint64, n)
		}
		return s
	}
	s.str = make([][]string, e.ell)
	for t := range s.str {
		s.str[t] = make([]string, n)
	}
	return s
}

// table builds table t from the signatures.
func (s *signatures) table(t, k, fnBase, bits int) *Table {
	if s.narrow {
		return newTable64(s.u64[t], k, fnBase, bits)
	}
	return newTableStr(s.str[t], k, fnBase, bits)
}

// sign computes the bucket key of every vector in every table. The result is
// deterministic and independent of GOMAXPROCS: workers write disjoint,
// index-addressed slots, and all cached values are pure functions of
// (seed, fn, dim).
func (e *engine) sign(data []vecmath.Vector) *signatures {
	sigs := e.newSignatures(len(data))
	if len(data) == 0 {
		return sigs
	}
	switch f := e.fam.(type) {
	case SimHash:
		e.signSimHash(f, data, sigs)
	case MinHash:
		e.signMinHash(f, data, sigs)
	default:
		e.signGeneric(data, sigs)
	}
	return sigs
}

// vocab is the batch vocabulary: every distinct dimension gets a dense row
// index (first-appearance order — nothing downstream depends on it), and
// each vector's entries are pre-translated to row indices so the signing
// loops never touch a dimension lookup.
type vocab struct {
	dims   []uint32  // row -> dimension
	rowIdx [][]int32 // per vector: row index of each entry, aligned with Entries()
}

// vocabulary builds the batch vocabulary in one pass. When the dimension
// space is small relative to the batch it uses a flat lookup table instead
// of a map (DBLP-shaped corpora live here; the cutoff bounds LUT memory by a
// small multiple of the batch itself).
func vocabulary(data []vecmath.Vector) *vocab {
	var maxDim uint32
	total := 0
	for _, v := range data {
		if d := v.MaxDim(); d > maxDim {
			maxDim = d
		}
		total += v.NNZ()
	}
	voc := &vocab{rowIdx: make([][]int32, len(data))}
	backing := make([]int32, total)
	if int64(maxDim) <= 8*int64(total)+4096 {
		lut := make([]int32, maxDim)
		for i := range lut {
			lut[i] = -1
		}
		for i, v := range data {
			es := v.Entries()
			ri := backing[:len(es):len(es)]
			backing = backing[len(es):]
			for e, en := range es {
				r := lut[en.Dim]
				if r < 0 {
					r = int32(len(voc.dims))
					lut[en.Dim] = r
					voc.dims = append(voc.dims, en.Dim)
				}
				ri[e] = r
			}
			voc.rowIdx[i] = ri
		}
		return voc
	}
	rows := make(map[uint32]int32)
	for i, v := range data {
		es := v.Entries()
		ri := backing[:len(es):len(es)]
		backing = backing[len(es):]
		for e, en := range es {
			r, ok := rows[en.Dim]
			if !ok {
				r = int32(len(voc.dims))
				rows[en.Dim] = r
				voc.dims = append(voc.dims, en.Dim)
			}
			ri[e] = r
		}
		voc.rowIdx[i] = ri
	}
	return voc
}

// parallelChunks invokes fn over [0, n) split into contiguous chunks, one
// per available CPU. fn must only write to slots in its own range.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// signSimHash signs the batch with cached hyperplane rows: per table, an
// ℓ·k-free projection cache proj[row·k+j] = a_{fnBase+j}[dim], then one
// multiply-add pass per vector entry. Accumulation order per function equals
// the naive SimHash.Hash entry order, so dot products (and their signs) are
// bit-identical to the per-vector path.
func (e *engine) signSimHash(f SimHash, data []vecmath.Vector, sigs *signatures) {
	voc := vocabulary(data)
	k := e.k
	proj := make([]float64, len(voc.dims)*k)
	streams := make([]xrand.GaussStream, k)
	for t := 0; t < e.ell; t++ {
		fnBase := uint64(t * k)
		for j := range streams {
			streams[j] = xrand.NewGaussStream(f.seed, fnBase+uint64(j))
		}
		parallelChunks(len(voc.dims), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				d := uint64(voc.dims[r])
				row := proj[r*k : r*k+k]
				for j := range row {
					row[j] = streams[j].At(d)
				}
			}
		})
		parallelChunks(len(data), func(lo, hi int) {
			dots := make([]float64, k)
			vals := make([]uint64, k)
			for i := lo; i < hi; i++ {
				for j := range dots {
					dots[j] = 0
				}
				es := data[i].Entries()
				for e2, r := range voc.rowIdx[i] {
					w := float64(es[e2].Weight)
					row := proj[int(r)*k : int(r)*k+k]
					for j := 0; j < k; j++ {
						dots[j] += w * row[j]
					}
				}
				if sigs.narrow {
					var word uint64
					for _, dot := range dots {
						word <<= 1
						if dot >= 0 {
							word |= 1
						}
					}
					sigs.u64[t][i] = word
				} else {
					for j, dot := range dots {
						if dot >= 0 {
							vals[j] = 1
						} else {
							vals[j] = 0
						}
					}
					sigs.str[t][i] = packKey(vals, 1)
				}
			}
		})
	}
}

// signMinHash signs the batch with cached rank rows rank[row·k+j] =
// hash64(seed, fnBase+j, dim); each vector takes the min over its entries
// per function (order-independent, so trivially identical to the naive
// path) and truncates to Bits().
func (e *engine) signMinHash(f MinHash, data []vecmath.Vector, sigs *signatures) {
	voc := vocabulary(data)
	k := e.k
	shift := uint(64 - f.bits)
	rank := make([]uint64, len(voc.dims)*k)
	vals64 := make([]uint64, k)
	streams := make([]xrand.HashStream, k)
	for t := 0; t < e.ell; t++ {
		fnBase := uint64(t * k)
		for j := range streams {
			streams[j] = xrand.NewHashStream(f.seed, fnBase+uint64(j))
		}
		parallelChunks(len(voc.dims), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				d := uint64(voc.dims[r])
				row := rank[r*k : r*k+k]
				for j := range row {
					row[j] = streams[j].At(d)
				}
			}
		})
		// Empty vectors share a per-function sentinel bucket.
		for j := 0; j < k; j++ {
			vals64[j] = hash64(f.seed, fnBase+uint64(j), ^uint64(0)) >> shift
		}
		emptyWord := uint64(0)
		emptyKey := ""
		if sigs.narrow {
			emptyWord = packWord(vals64, f.bits)
		} else {
			emptyKey = packKey(vals64, f.bits)
		}
		parallelChunks(len(data), func(lo, hi int) {
			best := make([]uint64, k)
			vals := make([]uint64, k)
			for i := lo; i < hi; i++ {
				es := data[i].Entries()
				if len(es) == 0 {
					if sigs.narrow {
						sigs.u64[t][i] = emptyWord
					} else {
						sigs.str[t][i] = emptyKey
					}
					continue
				}
				for j := range best {
					best[j] = ^uint64(0)
				}
				for _, r := range voc.rowIdx[i] {
					row := rank[int(r)*k : int(r)*k+k]
					for j := 0; j < k; j++ {
						if row[j] < best[j] {
							best[j] = row[j]
						}
					}
				}
				if sigs.narrow {
					var word uint64
					for _, b := range best {
						word = word<<uint(f.bits) | b>>shift
					}
					sigs.u64[t][i] = word
				} else {
					for j, b := range best {
						vals[j] = b >> shift
					}
					sigs.str[t][i] = packKey(vals, f.bits)
				}
			}
		})
	}
}

// signGeneric signs the batch through Family.Hash — no dimension cache, but
// still parallel across vectors and allocation-free in narrow mode. All
// family implementations not known to the engine take this path.
func (e *engine) signGeneric(data []vecmath.Vector, sigs *signatures) {
	k := e.k
	for t := 0; t < e.ell; t++ {
		base := t * k
		parallelChunks(len(data), func(lo, hi int) {
			vals := make([]uint64, k)
			for i := lo; i < hi; i++ {
				for j := 0; j < k; j++ {
					vals[j] = e.fam.Hash(base+j, data[i])
				}
				if sigs.narrow {
					sigs.u64[t][i] = packWord(vals, e.bits)
				} else {
					sigs.str[t][i] = packKey(vals, e.bits)
				}
			}
		})
	}
}
