package lsh

import (
	"fmt"
	"sync"

	"lshjoin/internal/vecmath"
)

// Index restoration for the durability layer (internal/lsh/persist). A
// persisted snapshot carries only the bucket sequences — per table, each
// bucket's canonical key and member ids in the deterministic first-appearance
// order — because everything else the Table keeps is derivable: per-vector
// keys from bucket membership, base lookup maps from the key sequence, and
// the Fenwick weight tree from the bucket sizes. Rebuilding the tree with
// newFenwick is draw-for-draw sampling-equivalent to the original: find's
// descent depends only on bucket order and sizes, and both the incremental
// grow path and the bottom-up build produce the same minimal power-of-two
// span, so a reopened table consumes the RNG stream identically.

// RestoredBucket is one decoded bucket: the canonical string key (8 bytes in
// narrow mode, 8·k bytes wide) and the ascending member ids.
type RestoredBucket struct {
	Key string
	IDs []int32
}

// RestoreIndex rebuilds a writable Index from persisted snapshot state. It
// validates everything a corrupted or adversarial file could get wrong —
// key widths, bucket order, id range, and that each table's buckets
// partition [0, len(data)) exactly — returning an error instead of ever
// panicking, so the decoder can be fuzzed end to end.
func RestoreIndex(family Family, k, ell int, version uint64, data []vecmath.Vector, tables [][]RestoredBucket) (*Index, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	if version < 1 {
		return nil, fmt.Errorf("lsh: restore: version %d < 1", version)
	}
	if len(tables) != ell {
		return nil, fmt.Errorf("lsh: restore: %d table sequences for ℓ=%d", len(tables), ell)
	}
	narrow := isNarrow(k, family.Bits())
	snap := &Snapshot{
		version: version,
		family:  family,
		k:       k,
		ell:     ell,
		narrow:  narrow,
		data:    data[:len(data):len(data)],
		tables:  make([]*Table, ell),
		pool:    &sync.Pool{},
	}
	for t := 0; t < ell; t++ {
		tab, err := restoreTable(tables[t], k, t*k, family.Bits(), narrow, len(data))
		if err != nil {
			return nil, fmt.Errorf("lsh: restore table %d: %w", t, err)
		}
		snap.tables[t] = tab
	}
	x := &Index{}
	if narrow {
		x.pend64 = make([][]uint64, ell)
	} else {
		x.pendStr = make([][]string, ell)
	}
	x.cur.Store(snap)
	return x, nil
}

// restoreTable rebuilds one table from its bucket sequence, checking that
// the sequence is in canonical form (first-appearance order, i.e. ascending
// first member id; distinct keys of the right width) and that the member
// ids strictly ascend within each bucket and cover [0, n) exactly once.
func restoreTable(seq []RestoredBucket, k, fnBase, bits int, narrow bool, n int) (*Table, error) {
	t := &Table{k: k, fnBase: fnBase, n: n, bits: bits, narrow: narrow}
	if narrow {
		t.keys64 = make([]uint64, n)
		t.base64 = make([]map[uint64]int32, tableShards)
	} else {
		t.keysStr = make([]string, n)
		t.baseStr = make([]map[string]int32, tableShards)
	}
	order := make([]*bucket, 0, len(seq))
	assigned := 0
	seen := make([]bool, n)
	lastFirst := int32(-1)
	for gi, rb := range seq {
		if len(rb.IDs) == 0 {
			return nil, fmt.Errorf("bucket %d is empty", gi)
		}
		prev := int32(-1)
		for _, id := range rb.IDs {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("bucket %d id %d outside [0, %d)", gi, id, n)
			}
			if id <= prev {
				return nil, fmt.Errorf("bucket %d ids not ascending at %d", gi, id)
			}
			if seen[id] {
				return nil, fmt.Errorf("id %d in more than one bucket", id)
			}
			seen[id] = true
			prev = id
		}
		if rb.IDs[0] <= lastFirst {
			return nil, fmt.Errorf("bucket %d out of first-appearance order", gi)
		}
		lastFirst = rb.IDs[0]
		assigned += len(rb.IDs)
		// Clamp capacity so a later merge's copy-on-write append can never
		// spill into spare capacity of the decoder's slice.
		b := &bucket{ids: rb.IDs[:len(rb.IDs):len(rb.IDs)]}
		if narrow {
			w, ok := parseKey64(rb.Key)
			if !ok {
				return nil, fmt.Errorf("bucket %d key has %d bytes (want 8)", gi, len(rb.Key))
			}
			b.key64 = w
			s := shard64(w)
			m := t.base64[s]
			if m == nil {
				m = make(map[uint64]int32)
				t.base64[s] = m
			}
			if _, dup := m[w]; dup {
				return nil, fmt.Errorf("duplicate bucket key at index %d", gi)
			}
			m[w] = int32(gi)
		} else {
			if len(rb.Key) != 8*k {
				return nil, fmt.Errorf("bucket %d key has %d bytes (want %d)", gi, len(rb.Key), 8*k)
			}
			b.keyStr = rb.Key
			s := shardStr(rb.Key)
			m := t.baseStr[s]
			if m == nil {
				m = make(map[string]int32)
				t.baseStr[s] = m
			}
			if _, dup := m[rb.Key]; dup {
				return nil, fmt.Errorf("duplicate bucket key at index %d", gi)
			}
			m[rb.Key] = int32(gi)
		}
		for _, id := range rb.IDs {
			if narrow {
				t.keys64[id] = b.key64
			} else {
				t.keysStr[id] = b.keyStr
			}
		}
		order = append(order, b)
	}
	if assigned != n {
		return nil, fmt.Errorf("buckets cover %d of %d ids", assigned, n)
	}
	t.freezeOrder(order)
	return t, nil
}
