package lsh

import (
	"sync"

	"lshjoin/internal/vecmath"
)

// Snapshot is an immutable view of an LSH index at one published version:
// ℓ frozen tables, the frozen prefix of the vector collection they cover,
// and the family that hashed them. Nothing reachable from a Snapshot is ever
// mutated after publication, so every method is safe for unsynchronized
// concurrent use, and anything holding a Snapshot — estimators, searches,
// samplers — answers over that version forever, regardless of how many
// vectors the owning Index ingests afterwards.
//
// Snapshots are cheap version objects, not copies: consecutive versions
// share bucket id slices, key arrays, base lookup maps and the subtrees of
// each table's persistent Fenwick weight index, with merges path-copying
// only what they touch (see dynamic.go and fenwick.go).
type Snapshot struct {
	version uint64
	family  Family
	k, ell  int
	narrow  bool
	sign    SignConfig // how this index signs vectors; zero = default lane
	data    []vecmath.Vector
	tables  []*Table

	// pool recycles query working state (hash scratch + epoch-stamped
	// visited array) across all versions of the owning index, so candidate
	// retrieval allocates no map per call while staying safe for concurrent
	// callers.
	pool *sync.Pool
}

// Version returns the snapshot's monotonically increasing publish version
// (1 for a freshly built index).
func (s *Snapshot) Version() uint64 { return s.version }

// Family returns the hash family the index was built with.
func (s *Snapshot) Family() Family { return s.family }

// K returns the number of hash functions per table.
func (s *Snapshot) K() int { return s.k }

// L returns the number of tables ℓ.
func (s *Snapshot) L() int { return s.ell }

// N returns the number of vectors in this version.
func (s *Snapshot) N() int { return len(s.data) }

// Data returns the version's vector collection. Callers must not modify it.
func (s *Snapshot) Data() []vecmath.Vector { return s.data }

// Table returns table t (0-based).
func (s *Snapshot) Table(t int) *Table { return s.tables[t] }

// Tables returns all ℓ tables.
func (s *Snapshot) Tables() []*Table { return s.tables }

// hashInto fills vals with the k hash values of v for table t, in the lane
// the index was signed with: indexes built in the float32 lane hash single
// vectors through the float32 accumulation path so inserts and lookups agree
// with the batch build bit for bit.
func (s *Snapshot) hashInto(t int, v vecmath.Vector, vals []uint64) {
	if s.sign.Float32 {
		if f, ok := s.family.(SimHash); ok {
			signOne32(f, t*s.k, s.k, v, vals)
			return
		}
	}
	base := t * s.k
	for j := 0; j < s.k; j++ {
		vals[j] = s.family.Hash(base+j, v)
	}
}

// KeyFor computes the bucket key of an arbitrary (possibly out-of-index)
// vector in table t, in canonical string form, for use by similarity search
// and bipartite joins. The hash scratch comes from the shared query pool,
// so only the returned key string is allocated.
func (s *Snapshot) KeyFor(t int, v vecmath.Vector) string {
	vs := s.getVisit()
	vals := vs.vals[:s.k]
	s.hashInto(t, v, vals)
	key := packKey(vals, s.family.Bits())
	s.pool.Put(vs)
	return key
}

// SameAnyBucket reports whether vectors i and j share a bucket in at least
// one of the ℓ tables — the "virtual bucket" membership test of App. B.2.1.
func (s *Snapshot) SameAnyBucket(i, j int) bool {
	for _, t := range s.tables {
		if t.SameBucket(i, j) {
			return true
		}
	}
	return false
}

// BucketMultiplicity returns the number of tables in which vectors i and j
// share a bucket (0..ℓ).
func (s *Snapshot) BucketMultiplicity(i, j int) int {
	m := 0
	for _, t := range s.tables {
		if t.SameBucket(i, j) {
			m++
		}
	}
	return m
}

// visitState is the reusable query working set: k hash values and an
// epoch-stamped visited array (stamp[id] == epoch marks id as emitted this
// query), replacing a per-call map[int32]struct{}.
type visitState struct {
	vals  []uint64
	stamp []uint32
	epoch uint32
}

// getVisit takes a visitState from the shared pool with the k-word hash
// scratch sized. The O(n) stamp array is only grown by beginEpoch, so
// KeyFor-style borrowers never pay for it.
func (s *Snapshot) getVisit() *visitState {
	vs, _ := s.pool.Get().(*visitState)
	if vs == nil {
		vs = &visitState{}
	}
	if len(vs.vals) < s.k {
		vs.vals = make([]uint64, s.k)
	}
	return vs
}

// beginEpoch sizes the visited array for n vectors and opens a new dedup
// epoch.
func (vs *visitState) beginEpoch(n int) {
	if len(vs.stamp) < n {
		vs.stamp = make([]uint32, n)
		vs.epoch = 0
	}
	vs.epoch++
	if vs.epoch == 0 { // wrapped: stale stamps could collide, reset
		for i := range vs.stamp {
			vs.stamp[i] = 0
		}
		vs.epoch = 1
	}
}

// Query returns the ids of all vectors sharing a bucket with v in any table,
// excluding duplicates — the standard LSH candidate-retrieval operation the
// index exists for. The order is deterministic (first table, bucket order).
func (s *Snapshot) Query(v vecmath.Vector) []int32 {
	vs := s.getVisit()
	vs.beginEpoch(len(s.data))
	vals := vs.vals[:s.k]
	bits := s.family.Bits()
	var out []int32
	for t := 0; t < s.ell; t++ {
		s.hashInto(t, v, vals)
		var ids []int32
		if s.narrow {
			ids = s.tables[t].bucket64(packWord(vals, bits))
		} else {
			ids = s.tables[t].BucketIDs(packKey(vals, bits))
		}
		for _, id := range ids {
			if vs.stamp[id] != vs.epoch {
				vs.stamp[id] = vs.epoch
				out = append(out, id)
			}
		}
	}
	s.pool.Put(vs)
	return out
}

// Search returns the ids of indexed vectors u with sim(u, v) ≥ τ among the
// LSH candidates of v — approximate similarity search with the usual LSH
// false-negative caveat.
func (s *Snapshot) Search(v vecmath.Vector, tau float64) []int32 {
	var out []int32
	for _, id := range s.Query(v) {
		if s.family.Sim(s.data[id], v) >= tau {
			out = append(out, id)
		}
	}
	return out
}

// SizeBytes estimates the total space of all tables (see Table.SizeBytes).
func (s *Snapshot) SizeBytes() int64 {
	var sz int64
	for _, t := range s.tables {
		sz += t.SizeBytes()
	}
	return sz
}
