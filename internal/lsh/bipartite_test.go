package lsh

import (
	"math"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func buildBipartite(t *testing.T) (*Bipartite, []vecmath.Vector, []vecmath.Vector) {
	t.Helper()
	left := []vecmath.Vector{
		vecmath.FromDims([]uint32{1, 2, 3}),
		vecmath.FromDims([]uint32{50, 51}),
		vecmath.FromDims([]uint32{1, 2, 3}),
	}
	right := []vecmath.Vector{
		vecmath.FromDims([]uint32{1, 2, 3}),
		vecmath.FromDims([]uint32{90, 91, 92}),
	}
	family := NewSimHash(7)
	li, err := BuildSnapshot(left, family, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := BuildSnapshot(right, family, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBipartite(li, ri, 0)
	if err != nil {
		t.Fatal(err)
	}
	return bp, left, right
}

func TestBipartiteValidation(t *testing.T) {
	left := []vecmath.Vector{vecmath.FromDims([]uint32{1})}
	li, _ := BuildSnapshot(left, NewSimHash(1), 4, 1)
	ri, _ := BuildSnapshot(left, NewSimHash(2), 4, 1) // different seed → different family value
	if _, err := NewBipartite(li, ri, 0); err == nil {
		t.Error("mismatched families accepted")
	}
	ri2, _ := BuildSnapshot(left, NewSimHash(1), 5, 1)
	if _, err := NewBipartite(li, ri2, 0); err == nil {
		t.Error("mismatched k accepted")
	}
	ri3, _ := BuildSnapshot(left, NewSimHash(1), 4, 1)
	if _, err := NewBipartite(li, ri3, 1); err == nil {
		t.Error("out-of-range table accepted")
	}
}

func TestBipartiteNHMatchesEnumeration(t *testing.T) {
	bp, _, _ := buildBipartite(t)
	var count int64
	bp.ForEachIntraPair(func(u, v int32) bool {
		if !bp.SameBucket(int(u), int(v)) {
			t.Fatalf("pair (%d,%d) not co-bucketed", u, v)
		}
		count++
		return true
	})
	if count != bp.NH() {
		t.Errorf("enumerated %d pairs, NH = %d", count, bp.NH())
	}
	if bp.M() != 6 {
		t.Errorf("M = %d, want 6", bp.M())
	}
	if bp.NH()+bp.NL() != bp.M() {
		t.Error("NH + NL != M")
	}
}

func TestBipartiteIdenticalVectorsCoBucketed(t *testing.T) {
	bp, left, right := buildBipartite(t)
	// left[0] == left[2] == right[0], so at least pairs (0,0) and (2,0)
	// must be in stratum H.
	if !bp.SameBucket(0, 0) || !bp.SameBucket(2, 0) {
		t.Error("identical cross vectors must share a bucket")
	}
	if bp.Sim(0, 0) != 1 {
		t.Errorf("Sim(0,0) = %v", bp.Sim(0, 0))
	}
	_ = left
	_ = right
}

func TestBipartiteSampleUniform(t *testing.T) {
	bp, _, _ := buildBipartite(t)
	if bp.NH() == 0 {
		t.Skip("degenerate seed")
	}
	rng := xrand.New(9)
	counts := map[[2]int]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		u, v, ok := bp.SamplePair(rng)
		if !ok {
			t.Fatal("SamplePair failed")
		}
		if !bp.SameBucket(u, v) {
			t.Fatal("sampled pair not co-bucketed")
		}
		counts[[2]int{u, v}]++
	}
	want := float64(draws) / float64(bp.NH())
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v: %d draws, want ~%.0f", pair, c, want)
		}
	}
}

func TestBipartiteEmptyOverlap(t *testing.T) {
	family := NewSimHash(3)
	li, _ := BuildSnapshot([]vecmath.Vector{vecmath.FromDims([]uint32{1, 2})}, family, 32, 1)
	ri, _ := BuildSnapshot([]vecmath.Vector{vecmath.FromDims([]uint32{500, 501})}, family, 32, 1)
	bp, err := NewBipartite(li, ri, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NH() != 0 {
		t.Skip("unlucky collision")
	}
	if _, _, ok := bp.SamplePair(xrand.New(1)); ok {
		t.Error("SamplePair should fail on empty stratum")
	}
}

func TestBipartiteSizes(t *testing.T) {
	bp, left, right := buildBipartite(t)
	if bp.LeftN() != len(left) || bp.RightN() != len(right) {
		t.Errorf("sizes %d,%d want %d,%d", bp.LeftN(), bp.RightN(), len(left), len(right))
	}
}
