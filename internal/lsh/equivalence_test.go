package lsh

import (
	"fmt"
	"runtime"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Equivalence property suite for incremental snapshot publication: whatever
// randomized interleaving of Insert, InsertBatch and Snapshot produced a
// version, it must be observably identical to a from-scratch build over the
// same vector prefix — bucket order and membership, N_H, cumulative weights
// (tablesEqual) and the exact SamplePair draw sequence under a fixed seed.

// samplesEqual drives both tables' weighted samplers from identically seeded
// RNGs and requires draw-for-draw agreement — the strongest form of
// "cumulative weights equivalent", since every descent boundary is exercised
// by real sampling randomness.
func samplesEqual(t *testing.T, want, got *Table, seed uint64, draws int) {
	t.Helper()
	if want.NH() != got.NH() {
		t.Fatalf("NH %d vs %d", got.NH(), want.NH())
	}
	if want.NH() == 0 {
		return
	}
	ra, rb := xrand.New(seed), xrand.New(seed)
	for d := 0; d < draws; d++ {
		wi, wj, wok := want.SamplePair(ra)
		gi, gj, gok := got.SamplePair(rb)
		if wi != gi || wj != gj || wok != gok {
			t.Fatalf("draw %d: (%d,%d,%v) vs (%d,%d,%v)", d, gi, gj, gok, wi, wj, wok)
		}
	}
}

// equivCheck publishes the index and deep-compares every table of the
// resulting snapshot against a rebuild over the same prefix.
func equivCheck(t *testing.T, idx *Index, data []vecmath.Vector, fam Family, k, ell int, seed uint64) {
	t.Helper()
	got := idx.Snapshot()
	if got.N() != len(data) {
		t.Fatalf("snapshot N = %d, want %d", got.N(), len(data))
	}
	want, err := BuildSnapshot(data, fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < ell; ti++ {
		tablesEqual(t, want.Table(ti), got.Table(ti))
		samplesEqual(t, want.Table(ti), got.Table(ti), seed+uint64(ti), 300)
	}
}

// runPublishWorkload drives one randomized workload: random single inserts,
// batches, publish points and a burst of near-distinct vectors that grows
// the overlay past its compaction threshold, checking equivalence at every
// publish boundary the schedule hits.
func runPublishWorkload(t *testing.T, seed uint64, k, ell int) {
	rng := xrand.New(seed)
	n0 := 60 + rng.Intn(80)
	pool := randData(1400, 90, 7, seed+1)
	// Append a compaction burst: vectors in a private dimension range so most
	// inserts mint fresh buckets and maybeCompact fires mid-workload.
	for i := 0; i < 500; i++ {
		pool = append(pool, vecmath.FromDims([]uint32{
			uint32(500000 + i),
			uint32(600000 + rng.Intn(1<<18)),
			uint32(800000 + rng.Intn(1<<18)),
		}))
	}
	fam := NewSimHash(seed + 2)
	idx, err := Build(pool[:n0], fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	consumed := n0
	checks := 0
	for consumed < len(pool) && checks < 4 {
		switch rng.Intn(5) {
		case 0: // single insert
			idx.Insert(pool[consumed])
			consumed++
		case 1: // per-insert publication run
			for s := 0; s < 5 && consumed < len(pool); s++ {
				idx.Insert(pool[consumed])
				consumed++
				idx.Snapshot()
			}
		case 2: // batch
			hi := consumed + 1 + rng.Intn(60)
			if hi > len(pool) {
				hi = len(pool)
			}
			idx.InsertBatch(pool[consumed:hi])
			consumed = hi
		case 3: // publish whatever is pending
			idx.Snapshot()
		default: // checkpoint: full equivalence against a rebuild
			equivCheck(t, idx, pool[:consumed], fam, k, ell, seed+uint64(consumed))
			checks++
		}
	}
	equivCheck(t, idx, pool[:consumed], fam, k, ell, seed+uint64(consumed))
}

// TestPublishEquivalenceProperty runs the randomized workload across narrow
// (machine-word) and wide (string) key paths, several seeds, and both
// single-core and full-parallel builds: the shard-parallel rebuild it
// compares against must agree with Fenwick-published snapshots at any
// GOMAXPROCS.
func TestPublishEquivalenceProperty(t *testing.T) {
	configs := []struct {
		name   string
		k, ell int
	}{
		{"narrow_k10_l2", 10, 2}, // k·bits ≤ 64: uint64 bucket keys
		{"wide_k70_l1", 70, 1},   // k·bits > 64: packed string keys
	}
	for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, cfg := range configs {
			for _, seed := range []uint64{601, 602, 603} {
				name := fmt.Sprintf("%s/p%d/seed%d", cfg.name, procs, seed)
				t.Run(name, func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					runPublishWorkload(t, seed, cfg.k, cfg.ell)
				})
				if procs == 1 && testing.Short() {
					break
				}
			}
		}
	}
}

// TestPerInsertPublicationVersions pins the policy-facing contract: with one
// publish per insert, every version is observable, versions are strictly
// increasing, and each intermediate snapshot equals a rebuild of its prefix.
func TestPerInsertPublicationVersions(t *testing.T) {
	data := randData(140, 60, 7, 611)
	fam := NewSimHash(612)
	idx, err := Build(data[:100], fam, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	lastVer := idx.Snapshot().Version()
	for i := 100; i < 140; i++ {
		idx.Insert(data[i])
		s := idx.Snapshot()
		if s.Version() != lastVer+1 {
			t.Fatalf("insert %d: version %d, want %d", i, s.Version(), lastVer+1)
		}
		lastVer = s.Version()
		if s.N() != i+1 {
			t.Fatalf("insert %d: N = %d", i, s.N())
		}
	}
	equivCheck(t, idx, data, fam, 12, 1, 613)
}
