package lsh

import (
	"math"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// buildSmall builds a single-table index over a handful of orthogonal and
// duplicated vectors so bucket structure is predictable.
func buildSmall(t *testing.T, k int) (*Index, []vecmath.Vector) {
	t.Helper()
	data := []vecmath.Vector{
		vecmath.FromDims([]uint32{1, 2, 3}),
		vecmath.FromDims([]uint32{1, 2, 3}), // duplicate of 0
		vecmath.FromDims([]uint32{1, 2, 3}), // duplicate of 0
		vecmath.FromDims([]uint32{100, 101, 102}),
		vecmath.FromDims([]uint32{200, 201}),
		vecmath.FromDims([]uint32{300}),
	}
	idx, err := Build(data, NewSimHash(7), k, 1)
	if err != nil {
		t.Fatal(err)
	}
	return idx, data
}

func TestBuildValidation(t *testing.T) {
	v := []vecmath.Vector{vecmath.FromDims([]uint32{1})}
	if _, err := Build(nil, NewSimHash(1), 4, 1); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Build(v, NewSimHash(1), 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Build(v, NewSimHash(1), 4, 0); err == nil {
		t.Error("ℓ=0 accepted")
	}
	if _, err := Build(v, nil, 4, 1); err == nil {
		t.Error("nil family accepted")
	}
}

func TestDuplicatesShareBucket(t *testing.T) {
	idx, _ := buildSmall(t, 16)
	tab := idx.Table(0)
	if !tab.SameBucket(0, 1) || !tab.SameBucket(0, 2) || !tab.SameBucket(1, 2) {
		t.Error("identical vectors must always share a bucket")
	}
}

func TestNHMatchesBucketSizes(t *testing.T) {
	idx, _ := buildSmall(t, 16)
	tab := idx.Table(0)
	var want int64
	for _, b := range tab.BucketSizes() {
		want += int64(b) * int64(b-1) / 2
	}
	if got := tab.NH(); got != want {
		t.Errorf("NH = %d, want %d", got, want)
	}
	if tab.NH()+tab.NL() != tab.M() {
		t.Errorf("NH + NL = %d, want M = %d", tab.NH()+tab.NL(), tab.M())
	}
	if tab.M() != 15 { // C(6,2)
		t.Errorf("M = %d, want 15", tab.M())
	}
}

func TestNHMatchesIntraPairEnumeration(t *testing.T) {
	data := randData(200, 50, 8, 17)
	idx, err := Build(data, NewSimHash(3), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tab := range idx.Tables() {
		var count int64
		tab.ForEachIntraPair(func(i, j int32) bool {
			if i >= j {
				t.Fatalf("table %d: pair (%d,%d) not ordered", ti, i, j)
			}
			if !tab.SameBucket(int(i), int(j)) {
				t.Fatalf("table %d: enumerated pair (%d,%d) not co-bucketed", ti, i, j)
			}
			count++
			return true
		})
		if count != tab.NH() {
			t.Errorf("table %d: enumerated %d pairs, NH = %d", ti, count, tab.NH())
		}
	}
}

func randData(n, dims, nnz int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		ds := make([]uint32, 0, nnz)
		for j := 0; j < nnz; j++ {
			ds = append(ds, uint32(rng.Intn(dims)))
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

func TestSamplePairUniformOverStratumH(t *testing.T) {
	idx, _ := buildSmall(t, 16)
	tab := idx.Table(0)
	if tab.NH() < 3 {
		t.Skip("bucket structure degenerate for this seed")
	}
	rng := xrand.New(5)
	counts := map[[2]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		a, b, ok := tab.SamplePair(rng)
		if !ok {
			t.Fatal("SamplePair failed with NH > 0")
		}
		if a == b {
			t.Fatal("sampled identical indices")
		}
		if !tab.SameBucket(a, b) {
			t.Fatal("sampled pair not in same bucket")
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	want := float64(draws) / float64(tab.NH())
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pair, c, want)
		}
	}
	if int64(len(counts)) != tab.NH() {
		t.Errorf("observed %d distinct pairs, stratum has %d", len(counts), tab.NH())
	}
}

func TestSamplePairEmptyStratum(t *testing.T) {
	// All-distinct orthogonal vectors with large k: no shared buckets.
	data := []vecmath.Vector{
		vecmath.FromDims([]uint32{1}),
		vecmath.FromDims([]uint32{1000}),
	}
	idx, err := Build(data, NewSimHash(13), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := idx.Table(0)
	if tab.NH() != 0 {
		t.Skip("vectors collided under this seed")
	}
	if _, _, ok := tab.SamplePair(xrand.New(1)); ok {
		t.Error("SamplePair should report !ok when NH = 0")
	}
}

func TestKeyOfConsistentWithSameBucket(t *testing.T) {
	data := randData(100, 30, 5, 23)
	idx, err := Build(data, NewSimHash(29), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := idx.Table(0)
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if tab.SameBucket(i, j) != (tab.KeyOf(i) == tab.KeyOf(j)) {
				t.Fatalf("SameBucket(%d,%d) inconsistent with keys", i, j)
			}
		}
	}
}

func TestBucketIDsPartitionVectors(t *testing.T) {
	data := randData(150, 40, 6, 31)
	idx, err := Build(data, NewSimHash(31), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := idx.Table(0)
	seen := make([]bool, len(data))
	total := 0
	tab.ForEachBucket(func(key string, ids []int32) bool {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("vector %d in two buckets", id)
			}
			seen[id] = true
			if tab.KeyOf(int(id)) != key {
				t.Fatalf("vector %d key mismatch", id)
			}
		}
		total += len(ids)
		return true
	})
	if total != len(data) {
		t.Errorf("buckets cover %d of %d vectors", total, len(data))
	}
}

func TestMultiTableIndependence(t *testing.T) {
	data := randData(300, 60, 8, 41)
	idx, err := Build(data, NewSimHash(11), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.L() != 4 {
		t.Fatalf("L = %d", idx.L())
	}
	// Tables use disjoint hash functions, so their keys should differ for
	// most vectors (they'd only match by coincidence).
	tabs := idx.Tables()
	same := 0
	for i := 0; i < 300; i++ {
		if tabs[0].KeyOf(i) == tabs[1].KeyOf(i) {
			same++
		}
	}
	if same > 30 {
		t.Errorf("tables 0 and 1 agree on %d/300 keys; expected near-independence", same)
	}
}

func TestKeyForMatchesIndexedKeys(t *testing.T) {
	data := randData(50, 20, 5, 47)
	idx, err := Build(data, NewSimHash(17), 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < idx.L(); t0++ {
		for i, v := range data {
			if idx.KeyFor(t0, v) != idx.Table(t0).KeyOf(i) {
				t.Fatalf("table %d vector %d: KeyFor disagrees with indexed key", t0, i)
			}
		}
	}
}

func TestQueryFindsDuplicates(t *testing.T) {
	idx, data := buildSmall(t, 16)
	got := idx.Query(data[0])
	found := map[int32]bool{}
	for _, id := range got {
		found[id] = true
	}
	// Identical vectors 0,1,2 must be retrieved when querying vector 0's value.
	for _, want := range []int32{0, 1, 2} {
		if !found[want] {
			t.Errorf("Query missed duplicate id %d (got %v)", want, got)
		}
	}
}

func TestSearchAppliesThreshold(t *testing.T) {
	idx, data := buildSmall(t, 16)
	got := idx.Search(data[0], 0.99)
	for _, id := range got {
		if s := vecmath.Cosine(data[0], data[id]); s < 0.99 {
			t.Errorf("Search returned id %d with sim %v < 0.99", id, s)
		}
	}
	if len(got) < 3 {
		t.Errorf("Search should find the three duplicates, got %v", got)
	}
}

func TestSameAnyBucketAndMultiplicity(t *testing.T) {
	data := randData(100, 30, 6, 53)
	idx, err := Build(data, NewSimHash(19), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			m := idx.BucketMultiplicity(i, j)
			if (m > 0) != idx.SameAnyBucket(i, j) {
				t.Fatalf("multiplicity %d inconsistent with SameAnyBucket", m)
			}
			if m < 0 || m > idx.L() {
				t.Fatalf("multiplicity %d out of range", m)
			}
		}
	}
}

func TestSizeBytesGrowsWithK(t *testing.T) {
	data := randData(500, 80, 10, 61)
	var prev int64
	for _, k := range []int{4, 16, 70} { // 70 forces the wide-key path
		idx, err := Build(data, NewSimHash(23), k, 1)
		if err != nil {
			t.Fatal(err)
		}
		size := idx.SizeBytes()
		if size <= 0 {
			t.Fatalf("k=%d: non-positive size %d", k, size)
		}
		if size < prev {
			t.Errorf("k=%d: size %d shrank below %d; more buckets should cost more", k, size, prev)
		}
		prev = size
	}
}

func TestPackKeyWidePath(t *testing.T) {
	vals := make([]uint64, 70) // 70 bits > 64 with 1-bit values
	vals[0], vals[69] = 1, 1
	k1 := packKey(vals, 1)
	vals[69] = 0
	k2 := packKey(vals, 1)
	if k1 == k2 {
		t.Error("wide packKey lost a bit")
	}
	if len(k1) != 8*70 {
		t.Errorf("wide key length %d", len(k1))
	}
}

func TestPackKeyNarrowCollisionFree(t *testing.T) {
	seen := map[string][2]uint64{}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			k := packKey([]uint64{a, b}, 4)
			if prev, dup := seen[k]; dup {
				t.Fatalf("collision: (%d,%d) and %v", a, b, prev)
			}
			seen[k] = [2]uint64{a, b}
		}
	}
}
