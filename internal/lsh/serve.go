package lsh

import (
	"fmt"

	"lshjoin/internal/vecmath"
)

// Exported hooks for the network serving layer (internal/shardrpc and the
// public RemoteCollection). A coordinator that fetches per-shard snapshots
// over the wire needs exactly three things the sharded layer already does
// in-process: route a vector to its home shard without holding the shards,
// start an empty per-shard index on the serving side, and reassemble fetched
// snapshots into the GroupSnapshot the merged estimators consume.

// RouteVector returns the home shard of v in an s-shard partition under the
// same consistent key-hash routing a ShardGroup uses: jump consistent hash
// over the vector's content key. It is a pure function of (v, s), so a
// coordinator and an in-process ShardGroup with equal shard counts route
// every vector identically.
func RouteVector(v vecmath.Vector, s int) int {
	if s <= 1 {
		return 0
	}
	return jumpHash(contentKey(v), s)
}

// NewEmptyIndex constructs a writable zero-vector Index (version 1, empty
// tables) — the starting state of a shard server, which unlike Build begins
// with no corpus and grows through streamed ingest.
func NewEmptyIndex(family Family, k, ell int) (*Index, error) {
	if err := validateParams(family, k, ell); err != nil {
		return nil, err
	}
	return emptyIndex(family, k, ell), nil
}

// NewGroupSnapshot assembles fetched per-shard snapshots into the group view
// estimators consume, validating that every shard hashed with the same
// family, k and ℓ (the precondition for shard-invariant bucket keys). The
// shard order must match the routing that populated the shards; element s is
// served as shard s.
func NewGroupSnapshot(snaps []*Snapshot) (*GroupSnapshot, error) {
	if len(snaps) < 1 || len(snaps) > MaxShards {
		return nil, fmt.Errorf("lsh: shard count must be in [1, %d], got %d", MaxShards, len(snaps))
	}
	for s, sn := range snaps {
		if sn == nil {
			return nil, fmt.Errorf("lsh: shard %d snapshot is nil", s)
		}
		if sn.Family() != snaps[0].Family() || sn.K() != snaps[0].K() || sn.L() != snaps[0].L() {
			return nil, fmt.Errorf("lsh: shard %d snapshot was hashed with different parameters", s)
		}
	}
	return newGroupSnapshot(snaps), nil
}

// SnapshotSummary is the cheap per-shard digest a shard server reports
// without shipping the snapshot itself: the publish version, the vector
// count, and each table's N_H (the pair count of stratum H, the quantity the
// extended LSH index maintains).
type SnapshotSummary struct {
	Version uint64
	N       int
	TableNH []int64
}

// Summary extracts the digest of this snapshot.
func (s *Snapshot) Summary() SnapshotSummary {
	nh := make([]int64, s.L())
	for t := range nh {
		nh[t] = s.Table(t).NH()
	}
	return SnapshotSummary{Version: s.Version(), N: s.N(), TableNH: nh}
}
