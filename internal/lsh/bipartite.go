package lsh

import (
	"fmt"
	"sort"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Bipartite supports general (non-self) joins between two collections U and
// V per App. B.2.2: both sides are hashed with the same g, stratum H is the
// set of cross pairs whose buckets share a g value, and
// N_H = Σ b_j·c_i over matching buckets B_j ∈ D_g, C_i ∈ E_g.
type Bipartite struct {
	left, right *Snapshot // single-table index views sharing family, k and fn range
	table       int
	ltab, rtab  *Table

	matches []bucketMatch
	cum     []int64
	nh      int64
}

type bucketMatch struct {
	key         string
	left, right []int32
}

// NewBipartite pairs table t of two index snapshots built with the same
// family seed, k and ℓ. It validates that the two sides use identical hash
// functions. Like everything snapshot-backed, the matching is immutable and
// safe for concurrent use.
func NewBipartite(left, right *Snapshot, t int) (*Bipartite, error) {
	if left.Family() != right.Family() {
		return nil, fmt.Errorf("lsh: bipartite requires identical families on both sides")
	}
	if left.K() != right.K() {
		return nil, fmt.Errorf("lsh: bipartite k mismatch: %d vs %d", left.K(), right.K())
	}
	if t < 0 || t >= left.L() || t >= right.L() {
		return nil, fmt.Errorf("lsh: table %d out of range", t)
	}
	b := &Bipartite{left: left, right: right, table: t,
		ltab: left.Table(t), rtab: right.Table(t)}
	// Deterministic order: iterate left buckets in insertion order. Narrow
	// tables match on machine words; only the stored diagnostic key is a
	// string.
	if b.ltab.Narrow() {
		b.ltab.w.walk(func(_ int, lb *bucket) bool {
			if rids := b.rtab.bucket64(lb.key64); len(rids) > 0 {
				b.matches = append(b.matches, bucketMatch{key: key64String(lb.key64), left: lb.ids, right: rids})
			}
			return true
		})
	} else {
		b.ltab.ForEachBucket(func(key string, ids []int32) bool {
			if rids := b.rtab.BucketIDs(key); len(rids) > 0 {
				b.matches = append(b.matches, bucketMatch{key: key, left: ids, right: rids})
			}
			return true
		})
	}
	b.cum = make([]int64, len(b.matches))
	var total int64
	for i, m := range b.matches {
		total += int64(len(m.left)) * int64(len(m.right))
		b.cum[i] = total
	}
	b.nh = total
	return b, nil
}

// M returns the total number of cross pairs |U|·|V|.
func (b *Bipartite) M() int64 {
	return int64(b.left.N()) * int64(b.right.N())
}

// NH returns the number of cross pairs whose buckets share a g value.
func (b *Bipartite) NH() int64 { return b.nh }

// NL returns M − N_H.
func (b *Bipartite) NL() int64 { return b.M() - b.nh }

// SameBucket reports whether u ∈ U and v ∈ V have equal g values. In narrow
// mode this is a machine-word compare with no allocation (the estimators'
// stratum-L rejection sampler calls it per candidate pair).
func (b *Bipartite) SameBucket(u, v int) bool {
	if b.ltab.Narrow() {
		return b.ltab.key64(u) == b.rtab.key64(v)
	}
	return b.ltab.keysStr[u] == b.rtab.keysStr[v]
}

// SamplePair draws a uniform random cross pair from stratum H: a matched
// bucket pair with weight b_j·c_i, then uniform members on each side.
func (b *Bipartite) SamplePair(rng *xrand.RNG) (u, v int, ok bool) {
	if b.nh == 0 {
		return 0, 0, false
	}
	x := int64(rng.Uint64n(uint64(b.nh)))
	i := sort.Search(len(b.cum), func(k int) bool { return b.cum[k] > x })
	m := b.matches[i]
	return int(m.left[rng.Intn(len(m.left))]), int(m.right[rng.Intn(len(m.right))]), true
}

// ForEachIntraPair enumerates every cross pair in stratum H. Θ(N_H).
func (b *Bipartite) ForEachIntraPair(fn func(u, v int32) bool) {
	for _, m := range b.matches {
		for _, u := range m.left {
			for _, v := range m.right {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// Sim returns the family similarity between u ∈ U and v ∈ V.
func (b *Bipartite) Sim(u, v int) float64 {
	return b.left.Family().Sim(b.leftVec(u), b.rightVec(v))
}

func (b *Bipartite) leftVec(u int) vecmath.Vector  { return b.left.Data()[u] }
func (b *Bipartite) rightVec(v int) vecmath.Vector { return b.right.Data()[v] }

// LeftN and RightN return the collection sizes.
func (b *Bipartite) LeftN() int  { return b.left.N() }
func (b *Bipartite) RightN() int { return b.right.N() }
