package core

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

func TestMedianSSValidation(t *testing.T) {
	if _, err := NewMedianSS(nil, nil); err == nil {
		t.Error("nil index accepted")
	}
}

func TestMedianSSAccuracy(t *testing.T) {
	data := testData(600, 31)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(32), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// m_L large enough that SampleL is in its reliable regime at τ = 0.3.
	e, err := NewMedianSS(idx, nil, WithSampleSizes(600, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "LSH-SS(median)" {
		t.Errorf("name %q", e.Name())
	}
	truth := float64(exactjoin.BruteForceCount(data, 0.3))
	if truth < 10 {
		t.Fatal("degenerate data")
	}
	got := meanEstimate(t, e, 0.3, 40, 33)
	if math.Abs(got-truth) > 0.45*truth {
		t.Errorf("median estimator mean %v, truth %v", got, truth)
	}
}

// TestMedianReducesSpread: the median over 5 tables should have spread no
// larger than (and typically below) a single-table estimate.
func TestMedianReducesSpread(t *testing.T) {
	data := testData(600, 35)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(36), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	median, err := NewMedianSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewLSHSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(e Estimator, seed uint64) float64 {
		rng := xrand.New(seed)
		var xs []float64
		for r := 0; r < 30; r++ {
			v, err := e.Estimate(0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, v)
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		return math.Sqrt(v / float64(len(xs)))
	}
	ms := spread(median, 37)
	ss := spread(single, 38)
	if ss > 0 && ms > 1.5*ss {
		t.Errorf("median spread %v much larger than single-table %v", ms, ss)
	}
}

func TestVirtualSSValidation(t *testing.T) {
	if _, err := NewVirtualSS(nil, nil); err == nil {
		t.Error("nil index accepted")
	}
}

// TestNHVirtualUnbiased compares the importance-sampling estimate of
// |S_H^∪| against exact enumeration on a small collection.
func TestNHVirtualUnbiased(t *testing.T) {
	data := testData(250, 41)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(42), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	var exact float64
	for i := 0; i < len(data); i++ {
		for j := i + 1; j < len(data); j++ {
			if idx.SameAnyBucket(i, j) {
				exact++
			}
		}
	}
	if exact == 0 {
		t.Skip("degenerate: empty union stratum")
	}
	e, err := NewVirtualSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(43)
	var sum float64
	const reps = 30
	for r := 0; r < reps; r++ {
		sum += e.NHVirtual(4000, rng)
	}
	got := sum / reps
	if math.Abs(got-exact) > 0.15*exact {
		t.Errorf("NH(virtual) mean %v, exact %v", got, exact)
	}
}

func TestVirtualSSAccuracy(t *testing.T) {
	data := testData(500, 45)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(46), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewVirtualSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "LSH-SS(virtual)" {
		t.Errorf("name %q", e.Name())
	}
	truth := float64(exactjoin.BruteForceCount(data, 0.5))
	if truth < 5 {
		t.Fatal("degenerate data")
	}
	got := meanEstimate(t, e, 0.5, 50, 47)
	if math.Abs(got-truth) > 0.5*truth+5 {
		t.Errorf("virtual estimator mean %v, truth %v", got, truth)
	}
}

func TestVirtualSSBounded(t *testing.T) {
	data := testData(300, 49)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(50), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewVirtualSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := pairsOf(len(data))
	rng := xrand.New(51)
	for _, tau := range []float64{0.1, 0.5, 0.9, 1.0} {
		for r := 0; r < 10; r++ {
			v, err := e.Estimate(tau, rng)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > m || math.IsNaN(v) {
				t.Fatalf("tau=%v: estimate %v out of range", tau, v)
			}
		}
	}
	if _, err := e.Estimate(0, rng); err == nil {
		t.Error("tau=0 accepted")
	}
}
