package core

import (
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// FuzzMergedBipartiteNH feeds arbitrary two-sided corpora through the merged
// cross-group stratum and requires it to agree exactly with one bipartite
// matching enumerated over the union sides: same M and N_H, pair-for-pair
// SameBucket membership, and every SamplePair draw bucket-matched in the
// union — in both narrow (SimHash) and wide (MinHash) key modes. This is the
// stratum the sharded general-join estimator samples through.
//
// Byte layout: data[0] and data[1] pick the two shard counts; the remaining
// bytes split into the left and right corpora, one vector per byte over a
// tiny dimension alphabet so buckets genuinely collide across groups.
func FuzzMergedBipartiteNH(f *testing.F) {
	f.Add([]byte{2, 3, 1, 2, 3, 1, 2, 3, 9, 9, 1})
	f.Add([]byte{4, 1, 0, 0, 0, 0, 7, 7, 7})
	f.Add([]byte{1, 1, 255, 254, 1, 1, 2, 2, 40, 41})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		sl := int(data[0]%5) + 1
		sr := int(data[1]%5) + 1
		raw := data[2:]
		if len(raw) > 48 {
			raw = raw[:48] // keep the O(|U|·|V|) membership sweep cheap
		}
		half := len(raw) / 2
		mk := func(bs []byte) []vecmath.Vector {
			vecs := make([]vecmath.Vector, len(bs))
			for i, b := range bs {
				vecs[i] = vecmath.FromDims([]uint32{uint32(b % 8), uint32(b/8%8) + 8})
			}
			return vecs
		}
		lvecs, rvecs := mk(raw[:half]), mk(raw[half:])
		for _, fam := range []lsh.Family{lsh.NewSimHash(3), lsh.NewMinHash(3)} {
			k := 4
			if fam.Bits() > 16 {
				k = 3 // MinHash: force the wide string-key mode
			}
			gl, err := lsh.NewShardGroup(lvecs, fam, k, 1, sl)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := lsh.NewShardGroup(rvecs, fam, k, 1, sr)
			if err != nil {
				t.Fatal(err)
			}
			lgs, rgs := gl.Capture(), gr.Capture()
			ms, err := NewMergedBipartiteStratum(lgs, rgs, 0)
			if err != nil {
				t.Fatal(err)
			}
			ul, err := lsh.BuildSnapshot(lgs.Data(), fam, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			ur, err := lsh.BuildSnapshot(rgs.Data(), fam, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			union, err := lsh.NewBipartite(ul, ur, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ms.M() != union.M() || ms.NH() != union.NH() {
				t.Fatalf("sl=%d sr=%d: merged (M,NH)=(%d,%d), union (%d,%d)",
					sl, sr, ms.M(), ms.NH(), union.M(), union.NH())
			}
			for u := 0; u < lgs.N(); u++ {
				for v := 0; v < rgs.N(); v++ {
					if got, want := ms.SameBucket(u, v), union.SameBucket(u, v); got != want {
						t.Fatalf("sl=%d sr=%d SameBucket(%d,%d)=%v union %v", sl, sr, u, v, got, want)
					}
				}
			}
			if ms.NH() > 0 {
				rng := xrand.New(1)
				for d := 0; d < 32; d++ {
					u, v, ok := ms.SamplePair(rng)
					if !ok {
						t.Fatal("SamplePair failed with NH > 0")
					}
					if !union.SameBucket(u, v) {
						t.Fatalf("sampled pair (%d,%d) not bucket-matched in the union", u, v)
					}
				}
			}
		}
	})
}
