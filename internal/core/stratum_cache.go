package core

import (
	"fmt"
	"slices"
	"sync"

	"lshjoin/internal/lsh"
)

// BipartiteStratumCache caches the cross-group stratum view of a live group
// pair at per-shard-pair granularity. The adopted view is keyed on the full
// (left, right) version-vector pair, and each of its S_left·S_right
// bipartite components is additionally keyed on the (left-shard version,
// right-shard version) pair it was built over — so when one shard publishes,
// the next View rebuilds only that shard's row (or column) of components and
// reuses the rest pointer-identically. Construction runs outside the lock;
// concurrent callers may build the same components redundantly, but every
// returned view is correct for its captured pair.
//
// The cache only advances to a pair that componentwise dominates the adopted
// one (summed versions alias across concurrent captures): a reader that
// raced publication gets a correct one-off view without evicting a newer
// cached one.
type BipartiteStratumCache struct {
	t int

	mu     sync.Mutex
	view   BipartiteStratum
	lv, rv []uint64
	comps  map[[2]int]cachedBipartite
}

// cachedBipartite is one shard pair's bucket matching, tagged with the
// publish versions of the two shard snapshots it was built over.
type cachedBipartite struct {
	bp     *lsh.Bipartite
	lv, rv uint64
}

// NewBipartiteStratumCache returns an empty cache over table t.
func NewBipartiteStratumCache(t int) *BipartiteStratumCache {
	return &BipartiteStratumCache{t: t}
}

// View returns the bipartite stratum view of the captured pair, reusing the
// adopted view on an exact version-vector match and reusing unchanged
// per-shard-pair components otherwise. With one shard per side the view is
// the plain lsh.Bipartite (preserving the historic draw stream, like
// NewBipartiteStratum); otherwise it is the merged per-shard-pair
// decomposition.
func (c *BipartiteStratumCache) View(left, right *lsh.GroupSnapshot) (BipartiteStratum, error) {
	lv, rv := left.Versions(), right.Versions()
	c.mu.Lock()
	if c.view != nil && slices.Equal(c.lv, lv) && slices.Equal(c.rv, rv) {
		view := c.view
		c.mu.Unlock()
		return view, nil
	}
	// Collect the components whose shard pair is unchanged at this capture.
	// Reuse is validated per component, so even a capture older or newer
	// than the adopted pair reuses whatever shard pairs it shares with it.
	reuse := make(map[[2]int]*lsh.Bipartite, len(c.comps))
	for key, cc := range c.comps {
		if key[0] < len(lv) && key[1] < len(rv) && cc.lv == lv[key[0]] && cc.rv == rv[key[1]] {
			reuse[key] = cc.bp
		}
	}
	c.mu.Unlock()

	view, built, err := c.build(left, right, reuse)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil || versionPairAdvances(lv, c.lv, rv, c.rv) {
		comps := make(map[[2]int]cachedBipartite, len(built))
		for key, bp := range built {
			comps[key] = cachedBipartite{bp: bp, lv: lv[key[0]], rv: rv[key[1]]}
		}
		c.view, c.lv, c.rv, c.comps = view, lv, rv, comps
	}
	return view, nil
}

// build constructs the view for one captured pair outside the lock and
// returns every component it holds (reused or fresh) keyed by shard pair.
func (c *BipartiteStratumCache) build(left, right *lsh.GroupSnapshot, reuse map[[2]int]*lsh.Bipartite) (BipartiteStratum, map[[2]int]*lsh.Bipartite, error) {
	if left.S() == 1 && right.S() == 1 {
		if err := lsh.CompatibleCross(left, right); err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
		bp := reuse[[2]int{0, 0}]
		if bp == nil {
			var err error
			bp, err = lsh.NewBipartite(left.Snap(0), right.Snap(0), c.t)
			if err != nil {
				return nil, nil, err
			}
		}
		return bp, map[[2]int]*lsh.Bipartite{{0, 0}: bp}, nil
	}
	ms, err := newMergedBipartiteStratumReuse(left, right, c.t, func(a, b int) *lsh.Bipartite {
		return reuse[[2]int{a, b}]
	})
	if err != nil {
		return nil, nil, err
	}
	built := make(map[[2]int]*lsh.Bipartite, len(ms.comps))
	for i, comp := range ms.comps {
		built[[2]int{i / right.S(), i % right.S()}] = comp.bp
	}
	return ms, built, nil
}

// versionPairAdvances reports whether the (left, right) version-vector pair
// (lNext, rNext) is strictly newer than (lPrev, rPrev): no component of
// either side regressed and at least one advanced.
func versionPairAdvances(lNext, lPrev, rNext, rPrev []uint64) bool {
	lok, lnew := versionsDominate(lNext, lPrev)
	rok, rnew := versionsDominate(rNext, rPrev)
	return lok && rok && (lnew || rnew)
}

// versionsDominate reports whether next is componentwise ≥ prev (ok) and
// whether any component strictly advanced (newer). Mismatched lengths never
// dominate.
func versionsDominate(next, prev []uint64) (ok, newer bool) {
	if len(next) != len(prev) {
		return false, false
	}
	for i := range next {
		if next[i] < prev[i] {
			return false, false
		}
		if next[i] > prev[i] {
			newer = true
		}
	}
	return true, newer
}
