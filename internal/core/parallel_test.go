package core

import (
	"runtime"
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func parallelTestData(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		nnz := 3 + rng.Intn(10)
		ds := make([]uint32, nnz)
		for j := range ds {
			ds[j] = uint32(rng.Intn(400))
		}
		data[i] = vecmath.FromDims(ds)
	}
	return data
}

// TestEstimateDeterministicAcrossGOMAXPROCS pins the contract of the
// sharded samplers: for a fixed RNG seed, LSH-SS and the median estimator
// return bit-identical estimates whether the shards run on one thread or
// several, and across repeated runs.
func TestEstimateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	data := parallelTestData(1500, 7)
	idx, err := lsh.BuildSnapshot(data, lsh.NewSimHash(3), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewLSHSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	median, err := NewMedianSS(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	type run struct{ single, median float64 }
	estimate := func() run {
		a, err := single.Estimate(0.5, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		b, err := median.Estimate(0.5, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return run{a, b}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	ref := estimate()
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			if got := estimate(); got != ref {
				t.Fatalf("GOMAXPROCS=%d rep %d: estimates %+v differ from single-threaded %+v",
					procs, rep, got, ref)
			}
		}
	}
}

// TestMergeAdaptiveReplaysSequentialLoop feeds hand-built shard outcomes
// through the merge and checks it reproduces Lipton's loop over the
// concatenated stream.
func TestMergeAdaptiveReplaysSequentialLoop(t *testing.T) {
	cases := []struct {
		name       string
		outs       []lShard
		delta, max int
		hits, tkn  int
		reliable   bool
	}{
		{
			name: "delta reached in second shard",
			outs: []lShard{
				{hitPos: []int32{1}, taken: 4},
				{hitPos: []int32{0, 2}, taken: 4},
			},
			delta: 3, max: 8,
			hits: 3, tkn: 7, reliable: true,
		},
		{
			name: "budget exhausted",
			outs: []lShard{
				{hitPos: []int32{0}, taken: 4},
				{taken: 4},
			},
			delta: 5, max: 8,
			hits: 1, tkn: 8, reliable: false,
		},
		{
			name: "shard exhaustion ends stream",
			outs: []lShard{
				{hitPos: []int32{0}, taken: 2, exhausted: true},
				{hitPos: []int32{0, 1, 2}, taken: 4},
			},
			delta: 4, max: 8,
			hits: 1, tkn: 2, reliable: false,
		},
		{
			name: "delta on the final draw of a shard",
			outs: []lShard{
				{hitPos: []int32{0, 1}, taken: 2},
			},
			delta: 2, max: 8,
			hits: 2, tkn: 2, reliable: true,
		},
	}
	for _, c := range cases {
		res := mergeAdaptive(c.outs, c.delta, c.max)
		if res.Hits != c.hits || res.Taken != c.tkn || res.Reliable != c.reliable {
			t.Errorf("%s: got hits=%d taken=%d reliable=%v, want hits=%d taken=%d reliable=%v",
				c.name, res.Hits, res.Taken, res.Reliable, c.hits, c.tkn, c.reliable)
		}
	}
}

// TestShardQuotaPartitions sanity-checks the deterministic shard layout.
func TestShardQuotaPartitions(t *testing.T) {
	for _, m := range []int{1, 7, 255, 256, 1000, 5000, 100000} {
		s := sampleShards(m)
		if s < 1 || s > 16 {
			t.Fatalf("m=%d: shard count %d out of range", m, s)
		}
		total := 0
		for i := 0; i < s; i++ {
			total += shardQuota(m, s, i)
		}
		if total != m {
			t.Fatalf("m=%d: quotas sum to %d", m, total)
		}
	}
}
