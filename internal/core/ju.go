package core

import (
	"fmt"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// JU is the uniformity-assumption estimator of §4.2: with N_H pairs sharing
// a bucket and assuming pair similarities uniform on [0,1], Equation (4)
// gives a closed-form estimate
//
//	Ĵ_U = ((k+1)·N_H − τ^k·M) / Σ_{i=0}^{k-1} τ^i.
//
// Equation (4) is derived under the idealized Definition 3, p(s) = s (exact
// for MinHash). Mode JUNumeric replaces s^k by the family's true collision
// curve p(s)^k and evaluates the conditional probabilities in Equations
// (2)–(3) by numeric integration — the ablation DESIGN.md calls out for
// sign-random-projection, whose p(s) = 1 − arccos(s)/π.
type JU struct {
	m, nh  int64 // M = C(n, 2) and N_H of the stratifying table (or merged view)
	k      int
	family lsh.Family
	mode   JUMode
}

// JUMode selects the closed-form or numeric-integration variant.
type JUMode int

// JU modes.
const (
	JUClosedForm JUMode = iota // Equation (4): assumes p(s) = s
	JUNumeric                  // integrates the family's p(s)^k
)

// NewJU builds the estimator over table 0 of an index snapshot.
func NewJU(snap *lsh.Snapshot, mode JUMode) (*JU, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: JU needs an index snapshot")
	}
	tab := snap.Table(0)
	return newJUFrom(tab.M(), tab.NH(), tab.K(), snap.Family(), mode)
}

// newJUFrom builds the estimator from the summary statistics it actually
// consumes — JU reads nothing but (M, N_H, k) and the family's collision
// curve, which is why a sharded group can feed it the exact merged N_H.
func newJUFrom(m, nh int64, k int, family lsh.Family, mode JUMode) (*JU, error) {
	if mode != JUClosedForm && mode != JUNumeric {
		return nil, fmt.Errorf("core: unknown JU mode %d", mode)
	}
	return &JU{m: m, nh: nh, k: k, family: family, mode: mode}, nil
}

// Name implements Estimator.
func (e *JU) Name() string {
	if e.mode == JUNumeric {
		return "JU(numeric)"
	}
	return "JU"
}

// Estimate implements Estimator. JU is deterministic; rng is unused.
func (e *JU) Estimate(tau float64, _ *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	m := float64(e.m)
	nh := float64(e.nh)
	k := e.k
	var est float64
	switch e.mode {
	case JUClosedForm:
		// Σ_{i=0}^{k-1} τ^i, computed stably.
		var geo float64
		pow := 1.0
		for i := 0; i < k; i++ {
			geo += pow
			pow *= tau
		}
		// pow is now τ^k.
		est = (float64(k+1)*nh - pow*m) / geo
	case JUNumeric:
		pht, phf := conditionalProbs(e.family, k, tau)
		if pht-phf <= 0 {
			return 0, nil
		}
		est = (nh - m*phf) / (pht - phf)
	}
	return clampEstimate(est, m), nil
}

// conditionalProbs evaluates Equations (2) and (3) for an arbitrary family:
// areas of f(s) = p(s)^k left and right of τ (Figure 1), then
// P(H|T) = area_right/(1−τ) and P(H|F) = area_left/τ.
func conditionalProbs(family lsh.Family, k int, tau float64) (pht, phf float64) {
	f := func(s float64) float64 { return math.Pow(family.CollisionProb(s), float64(k)) }
	left := simpson(f, 0, tau, 256)
	right := simpson(f, tau, 1, 256)
	if tau < 1 {
		pht = right / (1 - tau)
	} else {
		pht = f(1)
	}
	phf = left / tau
	return pht, phf
}

// simpson integrates f over [a, b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if b <= a {
		return 0
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
