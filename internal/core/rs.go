package core

import (
	"fmt"

	"lshjoin/internal/sample"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// RSPop is the RS(pop) baseline of §3.1: m pairs of vectors drawn uniformly
// at random with replacement from the cross product; the count of pairs
// meeting τ is scaled by M/m.
type RSPop struct {
	data []vecmath.Vector
	sim  SimFunc
	m    int
}

// NewRSPop builds the estimator. m defaults to 1.5·n when non-positive (the
// paper's runtime-matched budget m_R = 1.5n).
func NewRSPop(data []vecmath.Vector, sim SimFunc, m int) (*RSPop, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("core: RS(pop) needs at least 2 vectors, got %d", len(data))
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	if m <= 0 {
		m = len(data) + len(data)/2
	}
	return &RSPop{data: data, sim: sim, m: m}, nil
}

// Name implements Estimator.
func (e *RSPop) Name() string { return "RS(pop)" }

// SampleSize returns the pair budget m.
func (e *RSPop) SampleSize() int { return e.m }

// Estimate implements Estimator.
func (e *RSPop) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	hits := 0
	for s := 0; s < e.m; s++ {
		i, j := sample.UniformPair(rng, len(e.data))
		if e.sim(e.data[i], e.data[j]) >= tau {
			hits++
		}
	}
	m := pairsOf(len(e.data))
	return clampEstimate(float64(hits)*m/float64(e.m), m), nil
}

// RSCross is the RS(cross) baseline (cross sampling, Haas et al. [10]):
// draw ⌈√m⌉ records without replacement and compare all pairs among them;
// scale the hit count by M / C(r, 2).
type RSCross struct {
	data []vecmath.Vector
	sim  SimFunc
	r    int // records sampled
}

// NewRSCross builds the estimator with a pair budget m (so that its cost is
// comparable to RS(pop) with the same m); r = ⌈√m⌉ records are drawn.
func NewRSCross(data []vecmath.Vector, sim SimFunc, m int) (*RSCross, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("core: RS(cross) needs at least 2 vectors, got %d", len(data))
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	if m <= 0 {
		m = len(data) + len(data)/2
	}
	r := 2
	for r*(r-1)/2 < m {
		r++
	}
	if r > len(data) {
		r = len(data)
	}
	return &RSCross{data: data, sim: sim, r: r}, nil
}

// Name implements Estimator.
func (e *RSCross) Name() string { return "RS(cross)" }

// Records returns the number of records drawn per estimate.
func (e *RSCross) Records() int { return e.r }

// Estimate implements Estimator.
func (e *RSCross) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	ids, err := sample.WithoutReplacement(rng, len(e.data), e.r)
	if err != nil {
		return 0, err
	}
	hits := 0
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			if e.sim(e.data[ids[a]], e.data[ids[b]]) >= tau {
				hits++
			}
		}
	}
	m := pairsOf(len(e.data))
	samplePairs := pairsOf(e.r)
	return clampEstimate(float64(hits)*m/samplePairs, m), nil
}
