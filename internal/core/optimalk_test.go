package core

import (
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func TestOptimalKValidation(t *testing.T) {
	data := testData(50, 1)
	fam := lsh.NewSimHash(2)
	rng := xrand.New(3)
	cases := []struct {
		name string
		run  func() error
	}{
		{"tiny data", func() error {
			_, _, err := OptimalK(data[:1], fam, nil, 0.5, 0.1, 1, 5, 0, 100, rng)
			return err
		}},
		{"nil family", func() error {
			_, _, err := OptimalK(data, nil, nil, 0.5, 0.1, 1, 5, 0, 100, rng)
			return err
		}},
		{"bad tau", func() error {
			_, _, err := OptimalK(data, fam, nil, 0, 0.1, 1, 5, 0, 100, rng)
			return err
		}},
		{"bad rho", func() error {
			_, _, err := OptimalK(data, fam, nil, 0.5, 1.5, 1, 5, 0, 100, rng)
			return err
		}},
		{"bad range", func() error {
			_, _, err := OptimalK(data, fam, nil, 0.5, 0.1, 5, 3, 0, 100, rng)
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// TestOptimalKPrecisionGrowsWithK: on duplicate-heavy data, a larger k keeps
// only the duplicates co-bucketed, so P(T|H) rises toward 1.
func TestOptimalKPrecisionGrowsWithK(t *testing.T) {
	// 30 duplicate clusters of 3 + 400 random singletons.
	var data []vecmath.Vector
	rng := xrand.New(5)
	for c := 0; c < 30; c++ {
		base := make([]uint32, 6)
		for i := range base {
			base[i] = uint32(rng.Intn(500))
		}
		v := vecmath.FromDims(base)
		data = append(data, v, v, v)
	}
	for i := 0; i < 400; i++ {
		ds := make([]uint32, 6)
		for j := range ds {
			ds[j] = uint32(rng.Intn(500))
		}
		data = append(data, vecmath.FromDims(ds))
	}
	fam := lsh.NewSimHash(7)
	_, reports, err := OptimalK(data, fam, nil, 0.95, 2.0, 2, 24, 0, 4000, xrand.New(9))
	if err == nil {
		// rho = 2.0 rejected above; adjust: use valid rho and inspect curve.
		t.Fatal("rho > 1 should have been rejected")
	}
	chosen, reports, err := OptimalK(data, fam, nil, 0.95, 0.9, 2, 24, 0, 4000, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if chosen < 2 || chosen > 24 {
		t.Fatalf("chosen k = %d out of range", chosen)
	}
	// Precision at the chosen k must meet the target (the data has real
	// duplicates, so the target is reachable).
	last := reports[len(reports)-1]
	if last.K != chosen {
		t.Fatalf("reports should end at the chosen k, got %d vs %d", last.K, chosen)
	}
	if last.Precision < 0.9 {
		t.Errorf("precision at chosen k = %v < target", last.Precision)
	}
	// And the first candidate (k = 2) should have much lower precision.
	if reports[0].Precision >= last.Precision {
		t.Errorf("precision did not grow: k=2 → %v, k=%d → %v",
			reports[0].Precision, last.K, last.Precision)
	}
}

func TestOptimalKUnreachableTarget(t *testing.T) {
	// No duplicates at all: precision at τ = 0.99 stays ~0, so the function
	// falls back to kMax.
	data := testData(200, 11)
	noDup := make([]vecmath.Vector, 0, len(data))
	seen := map[string]bool{}
	for _, v := range data {
		key := v.String()
		if !seen[key] {
			seen[key] = true
			noDup = append(noDup, v)
		}
	}
	chosen, reports, err := OptimalK(noDup, lsh.NewSimHash(13), nil, 0.999, 0.99, 2, 6, 0, 500, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 6 {
		t.Errorf("unreachable target should fall back to kMax=6, got %d", chosen)
	}
	if len(reports) != 5 {
		t.Errorf("expected all 5 candidates probed, got %d", len(reports))
	}
}

func TestOptimalKSubsampling(t *testing.T) {
	data := testData(500, 17)
	chosen, _, err := OptimalK(data, lsh.NewSimHash(19), nil, 0.9, 0.2, 4, 16, 100, 1000, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if chosen < 4 || chosen > 16 {
		t.Errorf("chosen k = %d out of range", chosen)
	}
}
