package core

import (
	"fmt"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// DampMode selects how SampleL scales its count when the adaptive loop
// exhausts its budget without reaching the answer-size threshold δ
// (line 10 of Algorithm 1).
type DampMode int

// Damp modes.
const (
	// DampOff returns the safe lower bound Ĵ_L = n_L (plain LSH-SS).
	DampOff DampMode = iota
	// DampAuto uses the paper's §6.1 default c_s = n_L/δ, i.e.
	// Ĵ_L = n_L·(n_L/δ)·(N_L/m_L) — the LSH-SS(D) configuration.
	DampAuto
	// DampConst uses a fixed dampening constant c_s ∈ (0, 1]:
	// Ĵ_L = n_L·c_s·(N_L/m_L) (App. C.3 studies c_s ∈ {0.1, 0.5, 1}).
	DampConst
)

// stratum abstracts the pair-space partition LSH-SS samples over: stratum H
// (co-bucketed pairs, weight-sampled) versus everything else. One LSH table
// implements it directly; a sharded group's merged per-table view (see
// sharded.go) implements it by combining per-shard weights, which is what
// lets one Algorithm 1 implementation serve both single and sharded indexes.
type stratum interface {
	// M is the total number of unordered pairs C(n, 2).
	M() int64
	// NH is the number of pairs sharing a bucket.
	NH() int64
	// NL is M − N_H.
	NL() int64
	// SamplePair draws a uniform random stratum-H pair; ok is false when
	// N_H = 0.
	SamplePair(rng *xrand.RNG) (i, j int, ok bool)
	// SameBucket reports whether the pair (i, j) belongs to stratum H.
	SameBucket(i, j int) bool
}

// dataView abstracts vector access by id so estimators read either a plain
// snapshot slice or a sharded group's dense union view.
type dataView interface {
	At(i int) vecmath.Vector
}

// sliceView adapts a vector slice to dataView.
type sliceView []vecmath.Vector

func (s sliceView) At(i int) vecmath.Vector { return s[i] }

// LSHSS is Algorithm 1 of the paper: stratified sampling over the two strata
// induced by one LSH table. SampleH draws m_H uniform pairs from stratum H
// (co-bucketed pairs, each drawn by an O(log #buckets) descent of the
// table's persistent Fenwick weight index) and scales by N_H/m_H;
// SampleL runs Lipton-style adaptive sampling over stratum L, scaling up
// only when it observed at least δ true pairs and otherwise returning a safe
// lower bound (or a dampened scale-up). The final estimate is Ĵ = Ĵ_H + Ĵ_L.
type LSHSS struct {
	strat stratum
	view  dataView
	n     int
	sim   SimFunc

	tableIdx    int
	mH, mL      int
	delta       int
	damp        DampMode
	cs          float64
	alwaysScale bool // ablation: scale up even when unreliable
	maxReject   int
}

// LSHSSOption customizes an LSHSS estimator.
type LSHSSOption func(*LSHSS)

// WithSampleSizes overrides m_H and m_L (both default to n, the paper's
// choice giving the Theorem 1/3 guarantees).
func WithSampleSizes(mH, mL int) LSHSSOption {
	return func(e *LSHSS) { e.mH, e.mL = mH, mL }
}

// WithDelta overrides the answer-size threshold δ (default ⌈log₂ n⌉).
func WithDelta(delta int) LSHSSOption {
	return func(e *LSHSS) { e.delta = delta }
}

// WithDamp selects the dampened scale-up of LSH-SS(D). cs is used only with
// DampConst.
func WithDamp(mode DampMode, cs float64) LSHSSOption {
	return func(e *LSHSS) { e.damp, e.cs = mode, cs }
}

// WithAlwaysScale disables the safe-lower-bound rule entirely, scaling the
// SampleL count by N_L/m_L even when unreliable. This exists for the
// ablation benchmarks; the paper's algorithm never does this.
func WithAlwaysScale() LSHSSOption {
	return func(e *LSHSS) { e.alwaysScale = true }
}

// WithTable selects which of the snapshot's ℓ tables induces the strata
// (default 0). The multi-table median estimator runs one LSHSS per table.
func WithTable(t int) LSHSSOption {
	return func(e *LSHSS) { e.tableIdx = t }
}

// newSSBase resolves the n-scaled defaults and options shared by every
// LSH-SS-family constructor (single-table, merged, virtual-bucket probe) and
// validates them; the caller then binds strat/view/n.
func newSSBase(n int, sim SimFunc, opts []LSHSSOption) (*LSHSS, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: LSH-SS needs at least 2 vectors, got %d", n)
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	e := &LSHSS{
		sim:       sim,
		n:         n,
		mH:        n,
		mL:        n,
		delta:     int(math.Ceil(math.Log2(float64(n)))),
		damp:      DampOff,
		cs:        1,
		maxReject: 4096,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.mH < 1 || e.mL < 1 {
		return nil, fmt.Errorf("core: sample sizes must be positive (mH=%d, mL=%d)", e.mH, e.mL)
	}
	if e.delta < 1 {
		return nil, fmt.Errorf("core: δ must be positive, got %d", e.delta)
	}
	if e.damp == DampConst && (e.cs <= 0 || e.cs > 1) {
		return nil, fmt.Errorf("core: dampening factor must be in (0, 1], got %v", e.cs)
	}
	return e, nil
}

// NewLSHSS builds the estimator over one table of an index snapshot. The
// estimator binds to the snapshot at construction: it answers over that
// immutable version forever, unaffected by concurrent inserts into the
// owning index. sim defaults to cosine.
func NewLSHSS(snap *lsh.Snapshot, sim SimFunc, opts ...LSHSSOption) (*LSHSS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: LSH-SS needs an index snapshot")
	}
	e, err := newSSBase(snap.N(), sim, opts)
	if err != nil {
		return nil, err
	}
	if e.tableIdx < 0 || e.tableIdx >= snap.L() {
		return nil, fmt.Errorf("core: table %d out of range [0, %d)", e.tableIdx, snap.L())
	}
	e.strat = snap.Table(e.tableIdx)
	e.view = sliceView(snap.Data())
	return e, nil
}

// Name implements Estimator.
func (e *LSHSS) Name() string {
	if e.alwaysScale {
		return "LSH-SS(always-scale)"
	}
	if e.damp != DampOff {
		return "LSH-SS(D)"
	}
	return "LSH-SS"
}

// Detail reports the internals of one LSH-SS estimate, for diagnostics and
// the parameter-sweep experiments.
type Detail struct {
	Estimate  float64
	JH, JL    float64 // per-stratum estimates
	HitsH     int     // true pairs among the m_H stratum-H samples
	HitsL     int     // true pairs found by SampleL (n_L)
	TakenL    int     // pairs SampleL actually drew (i)
	ReliableL bool    // SampleL terminated by reaching δ
}

// Estimate implements Estimator.
func (e *LSHSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	d, err := e.EstimateDetailed(tau, rng)
	if err != nil {
		return 0, err
	}
	return d.Estimate, nil
}

// EstimateDetailed runs Algorithm 1 and returns per-stratum internals.
func (e *LSHSS) EstimateDetailed(tau float64, rng *xrand.RNG) (Detail, error) {
	if err := validateTau(tau); err != nil {
		return Detail{}, err
	}
	d := e.sampleH(tau, rng)
	e.sampleL(tau, rng, &d)
	d.Estimate = clampEstimate(d.JH+d.JL, float64(e.strat.M()))
	return d, nil
}

// sampleH is procedure SampleH: m_H uniform pairs from stratum H, scaled by
// N_H/m_H. The m_H draws are independent, so they fan out across
// deterministic shards (see parallel.go), each on its own split RNG stream;
// summing per-shard hit counts in shard order reproduces the same estimate
// for any GOMAXPROCS.
func (e *LSHSS) sampleH(tau float64, rng *xrand.RNG) Detail {
	var d Detail
	nh := e.strat.NH()
	if nh == 0 {
		return d // empty stratum contributes nothing
	}
	shards := sampleShards(e.mH)
	rngs := rng.SplitN(shards)
	hits := make([]int, shards)
	runShards(shards, func(s int) {
		r := rngs[s]
		q := shardQuota(e.mH, shards, s)
		h := 0
		for x := 0; x < q; x++ {
			i, j, ok := e.strat.SamplePair(r)
			if !ok {
				break
			}
			if e.sim(e.view.At(i), e.view.At(j)) >= tau {
				h++
			}
		}
		hits[s] = h
	})
	for _, h := range hits {
		d.HitsH += h
	}
	d.JH = float64(d.HitsH) * float64(nh) / float64(e.mH)
	return d
}

// lShard records one shard's slice of the adaptive sampling stream: which of
// its draws hit, how many draws it made, and whether its rejection sampler
// gave up early.
type lShard struct {
	hitPos    []int32 // 0-based draw positions within the shard that hit
	taken     int
	exhausted bool
}

// sampleL is procedure SampleL: adaptive sampling over stratum L with the
// safe lower bound (or dampened scale-up) on budget exhaustion.
//
// Parallel form: the m_L-draw budget is split across deterministic shards,
// each drawing on its own split stream and recording per-draw outcomes. The
// merge then replays Lipton's adaptive loop over the concatenated shard
// streams in shard order, stopping at δ hits or m_L draws exactly as the
// sequential loop would. A shard may stop early once its own hits reach δ:
// earlier shards can only add hits, so the merged walk is guaranteed to
// terminate at or before that point and never consults the unrecorded tail.
func (e *LSHSS) sampleL(tau float64, rng *xrand.RNG, d *Detail) {
	nl := e.strat.NL()
	if nl == 0 {
		return
	}
	notSame := func(i, j int) bool { return !e.strat.SameBucket(i, j) }
	shards := sampleShards(e.mL)
	rngs := rng.SplitN(shards)
	outs := make([]lShard, shards)
	runShards(shards, func(s int) {
		r := rngs[s]
		q := shardQuota(e.mL, shards, s)
		o := &outs[s]
		for x := 0; x < q && len(o.hitPos) < e.delta; x++ {
			i, j, ok := sample.RejectPair(r, e.n, notSame, e.maxReject)
			if !ok {
				o.exhausted = true
				break
			}
			if e.sim(e.view.At(i), e.view.At(j)) >= tau {
				o.hitPos = append(o.hitPos, int32(x))
			}
			o.taken++
		}
	})
	res := mergeAdaptive(outs, e.delta, e.mL)
	d.HitsL = res.Hits
	d.TakenL = res.Taken
	d.ReliableL = res.Reliable
	switch {
	case res.Reliable:
		// Terminated by n_L ≥ δ: full scale-up by N_L/i (line 12).
		d.JL = float64(res.Hits) * float64(nl) / float64(res.Taken)
	case e.alwaysScale:
		d.JL = float64(res.Hits) * float64(nl) / float64(e.mL)
	default:
		// Budget exhausted (line 9–11).
		cs := 0.0
		switch e.damp {
		case DampOff:
			d.JL = float64(res.Hits) // safe lower bound
			return
		case DampAuto:
			cs = float64(res.Hits) / float64(e.delta)
		case DampConst:
			cs = e.cs
		}
		d.JL = float64(res.Hits) * cs * float64(nl) / float64(e.mL)
	}
}

// Params reports the effective tunables (n-scaled defaults resolved).
func (e *LSHSS) Params() (mH, mL, delta int, damp DampMode, cs float64) {
	return e.mH, e.mL, e.delta, e.damp, e.cs
}
