package core

import (
	"fmt"
	"sort"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Merged estimators over a sharded index (lsh.ShardGroup / lsh.GroupSnapshot).
//
// Bucket keys are shard-invariant, so the union index's stratum H decomposes
// exactly over the partition: a union bucket whose members split m_1..m_S
// across shards contributes C(Σm_s, 2) = Σ_s C(m_s, 2) + Σ_{a<b} m_a·m_b
// pairs. MergedStratum materializes that identity as a weight view over
// S intra-shard components (the per-shard tables, whose Fenwick weight
// indexes already serve per-bucket CumWeight sums) plus S·(S−1)/2
// cross-shard bipartite components (lsh.Bipartite over each shard pair).
// N_H sums component weights, SamplePair picks a component by its cumulative
// weight and then delegates to the component's own weighted bucket sampler,
// and SameBucket compares bucket keys across shards — together exactly the
// stratum interface Algorithm 1 samples through, so LSH-SS, its curve
// variant, the median estimator and the virtual-bucket estimator all run
// over shards unchanged, with the same deterministic RNG-split parallel
// sampling discipline as the single-index path.
//
// With S = 1 every merged constructor delegates to its single-snapshot
// counterpart, which makes an S=1 sharded collection draw-for-draw identical
// to the unsharded one.

// stratumComponent is one additive slice of the merged stratum H: an
// intra-shard table or a cross-shard bucket matching. samplePair returns
// dense union ids.
type stratumComponent interface {
	weight() int64
	samplePair(rng *xrand.RNG) (i, j int, ok bool)
}

// intraComponent wraps shard s's table: pairs co-bucketed within the shard.
type intraComponent struct {
	tab *lsh.Table
	off int
}

func (c intraComponent) weight() int64 { return c.tab.NH() }

func (c intraComponent) samplePair(rng *xrand.RNG) (i, j int, ok bool) {
	i, j, ok = c.tab.SamplePair(rng)
	return i + c.off, j + c.off, ok
}

// crossComponent wraps the bipartite matching of one shard pair: pairs whose
// members live on different shards but share a bucket key.
type crossComponent struct {
	bp         *lsh.Bipartite
	offL, offR int
}

func (c crossComponent) weight() int64 { return c.bp.NH() }

func (c crossComponent) samplePair(rng *xrand.RNG) (i, j int, ok bool) {
	u, v, ok := c.bp.SamplePair(rng)
	return u + c.offL, v + c.offR, ok
}

// MergedStratum is the global stratum-H weight view of table t across a
// captured shard-snapshot vector. It implements the stratum interface over
// dense union ids and is immutable and safe for concurrent use, like
// everything snapshot-backed.
type MergedStratum struct {
	gs    *lsh.GroupSnapshot
	t     int
	comps []stratumComponent
	cum   []int64 // cumulative component weights; cum[len-1] = NH
	nh    int64
}

// NewMergedStratum combines table t of every shard snapshot into one global
// weight view. Construction walks each shard pair's buckets once to build
// the bipartite matchings — O(S² · #buckets) — so estimators build it once
// and sample many times.
func NewMergedStratum(gs *lsh.GroupSnapshot, t int) (*MergedStratum, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: merged stratum needs a group snapshot")
	}
	if t < 0 || t >= gs.L() {
		return nil, fmt.Errorf("core: table %d out of range [0, %d)", t, gs.L())
	}
	ms := &MergedStratum{gs: gs, t: t}
	for a := 0; a < gs.S(); a++ {
		ms.comps = append(ms.comps, intraComponent{tab: gs.Snap(a).Table(t), off: gs.Offset(a)})
		for b := a + 1; b < gs.S(); b++ {
			bp, err := lsh.NewBipartite(gs.Snap(a), gs.Snap(b), t)
			if err != nil {
				return nil, err
			}
			ms.comps = append(ms.comps, crossComponent{bp: bp, offL: gs.Offset(a), offR: gs.Offset(b)})
		}
	}
	ms.cum = make([]int64, len(ms.comps))
	for i, c := range ms.comps {
		ms.nh += c.weight()
		ms.cum[i] = ms.nh
	}
	return ms, nil
}

// M returns the total number of unordered pairs C(n, 2) of the union corpus.
func (ms *MergedStratum) M() int64 {
	n := int64(ms.gs.N())
	return n * (n - 1) / 2
}

// NH returns the union stratum-H size: Σ over components, exactly equal to
// the N_H a single index over the union corpus would maintain.
func (ms *MergedStratum) NH() int64 { return ms.nh }

// NL returns M − N_H.
func (ms *MergedStratum) NL() int64 { return ms.M() - ms.nh }

// Components returns the number of additive weight components
// (S intra-shard + C(S, 2) cross-shard).
func (ms *MergedStratum) Components() int { return len(ms.comps) }

// CumWeight returns the cumulative pair weight of components [0, c] — the
// merged analogue of Table.CumWeight's per-bucket prefix sums, and the
// boundaries SamplePair descends by.
func (ms *MergedStratum) CumWeight(c int) int64 {
	if c < 0 {
		return 0
	}
	if c >= len(ms.cum) {
		c = len(ms.cum) - 1
	}
	return ms.cum[c]
}

// SamplePair draws a uniform random pair from the union stratum H: a
// component chosen with probability weight/N_H by its cumulative weight,
// then that component's own weighted bucket sampler (the per-shard Fenwick
// descent, or the bipartite matched-bucket search). Since every stratum-H
// pair belongs to exactly one component, the draw is uniform over the union.
func (ms *MergedStratum) SamplePair(rng *xrand.RNG) (i, j int, ok bool) {
	if ms.nh == 0 {
		return 0, 0, false
	}
	x := int64(rng.Uint64n(uint64(ms.nh)))
	c := sort.Search(len(ms.cum), func(k int) bool { return ms.cum[k] > x })
	return ms.comps[c].samplePair(rng)
}

// SameBucket reports whether dense pair (i, j) belongs to the union stratum
// H of table t — same-shard pairs test their shard's table, cross-shard
// pairs compare bucket keys across tables.
func (ms *MergedStratum) SameBucket(i, j int) bool {
	return ms.gs.SameBucketInTable(ms.t, i, j)
}

// MergedBipartiteStratum is the cross-group stratum-H weight view of
// App. B.2.2 over two captured shard-snapshot vectors: the bipartite bucket
// matching between the union sides, decomposed into the S_left·S_right
// per-shard-pair lsh.Bipartite components. Because bucket keys are
// shard-invariant, a union matched-bucket pair with b_j left members split
// across left shards and c_i right members split across right shards
// contributes Σ_a Σ_b b_j,a·c_i,b = b_j·c_i cross pairs — every stratum-H
// cross pair lives in exactly one component — so N_H sums component weights
// and SamplePair stays uniform over the union stratum. It implements the
// BipartiteStratum interface (dense ids within each group's own id space)
// and is immutable and safe for concurrent use.
type MergedBipartiteStratum struct {
	left, right *lsh.GroupSnapshot
	t           int
	comps       []crossComponent
	cum         []int64 // cumulative component weights; cum[len-1] = NH
	nh          int64
}

// NewMergedBipartiteStratum combines table t of every (left shard, right
// shard) pair into one cross-group weight view. Construction walks each
// shard pair's buckets once to build the bipartite matchings —
// O(S_left·S_right·#buckets) — so estimators build it once and sample many
// times. Both groups must be hashed with the same family and k.
func NewMergedBipartiteStratum(left, right *lsh.GroupSnapshot, t int) (*MergedBipartiteStratum, error) {
	return newMergedBipartiteStratumReuse(left, right, t, nil)
}

// newMergedBipartiteStratumReuse is NewMergedBipartiteStratum with component
// reuse: when reuse is non-nil, reuse(a, b) may return an already-built
// bipartite matching for shard pair (a, b) — valid only if both shards'
// snapshots are unchanged, which the caller is responsible for checking by
// version — and nil to build fresh. Offsets and cumulative weights are
// always reassembled from the given snapshots, since a publish on one shard
// shifts every later shard's dense offset.
func newMergedBipartiteStratumReuse(left, right *lsh.GroupSnapshot, t int, reuse func(a, b int) *lsh.Bipartite) (*MergedBipartiteStratum, error) {
	if err := lsh.CompatibleCross(left, right); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if t < 0 || t >= left.L() || t >= right.L() {
		return nil, fmt.Errorf("core: table %d out of range", t)
	}
	ms := &MergedBipartiteStratum{left: left, right: right, t: t}
	for a := 0; a < left.S(); a++ {
		for b := 0; b < right.S(); b++ {
			var bp *lsh.Bipartite
			if reuse != nil {
				bp = reuse(a, b)
			}
			if bp == nil {
				var err error
				bp, err = lsh.NewBipartite(left.Snap(a), right.Snap(b), t)
				if err != nil {
					return nil, err
				}
			}
			ms.comps = append(ms.comps, crossComponent{bp: bp, offL: left.Offset(a), offR: right.Offset(b)})
		}
	}
	ms.cum = make([]int64, len(ms.comps))
	for i, c := range ms.comps {
		ms.nh += c.weight()
		ms.cum[i] = ms.nh
	}
	return ms, nil
}

// M returns the total number of cross pairs |U|·|V| of the union sides.
func (ms *MergedBipartiteStratum) M() int64 {
	return int64(ms.left.N()) * int64(ms.right.N())
}

// NH returns the union cross-stratum-H size: Σ over shard-pair components,
// exactly equal to the N_H one bipartite matching over the union sides
// would maintain.
func (ms *MergedBipartiteStratum) NH() int64 { return ms.nh }

// NL returns M − N_H.
func (ms *MergedBipartiteStratum) NL() int64 { return ms.M() - ms.nh }

// LeftN and RightN return the union collection sizes.
func (ms *MergedBipartiteStratum) LeftN() int  { return ms.left.N() }
func (ms *MergedBipartiteStratum) RightN() int { return ms.right.N() }

// Components returns the number of additive weight components
// (S_left·S_right shard pairs).
func (ms *MergedBipartiteStratum) Components() int { return len(ms.comps) }

// CumWeight returns the cumulative cross-pair weight of components [0, c] —
// the boundaries SamplePair descends by.
func (ms *MergedBipartiteStratum) CumWeight(c int) int64 {
	if c < 0 {
		return 0
	}
	if c >= len(ms.cum) {
		c = len(ms.cum) - 1
	}
	return ms.cum[c]
}

// SamplePair draws a uniform random cross pair from the union stratum H: a
// shard-pair component chosen with probability weight/N_H by its cumulative
// weight, then that component's matched-bucket sampler. Dense group ids.
func (ms *MergedBipartiteStratum) SamplePair(rng *xrand.RNG) (u, v int, ok bool) {
	if ms.nh == 0 {
		return 0, 0, false
	}
	x := int64(rng.Uint64n(uint64(ms.nh)))
	c := sort.Search(len(ms.cum), func(k int) bool { return ms.cum[k] > x })
	return ms.comps[c].samplePair(rng)
}

// SameBucket reports whether left dense vector u and right dense vector v
// have equal g values in table t — the cross-group stratum-H membership
// test the rejection sampler calls per candidate pair.
func (ms *MergedBipartiteStratum) SameBucket(u, v int) bool {
	return ms.left.SameBucketAcrossGroups(ms.t, u, ms.right, v)
}

// Sim returns the family similarity between left dense vector u and right
// dense vector v.
func (ms *MergedBipartiteStratum) Sim(u, v int) float64 {
	return ms.left.Family().Sim(ms.left.At(u), ms.right.At(v))
}

// NewBipartiteStratum builds the cross-group stratum view of table t for a
// captured group pair: the plain per-snapshot bipartite matching at one
// shard per side (preserving the historic draw stream exactly), the merged
// per-shard-pair decomposition otherwise. The view is immutable — callers
// answering repeated estimates over an unchanged capture should build it
// once, cache it keyed on the pair's version vectors, and construct
// estimators over it per call (estimator construction itself is cheap).
func NewBipartiteStratum(left, right *lsh.GroupSnapshot, t int) (BipartiteStratum, error) {
	if err := lsh.CompatibleCross(left, right); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if left.S() == 1 && right.S() == 1 {
		return lsh.NewBipartite(left.Snap(0), right.Snap(0), t)
	}
	return NewMergedBipartiteStratum(left, right, t)
}

// NewGeneralLSHSSOver builds the general estimator over a prebuilt
// bipartite stratum view, for callers that cache the (expensive) view
// across estimates; NewGeneralLSHSS and NewMergedGeneralLSHSS are the
// build-and-bind conveniences on top of it.
func NewGeneralLSHSSOver(bp BipartiteStratum, sim SimFunc, opts ...GeneralOption) (*GeneralLSHSS, error) {
	if bp == nil {
		return nil, fmt.Errorf("core: general LSH-SS needs a bipartite stratum")
	}
	return newGeneralLSHSS(bp, sim, opts)
}

// NewMergedGeneralLSHSS builds the general (non-self) LSH-SS estimator of
// App. B.2.2 over two captured shard-snapshot vectors, stratified by the
// merged table-0 bipartite matching. With one shard on each side it
// delegates to the plain bipartite matching of the two snapshots,
// draw-for-draw — which is what keeps an S=1 live cross join identical to
// the static single-snapshot path.
func NewMergedGeneralLSHSS(left, right *lsh.GroupSnapshot, sim SimFunc, opts ...GeneralOption) (*GeneralLSHSS, error) {
	bs, err := NewBipartiteStratum(left, right, 0)
	if err != nil {
		return nil, err
	}
	return newGeneralLSHSS(bs, sim, opts)
}

// NewMergedLSHSS builds LSH-SS over a captured shard-snapshot vector: the
// stratifying table (WithTable) is the merged per-table weight view, and the
// vector data is the dense union corpus. With one shard it delegates to
// NewLSHSS on that shard's snapshot, draw-for-draw.
func NewMergedLSHSS(gs *lsh.GroupSnapshot, sim SimFunc, opts ...LSHSSOption) (*LSHSS, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: merged LSH-SS needs a group snapshot")
	}
	if gs.S() == 1 {
		return NewLSHSS(gs.Snap(0), sim, opts...)
	}
	e, err := newSSBase(gs.N(), sim, opts)
	if err != nil {
		return nil, err
	}
	if e.tableIdx < 0 || e.tableIdx >= gs.L() {
		return nil, fmt.Errorf("core: table %d out of range [0, %d)", e.tableIdx, gs.L())
	}
	ms, err := NewMergedStratum(gs, e.tableIdx)
	if err != nil {
		return nil, err
	}
	e.strat = ms
	e.view = sliceView(gs.Data())
	return e, nil
}

// NewMergedMedianSS builds the median estimator over a shard-snapshot
// vector: one merged LSH-SS per table, median of the per-table estimates.
func NewMergedMedianSS(gs *lsh.GroupSnapshot, sim SimFunc, opts ...LSHSSOption) (*MedianSS, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: merged median estimator needs a group snapshot")
	}
	subs := make([]*LSHSS, 0, gs.L())
	for t := 0; t < gs.L(); t++ {
		s, err := NewMergedLSHSS(gs, sim, append(append([]LSHSSOption(nil), opts...), WithTable(t))...)
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return &MedianSS{subs: subs}, nil
}

// groupTables adapts a shard-snapshot vector plus its per-table merged
// strata to the virtual-bucket estimator's tableView.
type groupTables struct {
	gs     *lsh.GroupSnapshot
	data   sliceView
	strata []*MergedStratum
}

func (v groupTables) L() int                          { return v.gs.L() }
func (v groupTables) N() int                          { return v.gs.N() }
func (v groupTables) At(i int) vecmath.Vector         { return v.data.At(i) }
func (v groupTables) TableNH(t int) int64             { return v.strata[t].NH() }
func (v groupTables) SameAnyBucket(i, j int) bool     { return v.gs.SameAnyBucket(i, j) }
func (v groupTables) BucketMultiplicity(i, j int) int { return v.gs.BucketMultiplicity(i, j) }
func (v groupTables) SampleTablePair(t int, rng *xrand.RNG) (i, j int, ok bool) {
	return v.strata[t].SamplePair(rng)
}

// NewMergedVirtualSS builds the virtual-bucket estimator over a
// shard-snapshot vector: the per-table mixture weights are the merged
// N_H,t sums and the importance draws come from the merged per-table
// samplers, with bucket multiplicity evaluated across shards.
func NewMergedVirtualSS(gs *lsh.GroupSnapshot, sim SimFunc, opts ...LSHSSOption) (*VirtualSS, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: merged virtual-bucket estimator needs a group snapshot")
	}
	if gs.S() == 1 {
		return NewVirtualSS(gs.Snap(0), sim, opts...)
	}
	view := groupTables{gs: gs, data: sliceView(gs.Data())}
	for t := 0; t < gs.L(); t++ {
		ms, err := NewMergedStratum(gs, t)
		if err != nil {
			return nil, err
		}
		view.strata = append(view.strata, ms)
	}
	return newVirtualSSView(view, sim, opts)
}

// NewMergedJU builds the uniformity estimator over a shard-snapshot vector.
// JU consumes only (M, N_H, k) and the family's collision curve, and the
// merged N_H equals the union index's N_H exactly, so the sharded JU is
// equal — not just close — to the single-index JU over the same corpus.
func NewMergedJU(gs *lsh.GroupSnapshot, mode JUMode) (*JU, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: JU needs a group snapshot")
	}
	if gs.S() == 1 {
		return NewJU(gs.Snap(0), mode)
	}
	ms, err := NewMergedStratum(gs, 0)
	if err != nil {
		return nil, err
	}
	return newJUFrom(ms.M(), ms.NH(), gs.K(), gs.Family(), mode)
}

// NewMergedLSHS builds the sampled collision estimator over a shard-snapshot
// vector, with the merged table-0 N_H and the dense union corpus.
func NewMergedLSHS(gs *lsh.GroupSnapshot, m int) (*LSHS, error) {
	if gs == nil {
		return nil, fmt.Errorf("core: LSH-S needs a group snapshot")
	}
	if gs.S() == 1 {
		return NewLSHS(gs.Snap(0), m)
	}
	ms, err := NewMergedStratum(gs, 0)
	if err != nil {
		return nil, err
	}
	return newLSHSFrom(ms.M(), ms.NH(), gs.K(), gs.Family(), sliceView(gs.Data()), gs.N(), m)
}
