package core

import (
	"fmt"
	"sort"

	"lshjoin/internal/sample"
	"lshjoin/internal/xrand"
)

// EstimateCurve estimates the whole selectivity curve J(τ) for a grid of
// thresholds from a single sampling pass — the query-optimizer use case
// where one similarity predicate is costed at many candidate thresholds.
//
// SampleH draws m_H stratum-H pairs once and records their similarities;
// Ĵ_H(τ) is the recorded count ≥ τ scaled by N_H/m_H. SampleL draws one
// stream of up to m_L stratum-L pairs and replays Algorithm 1's adaptive
// stopping rule per threshold: if the δ-th success at level τ occurred at
// draw i_τ, the adaptive estimator would have stopped there, giving
// Ĵ_L(τ) = δ·N_L/i_τ; thresholds that never reach δ successes fall back to
// the safe lower bound (or the dampened scale-up, matching the estimator's
// configuration).
//
// The result is aligned with taus and is non-increasing after sorting taus
// ascending, matching the monotonicity of the true curve.
func (e *LSHSS) EstimateCurve(taus []float64, rng *xrand.RNG) ([]float64, error) {
	if len(taus) == 0 {
		return nil, fmt.Errorf("core: empty threshold grid")
	}
	for _, tau := range taus {
		if err := validateTau(tau); err != nil {
			return nil, err
		}
	}
	// Sorted view with back-mapping so the sampling pass is shared.
	order := make([]int, len(taus))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return taus[order[a]] < taus[order[b]] })

	// One SampleH pass: record similarities.
	nh := e.strat.NH()
	simsH := make([]float64, 0, e.mH)
	if nh > 0 {
		for s := 0; s < e.mH; s++ {
			i, j, ok := e.strat.SamplePair(rng)
			if !ok {
				break
			}
			simsH = append(simsH, e.sim(e.view.At(i), e.view.At(j)))
		}
	}
	sort.Float64s(simsH)

	// One SampleL stream: record similarities in draw order.
	nl := e.strat.NL()
	simsL := make([]float64, 0, e.mL)
	if nl > 0 {
		notSame := func(i, j int) bool { return !e.strat.SameBucket(i, j) }
		for s := 0; s < e.mL; s++ {
			i, j, ok := sample.RejectPair(rng, e.n, notSame, e.maxReject)
			if !ok {
				break
			}
			simsL = append(simsL, e.sim(e.view.At(i), e.view.At(j)))
		}
	}

	out := make([]float64, len(taus))
	for _, idx := range order {
		tau := taus[idx]
		// Ĵ_H(τ): binary search over the sorted stratum-H similarities.
		var jh float64
		if len(simsH) > 0 {
			hits := len(simsH) - sort.SearchFloat64s(simsH, tau)
			jh = float64(hits) * float64(nh) / float64(e.mH)
		}
		// Ĵ_L(τ): replay the adaptive stopping rule on the recorded stream.
		var jl float64
		if nl > 0 {
			hits := 0
			stop := -1
			for i, s := range simsL {
				if s >= tau {
					hits++
					if hits == e.delta {
						stop = i + 1 // the adaptive loop stops here
						break
					}
				}
			}
			switch {
			case stop > 0:
				jl = float64(e.delta) * float64(nl) / float64(stop)
			case e.alwaysScale:
				jl = float64(hits) * float64(nl) / float64(e.mL)
			default:
				cs := 0.0
				switch e.damp {
				case DampOff:
					jl = float64(hits)
				case DampAuto:
					cs = float64(hits) / float64(e.delta)
					jl = float64(hits) * cs * float64(nl) / float64(e.mL)
				case DampConst:
					jl = float64(hits) * e.cs * float64(nl) / float64(e.mL)
				}
			}
		}
		out[idx] = clampEstimate(jh+jl, float64(e.strat.M()))
	}
	return out, nil
}
