package core

import (
	"fmt"
	"math"
	"sort"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// GeneralRS is uniform pair sampling for the general (non-self) VSJ problem
// of App. B.2.2: estimate |{(u,v) : u ∈ U, v ∈ V, sim(u,v) ≥ τ}| from m
// uniform cross pairs.
type GeneralRS struct {
	left, right []vecmath.Vector
	sim         SimFunc
	m           int
}

// NewGeneralRS builds the estimator; m defaults to 1.5·(|U|+|V|)/2.
func NewGeneralRS(left, right []vecmath.Vector, sim SimFunc, m int) (*GeneralRS, error) {
	if len(left) == 0 || len(right) == 0 {
		return nil, fmt.Errorf("core: general RS needs non-empty collections")
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	if m <= 0 {
		m = 3 * (len(left) + len(right)) / 4
	}
	return &GeneralRS{left: left, right: right, sim: sim, m: m}, nil
}

// Name implements Estimator.
func (e *GeneralRS) Name() string { return "RS(general)" }

// Estimate implements Estimator.
func (e *GeneralRS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	hits := 0
	for s := 0; s < e.m; s++ {
		u := rng.Intn(len(e.left))
		v := rng.Intn(len(e.right))
		if e.sim(e.left[u], e.right[v]) >= tau {
			hits++
		}
	}
	m := float64(len(e.left)) * float64(len(e.right))
	return clampEstimate(float64(hits)*m/float64(e.m), m), nil
}

// BipartiteStratum abstracts the cross-pair space partition the general
// estimator samples over: stratum H (cross pairs whose buckets share a g
// value, weight-sampled) versus everything else. One lsh.Bipartite matching
// implements it directly; a sharded group pair's merged view (see
// sharded.go) implements it by combining per-shard-pair matchings, which is
// what lets one App. B.2.2 implementation serve both single-snapshot and
// shard-group cross joins. The view is immutable, so callers serving
// repeated estimates over an unchanged capture should build it once (see
// NewBipartiteStratum) and construct estimators over it per call.
type BipartiteStratum interface {
	// M is the total number of cross pairs |U|·|V|.
	M() int64
	// NH is the number of cross pairs whose buckets share a g value.
	NH() int64
	// NL is M − N_H.
	NL() int64
	// SamplePair draws a uniform random stratum-H cross pair; ok is false
	// when N_H = 0.
	SamplePair(rng *xrand.RNG) (u, v int, ok bool)
	// SameBucket reports whether u ∈ U and v ∈ V have equal g values.
	SameBucket(u, v int) bool
	// Sim returns the family similarity between u ∈ U and v ∈ V.
	Sim(u, v int) float64
	// LeftN and RightN return the collection sizes |U| and |V|.
	LeftN() int
	RightN() int
}

// GeneralLSHSS is LSH-SS for non-self joins (App. B.2.2): stratum H is the
// set of cross pairs with equal g values (sampled through a bipartite bucket
// matching with weight b_j·c_i), stratum L is everything else (rejection
// sampling).
type GeneralLSHSS struct {
	bp  BipartiteStratum
	sim SimFunc

	mH, mL    int
	delta     int
	damp      DampMode
	cs        float64
	maxReject int
}

// NewGeneralLSHSS builds the estimator over a bipartite bucket matching.
// Defaults mirror the self-join case with n = (|U|+|V|)/2: m_H = m_L = n,
// δ = ⌈log₂ n⌉.
func NewGeneralLSHSS(bp *lsh.Bipartite, sim SimFunc, opts ...GeneralOption) (*GeneralLSHSS, error) {
	if bp == nil {
		return nil, fmt.Errorf("core: general LSH-SS needs a bipartite matching")
	}
	return newGeneralLSHSS(bp, sim, opts)
}

// newGeneralLSHSS binds the estimator to any bipartite stratum view — the
// shared constructor behind the single-matching and merged cross-group
// entry points.
func newGeneralLSHSS(bp BipartiteStratum, sim SimFunc, opts []GeneralOption) (*GeneralLSHSS, error) {
	if sim == nil {
		sim = vecmath.Cosine
	}
	n := (bp.LeftN() + bp.RightN()) / 2
	if n < 1 {
		n = 1
	}
	e := &GeneralLSHSS{
		bp: bp, sim: sim,
		mH: n, mL: n,
		delta:     int(math.Ceil(math.Log2(float64(n + 1)))),
		damp:      DampOff,
		cs:        1,
		maxReject: 4096,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.mH < 1 || e.mL < 1 || e.delta < 1 {
		return nil, fmt.Errorf("core: invalid general LSH-SS parameters")
	}
	return e, nil
}

// GeneralOption customizes GeneralLSHSS.
type GeneralOption func(*GeneralLSHSS)

// WithGeneralSampleSizes overrides m_H and m_L.
func WithGeneralSampleSizes(mH, mL int) GeneralOption {
	return func(e *GeneralLSHSS) { e.mH, e.mL = mH, mL }
}

// WithGeneralDamp selects the dampened scale-up.
func WithGeneralDamp(mode DampMode, cs float64) GeneralOption {
	return func(e *GeneralLSHSS) { e.damp, e.cs = mode, cs }
}

// Name implements Estimator.
func (e *GeneralLSHSS) Name() string { return "LSH-SS(general)" }

// Estimate implements Estimator.
func (e *GeneralLSHSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	m := float64(e.bp.M())
	// SampleH over matched buckets.
	var jh float64
	if nh := e.bp.NH(); nh > 0 {
		hits := 0
		for s := 0; s < e.mH; s++ {
			u, v, ok := e.bp.SamplePair(rng)
			if !ok {
				break
			}
			if e.bp.Sim(u, v) >= tau {
				hits++
			}
		}
		jh = float64(hits) * float64(nh) / float64(e.mH)
	}
	// SampleL via rejection on g(u) = g(v).
	var jl float64
	if nl := e.bp.NL(); nl > 0 {
		res := sample.Adaptive(e.delta, e.mL, func() (bool, bool) {
			for t := 0; t < e.maxReject; t++ {
				u := rng.Intn(e.bp.LeftN())
				v := rng.Intn(e.bp.RightN())
				if e.bp.SameBucket(u, v) {
					continue
				}
				return e.bp.Sim(u, v) >= tau, true
			}
			return false, false
		})
		switch {
		case res.Reliable:
			jl = float64(res.Hits) * float64(nl) / float64(res.Taken)
		case e.damp == DampAuto:
			jl = float64(res.Hits) * (float64(res.Hits) / float64(e.delta)) * float64(nl) / float64(e.mL)
		case e.damp == DampConst:
			jl = float64(res.Hits) * e.cs * float64(nl) / float64(e.mL)
		default:
			jl = float64(res.Hits)
		}
	}
	return clampEstimate(jh+jl, m), nil
}

// EstimateCurve estimates the general selectivity curve J(τ) for a grid of
// thresholds from a single sampling pass — the cross-join analogue of
// LSHSS.EstimateCurve, for an optimizer costing one bipartite similarity
// predicate at many candidate thresholds.
//
// SampleH draws m_H stratum-H cross pairs once and records their
// similarities; Ĵ_H(τ) is the recorded count ≥ τ scaled by N_H/m_H. SampleL
// draws one stream of up to m_L stratum-L cross pairs and replays the
// adaptive stopping rule per threshold, falling back to the safe lower bound
// (or the configured dampened scale-up) where the δ-th success never
// arrives. The result aligns with taus and is monotone non-increasing after
// sorting taus ascending.
func (e *GeneralLSHSS) EstimateCurve(taus []float64, rng *xrand.RNG) ([]float64, error) {
	if len(taus) == 0 {
		return nil, fmt.Errorf("core: empty threshold grid")
	}
	for _, tau := range taus {
		if err := validateTau(tau); err != nil {
			return nil, err
		}
	}
	order := make([]int, len(taus))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return taus[order[a]] < taus[order[b]] })

	// One SampleH pass: record similarities of matched-bucket cross pairs.
	nh := e.bp.NH()
	simsH := make([]float64, 0, e.mH)
	if nh > 0 {
		for s := 0; s < e.mH; s++ {
			u, v, ok := e.bp.SamplePair(rng)
			if !ok {
				break
			}
			simsH = append(simsH, e.bp.Sim(u, v))
		}
	}
	sort.Float64s(simsH)

	// One SampleL stream: record similarities in draw order.
	nl := e.bp.NL()
	simsL := make([]float64, 0, e.mL)
	if nl > 0 {
	draws:
		for s := 0; s < e.mL; s++ {
			for t := 0; t < e.maxReject; t++ {
				u := rng.Intn(e.bp.LeftN())
				v := rng.Intn(e.bp.RightN())
				if e.bp.SameBucket(u, v) {
					continue
				}
				simsL = append(simsL, e.bp.Sim(u, v))
				continue draws
			}
			break // rejection budget exhausted: stratum L is all but gone
		}
	}

	out := make([]float64, len(taus))
	for _, idx := range order {
		tau := taus[idx]
		var jh float64
		if len(simsH) > 0 {
			hits := len(simsH) - sort.SearchFloat64s(simsH, tau)
			jh = float64(hits) * float64(nh) / float64(e.mH)
		}
		var jl float64
		if nl > 0 {
			hits := 0
			stop := -1
			for i, s := range simsL {
				if s >= tau {
					hits++
					if hits == e.delta {
						stop = i + 1 // the adaptive loop stops here
						break
					}
				}
			}
			switch {
			case stop > 0:
				jl = float64(e.delta) * float64(nl) / float64(stop)
			case e.damp == DampAuto:
				jl = float64(hits) * (float64(hits) / float64(e.delta)) * float64(nl) / float64(e.mL)
			case e.damp == DampConst:
				jl = float64(hits) * e.cs * float64(nl) / float64(e.mL)
			default:
				jl = float64(hits)
			}
		}
		out[idx] = clampEstimate(jh+jl, float64(e.bp.M()))
	}
	return out, nil
}

// ExactGeneralJoin counts the true cross-join size by brute force; it is the
// test oracle for the general estimators (O(|U|·|V|)).
func ExactGeneralJoin(left, right []vecmath.Vector, sim SimFunc, tau float64) int64 {
	if sim == nil {
		sim = vecmath.Cosine
	}
	var c int64
	for _, u := range left {
		for _, v := range right {
			if sim(u, v) >= tau {
				c++
			}
		}
	}
	return c
}
