package core

import (
	"fmt"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// GeneralRS is uniform pair sampling for the general (non-self) VSJ problem
// of App. B.2.2: estimate |{(u,v) : u ∈ U, v ∈ V, sim(u,v) ≥ τ}| from m
// uniform cross pairs.
type GeneralRS struct {
	left, right []vecmath.Vector
	sim         SimFunc
	m           int
}

// NewGeneralRS builds the estimator; m defaults to 1.5·(|U|+|V|)/2.
func NewGeneralRS(left, right []vecmath.Vector, sim SimFunc, m int) (*GeneralRS, error) {
	if len(left) == 0 || len(right) == 0 {
		return nil, fmt.Errorf("core: general RS needs non-empty collections")
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	if m <= 0 {
		m = 3 * (len(left) + len(right)) / 4
	}
	return &GeneralRS{left: left, right: right, sim: sim, m: m}, nil
}

// Name implements Estimator.
func (e *GeneralRS) Name() string { return "RS(general)" }

// Estimate implements Estimator.
func (e *GeneralRS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	hits := 0
	for s := 0; s < e.m; s++ {
		u := rng.Intn(len(e.left))
		v := rng.Intn(len(e.right))
		if e.sim(e.left[u], e.right[v]) >= tau {
			hits++
		}
	}
	m := float64(len(e.left)) * float64(len(e.right))
	return clampEstimate(float64(hits)*m/float64(e.m), m), nil
}

// GeneralLSHSS is LSH-SS for non-self joins (App. B.2.2): stratum H is the
// set of cross pairs with equal g values (sampled through lsh.Bipartite with
// weight b_j·c_i), stratum L is everything else (rejection sampling).
type GeneralLSHSS struct {
	bp  *lsh.Bipartite
	sim SimFunc

	mH, mL    int
	delta     int
	damp      DampMode
	cs        float64
	maxReject int
}

// NewGeneralLSHSS builds the estimator over a bipartite bucket matching.
// Defaults mirror the self-join case with n = (|U|+|V|)/2: m_H = m_L = n,
// δ = ⌈log₂ n⌉.
func NewGeneralLSHSS(bp *lsh.Bipartite, sim SimFunc, opts ...GeneralOption) (*GeneralLSHSS, error) {
	if bp == nil {
		return nil, fmt.Errorf("core: general LSH-SS needs a bipartite matching")
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	n := (bp.LeftN() + bp.RightN()) / 2
	if n < 1 {
		n = 1
	}
	e := &GeneralLSHSS{
		bp: bp, sim: sim,
		mH: n, mL: n,
		delta:     int(math.Ceil(math.Log2(float64(n + 1)))),
		damp:      DampOff,
		cs:        1,
		maxReject: 4096,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.mH < 1 || e.mL < 1 || e.delta < 1 {
		return nil, fmt.Errorf("core: invalid general LSH-SS parameters")
	}
	return e, nil
}

// GeneralOption customizes GeneralLSHSS.
type GeneralOption func(*GeneralLSHSS)

// WithGeneralSampleSizes overrides m_H and m_L.
func WithGeneralSampleSizes(mH, mL int) GeneralOption {
	return func(e *GeneralLSHSS) { e.mH, e.mL = mH, mL }
}

// WithGeneralDamp selects the dampened scale-up.
func WithGeneralDamp(mode DampMode, cs float64) GeneralOption {
	return func(e *GeneralLSHSS) { e.damp, e.cs = mode, cs }
}

// Name implements Estimator.
func (e *GeneralLSHSS) Name() string { return "LSH-SS(general)" }

// Estimate implements Estimator.
func (e *GeneralLSHSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	m := float64(e.bp.M())
	// SampleH over matched buckets.
	var jh float64
	if nh := e.bp.NH(); nh > 0 {
		hits := 0
		for s := 0; s < e.mH; s++ {
			u, v, ok := e.bp.SamplePair(rng)
			if !ok {
				break
			}
			if e.bp.Sim(u, v) >= tau {
				hits++
			}
		}
		jh = float64(hits) * float64(nh) / float64(e.mH)
	}
	// SampleL via rejection on g(u) = g(v).
	var jl float64
	if nl := e.bp.NL(); nl > 0 {
		res := sample.Adaptive(e.delta, e.mL, func() (bool, bool) {
			for t := 0; t < e.maxReject; t++ {
				u := rng.Intn(e.bp.LeftN())
				v := rng.Intn(e.bp.RightN())
				if e.bp.SameBucket(u, v) {
					continue
				}
				return e.bp.Sim(u, v) >= tau, true
			}
			return false, false
		})
		switch {
		case res.Reliable:
			jl = float64(res.Hits) * float64(nl) / float64(res.Taken)
		case e.damp == DampAuto:
			jl = float64(res.Hits) * (float64(res.Hits) / float64(e.delta)) * float64(nl) / float64(e.mL)
		case e.damp == DampConst:
			jl = float64(res.Hits) * e.cs * float64(nl) / float64(e.mL)
		default:
			jl = float64(res.Hits)
		}
	}
	return clampEstimate(jh+jl, m), nil
}

// ExactGeneralJoin counts the true cross-join size by brute force; it is the
// test oracle for the general estimators (O(|U|·|V|)).
func ExactGeneralJoin(left, right []vecmath.Vector, sim SimFunc, tau float64) int64 {
	if sim == nil {
		sim = vecmath.Cosine
	}
	var c int64
	for _, u := range left {
		for _, v := range right {
			if sim(u, v) >= tau {
				c++
			}
		}
	}
	return c
}
