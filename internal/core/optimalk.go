package core

import (
	"fmt"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// KReport is the measurement behind one candidate k in OptimalK.
type KReport struct {
	K         int
	Precision float64 // empirical P(T|H) at the reference threshold
	NH        int64   // co-bucketed pairs in the probe index
}

// OptimalK implements the Optimal-k heuristic of App. B.1 (Definition 4):
// find the minimum k such that the stratum-H precision P(T|H) at a reference
// threshold reaches rho. Smaller k grows stratum H (higher recall P(H|T),
// cheaper hashing) and is preferred as long as precision holds, which is
// exactly the appendix's trade-off discussion.
//
// P(T|H) is estimated empirically: for each candidate k a probe index is
// built over a subsample of the data and up to probes pairs are drawn from
// stratum H. The function returns the chosen k and the per-k measurements.
// If no candidate reaches rho it returns the largest candidate along with
// the reports (the appendix notes P(T|H) → 1 as k → ∞ only in the limit of
// exact duplicates; data with no duplicates may cap below rho).
func OptimalK(data []vecmath.Vector, family lsh.Family, sim SimFunc, tauRef, rho float64,
	kMin, kMax, subsample, probes int, rng *xrand.RNG) (int, []KReport, error) {
	switch {
	case len(data) < 2:
		return 0, nil, fmt.Errorf("core: OptimalK needs at least 2 vectors")
	case family == nil:
		return 0, nil, fmt.Errorf("core: OptimalK needs a family")
	case tauRef <= 0 || tauRef > 1:
		return 0, nil, fmt.Errorf("core: reference threshold must be in (0, 1], got %v", tauRef)
	case rho <= 0 || rho > 1:
		return 0, nil, fmt.Errorf("core: precision target must be in (0, 1], got %v", rho)
	case kMin < 1 || kMax < kMin:
		return 0, nil, fmt.Errorf("core: need 1 ≤ kMin ≤ kMax, got [%d, %d]", kMin, kMax)
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	if subsample <= 0 || subsample > len(data) {
		subsample = len(data)
	}
	if probes <= 0 {
		probes = 2000
	}
	probe := data
	if subsample < len(data) {
		ids, err := sample.WithoutReplacement(rng, len(data), subsample)
		if err != nil {
			return 0, nil, err
		}
		probe = make([]vecmath.Vector, subsample)
		for i, id := range ids {
			probe[i] = data[id]
		}
	}
	var reports []KReport
	chosen := 0
	for k := kMin; k <= kMax; k++ {
		snap, err := lsh.BuildSnapshot(probe, family, k, 1)
		if err != nil {
			return 0, nil, err
		}
		tab := snap.Table(0)
		rep := KReport{K: k, NH: tab.NH()}
		if tab.NH() > 0 {
			hits, draws := 0, 0
			for p := 0; p < probes; p++ {
				i, j, ok := tab.SamplePair(rng)
				if !ok {
					break
				}
				draws++
				if sim(probe[i], probe[j]) >= tauRef {
					hits++
				}
			}
			if draws > 0 {
				rep.Precision = float64(hits) / float64(draws)
			}
		}
		reports = append(reports, rep)
		if chosen == 0 && rep.Precision >= rho {
			chosen = k
			break // Definition 4 asks for the minimum such k
		}
	}
	if chosen == 0 {
		chosen = reports[len(reports)-1].K
	}
	return chosen, reports, nil
}
