package core

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// testData builds a small binary-vector collection with duplicates and a
// range of similarities.
func testData(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < 0.05 {
			// Near-duplicate of an earlier vector: mutate one dim.
			src := data[rng.Intn(len(data))].Entries()
			ds := make([]uint32, 0, len(src)+1)
			for _, e := range src {
				ds = append(ds, e.Dim)
			}
			if len(ds) > 0 {
				ds[rng.Intn(len(ds))] = uint32(rng.Intn(200))
			}
			data = append(data, vecmath.FromDims(ds))
			continue
		}
		if i > 0 && rng.Float64() < 0.03 {
			data = append(data, data[rng.Intn(len(data))]) // exact duplicate
			continue
		}
		m := 4 + rng.Intn(8)
		ds := make([]uint32, 0, m)
		// Two "stopwords" with high probability create low-τ mass.
		if rng.Float64() < 0.5 {
			ds = append(ds, uint32(rng.Intn(5)))
		}
		for len(ds) < m {
			ds = append(ds, uint32(rng.Intn(200)))
		}
		data = append(data, vecmath.FromDims(ds))
	}
	return data
}

func meanEstimate(t *testing.T, e Estimator, tau float64, reps int, seed uint64) float64 {
	t.Helper()
	rng := xrand.New(seed)
	var sum float64
	for r := 0; r < reps; r++ {
		v, err := e.Estimate(tau, rng)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if v < 0 {
			t.Fatalf("%s returned negative estimate %v", e.Name(), v)
		}
		sum += v
	}
	return sum / float64(reps)
}

func TestRSPopValidation(t *testing.T) {
	if _, err := NewRSPop(nil, nil, 10); err == nil {
		t.Error("empty data accepted")
	}
	data := testData(50, 1)
	e, err := NewRSPop(data, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.SampleSize() != 75 {
		t.Errorf("default m = %d, want 1.5n = 75", e.SampleSize())
	}
	if _, err := e.Estimate(0, xrand.New(1)); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := e.Estimate(1.5, xrand.New(1)); err == nil {
		t.Error("tau>1 accepted")
	}
}

func TestRSPopUnbiasedAtModerateThreshold(t *testing.T) {
	data := testData(300, 2)
	truth := float64(exactjoin.BruteForceCount(data, 0.3))
	if truth < 20 {
		t.Fatalf("test data too sparse: J(0.3) = %v", truth)
	}
	e, err := NewRSPop(data, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	got := meanEstimate(t, e, 0.3, 200, 3)
	if math.Abs(got-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, truth %v", got, truth)
	}
}

func TestRSPopExtremeThresholdMostlyZero(t *testing.T) {
	data := testData(300, 4)
	e, err := NewRSPop(data, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	zeros := 0
	const reps = 50
	for r := 0; r < reps; r++ {
		v, err := e.Estimate(0.95, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			zeros++
		}
	}
	// With tiny selectivity and 100 samples, most estimates collapse to 0 —
	// the failure mode motivating the paper.
	if zeros < reps/2 {
		t.Errorf("only %d/%d zero estimates at τ=0.95; RS should be failing here", zeros, reps)
	}
}

func TestRSCrossValidationAndRecords(t *testing.T) {
	data := testData(100, 6)
	if _, err := NewRSCross(data[:1], nil, 10); err == nil {
		t.Error("single vector accepted")
	}
	e, err := NewRSCross(data, nil, 45)
	if err != nil {
		t.Fatal(err)
	}
	// C(10,2) = 45 → r = 10.
	if e.Records() != 10 {
		t.Errorf("records = %d, want 10", e.Records())
	}
	big, err := NewRSCross(data, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if big.Records() != 100 {
		t.Errorf("records capped at n: got %d", big.Records())
	}
}

func TestRSCrossUnbiasedAtModerateThreshold(t *testing.T) {
	data := testData(300, 7)
	truth := float64(exactjoin.BruteForceCount(data, 0.3))
	e, err := NewRSCross(data, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	got := meanEstimate(t, e, 0.3, 200, 8)
	if math.Abs(got-truth) > 0.25*truth {
		t.Errorf("mean estimate %v, truth %v", got, truth)
	}
}

func TestRSEstimatesBounded(t *testing.T) {
	data := testData(100, 9)
	m := pairsOf(len(data))
	pop, _ := NewRSPop(data, nil, 50)
	cross, _ := NewRSCross(data, nil, 50)
	rng := xrand.New(10)
	for _, tau := range []float64{0.1, 0.5, 0.9, 1.0} {
		for r := 0; r < 20; r++ {
			for _, e := range []Estimator{pop, cross} {
				v, err := e.Estimate(tau, rng)
				if err != nil {
					t.Fatal(err)
				}
				if v < 0 || v > m {
					t.Fatalf("%s estimate %v outside [0, %v]", e.Name(), v, m)
				}
			}
		}
	}
}

func TestRSJaccardMeasure(t *testing.T) {
	data := testData(200, 11)
	truthJ := 0.0
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if vecmath.Jaccard(data[i], data[j]) >= 0.5 {
				truthJ++
			}
		}
	}
	e, err := NewRSPop(data, vecmath.Jaccard, 3000)
	if err != nil {
		t.Fatal(err)
	}
	got := meanEstimate(t, e, 0.5, 100, 12)
	tol := 0.3*truthJ + 3
	if math.Abs(got-truthJ) > tol {
		t.Errorf("Jaccard join: mean %v, truth %v", got, truthJ)
	}
}
