package core

import (
	"math"
	"sort"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/xrand"
)

func TestEstimateCurveValidation(t *testing.T) {
	e, _ := lshssFor(t, 200, 8, 51, 52)
	if _, err := e.EstimateCurve(nil, xrand.New(1)); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := e.EstimateCurve([]float64{0.5, 0}, xrand.New(1)); err == nil {
		t.Error("tau=0 accepted")
	}
}

// TestEstimateCurveMonotone: the estimated curve must be non-increasing in
// τ, like the true curve — the property the shared sampling pass preserves
// by construction.
func TestEstimateCurveMonotone(t *testing.T) {
	e, _ := lshssFor(t, 600, 10, 53, 54)
	taus := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for trial := 0; trial < 20; trial++ {
		curve, err := e.EstimateCurve(taus, xrand.New(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-9 {
				t.Fatalf("trial %d: curve increased at τ=%v: %v → %v (full: %v)",
					trial, taus[i], curve[i-1], curve[i], curve)
			}
		}
	}
}

// TestEstimateCurveUnsortedInput: results align with the input order, not
// the internal sorted order.
func TestEstimateCurveUnsortedInput(t *testing.T) {
	e, _ := lshssFor(t, 400, 10, 55, 56)
	sortedC, err := e.EstimateCurve([]float64{0.2, 0.5, 0.8}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := e.EstimateCurve([]float64{0.8, 0.2, 0.5}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != sortedC[2] || shuffled[1] != sortedC[0] || shuffled[2] != sortedC[1] {
		t.Errorf("alignment broken: sorted=%v shuffled=%v", sortedC, shuffled)
	}
}

// TestEstimateCurveTracksPointEstimates: the curve's mean over repetitions
// should track the truth about as well as per-τ point estimation in the
// reliable regime.
func TestEstimateCurveTracksTruth(t *testing.T) {
	e, data := lshssFor(t, 800, 12, 5, 6, WithSampleSizes(800, 12000))
	tau := 0.3
	truth := float64(exactjoin.BruteForceCount(data, tau))
	var sum float64
	const reps = 40
	for r := 0; r < reps; r++ {
		curve, err := e.EstimateCurve([]float64{tau, 0.9}, xrand.New(uint64(500+r)))
		if err != nil {
			t.Fatal(err)
		}
		sum += curve[0]
	}
	mean := sum / reps
	if math.Abs(mean-truth) > 0.4*truth {
		t.Errorf("curve mean %v vs truth %v at τ=%v", mean, truth, tau)
	}
}

// TestEstimateCurveReplaysAdaptiveStopping: with a forced single threshold,
// the curve's Ĵ_L semantics match the adaptive estimator: δ-th hit at draw i
// scales δ·N_L/i.
func TestEstimateCurveAdaptiveSemantics(t *testing.T) {
	e, _ := lshssFor(t, 500, 10, 57, 58, WithDelta(3), WithSampleSizes(500, 2000))
	taus := []float64{0.05, 0.1}
	curve, err := e.EstimateCurve(taus, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// At a permissive threshold the estimate must be scaled up well beyond
	// the raw hit count (the reliable branch fired).
	if curve[0] < 100 {
		t.Errorf("reliable branch should scale up: got %v", curve[0])
	}
	if !sort.Float64sAreSorted([]float64{curve[1], curve[0]}) {
		t.Errorf("monotonicity violated: %v", curve)
	}
}
