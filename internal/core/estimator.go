// Package core implements the vector-similarity-join size estimators of the
// paper: the random sampling baselines (§3.1), the uniformity-assumption
// estimator J_U and its sampled refinement LSH-S (§4), the stratified
// sampling algorithm LSH-SS with its dampened variant (§5, Algorithm 1), and
// the multi-table and non-self-join extensions (Appendix B.2).
//
// All estimators are deterministic given the *xrand.RNG they are handed, and
// none of them mutates the index or data it reads.
package core

import (
	"fmt"
	"math"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// SimFunc measures the similarity of two vectors; the VSJ problem uses
// cosine (vecmath.Cosine), the SSJ problem Jaccard (vecmath.Jaccard).
type SimFunc func(u, v vecmath.Vector) float64

// Estimator estimates the self-join size J(τ) = |{(u,v): sim(u,v) ≥ τ}| of a
// fixed collection. Implementations draw all randomness from rng, so
// repeated calls with independent generators yield independent estimates.
type Estimator interface {
	// Name identifies the estimator in experiment output (e.g. "LSH-SS").
	Name() string
	// Estimate returns an estimate of J(τ). Estimates are always ≥ 0.
	Estimate(tau float64, rng *xrand.RNG) (float64, error)
}

// pairsOf returns C(n, 2) as float64.
func pairsOf(n int) float64 {
	return float64(n) * float64(n-1) / 2
}

// clampEstimate confines an estimate to the feasible range [0, M].
func clampEstimate(est, m float64) float64 {
	if math.IsNaN(est) || est < 0 {
		return 0
	}
	if est > m {
		return m
	}
	return est
}

// validateTau rejects thresholds outside (0, 1].
func validateTau(tau float64) error {
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		return fmt.Errorf("core: threshold must be in (0, 1], got %v", tau)
	}
	return nil
}
