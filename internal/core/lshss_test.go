package core

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func lshssFor(t *testing.T, n int, k int, dataSeed, hashSeed uint64, opts ...LSHSSOption) (*LSHSS, []vecmath.Vector) {
	t.Helper()
	data := testData(n, dataSeed)
	snap, err := lsh.BuildSnapshot(data, lsh.NewSimHash(hashSeed), k, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewLSHSS(snap, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, data
}

func TestLSHSSValidation(t *testing.T) {
	data := testData(50, 1)
	snap, err := lsh.BuildSnapshot(data, lsh.NewSimHash(2), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLSHSS(nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := NewLSHSS(snap, nil, WithTable(1)); err == nil {
		t.Error("out-of-range table accepted")
	}
	if _, err := NewLSHSS(snap, nil, WithSampleSizes(0, 10)); err == nil {
		t.Error("mH=0 accepted")
	}
	if _, err := NewLSHSS(snap, nil, WithDelta(0)); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewLSHSS(snap, nil, WithDamp(DampConst, 0)); err == nil {
		t.Error("cs=0 accepted")
	}
	if _, err := NewLSHSS(snap, nil, WithDamp(DampConst, 1.2)); err == nil {
		t.Error("cs>1 accepted")
	}
	e, err := NewLSHSS(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(0, xrand.New(1)); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := e.Estimate(1.2, xrand.New(1)); err == nil {
		t.Error("tau>1 accepted")
	}
}

func TestLSHSSDefaults(t *testing.T) {
	e, data := lshssFor(t, 1000, 10, 3, 4)
	mH, mL, delta, damp, _ := e.Params()
	if mH != len(data) || mL != len(data) {
		t.Errorf("default sample sizes %d/%d, want n=%d", mH, mL, len(data))
	}
	if want := int(math.Ceil(math.Log2(1000))); delta != want {
		t.Errorf("default delta %d, want %d", delta, want)
	}
	if damp != DampOff {
		t.Errorf("default damp mode %v", damp)
	}
	if e.Name() != "LSH-SS" {
		t.Errorf("name %q", e.Name())
	}
}

func TestLSHSSNames(t *testing.T) {
	data := testData(50, 1)
	snap, _ := lsh.BuildSnapshot(data, lsh.NewSimHash(2), 8, 1)
	d, _ := NewLSHSS(snap, nil, WithDamp(DampAuto, 0))
	if d.Name() != "LSH-SS(D)" {
		t.Errorf("damped name %q", d.Name())
	}
	a, _ := NewLSHSS(snap, nil, WithAlwaysScale())
	if a.Name() != "LSH-SS(always-scale)" {
		t.Errorf("ablation name %q", a.Name())
	}
}

// TestLSHSSAccurateAtModerateThreshold is the core accuracy contract: when
// SampleL is in its reliable regime (β·m_L comfortably above δ, Theorem 3's
// setting — at this small n that needs m_L of a few n), the mean of repeated
// estimates tracks the true join size.
func TestLSHSSAccurateAtModerateThreshold(t *testing.T) {
	e, data := lshssFor(t, 800, 12, 5, 6, WithSampleSizes(800, 12000))
	tau := 0.3
	truth := float64(exactjoin.BruteForceCount(data, tau))
	if truth < 10 {
		t.Fatalf("degenerate data at tau=%v: J=%v", tau, truth)
	}
	got := meanEstimate(t, e, tau, 60, 7)
	if math.Abs(got-truth) > 0.35*truth {
		t.Errorf("tau=%v: mean estimate %v, truth %v", tau, got, truth)
	}
}

// TestLSHSSGreyAreaUnderestimates documents the behavior §5.1.2 and Fig. 2b
// describe: when β is too small for δ hits within m_L but J_L still carries
// real mass (the "grey area"), plain LSH-SS returns the safe lower bound and
// therefore underestimates; the dampened variant recovers part of the mass.
func TestLSHSSGreyAreaUnderestimates(t *testing.T) {
	e, data := lshssFor(t, 800, 12, 5, 6) // default m_L = n is too small here
	tau := 0.3
	truth := float64(exactjoin.BruteForceCount(data, tau))
	plain := meanEstimate(t, e, tau, 40, 7)
	if plain > 0.8*truth {
		t.Skip("data not in the grey area at this scale")
	}
	damped, dataD := lshssFor(t, 800, 12, 5, 6, WithDamp(DampAuto, 0))
	_ = dataD
	dm := meanEstimate(t, damped, tau, 40, 7)
	if dm <= plain {
		t.Errorf("damped mean %v should exceed safe-lower-bound mean %v", dm, plain)
	}
	_ = data
}

// TestLSHSSHighThresholdNoBlowup: at τ = 0.9 (dominated by duplicates) the
// estimator must neither explode nor collapse to zero — the paper's core
// claim versus random sampling.
func TestLSHSSHighThresholdNoBlowup(t *testing.T) {
	e, data := lshssFor(t, 800, 12, 5, 6)
	truth := float64(exactjoin.BruteForceCount(data, 0.9))
	if truth == 0 {
		t.Fatal("no duplicates in test data")
	}
	rng := xrand.New(8)
	for r := 0; r < 40; r++ {
		v, err := e.Estimate(0.9, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v > 20*truth {
			t.Errorf("run %d: estimate %v explodes over truth %v", r, v, truth)
		}
	}
	got := meanEstimate(t, e, 0.9, 60, 9)
	if got < 0.2*truth {
		t.Errorf("mean estimate %v collapses below truth %v", got, truth)
	}
}

func TestLSHSSDetailInvariants(t *testing.T) {
	e, _ := lshssFor(t, 500, 10, 11, 12)
	rng := xrand.New(13)
	_, _, delta, _, _ := e.Params()
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		for r := 0; r < 10; r++ {
			d, err := e.EstimateDetailed(tau, rng)
			if err != nil {
				t.Fatal(err)
			}
			if d.Estimate < 0 {
				t.Fatalf("negative estimate %v", d.Estimate)
			}
			if d.JH < 0 || d.JL < 0 {
				t.Fatalf("negative stratum estimate: %+v", d)
			}
			if d.ReliableL && d.HitsL < delta {
				t.Fatalf("reliable with %d < δ=%d hits", d.HitsL, delta)
			}
			if !d.ReliableL && d.JL != float64(d.HitsL) {
				t.Fatalf("unreliable SampleL must return safe lower bound: %+v", d)
			}
			if d.ReliableL && d.TakenL == 0 {
				t.Fatalf("reliable with no samples: %+v", d)
			}
		}
	}
}

// TestLSHSSSafeLowerBound: with DampOff and an unreachable δ, Ĵ_L is the raw
// hit count — a guaranteed lower bound on J_L.
func TestLSHSSSafeLowerBound(t *testing.T) {
	e, _ := lshssFor(t, 500, 10, 11, 12, WithDelta(1000000), WithSampleSizes(500, 200))
	rng := xrand.New(14)
	d, err := e.EstimateDetailed(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReliableL {
		t.Fatal("δ of 10^6 cannot be reached with 200 samples")
	}
	if d.JL != float64(d.HitsL) {
		t.Errorf("JL = %v, want hit count %d", d.JL, d.HitsL)
	}
}

// TestLSHSSDampedScaleUp: DampConst multiplies the full scale-up by c_s;
// DampAuto by n_L/δ.
func TestLSHSSDampedScaleUp(t *testing.T) {
	data := testData(500, 11)
	snap, err := lsh.BuildSnapshot(data, lsh.NewSimHash(12), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := snap.Table(0)
	mkDet := func(opts ...LSHSSOption) Detail {
		e, err := NewLSHSS(snap, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.EstimateDetailed(0.6, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := []LSHSSOption{WithDelta(1000000), WithSampleSizes(500, 300)}
	off := mkDet(base...)
	if off.ReliableL {
		t.Skip("unexpectedly reliable; cannot exercise damped branch")
	}
	cs := 0.5
	damped := mkDet(append(base, WithDamp(DampConst, cs))...)
	// Same RNG seed → identical sampling path → deterministic relation.
	if damped.HitsL != off.HitsL || damped.TakenL != off.TakenL {
		t.Fatalf("sampling paths diverged: %+v vs %+v", damped, off)
	}
	nl := float64(tab.NL())
	wantJL := float64(damped.HitsL) * cs * nl / 300
	if math.Abs(damped.JL-wantJL) > 1e-9 {
		t.Errorf("DampConst JL = %v, want %v", damped.JL, wantJL)
	}
	auto := mkDet(append(base, WithDamp(DampAuto, 0))...)
	wantAuto := float64(auto.HitsL) * (float64(auto.HitsL) / 1000000) * nl / 300
	if math.Abs(auto.JL-wantAuto) > 1e-9 {
		t.Errorf("DampAuto JL = %v, want %v", auto.JL, wantAuto)
	}
}

// TestLSHSSAlwaysScaleAblation: disabling the safe-lower-bound rule scales
// by N_L/m_L even when unreliable.
func TestLSHSSAlwaysScaleAblation(t *testing.T) {
	data := testData(500, 11)
	snap, _ := lsh.BuildSnapshot(data, lsh.NewSimHash(12), 10, 1)
	tab := snap.Table(0)
	e, err := NewLSHSS(snap, nil, WithDelta(1000000), WithSampleSizes(500, 300), WithAlwaysScale())
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.EstimateDetailed(0.6, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if d.ReliableL {
		t.Skip("unexpectedly reliable")
	}
	want := float64(d.HitsL) * float64(tab.NL()) / 300
	if math.Abs(d.JL-want) > 1e-9 {
		t.Errorf("always-scale JL = %v, want %v", d.JL, want)
	}
}

// TestLSHSSVarianceBelowRS reproduces the paper's headline comparison at a
// small scale: at a high threshold the spread of LSH-SS estimates is far
// below RS(pop) with a comparable budget.
func TestLSHSSVarianceBelowRS(t *testing.T) {
	e, data := lshssFor(t, 1000, 12, 15, 16)
	truth := float64(exactjoin.BruteForceCount(data, 0.9))
	if truth == 0 {
		t.Fatal("no high-similarity pairs")
	}
	rs, err := NewRSPop(data, nil, 1500)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(est Estimator, seed uint64) []float64 {
		rng := xrand.New(seed)
		out := make([]float64, 0, 40)
		for r := 0; r < 40; r++ {
			v, err := est.Estimate(0.9, rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	std := func(xs []float64) float64 {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		return math.Sqrt(v / float64(len(xs)))
	}
	ss := std(collect(e, 17))
	rp := std(collect(rs, 18))
	if ss >= rp && rp > 0 {
		t.Errorf("LSH-SS std %v not below RS(pop) std %v at τ=0.9", ss, rp)
	}
}

func TestLSHSSJaccard(t *testing.T) {
	data := testData(400, 19)
	fam := lsh.NewMinHash(20)
	snap, err := lsh.BuildSnapshot(data, fam, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewLSHSS(snap, vecmath.Jaccard, WithSampleSizes(400, 60000))
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if vecmath.Jaccard(data[i], data[j]) >= 0.4 {
				truth++
			}
		}
	}
	got := meanEstimate(t, e, 0.4, 60, 21)
	tol := 0.4*truth + 5
	if math.Abs(got-truth) > tol {
		t.Errorf("Jaccard LSH-SS: mean %v, truth %v", got, truth)
	}
}

func TestLSHSSDeterministicGivenRNG(t *testing.T) {
	e, _ := lshssFor(t, 300, 10, 23, 24)
	a, err := e.Estimate(0.5, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Estimate(0.5, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same RNG seed produced %v and %v", a, b)
	}
}
