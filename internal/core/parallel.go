package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lshjoin/internal/sample"
)

// Parallel sampling support. Estimator inner loops (SampleH's m_H weighted
// pair draws, SampleL's adaptive rejection draws, the median estimator's ℓ
// independent sub-estimates) fan out across a deterministic number of
// shards, each driven by its own xrand.Split stream, and merge in shard
// order. Results therefore depend only on the caller's RNG state and the
// sample sizes — never on GOMAXPROCS or scheduling — while wall-clock time
// scales with cores.

// sampleShards picks the shard count for m draws: one shard per 256 draws,
// capped at 16. It must stay a pure function of m — the shard layout is part
// of the deterministic sampling order.
func sampleShards(m int) int {
	s := m / 256
	if s < 1 {
		return 1
	}
	if s > 16 {
		return 16
	}
	return s
}

// shardQuota returns how many of m draws shard i of s performs: m/s, with
// the first m%s shards taking one extra.
func shardQuota(m, s, i int) int {
	q := m / s
	if i < m%s {
		q++
	}
	return q
}

// mergeAdaptive replays Lipton's adaptive loop over the concatenated shard
// streams: draws are consumed in shard order, stopping at delta hits or
// maxSamples draws; a shard whose rejection sampler gave up ends the stream
// (the sequential loop treats an exhausted draw the same way).
func mergeAdaptive(outs []lShard, delta, maxSamples int) sample.AdaptiveResult {
	var r sample.AdaptiveResult
	for s := range outs {
		o := &outs[s]
		hp := 0
		for p := 0; p < o.taken; p++ {
			if r.Hits >= delta || r.Taken >= maxSamples {
				r.Reliable = r.Hits >= delta
				return r
			}
			r.Taken++
			if hp < len(o.hitPos) && o.hitPos[hp] == int32(p) {
				r.Hits++
				hp++
			}
		}
		if o.exhausted {
			break
		}
	}
	r.Reliable = r.Hits >= delta
	return r
}

// runShards executes fn(0..s-1) on up to GOMAXPROCS goroutines. fn must
// write only to its own shard's slots.
func runShards(s int, fn func(shard int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > s {
		workers = s
	}
	if workers <= 1 {
		for i := 0; i < s; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= s {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
