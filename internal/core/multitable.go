package core

import (
	"fmt"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/stats"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// MedianSS is the median estimator of App. B.2.1: LSH-SS applied
// independently to each of the ℓ tables of an index, returning the median of
// the per-table estimates. By the standard Chernoff argument, the median is
// within the same error factor as a single estimate with failure probability
// at most 2^(−ℓ/2).
type MedianSS struct {
	subs []*LSHSS
}

// NewMedianSS builds per-table LSH-SS estimators with shared options, all
// bound to the same index snapshot.
func NewMedianSS(snap *lsh.Snapshot, sim SimFunc, opts ...LSHSSOption) (*MedianSS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: median estimator needs an index snapshot")
	}
	subs := make([]*LSHSS, 0, snap.L())
	for t := 0; t < snap.L(); t++ {
		s, err := NewLSHSS(snap, sim, append(append([]LSHSSOption(nil), opts...), WithTable(t))...)
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return &MedianSS{subs: subs}, nil
}

// Name implements Estimator.
func (e *MedianSS) Name() string { return "LSH-SS(median)" }

// Estimate implements Estimator. The ℓ per-table estimates are independent,
// so each runs on its own split RNG stream, fanned across cores; collecting
// them in table order keeps the median deterministic for a given rng state
// regardless of GOMAXPROCS.
func (e *MedianSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	ests := make([]float64, len(e.subs))
	errs := make([]error, len(e.subs))
	rngs := rng.SplitN(len(e.subs))
	runShards(len(e.subs), func(t int) {
		ests[t], errs[t] = e.subs[t].Estimate(tau, rngs[t])
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return stats.Median(ests), nil
}

// tableView abstracts the multi-table observables the virtual-bucket
// estimator reads: per-table stratum-H weights and samplers plus the
// cross-table membership tests. A plain snapshot implements it through
// snapTables; a sharded group implements it through the merged per-table
// strata of core/sharded.go.
type tableView interface {
	L() int
	N() int
	At(i int) vecmath.Vector
	TableNH(t int) int64
	SampleTablePair(t int, rng *xrand.RNG) (i, j int, ok bool)
	SameAnyBucket(i, j int) bool
	BucketMultiplicity(i, j int) int
}

// snapTables adapts one index snapshot to tableView.
type snapTables struct{ s *lsh.Snapshot }

func (v snapTables) L() int                      { return v.s.L() }
func (v snapTables) N() int                      { return v.s.N() }
func (v snapTables) At(i int) vecmath.Vector     { return v.s.Data()[i] }
func (v snapTables) TableNH(t int) int64         { return v.s.Table(t).NH() }
func (v snapTables) SameAnyBucket(i, j int) bool { return v.s.SameAnyBucket(i, j) }
func (v snapTables) BucketMultiplicity(i, j int) int {
	return v.s.BucketMultiplicity(i, j)
}
func (v snapTables) SampleTablePair(t int, rng *xrand.RNG) (i, j int, ok bool) {
	return v.s.Table(t).SamplePair(rng)
}

// VirtualSS is the virtual-bucket estimator of App. B.2.1: a pair belongs to
// stratum H if the two vectors share a bucket in ANY of the ℓ tables, which
// relaxes an overly selective g (large k).
//
// The appendix leaves open how to obtain N_H of the union (enumerating it is
// infeasible, and its suggested rejection sampling from V×V has acceptance
// probability N_H/M ≈ 0). We instead sample stratum H by importance
// sampling from the per-table mixture — draw table t with probability
// N_H,t/Σ N_H,t, draw a co-bucketed pair there, and weight by the reciprocal
// of the pair's bucket multiplicity — which gives unbiased estimates of both
// |S_H^∪| and J_H. DESIGN.md records this as a documented extension.
type VirtualSS struct {
	view tableView
	sim  SimFunc

	mH, mL    int
	delta     int
	damp      DampMode
	cs        float64
	maxReject int

	mixture []float64 // per-table N_H weights
	totalNH float64   // Σ_t N_H,t
}

// NewVirtualSS builds the virtual-bucket estimator over an index snapshot.
// The LSHSS options WithSampleSizes, WithDelta and WithDamp are honored.
func NewVirtualSS(snap *lsh.Snapshot, sim SimFunc, opts ...LSHSSOption) (*VirtualSS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: virtual-bucket estimator needs an index snapshot")
	}
	return newVirtualSSView(snapTables{s: snap}, sim, opts)
}

// newVirtualSSView builds the estimator over any multi-table view.
func newVirtualSSView(view tableView, sim SimFunc, opts []LSHSSOption) (*VirtualSS, error) {
	if sim == nil {
		sim = vecmath.Cosine
	}
	// Reuse LSHSS option plumbing to resolve the n-scaled defaults.
	probe, err := newSSBase(view.N(), sim, opts)
	if err != nil {
		return nil, err
	}
	// The virtual-bucket stratum spans all tables, so WithTable is
	// meaningless here — but an out-of-range index is still a caller
	// configuration error worth failing fast on.
	if probe.tableIdx < 0 || probe.tableIdx >= view.L() {
		return nil, fmt.Errorf("core: table %d out of range [0, %d)", probe.tableIdx, view.L())
	}
	mH, mL, delta, damp, cs := probe.Params()
	e := &VirtualSS{
		view: view, sim: sim,
		mH: mH, mL: mL, delta: delta, damp: damp, cs: cs,
		maxReject: 4096,
	}
	e.mixture = make([]float64, view.L())
	for t := range e.mixture {
		e.mixture[t] = float64(view.TableNH(t))
		e.totalNH += e.mixture[t]
	}
	return e, nil
}

// Name implements Estimator.
func (e *VirtualSS) Name() string { return "LSH-SS(virtual)" }

// Estimate implements Estimator.
func (e *VirtualSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	jh := e.sampleH(tau, rng)
	jl := e.sampleL(tau, rng)
	return clampEstimate(jh+jl, pairsOf(e.view.N())), nil
}

// sampleH draws from the per-table mixture with multiplicity correction:
// for pair (u,v) drawn from table t, P(draw) = mult(u,v)/Σ N_H,t, so the
// weight Σ N_H,t / mult is an unbiased Horvitz–Thompson factor for sums over
// the union stratum.
func (e *VirtualSS) sampleH(tau float64, rng *xrand.RNG) float64 {
	if e.totalNH == 0 {
		return 0
	}
	var sum float64 // Σ [sim ≥ τ]/mult over draws
	for s := 0; s < e.mH; s++ {
		t := e.pickTable(rng)
		i, j, ok := e.view.SampleTablePair(t, rng)
		if !ok {
			continue
		}
		if e.sim(e.view.At(i), e.view.At(j)) >= tau {
			sum += 1 / float64(e.view.BucketMultiplicity(i, j))
		}
	}
	return sum * e.totalNH / float64(e.mH)
}

// NHVirtual estimates |S_H^∪| with m mixture draws (exported for tests and
// diagnostics; same Horvitz–Thompson construction as sampleH).
func (e *VirtualSS) NHVirtual(m int, rng *xrand.RNG) float64 {
	if e.totalNH == 0 || m <= 0 {
		return 0
	}
	var sum float64
	for s := 0; s < m; s++ {
		t := e.pickTable(rng)
		i, j, ok := e.view.SampleTablePair(t, rng)
		if !ok {
			continue
		}
		sum += 1 / float64(e.view.BucketMultiplicity(i, j))
	}
	return sum * e.totalNH / float64(m)
}

func (e *VirtualSS) pickTable(rng *xrand.RNG) int {
	x := rng.Float64() * e.totalNH
	var acc float64
	for t, w := range e.mixture {
		acc += w
		if x < acc {
			return t
		}
	}
	return len(e.mixture) - 1
}

// sampleL mirrors LSH-SS's SampleL with the virtual-bucket membership test
// and N_L approximated by M − N̂_H (the union N_H is itself estimated; the
// approximation error is second-order because N_H ≪ M in any useful index).
func (e *VirtualSS) sampleL(tau float64, rng *xrand.RNG) float64 {
	n := e.view.N()
	m := pairsOf(n)
	nhHat := e.NHVirtual(minInt(e.mH, 2048), rng)
	nl := m - nhHat
	if nl <= 0 {
		return 0
	}
	notSame := func(i, j int) bool { return !e.view.SameAnyBucket(i, j) }
	res := sample.Adaptive(e.delta, e.mL, func() (bool, bool) {
		i, j, ok := sample.RejectPair(rng, n, notSame, e.maxReject)
		if !ok {
			return false, false
		}
		return e.sim(e.view.At(i), e.view.At(j)) >= tau, true
	})
	switch {
	case res.Reliable:
		return float64(res.Hits) * nl / float64(res.Taken)
	case e.damp == DampAuto:
		cs := float64(res.Hits) / float64(e.delta)
		return float64(res.Hits) * cs * nl / float64(e.mL)
	case e.damp == DampConst:
		return float64(res.Hits) * e.cs * nl / float64(e.mL)
	default:
		return float64(res.Hits)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
