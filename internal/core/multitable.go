package core

import (
	"fmt"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/stats"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// MedianSS is the median estimator of App. B.2.1: LSH-SS applied
// independently to each of the ℓ tables of an index, returning the median of
// the per-table estimates. By the standard Chernoff argument, the median is
// within the same error factor as a single estimate with failure probability
// at most 2^(−ℓ/2).
type MedianSS struct {
	subs []*LSHSS
}

// NewMedianSS builds per-table LSH-SS estimators with shared options, all
// bound to the same index snapshot.
func NewMedianSS(snap *lsh.Snapshot, sim SimFunc, opts ...LSHSSOption) (*MedianSS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: median estimator needs an index snapshot")
	}
	subs := make([]*LSHSS, 0, snap.L())
	for t := 0; t < snap.L(); t++ {
		s, err := NewLSHSS(snap, sim, append(append([]LSHSSOption(nil), opts...), WithTable(t))...)
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return &MedianSS{subs: subs}, nil
}

// Name implements Estimator.
func (e *MedianSS) Name() string { return "LSH-SS(median)" }

// Estimate implements Estimator. The ℓ per-table estimates are independent,
// so each runs on its own split RNG stream, fanned across cores; collecting
// them in table order keeps the median deterministic for a given rng state
// regardless of GOMAXPROCS.
func (e *MedianSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	ests := make([]float64, len(e.subs))
	errs := make([]error, len(e.subs))
	rngs := rng.SplitN(len(e.subs))
	runShards(len(e.subs), func(t int) {
		ests[t], errs[t] = e.subs[t].Estimate(tau, rngs[t])
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return stats.Median(ests), nil
}

// VirtualSS is the virtual-bucket estimator of App. B.2.1: a pair belongs to
// stratum H if the two vectors share a bucket in ANY of the ℓ tables, which
// relaxes an overly selective g (large k).
//
// The appendix leaves open how to obtain N_H of the union (enumerating it is
// infeasible, and its suggested rejection sampling from V×V has acceptance
// probability N_H/M ≈ 0). We instead sample stratum H by importance
// sampling from the per-table mixture — draw table t with probability
// N_H,t/Σ N_H,t, draw a co-bucketed pair there, and weight by the reciprocal
// of the pair's bucket multiplicity — which gives unbiased estimates of both
// |S_H^∪| and J_H. DESIGN.md records this as a documented extension.
type VirtualSS struct {
	snap *lsh.Snapshot
	sim  SimFunc

	mH, mL    int
	delta     int
	damp      DampMode
	cs        float64
	maxReject int

	mixture []float64 // per-table N_H weights
	totalNH float64   // Σ_t N_H,t
}

// NewVirtualSS builds the virtual-bucket estimator over an index snapshot.
// The LSHSS options WithSampleSizes, WithDelta and WithDamp are honored.
func NewVirtualSS(snap *lsh.Snapshot, sim SimFunc, opts ...LSHSSOption) (*VirtualSS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: virtual-bucket estimator needs an index snapshot")
	}
	if snap.N() < 2 {
		return nil, fmt.Errorf("core: need at least 2 vectors")
	}
	if sim == nil {
		sim = vecmath.Cosine
	}
	// Reuse LSHSS option plumbing by materializing one throwaway instance.
	probe, err := NewLSHSS(snap, sim, opts...)
	if err != nil {
		return nil, err
	}
	mH, mL, delta, damp, cs := probe.Params()
	e := &VirtualSS{
		snap: snap, sim: sim,
		mH: mH, mL: mL, delta: delta, damp: damp, cs: cs,
		maxReject: 4096,
	}
	e.mixture = make([]float64, snap.L())
	for t, tab := range snap.Tables() {
		e.mixture[t] = float64(tab.NH())
		e.totalNH += e.mixture[t]
	}
	return e, nil
}

// Name implements Estimator.
func (e *VirtualSS) Name() string { return "LSH-SS(virtual)" }

// Estimate implements Estimator.
func (e *VirtualSS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	jh := e.sampleH(tau, rng)
	jl := e.sampleL(tau, rng)
	return clampEstimate(jh+jl, pairsOf(e.snap.N())), nil
}

// sampleH draws from the per-table mixture with multiplicity correction:
// for pair (u,v) drawn from table t, P(draw) = mult(u,v)/Σ N_H,t, so the
// weight Σ N_H,t / mult is an unbiased Horvitz–Thompson factor for sums over
// the union stratum.
func (e *VirtualSS) sampleH(tau float64, rng *xrand.RNG) float64 {
	if e.totalNH == 0 {
		return 0
	}
	var sum float64 // Σ [sim ≥ τ]/mult over draws
	for s := 0; s < e.mH; s++ {
		t := e.pickTable(rng)
		i, j, ok := e.snap.Table(t).SamplePair(rng)
		if !ok {
			continue
		}
		if e.sim(e.snap.Data()[i], e.snap.Data()[j]) >= tau {
			sum += 1 / float64(e.snap.BucketMultiplicity(i, j))
		}
	}
	return sum * e.totalNH / float64(e.mH)
}

// NHVirtual estimates |S_H^∪| with m mixture draws (exported for tests and
// diagnostics; same Horvitz–Thompson construction as sampleH).
func (e *VirtualSS) NHVirtual(m int, rng *xrand.RNG) float64 {
	if e.totalNH == 0 || m <= 0 {
		return 0
	}
	var sum float64
	for s := 0; s < m; s++ {
		t := e.pickTable(rng)
		i, j, ok := e.snap.Table(t).SamplePair(rng)
		if !ok {
			continue
		}
		sum += 1 / float64(e.snap.BucketMultiplicity(i, j))
	}
	return sum * e.totalNH / float64(m)
}

func (e *VirtualSS) pickTable(rng *xrand.RNG) int {
	x := rng.Float64() * e.totalNH
	var acc float64
	for t, w := range e.mixture {
		acc += w
		if x < acc {
			return t
		}
	}
	return len(e.mixture) - 1
}

// sampleL mirrors LSH-SS's SampleL with the virtual-bucket membership test
// and N_L approximated by M − N̂_H (the union N_H is itself estimated; the
// approximation error is second-order because N_H ≪ M in any useful index).
func (e *VirtualSS) sampleL(tau float64, rng *xrand.RNG) float64 {
	n := e.snap.N()
	m := pairsOf(n)
	nhHat := e.NHVirtual(minInt(e.mH, 2048), rng)
	nl := m - nhHat
	if nl <= 0 {
		return 0
	}
	notSame := func(i, j int) bool { return !e.snap.SameAnyBucket(i, j) }
	res := sample.Adaptive(e.delta, e.mL, func() (bool, bool) {
		i, j, ok := sample.RejectPair(rng, n, notSame, e.maxReject)
		if !ok {
			return false, false
		}
		return e.sim(e.snap.Data()[i], e.snap.Data()[j]) >= tau, true
	})
	switch {
	case res.Reliable:
		return float64(res.Hits) * nl / float64(res.Taken)
	case e.damp == DampAuto:
		cs := float64(res.Hits) / float64(e.delta)
		return float64(res.Hits) * cs * nl / float64(e.mL)
	case e.damp == DampConst:
		return float64(res.Hits) * e.cs * nl / float64(e.mL)
	default:
		return float64(res.Hits)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
