package core

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// groupAndUnion routes testData into an S-shard group and builds the union
// snapshot over the group's dense order, so dense ids align across the two.
func groupAndUnion(t *testing.T, n, k, ell, s int, fam lsh.Family) (*lsh.GroupSnapshot, *lsh.Snapshot) {
	t.Helper()
	data := testData(n, 77)
	g, err := lsh.NewShardGroup(data, fam, k, ell, s)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.Capture()
	union, err := lsh.BuildSnapshot(gs.Data(), fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	return gs, union
}

// The merged stratum must reproduce the union index's stratum statistics
// exactly: same M, N_H, N_L, per-pair membership, and component cumulative
// weights that end at N_H.
func TestMergedStratumMatchesUnion(t *testing.T) {
	for _, tc := range []struct {
		name string
		fam  lsh.Family
		k    int
	}{
		{"narrow-simhash", lsh.NewSimHash(5), 10},
		{"wide-minhash", lsh.NewMinHash(5), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, s := range []int{1, 2, 4} {
				gs, union := groupAndUnion(t, 150, tc.k, 2, s, tc.fam)
				for ti := 0; ti < 2; ti++ {
					ms, err := NewMergedStratum(gs, ti)
					if err != nil {
						t.Fatal(err)
					}
					tab := union.Table(ti)
					if ms.M() != tab.M() || ms.NH() != tab.NH() || ms.NL() != tab.NL() {
						t.Fatalf("s=%d t=%d: merged (M,NH,NL)=(%d,%d,%d), union (%d,%d,%d)",
							s, ti, ms.M(), ms.NH(), ms.NL(), tab.M(), tab.NH(), tab.NL())
					}
					if want := s + s*(s-1)/2; ms.Components() != want {
						t.Fatalf("s=%d: %d components, want %d", s, ms.Components(), want)
					}
					if ms.CumWeight(ms.Components()-1) != ms.NH() {
						t.Fatalf("cumulative component weights end at %d, NH %d",
							ms.CumWeight(ms.Components()-1), ms.NH())
					}
					for i := 0; i < gs.N(); i++ {
						for j := i + 1; j < gs.N(); j++ {
							if got, want := ms.SameBucket(i, j), tab.SameBucket(i, j); got != want {
								t.Fatalf("s=%d t=%d SameBucket(%d,%d)=%v, union %v", s, ti, i, j, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// SamplePair over the merged stratum is uniform over the union stratum H:
// every sampled pair is co-bucketed in the union, every union stratum pair
// is reachable, and frequencies match the uniform expectation.
func TestMergedSamplePairUniformOverUnionStratum(t *testing.T) {
	gs, union := groupAndUnion(t, 90, 8, 1, 3, lsh.NewSimHash(9))
	ms, err := NewMergedStratum(gs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := union.Table(0)
	if tab.NH() < 3 {
		t.Skip("bucket structure degenerate for this seed")
	}
	rng := xrand.New(5)
	counts := map[[2]int]int{}
	const draws = 60000
	for d := 0; d < draws; d++ {
		a, b, ok := ms.SamplePair(rng)
		if !ok {
			t.Fatal("SamplePair failed with NH > 0")
		}
		if a == b {
			t.Fatal("sampled identical indices")
		}
		if !tab.SameBucket(a, b) {
			t.Fatalf("sampled pair (%d,%d) not co-bucketed in the union", a, b)
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	want := float64(draws) / float64(ms.NH())
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pair, c, want)
		}
	}
	if int64(len(counts)) != ms.NH() {
		t.Errorf("observed %d distinct pairs, stratum has %d", len(counts), ms.NH())
	}
}

// With one shard the merged constructors delegate: draw-for-draw identical
// estimates to the single-snapshot constructors.
func TestMergedSingleShardDelegates(t *testing.T) {
	gs, union := groupAndUnion(t, 200, 10, 2, 1, lsh.NewSimHash(3))
	merged, err := NewMergedLSHSS(gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewLSHSS(union, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.5, 0.8, 0.95} {
		for seed := uint64(1); seed <= 3; seed++ {
			a, err := merged.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := plain.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("tau=%v seed=%d: merged %v, plain %v", tau, seed, a, b)
			}
		}
	}
}

// JU consumes only (M, N_H, k), and the merged N_H is exact, so the sharded
// JU equals the union JU bit for bit — both modes.
func TestMergedJUEqualsUnion(t *testing.T) {
	for _, s := range []int{2, 5} {
		gs, union := groupAndUnion(t, 180, 8, 1, s, lsh.NewSimHash(11))
		for _, mode := range []JUMode{JUClosedForm, JUNumeric} {
			merged, err := NewMergedJU(gs, mode)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := NewJU(union, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []float64{0.3, 0.7, 0.9} {
				a, err := merged.Estimate(tau, nil)
				if err != nil {
					t.Fatal(err)
				}
				b, err := plain.Estimate(tau, nil)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("s=%d mode=%d tau=%v: merged %v, union %v", s, mode, tau, a, b)
				}
			}
		}
	}
}

// The merged LSH-SS, median and virtual estimators answer over shards with
// the accuracy the single-index estimators deliver: within a small factor of
// the exact join size at a threshold with real selectivity.
func TestMergedEstimatorsTrackExactJoin(t *testing.T) {
	gs, _ := groupAndUnion(t, 400, 8, 3, 4, lsh.NewSimHash(7))
	joiner := exactjoin.NewJoiner(gs.Data())
	const tau = 0.8
	exact, err := joiner.CountAt(tau)
	if err != nil {
		t.Fatal(err)
	}
	if exact < 10 {
		t.Skipf("degenerate corpus: exact join %d", exact)
	}
	build := map[string]func() (Estimator, error){
		"lshss":   func() (Estimator, error) { return NewMergedLSHSS(gs, nil) },
		"median":  func() (Estimator, error) { return NewMergedMedianSS(gs, nil) },
		"virtual": func() (Estimator, error) { return NewMergedVirtualSS(gs, nil) },
	}
	for name, mk := range build {
		est, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Average a few seeded estimates: individual draws are noisy by
		// design, the mean should sit near the truth.
		var sum float64
		const reps = 9
		for seed := uint64(1); seed <= reps; seed++ {
			v, err := est.Estimate(tau, xrand.New(seed*97))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sum += v
		}
		mean := sum / reps
		if ratio := mean / float64(exact); ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: mean estimate %.1f vs exact %d (ratio %.2f)", name, mean, exact, ratio)
		}
	}
}

// The merged curve estimator inherits monotonicity and stays consistent with
// pointwise merged estimates' scale.
func TestMergedEstimateCurveMonotone(t *testing.T) {
	gs, _ := groupAndUnion(t, 300, 8, 1, 3, lsh.NewSimHash(13))
	e, err := NewMergedLSHSS(gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	curve, err := e.EstimateCurve(taus, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("curve not monotone at %d: %v", i, curve)
		}
	}
}

// Out-of-range table selections fail fast on every constructor, merged or
// not (the virtual-bucket estimator ignores WithTable but still validates).
func TestOutOfRangeTableRejected(t *testing.T) {
	gs, union := groupAndUnion(t, 60, 6, 2, 3, lsh.NewSimHash(3))
	if _, err := NewVirtualSS(union, nil, WithTable(7)); err == nil {
		t.Error("VirtualSS accepted out-of-range table")
	}
	if _, err := NewMergedVirtualSS(gs, nil, WithTable(7)); err == nil {
		t.Error("merged VirtualSS accepted out-of-range table")
	}
	if _, err := NewMergedLSHSS(gs, nil, WithTable(7)); err == nil {
		t.Error("merged LSHSS accepted out-of-range table")
	}
	if _, err := NewMergedStratum(gs, 9); err == nil {
		t.Error("MergedStratum accepted out-of-range table")
	}
}

// LSH-S over shards uses the merged N_H with the union corpus.
func TestMergedLSHSRuns(t *testing.T) {
	gs, union := groupAndUnion(t, 200, 8, 1, 3, lsh.NewSimHash(15))
	merged, err := NewMergedLSHS(gs, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewLSHS(union, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same n, same family, exact same N_H: identical RNG stream gives the
	// identical estimate even though the estimators were built separately.
	a, err := merged.Estimate(0.8, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Estimate(0.8, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("merged LSH-S %v, union %v", a, b)
	}
}
