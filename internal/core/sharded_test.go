package core

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// groupAndUnion routes testData into an S-shard group and builds the union
// snapshot over the group's dense order, so dense ids align across the two.
func groupAndUnion(t *testing.T, n, k, ell, s int, fam lsh.Family) (*lsh.GroupSnapshot, *lsh.Snapshot) {
	t.Helper()
	data := testData(n, 77)
	g, err := lsh.NewShardGroup(data, fam, k, ell, s)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.Capture()
	union, err := lsh.BuildSnapshot(gs.Data(), fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	return gs, union
}

// The merged stratum must reproduce the union index's stratum statistics
// exactly: same M, N_H, N_L, per-pair membership, and component cumulative
// weights that end at N_H.
func TestMergedStratumMatchesUnion(t *testing.T) {
	for _, tc := range []struct {
		name string
		fam  lsh.Family
		k    int
	}{
		{"narrow-simhash", lsh.NewSimHash(5), 10},
		{"wide-minhash", lsh.NewMinHash(5), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, s := range []int{1, 2, 4} {
				gs, union := groupAndUnion(t, 150, tc.k, 2, s, tc.fam)
				for ti := 0; ti < 2; ti++ {
					ms, err := NewMergedStratum(gs, ti)
					if err != nil {
						t.Fatal(err)
					}
					tab := union.Table(ti)
					if ms.M() != tab.M() || ms.NH() != tab.NH() || ms.NL() != tab.NL() {
						t.Fatalf("s=%d t=%d: merged (M,NH,NL)=(%d,%d,%d), union (%d,%d,%d)",
							s, ti, ms.M(), ms.NH(), ms.NL(), tab.M(), tab.NH(), tab.NL())
					}
					if want := s + s*(s-1)/2; ms.Components() != want {
						t.Fatalf("s=%d: %d components, want %d", s, ms.Components(), want)
					}
					if ms.CumWeight(ms.Components()-1) != ms.NH() {
						t.Fatalf("cumulative component weights end at %d, NH %d",
							ms.CumWeight(ms.Components()-1), ms.NH())
					}
					for i := 0; i < gs.N(); i++ {
						for j := i + 1; j < gs.N(); j++ {
							if got, want := ms.SameBucket(i, j), tab.SameBucket(i, j); got != want {
								t.Fatalf("s=%d t=%d SameBucket(%d,%d)=%v, union %v", s, ti, i, j, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// SamplePair over the merged stratum is uniform over the union stratum H:
// every sampled pair is co-bucketed in the union, every union stratum pair
// is reachable, and frequencies match the uniform expectation.
func TestMergedSamplePairUniformOverUnionStratum(t *testing.T) {
	gs, union := groupAndUnion(t, 90, 8, 1, 3, lsh.NewSimHash(9))
	ms, err := NewMergedStratum(gs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := union.Table(0)
	if tab.NH() < 3 {
		t.Skip("bucket structure degenerate for this seed")
	}
	rng := xrand.New(5)
	counts := map[[2]int]int{}
	const draws = 60000
	for d := 0; d < draws; d++ {
		a, b, ok := ms.SamplePair(rng)
		if !ok {
			t.Fatal("SamplePair failed with NH > 0")
		}
		if a == b {
			t.Fatal("sampled identical indices")
		}
		if !tab.SameBucket(a, b) {
			t.Fatalf("sampled pair (%d,%d) not co-bucketed in the union", a, b)
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	want := float64(draws) / float64(ms.NH())
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pair, c, want)
		}
	}
	if int64(len(counts)) != ms.NH() {
		t.Errorf("observed %d distinct pairs, stratum has %d", len(counts), ms.NH())
	}
}

// With one shard the merged constructors delegate: draw-for-draw identical
// estimates to the single-snapshot constructors.
func TestMergedSingleShardDelegates(t *testing.T) {
	gs, union := groupAndUnion(t, 200, 10, 2, 1, lsh.NewSimHash(3))
	merged, err := NewMergedLSHSS(gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewLSHSS(union, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.5, 0.8, 0.95} {
		for seed := uint64(1); seed <= 3; seed++ {
			a, err := merged.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := plain.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("tau=%v seed=%d: merged %v, plain %v", tau, seed, a, b)
			}
		}
	}
}

// JU consumes only (M, N_H, k), and the merged N_H is exact, so the sharded
// JU equals the union JU bit for bit — both modes.
func TestMergedJUEqualsUnion(t *testing.T) {
	for _, s := range []int{2, 5} {
		gs, union := groupAndUnion(t, 180, 8, 1, s, lsh.NewSimHash(11))
		for _, mode := range []JUMode{JUClosedForm, JUNumeric} {
			merged, err := NewMergedJU(gs, mode)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := NewJU(union, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []float64{0.3, 0.7, 0.9} {
				a, err := merged.Estimate(tau, nil)
				if err != nil {
					t.Fatal(err)
				}
				b, err := plain.Estimate(tau, nil)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("s=%d mode=%d tau=%v: merged %v, union %v", s, mode, tau, a, b)
				}
			}
		}
	}
}

// The merged LSH-SS, median and virtual estimators answer over shards with
// the accuracy the single-index estimators deliver: within a small factor of
// the exact join size at a threshold with real selectivity.
func TestMergedEstimatorsTrackExactJoin(t *testing.T) {
	gs, _ := groupAndUnion(t, 400, 8, 3, 4, lsh.NewSimHash(7))
	joiner := exactjoin.NewJoiner(gs.Data())
	const tau = 0.8
	exact, err := joiner.CountAt(tau)
	if err != nil {
		t.Fatal(err)
	}
	if exact < 10 {
		t.Skipf("degenerate corpus: exact join %d", exact)
	}
	build := map[string]func() (Estimator, error){
		"lshss":   func() (Estimator, error) { return NewMergedLSHSS(gs, nil) },
		"median":  func() (Estimator, error) { return NewMergedMedianSS(gs, nil) },
		"virtual": func() (Estimator, error) { return NewMergedVirtualSS(gs, nil) },
	}
	for name, mk := range build {
		est, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Average a few seeded estimates: individual draws are noisy by
		// design, the mean should sit near the truth.
		var sum float64
		const reps = 9
		for seed := uint64(1); seed <= reps; seed++ {
			v, err := est.Estimate(tau, xrand.New(seed*97))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sum += v
		}
		mean := sum / reps
		if ratio := mean / float64(exact); ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: mean estimate %.1f vs exact %d (ratio %.2f)", name, mean, exact, ratio)
		}
	}
}

// The merged curve estimator inherits monotonicity and stays consistent with
// pointwise merged estimates' scale.
func TestMergedEstimateCurveMonotone(t *testing.T) {
	gs, _ := groupAndUnion(t, 300, 8, 1, 3, lsh.NewSimHash(13))
	e, err := NewMergedLSHSS(gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	curve, err := e.EstimateCurve(taus, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("curve not monotone at %d: %v", i, curve)
		}
	}
}

// Out-of-range table selections fail fast on every constructor, merged or
// not (the virtual-bucket estimator ignores WithTable but still validates).
func TestOutOfRangeTableRejected(t *testing.T) {
	gs, union := groupAndUnion(t, 60, 6, 2, 3, lsh.NewSimHash(3))
	if _, err := NewVirtualSS(union, nil, WithTable(7)); err == nil {
		t.Error("VirtualSS accepted out-of-range table")
	}
	if _, err := NewMergedVirtualSS(gs, nil, WithTable(7)); err == nil {
		t.Error("merged VirtualSS accepted out-of-range table")
	}
	if _, err := NewMergedLSHSS(gs, nil, WithTable(7)); err == nil {
		t.Error("merged LSHSS accepted out-of-range table")
	}
	if _, err := NewMergedStratum(gs, 9); err == nil {
		t.Error("MergedStratum accepted out-of-range table")
	}
}

// LSH-S over shards uses the merged N_H with the union corpus.
func TestMergedLSHSRuns(t *testing.T) {
	gs, union := groupAndUnion(t, 200, 8, 1, 3, lsh.NewSimHash(15))
	merged, err := NewMergedLSHS(gs, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewLSHS(union, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same n, same family, exact same N_H: identical RNG stream gives the
	// identical estimate even though the estimators were built separately.
	a, err := merged.Estimate(0.8, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Estimate(0.8, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("merged LSH-S %v, union %v", a, b)
	}
}

// crossGroupsAndUnion routes two corpora into shard groups (sharing one
// family) and builds the union bipartite matching over their dense orders,
// so dense group ids align with the union matching's ids.
func crossGroupsAndUnion(t *testing.T, nl, nr, k, ell, sl, sr int, fam lsh.Family) (*lsh.GroupSnapshot, *lsh.GroupSnapshot, *lsh.Bipartite) {
	t.Helper()
	left := testData(nl, 101)
	right := testData(nr, 103)
	copy(right[:nr/5], left[:nr/5]) // plant shared vectors so stratum H is non-trivial
	gl, err := lsh.NewShardGroup(left, fam, k, ell, sl)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := lsh.NewShardGroup(right, fam, k, ell, sr)
	if err != nil {
		t.Fatal(err)
	}
	lgs, rgs := gl.Capture(), gr.Capture()
	ul, err := lsh.BuildSnapshot(lgs.Data(), fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := lsh.BuildSnapshot(rgs.Data(), fam, k, ell)
	if err != nil {
		t.Fatal(err)
	}
	union, err := lsh.NewBipartite(ul, ur, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lgs, rgs, union
}

// The merged bipartite stratum must reproduce the union bipartite matching
// exactly: same M, N_H, N_L, per-pair membership and similarity, one
// component per shard pair, and cumulative weights ending at N_H.
func TestMergedBipartiteMatchesUnion(t *testing.T) {
	for _, tc := range []struct {
		name string
		fam  lsh.Family
		k    int
	}{
		{"narrow-simhash", lsh.NewSimHash(5), 10},
		{"wide-minhash", lsh.NewMinHash(5), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, shape := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 2}} {
				sl, sr := shape[0], shape[1]
				lgs, rgs, union := crossGroupsAndUnion(t, 120, 100, tc.k, 1, sl, sr, tc.fam)
				ms, err := NewMergedBipartiteStratum(lgs, rgs, 0)
				if err != nil {
					t.Fatal(err)
				}
				if ms.M() != union.M() || ms.NH() != union.NH() || ms.NL() != union.NL() {
					t.Fatalf("s=%dx%d: merged (M,NH,NL)=(%d,%d,%d), union (%d,%d,%d)",
						sl, sr, ms.M(), ms.NH(), ms.NL(), union.M(), union.NH(), union.NL())
				}
				if ms.NH() == 0 {
					t.Fatalf("s=%dx%d: degenerate fixture, N_H = 0", sl, sr)
				}
				if ms.LeftN() != union.LeftN() || ms.RightN() != union.RightN() {
					t.Fatalf("s=%dx%d: merged sides (%d,%d), union (%d,%d)",
						sl, sr, ms.LeftN(), ms.RightN(), union.LeftN(), union.RightN())
				}
				if want := sl * sr; ms.Components() != want {
					t.Fatalf("s=%dx%d: %d components, want %d", sl, sr, ms.Components(), want)
				}
				if ms.CumWeight(ms.Components()-1) != ms.NH() {
					t.Fatalf("cumulative component weights end at %d, NH %d",
						ms.CumWeight(ms.Components()-1), ms.NH())
				}
				for u := 0; u < lgs.N(); u++ {
					for v := 0; v < rgs.N(); v++ {
						if got, want := ms.SameBucket(u, v), union.SameBucket(u, v); got != want {
							t.Fatalf("s=%dx%d SameBucket(%d,%d)=%v, union %v", sl, sr, u, v, got, want)
						}
						if got, want := ms.Sim(u, v), union.Sim(u, v); got != want {
							t.Fatalf("s=%dx%d Sim(%d,%d)=%v, union %v", sl, sr, u, v, got, want)
						}
					}
				}
			}
		})
	}
}

// SamplePair over the merged bipartite stratum is uniform over the union
// cross stratum H: every sampled pair is bucket-matched in the union, every
// union stratum pair is reachable, and frequencies match the uniform
// expectation.
func TestMergedBipartiteSamplePairUniform(t *testing.T) {
	lgs, rgs, union := crossGroupsAndUnion(t, 80, 70, 8, 1, 3, 2, lsh.NewSimHash(9))
	ms, err := NewMergedBipartiteStratum(lgs, rgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if union.NH() < 3 {
		t.Skip("bucket structure degenerate for this seed")
	}
	rng := xrand.New(5)
	counts := map[[2]int]int{}
	const draws = 60000
	for d := 0; d < draws; d++ {
		u, v, ok := ms.SamplePair(rng)
		if !ok {
			t.Fatal("SamplePair failed with NH > 0")
		}
		if !union.SameBucket(u, v) {
			t.Fatalf("sampled pair (%d,%d) not bucket-matched in the union", u, v)
		}
		counts[[2]int{u, v}]++
	}
	want := float64(draws) / float64(ms.NH())
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pair, c, want)
		}
	}
	if int64(len(counts)) != ms.NH() {
		t.Errorf("observed %d distinct pairs, stratum has %d", len(counts), ms.NH())
	}
}

// With one shard on each side the merged general constructor delegates to
// the plain bipartite matching: draw-for-draw identical estimates and
// curves.
func TestMergedGeneralSingleShardDelegates(t *testing.T) {
	lgs, rgs, union := crossGroupsAndUnion(t, 150, 120, 10, 1, 1, 1, lsh.NewSimHash(3))
	merged, err := NewMergedGeneralLSHSS(lgs, rgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewGeneralLSHSS(union, nil)
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.9, 0.5, 0.7}
	for seed := uint64(1); seed <= 8; seed++ {
		for _, tau := range taus {
			a, err := merged.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := plain.Estimate(tau, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("seed %d tau %v: merged %v, plain %v", seed, tau, a, b)
			}
		}
		ca, err := merged.EstimateCurve(taus, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := plain.EstimateCurve(taus, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("seed %d: curve[%d] merged %v, plain %v", seed, i, ca[i], cb[i])
			}
		}
	}
}

// The merged general estimator over genuinely sharded sides tracks the
// exact cross join at a planted high threshold.
func TestMergedGeneralTracksExactJoin(t *testing.T) {
	lgs, rgs, _ := crossGroupsAndUnion(t, 200, 150, 10, 1, 3, 2, lsh.NewSimHash(7))
	exact := float64(ExactGeneralJoin(lgs.Data(), rgs.Data(), nil, 0.95))
	if exact < 10 {
		t.Fatalf("planting failed: exact = %v", exact)
	}
	est, err := NewMergedGeneralLSHSS(lgs, rgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		v, err := est.Estimate(0.95, xrand.New(uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if mean := sum / reps; mean < 0.1*exact || mean > 20*exact {
		t.Errorf("merged general mean %v vs exact %v", mean, exact)
	}
}

// The general curve is monotone non-increasing in τ and clamped to [0, M],
// over both plain and merged strata.
func TestGeneralCurveMonotone(t *testing.T) {
	lgs, rgs, union := crossGroupsAndUnion(t, 150, 120, 8, 1, 2, 2, lsh.NewSimHash(11))
	merged, err := NewMergedGeneralLSHSS(lgs, rgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewGeneralLSHSS(union, nil)
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99}
	for name, e := range map[string]*GeneralLSHSS{"merged": merged, "plain": plain} {
		curve, err := e.EstimateCurve(taus, xrand.New(21))
		if err != nil {
			t.Fatal(err)
		}
		m := float64(union.M())
		for i := range curve {
			if curve[i] < 0 || curve[i] > m {
				t.Fatalf("%s: curve[%d]=%v outside [0, %v]", name, i, curve[i], m)
			}
			if i > 0 && curve[i] > curve[i-1] {
				t.Fatalf("%s: curve not monotone at %d: %v > %v", name, i, curve[i], curve[i-1])
			}
		}
		if _, err := e.EstimateCurve(nil, xrand.New(1)); err == nil {
			t.Fatalf("%s: empty grid accepted", name)
		}
		if _, err := e.EstimateCurve([]float64{1.5}, xrand.New(1)); err == nil {
			t.Fatalf("%s: out-of-range τ accepted", name)
		}
	}
}

// Incompatible or out-of-range cross-group inputs are rejected up front.
func TestMergedBipartiteValidation(t *testing.T) {
	data := testData(30, 7)
	mk := func(fam lsh.Family, k int) *lsh.GroupSnapshot {
		g, err := lsh.NewShardGroup(data, fam, k, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return g.Capture()
	}
	base := mk(lsh.NewSimHash(1), 6)
	if _, err := NewMergedBipartiteStratum(base, mk(lsh.NewSimHash(2), 6), 0); err == nil {
		t.Error("mismatched families accepted")
	}
	if _, err := NewMergedBipartiteStratum(base, mk(lsh.NewSimHash(1), 5), 0); err == nil {
		t.Error("mismatched k accepted")
	}
	if _, err := NewMergedBipartiteStratum(base, base, 1); err == nil {
		t.Error("out-of-range table accepted")
	}
	if _, err := NewMergedBipartiteStratum(base, nil, 0); err == nil {
		t.Error("nil side accepted")
	}
	if _, err := NewMergedGeneralLSHSS(base, nil, nil); err == nil {
		t.Error("general constructor accepted nil side")
	}
}
