package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// propWorld is a randomly generated estimation scenario for property tests:
// a small vector collection, an index, and a threshold.
type propWorld struct {
	Seed uint64
	N    int
	K    int
	Tau  float64
}

func (propWorld) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(propWorld{
		Seed: r.Uint64(),
		N:    20 + r.Intn(180),
		K:    2 + r.Intn(14),
		Tau:  0.05 + 0.95*r.Float64(),
	})
}

func (w propWorld) build(t *testing.T) (*lsh.Snapshot, []vecmath.Vector) {
	t.Helper()
	data := testData(w.N, w.Seed)
	snap, err := lsh.BuildSnapshot(data, lsh.NewSimHash(w.Seed^0xABCD), w.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	return snap, data
}

// TestPropLSHSSEstimateInRange: for any scenario, LSH-SS returns a finite
// estimate in [0, M].
func TestPropLSHSSEstimateInRange(t *testing.T) {
	f := func(w propWorld) bool {
		idx, data := w.build(t)
		e, err := NewLSHSS(idx, nil)
		if err != nil {
			return false
		}
		v, err := e.Estimate(w.Tau, xrand.New(w.Seed^1))
		if err != nil {
			return false
		}
		m := pairsOf(len(data))
		return v >= 0 && v <= m && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropDetailConsistency: the per-stratum decomposition always satisfies
// the Algorithm 1 bookkeeping identities.
func TestPropDetailConsistency(t *testing.T) {
	f := func(w propWorld) bool {
		idx, data := w.build(t)
		e, err := NewLSHSS(idx, nil)
		if err != nil {
			return false
		}
		d, err := e.EstimateDetailed(w.Tau, xrand.New(w.Seed^2))
		if err != nil {
			return false
		}
		_, _, delta, _, _ := e.Params()
		switch {
		case d.JH < 0 || d.JL < 0 || d.Estimate < 0:
			return false
		case d.HitsL > d.TakenL:
			return false
		case d.ReliableL != (d.HitsL >= delta):
			return false
		case !d.ReliableL && d.JL != float64(d.HitsL):
			return false // safe lower bound must be the raw count
		case math.Abs(d.Estimate-math.Min(d.JH+d.JL, pairsOf(len(data)))) > 1e-9:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropDampNeverBelowSafeBound: for the same random stream, the dampened
// estimate is at least the safe-lower-bound estimate (c_s ≥ 0 scale-up adds
// mass; it never removes the observed hits' worth of evidence entirely...
// strictly, Ĵ_L(damped) ≥ 0 and Ĵ_H identical).
func TestPropDampedJHMatchesPlain(t *testing.T) {
	f := func(w propWorld) bool {
		idx, _ := w.build(t)
		plain, err := NewLSHSS(idx, nil)
		if err != nil {
			return false
		}
		damped, err := NewLSHSS(idx, nil, WithDamp(DampAuto, 0))
		if err != nil {
			return false
		}
		// Identical RNG seeds → identical sampling paths → identical J_H and
		// identical SampleL trajectories; only the final scaling differs.
		a, err := plain.EstimateDetailed(w.Tau, xrand.New(w.Seed^3))
		if err != nil {
			return false
		}
		b, err := damped.EstimateDetailed(w.Tau, xrand.New(w.Seed^3))
		if err != nil {
			return false
		}
		if a.JH != b.JH || a.HitsL != b.HitsL || a.TakenL != b.TakenL {
			return false
		}
		if a.ReliableL && a.JL != b.JL {
			return false // reliable branch is identical in both modes
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropRSInRange mirrors the range property for both baselines.
func TestPropRSInRange(t *testing.T) {
	f := func(w propWorld) bool {
		data := testData(w.N, w.Seed)
		pop, err := NewRSPop(data, nil, 50)
		if err != nil {
			return false
		}
		cross, err := NewRSCross(data, nil, 50)
		if err != nil {
			return false
		}
		m := pairsOf(len(data))
		for _, e := range []Estimator{pop, cross} {
			v, err := e.Estimate(w.Tau, xrand.New(w.Seed^4))
			if err != nil || v < 0 || v > m || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropTauMonotoneTruth: exact join counts are non-increasing in τ, and
// LSH-SS's stratum-H truth J_H respects the same ordering — a cross-check
// between the index enumeration and the similarity measure.
func TestPropStratumMonotone(t *testing.T) {
	f := func(w propWorld) bool {
		idx, data := w.build(t)
		tab := idx.Table(0)
		lo, hi := w.Tau*0.5, w.Tau
		var jhLo, jhHi int64
		tab.ForEachIntraPair(func(i, j int32) bool {
			s := vecmath.Cosine(data[i], data[j])
			if s >= lo {
				jhLo++
			}
			if s >= hi {
				jhHi++
			}
			return true
		})
		return jhLo >= jhHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
