package core

import (
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// routedVector returns a test vector that g routes to shard s.
func routedVector(t *testing.T, g *lsh.ShardGroup, s int) vecmath.Vector {
	t.Helper()
	for _, v := range testData(200, 9001) {
		if g.Route(v) == s {
			return v
		}
	}
	t.Fatalf("no test vector routes to shard %d", s)
	return vecmath.Vector{}
}

// sameDraws asserts two stratum views produce the identical sample stream
// from the same seed — the cached rebuild must be draw-for-draw equal to a
// fresh build, not merely equal in aggregate.
func sameDraws(t *testing.T, a, b BipartiteStratum) {
	t.Helper()
	ra, rb := xrand.New(42), xrand.New(42)
	for i := 0; i < 200; i++ {
		au, av, aok := a.SamplePair(ra)
		bu, bv, bok := b.SamplePair(rb)
		if au != bu || av != bv || aok != bok {
			t.Fatalf("draw %d: cached (%d,%d,%v), fresh (%d,%d,%v)", i, au, av, aok, bu, bv, bok)
		}
	}
}

// A single-shard publish must rebuild only that shard's row of bipartite
// components: every component over untouched shard pairs stays
// pointer-identical across the cache advance, and the rebuilt view matches a
// fresh build exactly.
func TestBipartiteStratumCacheComponentReuse(t *testing.T) {
	fam := lsh.NewSimHash(7)
	gl, err := lsh.NewShardGroup(testData(120, 311), fam, 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := lsh.NewShardGroup(testData(140, 317), fam, 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBipartiteStratumCache(0)
	lgs, rgs := gl.Capture(), gr.Capture()

	v1, err := c.View(lgs, rgs)
	if err != nil {
		t.Fatal(err)
	}
	ms1, ok := v1.(*MergedBipartiteStratum)
	if !ok {
		t.Fatalf("2x2 view is %T, want *MergedBipartiteStratum", v1)
	}
	if v2, err := c.View(lgs, rgs); err != nil || v2 != v1 {
		t.Fatalf("unchanged capture rebuilt the view: %v, %v", v2, err)
	}

	// Publish on left shard 0 only; shard 1 and both right shards are
	// untouched, so components (1,0) and (1,1) must be reused.
	gl.Shard(0).Insert(routedVector(t, gl, 0))
	lgs2 := gl.Capture()
	if lgs2.Versions()[0] == lgs.Versions()[0] || lgs2.Versions()[1] != lgs.Versions()[1] {
		t.Fatalf("publish moved versions %v -> %v, want shard 0 only", lgs.Versions(), lgs2.Versions())
	}
	v2, err := c.View(lgs2, rgs)
	if err != nil {
		t.Fatal(err)
	}
	ms2 := v2.(*MergedBipartiteStratum)
	for b := 0; b < 2; b++ {
		if ms2.comps[2+b].bp != ms1.comps[2+b].bp {
			t.Fatalf("untouched component (1,%d) was rebuilt", b)
		}
		if ms2.comps[b].bp == ms1.comps[b].bp {
			t.Fatalf("stale component (0,%d) was reused across a publish", b)
		}
	}
	fresh, err := NewMergedBipartiteStratum(lgs2, rgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms2.NH() != fresh.NH() || ms2.M() != fresh.M() {
		t.Fatalf("cached rebuild (NH,M)=(%d,%d), fresh (%d,%d)", ms2.NH(), ms2.M(), fresh.NH(), fresh.M())
	}
	sameDraws(t, ms2, fresh)

	// A reader serving an older capture gets a correct one-off view — it may
	// reuse the shard pairs it shares with the adopted view — without
	// evicting the newer adopted one.
	vOld, err := c.View(lgs, rgs)
	if err != nil {
		t.Fatal(err)
	}
	freshOld, err := NewMergedBipartiteStratum(lgs, rgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vOld.NH() != freshOld.NH() {
		t.Fatalf("stale capture view NH %d, fresh %d", vOld.NH(), freshOld.NH())
	}
	if vNow, err := c.View(lgs2, rgs); err != nil || vNow != v2 {
		t.Fatalf("stale reader evicted the adopted view: %v, %v", vNow, err)
	}
}

// versionPairAdvances is the cache's two-sided advance rule: neither side
// may regress and at least one component must advance.
func TestVersionPairAdvances(t *testing.T) {
	v := func(xs ...uint64) []uint64 { return xs }
	cases := []struct {
		lNext, lPrev, rNext, rPrev []uint64
		want                       bool
	}{
		{v(2, 1), v(1, 1), v(5), v(5), true},  // left advanced
		{v(1, 1), v(1, 1), v(6), v(5), true},  // right advanced
		{v(1, 1), v(1, 1), v(5), v(5), false}, // identical pair
		{v(2, 1), v(1, 2), v(5), v(5), false}, // left incomparable (sum alias)
		{v(2, 1), v(1, 1), v(4), v(5), false}, // left advanced but right regressed
		{v(1), v(1, 1), v(5), v(5), false},    // shape mismatch
		{v(2, 2), v(1, 1), v(6), v(5), true},  // both advanced
	}
	for _, c := range cases {
		if got := versionPairAdvances(c.lNext, c.lPrev, c.rNext, c.rPrev); got != c.want {
			t.Errorf("versionPairAdvances(%v,%v,%v,%v) = %v, want %v", c.lNext, c.lPrev, c.rNext, c.rPrev, got, c.want)
		}
	}
}

// With one shard per side the cache must serve the plain per-snapshot
// bipartite — same type and draw stream as NewBipartiteStratum — and still
// reuse it across unchanged captures.
func TestBipartiteStratumCacheSingleShard(t *testing.T) {
	fam := lsh.NewSimHash(7)
	gl, err := lsh.NewShardGroup(testData(60, 11), fam, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := lsh.NewShardGroup(testData(70, 13), fam, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBipartiteStratumCache(0)
	lgs, rgs := gl.Capture(), gr.Capture()
	v1, err := c.View(lgs, rgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v1.(*lsh.Bipartite); !ok {
		t.Fatalf("1x1 view is %T, want *lsh.Bipartite", v1)
	}
	if v2, err := c.View(lgs, rgs); err != nil || v2 != v1 {
		t.Fatalf("unchanged 1x1 capture rebuilt the view: %v, %v", v2, err)
	}
	want, err := NewBipartiteStratum(lgs, rgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameDraws(t, v1, want)

	gl.Insert(routedVector(t, gl, 0))
	lgs2 := gl.Capture()
	v3, err := c.View(lgs2, rgs)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("stale 1x1 view reused across a publish")
	}
}
