package core

import (
	"fmt"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/sample"
	"lshjoin/internal/xrand"
)

// LSHS is the LSH-S estimator of §4.3: it removes the uniformity assumption
// of J_U by weighting the collision curve with the empirical similarity
// distribution of a random pair sample. With f(s) = p(s)^k:
//
//	P̂(H|T) = Σ_{(u,v)∈S_T} f(sim(u,v)) / |S_T|   (Equation 5)
//	P̂(H|F) = Σ_{(u,v)∈S_F} f(sim(u,v)) / |S_F|   (Equation 6)
//
// plugged into Equation (1). When the sample contains no true pair — the
// failure mode §6.2 reports at high thresholds — the estimator falls back to
// the analytic P(H|T) of the uniformity analysis, which is exactly why its
// high-threshold estimates are unreliable.
type LSHS struct {
	mPairs, nh int64 // M = C(n, 2) and N_H of the stratifying table (or merged view)
	k          int
	family     lsh.Family
	view       dataView
	n          int
	m          int
}

// NewLSHS builds the estimator over table 0 of an index snapshot; m is the
// pair-sample size (defaults to n). Like all estimators, it binds to the
// snapshot at construction and is immune to concurrent inserts.
func NewLSHS(snap *lsh.Snapshot, m int) (*LSHS, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: LSH-S needs an index snapshot")
	}
	tab := snap.Table(0)
	return newLSHSFrom(tab.M(), tab.NH(), tab.K(), snap.Family(), sliceView(snap.Data()), snap.N(), m)
}

// newLSHSFrom builds the estimator from its summary statistics plus a vector
// view — the form the sharded constructors feed with merged N_H and the
// dense union corpus.
func newLSHSFrom(mPairs, nh int64, k int, family lsh.Family, view dataView, n, m int) (*LSHS, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: LSH-S needs at least 2 vectors, got %d", n)
	}
	if m <= 0 {
		m = n
	}
	return &LSHS{mPairs: mPairs, nh: nh, k: k, family: family, view: view, n: n, m: m}, nil
}

// Name implements Estimator.
func (e *LSHS) Name() string { return "LSH-S" }

// Estimate implements Estimator.
func (e *LSHS) Estimate(tau float64, rng *xrand.RNG) (float64, error) {
	if err := validateTau(tau); err != nil {
		return 0, err
	}
	k := float64(e.k)
	f := func(s float64) float64 {
		return math.Pow(e.family.CollisionProb(s), k)
	}
	var sumT, sumF float64
	var nT, nF int
	for s := 0; s < e.m; s++ {
		i, j := sample.UniformPair(rng, e.n)
		sim := e.family.Sim(e.view.At(i), e.view.At(j))
		if sim >= tau {
			sumT += f(sim)
			nT++
		} else {
			sumF += f(sim)
			nF++
		}
	}
	var pht float64
	if nT > 0 {
		pht = sumT / float64(nT)
	} else {
		// No true pair sampled: fall back to the LSH-function analysis.
		pht, _ = conditionalProbs(e.family, e.k, tau)
	}
	var phf float64
	if nF > 0 {
		phf = sumF / float64(nF)
	} else {
		_, phf = conditionalProbs(e.family, e.k, tau)
	}
	m := float64(e.mPairs)
	nh := float64(e.nh)
	if pht-phf <= 0 {
		return 0, nil
	}
	return clampEstimate((nh-m*phf)/(pht-phf), m), nil
}
