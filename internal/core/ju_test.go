package core

import (
	"math"
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

func simhashIndex(t *testing.T, n int, k, ell int, dataSeed, hashSeed uint64) *lsh.Snapshot {
	t.Helper()
	data := testData(n, dataSeed)
	snap, err := lsh.BuildSnapshot(data, lsh.NewSimHash(hashSeed), k, ell)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestJUValidation(t *testing.T) {
	idx := simhashIndex(t, 50, 8, 1, 1, 2)
	if _, err := NewJU(nil, JUClosedForm); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := NewJU(idx, JUMode(99)); err == nil {
		t.Error("bogus mode accepted")
	}
	e, err := NewJU(idx, JUClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(0, nil); err == nil {
		t.Error("tau=0 accepted")
	}
}

// TestJUClosedFormArithmetic verifies Equation (4) symbolically: plug in a
// table with known NH, M, k and compare against a direct evaluation.
func TestJUClosedFormArithmetic(t *testing.T) {
	idx := simhashIndex(t, 200, 10, 1, 3, 4)
	tab := idx.Table(0)
	e, err := NewJU(idx, JUClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.2, 0.5, 0.8} {
		got, err := e.Estimate(tau, nil)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(tab.K())
		var geo float64
		for i := 0; i < tab.K(); i++ {
			geo += math.Pow(tau, float64(i))
		}
		raw := ((k+1)*float64(tab.NH()) - math.Pow(tau, k)*float64(tab.M())) / geo
		want := raw
		if want < 0 {
			want = 0
		}
		if want > float64(tab.M()) {
			want = float64(tab.M())
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("tau=%v: got %v, want %v", tau, got, want)
		}
	}
}

// TestJUNumericMatchesClosedFormForMinHash: with MinHash, p(s) = s exactly,
// so numeric integration must reproduce Equation (4).
func TestJUNumericMatchesClosedFormForMinHash(t *testing.T) {
	data := testData(300, 5)
	fam := lsh.NewMinHash(6)
	idx, err := lsh.BuildSnapshot(data, fam, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := NewJU(idx, JUClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := NewJU(idx, JUNumeric)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.3, 0.5, 0.7} {
		a, err := closed.Estimate(tau, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := numeric.Estimate(tau, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 0.02*(1+math.Abs(a)) {
			t.Errorf("tau=%v: closed %v vs numeric %v", tau, a, b)
		}
	}
}

// TestJUNumericDiffersForSimHash: the real sign-projection curve is not
// p(s)=s, so the two modes should disagree — that is the point of the
// ablation.
func TestJUNumericDiffersForSimHash(t *testing.T) {
	idx := simhashIndex(t, 300, 10, 1, 7, 8)
	closed, _ := NewJU(idx, JUClosedForm)
	numeric, _ := NewJU(idx, JUNumeric)
	differs := false
	for _, tau := range []float64{0.3, 0.5, 0.7} {
		a, _ := closed.Estimate(tau, nil)
		b, _ := numeric.Estimate(tau, nil)
		if math.Abs(a-b) > 0.05*(1+math.Abs(a)) {
			differs = true
		}
	}
	if !differs {
		t.Error("closed-form and numeric JU agree everywhere under SimHash; expected divergence")
	}
}

func TestJUBounded(t *testing.T) {
	idx := simhashIndex(t, 100, 12, 1, 9, 10)
	for _, mode := range []JUMode{JUClosedForm, JUNumeric} {
		e, err := NewJU(idx, mode)
		if err != nil {
			t.Fatal(err)
		}
		m := float64(idx.Table(0).M())
		for tau := 0.05; tau <= 1.0; tau += 0.05 {
			v, err := e.Estimate(tau, nil)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > m || math.IsNaN(v) {
				t.Fatalf("mode %v tau=%v: estimate %v out of [0,%v]", mode, tau, v, m)
			}
		}
	}
}

func TestSimpson(t *testing.T) {
	// ∫₀¹ s² ds = 1/3.
	got := simpson(func(s float64) float64 { return s * s }, 0, 1, 64)
	if math.Abs(got-1.0/3.0) > 1e-10 {
		t.Errorf("simpson s² = %v", got)
	}
	// ∫₀^π sin = 2.
	got = simpson(math.Sin, 0, math.Pi, 128)
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("simpson sin = %v", got)
	}
	if simpson(math.Sin, 1, 1, 10) != 0 {
		t.Error("empty interval should integrate to 0")
	}
	// Odd panel counts are rounded up rather than corrupting the result.
	odd := simpson(func(s float64) float64 { return s }, 0, 1, 3)
	if math.Abs(odd-0.5) > 1e-10 {
		t.Errorf("odd-panel simpson = %v", odd)
	}
}

func TestConditionalProbsProperties(t *testing.T) {
	fam := lsh.NewSimHash(1)
	for _, k := range []int{1, 5, 20} {
		for _, tau := range []float64{0.1, 0.5, 0.9} {
			pht, phf := conditionalProbs(fam, k, tau)
			if pht < 0 || pht > 1 || phf < 0 || phf > 1 {
				t.Fatalf("k=%d tau=%v: probabilities out of range: %v, %v", k, tau, pht, phf)
			}
			if pht < phf {
				t.Errorf("k=%d tau=%v: P(H|T)=%v < P(H|F)=%v; high-similarity pairs must collide more", k, tau, pht, phf)
			}
		}
	}
}

func TestJUDeterministic(t *testing.T) {
	idx := simhashIndex(t, 100, 8, 1, 11, 12)
	e, _ := NewJU(idx, JUClosedForm)
	a, _ := e.Estimate(0.5, xrand.New(1))
	b, _ := e.Estimate(0.5, xrand.New(999))
	if a != b {
		t.Error("JU should not depend on the RNG")
	}
}
