package core

import (
	"math"
	"testing"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func bipartiteFixture(t *testing.T) (*lsh.Bipartite, []vecmath.Vector, []vecmath.Vector) {
	t.Helper()
	left := testData(300, 61)
	right := testData(250, 62)
	// Make the cross join non-trivial at high τ: plant identical vectors on
	// both sides.
	for i := 0; i < 10; i++ {
		right[i] = left[i]
	}
	fam := lsh.NewSimHash(63)
	li, err := lsh.BuildSnapshot(left, fam, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := lsh.BuildSnapshot(right, fam, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := lsh.NewBipartite(li, ri, 0)
	if err != nil {
		t.Fatal(err)
	}
	return bp, left, right
}

func TestGeneralRSValidation(t *testing.T) {
	if _, err := NewGeneralRS(nil, testData(10, 1), nil, 5); err == nil {
		t.Error("empty left accepted")
	}
	e, err := NewGeneralRS(testData(10, 1), testData(10, 2), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(0, xrand.New(1)); err == nil {
		t.Error("tau=0 accepted")
	}
}

func TestGeneralRSUnbiased(t *testing.T) {
	_, left, right := bipartiteFixture(t)
	truth := float64(ExactGeneralJoin(left, right, nil, 0.3))
	if truth < 10 {
		t.Fatal("degenerate cross join")
	}
	e, err := NewGeneralRS(left, right, nil, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got := meanEstimate(t, e, 0.3, 100, 64)
	if math.Abs(got-truth) > 0.3*truth {
		t.Errorf("mean %v, truth %v", got, truth)
	}
}

func TestGeneralLSHSSValidation(t *testing.T) {
	if _, err := NewGeneralLSHSS(nil, nil); err == nil {
		t.Error("nil bipartite accepted")
	}
	bp, _, _ := bipartiteFixture(t)
	if _, err := NewGeneralLSHSS(bp, nil, WithGeneralSampleSizes(0, 5)); err == nil {
		t.Error("mH=0 accepted")
	}
}

func TestGeneralLSHSSAccurateModerate(t *testing.T) {
	bp, left, right := bipartiteFixture(t)
	truth := float64(ExactGeneralJoin(left, right, nil, 0.3))
	// m_L large enough for SampleL's reliable regime at this scale.
	e, err := NewGeneralLSHSS(bp, nil, WithGeneralSampleSizes(300, 12000))
	if err != nil {
		t.Fatal(err)
	}
	got := meanEstimate(t, e, 0.3, 60, 65)
	if math.Abs(got-truth) > 0.4*truth {
		t.Errorf("mean %v, truth %v", got, truth)
	}
}

// TestGeneralLSHSSHighThreshold: the planted identical pairs dominate at
// τ = 0.95; LSH-SS must find mass there without exploding.
func TestGeneralLSHSSHighThreshold(t *testing.T) {
	bp, left, right := bipartiteFixture(t)
	truth := float64(ExactGeneralJoin(left, right, nil, 0.95))
	if truth < 5 {
		t.Fatalf("planting failed: truth = %v", truth)
	}
	e, err := NewGeneralLSHSS(bp, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(66)
	for r := 0; r < 30; r++ {
		v, err := e.Estimate(0.95, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v > 50*truth {
			t.Errorf("estimate %v explodes over truth %v", v, truth)
		}
	}
	got := meanEstimate(t, e, 0.95, 50, 67)
	if got < 0.1*truth {
		t.Errorf("mean %v collapsed below truth %v", got, truth)
	}
}

func TestGeneralLSHSSBounded(t *testing.T) {
	bp, _, _ := bipartiteFixture(t)
	e, err := NewGeneralLSHSS(bp, nil, WithGeneralDamp(DampAuto, 0))
	if err != nil {
		t.Fatal(err)
	}
	m := float64(bp.M())
	rng := xrand.New(68)
	for _, tau := range []float64{0.1, 0.5, 0.9, 1.0} {
		for r := 0; r < 10; r++ {
			v, err := e.Estimate(tau, rng)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v > m || math.IsNaN(v) {
				t.Fatalf("tau=%v: estimate %v out of range", tau, v)
			}
		}
	}
}

func TestExactGeneralJoinSymmetricMeasure(t *testing.T) {
	a := testData(40, 71)
	b := testData(50, 72)
	tau := 0.4
	// |J(A,B)| counted row-major must equal column-major.
	ab := ExactGeneralJoin(a, b, nil, tau)
	ba := ExactGeneralJoin(b, a, nil, tau)
	if ab != ba {
		t.Errorf("cross join asymmetric: %d vs %d", ab, ba)
	}
}
