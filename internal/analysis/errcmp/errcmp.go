// Package errcmp forbids == and != comparisons against sentinel error
// variables in favor of errors.Is.
//
// Invariant encoded: every error this module surfaces is wrapped — persist
// wraps ErrCorrupt/ErrExists/ErrNotExist with context (`corrupt(...)`,
// fmt.Errorf("...: %w")), the public layer re-exports them as
// ErrCorruptStore/ErrNoStore/ErrStoreExists, and shardrpc wraps
// ErrProtocol/ErrUnavailable the same way. An identity comparison against
// a sentinel is therefore almost always a latent bug: it succeeds in the
// one unit test that returns the bare sentinel and silently fails on every
// production path that wraps it. errors.Is is the only comparison that
// respects the wrapping discipline the error-handling tests (options_test,
// persist_test) pin.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "forbid ==/!= against sentinel error variables; wrapped errors compare " +
		"false by identity, so use errors.Is (module-wide wrapping discipline)",
	Run: run,
}

// sentinelName matches the naming convention for sentinel errors: ErrFoo
// exported, errFoo unexported.
var sentinelName = regexp.MustCompile(`^[Ee]rr[A-Z]`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, operand := range [2]ast.Expr{be.X, be.Y} {
				if v := sentinelVar(pass, operand); v != nil {
					pass.Reportf(be.OpPos,
						"comparing against sentinel error %s with %s: wrapped errors never compare equal — use errors.Is(err, %s)",
						v.Name(), be.Op, v.Name())
					break // one report per comparison
				}
			}
			return true
		})
	}
	return nil
}

// sentinelVar reports whether e references a package-level error variable
// named like a sentinel, returning the variable.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !sentinelName.MatchString(v.Name()) {
		return nil
	}
	// Package-level: declared directly in its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface) && !types.Identical(v.Type(), errorInterface) {
		return nil
	}
	return v
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
