package errcmp_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, errcmp.Analyzer, "testdata", "a")
}
