// Package a is the errcmp fixture: identity comparisons against sentinel
// errors are flagged; errors.Is, nil checks, and non-sentinel comparisons
// are permitted.
package a

import (
	"errors"
	"fmt"
	"io"
)

// EOF identity is the io.Reader contract and EOF is not named like a
// sentinel; it stays out of scope.
func ReadAll(r io.Reader) error {
	var b [1]byte
	for {
		if _, err := r.Read(b[:]); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

var ErrCorrupt = errors.New("corrupt store")
var errInternal = errors.New("internal")

// NotASentinel is error-typed but not named like a sentinel.
var NotASentinel = errors.New("misc")

func open() error { return fmt.Errorf("wrap: %w", ErrCorrupt) }

func Flagged() {
	err := open()
	if err == ErrCorrupt { // want `comparing against sentinel error ErrCorrupt with ==: wrapped errors never compare equal`
		return
	}
	if err != errInternal { // want `comparing against sentinel error errInternal with !=`
		return
	}
	if ErrCorrupt == err { // want `use errors\.Is\(err, ErrCorrupt\)`
		return
	}
	switch {
	case err == ErrCorrupt: // want `comparing against sentinel error ErrCorrupt`
	}
}

func Permitted() {
	err := open()
	if errors.Is(err, ErrCorrupt) {
		return
	}
	if err == nil || err != nil {
		return
	}
	if err == NotASentinel { // not named like a sentinel: out of scope
		return
	}
	local := errors.New("local")
	if err == local { // not package-level: out of scope
		return
	}
}

func Suppressed() {
	err := open()
	if err == ErrCorrupt { //vsjlint:ignore errcmp exact identity intended here
		return
	}
}
