// Package analysis is a small, dependency-free analyzer framework modeled
// on golang.org/x/tools/go/analysis. It exists because this repository's
// costliest bugs have all been invariant violations the compiler cannot
// see — a legacy-SSE MOVQ inside an AVX2 kernel (7× AVX/SSE transition
// penalty, PR 7), a non-atomic estimator seed counter (PR 5 data race), a
// summed-version-vector cache advance that aliases across concurrent
// captures (PR 5) — and those rules belong in machine-checked analyzers,
// not commit messages. See DESIGN.md "Static analysis" and cmd/vsjlint.
//
// The API deliberately mirrors x/tools (Analyzer, Pass, Diagnostic, a
// testdata-driven golden harness in analysistest) so the analyzers can be
// ported onto the real framework wholesale if the module ever takes the
// golang.org/x/tools dependency; the build environment for this repo is
// offline, so the framework itself is implemented on the standard library
// alone: packages load through `go list -export` and type-check against gc
// export data (load.go), exactly as go vet's unitchecker does.
//
// Suppressions: a `//vsjlint:ignore <analyzer> <reason>` comment suppresses
// that analyzer's findings on the directive's line (trailing comment) or on
// the line directly below (standalone comment line). Every suppression is
// re-audited on each run — a directive whose target line no longer triggers
// the named analyzer is itself reported as stale, so escapes cannot outlive
// the code they excused (suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vsjlint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by `vsjlint -list`:
	// the invariant encoded and the historical bug that motivates it.
	Doc string

	// PkgFilter, if non-nil, restricts the analyzer to packages for which
	// it returns true (import path and package name). Analyzers encoding
	// package-local disciplines (decodebounds, fsyncdiscipline, lockorder
	// documentation lives in specific packages) use this to avoid noise.
	PkgFilter func(path, name string) bool

	// Run performs the analysis on one package and reports findings
	// through the Pass.
	Run func(*Pass) error
}

// A Pass carries one analyzed package to one analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset       *token.FileSet
	Files      []*ast.File // parsed source, with comments
	OtherFiles []string    // non-Go build inputs, notably .s assembly
	Pkg        *types.Package
	TypesInfo  *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at a position inside the package's Go source.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAtf(p.Fset.Position(pos), format, args...)
}

// ReportAtf reports a finding at an explicit file position; analyzers over
// non-Go files (vexmix over assembly) construct the position themselves.
func (p *Pass) ReportAtf(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// WithStack walks every node of every file in source order, supplying the
// path of ancestors (outermost first, ending at n's parent). Returning
// false prunes the subtree below n.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1] // pop after the children of a visited node
				return true
			}
			if !fn(n, stack) {
				return false // pruned: Inspect sends no nil for this node
			}
			stack = append(stack, n)
			return true
		})
	}
}
