// Package a is the lockorder fixture, shaped like the persist Store: a
// checkpoint mutex documented to precede the state mutex, correct paths
// permitted, direct and transitive inversions flagged, and the goroutine
// handoff (the real checkpointer design) permitted.
package a

import "sync"

type store struct {
	// ckptMu serializes checkpoint commits. Lock order: ckptMu before mu.
	ckptMu sync.Mutex
	mu     sync.Mutex

	state int
}

// checkpoint takes the documented order: permitted.
func (s *store) checkpoint() {
	s.ckptMu.Lock()
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.ckptMu.Unlock()
}

// inverted takes mu first and then ckptMu: flagged.
func (s *store) inverted() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckptMu.Lock() // want `acquires ckptMu while mu is held`
	defer s.ckptMu.Unlock()
	s.state++
}

// commitLocked acquires ckptMu; callers must not hold mu.
func (s *store) commitLocked() {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.state++
}

// invertedViaCall reaches the inversion through a call: flagged at the
// call site.
func (s *store) invertedViaCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitLocked() // want `calls commitLocked which acquires ckptMu while mu is held`
}

// publish holds mu but hands checkpointing to a goroutine, which starts on
// its own stack: permitted — this is the sanctioned escape.
func (s *store) publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	go s.commitLocked()
}

// sequential releases mu before taking ckptMu: permitted.
func (s *store) sequential() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.commitLocked()
}
