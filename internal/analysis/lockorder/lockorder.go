// Package lockorder enforces documented mutex acquisition orders.
//
// Invariant encoded: when a struct field's doc comment declares
// "Lock order: A before B" (the persist Store declares ckptMu before mu),
// no code path may acquire A while B is held — neither directly nor
// through a chain of same-package calls. PR 8's background checkpointer
// briefly had an inversion candidate: OnPublish holds mu when it signals
// the checkpointer, and the checkpointer takes ckptMu then mu; had the
// signal been a synchronous call instead of a goroutine handoff, the two
// paths would deadlock under contention. The analyzer reads the order from
// the doc (so the code stays the source of truth), builds a may-acquire
// summary per function via a call-graph fixpoint, and flags any
// wrong-order acquisition reachable with the second lock held.
//
// Goroutine launches (go f(...)) do not inherit the caller's held set and
// do not contribute to a caller's may-acquire summary: a goroutine starts
// on its own stack and the handoff is exactly the sanctioned way to escape
// the order (that is the checkpointer design). Function literals are
// likewise analyzed on their own with an empty held set.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "mutex pairs with a documented \"Lock order: A before B\" must never " +
		"be acquired in the inverse order on any synchronous call path",
	Run: run,
}

var orderRe = regexp.MustCompile(`(?i)lock order:\s*(\w+)\s+before\s+(\w+)`)

// rule records one documented order: first must be held before second is
// taken; equivalently, taking first while second is held is an inversion.
type rule struct {
	first, second string
	doc           string
}

func run(pass *analysis.Pass) error {
	rules := collectRules(pass)
	if len(rules) == 0 {
		return nil
	}
	ordered := map[string]bool{}
	for _, r := range rules {
		ordered[r.first] = true
		ordered[r.second] = true
	}

	// May-acquire fixpoint over the same-package call graph.
	funcs := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				funcs[obj] = fd
			}
		}
	}
	acquires := map[types.Object]map[string]bool{}
	callees := map[types.Object][]types.Object{}
	for obj, fd := range funcs {
		acq := map[string]bool{}
		syncWalk(fd.Body, func(n ast.Node) {
			if name, kind := mutexOp(pass, n, ordered); kind == opLock {
				acq[name] = true
			}
			if callee := calleeObj(pass, n); callee != nil {
				if _, same := funcs[callee]; same {
					callees[obj] = append(callees[obj], callee)
				}
			}
		})
		acquires[obj] = acq
	}
	for changed := true; changed; {
		changed = false
		for obj := range funcs {
			for _, c := range callees[obj] {
				for name := range acquires[c] {
					if !acquires[obj][name] {
						acquires[obj][name] = true
						changed = true
					}
				}
			}
		}
	}

	for _, fd := range funcs {
		checkBody(pass, fd.Body, rules, ordered, funcs, acquires)
	}
	return nil
}

// checkBody walks one synchronous body with a positional held-set scan,
// flagging inversions. Function literals restart with an empty held set.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, rules []rule, ordered map[string]bool, funcs map[types.Object]*ast.FuncDecl, acquires map[types.Object]map[string]bool) {
	held := map[string]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // new stack, empty held set, sanctioned escape
			case *ast.FuncLit:
				checkBody(pass, n.Body, rules, ordered, funcs, acquires)
				return false
			case *ast.DeferStmt:
				// defer mu.Unlock() keeps the lock held for the rest of the
				// body; a deferred Lock would be bizarre — ignore both for
				// the held set.
				return false
			case *ast.CallExpr:
				if name, kind := mutexOp(pass, n, ordered); name != "" {
					if kind == opLock {
						flagInversion(pass, n.Pos(), name, held, rules, "")
						held[name] = true
					} else {
						delete(held, name)
					}
					return true
				}
				if callee := calleeObj(pass, n); callee != nil {
					for name := range acquires[callee] {
						flagInversion(pass, n.Pos(), name, held, rules, callee.Name())
					}
				}
			}
			return true
		})
	}
	walk(body)
}

func flagInversion(pass *analysis.Pass, pos token.Pos, acquiring string, held map[string]bool, rules []rule, via string) {
	for _, r := range rules {
		if r.first == acquiring && held[r.second] {
			how := "acquires"
			if via != "" {
				how = "calls " + via + " which acquires"
			}
			pass.Reportf(pos,
				"%s %s while %s is held: documented lock order is %q — inverse acquisition can deadlock against the %s-first paths",
				how, acquiring, r.second, r.doc, r.first)
		}
	}
}

type opKind int

const (
	opNone opKind = iota
	opLock
	opUnlock
)

// mutexOp recognizes x.<field>.Lock()/RLock()/Unlock()/RUnlock() where
// <field> is one of the rule-relevant mutex fields, returning the field
// name and the operation.
func mutexOp(pass *analysis.Pass, n ast.Node, ordered map[string]bool) (string, opKind) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	// The receiver must name a rule-relevant field: st.ckptMu or ckptMu.
	var name string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return "", opNone
	}
	if !ordered[name] || !isMutex(pass.TypesInfo.TypeOf(sel.X)) {
		return "", opNone
	}
	return name, kind
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// calleeObj resolves a call to a same-package function or method object.
func calleeObj(pass *analysis.Pass, n ast.Node) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// syncWalk visits every node of a body except goroutine launches and
// function literals — the synchronous footprint used by the may-acquire
// summary.
func syncWalk(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// collectRules scans struct field doc and line comments for the order
// directive.
func collectRules(pass *analysis.Pass) []rule {
	var rules []rule
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := orderRe.FindStringSubmatch(cg.Text()); m != nil {
						rules = append(rules, rule{
							first:  m[1],
							second: m[2],
							doc:    m[1] + " before " + m[2],
						})
					}
				}
			}
			return true
		})
	}
	return rules
}
