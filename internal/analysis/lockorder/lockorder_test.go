package lockorder_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata", "a")
}
