// Package fsyncdiscipline keeps the durability layer on the injectable
// filesystem.
//
// Invariant encoded: every file operation in internal/lsh/persist routes
// through faultfs.FS, never the os package directly. The crash-consistency
// property sweeps (faultfs crash/err/short-write/enospc/sync-err/bit-flip
// plans firing at every N-th mutating operation) can only exercise what
// they can intercept — a direct os.Rename in a persist path is invisible to
// MemFS, so its failure modes silently fall out of fault-injection
// coverage. PR 6's shadowed-error MANIFEST rename was caught precisely
// because the rename went through the injectable FS; this analyzer makes
// sure the next file op does too.
package fsyncdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fsyncdiscipline",
	Doc: "file operations in the persist layer must route through faultfs.FS, " +
		"not os.*, so fault-injection coverage cannot silently erode",
	PkgFilter: func(path, name string) bool {
		return strings.HasSuffix(path, "internal/lsh/persist") || name == "persist"
	},
	Run: run,
}

// mutating lists the os functions whose direct use breaks the injection
// discipline: everything that creates, alters or removes filesystem state,
// plus the read side the FS interface covers (a direct read bypasses MemFS
// state, so fault tests would read the host disk instead of the model).
var mutating = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true, "WriteFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "Truncate": true, "Link": true,
	"Symlink": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Open": true, "ReadFile": true, "ReadDir": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !mutating[sel.Sel.Name] {
				return true
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s in the persist layer bypasses faultfs.FS: the crash property sweep cannot inject faults into it — route through the store's fs",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
