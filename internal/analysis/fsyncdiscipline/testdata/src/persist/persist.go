// Package persist is the fsyncdiscipline fixture: it mimics the real
// durability layer's shape. Direct os file operations are flagged; the
// injectable-FS path and non-filesystem os calls are permitted.
package persist

import (
	"os"
	"path/filepath"
)

// FS mirrors faultfs.FS: the injectable surface the crash sweep drives.
type FS interface {
	Create(name string) (interface{ Sync() error }, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
}

type store struct {
	fs  FS
	dir string
}

func (st *store) flaggedWrite(name string, data []byte) error {
	tmp := filepath.Join(st.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil { // want `direct os\.WriteFile in the persist layer bypasses faultfs\.FS`
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, name)); err != nil { // want `direct os\.Rename`
		return err
	}
	os.Remove(tmp)             // want `direct os\.Remove`
	f, err := os.Create(tmp)   // want `direct os\.Create`
	_, _ = os.ReadFile(tmp)    // want `direct os\.ReadFile`
	_ = os.MkdirAll(st.dir, 0) // want `direct os\.MkdirAll`
	if err != nil {
		return err
	}
	_ = f
	return nil
}

func (st *store) permittedWrite(name string, data []byte) error {
	f, err := st.fs.Create(filepath.Join(st.dir, name))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := st.fs.Rename(name+".tmp", name); err != nil {
		return err
	}
	// Non-filesystem os calls stay in scope of the os package proper.
	_ = os.Getenv("HOME")
	_ = os.Getpid()
	return st.fs.Remove(name + ".tmp")
}
