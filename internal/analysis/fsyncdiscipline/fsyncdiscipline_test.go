package fsyncdiscipline_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/fsyncdiscipline"
)

func TestFsyncDiscipline(t *testing.T) {
	analysistest.Run(t, fsyncdiscipline.Analyzer, "testdata", "persist")
}
