// Package persist is the decodebounds fixture, shaped like the real
// persist/shardrpc decoders: a cursor with a rem() idiom, record scanners
// over an input []byte, and the flagged variants that skip their guards.
package persist

import "encoding/binary"

type cursor struct {
	data []byte
	off  int
}

func (c *cursor) rem() int { return len(c.data) - c.off }

// bytes is the guarded cursor read: permitted.
func (c *cursor) bytes(n int) []byte {
	if n < 0 || c.rem() < n {
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

// bytesUnguarded skips the rem() check: flagged.
func (c *cursor) bytesUnguarded(n int) []byte {
	b := c.data[c.off : c.off+n] // want `index of input buffer c\.data without a preceding length guard`
	c.off += n
	return b
}

// scan mimics scanWAL: every bounded access is dominated by a len() check.
func scan(data []byte) (uint32, []byte) {
	if len(data) < 8 {
		return 0, nil
	}
	hdr := data[:8]
	plen := binary.LittleEndian.Uint32(hdr[:4])
	end := 8 + int(plen)
	if end > len(data) {
		return 0, nil
	}
	payload := data[8:end]
	_ = data[4:] // low-only subslice: exempt even without its own guard
	return plen, payload
}

// scanUnguarded reads the header before checking anything: flagged.
func scanUnguarded(data []byte) (byte, []byte) {
	kind := data[0]       // want `index of input buffer data without a preceding length guard`
	payload := data[1:DL] // want `index of input buffer data without a preceding length guard`
	return kind, payload
}

// DL is an arbitrary bound for the fixture.
const DL = 16

// decodeLocal builds its own buffer; locally constructed storage with
// computed size is exempt.
func decodeLocal(n int) []byte {
	body := make([]byte, n+4)
	copy(body, "head")
	return body[:n] // permitted: locally sized
}

// rangeGuarded indexes under a range over the same buffer: permitted.
func rangeGuarded(data []byte) (sum byte) {
	for i := range data {
		sum += data[i]
	}
	return sum
}
