// Package decodebounds audits the byte-level decoders of the persistence
// and wire-protocol layers.
//
// Invariant encoded: in internal/lsh/persist and internal/shardrpc, every
// index or bounded subslice of an *input* byte buffer (a parameter or a
// struct field like cursor.data / preader.data) must be dominated by a
// length guard — a comparison involving len(buf) or a bounds-carrying
// method like rem() — so corrupted or hostile bytes can never panic a
// decoder. This is the discipline the snapshot/WAL/frame fuzz targets
// (FuzzSnapshotDecode, FuzzFrameDecode) verify dynamically; the analyzer
// pins it structurally, so a new decoder without its guard fails CI even
// before a fuzzer finds the panic.
//
// Approximation, stated honestly: the guard check is positional (a guard on
// the same buffer earlier in the function body, or in an enclosing
// condition), not a real dominance analysis. Locally constructed buffers
// (make/append/composite literals) are exempt — the bug class is trusting
// input-controlled lengths, not sizing arithmetic on buffers the function
// itself allocated. Low-only subslices (buf[i:]) are exempt too: they
// cannot read a single byte out of bounds, and the index arithmetic that
// could make them panic is exactly what the cursor invariants (off ≤ len)
// already maintain.
package decodebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "decodebounds",
	Doc: "persist/shardrpc decoders must length-guard every index or bounded " +
		"subslice of an input byte buffer before touching it",
	PkgFilter: func(path, name string) bool {
		return strings.HasSuffix(path, "internal/lsh/persist") ||
			strings.HasSuffix(path, "internal/shardrpc") ||
			name == "persist" || name == "shardrpc"
	},
	Run: run,
}

// guardMethod matches receiver methods that carry bounds information, like
// the cursor/preader rem() idiom.
var guardMethod = regexp.MustCompile(`(?i)^(rem|len|remaining|avail|size)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	guards := map[*types.Var][]token.Pos{} // root object → guard positions
	safeLocals := map[*types.Var]bool{}    // locally constructed buffers

	// First pass: collect guards and locally constructed buffers.
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				for _, r := range guardRoots(pass, n) {
					guards[r] = append(guards[r], n.Pos())
				}
			}
		case *ast.RangeStmt:
			if r := rootObj(pass, n.X); r != nil {
				guards[r] = append(guards[r], n.Pos())
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					if v, ok = pass.TypesInfo.Uses[id].(*types.Var); !ok {
						continue
					}
				}
				if isFreshBuffer(n.Rhs[i]) {
					safeLocals[v] = true
				} else if _, ok := ast.Unparen(n.Rhs[i]).(*ast.SliceExpr); ok {
					// A local defined by a subslice was bounds-established
					// by that subslice expression (itself checked as a
					// candidate); treat the definition as its guard.
					guards[v] = append(guards[v], n.Pos())
				}
			}
		}
		return true
	})

	// Second pass: flag unguarded candidates.
	ast.Inspect(fd, func(n ast.Node) bool {
		var base ast.Expr
		var pos token.Pos
		switch n := n.(type) {
		case *ast.IndexExpr:
			base, pos = n.X, n.Lbrack
		case *ast.SliceExpr:
			if n.High == nil && n.Max == nil {
				return true // low-only subslice: cannot read out of bounds
			}
			base, pos = n.X, n.Lbrack
		default:
			return true
		}
		if !isByteSlice(pass.TypesInfo.TypeOf(base)) {
			return true
		}
		root := rootObj(pass, base)
		if root == nil {
			return true
		}
		if _, ok := ast.Unparen(base).(*ast.Ident); ok && safeLocals[root] {
			return true
		}
		if !isInputBuffer(pass, base) {
			return true
		}
		for _, g := range guards[root] {
			if g < pos {
				return true
			}
		}
		pass.Reportf(pos,
			"index of input buffer %s without a preceding length guard: corrupted bytes could panic this decoder — check len()/rem() first",
			exprString(base))
		return true
	})
}

// guardRoots returns the root objects whose length the comparison checks:
// operands containing len(e) or a bounds-method call like e.rem().
func guardRoots(pass *analysis.Pass, cmp *ast.BinaryExpr) []*types.Var {
	var out []*types.Var
	for _, side := range [2]ast.Expr{cmp.X, cmp.Y} {
		ast.Inspect(side, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "len" && len(call.Args) == 1 {
					if r := rootObj(pass, call.Args[0]); r != nil {
						out = append(out, r)
					}
				}
			case *ast.SelectorExpr:
				if guardMethod.MatchString(fun.Sel.Name) {
					if r := rootObj(pass, fun.X); r != nil {
						out = append(out, r)
					}
				}
			}
			return true
		})
	}
	return out
}

// isInputBuffer reports whether e is a buffer the function received rather
// than built: a plain identifier (parameter or derived local — derived
// locals share the input's bytes) or a struct-field selector.
func isInputBuffer(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := pass.TypesInfo.Uses[e].(*types.Var)
		return ok
	case *ast.SelectorExpr:
		v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		return ok && v.IsField()
	}
	return false
}

// isFreshBuffer reports whether the expression allocates its own storage
// with locally computed size: make, append, literals, string conversion.
func isFreshBuffer(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "make" || fun.Name == "append"
		case *ast.ArrayType:
			return true // []byte(s) conversion copies
		}
	case *ast.CompositeLit:
		return true
	}
	return false
}

// rootObj returns the leftmost identifier's object: data → data, c.data →
// c, c.rem() → c.
func rootObj(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "buffer"
}
