package decodebounds_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/decodebounds"
)

func TestDecodeBounds(t *testing.T) {
	analysistest.Run(t, decodebounds.Analyzer, "testdata", "persist")
}
