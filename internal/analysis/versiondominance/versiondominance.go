// Package versiondominance forbids comparing version vectors by their sums.
//
// Invariant encoded: a shard group's state is a version VECTOR (one counter
// per shard), and "newer" is componentwise dominance, not a larger total.
// PR 5's exact-joiner cache advanced whenever sum(next) > sum(prev) — but
// sums alias across concurrent captures ((4,2) and (3,3) both sum to 6), so
// a cache built at (4,2) could masquerade as (3,3) and serve answers from a
// different shard interleaving. The fix deleted sumVersions and compares
// through versionsAdvance / versionPairAdvances. This analyzer keeps it
// deleted: folding a version vector into a scalar with += and then
// comparing (or returning) that scalar is flagged everywhere except inside
// the whitelisted dominance helpers.
package versiondominance

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "versiondominance",
	Doc: "version vectors compare by componentwise dominance, never by arithmetic " +
		"folds: sums alias across concurrent captures (PR 5 exact-joiner cache bug)",
	Run: run,
}

// whitelist names the componentwise helpers allowed to reduce version
// vectors (they compare element by element; listed for the ISSUE record —
// none of them actually folds).
var whitelist = map[string]bool{
	"versionsAdvance":     true,
	"versionPairAdvances": true,
	"versionsGE":          true,
}

// versionName matches identifiers that carry version vectors.
var versionName = regexp.MustCompile(`(?i)ver(s|sion)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || whitelist[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// rangeVars maps a range value variable to the version vector it walks:
	// for _, v := range versions { ... }.
	rangeVars := map[*types.Var]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Value == nil || !isVersionVector(pass, rs.X) {
			return true
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				rangeVars[v] = true
			}
		}
		return true
	})

	// folds maps accumulator variables to the position of the fold that
	// filled them from a version vector.
	folds := map[*types.Var]token.Pos{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		acc := objOf(pass, id)
		if acc == nil {
			return true
		}
		rhs := as.Rhs[0]
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			// s = s + vers[i] — only additive self-assignments count.
			be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
			if !ok || be.Op != token.ADD {
				return true
			}
			if !mentionsObj(pass, be.X, acc) && !mentionsObj(pass, be.Y, acc) {
				return true
			}
			rhs = be.Y
			if mentionsObj(pass, be.Y, acc) {
				rhs = be.X
			}
		} else if as.Tok != token.ADD_ASSIGN {
			return true
		}
		if foldsVersionElement(pass, rhs, rangeVars) {
			folds[acc] = as.Pos()
		}
		return true
	})
	if len(folds) == 0 {
		return
	}

	// Any comparison or return of a folded accumulator loses dominance.
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				for acc := range folds {
					if mentionsObj(pass, n.X, acc) || mentionsObj(pass, n.Y, acc) {
						pass.Reportf(n.OpPos,
							"comparing summed version vector %s: sums alias across concurrent captures ((4,2) vs (3,3)) — compare componentwise via versionsAdvance/versionPairAdvances",
							acc.Name())
						return true
					}
				}
			}
		case *ast.ReturnStmt:
			// Only a bare accumulator counts here; comparisons inside the
			// return expression are caught by the BinaryExpr case above.
			for _, res := range n.Results {
				id, ok := ast.Unparen(res).(*ast.Ident)
				if !ok {
					continue
				}
				acc := objOf(pass, id)
				if _, folded := folds[acc]; folded {
					pass.Reportf(n.Return,
						"returning summed version vector %s: the sum discards componentwise ordering — expose the vector and compare via versionsAdvance",
						acc.Name())
					return true
				}
			}
		}
		return true
	})
}

// foldsVersionElement reports whether e reads one element of a version
// vector: vers[i], or a range value variable over one.
func foldsVersionElement(pass *analysis.Pass, e ast.Expr, rangeVars map[*types.Var]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return isVersionVector(pass, e.X)
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		return ok && rangeVars[v]
	}
	return false
}

// isVersionVector reports whether e is an integer slice whose name says
// "version": vers, versions, shardVersions, c.joinerVers, ShardVersions().
func isVersionVector(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	return versionName.MatchString(nameOf(e))
}

// nameOf extracts the human name of an expression's rightmost component.
func nameOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return nameOf(e.Fun)
	case *ast.IndexExpr:
		return nameOf(e.X)
	}
	return ""
}

// objOf resolves an identifier wherever it is defined or used.
func objOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// mentionsObj reports whether the expression references the variable.
func mentionsObj(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(pass, id) == v {
			found = true
		}
		return !found
	})
	return found
}
