package versiondominance_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/versiondominance"
)

func TestVersionDominance(t *testing.T) {
	analysistest.Run(t, versiondominance.Analyzer, "testdata", "a")
}
