// Package a is the versiondominance fixture: the PR 5 exact-joiner cache
// shape (summed version vectors compared for advancement) flagged, the
// componentwise dominance helpers permitted.
package a

// badCacheValid reproduces the PR 5 bug: deciding cache freshness by
// comparing sums of two version-vector captures. (4,2) and (3,3) both sum
// to 6, so a stale cache can masquerade as fresh.
func badCacheValid(prevVers, nextVers []uint64) bool {
	var prevSum, nextSum uint64
	for _, v := range prevVers {
		prevSum += v
	}
	for i := range nextVers {
		nextSum += nextVers[i]
	}
	return nextSum > prevSum // want `comparing summed version vector`
}

// badTotal leaks the fold out of the function, where callers will compare
// it: flagged at the return.
func badTotal(shardVersions []uint64) uint64 {
	total := uint64(0)
	for _, v := range shardVersions {
		total = total + v
	}
	return total // want `returning summed version vector`
}

// versionsAdvance is the whitelisted componentwise helper: permitted even
// though it compares version elements.
func versionsAdvance(prev, next []uint64) bool {
	if len(prev) != len(next) {
		return false
	}
	advanced := false
	for i := range prev {
		if next[i] < prev[i] {
			return false
		}
		if next[i] > prev[i] {
			advanced = true
		}
	}
	return advanced
}

// goodUse compares through the helper: permitted.
func goodUse(prev, next []uint64) bool {
	return versionsAdvance(prev, next)
}

// countRows sums a non-version slice: permitted, the invariant only covers
// version vectors.
func countRows(rowCounts []uint64) uint64 {
	var n uint64
	for _, c := range rowCounts {
		n += c
	}
	return n
}

// suppressedSum carries an explicit suppression with a reason: permitted.
func suppressedSum(vers []uint64) uint64 {
	var s uint64
	for _, v := range vers {
		s += v
	}
	//vsjlint:ignore versiondominance metrics-only total, never compared for dominance
	return s
}
