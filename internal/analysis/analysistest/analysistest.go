// Package analysistest is a golden-file harness for the analyzers in
// internal/analysis, modeled on golang.org/x/tools/go/analysis/analysistest.
// A fixture is a package under <testdata>/src/<path>; expectations are
// `// want "regexp"` comments on the offending line, in Go and assembly
// files alike. Every reported diagnostic must match a want expectation on
// its exact line, and every expectation must be matched by a diagnostic —
// so each suite pins both the flagged and the permitted shapes.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"lshjoin/internal/analysis"
)

// Run loads the fixture package at dir/src/<path>, runs the analyzer plus
// the suppression audit over it, and compares the diagnostics against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, path string) {
	t.Helper()
	pkg, err := load(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, append(pkg.GoFiles, pkg.OtherFiles...), diags)
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// checkWants cross-checks diagnostics against `// want "rx"` expectations.
func checkWants(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	type expect struct {
		file string
		line int
		rx   *regexp.Regexp
		hit  bool
	}
	var expects []*expect
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, q := range splitQuoted(m[1]) {
				rx, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", f, i+1, q, err)
				}
				expects = append(expects, &expect{file: f, line: i + 1, rx: rx})
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == d.Position.Filename && e.line == d.Position.Line && e.rx.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.rx)
		}
	}
}

// splitQuoted extracts the quoted segments of a want clause — double- or
// backtick-quoted, in any mix. Escapes inside are passed through to the
// regexp compiler untouched, so fixtures can use \[ etc.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		q := s[i]
		s = s[i+1:]
		j := strings.IndexByte(s, q)
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}

// load parses and type-checks the fixture package rooted at dir/src/path.
// Imports resolve against sibling fixture packages first (dir/src/<import>),
// then against the real build's gc export data via `go list -export`, so
// fixtures can use the standard library exactly as production code does.
func load(dir, path string) (*analysis.Package, error) {
	ld := &fixtureLoader{
		fset:    token.NewFileSet(),
		srcRoot: filepath.Join(dir, "src"),
		pkgs:    make(map[string]*fixturePkg),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", gcExportLookup).(types.ImporterFrom)
	fp, err := ld.importPath(path)
	if err != nil {
		return nil, err
	}
	return fp.pkg, nil
}

type fixturePkg struct {
	pkg *analysis.Package
	err error
}

type fixtureLoader struct {
	fset    *token.FileSet
	srcRoot string
	gc      types.ImporterFrom
	pkgs    map[string]*fixturePkg
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.srcRoot, path)) {
		fp, err := ld.importPath(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg.Types, nil
	}
	return ld.gc.ImportFrom(path, ld.srcRoot, 0)
}

func (ld *fixtureLoader) importPath(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, fp.err
	}
	fp := &fixturePkg{}
	ld.pkgs[path] = fp
	fp.pkg, fp.err = ld.check(path)
	return fp, fp.err
}

func (ld *fixtureLoader) check(path string) (*analysis.Package, error) {
	pkgDir := filepath.Join(ld.srcRoot, path)
	ents, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %v", err)
	}
	var goFiles, sFiles []string
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_test.go"):
		case strings.HasSuffix(name, ".go"):
			goFiles = append(goFiles, filepath.Join(pkgDir, name))
		case strings.HasSuffix(name, ".s"):
			sFiles = append(sFiles, filepath.Join(pkgDir, name))
		}
	}
	files, err := analysis.ParseFiles(ld.fset, goFiles)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := analysis.TypeCheck(ld.fset, path, files, ld)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %w", path, err)
	}
	return &analysis.Package{
		Path:       path,
		Name:       tpkg.Name(),
		Dir:        pkgDir,
		Fset:       ld.fset,
		Files:      files,
		GoFiles:    goFiles,
		OtherFiles: sFiles,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// gcExportLookup resolves an import path to its gc export data by asking
// the go command, caching process-wide: fixture suites import the same few
// standard-library packages over and over.
var (
	gcMu    sync.Mutex
	gcCache = make(map[string]string)
)

func gcExportLookup(path string) (io.ReadCloser, error) {
	gcMu.Lock()
	exp, ok := gcCache[path]
	gcMu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("analysistest: go list -export %s: %v", path, err)
		}
		exp = strings.TrimSpace(string(out))
		if exp == "" {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		gcMu.Lock()
		gcCache[path] = exp
		gcMu.Unlock()
	}
	return os.Open(exp)
}
