package analysis

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strings"
)

// SuppressName is the pseudo-analyzer that audits //vsjlint:ignore
// directives themselves: malformed directives, unknown analyzer names, and
// stale suppressions (the target line no longer triggers the named
// analyzer) are all reported under it, so escapes stay visible exactly as
// long as they are needed and not one commit longer.
const SuppressName = "suppress"

// A directive is one parsed //vsjlint:ignore comment.
type directive struct {
	pos      token.Position // of the directive itself
	line     int            // line whose findings it suppresses
	analyzer string
	reason   string
	used     bool
}

// directivePrefix is spelled in two halves so the scanner's own string
// literals never form a directive when vsjlint runs over this package.
const directivePrefix = "//" + "vsjlint:ignore"

var directiveArgsRe = regexp.MustCompile(`^(?:\s+(\S+))?(?:\s+(\S.*))?$`)

// scanDirectives extracts suppression directives from one file's text. A
// trailing directive (code before the comment) suppresses its own line; a
// standalone directive line suppresses the line directly below it. The
// textual scan deliberately covers non-Go files too, so assembly findings
// (vexmix) are suppressable with the same syntax.
func scanDirectives(path string, diags *[]Diagnostic) []directive {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // unreadable files simply have no directives
	}
	var out []directive
	for i, lineText := range strings.Split(string(data), "\n") {
		// Only a line's first comment can be a directive: prose that merely
		// mentions //vsjlint:ignore inside another comment (docs, examples)
		// is not one.
		idx := strings.Index(lineText, "//")
		if idx < 0 || !strings.HasPrefix(lineText[idx:], directivePrefix) {
			continue
		}
		lineno := i + 1
		pos := token.Position{Filename: path, Line: lineno, Column: idx + 1}
		m := directiveArgsRe.FindStringSubmatch(lineText[idx+len(directivePrefix):])
		if m == nil || m[1] == "" || m[2] == "" {
			*diags = append(*diags, Diagnostic{
				Analyzer: SuppressName,
				Position: pos,
				Message:  "malformed directive: want " + directivePrefix + " <analyzer> <reason>",
			})
			continue
		}
		target := lineno
		if strings.TrimSpace(lineText[:idx]) == "" {
			target = lineno + 1 // standalone comment line: suppress the next line
		}
		out = append(out, directive{pos: pos, line: target, analyzer: m[1], reason: m[2]})
	}
	return out
}

// applySuppressions filters diags through the directives found in files,
// returning the surviving diagnostics plus the audit findings: unknown
// analyzer names and stale directives. known maps valid analyzer names.
func applySuppressions(files []string, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var audit []Diagnostic
	var dirs []directive
	for _, f := range files {
		dirs = append(dirs, scanDirectives(f, &audit)...)
	}
	for i := range dirs {
		if !known[dirs[i].analyzer] {
			audit = append(audit, Diagnostic{
				Analyzer: SuppressName,
				Position: dirs[i].pos,
				Message:  fmt.Sprintf("directive names unknown analyzer %q", dirs[i].analyzer),
			})
			dirs[i].used = true // don't double-report it as stale
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for i := range dirs {
			if dirs[i].analyzer == d.Analyzer &&
				dirs[i].pos.Filename == d.Position.Filename &&
				dirs[i].line == d.Position.Line {
				dirs[i].used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			audit = append(audit, Diagnostic{
				Analyzer: SuppressName,
				Position: dir.pos,
				Message: fmt.Sprintf("stale suppression: line %d no longer triggers %s — delete the directive",
					dir.line, dir.analyzer),
			})
		}
	}
	return append(kept, audit...)
}
