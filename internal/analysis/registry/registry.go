// Package registry enumerates the vsjlint analyzer suite. cmd/vsjlint and
// the self-test both draw from here, so a new analyzer becomes active
// everywhere by being added to one slice.
package registry

import (
	"lshjoin/internal/analysis"
	"lshjoin/internal/analysis/decodebounds"
	"lshjoin/internal/analysis/errcmp"
	"lshjoin/internal/analysis/fsyncdiscipline"
	"lshjoin/internal/analysis/lockorder"
	"lshjoin/internal/analysis/seedstream"
	"lshjoin/internal/analysis/versiondominance"
	"lshjoin/internal/analysis/vexmix"
)

// All returns the full vsjlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		decodebounds.Analyzer,
		errcmp.Analyzer,
		fsyncdiscipline.Analyzer,
		lockorder.Analyzer,
		seedstream.Analyzer,
		versiondominance.Analyzer,
		vexmix.Analyzer,
	}
}
