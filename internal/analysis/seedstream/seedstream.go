// Package seedstream guards the estimator seed-stream discipline.
//
// Invariant encoded: every public collection (Collection, ShardedCollection,
// CrossJoin, RemoteCollection) derives per-estimate RNG streams from an
// atomically incremented seed counter — xrand.Mix2(seed^salt, seedCtr.Add(1))
// — so concurrent Estimate calls draw disjoint, reproducible streams.
// PR 5 shipped exactly this bug: CrossJoin.seedCtr was a plain uint64
// incremented with seedCtr++, a data race under concurrent estimates that
// -race only catches when a test actually races two estimators. The rule is
// structural instead: (1) a struct field named like a seed counter must be a
// sync/atomic type, and (2) any field whose doc comment promises atomic
// access must only be read or written through sync/atomic calls.
package seedstream

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedstream",
	Doc: "estimator seed counters must be sync/atomic values, and fields documented " +
		"as atomic must never be accessed outside sync/atomic ops (PR 5 seedCtr race)",
	Run: run,
}

// seedCounterName matches fields that hold the estimator seed stream
// position: seedCtr, seedCounter, estSeedCtr, ...
var seedCounterName = regexp.MustCompile(`(?i)seed_?(ctr|cnt|counter)`)

// atomicDoc matches field docs that promise atomic access.
var atomicDoc = regexp.MustCompile(`(?i)\batomic(ally)?\b`)

func run(pass *analysis.Pass) error {
	// plainAtomicFields collects fields documented as atomic whose type is
	// NOT a sync/atomic value — every use of those must go through a
	// sync/atomic call with an &field argument.
	plainAtomicFields := make(map[*types.Var]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				doc := fieldDoc(field)
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					isSeedCtr := seedCounterName.MatchString(name.Name) ||
						strings.Contains(strings.ToLower(doc), "seed counter") ||
						strings.Contains(strings.ToLower(doc), "seed stream")
					switch {
					case isSeedCtr && isNumeric(v.Type()):
						pass.Reportf(name.Pos(),
							"seed counter %s is a plain %s: concurrent estimates race on it — make it atomic.Uint64 (PR 5 seedCtr race)",
							name.Name, v.Type())
					case atomicDoc.MatchString(doc) && !isAtomicType(v.Type()) && isNumeric(v.Type()):
						plainAtomicFields[v] = true
					}
				}
			}
			return true
		})
	}

	if len(plainAtomicFields) == 0 {
		return nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !plainAtomicFields[v] {
			return true
		}
		if isAtomicArg(pass, stack) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is documented as accessed atomically but this use is not a sync/atomic operation",
			v.Name())
		return true
	})
	return nil
}

// fieldDoc joins a struct field's doc and trailing line comments.
func fieldDoc(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// isAtomicArg reports whether the innermost ancestors form &x.f passed to a
// sync/atomic function call (atomic.AddUint64(&x.f, 1) and friends).
func isAtomicArg(pass *analysis.Pass, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	unary, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	callee, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[callee.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicType reports whether t is one of sync/atomic's value types.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isNumeric reports whether t is a plain integer type.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
