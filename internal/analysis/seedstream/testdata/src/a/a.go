// Package a is the seedstream fixture. The flagged shapes reproduce the
// PR 5 CrossJoin race: a plain-integer seed counter, and non-atomic access
// to a field whose doc promises atomicity.
package a

import "sync/atomic"

// badJoin is the PR 5 race shape: the seed counter is a plain uint64 and
// estimate() increments it without synchronization.
type badJoin struct {
	seed    uint64
	seedCtr uint64 // want `seed counter seedCtr is a plain uint64: concurrent estimates race on it`
}

func (b *badJoin) estimate() uint64 {
	b.seedCtr++
	return b.seed ^ b.seedCtr
}

// docCounter's field is documented atomic but typed plain; the mixed
// accesses below must each be flagged.
type docCounter struct {
	// hits is incremented atomically by every reader.
	hits uint64
}

func (d *docCounter) touch() {
	atomic.AddUint64(&d.hits, 1)   // permitted: sync/atomic op
	d.hits++                       // want `documented as accessed atomically but this use is not`
	_ = d.hits                     // want `documented as accessed atomically but this use is not`
	_ = atomic.LoadUint64(&d.hits) // permitted
	atomic.CompareAndSwapUint64(&d.hits, 0, 1)
}

// goodJoin is the fixed shape: an atomic.Uint64 counter used through its
// methods, plus a plain seed value that is configuration, not a counter.
type goodJoin struct {
	seed    uint64
	seedCtr atomic.Uint64
}

func (g *goodJoin) estimate() uint64 {
	return g.seed ^ g.seedCtr.Add(1)
}

// counter is numeric and named close to — but not matching — the seed
// pattern, and carries no atomic doc: out of scope.
type counter struct {
	seeds int
	ctr   int
}

func (c *counter) bump() { c.ctr++; c.seeds = c.ctr }
