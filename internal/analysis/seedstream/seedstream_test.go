package seedstream_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/seedstream"
)

func TestSeedstream(t *testing.T) {
	analysistest.Run(t, seedstream.Analyzer, "testdata", "a")
}
