package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Run executes every applicable analyzer over every package, applies
// //vsjlint:ignore suppressions, audits the suppressions themselves, and
// returns the surviving diagnostics in deterministic position order.
// Packages are analyzed concurrently; analyzers within a package run
// sequentially and must not retain the Pass after returning.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i], errs[i] = runPackage(pkg, analyzers, known)
		}(i, pkg)
	}
	wg.Wait()
	var all []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		all = append(all, perPkg[i]...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.PkgFilter != nil && !a.PkgFilter(pkg.Path, pkg.Name) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			OtherFiles: pkg.OtherFiles,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	files := append(append([]string{}, pkg.GoFiles...), pkg.OtherFiles...)
	return applySuppressions(files, diags, known), nil
}
