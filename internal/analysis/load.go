package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path       string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	GoFiles    []string // absolute paths, build-constrained, tests excluded
	OtherFiles []string // absolute paths of .s files in the build
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	SFiles     []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command (run in dir) and returns the
// matched packages parsed and type-checked. Dependencies — including the
// standard library — are imported from gc export data produced by
// `go list -export`, so loading works fully offline; only the target
// packages themselves are parsed from source. Test files are not loaded:
// the analyzers encode production invariants, and test code legitimately
// breaks several of them (single-goroutine seed-counter replicas, exact
// sentinel identity checks).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,SFiles,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exportFor := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFor[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && lp.Name != "" {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, lp := range targets {
		wg.Add(1)
		go func(i int, lp *listedPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = checkPackage(fset, lp, exportFor)
		}(i, lp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package against the export
// data of its dependencies.
func checkPackage(fset *token.FileSet, lp *listedPackage, exportFor map[string]string) (*Package, error) {
	abs := func(names []string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = filepath.Join(lp.Dir, n)
		}
		return out
	}
	goFiles := abs(lp.GoFiles)
	files, err := ParseFiles(fset, goFiles)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	}
	tpkg, info, err := TypeCheck(fset, lp.ImportPath, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:       lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		GoFiles:    goFiles,
		OtherFiles: abs(lp.SFiles),
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// ParseFiles parses source files with comments retained.
func ParseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	files := make([]*ast.File, len(paths))
	for i, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files[i] = f
	}
	return files, nil
}

// TypeCheck runs the type checker over parsed files with a fully populated
// types.Info, resolving imports through imp.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// ModuleRoot returns the root directory of the module containing dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
