// Package persist is the intentionally-violating self-test fixture for
// the persist-scoped analyzers: a direct os.* mutation (fsyncdiscipline)
// and an unguarded decode (decodebounds). CI asserts vsjlint flags both.
package persist

import "os"

// spill bypasses the injectable faultfs.FS: fsyncdiscipline must flag it.
func spill(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeHeader indexes its input with no length guard: decodebounds must
// flag both accesses.
func decodeHeader(data []byte) (byte, []byte) {
	kind := data[0]
	return kind, data[1:9]
}
