// Package mix is the intentionally-violating self-test fixture: it must
// compile cleanly and trip seedstream, errcmp, versiondominance, lockorder,
// and the stale-suppression audit. CI proves vsjlint still catches every
// class by asserting a nonzero exit and the expected analyzer names when
// run over this package. Keep the violations exactly as shaped — each one
// is a distilled regression from a past PR.
package mix

import (
	"errors"
	"sync"
)

// errProbe is a sentinel; comparing it by identity is the errcmp violation.
var errProbe = errors.New("probe")

// IsProbe compares a sentinel with ==: errcmp must flag this.
func IsProbe(err error) bool {
	return err == errProbe
}

// estimator reproduces the PR 5 race shape: a plain seed counter shared by
// concurrent estimates. seedstream must flag the field.
type estimator struct {
	seedCtr uint64
}

func (e *estimator) next() uint64 {
	e.seedCtr++
	return e.seedCtr
}

// advanced reproduces the PR 5 aliasing bug: comparing summed version
// vectors. versiondominance must flag the comparison.
func advanced(prevVers, nextVers []uint64) bool {
	var ps, ns uint64
	for _, v := range prevVers {
		ps += v
	}
	for _, v := range nextVers {
		ns += v
	}
	return ns > ps
}

// pair documents the persist Store order and then inverts it. lockorder
// must flag the inverted acquisition.
type pair struct {
	// ckptMu serializes commits. Lock order: ckptMu before mu.
	ckptMu sync.Mutex
	mu     sync.Mutex
	n      int
}

func (p *pair) inverted() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	p.n++
}

// staleWaiver suppresses an analyzer that has nothing to say about its
// line: the suppress audit must flag the directive as stale.
func staleWaiver() int {
	//vsjlint:ignore errcmp fixture: stale by construction
	return 1
}
