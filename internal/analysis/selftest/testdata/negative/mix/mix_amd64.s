#include "textflag.h"

// penalty is the PR 7 regression: a legacy-SSE MOVQ into X1 between VEX
// instructions, paying the AVX-SSE transition penalty on every call.
TEXT ·penalty(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	VPXOR Y0, Y0, Y0
	VMOVDQU (SI), Y1
	MOVQ AX, X1
	VPADDQ Y1, Y0, Y0
	VMOVQ X0, AX
	VZEROUPPER
	MOVQ AX, ret+8(FP)
	RET
