package mix

// penalty is implemented in mix_amd64.s with the PR 7 transition-penalty
// pattern that vexmix must flag.
func penalty(p *byte) uint64
