// Package selftest pins the two ends of the vsjlint contract: the repo's
// production packages are clean under the full suite, and the
// intentionally-violating fixtures under testdata/negative still trip
// every analyzer class. The second half is what keeps the suite honest —
// a refactor that silently stops an analyzer from firing fails here, not
// months later when the bug it guards against returns.
package selftest

import (
	"os"
	"strings"
	"testing"

	"lshjoin/internal/analysis"
	"lshjoin/internal/analysis/registry"
)

// TestRepoClean mirrors CI's `go run ./cmd/vsjlint ./...`: zero findings
// over every production package. A finding here means either a real
// invariant violation or an analyzer regression — both block.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not vsjlint-clean: %s", d)
	}
}

// TestNegativeFixtures runs the suite over the violating fixtures and
// requires every analyzer class to fire, including the suppress audit's
// stale-directive finding.
func TestNegativeFixtures(t *testing.T) {
	pkgs, err := analysis.Load(".", "./testdata/negative/mix", "./testdata/negative/persist")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d fixture packages, want 2", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
	}
	want := []string{
		"vexmix", "seedstream", "versiondominance", "lockorder",
		"errcmp", "decodebounds", "fsyncdiscipline", analysis.SuppressName,
	}
	for _, name := range want {
		if !fired[name] {
			var got []string
			for _, d := range diags {
				got = append(got, d.String())
			}
			t.Errorf("analyzer %s did not fire on the negative fixtures; findings:\n%s",
				name, strings.Join(got, "\n"))
		}
	}
}
