// Package vexmix keeps the amd64 kernels VEX-only.
//
// Invariant encoded: inside a function body that uses VEX/AVX2 encodings
// (any V-prefixed mnemonic — VPXOR, VMOVDQU, VZEROUPPER ...), no
// instruction may use a legacy-SSE encoding that touches an X register.
// Mixing the two makes the CPU save and restore the dirty upper YMM state
// around every legacy instruction — the AVX-SSE transition penalty, tens
// of cycles per occurrence, paid in the hottest loop of the signing
// kernels. PR 7 shipped exactly this: a lone `MOVQ AX, X1` (legacy
// encoding) between VEX ops, instead of `VMOVQ AX, X1`. The analyzer
// parses the assembly textually (per TEXT block), so the fix is always
// spelled the same way: use the V-form of the instruction, or move the
// scalar through a GPR. GPR-only instructions (MOVQ AX, BX, loads, leas,
// loop control) never touch XMM state and are always permitted.
//
// Raw byte sequences (BYTE/WORD/LONG/QUAD) are skipped: they encode
// whatever they encode, and the repo's convention is to emit real
// mnemonics, which is itself worth keeping greppable.
package vexmix

import (
	"go/token"
	"os"
	"regexp"
	"strings"

	"lshjoin/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "vexmix",
	Doc: "no legacy-SSE instruction may touch an X register inside a VEX/AVX2 " +
		"function body (AVX-SSE transition penalty, PR 7)",
	Run: run,
}

// xReg matches an X (XMM) register operand, X0 through X15.
var xReg = regexp.MustCompile(`\bX(1[0-5]|[0-9])\b`)

// textRe extracts the symbol name from a TEXT directive.
var textRe = regexp.MustCompile(`^TEXT\s+([^(,\s]+)`)

// mnemonicRe matches an instruction mnemonic at the start of a line:
// uppercase letters and digits (MOVQ, VPXOR, PCALIGN, SHA256MSG1).
var mnemonicRe = regexp.MustCompile(`^[A-Z][A-Z0-9]*`)

// skipMnemonics are directives and raw emitters, not instructions.
var skipMnemonics = map[string]bool{
	"TEXT": true, "GLOBL": true, "DATA": true, "FUNCDATA": true,
	"PCDATA": true, "PCALIGN": true, "BYTE": true, "WORD": true,
	"LONG": true, "QUAD": true, "NOP": true,
}

type insn struct {
	line     int
	mnemonic string
	operands string
}

func run(pass *analysis.Pass) error {
	for _, path := range pass.OtherFiles {
		if !strings.HasSuffix(path, ".s") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		checkFile(pass, path, string(data))
	}
	return nil
}

func checkFile(pass *analysis.Pass, path, src string) {
	var fn string     // current TEXT symbol, "" outside any body
	var body []insn   // instructions of the current body
	flush := func() { // analyze the finished body
		if fn != "" {
			checkBody(pass, path, fn, body)
		}
		body = body[:0]
	}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if m := textRe.FindStringSubmatch(line); m != nil {
			flush()
			fn = m[1]
			continue
		}
		if strings.HasSuffix(line, ":") { // label
			continue
		}
		m := mnemonicRe.FindString(line)
		if m == "" || skipMnemonics[m] {
			continue
		}
		body = append(body, insn{
			line:     i + 1,
			mnemonic: m,
			operands: strings.TrimSpace(line[len(m):]),
		})
	}
	flush()
}

// checkBody flags legacy-SSE instructions touching X registers in bodies
// that use VEX encodings anywhere.
func checkBody(pass *analysis.Pass, path, fn string, body []insn) {
	hasVEX := false
	for _, in := range body {
		if isVEX(in.mnemonic) {
			hasVEX = true
			break
		}
	}
	if !hasVEX {
		return // pure-SSE or pure-GPR body: no transition to penalize
	}
	for _, in := range body {
		if isVEX(in.mnemonic) || !xReg.MatchString(in.operands) {
			continue
		}
		pass.ReportAtf(token.Position{Filename: path, Line: in.line, Column: 1},
			"legacy-SSE %s touches %s inside VEX function %s: every such instruction pays the AVX-SSE transition penalty — use V%s or route through a GPR",
			in.mnemonic, xReg.FindString(in.operands), fn, in.mnemonic)
	}
}

// isVEX reports whether the mnemonic is a VEX/EVEX encoding: V followed by
// another letter (VPXOR, VMOVQ, VZEROUPPER).
func isVEX(m string) bool {
	return len(m) >= 2 && m[0] == 'V' && m[1] >= 'A' && m[1] <= 'Z'
}
