// Package mix is the vexmix fixture: assembly-backed declarations whose
// bodies live in mix_amd64.s. The assembly distills the PR 7 regression —
// a legacy-encoded MOVQ between VEX instructions — alongside the permitted
// shapes: GPR-only MOVQ inside a VEX body, and a pure-SSE body.
package mix

func penalty(p *byte) uint64

func gprOnly(p *byte) uint64

func pureSSE(p *byte) uint64

func suppressed(p *byte) uint64
