#include "textflag.h"

// penalty reproduces PR 7: a legacy-SSE MOVQ into X1 between VEX ops.
TEXT ·penalty(SB), NOSPLIT, $0-16
	MOVQ    p+0(FP), SI
	VPXOR   Y0, Y0, Y0
	MOVQ    AX, X1 // want `legacy-SSE MOVQ touches X1 inside VEX function ·penalty`
	VPADDQ  Y1, Y0, Y0
	VZEROUPPER
	MOVQ    $0, ret+8(FP)
	RET

// gprOnly mixes VEX ops with GPR-only MOVQs: permitted, no XMM state touched.
TEXT ·gprOnly(SB), NOSPLIT, $0-16
	MOVQ    p+0(FP), SI
	VPXOR   Y0, Y0, Y0
	MOVQ    SI, AX
	VPADDQ  Y0, Y0, Y0
	VMOVQ   X0, CX
	VZEROUPPER
	MOVQ    CX, ret+8(FP)
	RET

// pureSSE never uses a VEX encoding, so legacy X-register ops are fine.
TEXT ·pureSSE(SB), NOSPLIT, $0-16
	MOVQ    p+0(FP), SI
	PXOR    X0, X0
	MOVOU   (SI), X1
	PADDQ   X1, X0
	MOVQ    X0, AX
	MOVQ    AX, ret+8(FP)
	RET

// suppressed carries an explicit waiver with a reason: permitted.
TEXT ·suppressed(SB), NOSPLIT, $0-16
	MOVQ    p+0(FP), SI
	VPXOR   Y0, Y0, Y0
	MOVQ    AX, X1 //vsjlint:ignore vexmix fixture: waived to exercise suppression
	VPADDQ  Y1, Y0, Y0
	VZEROUPPER
	MOVQ    $0, ret+8(FP)
	RET
