package vexmix_test

import (
	"testing"

	"lshjoin/internal/analysis/analysistest"
	"lshjoin/internal/analysis/vexmix"
)

func TestVexMix(t *testing.T) {
	analysistest.Run(t, vexmix.Analyzer, "testdata", "mix")
}
