// Package stats implements the summary statistics and relative-error
// conventions of the paper's evaluation (§6.1): overestimation and
// underestimation relative errors reported separately, standard deviation
// of estimates as the reliability measure, and "big error" counting
// (estimates off by ≥10× in either direction) used in Figures 6 and 8.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than one element).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median (0 for an empty slice).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RelErr returns the signed relative error (est − truth)/truth. A truth of 0
// maps to 0 when est is also 0 and +Inf otherwise.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (est - truth) / truth
}

// BigError reports whether an estimate is off by at least `factor` in either
// direction (est/truth ≥ factor or truth/est ≥ factor), the criterion of
// Figures 6 and 8 with factor = 10. est = 0 with truth > 0 counts as a big
// underestimation.
func BigError(est, truth, factor float64) bool {
	if truth <= 0 {
		return est > 0 // estimating something where nothing exists
	}
	if est <= 0 {
		return true
	}
	return est/truth >= factor || truth/est >= factor
}

// ErrorSummary aggregates repeated estimates of one quantity the way the
// paper reports them: overestimation and underestimation errors averaged
// separately, plus the standard deviation of the raw estimates.
type ErrorSummary struct {
	Truth      float64
	N          int     // number of estimates
	MeanOver   float64 // average of (est/truth − 1) over estimates > truth (≥ 0)
	MeanUnder  float64 // average of (est/truth − 1) over estimates < truth (≤ 0)
	NOver      int     // count of overestimates
	NUnder     int     // count of underestimates
	MeanAbsErr float64 // average |est − truth|/truth over all estimates
	MeanEst    float64
	Std        float64 // standard deviation of raw estimates (Fig. 2c/3c/9b)
	BigOver    int     // estimates with est/truth ≥ 10
	BigUnder   int     // estimates with truth/est ≥ 10 (or est = 0)
}

// Summarize builds an ErrorSummary from repeated estimates of truth.
func Summarize(estimates []float64, truth float64) ErrorSummary {
	s := ErrorSummary{Truth: truth, N: len(estimates)}
	if len(estimates) == 0 {
		return s
	}
	var overSum, underSum, absSum float64
	for _, e := range estimates {
		r := RelErr(e, truth)
		switch {
		case r > 0:
			overSum += r
			s.NOver++
		case r < 0:
			underSum += r
			s.NUnder++
		}
		if !math.IsInf(r, 0) {
			absSum += math.Abs(r)
		}
		if truth > 0 {
			if e/truth >= 10 {
				s.BigOver++
			}
			if e <= 0 || truth/e >= 10 {
				s.BigUnder++
			}
		}
	}
	if s.NOver > 0 {
		s.MeanOver = overSum / float64(s.NOver)
	}
	if s.NUnder > 0 {
		s.MeanUnder = underSum / float64(s.NUnder)
	}
	s.MeanAbsErr = absSum / float64(len(estimates))
	s.MeanEst = Mean(estimates)
	s.Std = Std(estimates)
	return s
}

// String renders a one-line summary like the rows of the paper's figures.
func (s ErrorSummary) String() string {
	return fmt.Sprintf("truth=%.0f n=%d over=%+.1f%%(%d) under=%+.1f%%(%d) std=%.3g",
		s.Truth, s.N, 100*s.MeanOver, s.NOver, 100*s.MeanUnder, s.NUnder, s.Std)
}
