package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := Std(xs); s != 2 {
		t.Errorf("Std = %v, want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{5, 1, 3}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v", m)
	}
	ys := []float64{1, 2, 3, 4}
	if m := Median(ys); m != 2.5 {
		t.Errorf("even Median = %v", m)
	}
	if q := Quantile(ys, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(ys, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestRelErr(t *testing.T) {
	if r := RelErr(150, 100); r != 0.5 {
		t.Errorf("RelErr = %v", r)
	}
	if r := RelErr(50, 100); r != -0.5 {
		t.Errorf("RelErr = %v", r)
	}
	if r := RelErr(0, 0); r != 0 {
		t.Errorf("RelErr(0,0) = %v", r)
	}
	if r := RelErr(5, 0); !math.IsInf(r, 1) {
		t.Errorf("RelErr(5,0) = %v", r)
	}
}

func TestBigError(t *testing.T) {
	cases := []struct {
		est, truth float64
		want       bool
	}{
		{1000, 100, true}, // exactly 10×
		{999, 100, false}, // just under
		{10, 100, true},   // 10× under
		{11, 100, false},  // within
		{0, 100, true},    // zero estimate is a big underestimate
		{0, 0, false},     // nothing to estimate
		{5, 0, true},      // hallucinated mass
	}
	for _, c := range cases {
		if got := BigError(c.est, c.truth, 10); got != c.want {
			t.Errorf("BigError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	// truth 100; estimates: two overs (+50%, +100%), one exact, one under (−40%).
	s := Summarize([]float64{150, 200, 100, 60}, 100)
	if s.NOver != 2 || s.NUnder != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if math.Abs(s.MeanOver-0.75) > 1e-12 {
		t.Errorf("MeanOver = %v, want 0.75", s.MeanOver)
	}
	if math.Abs(s.MeanUnder-(-0.4)) > 1e-12 {
		t.Errorf("MeanUnder = %v, want -0.4", s.MeanUnder)
	}
	if math.Abs(s.MeanAbsErr-(0.5+1+0+0.4)/4) > 1e-12 {
		t.Errorf("MeanAbsErr = %v", s.MeanAbsErr)
	}
	if s.BigOver != 0 || s.BigUnder != 0 {
		t.Errorf("big errors: %+v", s)
	}
}

func TestSummarizeBigErrors(t *testing.T) {
	s := Summarize([]float64{1001, 5, 0, 100}, 100)
	if s.BigOver != 1 {
		t.Errorf("BigOver = %d, want 1", s.BigOver)
	}
	if s.BigUnder != 2 { // 5 (20× under) and 0
		t.Errorf("BigUnder = %d, want 2", s.BigUnder)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 10)
	if s.N != 0 || s.MeanOver != 0 || s.MeanUnder != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return Quantile(xs, 0.25) <= Quantile(xs, 0.5) && Quantile(xs, 0.5) <= Quantile(xs, 0.75)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			if math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(raw) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m := Mean(raw)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
