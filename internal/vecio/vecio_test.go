package vecio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func randVectors(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	out := make([]vecmath.Vector, n)
	for i := range out {
		nnz := rng.Intn(20)
		es := make([]vecmath.Entry, 0, nnz)
		for j := 0; j < nnz; j++ {
			es = append(es, vecmath.Entry{
				Dim:    uint32(rng.Intn(100000)),
				Weight: float32(rng.Norm()),
			})
		}
		v, err := vecmath.New(es)
		if err != nil {
			panic(err)
		}
		out[i] = v
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	want := randVectors(200, 1)
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !vecmath.Equal(got[i], want[i]) {
			t.Fatalf("vector %d mismatch:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}

func TestRoundTripEmptyAndZeroVectors(t *testing.T) {
	want := []vecmath.Vector{{}, vecmath.FromDims([]uint32{5}), {}}
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[0].IsZero() || !got[2].IsZero() || got[1].NNZ() != 1 {
		t.Fatalf("round trip broke zero vectors: %v", got)
	}
}

func TestRoundTripEmptyCollection(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d vectors", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE\x01\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	want := randVectors(10, 2)
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 9, 15, len(raw) - 3} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	want := randVectors(50, 3)
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a bit in the payload (after the 8-byte header, before checksum).
	raw[len(raw)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.vsjv")
	want := randVectors(30, 4)
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !vecmath.Equal(got[i], want[i]) {
			t.Fatalf("vector %d mismatch", i)
		}
	}
	// Atomic write leaves no temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.vsjv")); err == nil {
		t.Error("missing file accepted")
	}
}
