// Package vecio serializes vector collections in a compact binary format so
// generated datasets can be produced once (cmd/vsjgen) and reused by the
// estimation and benchmark tools.
//
// Format (little-endian, after the 8-byte header "VSJV" + uint32 version):
//
//	uint32  count
//	repeat count times:
//	    uvarint nnz
//	    nnz × (uvarint dim-delta, float32 weight)
//	uint64  FNV-1a checksum of everything after the header
//
// Dimensions are delta-encoded (entries are sorted by construction).
package vecio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"

	"lshjoin/internal/vecmath"
)

const (
	magic   = "VSJV"
	version = uint32(1)
	// maxNNZ bounds a single vector's entry count to keep corrupted inputs
	// from driving huge allocations.
	maxNNZ = 1 << 26
)

// Write streams the collection to w.
func Write(w io.Writer, vectors []vecmath.Vector) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("vecio: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return fmt.Errorf("vecio: write version: %w", err)
	}
	sum := fnv.New64a()
	out := io.MultiWriter(bw, sum)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := out.Write(scratch[:n])
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(len(vectors))); err != nil {
		return fmt.Errorf("vecio: write count: %w", err)
	}
	for i, v := range vectors {
		es := v.Entries()
		if err := writeUvarint(uint64(len(es))); err != nil {
			return fmt.Errorf("vecio: vector %d: %w", i, err)
		}
		prev := uint32(0)
		for _, e := range es {
			if err := writeUvarint(uint64(e.Dim - prev)); err != nil {
				return fmt.Errorf("vecio: vector %d: %w", i, err)
			}
			prev = e.Dim
			if err := binary.Write(out, binary.LittleEndian, math.Float32bits(e.Weight)); err != nil {
				return fmt.Errorf("vecio: vector %d: %w", i, err)
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sum.Sum64()); err != nil {
		return fmt.Errorf("vecio: write checksum: %w", err)
	}
	return bw.Flush()
}

// Read parses a collection previously written with Write, verifying the
// checksum.
func Read(r io.Reader) ([]vecmath.Vector, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("vecio: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("vecio: bad magic %q", head)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("vecio: read version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("vecio: unsupported version %d", ver)
	}
	sum := fnv.New64a()
	cr := &checksumReader{r: br, h: sum}
	var count uint32
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("vecio: read count: %w", err)
	}
	vectors := make([]vecmath.Vector, 0, count)
	for i := uint32(0); i < count; i++ {
		nnz, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("vecio: vector %d nnz: %w", i, err)
		}
		if nnz > maxNNZ {
			return nil, fmt.Errorf("vecio: vector %d nnz %d exceeds limit", i, nnz)
		}
		es := make([]vecmath.Entry, 0, nnz)
		dim := uint32(0)
		for e := uint64(0); e < nnz; e++ {
			delta, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("vecio: vector %d entry %d dim: %w", i, e, err)
			}
			if e == 0 {
				dim = uint32(delta)
			} else {
				dim += uint32(delta)
			}
			var bits uint32
			if err := binary.Read(cr, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("vecio: vector %d entry %d weight: %w", i, e, err)
			}
			es = append(es, vecmath.Entry{Dim: dim, Weight: math.Float32frombits(bits)})
		}
		v, err := vecmath.New(es)
		if err != nil {
			return nil, fmt.Errorf("vecio: vector %d: %w", i, err)
		}
		vectors = append(vectors, v)
	}
	want := sum.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("vecio: read checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("vecio: checksum mismatch: file %x, computed %x", got, want)
	}
	return vectors, nil
}

// checksumReader hashes everything it reads. It also implements io.ByteReader
// for binary.ReadUvarint.
type checksumReader struct {
	r   *bufio.Reader
	h   hash.Hash64
	buf [1]byte
}

func (c *checksumReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

func (c *checksumReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.buf[0] = b
	c.h.Write(c.buf[:])
	return b, nil
}

// WriteFile writes the collection to path (atomically via a temp file in the
// same directory).
func WriteFile(path string, vectors []vecmath.Vector) error {
	tmp, err := os.CreateTemp(dirOf(path), ".vsjv-*")
	if err != nil {
		return fmt.Errorf("vecio: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, vectors); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("vecio: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("vecio: rename: %w", err)
	}
	return nil
}

// ReadFile reads a collection from path.
func ReadFile(path string) ([]vecmath.Vector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vecio: open: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
