package sample

import (
	"math"
	"testing"
	"testing/quick"

	"lshjoin/internal/xrand"
)

func TestUniformPairDistinct(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 10000; trial++ {
		i, j := UniformPair(rng, 5)
		if i == j {
			t.Fatal("UniformPair returned identical indices")
		}
		if i < 0 || i >= 5 || j < 0 || j >= 5 {
			t.Fatalf("pair (%d,%d) out of range", i, j)
		}
	}
}

func TestUniformPairUniform(t *testing.T) {
	rng := xrand.New(2)
	const n, draws = 6, 150000
	counts := map[[2]int]int{}
	for trial := 0; trial < draws; trial++ {
		i, j := UniformPair(rng, n)
		if i > j {
			i, j = j, i
		}
		counts[[2]int{i, j}]++
	}
	pairs := n * (n - 1) / 2
	if len(counts) != pairs {
		t.Fatalf("saw %d distinct pairs, want %d", len(counts), pairs)
	}
	want := float64(draws) / float64(pairs)
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v: %d draws, want ~%.0f", p, c, want)
		}
	}
}

func TestUniformPairPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=1")
		}
	}()
	UniformPair(xrand.New(1), 1)
}

func TestRejectPair(t *testing.T) {
	rng := xrand.New(3)
	// Accept only pairs with i+j even.
	i, j, ok := RejectPair(rng, 100, func(i, j int) bool { return (i+j)%2 == 0 }, 1000)
	if !ok {
		t.Fatal("rejection failed on an easy predicate")
	}
	if (i+j)%2 != 0 {
		t.Fatal("accepted pair violates predicate")
	}
	// Impossible predicate must give ok=false.
	if _, _, ok := RejectPair(rng, 10, func(i, j int) bool { return false }, 50); ok {
		t.Fatal("impossible predicate accepted")
	}
}

func TestAdaptiveStopsOnDelta(t *testing.T) {
	calls := 0
	r := Adaptive(5, 1000, func() (bool, bool) {
		calls++
		return true, true // every sample hits
	})
	if !r.Reliable || r.Hits != 5 || r.Taken != 5 {
		t.Errorf("result %+v, want 5 hits in 5 draws, reliable", r)
	}
	if calls != 5 {
		t.Errorf("draw called %d times", calls)
	}
}

func TestAdaptiveStopsOnBudget(t *testing.T) {
	r := Adaptive(10, 100, func() (bool, bool) { return false, true })
	if r.Reliable || r.Hits != 0 || r.Taken != 100 {
		t.Errorf("result %+v, want unreliable with 100 draws", r)
	}
}

func TestAdaptiveStopsOnExhaustion(t *testing.T) {
	n := 0
	r := Adaptive(10, 100, func() (bool, bool) {
		n++
		return true, n <= 3
	})
	if r.Taken != 3 || r.Hits != 3 || r.Reliable {
		t.Errorf("result %+v, want 3 taken then stop", r)
	}
}

func TestAdaptiveHitRate(t *testing.T) {
	rng := xrand.New(7)
	const p = 0.3
	r := Adaptive(300, 1<<20, func() (bool, bool) { return rng.Float64() < p, true })
	if !r.Reliable {
		t.Fatal("should reach 300 hits")
	}
	est := float64(r.Hits) / float64(r.Taken)
	if math.Abs(est-p) > 0.05 {
		t.Errorf("estimated rate %v, want ~%v", est, p)
	}
}

func TestWithoutReplacement(t *testing.T) {
	rng := xrand.New(9)
	out, err := WithoutReplacement(rng, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 10)
	for _, v := range out {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", out)
		}
		seen[v] = true
	}
	if _, err := WithoutReplacement(rng, 5, 6); err == nil {
		t.Error("m > n accepted")
	}
	if out, err := WithoutReplacement(rng, 5, 0); err != nil || len(out) != 0 {
		t.Error("m = 0 should return empty")
	}
}

func TestWithoutReplacementUniform(t *testing.T) {
	rng := xrand.New(11)
	const n, m, draws = 8, 3, 60000
	counts := make([]int, n)
	for trial := 0; trial < draws; trial++ {
		out, err := WithoutReplacement(rng, n, m)
		if err != nil {
			t.Fatal(err)
		}
		dup := map[int]bool{}
		for _, v := range out {
			if dup[v] {
				t.Fatalf("duplicate in %v", out)
			}
			dup[v] = true
			counts[v]++
		}
	}
	want := float64(draws) * m / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d selected %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(13)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(rng)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum * draws
		if w == 0 {
			if counts[i] != 0 {
				t.Errorf("zero-weight outcome %d sampled %d times", i, counts[i])
			}
			continue
		}
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: %d draws, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasPropNormalization(t *testing.T) {
	// Property: construction succeeds for any positive weight vector and
	// sampling stays in range.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		rng := xrand.New(99)
		for i := 0; i < 100; i++ {
			v := a.Sample(rng)
			if v < 0 || v >= a.N() || weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
