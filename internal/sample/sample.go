// Package sample provides the sampling primitives shared by the join-size
// estimators: uniform random pairs, rejection sampling into stratum L,
// Lipton-style adaptive sampling (the SampleL subroutine of Algorithm 1),
// alias-method weighted sampling, and without-replacement subset selection.
package sample

import (
	"fmt"

	"lshjoin/internal/xrand"
)

// UniformPair returns a uniform random unordered pair of distinct indices
// from [0, n). It panics if n < 2.
func UniformPair(rng *xrand.RNG, n int) (i, j int) {
	if n < 2 {
		panic("sample: UniformPair needs n ≥ 2")
	}
	i = rng.Intn(n)
	j = rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// RejectPair returns a uniform random pair of distinct indices from [0, n)
// subject to accept(i, j) being true, by rejection. maxTries bounds the
// attempts; ok is false if no acceptable pair was found (e.g. the accepted
// stratum is empty or nearly so).
func RejectPair(rng *xrand.RNG, n int, accept func(i, j int) bool, maxTries int) (i, j int, ok bool) {
	for t := 0; t < maxTries; t++ {
		i, j = UniformPair(rng, n)
		if accept(i, j) {
			return i, j, true
		}
	}
	return 0, 0, false
}

// AdaptiveResult reports the outcome of an adaptive sampling run.
type AdaptiveResult struct {
	Hits     int  // number of samples satisfying the predicate (n_L)
	Taken    int  // samples actually drawn (i)
	Reliable bool // true iff the loop ended by reaching the answer-size threshold δ
}

// Adaptive runs Lipton et al.'s adaptive sampling loop: draw samples until
// either `hits` reaches delta (a reliable estimate can be scaled up) or
// maxSamples draws have been taken. draw returns whether the next sample
// satisfies the predicate, and false ok when the underlying sampler is
// exhausted (treated as an immediate stop).
//
// This is the core of SampleL in Algorithm 1 of the paper; the caller decides
// how to scale the result (full scale-up, safe lower bound, or a dampened
// factor).
func Adaptive(delta, maxSamples int, draw func() (hit, ok bool)) AdaptiveResult {
	var r AdaptiveResult
	for r.Hits < delta && r.Taken < maxSamples {
		hit, ok := draw()
		if !ok {
			break
		}
		if hit {
			r.Hits++
		}
		r.Taken++
	}
	r.Reliable = r.Hits >= delta
	return r
}

// WithoutReplacement returns m distinct indices drawn uniformly from [0, n)
// via a partial Fisher–Yates shuffle in O(m) extra space.
func WithoutReplacement(rng *xrand.RNG, n, m int) ([]int, error) {
	if m < 0 || m > n {
		return nil, fmt.Errorf("sample: need 0 ≤ m ≤ n, got m=%d n=%d", m, n)
	}
	// Sparse Fisher–Yates: only touched positions are stored.
	swapped := make(map[int]int, m)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		j := i + rng.Intn(n-i)
		vi, oki := swapped[i]
		if !oki {
			vi = i
		}
		vj, okj := swapped[j]
		if !okj {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
	}
	return out, nil
}

// Alias is Walker's alias method: O(n) construction, O(1) sampling from an
// arbitrary discrete distribution. Used where many draws amortize the setup
// (topic mixtures in the corpus generator, bucket sampling alternatives).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights. At
// least one weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sample: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sample: negative weight %v at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sample: all weights zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Sample draws one index with probability proportional to its weight.
func (a *Alias) Sample(rng *xrand.RNG) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }
