package lc

import (
	"testing"

	"lshjoin/internal/dataset"
	"lshjoin/internal/lsh"
)

// TestDiagDumpFitPoints logs the surviving power-law anchors on a DBLP-scale
// collection — the diagnostic behind the binary-LSH separability discussion
// in the package comment. It asserts the documented qualitative behavior:
// with k = 20 one-bit hashes, at most the top one or two levels survive.
func TestDiagDumpFitPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale diagnostic")
	}
	d, err := dataset.DBLPLike(20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(d.Vectors, lsh.NewSimHash(42^0x15AB1E), Config{K: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	pts, p0 := l.FitPoints()
	c, z, ok := l.PowerLaw()
	t.Logf("p0=%v c=%v z=%v ok=%v", p0, c, z, ok)
	for _, p := range pts {
		t.Logf("point s=%.4f v=%.1f", p.S, p.V)
	}
	if len(pts) > 2 {
		t.Errorf("binary LSH at k=20 should leave ≤2 separable levels, got %d", len(pts))
	}
}
