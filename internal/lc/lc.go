// Package lc reimplements the Lattice Counting (LC) baseline — Lee, Ng, Shim
// "Power-Law Based Estimation of Set Similarity Join Size" (PVLDB 2009) —
// adapted to the VSJ problem the way §3.2 of the 2011 paper prescribes:
// build a signature database by applying an LSH scheme to the vector
// database, analyze how many signature positions pairs agree on (which is
// proportional to similarity), fit a power law to the resulting distribution
// and integrate it above the threshold.
//
// The original LC implementation is not available; this reconstruction keeps
// its architecture (signature lattice analysis with a minimum support
// threshold ξ + power-law extrapolation) and reproduces the qualitative
// behavior the 2011 paper reports for it: systematic underestimation with
// binary (sign random projection) LSH functions and higher runtime than
// LSH-SS. Two lattice quantities are computed:
//
//   - exact tail: the match-count histogram n_j (pairs agreeing on exactly j
//     of k positions) for j ≥ k−TailDepth, found with banding — any pair with
//     at most d mismatches agrees exactly with its partner on at least one of
//     d+1 position bands — and pruned by the support threshold ξ;
//   - lattice moments: A_i = Σ_{|P|=i} C(support(P), 2) over position
//     patterns P, which equal Σ_pairs C(m, i) and invert to the full n_j via
//     binomial inversion (InvertMatchCounts); exact but only affordable for
//     small i, they power the package's self-checks and diagnostics.
package lc

import (
	"fmt"
	"math"

	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Config tunes the LC estimator.
type Config struct {
	// K is the signature length (number of LSH functions). Defaults to 20.
	K int
	// MinSupport is ξ: band buckets with fewer signatures are pruned before
	// candidate generation, trading accuracy (underestimation) for speed.
	// Defaults to 2 (count everything countable).
	MinSupport int
	// TailDepth is d: match counts j ∈ [k−d, k] are counted exactly via
	// banding with d+1 bands. Defaults to 2.
	TailDepth int
	// MaxCandidates caps the number of candidate pairs verified during tail
	// counting; 0 means 4,000,000.
	MaxCandidates int
	// SamplePairs is the number of uniform signature pairs whose match
	// counts estimate the body of the distribution (the lattice's frequent
	// low levels). 0 means 100,000. The sample is drawn with a fixed
	// internal seed, so the whole estimator stays deterministic.
	SamplePairs int
	// Seed drives the internal pair sample. Defaults to 1.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.K == 0 {
		c.K = 20
	}
	if c.MinSupport == 0 {
		c.MinSupport = 2
	}
	if c.TailDepth == 0 {
		c.TailDepth = 2
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4_000_000
	}
	if c.SamplePairs == 0 {
		c.SamplePairs = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c Config) validate() error {
	switch {
	case c.K < 2 || c.K > 512:
		return fmt.Errorf("lc: K must be in [2, 512], got %d", c.K)
	case c.MinSupport < 2:
		return fmt.Errorf("lc: MinSupport must be ≥ 2, got %d", c.MinSupport)
	case c.TailDepth < 0 || c.TailDepth >= c.K:
		return fmt.Errorf("lc: TailDepth must be in [0, K), got %d", c.TailDepth)
	case c.MaxCandidates < 1:
		return fmt.Errorf("lc: MaxCandidates must be positive")
	}
	return nil
}

// LC is the built estimator: a signature database plus the fitted power law.
type LC struct {
	cfg    Config
	family lsh.Family
	n      int
	sigs   [][]uint64 // n × k signature values

	tail      []int64 // tail[j] = n_{k−TailDepth+j} … exact match-count histogram
	tailFloor int     // match count of tail[0]
	truncated bool    // candidate cap hit; tail is a lower bound

	sampleHist []int64 // match-count histogram over the uniform pair sample
	sampleSize int     // pairs actually sampled

	// fitted power law V(s) = c·s^(−z): number of pairs with sim ≥ s.
	c, z   float64
	fitted bool
	fitPts []FitPoint
	bulkP0 float64
}

// FitPoint is one (similarity, scaled count) anchor that survived the
// separability bar and entered the power-law fit. Exposed for diagnostics.
type FitPoint struct {
	S float64 // similarity implied by the match-count level
	V float64 // debiased pairs-with-sim ≥ S, scaled to the full collection
}

// FitPoints returns the surviving fit anchors and the bulk match rate p₀.
func (l *LC) FitPoints() (pts []FitPoint, p0 float64) {
	return append([]FitPoint(nil), l.fitPts...), l.bulkP0
}

// New builds the signature database and fits the estimator. Deterministic
// given the family seed.
func New(data []vecmath.Vector, family lsh.Family, cfg Config) (*LC, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if family == nil {
		return nil, fmt.Errorf("lc: nil family")
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("lc: need at least 2 vectors, got %d", len(data))
	}
	l := &LC{cfg: cfg, family: family, n: len(data)}
	l.sigs = make([][]uint64, len(data))
	for i, v := range data {
		sig := make([]uint64, cfg.K)
		for f := 0; f < cfg.K; f++ {
			sig[f] = family.Hash(f, v)
		}
		l.sigs[i] = sig
	}
	l.countTail()
	l.sampleBody()
	l.fit()
	return l, nil
}

// sampleBody histograms match counts over uniform random signature pairs.
// Like everything in LC it looks only at signatures, never at real vector
// similarities; the body of the lattice is far too frequent to enumerate,
// so it is estimated.
func (l *LC) sampleBody() {
	l.sampleHist = make([]int64, l.cfg.K+1)
	if l.n < 2 {
		return
	}
	rng := xrand.New(l.cfg.Seed ^ 0x1C5EED)
	for s := 0; s < l.cfg.SamplePairs; s++ {
		i := rng.Intn(l.n)
		j := rng.Intn(l.n - 1)
		if j >= i {
			j++
		}
		l.sampleHist[matchCount(l.sigs[i], l.sigs[j])]++
	}
	l.sampleSize = l.cfg.SamplePairs
}

// Name identifies the estimator like the paper's plots: LC(ξ).
func (l *LC) Name() string { return fmt.Sprintf("LC(%d)", l.cfg.MinSupport) }

// Estimate returns the power-law estimate of the join size at tau. LC is
// deterministic; rng is unused (present to satisfy core.Estimator).
func (l *LC) Estimate(tau float64, _ *xrand.RNG) (float64, error) {
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		return 0, fmt.Errorf("lc: threshold must be in (0, 1], got %v", tau)
	}
	m := float64(l.n) * float64(l.n-1) / 2
	if !l.fitted {
		// No observable tail mass at all: LC reports an empty join.
		return 0, nil
	}
	est := l.c * math.Pow(tau, -l.z)
	if est > m {
		est = m
	}
	if est < 0 || math.IsNaN(est) {
		est = 0
	}
	return est, nil
}

// TailHistogram returns (floor, hist) where hist[j] is the exact number of
// pairs agreeing on exactly floor+j of the K positions, and a flag telling
// whether candidate capping truncated the count.
func (l *LC) TailHistogram() (floor int, hist []int64, truncated bool) {
	return l.tailFloor, append([]int64(nil), l.tail...), l.truncated
}

// countTail finds all pairs with at most TailDepth mismatching positions via
// banding and histograms their exact match counts.
func (l *LC) countTail() {
	k, d := l.cfg.K, l.cfg.TailDepth
	l.tailFloor = k - d
	l.tail = make([]int64, d+1)
	bands := d + 1
	// Band b covers positions [b·k/bands, (b+1)·k/bands).
	seen := make(map[[2]int32]struct{})
	candidates := 0
	for b := 0; b < bands; b++ {
		lo, hi := b*k/bands, (b+1)*k/bands
		if hi <= lo {
			continue
		}
		buckets := make(map[string][]int32)
		var keyBuf []byte
		for i, sig := range l.sigs {
			keyBuf = keyBuf[:0]
			for p := lo; p < hi; p++ {
				v := sig[p]
				keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			buckets[string(keyBuf)] = append(buckets[string(keyBuf)], int32(i))
		}
		for _, ids := range buckets {
			if len(ids) < l.cfg.MinSupport {
				continue // ξ pruning: infrequent patterns are not expanded
			}
			for x := 0; x < len(ids); x++ {
				for y := x + 1; y < len(ids); y++ {
					pair := [2]int32{ids[x], ids[y]}
					if _, dup := seen[pair]; dup {
						continue
					}
					seen[pair] = struct{}{}
					candidates++
					if candidates > l.cfg.MaxCandidates {
						l.truncated = true
						return
					}
					if mc := matchCount(l.sigs[pair[0]], l.sigs[pair[1]]); mc >= l.tailFloor {
						l.tail[mc-l.tailFloor]++
					}
				}
			}
		}
	}
}

func matchCount(a, b []uint64) int {
	m := 0
	for i := range a {
		if a[i] == b[i] {
			m++
		}
	}
	return m
}

// fit performs the log-log least-squares power-law fit V(s) = c·s^(−z),
// where V(s) is the number of pairs with sim ≥ s. Fit points come from two
// lattice levels of evidence: the exact banded tail (ŝ(j), V_j) for the top
// match counts, and scaled sample counts for body match counts that are too
// frequent to enumerate.
//
// Binary hash functions give every pair a baseline match rate p₀ ≈ p(0), so
// chance agreements of dissimilar pairs dominate most match-count levels
// (a Binomial(k, p₀) bulk). Each level is therefore debiased by the expected
// bulk mass and kept only when the residual clears a 3σ significance bar —
// with k = 20 sign bits nearly all levels below exact duplication fail the
// bar, which reproduces §6.2's finding that LC underestimates throughout
// and "is not adequate for binary LSH functions" (larger k would separate).
func (l *LC) fit() {
	k := float64(l.cfg.K)
	// Baseline match rate p₀ from the pair sample. The median match count is
	// robust against the similar-pair tail; the mean is not (a 0.5% inflation
	// of p₀ shifts the k-th power of the bulk tail by orders of magnitude).
	p0 := 0.5
	if l.sampleSize > 0 {
		var cum, half int64
		half = int64(l.sampleSize+1) / 2
		med := 0
		for j, c := range l.sampleHist {
			cum += c
			if cum >= half {
				med = j
				break
			}
		}
		p0 = float64(med) / k
	}
	if p0 <= 0 {
		p0 = 1e-9
	}
	if p0 >= 1 {
		p0 = 1 - 1e-9
	}
	// bulkTail(j) = P(Binomial(k, p₀) ≥ j).
	bulkTail := func(j int) float64 {
		var q float64
		for i := j; i <= l.cfg.K; i++ {
			q += binom(l.cfg.K, i) * math.Pow(p0, float64(i)) * math.Pow(1-p0, float64(l.cfg.K-i))
		}
		return q
	}
	l.bulkP0 = p0
	m := float64(l.n) * float64(l.n-1) / 2
	type pt struct{ s, v float64 }
	var pts []pt
	keep := func(j int, observed, population float64) {
		expected := population * bulkTail(j)
		residual := observed - expected
		// Separability bar: the level must carry at least 4× the chance mass
		// and clear 3σ. The binomial bulk model is a lower bound on the true
		// chance tail (pairs of slightly varying similarity overdisperse it),
		// so marginal excesses near the bulk are mis-modeled noise, not
		// similarity mass. With k one-bit hashes essentially only the
		// exact-signature level survives — LC's documented failure mode on
		// binary LSH functions ("binary LSH functions need more hash
		// functions (larger k) to distinguish objects", §6.2); with
		// many-valued MinHash positions the chance mass vanishes and every
		// real level survives, which is LC's home turf.
		bar := math.Max(3*math.Sqrt(expected+1), 3*expected)
		if residual < bar || residual < 1 {
			return
		}
		s := l.family.SimFromCollisionProb(float64(j) / k)
		if s <= 0 {
			return
		}
		v := residual * (m / population)
		pts = append(pts, pt{s: s, v: v})
	}
	// Exact tail: cumulative from the top, debiased against all M pairs.
	var cum int64
	for j := l.cfg.K; j >= l.tailFloor; j-- {
		if idx := j - l.tailFloor; idx < len(l.tail) {
			cum += l.tail[idx]
		}
		if cum > 0 {
			keep(j, float64(cum), m)
		}
	}
	// Sampled body below the exact tail, debiased against the sample size.
	if l.sampleSize > 0 {
		var cumS int64
		for j := l.cfg.K; j >= 0; j-- {
			cumS += l.sampleHist[j]
			if j >= l.tailFloor || cumS == 0 {
				continue
			}
			keep(j, float64(cumS), float64(l.sampleSize))
		}
	}
	l.fitPts = l.fitPts[:0]
	for _, p := range pts {
		l.fitPts = append(l.fitPts, FitPoint{S: p.s, V: p.v})
	}
	if len(pts) == 0 {
		return
	}
	if len(pts) == 1 {
		// Flat extrapolation from a single point.
		l.c, l.z, l.fitted = pts[0].v, 0, true
		return
	}
	// Least squares on log V = log c − z·log s.
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := math.Log(p.s), math.Log(p.v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	nf := float64(len(pts))
	den := nf*sxx - sx*sx
	if den == 0 {
		l.c, l.z, l.fitted = pts[len(pts)-1].v, 0, true
		return
	}
	slope := (nf*sxy - sx*sy) / den
	inter := (sy - slope*sx) / nf
	z := -slope
	if z < 0 {
		z = 0 // V(s) must be non-increasing in s
	}
	l.c = math.Exp(inter)
	l.z = z
	l.fitted = true
}

// PowerLaw exposes the fitted coefficients (c, z) and whether a fit exists.
func (l *LC) PowerLaw() (c, z float64, ok bool) { return l.c, l.z, l.fitted }

// Moment computes the exact lattice moment A_i = Σ_{|P|=i} C(support(P), 2)
// by grouping signatures under every projection onto i positions. Cost grows
// as C(K, i)·n; keep i small (diagnostics and tests).
func (l *LC) Moment(i int) (float64, error) {
	if i < 0 || i > l.cfg.K {
		return 0, fmt.Errorf("lc: moment order %d out of [0, %d]", i, l.cfg.K)
	}
	if i == 0 {
		return float64(l.n) * float64(l.n-1) / 2, nil
	}
	var total float64
	positions := make([]int, i)
	for j := range positions {
		positions[j] = j
	}
	var keyBuf []byte
	for {
		counts := make(map[string]int64)
		for _, sig := range l.sigs {
			keyBuf = keyBuf[:0]
			for _, p := range positions {
				v := sig[p]
				keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
			counts[string(keyBuf)]++
		}
		for _, c := range counts {
			total += float64(c) * float64(c-1) / 2
		}
		if !nextCombination(positions, l.cfg.K) {
			break
		}
	}
	return total, nil
}

// nextCombination advances positions to the next k-combination of [0, n);
// it returns false after the last one.
func nextCombination(positions []int, n int) bool {
	i := len(positions) - 1
	for i >= 0 && positions[i] == n-len(positions)+i {
		i--
	}
	if i < 0 {
		return false
	}
	positions[i]++
	for j := i + 1; j < len(positions); j++ {
		positions[j] = positions[j-1] + 1
	}
	return true
}

// InvertMatchCounts recovers the match-count histogram n_j from the full
// moment vector A (A[i] = Σ_pairs C(m, i), i = 0..k) by binomial inversion:
//
//	n_j = Σ_{i ≥ j} (−1)^{i−j} · C(i, j) · A_i.
//
// Exact when A is exact; numerically delicate for large k (alternating sum),
// so it is a verification tool, not the production estimator.
func InvertMatchCounts(A []float64) []float64 {
	k := len(A) - 1
	out := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		var sum float64
		sign := 1.0
		for i := j; i <= k; i++ {
			sum += sign * binom(i, j) * A[i]
			sign = -sign
		}
		out[j] = sum
	}
	return out
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}
