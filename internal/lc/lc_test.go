package lc

import (
	"math"
	"testing"

	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func testData(n int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < 0.05 {
			data = append(data, data[rng.Intn(len(data))])
			continue
		}
		m := 4 + rng.Intn(8)
		ds := make([]uint32, 0, m)
		for len(ds) < m {
			ds = append(ds, uint32(rng.Intn(150)))
		}
		data = append(data, vecmath.FromDims(ds))
	}
	return data
}

func TestConfigValidation(t *testing.T) {
	data := testData(20, 1)
	fam := lsh.NewSimHash(2)
	if _, err := New(data, fam, Config{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := New(data, fam, Config{MinSupport: 1}); err == nil {
		t.Error("MinSupport=1 accepted")
	}
	if _, err := New(data, fam, Config{TailDepth: 30, K: 20}); err == nil {
		t.Error("TailDepth ≥ K accepted")
	}
	if _, err := New(data, nil, Config{}); err == nil {
		t.Error("nil family accepted")
	}
	if _, err := New(data[:1], fam, Config{}); err == nil {
		t.Error("single vector accepted")
	}
}

func TestDefaults(t *testing.T) {
	l, err := New(testData(50, 3), lsh.NewSimHash(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if l.cfg.K != 20 || l.cfg.MinSupport != 2 || l.cfg.TailDepth != 2 {
		t.Errorf("defaults not applied: %+v", l.cfg)
	}
	if l.Name() != "LC(2)" {
		t.Errorf("name %q", l.Name())
	}
}

// bruteMatchHist computes the exact match-count histogram over all signature
// pairs; the reference for both the banded tail and the moment inversion.
func bruteMatchHist(l *LC) []int64 {
	hist := make([]int64, l.cfg.K+1)
	for i := 0; i < l.n; i++ {
		for j := i + 1; j < l.n; j++ {
			hist[matchCount(l.sigs[i], l.sigs[j])]++
		}
	}
	return hist
}

func TestTailHistogramExact(t *testing.T) {
	data := testData(250, 5)
	l, err := New(data, lsh.NewSimHash(6), Config{K: 12, TailDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	floor, tail, truncated := l.TailHistogram()
	if truncated {
		t.Fatal("unexpected truncation on small data")
	}
	if floor != 9 {
		t.Fatalf("tail floor %d, want 9", floor)
	}
	want := bruteMatchHist(l)
	for j, got := range tail {
		if got != want[floor+j] {
			t.Errorf("n_%d = %d, brute force %d", floor+j, got, want[floor+j])
		}
	}
}

func TestTailMinSupportPrunes(t *testing.T) {
	data := testData(250, 7)
	loose, err := New(data, lsh.NewSimHash(8), Config{K: 12, TailDepth: 2, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := New(data, lsh.NewSimHash(8), Config{K: 12, TailDepth: 2, MinSupport: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, lt, _ := loose.TailHistogram()
	_, st, _ := strict.TailHistogram()
	var lsum, ssum int64
	for i := range lt {
		lsum += lt[i]
		ssum += st[i]
	}
	if ssum > lsum {
		t.Errorf("pruned run found more pairs (%d) than unpruned (%d)", ssum, lsum)
	}
}

func TestMomentMatchesDefinition(t *testing.T) {
	data := testData(120, 9)
	l, err := New(data, lsh.NewSimHash(10), Config{K: 6, TailDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist := bruteMatchHist(l)
	for i := 0; i <= 3; i++ {
		got, err := l.Moment(i)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for m, cnt := range hist {
			want += binom(m, i) * float64(cnt)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("A_%d = %v, want %v", i, got, want)
		}
	}
	if _, err := l.Moment(-1); err == nil {
		t.Error("negative moment accepted")
	}
	if _, err := l.Moment(99); err == nil {
		t.Error("out-of-range moment accepted")
	}
}

// TestBinomialInversion: the lattice identity A_i = Σ_j C(j,i)·n_j must
// invert exactly.
func TestBinomialInversion(t *testing.T) {
	data := testData(100, 11)
	l, err := New(data, lsh.NewSimHash(12), Config{K: 6, TailDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist := bruteMatchHist(l)
	A := make([]float64, l.cfg.K+1)
	for i := range A {
		m, err := l.Moment(i)
		if err != nil {
			t.Fatal(err)
		}
		A[i] = m
	}
	inverted := InvertMatchCounts(A)
	for j := range hist {
		if math.Abs(inverted[j]-float64(hist[j])) > 1e-4*(1+float64(hist[j])) {
			t.Errorf("inverted n_%d = %v, want %d", j, inverted[j], hist[j])
		}
	}
}

func TestBinomialInversionSynthetic(t *testing.T) {
	// Hand-built histogram: n over k=3 positions.
	n := []float64{10, 6, 3, 1}
	A := make([]float64, 4)
	for i := 0; i <= 3; i++ {
		for j, cnt := range n {
			A[i] += binom(j, i) * cnt
		}
	}
	got := InvertMatchCounts(A)
	for j := range n {
		if math.Abs(got[j]-n[j]) > 1e-9 {
			t.Errorf("n_%d = %v, want %v", j, got[j], n[j])
		}
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {0, 0, 1}, {10, 3, 120}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestEstimateBoundedAndDeterministic(t *testing.T) {
	data := testData(300, 13)
	l, err := New(data, lsh.NewSimHash(14), Config{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	m := float64(len(data)) * float64(len(data)-1) / 2
	for _, tau := range []float64{0.1, 0.5, 0.9, 1.0} {
		a, err := l.Estimate(tau, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := l.Estimate(tau, xrand.New(99))
		if a != b {
			t.Error("LC should be deterministic")
		}
		if a < 0 || a > m || math.IsNaN(a) {
			t.Errorf("tau=%v: estimate %v out of range", tau, a)
		}
	}
	if _, err := l.Estimate(0, nil); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := l.Estimate(1.5, nil); err == nil {
		t.Error("tau>1 accepted")
	}
}

// TestLCQualitativeUnderestimation reproduces the §6.2 finding: with binary
// LSH functions LC systematically underestimates at low-to-mid thresholds
// (its tail-only evidence cannot see the body of the distribution). The
// check is over the median of several family seeds at a k where banding
// retains evidence — at k = 20 on a 400-vector corpus nearly every seed
// degenerates to a clamped blow-up (for any gaussian stream), so a
// single-draw assertion there only measures seed luck.
func TestLCQualitativeUnderestimation(t *testing.T) {
	data := testData(400, 15)
	truth := float64(exactjoin.BruteForceCount(data, 0.2))
	if truth < 100 {
		t.Skip("not enough low-threshold mass")
	}
	under := 0
	const seeds = 5
	for seed := uint64(16); seed < 16+seeds; seed++ {
		l, err := New(data, lsh.NewSimHash(seed), Config{K: 12})
		if err != nil {
			t.Fatal(err)
		}
		est, err := l.Estimate(0.2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if est < truth {
			under++
		}
	}
	if under <= seeds/2 {
		t.Errorf("LC underestimated on only %d/%d seeds (truth %v); §6.2 expects systematic underestimation", under, seeds, truth)
	}
}

func TestEstimateNoTailMass(t *testing.T) {
	// Orthogonal vectors with large k: no pair survives banding, no fit.
	data := []vecmath.Vector{
		vecmath.FromDims([]uint32{1}),
		vecmath.FromDims([]uint32{100}),
		vecmath.FromDims([]uint32{200}),
	}
	l, err := New(data, lsh.NewSimHash(17), Config{K: 32, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.PowerLaw(); ok {
		t.Skip("vectors collided under this seed")
	}
	est, err := l.Estimate(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Errorf("no evidence should estimate 0, got %v", est)
	}
}

func TestPowerLawFitOnPlantedData(t *testing.T) {
	// Plant a cluster of duplicates: the tail then has mass only at m = k,
	// fit degenerates to a flat line through (1, V) and τ-independent.
	base := vecmath.FromDims([]uint32{1, 2, 3, 4, 5})
	data := []vecmath.Vector{base, base, base, base}
	for i := 0; i < 60; i++ {
		data = append(data, vecmath.FromDims([]uint32{uint32(10 + 7*i), uint32(11 + 7*i), uint32(12 + 7*i)}))
	}
	l, err := New(data, lsh.NewSimHash(19), Config{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	est, err := l.Estimate(0.99, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 duplicates → C(4,2) = 6 pairs at sim 1.
	if est < 3 || est > 60 {
		t.Errorf("duplicate-cluster estimate %v, want near 6", est)
	}
}

func TestNextCombination(t *testing.T) {
	pos := []int{0, 1}
	var all [][2]int
	for {
		all = append(all, [2]int{pos[0], pos[1]})
		if !nextCombination(pos, 4) {
			break
		}
	}
	want := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(all) != len(want) {
		t.Fatalf("got %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("combination %d = %v, want %v", i, all[i], want[i])
		}
	}
}

// TestLCMinHashHomeTurf: with many-valued MinHash positions the chance mass
// per level is ~0, so real similarity levels survive the separability bar
// and LC produces a genuine multi-point power-law fit — the regime the 2009
// paper designed it for.
func TestLCMinHashHomeTurf(t *testing.T) {
	rng := xrand.New(31)
	var data []vecmath.Vector
	// Clustered sets: members share most of a base set, giving a spread of
	// Jaccard similarities well above 0.
	for c := 0; c < 60; c++ {
		base := make([]uint32, 12)
		for i := range base {
			base[i] = uint32(rng.Intn(4000))
		}
		for member := 0; member < 4; member++ {
			ds := append([]uint32(nil), base...)
			for e := 0; e < member; e++ {
				ds[rng.Intn(len(ds))] = uint32(rng.Intn(4000))
			}
			data = append(data, vecmath.FromDims(ds))
		}
	}
	l, err := New(data, lsh.NewMinHash(33), Config{K: 12, TailDepth: 2, SamplePairs: 50000})
	if err != nil {
		t.Fatal(err)
	}
	pts, p0 := l.FitPoints()
	if p0 > 0.2 {
		t.Errorf("MinHash bulk match rate should be near 0, got %v", p0)
	}
	if len(pts) < 2 {
		t.Fatalf("expected a multi-point fit on MinHash data, got %d points", len(pts))
	}
	// The fit should track the truth within an order of magnitude at a
	// threshold inside the observed range.
	var truth float64
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if vecmath.Jaccard(data[i], data[j]) >= 0.6 {
				truth++
			}
		}
	}
	est, err := l.Estimate(0.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if truth > 0 && (est < truth/10 || est > truth*10) {
		t.Errorf("MinHash LC estimate %v vs truth %v (>10× off)", est, truth)
	}
}
