package corpus

import (
	"math"
	"testing"

	"lshjoin/internal/vecmath"
)

func validConfig() Config {
	return Config{
		N:            500,
		Vocab:        5000,
		Stopwords:    50,
		Topics:       40,
		TopicVocab:   200,
		TopicZipf:    1.0,
		TopicsPerDoc: 2,
		StopwordRate: 0.2,
		StopwordZipf: 1.0,
		MeanLen:      14,
		MinLen:       3,
		MaxLen:       100,
		LenSpread:    0.4,
		NearDupRate:  0.02,
		NearDupEdits: 2,
		ExactDupRate: 0.005,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.Vocab = c.Stopwords },
		func(c *Config) { c.Topics = 0 },
		func(c *Config) { c.TopicVocab = 0 },
		func(c *Config) { c.TopicsPerDoc = 0 },
		func(c *Config) { c.MeanLen = 0 },
		func(c *Config) { c.MaxLen = c.MinLen - 1 },
		func(c *Config) { c.StopwordRate = 1.5 },
		func(c *Config) { c.NearDupRate = 0.9; c.ExactDupRate = 0.2 },
		func(c *Config) { c.TopicZipf = 0 },
	}
	for i, mutate := range bad {
		c := validConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := validConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := validConfig()
	a, err := Generate(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("doc %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	c := validConfig()
	a, _ := Generate(c, 1)
	b, _ := Generate(c, 2)
	same := 0
	for i := range a {
		if len(a[i]) == len(b[i]) {
			eq := true
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					eq = false
					break
				}
			}
			if eq {
				same++
			}
		}
	}
	if same > len(a)/10 {
		t.Errorf("%d/%d docs identical across seeds", same, len(a))
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	c := validConfig()
	docs, err := Generate(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != c.N {
		t.Fatalf("got %d docs, want %d", len(docs), c.N)
	}
	for i, d := range docs {
		if len(d) < c.MinLen || len(d) > c.MaxLen {
			t.Errorf("doc %d length %d out of [%d,%d]", i, len(d), c.MinLen, c.MaxLen)
		}
		for _, tok := range d {
			if int(tok) >= c.Vocab {
				t.Errorf("doc %d token %d out of vocab", i, tok)
			}
		}
	}
}

func TestExactDuplicatesExist(t *testing.T) {
	c := validConfig()
	c.N = 2000
	c.ExactDupRate = 0.05
	docs, err := Generate(c, 11)
	if err != nil {
		t.Fatal(err)
	}
	vecs := Binary(docs)
	dups := 0
	for i := 1; i < len(vecs); i++ {
		for j := 0; j < i && j < 50; j++ {
			if vecmath.Equal(vecs[i], vecs[j]) {
				dups++
				break
			}
		}
	}
	if dups == 0 {
		t.Error("no duplicate documents generated despite ExactDupRate=0.05")
	}
}

func TestNearDuplicatesAreSimilar(t *testing.T) {
	c := validConfig()
	c.N = 3000
	c.NearDupRate = 0.2
	c.ExactDupRate = 0
	c.LenSpread = 0
	docs, err := Generate(c, 13)
	if err != nil {
		t.Fatal(err)
	}
	vecs := Binary(docs)
	// There should be pairs with high but sub-1.0 similarity.
	high := 0
	for i := 1; i < 500; i++ {
		for j := 0; j < i; j++ {
			s := vecmath.Cosine(vecs[i], vecs[j])
			if s >= 0.7 && s < 1 {
				high++
			}
		}
	}
	if high == 0 {
		t.Error("no near-duplicate pairs found despite NearDupRate=0.2")
	}
}

func TestBinaryVectors(t *testing.T) {
	docs := []Doc{{1, 1, 2}, {3}}
	vecs := Binary(docs)
	if vecs[0].NNZ() != 2 || vecs[0].Weight(1) != 1 || vecs[0].Weight(2) != 1 {
		t.Errorf("binary vector wrong: %v", vecs[0])
	}
}

func TestTFIDF(t *testing.T) {
	// Token 1 appears in both docs (low idf), token 2 only in doc 0 (high
	// idf), and twice (tf 2).
	docs := []Doc{{1, 2, 2}, {1, 3}}
	vecs, err := TFIDF(docs)
	if err != nil {
		t.Fatal(err)
	}
	idfCommon := math.Log(1 + 2.0/2.0)
	idfRare := math.Log(1 + 2.0/1.0)
	if got := float64(vecs[0].Weight(1)); math.Abs(got-idfCommon) > 1e-6 {
		t.Errorf("weight(1) = %v, want %v", got, idfCommon)
	}
	if got := float64(vecs[0].Weight(2)); math.Abs(got-2*idfRare) > 1e-6 {
		t.Errorf("weight(2) = %v, want %v", got, 2*idfRare)
	}
	if vecs[1].Weight(2) != 0 {
		t.Error("doc 1 should not weight token 2")
	}
}

func TestTFIDFRareTokensWeighMore(t *testing.T) {
	c := validConfig()
	docs, err := Generate(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	vecs, err := TFIDF(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(docs) {
		t.Fatal("length mismatch")
	}
	for i, v := range vecs {
		if v.IsZero() {
			t.Errorf("doc %d vectorized to zero", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	vecs := []vecmath.Vector{
		vecmath.FromDims([]uint32{1, 2, 3}),
		vecmath.FromDims([]uint32{3, 4}),
	}
	s := Describe(vecs)
	if s.N != 2 || s.MinNNZ != 2 || s.MaxNNZ != 3 || s.DistinctDims != 4 {
		t.Errorf("stats: %+v", s)
	}
	if math.Abs(s.AvgNNZ-2.5) > 1e-12 {
		t.Errorf("AvgNNZ = %v", s.AvgNNZ)
	}
	empty := Describe(nil)
	if empty.N != 0 || empty.MinNNZ != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}
