// Package corpus generates synthetic document collections with controllable
// similarity structure and vectorizes them, standing in for the proprietary
// corpora of the paper's evaluation (DBLP publications, NYTimes articles,
// PubMed abstracts — see DESIGN.md §3 for the substitution argument).
//
// Documents are produced by a topic-mixture model: a small stop-word head
// shared by everything (drives the huge join sizes at low thresholds), a set
// of Zipfian topics (drives mid-range similarity), and optional duplication
// of earlier documents with token edits (drives the small-but-nonzero join
// sizes at τ ≥ 0.8 that make high-threshold estimation hard).
package corpus

import (
	"fmt"
	"math"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Doc is a document as a bag of token ids (repetitions meaningful for TF).
type Doc []uint32

// Config describes a synthetic corpus.
type Config struct {
	N int // number of documents

	Vocab     int // total vocabulary size (token ids are < Vocab)
	Stopwords int // token ids [0, Stopwords) form the shared head

	Topics       int     // number of topics
	TopicVocab   int     // distinct words per topic (drawn from the non-stop vocab)
	TopicZipf    float64 // Zipf exponent inside a topic
	TopicsPerDoc int     // maximum topics mixed into one document
	StopwordRate float64 // probability a token is a stop word
	StopwordZipf float64 // Zipf exponent over the stop-word head
	MeanLen      int     // mean document length in tokens
	MinLen       int     // lower clip for document length
	MaxLen       int     // upper clip for document length
	LenSpread    float64 // geometric-ish spread around MeanLen (0 = fixed length)
	NearDupRate  float64 // probability a document is a near-copy of an earlier one
	NearDupEdits int     // max token substitutions applied to a near-copy
	ExactDupRate float64 // probability a document is an exact copy of an earlier one
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("corpus: N must be positive, got %d", c.N)
	case c.Vocab <= c.Stopwords:
		return fmt.Errorf("corpus: vocab %d must exceed stop-word head %d", c.Vocab, c.Stopwords)
	case c.Stopwords < 0:
		return fmt.Errorf("corpus: negative stop-word head")
	case c.Topics <= 0 || c.TopicVocab <= 0:
		return fmt.Errorf("corpus: need at least one topic with vocabulary")
	case c.TopicsPerDoc <= 0:
		return fmt.Errorf("corpus: TopicsPerDoc must be positive")
	case c.MeanLen <= 0 || c.MinLen <= 0 || c.MaxLen < c.MinLen:
		return fmt.Errorf("corpus: invalid length bounds mean=%d min=%d max=%d", c.MeanLen, c.MinLen, c.MaxLen)
	case c.StopwordRate < 0 || c.StopwordRate > 1:
		return fmt.Errorf("corpus: StopwordRate %v out of [0,1]", c.StopwordRate)
	case c.NearDupRate < 0 || c.ExactDupRate < 0 || c.NearDupRate+c.ExactDupRate > 1:
		return fmt.Errorf("corpus: duplication rates invalid")
	case c.TopicZipf <= 0 || (c.Stopwords > 0 && c.StopwordZipf <= 0):
		return fmt.Errorf("corpus: Zipf exponents must be positive")
	}
	return nil
}

// Generate produces the corpus deterministically from seed.
func Generate(c Config, seed uint64) ([]Doc, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	topicZ, err := xrand.NewZipf(c.TopicVocab, c.TopicZipf)
	if err != nil {
		return nil, err
	}
	var stopZ *xrand.Zipf
	if c.Stopwords > 0 {
		stopZ, err = xrand.NewZipf(c.Stopwords, c.StopwordZipf)
		if err != nil {
			return nil, err
		}
	}
	// Topic t owns a deterministic pseudo-random subset of the non-stop
	// vocabulary: word r of topic t is a keyed hash into [Stopwords, Vocab).
	topicWord := func(topic, rank int) uint32 {
		span := uint64(c.Vocab - c.Stopwords)
		h := xrand.Mix3(seed^0x70FC5EED, uint64(topic), uint64(rank))
		return uint32(uint64(c.Stopwords) + h%span)
	}
	// Topic popularity is itself Zipfian: few hot topics, long tail.
	topicPop, err := xrand.NewZipf(c.Topics, 1.0)
	if err != nil {
		return nil, err
	}

	docs := make([]Doc, 0, c.N)
	for i := 0; i < c.N; i++ {
		if i > 0 {
			r := rng.Float64()
			if r < c.ExactDupRate {
				src := docs[rng.Intn(len(docs))]
				docs = append(docs, append(Doc(nil), src...))
				continue
			}
			if r < c.ExactDupRate+c.NearDupRate {
				docs = append(docs, nearCopy(rng, docs[rng.Intn(len(docs))], c, topicZ, topicWord, topicPop))
				continue
			}
		}
		docs = append(docs, freshDoc(rng, c, stopZ, topicZ, topicWord, topicPop))
	}
	return docs, nil
}

func docLen(rng *xrand.RNG, c Config) int {
	length := c.MeanLen
	if c.LenSpread > 0 {
		// Symmetric multiplicative jitter: length ~ MeanLen · exp(N(0, spread)).
		length = int(math.Round(float64(c.MeanLen) * math.Exp(rng.Norm()*c.LenSpread)))
	}
	if length < c.MinLen {
		length = c.MinLen
	}
	if length > c.MaxLen {
		length = c.MaxLen
	}
	return length
}

func freshDoc(rng *xrand.RNG, c Config, stopZ, topicZ *xrand.Zipf,
	topicWord func(t, r int) uint32, topicPop *xrand.Zipf) Doc {
	length := docLen(rng, c)
	nTopics := 1 + rng.Intn(c.TopicsPerDoc)
	topics := make([]int, nTopics)
	for i := range topics {
		topics[i] = topicPop.Sample(rng)
	}
	doc := make(Doc, 0, length)
	for len(doc) < length {
		if stopZ != nil && rng.Float64() < c.StopwordRate {
			doc = append(doc, uint32(stopZ.Sample(rng)))
			continue
		}
		t := topics[rng.Intn(nTopics)]
		doc = append(doc, topicWord(t, topicZ.Sample(rng)))
	}
	return doc
}

// nearCopy duplicates src and substitutes up to NearDupEdits tokens with
// fresh topic words, modelling re-posted articles and revised titles.
func nearCopy(rng *xrand.RNG, src Doc, c Config, topicZ *xrand.Zipf,
	topicWord func(t, r int) uint32, topicPop *xrand.Zipf) Doc {
	out := append(Doc(nil), src...)
	edits := 1 + rng.Intn(maxInt(c.NearDupEdits, 1))
	for e := 0; e < edits && len(out) > 0; e++ {
		pos := rng.Intn(len(out))
		t := topicPop.Sample(rng)
		out[pos] = topicWord(t, topicZ.Sample(rng))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Binary converts documents to binary set-of-words vectors (the DBLP
// representation of the paper: "the vector of a publication represents
// whether the corresponding word is present").
func Binary(docs []Doc) []vecmath.Vector {
	out := make([]vecmath.Vector, len(docs))
	for i, d := range docs {
		out[i] = vecmath.FromDims(d)
	}
	return out
}

// TFIDF converts documents to TF-IDF vectors: weight(t, d) = tf(t, d) ·
// ln(1 + N/df(t)). Tokens appearing in every document get small but non-zero
// weight, like the NYT/PUBMED representations.
func TFIDF(docs []Doc) ([]vecmath.Vector, error) {
	df := make(map[uint32]int)
	for _, d := range docs {
		seen := make(map[uint32]struct{}, len(d))
		for _, t := range d {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				df[t]++
			}
		}
	}
	n := float64(len(docs))
	out := make([]vecmath.Vector, len(docs))
	for i, d := range docs {
		tf := make(map[uint32]float32, len(d))
		for _, t := range d {
			tf[t]++
		}
		es := make([]vecmath.Entry, 0, len(tf))
		for t, f := range tf {
			idf := math.Log(1 + n/float64(df[t]))
			es = append(es, vecmath.Entry{Dim: t, Weight: f * float32(idf)})
		}
		v, err := vecmath.New(es)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Stats summarizes a vector collection for diagnostics and docs.
type Stats struct {
	N            int
	AvgNNZ       float64
	MinNNZ       int
	MaxNNZ       int
	DistinctDims int
}

// Describe computes collection statistics.
func Describe(vs []vecmath.Vector) Stats {
	s := Stats{N: len(vs), MinNNZ: math.MaxInt32}
	dims := make(map[uint32]struct{})
	total := 0
	for _, v := range vs {
		nnz := v.NNZ()
		total += nnz
		if nnz < s.MinNNZ {
			s.MinNNZ = nnz
		}
		if nnz > s.MaxNNZ {
			s.MaxNNZ = nnz
		}
		for _, e := range v.Entries() {
			dims[e.Dim] = struct{}{}
		}
	}
	if s.N > 0 {
		s.AvgNNZ = float64(total) / float64(s.N)
	} else {
		s.MinNNZ = 0
	}
	s.DistinctDims = len(dims)
	return s
}
