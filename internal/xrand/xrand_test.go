package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: same seed diverged: %d vs %d", i, x, y)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 equal outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must not equal the parent's continued stream.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split stream tracks parent: %d/64 equal", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance %v too far from 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestKeyedGaussianDeterministic(t *testing.T) {
	if KeyedGaussian(1, 2, 3) != KeyedGaussian(1, 2, 3) {
		t.Fatal("KeyedGaussian not deterministic")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(1, 2, 4) {
		t.Fatal("KeyedGaussian ignores dim")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(1, 3, 3) {
		t.Fatal("KeyedGaussian ignores fn")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(2, 2, 3) {
		t.Fatal("KeyedGaussian ignores seed")
	}
}

func TestKeyedGaussianMoments(t *testing.T) {
	const n = 100000
	var sum, sumsq float64
	for i := uint64(0); i < n; i++ {
		x := KeyedGaussian(99, 0, i)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("keyed gaussian mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("keyed gaussian variance %v too far from 1", variance)
	}
}

func TestKeyedUniformRange(t *testing.T) {
	f := func(seed, fn, dim uint64) bool {
		u := KeyedUniform(seed, fn, dim)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix2Mix3Sensitivity(t *testing.T) {
	f := func(a, b uint64) bool {
		// Swapping arguments should (near-always) change the output; we only
		// require the property for a != b.
		if a == b {
			return true
		}
		return Mix2(a, b) != Mix2(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b, c uint64) bool {
		return Mix3(a, b, c) == Mix3(a, b, c)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) should fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10, 0) should fail")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NewZipf(10, NaN) should fail")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(1000) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(0) <= z.Prob(99) {
		t.Errorf("rank 0 prob %v not heavier than rank 99 prob %v", z.Prob(0), z.Prob(99))
	}
	r := New(17)
	const draws = 50000
	head := 0
	for i := 0; i < draws; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
		if v < 10 {
			head++
		}
	}
	// With s=1 over 100 ranks, the top-10 mass is about 56%.
	frac := float64(head) / draws
	if frac < 0.45 || frac > 0.68 {
		t.Errorf("head mass %v outside expected band", frac)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z, err := NewZipf(20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := New(23)
	const draws = 200000
	counts := make([]int, 20)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 20; i++ {
		want := z.Prob(i) * draws
		if want < 50 {
			continue // too rare for a tight check
		}
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: observed %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkKeyedGaussian(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = KeyedGaussian(1, uint64(i), uint64(i*7))
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	z, _ := NewZipf(56000, 1.05)
	r := New(2)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample(r)
	}
	_ = sink
}

// TestRowFillsMatchAt pins the batched row fills to the per-stream At loop:
// for random (seed, fn-count, dim) triples, FillGaussRow / FillGaussRow32 /
// FillHashRow must reproduce streams[f].At(dim) bit for bit at every length
// the 4-wide unroll can take.
func TestRowFillsMatchAt(t *testing.T) {
	rng := New(99)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 20, 33, 160} {
		seed := rng.Uint64()
		gs := make([]GaussStream, n)
		hs := make([]HashStream, n)
		for f := range gs {
			gs[f] = NewGaussStream(seed, uint64(f))
			hs[f] = NewHashStream(seed, uint64(f))
		}
		g64 := make([]float64, n)
		g32 := make([]float32, n)
		h64 := make([]uint64, n)
		for rep := 0; rep < 16; rep++ {
			dim := rng.Uint64() >> uint(rep%33)
			FillGaussRow(g64, gs, dim)
			FillGaussRow32(g32, gs, dim)
			FillHashRow(h64, hs, dim)
			for f := 0; f < n; f++ {
				want := gs[f].At(dim)
				if math.Float64bits(g64[f]) != math.Float64bits(want) {
					t.Fatalf("FillGaussRow n=%d f=%d dim=%d: %v != %v", n, f, dim, g64[f], want)
				}
				if math.Float32bits(g32[f]) != math.Float32bits(float32(want)) {
					t.Fatalf("FillGaussRow32 n=%d f=%d dim=%d: %v != %v", n, f, dim, g32[f], float32(want))
				}
				if h64[f] != hs[f].At(dim) {
					t.Fatalf("FillHashRow n=%d f=%d dim=%d: %d != %d", n, f, dim, h64[f], hs[f].At(dim))
				}
			}
		}
	}
}

// BenchmarkGaussRowFill measures the batched fused-row fill at the engine's
// hot shape (k=20), against the per-stream At loop it replaces.
func BenchmarkGaussRowFill(b *testing.B) {
	gs := make([]GaussStream, 20)
	for f := range gs {
		gs[f] = NewGaussStream(7, uint64(f))
	}
	dst := make([]float64, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FillGaussRow(dst, gs, uint64(i))
	}
}

func BenchmarkGaussRowAtLoop(b *testing.B) {
	gs := make([]GaussStream, 20)
	for f := range gs {
		gs[f] = NewGaussStream(7, uint64(f))
	}
	dst := make([]float64, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := range gs {
			dst[f] = gs[f].At(uint64(i))
		}
	}
}

// TestBatchedRowsMatchRowFill pins FillGaussRows / FillGaussRows32 to the
// per-row fills bit for bit, across widths that do and don't qualify for the
// vector prep kernel and across enough rows to cover several scratch blocks
// (including a final partial one, which must not inherit stale tail flags).
func TestBatchedRowsMatchRowFill(t *testing.T) {
	rng := New(7)
	for _, k := range []int{4, 5, 7, 20} {
		for _, rows := range []int{1, 3, 8, 700} {
			seed := rng.Uint64()
			gs := make([]GaussStream, k)
			for f := range gs {
				gs[f] = NewGaussStream(seed, uint64(f))
			}
			dims := make([]uint32, rows)
			for i := range dims {
				dims[i] = uint32(rng.Uint64())
			}
			got := make([]float64, rows*k)
			FillGaussRows(got, gs, dims)
			got32 := make([]float32, rows*k)
			FillGaussRows32(got32, gs, dims)
			want := make([]float64, k)
			want32 := make([]float32, k)
			for r, d := range dims {
				FillGaussRow(want, gs, uint64(d))
				FillGaussRow32(want32, gs, uint64(d))
				for f := 0; f < k; f++ {
					if math.Float64bits(got[r*k+f]) != math.Float64bits(want[f]) {
						t.Fatalf("FillGaussRows k=%d rows=%d r=%d f=%d dim=%d: %x != %x",
							k, rows, r, f, d, math.Float64bits(got[r*k+f]), math.Float64bits(want[f]))
					}
					if math.Float32bits(got32[r*k+f]) != math.Float32bits(want32[f]) {
						t.Fatalf("FillGaussRows32 k=%d rows=%d r=%d f=%d dim=%d: %x != %x",
							k, rows, r, f, d, math.Float32bits(got32[r*k+f]), math.Float32bits(want32[f]))
					}
				}
			}
		}
	}
}
