package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: same seed diverged: %d vs %d", i, x, y)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 equal outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must not equal the parent's continued stream.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split stream tracks parent: %d/64 equal", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance %v too far from 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestKeyedGaussianDeterministic(t *testing.T) {
	if KeyedGaussian(1, 2, 3) != KeyedGaussian(1, 2, 3) {
		t.Fatal("KeyedGaussian not deterministic")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(1, 2, 4) {
		t.Fatal("KeyedGaussian ignores dim")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(1, 3, 3) {
		t.Fatal("KeyedGaussian ignores fn")
	}
	if KeyedGaussian(1, 2, 3) == KeyedGaussian(2, 2, 3) {
		t.Fatal("KeyedGaussian ignores seed")
	}
}

func TestKeyedGaussianMoments(t *testing.T) {
	const n = 100000
	var sum, sumsq float64
	for i := uint64(0); i < n; i++ {
		x := KeyedGaussian(99, 0, i)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("keyed gaussian mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("keyed gaussian variance %v too far from 1", variance)
	}
}

func TestKeyedUniformRange(t *testing.T) {
	f := func(seed, fn, dim uint64) bool {
		u := KeyedUniform(seed, fn, dim)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix2Mix3Sensitivity(t *testing.T) {
	f := func(a, b uint64) bool {
		// Swapping arguments should (near-always) change the output; we only
		// require the property for a != b.
		if a == b {
			return true
		}
		return Mix2(a, b) != Mix2(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b, c uint64) bool {
		return Mix3(a, b, c) == Mix3(a, b, c)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) should fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10, 0) should fail")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NewZipf(10, NaN) should fail")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z, err := NewZipf(1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(1000) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(0) <= z.Prob(99) {
		t.Errorf("rank 0 prob %v not heavier than rank 99 prob %v", z.Prob(0), z.Prob(99))
	}
	r := New(17)
	const draws = 50000
	head := 0
	for i := 0; i < draws; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
		if v < 10 {
			head++
		}
	}
	// With s=1 over 100 ranks, the top-10 mass is about 56%.
	frac := float64(head) / draws
	if frac < 0.45 || frac > 0.68 {
		t.Errorf("head mass %v outside expected band", frac)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z, err := NewZipf(20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := New(23)
	const draws = 200000
	counts := make([]int, 20)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i := 0; i < 20; i++ {
		want := z.Prob(i) * draws
		if want < 50 {
			continue // too rare for a tight check
		}
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("rank %d: observed %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkKeyedGaussian(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = KeyedGaussian(1, uint64(i), uint64(i*7))
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	z, _ := NewZipf(56000, 1.05)
	r := New(2)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample(r)
	}
	_ = sink
}
