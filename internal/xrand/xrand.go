// Package xrand provides the deterministic random number generation used
// throughout lshjoin: a SplitMix64 stream mixer, an xoshiro256** PRNG,
// gaussian and Zipf samplers, and stateless keyed gaussian streams that let
// LSH hash functions materialize random hyperplane components on demand
// without storing O(d) floats per function.
//
// Everything in this package is deterministic given its seed, which makes
// experiments and tests reproducible bit-for-bit across runs and platforms.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used both as a seeding primitive for RNG and
// as a stateless mixing function for keyed streams.
func SplitMix64(state uint64) (next uint64, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return state, z
}

// Mix64 hashes x through the SplitMix64 finalizer. It is a fast, high-quality
// 64-bit mixer suitable for deriving independent streams from composed keys.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix2 mixes two words into one, for keyed streams indexed by a pair
// (e.g. hash function index and dimension).
func Mix2(a, b uint64) uint64 {
	return Mix64(Mix64(a) ^ (b * 0xD6E8FEB86659FD93))
}

// Mix3 mixes three words into one.
func Mix3(a, b, c uint64) uint64 {
	return Mix64(Mix2(a, b) ^ (c * 0xA0761D6478BD642F))
}

// RNG is an xoshiro256** pseudo random number generator. The zero value is
// not usable; construct with New. RNG is not safe for concurrent use; give
// each goroutine its own instance (use Split).
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *RNG {
	var r RNG
	st := seed
	for i := range r.s {
		st, r.s[i] = SplitMix64(st)
	}
	// xoshiro requires a non-zero state; SplitMix64 output of any seed is
	// astronomically unlikely to be all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// Split derives an independent generator from r, suitable for handing to
// another goroutine or subcomponent without correlating streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x8BADF00D5EEDC0DE)
}

// SplitN derives n independent generators from r in a fixed left-to-right
// order. Sharded computations that hand stream i to shard i produce results
// that depend only on r's state and n — not on how many OS threads execute
// the shards — which is what keeps the parallel estimator samplers
// deterministic across GOMAXPROCS settings.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire multiply-shift rejection.
	thresh := -n % n // (2^64 - n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes indices [0,n) via swap using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// KeyedUniform returns a uniform float64 in [0,1) determined entirely by the
// key triple. Calls with the same triple always return the same value.
func KeyedUniform(seed, fn, dim uint64) float64 {
	return float64(Mix3(seed, fn, dim)>>11) / (1 << 53)
}

// KeyedGaussian returns a standard normal variate determined entirely by the
// key triple (seed, fn, dim). It lets a random-hyperplane hash function over
// a d-dimensional space avoid storing d gaussians: component a[dim] of
// hyperplane fn is recomputed on demand.
//
// The variate is Φ⁻¹(u) of one keyed uniform. The inverse CDF needs no
// transcendentals outside the 4.9% tail region (one rational approximation
// versus Box-Muller's sqrt+log+cos per component), which matters because LSH
// index construction evaluates this function once per (function, dimension)
// pair of the whole corpus vocabulary.
func KeyedGaussian(seed, fn, dim uint64) float64 {
	return gaussianFromHash(Mix3(seed, fn, dim))
}

// gaussianFromHash turns 64 hashed bits into the N(0,1) variate Φ⁻¹(u) of
// the implied uniform u — via the interpolation table in the central region,
// the exact rational approximation in the tails.
func gaussianFromHash(h uint64) float64 {
	// 53-bit uniform centered in its bucket: strictly inside (0, 1).
	u := (float64(h>>11) + 0.5) / (1 << 53)
	t := u * invNormSlots
	slot := int(t)
	if slot < invNormTailSlots || slot >= invNormSlots-invNormTailSlots {
		return InvNormCDF(u)
	}
	e := &invNormTab[slot]
	return e[0] + (t-float64(slot))*e[1]
}

// The interpolation table: invNormTab[s] holds Φ⁻¹(s/slots) and the slope to
// the next knot. Slots within tailSlots of either end (3.1% of the mass,
// where the quantile's curvature blows up) defer to InvNormCDF; inside, the
// piecewise-linear error is below 1.1e-5 — far under any statistical
// tolerance of the LSH estimators, and ~4× cheaper than evaluating the
// rational approximation per component.
const (
	invNormSlots     = 4096
	invNormTailSlots = 64
)

var invNormTab = func() [invNormSlots][2]float64 {
	var tab [invNormSlots][2]float64
	prev := InvNormCDF(float64(invNormTailSlots) / invNormSlots)
	for s := invNormTailSlots; s < invNormSlots-invNormTailSlots; s++ {
		next := InvNormCDF(float64(s+1) / invNormSlots)
		tab[s] = [2]float64{prev, next - prev}
		prev = next
	}
	return tab
}()

// GaussStream is a keyed gaussian stream with the (seed, fn) half of the key
// pre-mixed, for dimension-major batch hashing: At(dim) returns exactly
// KeyedGaussian(seed, fn, dim) at roughly a third of the mixing cost.
type GaussStream struct{ pre uint64 }

// NewGaussStream pre-mixes (seed, fn).
func NewGaussStream(seed, fn uint64) GaussStream {
	return GaussStream{pre: Mix2(seed, fn)}
}

// At returns KeyedGaussian(seed, fn, dim).
func (g GaussStream) At(dim uint64) float64 {
	// Identical to Mix3(seed, fn, dim) with the Mix2 prefix hoisted.
	return gaussianFromHash(Mix64(g.pre ^ (dim * 0xA0761D6478BD642F)))
}

// HashStream is the analogous pre-mixed form of KeyedHash.
type HashStream struct{ pre uint64 }

// NewHashStream pre-mixes (seed, fn).
func NewHashStream(seed, fn uint64) HashStream {
	return HashStream{pre: Mix2(seed, fn)}
}

// At returns KeyedHash(seed, fn, elem).
func (h HashStream) At(elem uint64) uint64 {
	return Mix64(h.pre ^ (elem * 0xA0761D6478BD642F))
}

// Acklam's rational approximation of the inverse normal CDF (max relative
// error 1.15e-9): a central rational polynomial for p ∈ [plow, 1−plow] and a
// sqrt(-2·log p) transformed rational in the two tails.
const invNormPLow = 0.02425

var invNormA = [6]float64{
	-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
	1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
}

var invNormB = [5]float64{
	-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
	6.680131188771972e+01, -1.328068155288572e+01,
}

var invNormC = [6]float64{
	-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
	-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
}

var invNormD = [4]float64{
	7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
	3.754408661907416e+00,
}

// InvNormCDF returns Φ⁻¹(p), the standard normal quantile of p ∈ (0, 1).
func InvNormCDF(p float64) float64 {
	a, b, c, d := &invNormA, &invNormB, &invNormC, &invNormD
	switch {
	case p < invNormPLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-invNormPLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// KeyedHash returns a 64-bit hash determined by the key triple. Used by
// MinHash to rank universe elements per hash function.
func KeyedHash(seed, fn, elem uint64) uint64 {
	return Mix3(seed, fn, elem)
}
