// Package xrand provides the deterministic random number generation used
// throughout lshjoin: a SplitMix64 stream mixer, an xoshiro256** PRNG,
// gaussian and Zipf samplers, and stateless keyed gaussian streams that let
// LSH hash functions materialize random hyperplane components on demand
// without storing O(d) floats per function.
//
// Everything in this package is deterministic given its seed, which makes
// experiments and tests reproducible bit-for-bit across runs and platforms.
package xrand

import (
	"encoding/binary"
	"math"
	"math/bits"

	"lshjoin/internal/kernel"
)

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used both as a seeding primitive for RNG and
// as a stateless mixing function for keyed streams.
func SplitMix64(state uint64) (next uint64, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return state, z
}

// Mix64 hashes x through the SplitMix64 finalizer. It is a fast, high-quality
// 64-bit mixer suitable for deriving independent streams from composed keys.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix2 mixes two words into one, for keyed streams indexed by a pair
// (e.g. hash function index and dimension).
func Mix2(a, b uint64) uint64 {
	return Mix64(Mix64(a) ^ (b * 0xD6E8FEB86659FD93))
}

// Mix3 mixes three words into one.
func Mix3(a, b, c uint64) uint64 {
	return Mix64(Mix2(a, b) ^ (c * 0xA0761D6478BD642F))
}

// RNG is an xoshiro256** pseudo random number generator. The zero value is
// not usable; construct with New. RNG is not safe for concurrent use; give
// each goroutine its own instance (use Split).
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *RNG {
	var r RNG
	st := seed
	for i := range r.s {
		st, r.s[i] = SplitMix64(st)
	}
	// xoshiro requires a non-zero state; SplitMix64 output of any seed is
	// astronomically unlikely to be all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// Split derives an independent generator from r, suitable for handing to
// another goroutine or subcomponent without correlating streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x8BADF00D5EEDC0DE)
}

// SplitN derives n independent generators from r in a fixed left-to-right
// order. Sharded computations that hand stream i to shard i produce results
// that depend only on r's state and n — not on how many OS threads execute
// the shards — which is what keeps the parallel estimator samplers
// deterministic across GOMAXPROCS settings.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire multiply-shift rejection.
	thresh := -n % n // (2^64 - n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes indices [0,n) via swap using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// KeyedUniform returns a uniform float64 in [0,1) determined entirely by the
// key triple. Calls with the same triple always return the same value.
func KeyedUniform(seed, fn, dim uint64) float64 {
	return float64(Mix3(seed, fn, dim)>>11) / (1 << 53)
}

// KeyedGaussian returns a standard normal variate determined entirely by the
// key triple (seed, fn, dim). It lets a random-hyperplane hash function over
// a d-dimensional space avoid storing d gaussians: component a[dim] of
// hyperplane fn is recomputed on demand.
//
// The variate is Φ⁻¹(u) of one keyed uniform. The inverse CDF needs no
// transcendentals outside the 4.9% tail region (one rational approximation
// versus Box-Muller's sqrt+log+cos per component), which matters because LSH
// index construction evaluates this function once per (function, dimension)
// pair of the whole corpus vocabulary.
func KeyedGaussian(seed, fn, dim uint64) float64 {
	return gaussianFromHash(Mix3(seed, fn, dim))
}

// gaussianFromHash turns 64 hashed bits into the N(0,1) variate Φ⁻¹(u) of
// the implied uniform u — via the interpolation table in the central region,
// the exact rational approximation in the tails.
func gaussianFromHash(h uint64) float64 {
	// 53-bit uniform centered in its bucket: strictly inside (0, 1).
	u := (float64(h>>11) + 0.5) / (1 << 53)
	t := u * invNormSlots
	slot := int(t)
	if slot < invNormTailSlots || slot >= invNormSlots-invNormTailSlots {
		return InvNormCDF(u)
	}
	e := &invNormTab[slot]
	return e[0] + (t-float64(slot))*e[1]
}

// The interpolation table: invNormTab[s] holds Φ⁻¹(s/slots) and the slope to
// the next knot. Slots within tailSlots of either end (3.1% of the mass,
// where the quantile's curvature blows up) defer to InvNormCDF; inside, the
// piecewise-linear error is below 1.1e-5 — far under any statistical
// tolerance of the LSH estimators, and ~4× cheaper than evaluating the
// rational approximation per component.
const (
	invNormSlots     = 4096
	invNormTailSlots = 64
)

var invNormTab = func() [invNormSlots][2]float64 {
	var tab [invNormSlots][2]float64
	prev := InvNormCDF(float64(invNormTailSlots) / invNormSlots)
	for s := invNormTailSlots; s < invNormSlots-invNormTailSlots; s++ {
		next := InvNormCDF(float64(s+1) / invNormSlots)
		tab[s] = [2]float64{prev, next - prev}
		prev = next
	}
	return tab
}()

// GaussStream is a keyed gaussian stream with the (seed, fn) half of the key
// pre-mixed, for dimension-major batch hashing: At(dim) returns exactly
// KeyedGaussian(seed, fn, dim) at roughly a third of the mixing cost.
type GaussStream struct{ pre uint64 }

// NewGaussStream pre-mixes (seed, fn).
func NewGaussStream(seed, fn uint64) GaussStream {
	return GaussStream{pre: Mix2(seed, fn)}
}

// At returns KeyedGaussian(seed, fn, dim).
func (g GaussStream) At(dim uint64) float64 {
	// Identical to Mix3(seed, fn, dim) with the Mix2 prefix hoisted.
	return gaussianFromHash(Mix64(g.pre ^ (dim * 0xA0761D6478BD642F)))
}

// HashStream is the analogous pre-mixed form of KeyedHash.
type HashStream struct{ pre uint64 }

// NewHashStream pre-mixes (seed, fn).
func NewHashStream(seed, fn uint64) HashStream {
	return HashStream{pre: Mix2(seed, fn)}
}

// At returns KeyedHash(seed, fn, elem).
func (h HashStream) At(elem uint64) uint64 {
	return Mix64(h.pre ^ (elem * 0xA0761D6478BD642F))
}

// The batched row fills below are the dimension-major form of At: one call
// fills dst[f] = streams[f].At(dim) for a whole fused row of hash functions.
// The dim half of the key mix is hoisted out of the loop and the bodies are
// unrolled 4-wide with independent mixing chains, which matters because the
// signature engine evaluates one such row per distinct corpus dimension —
// the single largest cost of an index build. Each fill is value-identical to
// the per-stream At loop (asserted by TestRowFillsMatchAt).

// FillGaussRow fills dst[f] = streams[f].At(dim) for f in [0, len(dst)).
// len(streams) must be >= len(dst).
//
// The loop body is gaussianFromHash written out by hand: the function call
// per value (it exceeds the inliner's budget because of the tail-region
// InvNormCDF call) would cost as much as the arithmetic itself, and manual
// inlining also lets independent table lookups overlap.
//
// The slot/fraction arithmetic is restated in exact integer form. With
// hv = h>>11 < 2^53, the sum float64(hv)+0.5 is exact for hv < 2^52 (53
// significand bits suffice) and rounds to even — hv + (hv&1) — when bit 52
// is set. In half-units μ (sum = μ/2), both cases are integers with ≤ 53
// significant bits, so u = μ·2⁻⁵⁴ and t = u·4096 = μ·2⁻⁴² are exact:
// int(t) is exactly μ>>42 and t−float64(slot) is exactly the low 42 bits of
// μ scaled by 2⁻⁴². Every quantity the original floating-point expressions
// produced is therefore reproduced bit for bit (TestRowFillsMatchAt
// asserts this against At, which keeps the floating-point form), while the
// table-lookup address comes off a short integer chain instead of a
// convert→mul→truncate chain.
func FillGaussRow(dst []float64, streams []GaussStream, dim uint64) {
	m := dim * 0xA0761D6478BD642F
	n := len(dst)
	streams = streams[:n]
	const fracMask = 1<<42 - 1
	// Central slots form one contiguous range, so "in table" is a single
	// unsigned compare; processing four streams per iteration keeps four
	// independent mix→slot→load chains in flight (all four land in the
	// central region ~88% of the time).
	const central = uint(invNormSlots - 2*invNormTailSlots)
	f := 0
	for ; f+4 <= n; f += 4 {
		hv1 := Mix64(streams[f].pre^m) >> 11
		hv2 := Mix64(streams[f+1].pre^m) >> 11
		hv3 := Mix64(streams[f+2].pre^m) >> 11
		hv4 := Mix64(streams[f+3].pre^m) >> 11
		b1 := hv1 >> 52 // 1 iff float64(hv)+0.5 rounds (to even)
		b2 := hv2 >> 52
		b3 := hv3 >> 52
		b4 := hv4 >> 52
		mu1 := hv1<<1 + 1 - b1 + (b1&hv1&1)<<1
		mu2 := hv2<<1 + 1 - b2 + (b2&hv2&1)<<1
		mu3 := hv3<<1 + 1 - b3 + (b3&hv3&1)<<1
		mu4 := hv4<<1 + 1 - b4 + (b4&hv4&1)<<1
		s1 := uint(mu1>>42) - invNormTailSlots
		s2 := uint(mu2>>42) - invNormTailSlots
		s3 := uint(mu3>>42) - invNormTailSlots
		s4 := uint(mu4>>42) - invNormTailSlots
		if s1 < central && s2 < central && s3 < central && s4 < central {
			e1 := &invNormTab[s1+invNormTailSlots]
			e2 := &invNormTab[s2+invNormTailSlots]
			e3 := &invNormTab[s3+invNormTailSlots]
			e4 := &invNormTab[s4+invNormTailSlots]
			dst[f] = e1[0] + float64(mu1&fracMask)*(0x1p-42)*e1[1]
			dst[f+1] = e2[0] + float64(mu2&fracMask)*(0x1p-42)*e2[1]
			dst[f+2] = e3[0] + float64(mu3&fracMask)*(0x1p-42)*e3[1]
			dst[f+3] = e4[0] + float64(mu4&fracMask)*(0x1p-42)*e4[1]
			continue
		}
		for o, v := range [4]struct {
			s  uint
			mu uint64
			hv uint64
		}{{s1, mu1, hv1}, {s2, mu2, hv2}, {s3, mu3, hv3}, {s4, mu4, hv4}} {
			if v.s < central {
				e := &invNormTab[v.s+invNormTailSlots]
				dst[f+o] = e[0] + float64(v.mu&fracMask)*(0x1p-42)*e[1]
			} else {
				dst[f+o] = gaussTail(v.hv)
			}
		}
	}
	for ; f < n; f++ {
		hv := Mix64(streams[f].pre^m) >> 11
		b := hv >> 52
		mu := hv<<1 + 1 - b + (b&hv&1)<<1
		if s := uint(mu>>42) - invNormTailSlots; s < central {
			e := &invNormTab[s+invNormTailSlots]
			dst[f] = e[0] + float64(mu&fracMask)*(0x1p-42)*e[1]
		} else {
			dst[f] = gaussTail(hv)
		}
	}
}

// FillGaussRows fills one row per dimension in dims: row r covers
// dst[r*k : (r+1)*k] with streams[f].At(dims[r]), k = len(streams). It is
// FillGaussRow hoisted over a whole panel of rows — the batch signing path
// fills tens of thousands of consecutive rows, and moving the row loop inside
// drops a call, prologue, and slice re-check per row from the hottest loop of
// an index build.
func FillGaussRows(dst []float64, streams []GaussStream, dims []uint32) {
	k := len(streams)
	if kernel.GaussPrepSize(k) && len(dims) >= 8 {
		fillGaussRowsPrep(dst, streams, dims)
		return
	}
	const fracMask = 1<<42 - 1
	const central = uint(invNormSlots - 2*invNormTailSlots)
	for r, d := range dims {
		m := uint64(d) * 0xA0761D6478BD642F
		row := dst[r*k : r*k+k : r*k+k]
		f := 0
		for ; f+4 <= k; f += 4 {
			hv1 := Mix64(streams[f].pre^m) >> 11
			hv2 := Mix64(streams[f+1].pre^m) >> 11
			hv3 := Mix64(streams[f+2].pre^m) >> 11
			hv4 := Mix64(streams[f+3].pre^m) >> 11
			b1 := hv1 >> 52 // 1 iff float64(hv)+0.5 rounds (to even)
			b2 := hv2 >> 52
			b3 := hv3 >> 52
			b4 := hv4 >> 52
			mu1 := hv1<<1 + 1 - b1 + (b1&hv1&1)<<1
			mu2 := hv2<<1 + 1 - b2 + (b2&hv2&1)<<1
			mu3 := hv3<<1 + 1 - b3 + (b3&hv3&1)<<1
			mu4 := hv4<<1 + 1 - b4 + (b4&hv4&1)<<1
			s1 := uint(mu1>>42) - invNormTailSlots
			s2 := uint(mu2>>42) - invNormTailSlots
			s3 := uint(mu3>>42) - invNormTailSlots
			s4 := uint(mu4>>42) - invNormTailSlots
			if s1 < central && s2 < central && s3 < central && s4 < central {
				e1 := &invNormTab[s1+invNormTailSlots]
				e2 := &invNormTab[s2+invNormTailSlots]
				e3 := &invNormTab[s3+invNormTailSlots]
				e4 := &invNormTab[s4+invNormTailSlots]
				row[f] = e1[0] + float64(mu1&fracMask)*(0x1p-42)*e1[1]
				row[f+1] = e2[0] + float64(mu2&fracMask)*(0x1p-42)*e2[1]
				row[f+2] = e3[0] + float64(mu3&fracMask)*(0x1p-42)*e3[1]
				row[f+3] = e4[0] + float64(mu4&fracMask)*(0x1p-42)*e4[1]
				continue
			}
			for o, v := range [4]struct {
				s  uint
				mu uint64
				hv uint64
			}{{s1, mu1, hv1}, {s2, mu2, hv2}, {s3, mu3, hv3}, {s4, mu4, hv4}} {
				if v.s < central {
					e := &invNormTab[v.s+invNormTailSlots]
					row[f+o] = e[0] + float64(v.mu&fracMask)*(0x1p-42)*e[1]
				} else {
					row[f+o] = gaussTail(v.hv)
				}
			}
		}
		for ; f < k; f++ {
			hv := Mix64(streams[f].pre^m) >> 11
			b := hv >> 52
			mu := hv<<1 + 1 - b + (b&hv&1)<<1
			if s := uint(mu>>42) - invNormTailSlots; s < central {
				e := &invNormTab[s+invNormTailSlots]
				row[f] = e[0] + float64(mu&fracMask)*(0x1p-42)*e[1]
			} else {
				row[f] = gaussTail(hv)
			}
		}
	}
}

// gaussTail is the out-of-table branch of the hand-inlined gaussianFromHash:
// reconstruct u from the hash bits and evaluate the exact inverse CDF. Kept
// out of line so the hot central path stays small.
func gaussTail(hv uint64) float64 {
	u := (float64(hv) + 0.5) / (1 << 53)
	return InvNormCDF(u)
}

// FillGaussRow32 is FillGaussRow truncated to float32 — the projection
// cache's float32 lane. Each value is float32(streams[f].At(dim)): the keyed
// stream stays float64 end to end and only the stored component narrows.
func FillGaussRow32(dst []float32, streams []GaussStream, dim uint64) {
	m := dim * 0xA0761D6478BD642F
	n := len(dst)
	streams = streams[:n]
	const fracMask = 1<<42 - 1
	for f := 0; f < n; f++ {
		hv := Mix64(streams[f].pre^m) >> 11
		b := hv >> 52
		mu := hv<<1 + 1 - b + (b&hv&1)<<1
		slot := int(mu >> 42)
		if slot < invNormTailSlots || slot >= invNormSlots-invNormTailSlots {
			dst[f] = float32(gaussTail(hv))
			continue
		}
		e := &invNormTab[slot]
		dst[f] = float32(e[0] + float64(mu&fracMask)*(0x1p-42)*e[1])
	}
}

// fillGaussRowsPrep is FillGaussRows split into three passes over blocks of
// rows: one vector kernel computes every lane's hash and exact half-unit slot
// value (pure integer work, four wide), a second does the table interpolation
// four lanes at a time while flagging tail lanes in a bitmap, and a sparse
// sweep overwrites the flagged lanes (~3% of draws) with the exact tail
// evaluation. The scratch blocks are sized to stay cache-resident, and the
// result is bit-identical to FillGaussRow: the interpolation kernel applies
// the same rounding sequence to the same hv/mu pairs, and tail lanes go
// through the identical gaussTail call.
func fillGaussRowsPrep(dst []float64, streams []GaussStream, dims []uint32) {
	k := len(streams)
	pres := make([]uint64, k)
	for f, s := range streams {
		pres[f] = s.pre
	}
	const blockRows = 256
	bn := blockRows
	if len(dims) < bn {
		bn = len(dims)
	}
	hvb := make([]uint64, bn*k)
	mub := make([]uint64, bn*k)
	tails := make([]byte, (bn*k/4+7)&^7) // one bit per lane, padded to whole words
	for r0 := 0; r0 < len(dims); r0 += blockRows {
		r1 := r0 + blockRows
		if r1 > len(dims) {
			r1 = len(dims)
		}
		n := (r1 - r0) * k // multiple of 4: GaussPrepSize requires k%4 == 0
		kernel.GaussPrep(hvb[:n], mub[:n], pres, dims[r0:r1])
		out := dst[r0*k : r0*k+n : r0*k+n]
		kernel.GaussInterp(out, mub[:n], tails, invNormTab[:], invNormTailSlots)
		ng := n / 4
		clear(tails[ng : (ng+7)&^7]) // drop stale flags from a larger previous block
		for c := 0; c < (ng+7)&^7; c += 8 {
			if binary.LittleEndian.Uint64(tails[c:c+8]) == 0 {
				continue
			}
			for o := c; o < c+8; o++ {
				m := tails[o]
				for m != 0 {
					i := o*4 + bits.TrailingZeros8(m)
					out[i] = gaussTail(hvb[i])
					m &= m - 1
				}
			}
		}
	}
}

// FillGaussRows32 is FillGaussRows in the float32 lane: row r covers
// dst[r*k : (r+1)*k] with float32(streams[f].At(dims[r])).
func FillGaussRows32(dst []float32, streams []GaussStream, dims []uint32) {
	k := len(streams)
	const fracMask = 1<<42 - 1
	for r, d := range dims {
		m := uint64(d) * 0xA0761D6478BD642F
		row := dst[r*k : r*k+k : r*k+k]
		for f := 0; f < k; f++ {
			hv := Mix64(streams[f].pre^m) >> 11
			b := hv >> 52
			mu := hv<<1 + 1 - b + (b&hv&1)<<1
			slot := int(mu >> 42)
			if slot < invNormTailSlots || slot >= invNormSlots-invNormTailSlots {
				row[f] = float32(gaussTail(hv))
				continue
			}
			e := &invNormTab[slot]
			row[f] = float32(e[0] + float64(mu&fracMask)*(0x1p-42)*e[1])
		}
	}
}

// FillHashRow fills dst[f] = streams[f].At(elem) for f in [0, len(dst)).
func FillHashRow(dst []uint64, streams []HashStream, elem uint64) {
	m := elem * 0xA0761D6478BD642F
	n := len(dst)
	streams = streams[:n]
	f := 0
	for ; f+4 <= n; f += 4 {
		dst[f] = Mix64(streams[f].pre ^ m)
		dst[f+1] = Mix64(streams[f+1].pre ^ m)
		dst[f+2] = Mix64(streams[f+2].pre ^ m)
		dst[f+3] = Mix64(streams[f+3].pre ^ m)
	}
	for ; f < n; f++ {
		dst[f] = Mix64(streams[f].pre ^ m)
	}
}

// Acklam's rational approximation of the inverse normal CDF (max relative
// error 1.15e-9): a central rational polynomial for p ∈ [plow, 1−plow] and a
// sqrt(-2·log p) transformed rational in the two tails.
const invNormPLow = 0.02425

var invNormA = [6]float64{
	-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
	1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
}

var invNormB = [5]float64{
	-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
	6.680131188771972e+01, -1.328068155288572e+01,
}

var invNormC = [6]float64{
	-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
	-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
}

var invNormD = [4]float64{
	7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
	3.754408661907416e+00,
}

// InvNormCDF returns Φ⁻¹(p), the standard normal quantile of p ∈ (0, 1).
func InvNormCDF(p float64) float64 {
	a, b, c, d := &invNormA, &invNormB, &invNormC, &invNormD
	switch {
	case p < invNormPLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-invNormPLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// KeyedHash returns a 64-bit hash determined by the key triple. Used by
// MinHash to rank universe elements per hash function.
func KeyedHash(seed, fn, elem uint64) uint64 {
	return Mix3(seed, fn, elem)
}
