// Package xrand provides the deterministic random number generation used
// throughout lshjoin: a SplitMix64 stream mixer, an xoshiro256** PRNG,
// gaussian and Zipf samplers, and stateless keyed gaussian streams that let
// LSH hash functions materialize random hyperplane components on demand
// without storing O(d) floats per function.
//
// Everything in this package is deterministic given its seed, which makes
// experiments and tests reproducible bit-for-bit across runs and platforms.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used both as a seeding primitive for RNG and
// as a stateless mixing function for keyed streams.
func SplitMix64(state uint64) (next uint64, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return state, z
}

// Mix64 hashes x through the SplitMix64 finalizer. It is a fast, high-quality
// 64-bit mixer suitable for deriving independent streams from composed keys.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix2 mixes two words into one, for keyed streams indexed by a pair
// (e.g. hash function index and dimension).
func Mix2(a, b uint64) uint64 {
	return Mix64(Mix64(a) ^ (b * 0xD6E8FEB86659FD93))
}

// Mix3 mixes three words into one.
func Mix3(a, b, c uint64) uint64 {
	return Mix64(Mix2(a, b) ^ (c * 0xA0761D6478BD642F))
}

// RNG is an xoshiro256** pseudo random number generator. The zero value is
// not usable; construct with New. RNG is not safe for concurrent use; give
// each goroutine its own instance (use Split).
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *RNG {
	var r RNG
	st := seed
	for i := range r.s {
		st, r.s[i] = SplitMix64(st)
	}
	// xoshiro requires a non-zero state; SplitMix64 output of any seed is
	// astronomically unlikely to be all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// Split derives an independent generator from r, suitable for handing to
// another goroutine or subcomponent without correlating streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x8BADF00D5EEDC0DE)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire multiply-shift rejection.
	thresh := -n % n // (2^64 - n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= thresh {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes indices [0,n) via swap using Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// KeyedUniform returns a uniform float64 in [0,1) determined entirely by the
// key triple. Calls with the same triple always return the same value.
func KeyedUniform(seed, fn, dim uint64) float64 {
	return float64(Mix3(seed, fn, dim)>>11) / (1 << 53)
}

// KeyedGaussian returns a standard normal variate determined entirely by the
// key triple (seed, fn, dim). It lets a random-hyperplane hash function over
// a d-dimensional space avoid storing d gaussians: component a[dim] of
// hyperplane fn is recomputed on demand. Box-Muller over two keyed uniforms.
func KeyedGaussian(seed, fn, dim uint64) float64 {
	h := Mix3(seed, fn, dim)
	// Derive two independent uniforms from h.
	u1 := float64(Mix64(h^0x5851F42D4C957F2D)>>11) / (1 << 53)
	u2 := float64(Mix64(h^0x14057B7EF767814F)>>11) / (1 << 53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// KeyedHash returns a 64-bit hash determined by the key triple. Used by
// MinHash to rank universe elements per hash function.
func KeyedHash(seed, fn, elem uint64) uint64 {
	return Mix3(seed, fn, elem)
}
