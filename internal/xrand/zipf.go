package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution once and samples
// by binary search, which is simple, exact, and fast enough for corpus
// generation (O(log n) per draw). Construct with NewZipf.
type Zipf struct {
	cdf []float64
	n   int
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xrand: Zipf needs n > 0, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("xrand: Zipf needs finite s > 0, got %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, n: n}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Sample draws one rank using rng.
func (z *Zipf) Sample(rng *RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
