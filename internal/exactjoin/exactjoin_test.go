package exactjoin

import (
	"testing"

	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

func randCollection(n, dims, nnz int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		m := 1 + rng.Intn(nnz)
		ds := make([]uint32, 0, m)
		for j := 0; j < m; j++ {
			ds = append(ds, uint32(rng.Intn(dims)))
		}
		data[i] = vecmath.FromDims(ds)
	}
	// Inject a few exact duplicates so τ = 1.0 is non-trivial.
	if n > 10 {
		data[1] = data[0]
		data[7] = data[5]
	}
	return data
}

func randWeighted(n, dims, nnz int, seed uint64) []vecmath.Vector {
	rng := xrand.New(seed)
	data := make([]vecmath.Vector, n)
	for i := range data {
		m := 1 + rng.Intn(nnz)
		es := make([]vecmath.Entry, 0, m)
		for j := 0; j < m; j++ {
			es = append(es, vecmath.Entry{
				Dim:    uint32(rng.Intn(dims)),
				Weight: float32(rng.Float64()*2 + 0.1),
			})
		}
		v, err := vecmath.New(es)
		if err != nil {
			panic(err)
		}
		data[i] = v
	}
	return data
}

func TestCountsValidation(t *testing.T) {
	j := NewJoiner(randCollection(10, 20, 4, 1))
	if _, err := j.Counts([]float64{0}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := j.Counts([]float64{1.5}); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestCountsMatchBruteForceBinary(t *testing.T) {
	data := randCollection(300, 40, 8, 3)
	j := NewJoiner(data)
	taus := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	got, err := j.Counts(taus)
	if err != nil {
		t.Fatal(err)
	}
	for i, tau := range taus {
		want := BruteForceCount(data, tau)
		if got[i] != want {
			t.Errorf("tau=%v: Counts=%d brute=%d", tau, got[i], want)
		}
	}
}

func TestCountsMatchBruteForceWeighted(t *testing.T) {
	data := randWeighted(200, 30, 10, 7)
	j := NewJoiner(data)
	taus := []float64{0.2, 0.4, 0.6, 0.8}
	got, err := j.Counts(taus)
	if err != nil {
		t.Fatal(err)
	}
	for i, tau := range taus {
		want := BruteForceCount(data, tau)
		if got[i] != want {
			t.Errorf("tau=%v: Counts=%d brute=%d", tau, got[i], want)
		}
	}
}

func TestCountsUnsortedThresholdsAndDuplicates(t *testing.T) {
	data := randCollection(150, 30, 6, 11)
	j := NewJoiner(data)
	got, err := j.Counts([]float64{0.9, 0.3, 0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[2] {
		t.Errorf("duplicate thresholds disagree: %v", got)
	}
	w3, _ := j.CountAt(0.3)
	w5, _ := j.CountAt(0.5)
	w9, _ := j.CountAt(0.9)
	if got[1] != w3 || got[3] != w5 || got[0] != w9 {
		t.Errorf("unsorted thresholds wrong: %v vs %d %d %d", got, w3, w5, w9)
	}
}

func TestCountsMonotoneInThreshold(t *testing.T) {
	data := randCollection(400, 50, 7, 13)
	j := NewJoiner(data)
	taus := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	got, err := j.Counts(taus)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Errorf("counts increased from τ=%v (%d) to τ=%v (%d)", taus[i-1], got[i-1], taus[i], got[i])
		}
	}
}

func TestCountAtOneFindsDuplicates(t *testing.T) {
	data := randCollection(50, 100, 5, 17) // duplicates injected at (0,1) and (5,7)
	j := NewJoiner(data)
	got, err := j.CountAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForceCount(data, 1.0)
	if got != want {
		t.Errorf("duplicates at τ=1: got %d, want %d", got, want)
	}
	if want < 2 {
		t.Fatalf("test setup lost its duplicates: brute=%d", want)
	}
}

func TestHistogramMatchesBruteForce(t *testing.T) {
	data := randCollection(200, 35, 6, 19)
	j := NewJoiner(data)
	edges := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	got, err := j.Histogram(edges)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForceHistogram(data, edges)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("bin %d: got %d, want %d (all: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	j := NewJoiner(randCollection(10, 20, 4, 1))
	if _, err := j.Histogram([]float64{0.5}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := j.Histogram([]float64{0.5, 0.4}); err == nil {
		t.Error("descending edges accepted")
	}
	if _, err := j.Histogram([]float64{0, 0.5}); err == nil {
		t.Error("zero edge accepted")
	}
}

func TestPairsMatchBruteForce(t *testing.T) {
	for _, seed := range []uint64{23, 29, 31} {
		data := randCollection(150, 30, 6, seed)
		j := NewJoiner(data)
		for _, tau := range []float64{0.4, 0.7, 0.9} {
			pairs, err := j.Pairs(tau)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[[2]int32]bool{}
			for _, p := range pairs {
				if p.U >= p.V {
					t.Fatalf("pair not ordered: %+v", p)
				}
				key := [2]int32{p.U, p.V}
				if seen[key] {
					t.Fatalf("duplicate pair %v", key)
				}
				seen[key] = true
				if s := vecmath.Cosine(data[p.U], data[p.V]); s < tau {
					t.Fatalf("pair %v has sim %v < %v", key, s, tau)
				}
			}
			if want := BruteForceCount(data, tau); int64(len(pairs)) != want {
				t.Errorf("seed=%d tau=%v: got %d pairs, want %d", seed, tau, len(pairs), want)
			}
		}
	}
}

func TestPairsWeightedMatchBruteForce(t *testing.T) {
	data := randWeighted(120, 25, 8, 37)
	j := NewJoiner(data)
	for _, tau := range []float64{0.3, 0.6, 0.85} {
		pairs, err := j.Pairs(tau)
		if err != nil {
			t.Fatal(err)
		}
		if want := BruteForceCount(data, tau); int64(len(pairs)) != want {
			t.Errorf("tau=%v: got %d pairs, want %d", tau, len(pairs), want)
		}
	}
}

func TestPairsValidation(t *testing.T) {
	j := NewJoiner(randCollection(10, 20, 4, 1))
	if _, err := j.Pairs(0); err == nil {
		t.Error("tau 0 accepted")
	}
	if _, err := j.Pairs(1.1); err == nil {
		t.Error("tau > 1 accepted")
	}
}

func TestZeroVectorsMatchNothing(t *testing.T) {
	data := []vecmath.Vector{{}, {}, vecmath.FromDims([]uint32{1})}
	j := NewJoiner(data)
	c, err := j.CountAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("zero vectors produced %d pairs", c)
	}
}

func TestJoinerSizes(t *testing.T) {
	data := randCollection(25, 20, 4, 41)
	j := NewJoiner(data)
	if j.N() != 25 {
		t.Errorf("N = %d", j.N())
	}
	if j.M() != 300 {
		t.Errorf("M = %d, want C(25,2)=300", j.M())
	}
}
