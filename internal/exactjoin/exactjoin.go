// Package exactjoin computes exact vector similarity join results. It is
// the ground truth against which every estimator in lshjoin is evaluated,
// and doubles as the exact join-processing substrate whose cost the paper's
// motivating query optimizer would weigh against alternative plans.
//
// Two engines are provided:
//
//   - Joiner.Counts / Joiner.Histogram: exact pair counts above thresholds
//     via inverted-index score accumulation (doc-at-a-time with epoch
//     accumulators), O(Σ_t df(t)²) instead of O(n²·nnz).
//   - Joiner.Pairs: materializes all pairs above a threshold using the
//     All-Pairs style prefix filter (Bayardo et al.) with a max-weight bound.
//
// BruteForceCount is the O(n²) reference used by tests to validate both.
package exactjoin

import (
	"fmt"
	"sort"

	"lshjoin/internal/vecmath"
)

// Joiner precomputes normalized vectors and an inverted index over one
// collection. Build once, query many thresholds.
type Joiner struct {
	n        int
	normed   []vecmath.Vector
	postings map[uint32][]posting // dim → postings sorted by doc id
}

type posting struct {
	doc    int32
	weight float32
}

// NewJoiner normalizes data to unit vectors (zero vectors stay zero; they
// match nothing since cos with a zero vector is defined as 0) and builds the
// inverted index.
func NewJoiner(data []vecmath.Vector) *Joiner {
	j := &Joiner{
		n:        len(data),
		normed:   make([]vecmath.Vector, len(data)),
		postings: make(map[uint32][]posting),
	}
	for i, v := range data {
		nv := v.Normalized()
		j.normed[i] = nv
		for _, e := range nv.Entries() {
			j.postings[e.Dim] = append(j.postings[e.Dim], posting{doc: int32(i), weight: e.Weight})
		}
	}
	return j
}

// N returns the collection size.
func (j *Joiner) N() int { return j.n }

// M returns the number of unordered pairs C(n, 2).
func (j *Joiner) M() int64 { return int64(j.n) * int64(j.n-1) / 2 }

// Counts returns, for each threshold, the exact number of unordered pairs
// (u, v), u ≠ v with cos(u, v) ≥ τ. Thresholds must be strictly positive
// (pairs with no shared dimension have cos = 0 and are never enumerated) and
// are handled in one accumulation pass regardless of how many there are.
func (j *Joiner) Counts(thresholds []float64) ([]int64, error) {
	for _, t := range thresholds {
		if t <= 0 || t > 1 {
			return nil, fmt.Errorf("exactjoin: thresholds must be in (0, 1], got %v", t)
		}
	}
	sorted := append([]float64(nil), thresholds...)
	sort.Float64s(sorted)
	// bins[i] counts pairs with sorted[i] ≤ sim < sorted[i+1].
	bins := make([]int64, len(sorted))
	j.scan(func(sim float64) {
		// Index of the largest threshold ≤ sim.
		i := sort.SearchFloat64s(sorted, sim)
		if i < len(sorted) && sorted[i] == sim {
			// sim exactly equals a threshold: it belongs to that bin.
		} else {
			i--
		}
		if i >= 0 {
			if i >= len(bins) {
				i = len(bins) - 1
			}
			bins[i]++
		}
	})
	// Suffix sums: count at sorted[i] = Σ_{k ≥ i} bins[k].
	suffix := make([]int64, len(sorted))
	var acc int64
	for i := len(sorted) - 1; i >= 0; i-- {
		acc += bins[i]
		suffix[i] = acc
	}
	out := make([]int64, len(thresholds))
	for i, t := range thresholds {
		k := sort.SearchFloat64s(sorted, t)
		out[i] = suffix[k]
	}
	return out, nil
}

// CountAt returns the exact join size at a single threshold.
func (j *Joiner) CountAt(tau float64) (int64, error) {
	c, err := j.Counts([]float64{tau})
	if err != nil {
		return 0, err
	}
	return c[0], nil
}

// Histogram returns counts of pair similarities falling into
// [edges[i], edges[i+1]) for i < len(edges)-1, with the last bin closed at 1.
// Edges must be ascending and start above 0.
func (j *Joiner) Histogram(edges []float64) ([]int64, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("exactjoin: need at least two edges")
	}
	for i, e := range edges {
		if e <= 0 || e > 1 {
			return nil, fmt.Errorf("exactjoin: edges must be in (0, 1], got %v", e)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("exactjoin: edges must be strictly ascending")
		}
	}
	bins := make([]int64, len(edges)-1)
	j.scan(func(sim float64) {
		i := sort.SearchFloat64s(edges, sim)
		if i < len(edges) && edges[i] == sim {
			// exact edge belongs to the bin it opens
		} else {
			i--
		}
		if i < 0 {
			return
		}
		if i >= len(bins) {
			i = len(bins) - 1 // sim == 1 on the closing edge
		}
		bins[i]++
	})
	return bins, nil
}

// scan invokes fn once per unordered pair with positive dot product, passing
// the exact cosine similarity. Pairs with zero overlap are never visited.
func (j *Joiner) scan(fn func(sim float64)) {
	acc := make([]float64, j.n)
	epoch := make([]int32, j.n)
	touched := make([]int32, 0, 1024)
	var cur int32
	// Process docs in increasing id; postings are naturally sorted by id, so
	// accumulating only over postings with doc < u covers each pair once.
	for u := 0; u < j.n; u++ {
		cur++
		touched = touched[:0]
		for _, e := range j.normed[u].Entries() {
			for _, p := range j.postings[e.Dim] {
				if int(p.doc) >= u {
					break
				}
				if epoch[p.doc] != cur {
					epoch[p.doc] = cur
					acc[p.doc] = 0
					touched = append(touched, p.doc)
				}
				acc[p.doc] += float64(e.Weight) * float64(p.weight)
			}
		}
		for _, v := range touched {
			s := acc[v]
			// Normalized weights are float32, so a duplicate pair accumulates
			// to 1 ± ~1e-6; snap so τ = 1.0 counts duplicates exactly.
			if s > 1-5e-6 {
				s = 1
			}
			if s > 0 {
				fn(s)
			}
		}
	}
}

// Pair is an unordered result pair with its similarity.
type Pair struct {
	U, V int32
	Sim  float64
}

// Pairs materializes every pair with cos ≥ tau using the All-Pairs prefix
// filter (Bayardo et al.): per-document entries are ordered rare-feature
// first, a document indexes only the leading entries whose remaining suffix
// could still reach tau against any other document (bounded by per-dimension
// max weights), and candidates are verified with a full dot product. With
// frequent features relegated to the unindexed suffix, their huge posting
// lists never generate candidates.
func (j *Joiner) Pairs(tau float64) ([]Pair, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("exactjoin: tau must be in (0, 1], got %v", tau)
	}
	// Per-dimension max weight over the normalized collection.
	maxw := make(map[uint32]float64, len(j.postings))
	for dim, ps := range j.postings {
		m := 0.0
		for _, p := range ps {
			if w := float64(p.weight); w > m {
				m = w
			}
		}
		maxw[dim] = m
	}
	// Per-document entries reordered by ascending document frequency so that
	// the indexed prefix holds the rarest (cheapest) features.
	ordered := make([][]vecmath.Entry, j.n)
	for u := 0; u < j.n; u++ {
		es := append([]vecmath.Entry(nil), j.normed[u].Entries()...)
		sort.Slice(es, func(a, b int) bool {
			da, db := len(j.postings[es[a].Dim]), len(j.postings[es[b].Dim])
			if da != db {
				return da < db
			}
			return es[a].Dim < es[b].Dim
		})
		ordered[u] = es
	}
	type idxEntry struct {
		doc    int32
		weight float32
	}
	index := make(map[uint32][]idxEntry)
	acc := make([]float64, j.n)
	epoch := make([]int32, j.n)
	touched := make([]int32, 0, 256)
	var cur int32
	var out []Pair
	for u := 0; u < j.n; u++ {
		uv := j.normed[u]
		cur++
		touched = touched[:0]
		// Candidate generation: match all of u's dims against indexed prefixes.
		for _, e := range uv.Entries() {
			for _, p := range index[e.Dim] {
				if epoch[p.doc] != cur {
					epoch[p.doc] = cur
					acc[p.doc] = 0
					touched = append(touched, p.doc)
				}
				acc[p.doc] += float64(e.Weight) * float64(p.weight)
			}
		}
		for _, v := range touched {
			if acc[v] <= 0 {
				continue
			}
			s := vecmath.Dot(uv, j.normed[v])
			if s > 1-5e-6 {
				s = 1
			}
			if s >= tau {
				out = append(out, Pair{U: v, V: int32(u), Sim: s})
			}
		}
		// Index u's prefix (in rare-first order): entries are kept while the
		// remaining suffix could still reach tau against some other vector.
		// b is the upper bound on the dot product achievable by the suffix
		// starting at position i; once b < tau, any pair matching only the
		// suffix cannot reach tau, so the (frequent) suffix stays unindexed.
		entries := ordered[u]
		b := 0.0
		for i := len(entries) - 1; i >= 0; i-- {
			b += float64(entries[i].Weight) * maxw[entries[i].Dim]
		}
		for _, e := range entries {
			if b < tau {
				break
			}
			index[e.Dim] = append(index[e.Dim], idxEntry{doc: int32(u), weight: e.Weight})
			b -= float64(e.Weight) * maxw[e.Dim]
		}
	}
	return out, nil
}

// BruteForceCount computes the join size at tau by comparing all pairs.
// O(n²) — for tests and tiny collections only.
func BruteForceCount(data []vecmath.Vector, tau float64) int64 {
	var c int64
	for i := 0; i < len(data); i++ {
		for k := i + 1; k < len(data); k++ {
			if vecmath.Cosine(data[i], data[k]) >= tau {
				c++
			}
		}
	}
	return c
}

// BruteForceHistogram bins all pair similarities; reference for Histogram.
func BruteForceHistogram(data []vecmath.Vector, edges []float64) []int64 {
	bins := make([]int64, len(edges)-1)
	for i := 0; i < len(data); i++ {
		for k := i + 1; k < len(data); k++ {
			s := vecmath.Cosine(data[i], data[k])
			idx := sort.SearchFloat64s(edges, s)
			if !(idx < len(edges) && edges[idx] == s) {
				idx--
			}
			if idx < 0 {
				continue
			}
			if idx >= len(bins) {
				idx = len(bins) - 1
			}
			bins[idx]++
		}
	}
	return bins
}
