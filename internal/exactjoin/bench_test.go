package exactjoin

import "testing"

// BenchmarkCounts measures the inverted-index exact count pass (all
// thresholds amortized into one scan).
func BenchmarkCounts(b *testing.B) {
	data := randCollection(3000, 2000, 14, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewJoiner(data)
		if _, err := j.Counts([]float64{0.1, 0.5, 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairsHighThreshold measures the prefix-filtered join where the
// filter is strongest.
func BenchmarkPairsHighThreshold(b *testing.B) {
	data := randCollection(3000, 2000, 14, 1)
	j := NewJoiner(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Pairs(0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairsMidThreshold measures the join at a permissive threshold.
func BenchmarkPairsMidThreshold(b *testing.B) {
	data := randCollection(1500, 2000, 14, 1)
	j := NewJoiner(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Pairs(0.5); err != nil {
			b.Fatal(err)
		}
	}
}
