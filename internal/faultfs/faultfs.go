// Package faultfs abstracts the handful of filesystem operations the
// durability layer (internal/lsh/persist) needs — create/append/rename/
// remove plus explicit file and directory fsync — behind an interface with
// two implementations:
//
//   - OS delegates to the os package and is what production collections run
//     on. Sync and SyncDir map to fsync(2) on the file and its directory, the
//     two barriers the crash-consistency argument rests on.
//   - MemFS (memfs.go) is an in-memory filesystem that models the durability
//     semantics of a real disk — written-but-unsynced data and directory
//     entries are tracked separately from synced state — and can inject
//     write faults (error, short write, ENOSPC, failed sync, silent bit
//     flip, hard crash) at the N-th mutating operation. The persist crash
//     property tests drive every injection point of a recorded workload
//     through it.
//
// The interface is deliberately tiny: no seeks, no partial reads, no
// permissions. Whole-file reads plus append-only writes are all the snapshot
// and delta-log formats need, and a small surface keeps the fault model
// honest (every mutating operation is countable and injectable).
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the durability layer runs on.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of name. A missing file reports
	// fs.ErrNotExist via errors.Is.
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing, truncating any existing contents.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// new directory entry requires a subsequent SyncDir.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// SyncDir fsyncs dir, making its current entries (creates, renames,
	// removes) durable.
	SyncDir(dir string) error
}

// File is an open writable file. Writes are not durable until Sync returns;
// Close does NOT imply Sync.
type File interface {
	io.Writer
	// Sync makes all data written so far durable (fsync).
	Sync() error
	// Close releases the handle without syncing.
	Close() error
}

// OS is the production FS over the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// IsNotExist reports whether err means "file or directory does not exist"
// for either implementation.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// Dir returns the directory component of path (filepath.Dir).
func Dir(path string) string { return filepath.Dir(path) }
