package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// ErrInjected marks every failure produced by a MemFS fault plan, including
// all operations attempted after a ModeCrash point ("the disk is gone").
var ErrInjected = errors.New("faultfs: injected fault")

// ErrNoSpace is the injected analogue of ENOSPC.
var ErrNoSpace = fmt.Errorf("faultfs: no space left on device: %w", ErrInjected)

// Mode selects the failure shape injected at the planned operation.
type Mode int

const (
	// ModeNone disables injection.
	ModeNone Mode = iota
	// ModeCrash stops the disk: the planned operation and every later one
	// fail with ErrInjected, leaving all state exactly as it was.
	ModeCrash
	// ModeErr fails the planned operation with ErrInjected and no effect;
	// later operations succeed (a transient I/O error).
	ModeErr
	// ModeShortWrite applies only the first half of the planned write's
	// buffer, then reports ErrInjected.
	ModeShortWrite
	// ModeNoSpace fails the planned operation with ErrNoSpace and no effect.
	ModeNoSpace
	// ModeSyncErr fails the planned Sync or SyncDir: the data stays written
	// but does not become durable.
	ModeSyncErr
	// ModeBitFlip applies the planned write with one bit flipped and
	// reports success — silent media corruption.
	ModeBitFlip
)

// String implements fmt.Stringer for test names.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeCrash:
		return "crash"
	case ModeErr:
		return "err"
	case ModeShortWrite:
		return "short_write"
	case ModeNoSpace:
		return "enospc"
	case ModeSyncErr:
		return "sync_err"
	case ModeBitFlip:
		return "bit_flip"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Plan injects Mode at the Op-th mutating operation (1-based, as counted by
// Ops). When the Op-th operation is not eligible for the mode — a bit flip
// or short write needs a Write, a sync error needs a Sync/SyncDir — the
// injection fires at the next eligible operation instead.
type Plan struct {
	Op   int
	Mode Mode
}

type opKind int

const (
	opWrite opKind = iota
	opSync
	opSyncDir
	opCreate
	opAppend
	opRename
	opRemove
	opMkdir
)

func eligible(m Mode, k opKind) bool {
	switch m {
	case ModeShortWrite, ModeBitFlip:
		return k == opWrite
	case ModeSyncErr:
		return k == opSync || k == opSyncDir
	default:
		return true
	}
}

type action int

const (
	actNone action = iota
	actFail
	actNoSpace
	actShort
	actFlip
)

// inode is one file's contents: cur is what a reader of the live filesystem
// sees, synced is what survives a power loss (the prefix made durable by the
// last Sync).
type inode struct {
	cur    []byte
	synced []byte
}

// memDir tracks a directory's entries the same way: cur is the live name
// set, synced the set made durable by the last SyncDir.
type memDir struct {
	cur    map[string]*inode
	synced map[string]*inode
}

// MemFS is an in-memory FS that models fsync-granular durability and
// injects write faults. Directories themselves are durable once created
// (MkdirAll survives Crash); files and directory entries are durable only up
// to their last Sync / SyncDir. All methods are safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	dirs  map[string]*memDir
	plan  Plan
	fired bool
	down  bool // ModeCrash hit: every subsequent op fails
	ops   int
	gen   int // incremented by Crash; stale file handles then fail
}

// NewMem returns an empty MemFS with no fault plan.
func NewMem() *MemFS {
	return &MemFS{dirs: make(map[string]*memDir)}
}

// SetPlan installs the fault plan (replacing any previous one) and resets
// the operation counter, so Plan.Op counts from the next operation.
func (m *MemFS) SetPlan(p Plan) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.plan, m.fired, m.ops = p, false, 0
}

// Ops returns the number of mutating operations performed since NewMem or
// the last SetPlan — the sweep bound for exhaustive injection.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crash simulates a power loss and brings the filesystem back up. With
// keepUnsynced, everything written survives (the kind crash: all caches made
// it to media); otherwise state rolls back to what Sync and SyncDir made
// durable. Any fault plan is cleared and outstanding file handles are
// invalidated.
func (m *MemFS) Crash(keepUnsynced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	m.down, m.fired, m.plan = false, false, Plan{}
	if keepUnsynced {
		return
	}
	for _, d := range m.dirs {
		d.cur = make(map[string]*inode, len(d.synced))
		for name, node := range d.synced {
			node.cur = append([]byte(nil), node.synced...)
			d.cur[name] = node
		}
	}
}

// arm counts one mutating operation and decides whether the plan fires on
// it. Callers hold m.mu.
func (m *MemFS) arm(k opKind) action {
	if m.down {
		return actFail
	}
	m.ops++
	if m.plan.Mode == ModeNone || m.fired || m.ops < m.plan.Op || !eligible(m.plan.Mode, k) {
		return actNone
	}
	m.fired = true
	switch m.plan.Mode {
	case ModeCrash:
		m.down = true
		return actFail
	case ModeErr, ModeSyncErr:
		return actFail
	case ModeNoSpace:
		return actNoSpace
	case ModeShortWrite:
		return actShort
	case ModeBitFlip:
		return actFlip
	}
	return actNone
}

func (m *MemFS) dir(path string) *memDir { return m.dirs[filepath.Clean(path)] }

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if act := m.arm(opMkdir); act != actNone {
		if act == actNoSpace {
			return ErrNoSpace
		}
		return fmt.Errorf("mkdir %s: %w", dir, ErrInjected)
	}
	p := filepath.Clean(dir)
	for {
		if m.dirs[p] == nil {
			m.dirs[p] = &memDir{cur: map[string]*inode{}, synced: map[string]*inode{}}
		}
		parent := filepath.Dir(p)
		if parent == p {
			return nil
		}
		p = parent
	}
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, fmt.Errorf("readdir %s: %w", dir, ErrInjected)
	}
	d := m.dir(dir)
	if d == nil {
		return nil, fmt.Errorf("readdir %s: %w", dir, fs.ErrNotExist)
	}
	names := make([]string, 0, len(d.cur))
	for name := range d.cur {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, fmt.Errorf("read %s: %w", name, ErrInjected)
	}
	node := m.lookup(name)
	if node == nil {
		return nil, fmt.Errorf("read %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), node.cur...), nil
}

func (m *MemFS) lookup(name string) *inode {
	d := m.dir(filepath.Dir(name))
	if d == nil {
		return nil
	}
	return d.cur[filepath.Base(name)]
}

func (m *MemFS) open(name string, k opKind, truncate bool) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if act := m.arm(k); act != actNone {
		if act == actNoSpace {
			return nil, ErrNoSpace
		}
		return nil, fmt.Errorf("open %s: %w", name, ErrInjected)
	}
	d := m.dir(filepath.Dir(name))
	if d == nil {
		return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
	}
	base := filepath.Base(name)
	node := d.cur[base]
	if node == nil || truncate {
		// Truncation allocates a fresh inode so the synced directory entry
		// (if any) keeps pointing at the old durable contents.
		node = &inode{}
		d.cur[base] = node
	}
	return &memFile{fs: m, node: node, gen: m.gen, name: name}, nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) { return m.open(name, opCreate, true) }

// Append implements FS.
func (m *MemFS) Append(name string) (File, error) { return m.open(name, opAppend, false) }

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if act := m.arm(opRename); act != actNone {
		if act == actNoSpace {
			return ErrNoSpace
		}
		return fmt.Errorf("rename %s: %w", oldpath, ErrInjected)
	}
	od := m.dir(filepath.Dir(oldpath))
	nd := m.dir(filepath.Dir(newpath))
	if od == nil || nd == nil {
		return fmt.Errorf("rename %s: %w", oldpath, fs.ErrNotExist)
	}
	node := od.cur[filepath.Base(oldpath)]
	if node == nil {
		return fmt.Errorf("rename %s: %w", oldpath, fs.ErrNotExist)
	}
	delete(od.cur, filepath.Base(oldpath))
	nd.cur[filepath.Base(newpath)] = node
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if act := m.arm(opRemove); act != actNone {
		if act == actNoSpace {
			return ErrNoSpace
		}
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	d := m.dir(filepath.Dir(name))
	if d == nil || d.cur[filepath.Base(name)] == nil {
		return fmt.Errorf("remove %s: %w", name, fs.ErrNotExist)
	}
	delete(d.cur, filepath.Base(name))
	return nil
}

// SyncDir implements FS.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if act := m.arm(opSyncDir); act != actNone {
		if act == actNoSpace {
			return ErrNoSpace
		}
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	d := m.dir(dir)
	if d == nil {
		return fmt.Errorf("syncdir %s: %w", dir, fs.ErrNotExist)
	}
	d.synced = make(map[string]*inode, len(d.cur))
	for name, node := range d.cur {
		d.synced[name] = node
	}
	return nil
}

type memFile struct {
	fs     *MemFS
	node   *inode
	gen    int
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed || f.gen != f.fs.gen {
		return 0, fmt.Errorf("write %s: stale handle: %w", f.name, ErrInjected)
	}
	switch f.fs.arm(opWrite) {
	case actFail:
		return 0, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	case actNoSpace:
		return 0, ErrNoSpace
	case actShort:
		h := len(p) / 2
		f.node.cur = append(f.node.cur, p[:h]...)
		return h, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	case actFlip:
		q := append([]byte(nil), p...)
		if len(q) > 0 {
			q[len(q)/2] ^= 0x10
		}
		f.node.cur = append(f.node.cur, q...)
		return len(p), nil
	}
	f.node.cur = append(f.node.cur, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed || f.gen != f.fs.gen {
		return fmt.Errorf("sync %s: stale handle: %w", f.name, ErrInjected)
	}
	if act := f.fs.arm(opSync); act != actNone {
		if act == actNoSpace {
			return ErrNoSpace
		}
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	f.node.synced = append([]byte(nil), f.node.cur...)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
