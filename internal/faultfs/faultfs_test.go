package faultfs

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"
)

func mustWrite(t *testing.T, f File, p []byte) {
	t.Helper()
	if n, err := f.Write(p); err != nil || n != len(p) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
}

func newStore(t *testing.T) *MemFS {
	t.Helper()
	m := NewMem()
	if err := m.MkdirAll("store"); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMemCrashDropsUnsynced checks the core durability model: after a crash
// that drops unsynced state, file data rolls back to the last Sync and
// directory entries to the last SyncDir.
func TestMemCrashDropsUnsynced(t *testing.T) {
	m := newStore(t)
	f, err := m.Create("store/a")
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("store"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("+lost tail"))
	f.Close()

	// Entry never SyncDir'd: gone after crash.
	g, err := m.Create("store/b")
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, g, []byte("x"))
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	g.Close()

	m.Crash(false)
	got, err := m.ReadFile("store/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("after crash: %q", got)
	}
	if _, err := m.ReadFile("store/b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced entry survived: %v", err)
	}
	// Stale handles from before the crash must not write.
	if _, err := f.Write([]byte("zombie")); !errors.Is(err, ErrInjected) {
		t.Fatalf("stale handle write: %v", err)
	}
}

// TestMemCrashKeepsEverythingWhenAsked checks the kind-crash policy used to
// exercise torn-tail recovery: unsynced bytes survive.
func TestMemCrashKeepsEverythingWhenAsked(t *testing.T) {
	m := newStore(t)
	f, _ := m.Create("store/a")
	mustWrite(t, f, []byte("unsynced"))
	m.Crash(true)
	got, err := m.ReadFile("store/a")
	if err != nil || !bytes.Equal(got, []byte("unsynced")) {
		t.Fatalf("got %q, %v", got, err)
	}
}

// TestMemRenameDurability checks that a rename is visible immediately but
// durable only after SyncDir.
func TestMemRenameDurability(t *testing.T) {
	m := newStore(t)
	f, _ := m.Create("store/x.tmp")
	mustWrite(t, f, []byte("v1"))
	f.Sync()
	f.Close()
	m.SyncDir("store")
	if err := m.Rename("store/x.tmp", "store/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("store/x"); err != nil {
		t.Fatalf("rename not visible: %v", err)
	}
	m.Crash(false) // rename not SyncDir'd: old name returns
	if _, err := m.ReadFile("store/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("unsynced rename survived crash")
	}
	got, err := m.ReadFile("store/x.tmp")
	if err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("old entry after crash: %q, %v", got, err)
	}

	if err := m.Rename("store/x.tmp", "store/x"); err != nil {
		t.Fatal(err)
	}
	m.SyncDir("store")
	m.Crash(false)
	if got, err := m.ReadFile("store/x"); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("synced rename lost: %q, %v", got, err)
	}
}

// TestMemTruncateRollsBack checks that Create over an existing durable file
// restores the old contents when the truncation was never made durable.
func TestMemTruncateRollsBack(t *testing.T) {
	m := newStore(t)
	f, _ := m.Create("store/a")
	mustWrite(t, f, []byte("old"))
	f.Sync()
	f.Close()
	m.SyncDir("store")
	g, _ := m.Create("store/a")
	mustWrite(t, g, []byte("new-unsynced"))
	g.Close()
	m.Crash(false)
	got, err := m.ReadFile("store/a")
	if err != nil || !bytes.Equal(got, []byte("old")) {
		t.Fatalf("after crash: %q, %v", got, err)
	}
}

// TestMemInjectionModes exercises each fault mode's shape.
func TestMemInjectionModes(t *testing.T) {
	t.Run("short_write", func(t *testing.T) {
		m := newStore(t)
		f, _ := m.Create("store/a")
		m.SetPlan(Plan{Op: 1, Mode: ModeShortWrite})
		n, err := f.Write([]byte("abcdef"))
		if !errors.Is(err, ErrInjected) || n != 3 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		got, _ := m.ReadFile("store/a")
		if !bytes.Equal(got, []byte("abc")) {
			t.Fatalf("content %q", got)
		}
		// Transient: the next write succeeds.
		mustWrite(t, f, []byte("!"))
	})
	t.Run("bit_flip", func(t *testing.T) {
		m := newStore(t)
		f, _ := m.Create("store/a")
		m.SetPlan(Plan{Op: 1, Mode: ModeBitFlip})
		mustWrite(t, f, []byte{0x00, 0x00, 0x00, 0x00})
		got, _ := m.ReadFile("store/a")
		if !bytes.Equal(got, []byte{0x00, 0x00, 0x10, 0x00}) {
			t.Fatalf("content %v", got)
		}
	})
	t.Run("enospc", func(t *testing.T) {
		m := newStore(t)
		f, _ := m.Create("store/a")
		m.SetPlan(Plan{Op: 1, Mode: ModeNoSpace})
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) || !errors.Is(err, ErrInjected) {
			t.Fatalf("err=%v", err)
		}
		if got, _ := m.ReadFile("store/a"); len(got) != 0 {
			t.Fatalf("content %q", got)
		}
	})
	t.Run("sync_err_defers_to_sync", func(t *testing.T) {
		m := newStore(t)
		f, _ := m.Create("store/a")
		// Op 1 is a Write — not eligible — so the plan fires on the Sync.
		m.SetPlan(Plan{Op: 1, Mode: ModeSyncErr})
		mustWrite(t, f, []byte("data"))
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync err=%v", err)
		}
		m.Crash(false)
		m.SyncDir("store") // entry was never durable either way
		if _, err := m.ReadFile("store/a"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatal("failed sync still made data durable")
		}
	})
	t.Run("crash_mode_downs_disk", func(t *testing.T) {
		m := newStore(t)
		f, _ := m.Create("store/a")
		mustWrite(t, f, []byte("pre"))
		m.SetPlan(Plan{Op: 2, Mode: ModeCrash})
		mustWrite(t, f, []byte("ok")) // op 1
		if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
			t.Fatalf("err=%v", err)
		}
		if err := m.SyncDir("store"); !errors.Is(err, ErrInjected) {
			t.Fatalf("post-crash op: %v", err)
		}
		m.Crash(true) // bring it back up
		got, err := m.ReadFile("store/a")
		if err != nil || !bytes.Equal(got, []byte("preok")) {
			t.Fatalf("after restart: %q, %v", got, err)
		}
	})
}

// TestMemOpsCountsDeterministically pins the op counter used to sweep
// injection points.
func TestMemOpsCountsDeterministically(t *testing.T) {
	run := func() int {
		m := NewMem()
		m.MkdirAll("store")
		f, _ := m.Create("store/a")
		f.Write([]byte("x"))
		f.Sync()
		f.Close()
		m.Rename("store/a", "store/b")
		m.SyncDir("store")
		m.Remove("store/b")
		return m.Ops()
	}
	a, b := run(), run()
	if a != b || a != 7 { // mkdir, create, write, sync, rename, syncdir, remove
		t.Fatalf("ops %d vs %d", a, b)
	}
}
