package vecmath

import (
	"math"
	"testing"
)

func TestNewSortsAndMerges(t *testing.T) {
	v, err := New([]Entry{{Dim: 5, Weight: 2}, {Dim: 1, Weight: 1}, {Dim: 5, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	es := v.Entries()
	if len(es) != 2 {
		t.Fatalf("want 2 entries, got %v", es)
	}
	if es[0].Dim != 1 || es[0].Weight != 1 {
		t.Errorf("entry 0 = %v", es[0])
	}
	if es[1].Dim != 5 || es[1].Weight != 5 {
		t.Errorf("entry 1 = %v (duplicate dims should sum)", es[1])
	}
}

func TestNewDropsZeroAndCancelled(t *testing.T) {
	v, err := New([]Entry{{Dim: 2, Weight: 1}, {Dim: 2, Weight: -1}, {Dim: 3, Weight: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Errorf("want zero vector, got %v", v)
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	if _, err := New([]Entry{{Dim: 1, Weight: float32(math.NaN())}}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := New([]Entry{{Dim: 1, Weight: float32(math.Inf(1))}}); err == nil {
		t.Error("Inf weight accepted")
	}
}

func TestFromDims(t *testing.T) {
	v := FromDims([]uint32{7, 3, 3, 9})
	if v.NNZ() != 3 {
		t.Fatalf("want 3 distinct dims, got %d", v.NNZ())
	}
	if v.Weight(3) != 1 || v.Weight(7) != 1 || v.Weight(9) != 1 || v.Weight(4) != 0 {
		t.Errorf("unexpected weights: %v", v)
	}
	if math.Abs(v.Norm()-math.Sqrt(3)) > 1e-12 {
		t.Errorf("norm %v, want sqrt(3)", v.Norm())
	}
}

func TestFromMap(t *testing.T) {
	v, err := FromMap(map[uint32]float32{4: 2, 1: -1})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Weight(4) != 2 || v.Weight(1) != -1 {
		t.Errorf("bad vector: %v", v)
	}
}

func TestDotBasic(t *testing.T) {
	u := mustNew([]Entry{{1, 1}, {2, 2}, {5, 3}})
	v := mustNew([]Entry{{2, 4}, {5, 1}, {9, 7}})
	if got := Dot(u, v); got != 2*4+3*1 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Dot(u, Vector{}); got != 0 {
		t.Errorf("Dot with zero = %v", got)
	}
}

func TestDotSymmetric(t *testing.T) {
	u := mustNew([]Entry{{0, 1.5}, {3, -2}, {100, 0.25}})
	v := mustNew([]Entry{{3, 4}, {100, 8}})
	if Dot(u, v) != Dot(v, u) {
		t.Errorf("Dot not symmetric: %v vs %v", Dot(u, v), Dot(v, u))
	}
}

func TestDotGallopMatchesMerge(t *testing.T) {
	// Long vector forces the galloping path for the short one.
	long := make([]Entry, 0, 1000)
	for i := 0; i < 1000; i++ {
		long = append(long, Entry{Dim: uint32(2 * i), Weight: float32(i%7) + 1})
	}
	lv := mustNew(long)
	short := mustNew([]Entry{{0, 1}, {500, 2}, {999, 3}, {1998, 4}})
	got := Dot(short, lv)
	// Compute expected by brute force.
	var want float64
	for _, e := range short.Entries() {
		want += float64(e.Weight) * float64(lv.Weight(e.Dim))
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("gallop dot = %v, want %v", got, want)
	}
}

func TestCosineRangeAndIdentity(t *testing.T) {
	u := mustNew([]Entry{{1, 3}, {4, 4}})
	if c := Cosine(u, u); math.Abs(c-1) > 1e-12 {
		t.Errorf("cos(u,u) = %v, want 1", c)
	}
	v := mustNew([]Entry{{2, 1}})
	if c := Cosine(u, v); c != 0 {
		t.Errorf("cos of disjoint = %v, want 0", c)
	}
	if c := Cosine(u, Vector{}); c != 0 {
		t.Errorf("cos with zero vector = %v, want 0", c)
	}
}

func TestCosineKnownValue(t *testing.T) {
	u := mustNew([]Entry{{0, 1}, {1, 0}})
	_ = u
	a := mustNew([]Entry{{0, 1}})
	b := mustNew([]Entry{{0, 1}, {1, 1}})
	want := 1 / math.Sqrt2
	if c := Cosine(a, b); math.Abs(c-want) > 1e-9 {
		t.Errorf("cos = %v, want %v", c, want)
	}
}

func TestCosineBinaryVectors(t *testing.T) {
	// For binary vectors cos = |A∩B| / sqrt(|A||B|).
	a := FromDims([]uint32{1, 2, 3, 4})
	b := FromDims([]uint32{3, 4, 5})
	want := 2 / math.Sqrt(4*3)
	if c := Cosine(a, b); math.Abs(c-want) > 1e-9 {
		t.Errorf("cos = %v, want %v", c, want)
	}
}

func TestNormalized(t *testing.T) {
	u := mustNew([]Entry{{1, 3}, {4, 4}})
	n := u.Normalized()
	if math.Abs(n.Norm()-1) > 1e-6 {
		t.Errorf("normalized norm = %v", n.Norm())
	}
	if math.Abs(Cosine(u, n)-1) > 1e-6 {
		t.Errorf("normalization changed direction")
	}
	z := Vector{}
	if !z.Normalized().IsZero() {
		t.Error("zero vector should normalize to itself")
	}
}

func TestScale(t *testing.T) {
	u := mustNew([]Entry{{1, 2}, {3, -4}})
	s := u.Scale(0.5)
	if s.Weight(1) != 1 || s.Weight(3) != -2 {
		t.Errorf("scale: %v", s)
	}
	if !u.Scale(0).IsZero() {
		t.Error("scale by 0 should be zero vector")
	}
	if got := u.Scale(1); !Equal(got, u) {
		t.Error("scale by 1 should be identity")
	}
}

func TestAdd(t *testing.T) {
	u := mustNew([]Entry{{1, 1}, {2, 2}})
	v := mustNew([]Entry{{2, -2}, {3, 3}})
	s := Add(u, v)
	if s.Weight(1) != 1 || s.Weight(2) != 0 || s.Weight(3) != 3 || s.NNZ() != 2 {
		t.Errorf("Add = %v", s)
	}
}

func TestJaccardAndOverlap(t *testing.T) {
	a := FromDims([]uint32{1, 2, 3})
	b := FromDims([]uint32{2, 3, 4, 5})
	if o := Overlap(a, b); o != 2 {
		t.Errorf("Overlap = %d, want 2", o)
	}
	if j := Jaccard(a, b); math.Abs(j-2.0/5.0) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.4", j)
	}
	if j := Jaccard(Vector{}, Vector{}); j != 0 {
		t.Errorf("Jaccard of zeros = %v", j)
	}
	if j := Jaccard(a, a); j != 1 {
		t.Errorf("Jaccard(a,a) = %v", j)
	}
}

func TestWeightLookup(t *testing.T) {
	v := mustNew([]Entry{{10, 1}, {20, 2}, {30, 3}})
	cases := []struct {
		d uint32
		w float32
	}{{10, 1}, {20, 2}, {30, 3}, {0, 0}, {15, 0}, {31, 0}}
	for _, c := range cases {
		if got := v.Weight(c.d); got != c.w {
			t.Errorf("Weight(%d) = %v, want %v", c.d, got, c.w)
		}
	}
}

func TestMaxDim(t *testing.T) {
	if (Vector{}).MaxDim() != 0 {
		t.Error("zero vector MaxDim should be 0")
	}
	v := mustNew([]Entry{{7, 1}})
	if v.MaxDim() != 8 {
		t.Errorf("MaxDim = %d, want 8", v.MaxDim())
	}
}

func TestStringForm(t *testing.T) {
	v := mustNew([]Entry{{3, 0.5}, {17, 1.25}})
	if got := v.String(); got != "{3:0.5 17:1.25}" {
		t.Errorf("String = %q", got)
	}
}
