package vecmath

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVector is the quick.Generator-compatible construction of a random sparse
// vector with bounded dims and weights.
type genVector struct{ V Vector }

func (genVector) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%32 + 1)
	es := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		es = append(es, Entry{
			Dim:    uint32(r.Intn(64)),
			Weight: float32(r.NormFloat64()),
		})
	}
	v, err := New(es)
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(genVector{V: v})
}

func TestPropCosineSymmetric(t *testing.T) {
	f := func(a, b genVector) bool {
		return math.Abs(Cosine(a.V, b.V)-Cosine(b.V, a.V)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCosineBounded(t *testing.T) {
	f := func(a, b genVector) bool {
		c := Cosine(a.V, b.V)
		return c >= -1 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCosineSelfIsOne(t *testing.T) {
	f := func(a genVector) bool {
		if a.V.IsZero() {
			return Cosine(a.V, a.V) == 0
		}
		return math.Abs(Cosine(a.V, a.V)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCauchySchwarz(t *testing.T) {
	f := func(a, b genVector) bool {
		return math.Abs(Dot(a.V, b.V)) <= a.V.Norm()*b.V.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDotDistributesOverAdd(t *testing.T) {
	f := func(a, b, c genVector) bool {
		lhs := Dot(Add(a.V, b.V), c.V)
		rhs := Dot(a.V, c.V) + Dot(b.V, c.V)
		return math.Abs(lhs-rhs) < 1e-4*(1+math.Abs(lhs)+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNormMatchesDot(t *testing.T) {
	f := func(a genVector) bool {
		return math.Abs(a.V.Norm()*a.V.Norm()-Dot(a.V, a.V)) < 1e-6*(1+Dot(a.V, a.V))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutes(t *testing.T) {
	f := func(a, b genVector) bool {
		return Equal(Add(a.V, b.V), Add(b.V, a.V))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(a, b genVector) bool {
		return Add(a.V, b.V).Norm() <= a.V.Norm()+b.V.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropJaccardBounds(t *testing.T) {
	f := func(a, b genVector) bool {
		j := Jaccard(a.V, b.V)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropScaleInvariantCosine(t *testing.T) {
	f := func(a, b genVector) bool {
		if a.V.IsZero() || b.V.IsZero() {
			return true
		}
		c1 := Cosine(a.V, b.V)
		c2 := Cosine(a.V.Scale(3), b.V.Scale(0.25))
		return math.Abs(c1-c2) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
