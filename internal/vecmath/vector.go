// Package vecmath implements the sparse vector representation and similarity
// arithmetic underlying the VSJ (vector similarity join) problem: vectors are
// sorted lists of (dimension, weight) pairs, similarity is cosine, and all
// estimators in lshjoin operate on these values.
//
// Vectors are immutable once built; the package validates sortedness and
// finiteness at construction so downstream code can assume both.
package vecmath

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one non-zero coordinate of a sparse vector.
type Entry struct {
	Dim    uint32  // dimension index
	Weight float32 // non-zero weight
}

// Vector is a sparse real-valued vector: entries sorted by Dim, weights
// non-zero and finite. The zero Vector is the zero vector (no entries).
type Vector struct {
	entries []Entry
	norm    float64 // cached Euclidean norm
}

// New builds a Vector from entries. Entries may be in any order and may
// contain duplicate dimensions (weights on the same dimension are summed);
// zero-weight results are dropped. It returns an error for non-finite
// weights.
func New(entries []Entry) (Vector, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].Dim < es[j].Dim })
	out := es[:0]
	for i := 0; i < len(es); {
		d := es[i].Dim
		var w float64
		for ; i < len(es) && es[i].Dim == d; i++ {
			w += float64(es[i].Weight)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return Vector{}, fmt.Errorf("vecmath: non-finite weight on dim %d", d)
		}
		if w != 0 {
			out = append(out, Entry{Dim: d, Weight: float32(w)})
		}
	}
	v := Vector{entries: out}
	v.norm = v.computeNorm()
	return v, nil
}

// FromMap builds a Vector from a dimension→weight map.
func FromMap(m map[uint32]float32) (Vector, error) {
	es := make([]Entry, 0, len(m))
	for d, w := range m {
		es = append(es, Entry{Dim: d, Weight: w})
	}
	return New(es)
}

// FromDims builds a binary vector with weight 1 on each distinct dimension.
// Duplicate dims collapse to a single weight-1 entry (set semantics), which
// matches the paper's treatment of the DBLP data as binary vectors.
func FromDims(dims []uint32) Vector {
	ds := make([]uint32, len(dims))
	copy(ds, dims)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	es := make([]Entry, 0, len(ds))
	var last uint32
	for i, d := range ds {
		if i > 0 && d == last {
			continue
		}
		es = append(es, Entry{Dim: d, Weight: 1})
		last = d
	}
	v := Vector{entries: es}
	v.norm = math.Sqrt(float64(len(es)))
	return v
}

// mustNew is a test/generator helper: panics on error.
func mustNew(entries []Entry) Vector {
	v, err := New(entries)
	if err != nil {
		panic(err)
	}
	return v
}

// NNZ returns the number of non-zero entries.
func (v Vector) NNZ() int { return len(v.entries) }

// Entries returns the underlying sorted entries. Callers must not modify the
// returned slice.
func (v Vector) Entries() []Entry { return v.entries }

// Norm returns the Euclidean norm ‖v‖.
func (v Vector) Norm() float64 { return v.norm }

// IsZero reports whether v has no non-zero entries.
func (v Vector) IsZero() bool { return len(v.entries) == 0 }

// MaxDim returns the largest dimension index plus one (a safe dense size),
// or 0 for the zero vector.
func (v Vector) MaxDim() uint32 {
	if len(v.entries) == 0 {
		return 0
	}
	return v.entries[len(v.entries)-1].Dim + 1
}

// Weight returns the weight on dimension d (0 if absent).
func (v Vector) Weight(d uint32) float32 {
	i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].Dim >= d })
	if i < len(v.entries) && v.entries[i].Dim == d {
		return v.entries[i].Weight
	}
	return 0
}

func (v Vector) computeNorm() float64 {
	var s float64
	for _, e := range v.entries {
		s += float64(e.Weight) * float64(e.Weight)
	}
	return math.Sqrt(s)
}

// String renders a compact debug form like "{3:0.5 17:1.2}".
func (v Vector) String() string {
	s := "{"
	for i, e := range v.entries {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%g", e.Dim, e.Weight)
	}
	return s + "}"
}

// Dot returns the inner product u·v via a sorted-merge over the two entry
// lists (O(nnz(u)+nnz(v)), or galloping when one side is much shorter).
func Dot(u, v Vector) float64 {
	a, b := u.entries, v.entries
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	// Gallop when the short side is much smaller than the long side.
	if len(b) > 8*len(a) {
		return dotGallop(a, b)
	}
	var s float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Dim < b[j].Dim:
			i++
		case a[i].Dim > b[j].Dim:
			j++
		default:
			s += float64(a[i].Weight) * float64(b[j].Weight)
			i++
			j++
		}
	}
	return s
}

func dotGallop(short, long []Entry) float64 {
	var s float64
	lo := 0
	for _, e := range short {
		// Exponential probe then binary search within [lo, hi].
		hi := lo + 1
		for hi < len(long) && long[hi].Dim < e.Dim {
			lo = hi
			hi = min(2*hi, len(long))
		}
		i := lo + sort.Search(min(hi, len(long))-lo, func(k int) bool { return long[lo+k].Dim >= e.Dim })
		if i < len(long) && long[i].Dim == e.Dim {
			s += float64(e.Weight) * float64(long[i].Weight)
		}
		lo = i
		if lo >= len(long) {
			break
		}
	}
	return s
}

// Cosine returns cos(u, v) = u·v / (‖u‖·‖v‖), clamped to [-1, 1] to absorb
// floating point drift. Values within 1e-9 of 1 snap to exactly 1 so that
// duplicate vectors compare as similarity 1.0 regardless of summation order
// (join thresholds of τ = 1.0 rely on this). The cosine with a zero vector
// is defined as 0.
func Cosine(u, v Vector) float64 {
	if u.norm == 0 || v.norm == 0 {
		return 0
	}
	c := Dot(u, v) / (u.norm * v.norm)
	if c > 1-1e-9 {
		return 1
	}
	if c < -1 {
		return -1
	}
	return c
}

// Normalized returns v scaled to unit norm. The zero vector normalizes to
// itself.
func (v Vector) Normalized() Vector {
	if v.norm == 0 || v.norm == 1 {
		return v
	}
	inv := 1 / v.norm
	es := make([]Entry, len(v.entries))
	for i, e := range v.entries {
		es[i] = Entry{Dim: e.Dim, Weight: float32(float64(e.Weight) * inv)}
	}
	out := Vector{entries: es}
	out.norm = out.computeNorm()
	return out
}

// Scale returns v multiplied by c.
func (v Vector) Scale(c float64) Vector {
	if c == 1 {
		return v
	}
	es := make([]Entry, 0, len(v.entries))
	for _, e := range v.entries {
		w := float64(e.Weight) * c
		if w != 0 {
			es = append(es, Entry{Dim: e.Dim, Weight: float32(w)})
		}
	}
	out := Vector{entries: es}
	out.norm = out.computeNorm()
	return out
}

// Add returns u + v.
func Add(u, v Vector) Vector {
	es := make([]Entry, 0, len(u.entries)+len(v.entries))
	i, j := 0, 0
	a, b := u.entries, v.entries
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Dim < b[j].Dim):
			es = append(es, a[i])
			i++
		case i >= len(a) || b[j].Dim < a[i].Dim:
			es = append(es, b[j])
			j++
		default:
			w := float64(a[i].Weight) + float64(b[j].Weight)
			if w != 0 {
				es = append(es, Entry{Dim: a[i].Dim, Weight: float32(w)})
			}
			i++
			j++
		}
	}
	out := Vector{entries: es}
	out.norm = out.computeNorm()
	return out
}

// Jaccard returns the Jaccard similarity |A∩B|/|A∪B| of the *supports* of u
// and v (weights ignored), the similarity measure of the SSJ problem.
func Jaccard(u, v Vector) float64 {
	a, b := u.entries, v.entries
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Dim < b[j].Dim:
			i++
		case a[i].Dim > b[j].Dim:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Overlap returns |support(u) ∩ support(v)|.
func Overlap(u, v Vector) int {
	a, b := u.entries, v.entries
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Dim < b[j].Dim:
			i++
		case a[i].Dim > b[j].Dim:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return inter
}

// Equal reports exact equality of entries.
func Equal(u, v Vector) bool {
	if len(u.entries) != len(v.entries) {
		return false
	}
	for i := range u.entries {
		if u.entries[i] != v.entries[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
