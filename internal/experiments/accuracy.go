package experiments

import (
	"fmt"

	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/xrand"
)

// stdEstimators builds the four algorithms of Figures 2 and 3: LSH-SS,
// LSH-SS(D), RS(pop) and RS(cross) with the paper's §6.1 budgets
// (m_H = m_L = n, δ = log n, m_R = 1.5n).
func stdEstimators(env *Env) ([]core.Estimator, error) {
	data := env.Data.Vectors
	ss, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	ssd, err := core.NewLSHSS(env.Snap, nil, core.WithDamp(core.DampAuto, 0))
	if err != nil {
		return nil, err
	}
	rsp, err := core.NewRSPop(data, nil, 0)
	if err != nil {
		return nil, err
	}
	rsc, err := core.NewRSCross(data, nil, 0)
	if err != nil {
		return nil, err
	}
	return []core.Estimator{ss, ssd, rsp, rsc}, nil
}

// accuracyTables runs each estimator over the τ grid and produces the
// (a) overestimation, (b) underestimation and (c) standard deviation tables
// of an accuracy figure.
func (s *Suite) accuracyTables(id, figure string, env *Env, ests []core.Estimator) ([]*Table, error) {
	truths, err := env.Truth(TauGrid...)
	if err != nil {
		return nil, err
	}
	cols := []string{"τ"}
	for _, e := range ests {
		cols = append(cols, e.Name())
	}
	over := &Table{ID: id, Title: figure + "(a): relative error of overestimations", Columns: cols,
		Notes: []string{env.Describe(), "cells: mean of (est/J − 1) over overestimating runs; '-' = never overestimated"}}
	under := &Table{ID: id, Title: figure + "(b): relative error of underestimations", Columns: cols,
		Notes: []string{"cells: mean of (est/J − 1) over underestimating runs (−100% = estimate collapsed to 0); '-' = never underestimated"}}
	std := &Table{ID: id, Title: figure + "(c): standard deviation of estimates", Columns: cols,
		Notes: []string{fmt.Sprintf("reps per cell: %d", s.cfg.Reps)}}
	for ti, tau := range TauGrid {
		rowO := []string{ftau(tau)}
		rowU := []string{ftau(tau)}
		rowS := []string{ftau(tau)}
		for ei, est := range ests {
			seed := xrand.Mix3(s.cfg.Seed, uint64(1000+ti), uint64(ei))
			cell, err := s.runCell(est, tau, truths[tau], seed)
			if err != nil {
				return nil, err
			}
			if cell.summary.NOver > 0 {
				rowO = append(rowO, fpct(cell.summary.MeanOver))
			} else {
				rowO = append(rowO, "-")
			}
			if cell.summary.NUnder > 0 {
				rowU = append(rowU, fpct(cell.summary.MeanUnder))
			} else {
				rowU = append(rowU, "-")
			}
			rowS = append(rowS, fnum(cell.summary.Std))
		}
		over.Rows = append(over.Rows, rowO)
		under.Rows = append(under.Rows, rowU)
		std.Rows = append(std.Rows, rowS)
	}
	return []*Table{over, under, std}, nil
}

// Figure2 reproduces Figure 2: accuracy and variance on DBLP.
func (s *Suite) Figure2() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	ests, err := stdEstimators(env)
	if err != nil {
		return nil, err
	}
	return s.accuracyTables("fig2", "Figure 2", env, ests)
}

// Figure3 reproduces Figure 3: accuracy and variance on NYT.
func (s *Suite) Figure3() ([]*Table, error) {
	env, err := s.Env(dataset.NYT, 0, 0)
	if err != nil {
		return nil, err
	}
	ests, err := stdEstimators(env)
	if err != nil {
		return nil, err
	}
	return s.accuracyTables("fig3", "Figure 3", env, ests)
}

// Figure9 reproduces Figure 9: accuracy and variance on PUBMED with k = 5,
// comparing LSH-SS against RS(pop).
func (s *Suite) Figure9() ([]*Table, error) {
	env, err := s.Env(dataset.PubMed, 5, 0)
	if err != nil {
		return nil, err
	}
	data := env.Data.Vectors
	ss, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	rsp, err := core.NewRSPop(data, nil, 0)
	if err != nil {
		return nil, err
	}
	return s.accuracyTables("fig9", "Figure 9", env, []core.Estimator{ss, rsp})
}
