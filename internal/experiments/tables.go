package experiments

import (
	"fmt"
	"math"
	"time"

	"lshjoin/internal/core"
	"lshjoin/internal/corpus"
	"lshjoin/internal/dataset"
	"lshjoin/internal/lc"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// Table1 reproduces Table 1: P(T), P(T|H), P(H|T) and P(T|L) on the
// DBLP-like dataset across τ ∈ {0.1 … 0.9}, computed exactly.
func (s *Suite) Table1() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	truths, err := env.Truth(TauTable...)
	if err != nil {
		return nil, err
	}
	jh := env.StratumTruth(0, TauTable)
	tab := env.Snap.Table(0)
	m := float64(tab.M())
	nh := float64(tab.NH())
	nl := float64(tab.NL())
	out := &Table{
		ID:      "table1",
		Title:   "Table 1: example probabilities in DBLP",
		Columns: []string{"τ", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)"},
		Notes: []string{
			env.Describe(),
			"Shape criteria from the paper: P(T) collapses at high τ while P(T|H) stays well above log n/n, and P(H|T) grows with τ.",
		},
	}
	for _, tau := range TauTable {
		j := float64(truths[tau])
		h := float64(jh[tau])
		var pTH, pHT float64
		if nh > 0 {
			pTH = h / nh
		}
		if j > 0 {
			pHT = h / j
		}
		out.Rows = append(out.Rows, []string{
			ftau(tau), fnum(j / m), fnum(pTH), fnum(pHT), fnum((j - h) / nl),
		})
	}
	return []*Table{out}, nil
}

// JoinSizeTable reproduces the §6.2 inline table: J and selectivity vs τ on
// the DBLP-like dataset.
func (s *Suite) JoinSizeTable() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	truths, err := env.Truth(TauTable...)
	if err != nil {
		return nil, err
	}
	m := float64(env.Snap.Table(0).M())
	out := &Table{
		ID:      "joinsize",
		Title:   "§6.2 table: actual join size J and selectivity vs τ (DBLP)",
		Columns: []string{"τ", "J", "selectivity"},
		Notes: []string{
			env.Describe(),
			"Paper shape: J spans ~7 orders of magnitude from τ=0.1 to τ=0.9 with tiny but non-zero high-τ mass.",
		},
	}
	for _, tau := range TauTable {
		j := truths[tau]
		out.Rows = append(out.Rows, []string{
			ftau(tau), fint(j), fmt.Sprintf("%.3g%%", 100*float64(j)/m),
		})
	}
	return []*Table{out}, nil
}

// SpaceTable reproduces the §6.3 space table: extended-LSH-table bytes vs k
// on the DBLP-like dataset.
func (s *Suite) SpaceTable() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	out := &Table{
		ID:      "space",
		Title:   "§6.3 table: LSH table size vs k (DBLP)",
		Columns: []string{"k", "size (MB)", "non-empty buckets"},
		Notes: []string{
			"Accounting matches the paper: g values + bucket counts + vector ids, runtime overheads excluded.",
			"Paper shape: size grows sublinearly in k as buckets fragment toward singletons.",
		},
	}
	for _, k := range []int{10, 20, 30, 40, 50} {
		idx, err := lsh.Build(env.Data.Vectors, env.Family, k, 1)
		if err != nil {
			return nil, err
		}
		tab := idx.Table(0)
		out.Rows = append(out.Rows, []string{
			fint(int64(k)),
			fmt.Sprintf("%.2f", float64(tab.SizeBytes())/(1<<20)),
			fint(int64(tab.NumBuckets())),
		})
	}
	return []*Table{out}, nil
}

// RuntimeTable reproduces the §6.2 runtime comparison: average time per
// estimate for each algorithm, plus one-off analysis/build costs.
func (s *Suite) RuntimeTable() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	data := env.Data.Vectors
	ss, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	ssd, err := core.NewLSHSS(env.Snap, nil, core.WithDamp(core.DampAuto, 0))
	if err != nil {
		return nil, err
	}
	rsp, err := core.NewRSPop(data, nil, 0)
	if err != nil {
		return nil, err
	}
	rsc, err := core.NewRSCross(data, nil, 0)
	if err != nil {
		return nil, err
	}
	lshS, err := core.NewLSHS(env.Snap, 0)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	lcEst, err := lc.New(data, env.Family, lc.Config{K: env.Snap.K(), Seed: s.cfg.Seed})
	if err != nil {
		return nil, err
	}
	lcBuild := time.Since(t0)

	out := &Table{
		ID:      "runtime",
		Title:   "§6.2 runtime: average time per estimate (DBLP)",
		Columns: []string{"algorithm", "avg time/estimate", "one-off cost"},
		Notes: []string{
			env.Describe(),
			"Paper shape: the sampling estimators answer in sub-second time; LC pays an extra signature-analysis cost; RS(pop)/RS(cross) cost is comparable to LSH-SS at the matched budget (the paper's 780 s RS figure reflects a much larger matched budget at n=800k).",
		},
	}
	reps := s.cfg.Reps/5 + 2
	taus := []float64{0.3, 0.5, 0.7, 0.9}
	rows := []struct {
		est    core.Estimator
		oneOff string
	}{
		{ss, "index build " + env.BuildTime.Round(time.Millisecond).String()},
		{ssd, "(shares index)"},
		{rsp, "none"},
		{rsc, "none"},
		{lshS, "(shares index)"},
		{lcEst, "signature analysis " + lcBuild.Round(time.Millisecond).String()},
	}
	for _, row := range rows {
		rng := xrand.New(s.cfg.Seed ^ 0xBEEF)
		t0 := time.Now()
		count := 0
		for _, tau := range taus {
			for r := 0; r < reps; r++ {
				if _, err := row.est.Estimate(tau, rng); err != nil {
					return nil, err
				}
				count++
			}
		}
		per := time.Since(t0) / time.Duration(count)
		perStr := per.Round(10 * time.Microsecond).String()
		if per < 10*time.Microsecond {
			perStr = "<10µs"
		}
		out.Rows = append(out.Rows, []string{row.est.Name(), perStr, row.oneOff})
	}
	return []*Table{out}, nil
}

// Table2 reproduces Table 2: α = P(T|H) and β = P(T|L) on the NYT-like and
// PUBMED-like datasets, with the assumed high/low-threshold bounds.
func (s *Suite) Table2() ([]*Table, error) {
	var out []*Table
	for _, kind := range []dataset.Kind{dataset.NYT, dataset.PubMed} {
		env, err := s.Env(kind, 0, 0)
		if err != nil {
			return nil, err
		}
		truths, err := env.Truth(TauTable...)
		if err != nil {
			return nil, err
		}
		jh := env.StratumTruth(0, TauTable)
		tab := env.Snap.Table(0)
		nh, nl := float64(tab.NH()), float64(tab.NL())
		n := float64(env.Data.N())
		t := &Table{
			ID:      "table2",
			Title:   fmt.Sprintf("Table 2: α and β in %s", env.Data.Name),
			Columns: []string{"τ", "α = P(T|H)", "β = P(T|L)"},
			Notes: []string{
				env.Describe(),
				fmt.Sprintf("assumed high-τ regime: α ≥ log n/n = %s and β < 1/n = %s", fnum(math.Log2(n)/n), fnum(1/n)),
				fmt.Sprintf("assumed low-τ regime: α, β ≥ log n/n = %s", fnum(math.Log2(n)/n)),
			},
		}
		for _, tau := range TauTable {
			j := float64(truths[tau])
			h := float64(jh[tau])
			var alpha float64
			if nh > 0 {
				alpha = h / nh
			}
			t.Rows = append(t.Rows, []string{ftau(tau), fnum(alpha), fnum((j - h) / nl)})
		}
		out = append(out, t)
	}
	return out, nil
}

// BuildTable reproduces the App. C.1 figures: index build time per dataset
// (plus the generation cost of our synthetic substitutes and their shapes).
func (s *Suite) BuildTable() ([]*Table, error) {
	out := &Table{
		ID:      "build",
		Title:   "App. C.1: dataset shapes and LSH index build time",
		Columns: []string{"dataset", "n", "k", "avg features", "distinct dims", "gen time", "index build"},
		Notes: []string{
			"Paper reports 4.7 s / 4.6 s / 5.6 s builds at full corpus scale; shapes (avg features, dimensionality) are the substitution targets from DESIGN.md §3.",
		},
	}
	for _, kind := range dataset.Kinds() {
		env, err := s.Env(kind, 0, 0)
		if err != nil {
			return nil, err
		}
		cs := corpus.Describe(env.Data.Vectors)
		out.Rows = append(out.Rows, []string{
			env.Data.Name,
			fint(int64(env.Data.N())),
			fint(int64(env.Snap.K())),
			fmt.Sprintf("%.1f", cs.AvgNNZ),
			fint(int64(cs.DistinctDims)),
			env.GenTime.Round(time.Millisecond).String(),
			env.BuildTime.Round(time.Millisecond).String(),
		})
	}
	return []*Table{out}, nil
}
