package experiments

import (
	"fmt"
	"sort"
	"time"

	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/stats"
	"lshjoin/internal/xrand"
)

// Config sizes the experiment suite. Zero values take laptop-scale defaults
// chosen so the full suite runs in minutes while preserving the paper's
// regime structure (see DESIGN.md §3 on scale substitution).
type Config struct {
	DBLPN   int // DBLP-like collection size (default 20000)
	NYTN    int // NYT-like collection size (default 5000)
	PubMedN int // PUBMED-like collection size (default 8000)
	Reps    int // estimates per (algorithm, τ) cell; paper uses 100 (default 50)
	Seed    uint64
}

func (c *Config) fillDefaults() {
	if c.DBLPN == 0 {
		c.DBLPN = 20000
	}
	if c.NYTN == 0 {
		c.NYTN = 5000
	}
	if c.PubMedN == 0 {
		c.PubMedN = 8000
	}
	if c.Reps == 0 {
		c.Reps = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Suite lazily builds one Env per dataset kind and runs experiments by ID.
type Suite struct {
	cfg  Config
	envs map[string]*Env // keyed by kind/k/ell
}

// NewSuite returns a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	cfg.fillDefaults()
	return &Suite{cfg: cfg, envs: make(map[string]*Env)}
}

// Config returns the effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// Env returns (building on first use) the environment for a dataset kind
// with the given LSH parameters (k ≤ 0 → dataset default, ell ≤ 0 → 1).
func (s *Suite) Env(kind dataset.Kind, k, ell int) (*Env, error) {
	n := 0
	switch kind {
	case dataset.DBLP:
		n = s.cfg.DBLPN
	case dataset.NYT:
		n = s.cfg.NYTN
	case dataset.PubMed:
		n = s.cfg.PubMedN
	default:
		return nil, fmt.Errorf("experiments: unknown dataset kind %q", kind)
	}
	key := fmt.Sprintf("%s/%d/%d", kind, k, ell)
	if e, ok := s.envs[key]; ok {
		return e, nil
	}
	e, err := NewEnv(kind, n, k, ell, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.envs[key] = e
	return e, nil
}

// Runner executes one experiment.
type Runner func(*Suite) ([]*Table, error)

// Registry maps experiment IDs (documented in EXPERIMENTS.md) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":   func(s *Suite) ([]*Table, error) { return s.Table1() },
		"joinsize": func(s *Suite) ([]*Table, error) { return s.JoinSizeTable() },
		"fig2":     func(s *Suite) ([]*Table, error) { return s.Figure2() },
		"fig3":     func(s *Suite) ([]*Table, error) { return s.Figure3() },
		"fig4":     func(s *Suite) ([]*Table, error) { return s.Figure4() },
		"space":    func(s *Suite) ([]*Table, error) { return s.SpaceTable() },
		"runtime":  func(s *Suite) ([]*Table, error) { return s.RuntimeTable() },
		"fig5":     func(s *Suite) ([]*Table, error) { return s.Figure56() },
		"fig6":     func(s *Suite) ([]*Table, error) { return s.Figure56() },
		"fig7":     func(s *Suite) ([]*Table, error) { return s.Figure78() },
		"fig8":     func(s *Suite) ([]*Table, error) { return s.Figure78() },
		"cs":       func(s *Suite) ([]*Table, error) { return s.CsSweep() },
		"fig9":     func(s *Suite) ([]*Table, error) { return s.Figure9() },
		"table2":   func(s *Suite) ([]*Table, error) { return s.Table2() },
		"build":    func(s *Suite) ([]*Table, error) { return s.BuildTable() },
		"ablation": func(s *Suite) ([]*Table, error) { return s.Ablations() },
	}
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment once (fig5/fig6 and fig7/fig8 pairs run
// once) in a stable order.
func (s *Suite) RunAll() ([]*Table, error) {
	order := []string{
		"joinsize", "table1", "fig2", "fig3", "fig4", "space", "runtime",
		"fig5", "fig7", "cs", "fig9", "table2", "build", "ablation",
	}
	reg := Registry()
	var out []*Table
	for _, id := range order {
		tables, err := reg[id](s)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

// measured is one algorithm's estimate series at one τ, with timing.
type measured struct {
	summary stats.ErrorSummary
	perEst  time.Duration
}

// runCell collects cfg.Reps estimates of est at tau against the given truth.
func (s *Suite) runCell(est core.Estimator, tau float64, truth int64, seed uint64) (measured, error) {
	rng := xrand.New(seed)
	estimates := make([]float64, 0, s.cfg.Reps)
	t0 := time.Now()
	for r := 0; r < s.cfg.Reps; r++ {
		v, err := est.Estimate(tau, rng)
		if err != nil {
			return measured{}, fmt.Errorf("%s at τ=%v: %w", est.Name(), tau, err)
		}
		estimates = append(estimates, v)
	}
	elapsed := time.Since(t0)
	return measured{
		summary: stats.Summarize(estimates, float64(truth)),
		perEst:  elapsed / time.Duration(s.cfg.Reps),
	}, nil
}
