package experiments

import (
	"fmt"
	"math"

	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// Figure4 reproduces Figure 4: the impact of the number of hash functions k
// on LSH-SS and LSH-S at τ = 0.5 and τ = 0.8 (k = 10 … 50).
func (s *Suite) Figure4() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	taus := []float64{0.5, 0.8}
	truths, err := env.Truth(taus...)
	if err != nil {
		return nil, err
	}
	var out []*Table
	for _, tau := range taus {
		t := &Table{
			ID:      "fig4",
			Title:   fmt.Sprintf("Figure 4: impact of k at τ = %.1f (DBLP)", tau),
			Columns: []string{"k", "LSH-SS mean err", "LSH-SS std", "LSH-S mean err", "LSH-S std"},
			Notes: []string{
				"Paper shape: LSH-SS is insensitive to k; LSH-S swings wildly with k.",
			},
		}
		for ki, k := range []int{10, 20, 30, 40, 50} {
			snap, err := lsh.BuildSnapshot(env.Data.Vectors, env.Family, k, 1)
			if err != nil {
				return nil, err
			}
			ss, err := core.NewLSHSS(snap, nil)
			if err != nil {
				return nil, err
			}
			lshS, err := core.NewLSHS(snap, 0)
			if err != nil {
				return nil, err
			}
			row := []string{fint(int64(k))}
			for ei, est := range []core.Estimator{ss, lshS} {
				seed := xrand.Mix3(s.cfg.Seed, uint64(4000+ki), uint64(ei)+uint64(tau*100))
				cell, err := s.runCell(est, tau, truths[tau], seed)
				if err != nil {
					return nil, err
				}
				mean := (cell.summary.MeanEst - cell.summary.Truth) / cell.summary.Truth
				row = append(row, fpct(mean), fnum(cell.summary.Std))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// paramSweep evaluates one LSH-SS configuration (plus an RS(pop) reference)
// across the τ grid, returning the average absolute relative error (Figures
// 5 and 7) and the number of τ values with ≥10× errors (Figures 6 and 8).
type sweepPoint struct {
	label    string
	est      core.Estimator
	avgErr   float64
	bigOver  int
	bigUnder int
}

func (s *Suite) sweep(env *Env, pts []sweepPoint, seedBase uint64) error {
	truths, err := env.Truth(TauGrid...)
	if err != nil {
		return err
	}
	for pi := range pts {
		var errSum float64
		for ti, tau := range TauGrid {
			seed := xrand.Mix3(s.cfg.Seed, seedBase+uint64(pi), uint64(ti))
			cell, err := s.runCell(pts[pi].est, tau, truths[tau], seed)
			if err != nil {
				return err
			}
			errSum += cell.summary.MeanAbsErr
			// A τ counts as a big error when ≥ 25% of the runs were off by
			// 10× in that direction — the per-run criterion that captures
			// RS's fluctuation between 0 and huge scale-ups.
			quarter := (cell.summary.N + 3) / 4
			if cell.summary.BigOver >= quarter {
				pts[pi].bigOver++
			}
			if cell.summary.BigUnder >= quarter {
				pts[pi].bigUnder++
			}
		}
		pts[pi].avgErr = errSum / float64(len(TauGrid))
	}
	return nil
}

func sweepTables(idErr, titleErr, idBig, titleBig string, pts []sweepPoint, notes []string) []*Table {
	errT := &Table{ID: idErr, Title: titleErr,
		Columns: []string{"configuration", "avg |rel err|"}, Notes: notes}
	bigT := &Table{ID: idBig, Title: titleBig,
		Columns: []string{"configuration", "# τ big overest", "# τ big underest"},
		Notes:   []string{"big error: ≥25% of runs at that τ off by ≥10× in the given direction (of 10 τ values)"}}
	for _, p := range pts {
		errT.Rows = append(errT.Rows, []string{p.label, fnum(p.avgErr)})
		bigT.Rows = append(bigT.Rows, []string{p.label, fint(int64(p.bigOver)), fint(int64(p.bigUnder))})
	}
	return []*Table{errT, bigT}
}

// Figure56 reproduces Figures 5 and 6: the answer-size threshold δ sweep
// (0.5·log n, log n, 2·log n, √n) with m = n, plus RS(pop) at m = 1.5n.
func (s *Suite) Figure56() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	data := env.Data.Vectors
	n := float64(len(data))
	logn := math.Log2(n)
	mk := func(delta int, label string) (sweepPoint, error) {
		if delta < 1 {
			delta = 1
		}
		e, err := core.NewLSHSS(env.Snap, nil, core.WithDelta(delta))
		return sweepPoint{label: label, est: e}, err
	}
	var pts []sweepPoint
	for _, spec := range []struct {
		delta int
		label string
	}{
		{int(0.5 * logn), "LSH-SS δ=0.5·log n"},
		{int(logn), "LSH-SS δ=log n"},
		{int(2 * logn), "LSH-SS δ=2·log n"},
		{int(math.Sqrt(n)), "LSH-SS δ=√n"},
	} {
		p, err := mk(spec.delta, spec.label)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	rsp, err := core.NewRSPop(data, nil, 0)
	if err != nil {
		return nil, err
	}
	pts = append(pts, sweepPoint{label: "RS(pop) m=1.5n", est: rsp})
	if err := s.sweep(env, pts, 5600); err != nil {
		return nil, err
	}
	return sweepTables(
		"fig5", "Figure 5: relative error varying δ (DBLP, m = n)",
		"fig6", "Figure 6: # τ with ≥10× error varying δ",
		pts,
		[]string{env.Describe(), "Paper shape: δ > 2·log n (and especially δ = √n) underestimates badly; δ ≈ log n balances."},
	), nil
}

// Figure78 reproduces Figures 7 and 8: the sample-size sweep m ∈ {√n,
// n/log n, 0.5n, n, 2n, n·log n} with δ = log n, against RS(pop) at 1.5m.
func (s *Suite) Figure78() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	data := env.Data.Vectors
	n := float64(len(data))
	logn := math.Log2(n)
	specs := []struct {
		m     int
		label string
	}{
		{int(math.Sqrt(n)), "m=√n"},
		{int(n / logn), "m=n/log n"},
		{int(0.5 * n), "m=0.5n"},
		{int(n), "m=n"},
		{int(2 * n), "m=2n"},
		{int(n * logn), "m=n·log n"},
	}
	var pts []sweepPoint
	for _, spec := range specs {
		m := spec.m
		if m < 2 {
			m = 2
		}
		ss, err := core.NewLSHSS(env.Snap, nil, core.WithSampleSizes(m, m))
		if err != nil {
			return nil, err
		}
		pts = append(pts, sweepPoint{label: "LSH-SS " + spec.label, est: ss})
		rs, err := core.NewRSPop(data, nil, m+m/2)
		if err != nil {
			return nil, err
		}
		pts = append(pts, sweepPoint{label: "RS(pop) m=1.5·" + spec.label[2:], est: rs})
	}
	if err := s.sweep(env, pts, 7800); err != nil {
		return nil, err
	}
	return sweepTables(
		"fig7", "Figure 7: relative error varying sample size m (DBLP, δ = log n)",
		"fig8", "Figure 8: # τ with ≥10× error varying sample size m",
		pts,
		[]string{env.Describe(), "Paper shape: m < 0.5n underestimates seriously for both algorithms; m = n·log n removes LSH-SS's large errors at ~log n extra cost."},
	), nil
}

// CsSweep reproduces App. C.3: the effect of the dampened scale-up factor
// c_s on the high-threshold error profile.
func (s *Suite) CsSweep() ([]*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	taus := []float64{0.6, 0.7, 0.8, 0.9}
	truths, err := env.Truth(taus...)
	if err != nil {
		return nil, err
	}
	type cfg struct {
		label string
		est   core.Estimator
	}
	var cfgs []cfg
	plain, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, cfg{"safe lower bound (LSH-SS)", plain})
	for _, cs := range []float64{0.1, 0.5, 1.0} {
		e, err := core.NewLSHSS(env.Snap, nil, core.WithDamp(core.DampConst, cs))
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg{fmt.Sprintf("c_s = %.1f", cs), e})
	}
	auto, err := core.NewLSHSS(env.Snap, nil, core.WithDamp(core.DampAuto, 0))
	if err != nil {
		return nil, err
	}
	cfgs = append(cfgs, cfg{"c_s = n_L/δ (LSH-SS(D))", auto})

	out := &Table{
		ID:      "cs",
		Title:   "App. C.3: dampened scale-up factor c_s at high thresholds (τ ∈ [0.6, 0.9], DBLP)",
		Columns: []string{"configuration", "worst overest", "mean underest", "mean |rel err|"},
		Notes: []string{
			env.Describe(),
			"Paper shape: c_s = 1 overestimates by up to several 100%; smaller c_s trades overestimation risk for underestimation; 0.1 ≤ c_s ≤ 0.5 recommended when variance is not a concern.",
		},
	}
	for ci, c := range cfgs {
		var worstOver, underSum, absSum float64
		var underN int
		for ti, tau := range taus {
			seed := xrand.Mix3(s.cfg.Seed, uint64(9300+ci), uint64(ti))
			cell, err := s.runCell(c.est, tau, truths[tau], seed)
			if err != nil {
				return nil, err
			}
			if cell.summary.MeanOver > worstOver {
				worstOver = cell.summary.MeanOver
			}
			if cell.summary.NUnder > 0 {
				underSum += cell.summary.MeanUnder
				underN++
			}
			absSum += cell.summary.MeanAbsErr
		}
		meanUnder := 0.0
		if underN > 0 {
			meanUnder = underSum / float64(underN)
		}
		out.Rows = append(out.Rows, []string{
			c.label, fpct(worstOver), fpct(meanUnder), fnum(absSum / float64(len(taus))),
		})
	}
	return []*Table{out}, nil
}
