package experiments

import (
	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/lc"
	"lshjoin/internal/xrand"
)

// Ablations runs the design-choice ablations DESIGN.md §7 calls out.
func (s *Suite) Ablations() ([]*Table, error) {
	var out []*Table
	for _, run := range []func() (*Table, error){
		s.AblationJU,
		s.AblationSafeLowerBound,
		s.AblationStratification,
		s.AblationMultiTable,
		s.AblationLC,
	} {
		t, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// AblationJU compares the paper's closed-form J_U (assumes p(s) = s) with
// the numeric-integration variant that uses the true sign-projection curve,
// and with LSH-S.
func (s *Suite) AblationJU() (*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	truths, err := env.Truth(TauTable...)
	if err != nil {
		return nil, err
	}
	closed, err := core.NewJU(env.Snap, core.JUClosedForm)
	if err != nil {
		return nil, err
	}
	numeric, err := core.NewJU(env.Snap, core.JUNumeric)
	if err != nil {
		return nil, err
	}
	lshS, err := core.NewLSHS(env.Snap, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Ablation: J_U closed form (Eq. 4) vs numeric p(s)^k vs LSH-S (DBLP)",
		Columns: []string{"τ", "J", "JU (Eq.4)", "JU(numeric)", "LSH-S mean"},
		Notes: []string{
			"Eq. 4 assumes Definition 3's p(s) = s; sign random projection actually has p(s) = 1 − arccos(s)/π, which the numeric variant integrates.",
			"All three inherit the uniformity/skew problem §4.3 describes; none is competitive with LSH-SS.",
		},
	}
	for ti, tau := range TauTable {
		a, err := closed.Estimate(tau, nil)
		if err != nil {
			return nil, err
		}
		b, err := numeric.Estimate(tau, nil)
		if err != nil {
			return nil, err
		}
		cell, err := s.runCell(lshS, tau, truths[tau], xrand.Mix3(s.cfg.Seed, 11100, uint64(ti)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ftau(tau), fint(truths[tau]), fnum(a), fnum(b), fnum(cell.summary.MeanEst),
		})
	}
	return t, nil
}

// AblationSafeLowerBound shows what the safe-lower-bound rule buys: LSH-SS
// with the rule vs an always-scale variant at high thresholds.
func (s *Suite) AblationSafeLowerBound() (*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	safe, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	always, err := core.NewLSHSS(env.Snap, nil, core.WithAlwaysScale())
	if err != nil {
		return nil, err
	}
	taus := []float64{0.6, 0.7, 0.8, 0.9}
	truths, err := env.Truth(taus...)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Ablation: safe lower bound vs always-scale in SampleL (DBLP, high τ)",
		Columns: []string{"τ", "J", "safe: worst over / std", "always: worst over / std"},
		Notes: []string{
			"The safe-lower-bound rule (line 10 of Algorithm 1) is why LSH-SS 'hardly overestimates' in Fig. 2(a); removing it re-creates the RS-style blowups.",
		},
	}
	for ti, tau := range taus {
		rows := make([]string, 0, 4)
		rows = append(rows, ftau(tau), fint(truths[tau]))
		for ei, est := range []core.Estimator{safe, always} {
			cell, err := s.runCell(est, tau, truths[tau], xrand.Mix3(s.cfg.Seed, 11200+uint64(ei), uint64(ti)))
			if err != nil {
				return nil, err
			}
			worst := 0.0
			if cell.summary.NOver > 0 {
				worst = cell.summary.MeanOver
			}
			rows = append(rows, fpct(worst)+" / "+fnum(cell.summary.Std))
		}
		t.Rows = append(t.Rows, rows)
	}
	return t, nil
}

// AblationStratification compares stratified LSH-SS against plain uniform
// sampling with the same total pair budget (2n).
func (s *Suite) AblationStratification() (*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	data := env.Data.Vectors
	ss, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	rs, err := core.NewRSPop(data, nil, 2*len(data))
	if err != nil {
		return nil, err
	}
	taus := []float64{0.3, 0.5, 0.7, 0.9}
	truths, err := env.Truth(taus...)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Ablation: stratified (LSH-SS, m_H+m_L = 2n) vs uniform (RS(pop), m = 2n)",
		Columns: []string{"τ", "J", "LSH-SS |err| / std", "RS(pop) |err| / std"},
		Notes: []string{
			"Cochran's observation (§5): intelligent stratification reduces variance at the same budget; the gap explodes as τ grows.",
		},
	}
	for ti, tau := range taus {
		row := []string{ftau(tau), fint(truths[tau])}
		for ei, est := range []core.Estimator{ss, rs} {
			cell, err := s.runCell(est, tau, truths[tau], xrand.Mix3(s.cfg.Seed, 11300+uint64(ei), uint64(ti)))
			if err != nil {
				return nil, err
			}
			row = append(row, fnum(cell.summary.MeanAbsErr)+" / "+fnum(cell.summary.Std))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationMultiTable compares the single-table estimator with the App. B.2.1
// median and virtual-bucket estimators on an ℓ = 5 index.
func (s *Suite) AblationMultiTable() (*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 5)
	if err != nil {
		return nil, err
	}
	single, err := core.NewLSHSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	median, err := core.NewMedianSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	virtual, err := core.NewVirtualSS(env.Snap, nil)
	if err != nil {
		return nil, err
	}
	taus := []float64{0.5, 0.7, 0.9}
	truths, err := env.Truth(taus...)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Ablation: single table vs median vs virtual buckets (DBLP, ℓ = 5)",
		Columns: []string{"τ", "J", "single |err| / std", "median |err| / std", "virtual |err| / std"},
		Notes: []string{
			"App. B.2.1: the median tightens reliability (2^(−ℓ/2) failure bound); virtual buckets enlarge stratum H when k is too selective.",
		},
	}
	for ti, tau := range taus {
		row := []string{ftau(tau), fint(truths[tau])}
		for ei, est := range []core.Estimator{single, median, virtual} {
			cell, err := s.runCell(est, tau, truths[tau], xrand.Mix3(s.cfg.Seed, 11400+uint64(ei), uint64(ti)))
			if err != nil {
				return nil, err
			}
			row = append(row, fnum(cell.summary.MeanAbsErr)+" / "+fnum(cell.summary.Std))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationLC places the adapted Lattice Counting baseline on the τ grid so
// the §6.2 claim (consistent underestimation, omitted from the figures) is
// reproducible.
func (s *Suite) AblationLC() (*Table, error) {
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		return nil, err
	}
	truths, err := env.Truth(TauTable...)
	if err != nil {
		return nil, err
	}
	lcEst, err := lc.New(env.Data.Vectors, env.Family, lc.Config{K: env.Snap.K(), Seed: s.cfg.Seed})
	if err != nil {
		return nil, err
	}
	lc50, err := lc.New(env.Data.Vectors, env.Family, lc.Config{K: env.Snap.K(), MinSupport: 50, Seed: s.cfg.Seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation",
		Title:   "Baseline: adapted Lattice Counting LC(ξ) across τ (DBLP)",
		Columns: []string{"τ", "J", lcEst.Name(), lc50.Name()},
		Notes: []string{
			"§6.2: 'LC underestimates over the whole threshold range … it appears that LC is not adequate for binary LSH functions.'",
		},
	}
	for _, tau := range TauTable {
		a, err := lcEst.Estimate(tau, nil)
		if err != nil {
			return nil, err
		}
		b, err := lc50.Estimate(tau, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ftau(tau), fint(truths[tau]), fnum(a), fnum(b)})
	}
	return t, nil
}
