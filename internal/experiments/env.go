// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix C) on the synthetic dataset equivalents.
// Each experiment is addressed by the ID listed in DESIGN.md §5 and returns
// renderable tables; cmd/vsjbench drives the full suite and bench_test.go
// wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"lshjoin/internal/dataset"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
)

// TauGrid is the threshold grid of the paper's figures (0.1 … 1.0).
var TauGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// TauTable is the sparser grid of the paper's tables (Tables 1–2).
var TauTable = []float64{0.1, 0.3, 0.5, 0.7, 0.9}

// Env bundles one dataset with its LSH index and exact ground truth, shared
// by all experiments that use that dataset.
type Env struct {
	Data      dataset.Dataset
	Family    lsh.SimHash
	Snap      *lsh.Snapshot // immutable index view all experiments read
	BuildTime time.Duration
	GenTime   time.Duration

	joiner *exactjoin.Joiner
	truth  map[float64]int64
}

// NewEnv generates the dataset, builds a k×ℓ SimHash index (k ≤ 0 uses the
// dataset's recommended k), and prepares the exact joiner.
func NewEnv(kind dataset.Kind, n, k, ell int, seed uint64) (*Env, error) {
	t0 := time.Now()
	d, err := dataset.Generate(kind, n, seed)
	if err != nil {
		return nil, err
	}
	genTime := time.Since(t0)
	if k <= 0 {
		k = d.RecommendedK
	}
	if ell <= 0 {
		ell = 1
	}
	fam := lsh.NewSimHash(seed ^ 0x15AB1E)
	t0 = time.Now()
	snap, err := lsh.BuildSnapshot(d.Vectors, fam, k, ell)
	if err != nil {
		return nil, err
	}
	return &Env{
		Data:      d,
		Family:    fam,
		Snap:      snap,
		BuildTime: time.Since(t0),
		GenTime:   genTime,
		joiner:    exactjoin.NewJoiner(d.Vectors),
		truth:     make(map[float64]int64),
	}, nil
}

// Truth returns the exact join size at tau, computing and caching the whole
// requested grid on first miss (one inverted-index pass covers all taus).
func (e *Env) Truth(taus ...float64) (map[float64]int64, error) {
	var missing []float64
	for _, t := range taus {
		if _, ok := e.truth[t]; !ok {
			missing = append(missing, t)
		}
	}
	if len(missing) > 0 {
		counts, err := e.joiner.Counts(missing)
		if err != nil {
			return nil, err
		}
		for i, t := range missing {
			e.truth[t] = counts[i]
		}
	}
	out := make(map[float64]int64, len(taus))
	for _, t := range taus {
		out[t] = e.truth[t]
	}
	return out, nil
}

// TruthAt returns the exact join size at one threshold.
func (e *Env) TruthAt(tau float64) (int64, error) {
	m, err := e.Truth(tau)
	if err != nil {
		return 0, err
	}
	return m[tau], nil
}

// StratumTruth computes, for each requested tau, the exact number of true
// pairs inside stratum H of table t (J_H) by enumerating co-bucketed pairs.
// Θ(N_H) similarity evaluations regardless of how many taus are asked.
func (e *Env) StratumTruth(t int, taus []float64) map[float64]int64 {
	sorted := append([]float64(nil), taus...)
	sort.Float64s(sorted)
	counts := make([]int64, len(sorted))
	tab := e.Snap.Table(t)
	data := e.Data.Vectors
	tab.ForEachIntraPair(func(i, j int32) bool {
		s := vecmath.Cosine(data[i], data[j])
		// All thresholds ≤ s gain a pair.
		idx := sort.SearchFloat64s(sorted, s)
		if !(idx < len(sorted) && sorted[idx] == s) {
			idx--
		}
		for x := 0; x <= idx; x++ {
			counts[x]++
		}
		return true
	})
	out := make(map[float64]int64, len(sorted))
	for i, tau := range sorted {
		out[tau] = counts[i]
	}
	return out
}

// Describe summarizes the environment for experiment headers.
func (e *Env) Describe() string {
	tab := e.Snap.Table(0)
	return fmt.Sprintf("%s: n=%d k=%d ℓ=%d buckets=%d N_H=%d build=%v",
		e.Data.Name, e.Data.N(), e.Snap.K(), e.Snap.L(), tab.NumBuckets(), tab.NH(), e.BuildTime.Round(time.Millisecond))
}
