package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the same rows/series the paper
// reports, plus notes on how to read them.
type Table struct {
	ID      string // experiment id from DESIGN.md §5 (e.g. "fig2")
	Title   string // paper artifact (e.g. "Figure 2(a): relative error …")
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as GitHub-flavored markdown.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### [%s] %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}
	header := make([]string, len(t.Columns))
	rule := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(rule, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = pad(row[i], widths[i])
			} else {
				cells[i] = pad("", widths[i])
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// formatting helpers shared by the experiment runners.

func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func fint(v int64) string { return fmt.Sprintf("%d", v) }

func fpct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }

func ftau(v float64) string { return fmt.Sprintf("%.1f", v) }
