package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lshjoin/internal/dataset"
)

// tinySuite keeps integration tests fast: small collections, few reps.
func tinySuite() *Suite {
	return NewSuite(Config{DBLPN: 1500, NYTN: 500, PubMedN: 600, Reps: 5, Seed: 7})
}

func TestEnvTruthCaching(t *testing.T) {
	s := tinySuite()
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := env.TruthAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.TruthAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached truth changed: %d vs %d", a, b)
	}
	multi, err := env.Truth(0.3, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if multi[0.5] != a {
		t.Errorf("grid truth %d disagrees with single %d", multi[0.5], a)
	}
	if multi[0.3] < multi[0.5] || multi[0.5] < multi[0.9] {
		t.Errorf("truth not monotone: %v", multi)
	}
}

func TestEnvReuse(t *testing.T) {
	s := tinySuite()
	a, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (kind,k,ℓ) should reuse the environment")
	}
	c, err := s.Env(dataset.DBLP, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different k must build a separate environment")
	}
}

func TestStratumTruthConsistency(t *testing.T) {
	s := tinySuite()
	env, err := s.Env(dataset.DBLP, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.3, 0.7}
	jh := env.StratumTruth(0, taus)
	truths, err := env.Truth(taus...)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range taus {
		if jh[tau] > truths[tau] {
			t.Errorf("τ=%v: J_H=%d exceeds J=%d", tau, jh[tau], truths[tau])
		}
		if jh[tau] > env.Snap.Table(0).NH() {
			t.Errorf("τ=%v: J_H=%d exceeds N_H=%d", tau, jh[tau], env.Snap.Table(0).NH())
		}
	}
	if jh[0.3] < jh[0.7] {
		t.Errorf("J_H not monotone: %v", jh)
	}
}

func TestRegistryCoversDesignIndex(t *testing.T) {
	want := []string{
		"table1", "joinsize", "fig2", "fig3", "fig4", "space", "runtime",
		"fig5", "fig6", "fig7", "fig8", "cs", "fig9", "table2", "build", "ablation",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, DESIGN.md indexes %d", len(reg), len(want))
	}
}

// TestEachExperimentRuns executes every registered experiment at tiny scale
// and sanity-checks the rendered output.
func TestEachExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment run")
	}
	s := tinySuite()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Registry()[id](s)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 {
					t.Errorf("malformed table: %+v", tab)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %q: row width %d != %d columns", tab.Title, len(row), len(tab.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(buf.String(), tab.Title) {
					t.Error("render lost the title")
				}
			}
		})
	}
}

func TestRenderFormatting(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### [x] demo", "| a ", "long-column", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if fnum(0) != "0" {
		t.Error("fnum(0)")
	}
	if fpct(0.5) != "+50.0%" {
		t.Errorf("fpct = %q", fpct(0.5))
	}
	if ftau(0.30000001) != "0.3" {
		t.Errorf("ftau = %q", ftau(0.3))
	}
	if fint(42) != "42" {
		t.Errorf("fint = %q", fint(42))
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewSuite(Config{})
	cfg := s.Config()
	if cfg.DBLPN != 20000 || cfg.NYTN != 5000 || cfg.PubMedN != 8000 || cfg.Reps != 50 || cfg.Seed != 42 {
		t.Errorf("defaults: %+v", cfg)
	}
}
