package shardrpc

import (
	"encoding/binary"
	"fmt"

	"lshjoin/internal/lsh"
)

// Protocol messages. A connection starts with a handshake — the client
// sends Hello carrying the protocol magic and version, the server answers
// HelloOK with its hashing identity (family spec, k, ℓ) and current state —
// after which the client issues one request frame at a time and reads one
// response frame per request. Response types are the request type with the
// response bit set; Err and NotModified are shared response types. Payload
// layouts (all integers little endian, uvarint = unsigned LEB128):
//
//	Hello       magic "LSHRPC1\n" (8 bytes) | uvarint protoVersion
//	HelloOK     uvarint protoVersion | uvarint len(name) | name |
//	            u64 familySeed | uvarint bits | uvarint k | uvarint ℓ |
//	            u64 version | uvarint n
//	Ingest      vector batch in persist's encoding (uvarint count, then per
//	            vector: uvarint nnz, delta-coded dims, float32 weight bits)
//	IngestOK    uvarint firstID | uvarint count
//	Publish     (empty)
//	PublishOK   u64 version
//	Snapshot    u64 haveVersion
//	SnapshotOK  u64 version | snapshot blob (persist checkpoint encoding)
//	NotModified u64 version   (answers Snapshot when version == haveVersion)
//	Stats       (empty)
//	StatsOK     u64 version | uvarint n | uvarint ℓ | ℓ × uvarint N_H
//	Sample      uvarint table | uvarint count | u64 seed
//	SampleOK    u64 version | uvarint count | count × (uvarint i, uvarint j)
//	Err         uvarint code | message text (rest of payload)
const (
	protoMagic   = "LSHRPC1\n"
	protoVersion = 1

	// Request types.
	THello    = uint32(1)
	TIngest   = uint32(2)
	TPublish  = uint32(3)
	TSnapshot = uint32(4)
	TStats    = uint32(5)
	TSample   = uint32(6)

	// respBit marks a response; a response answers the request whose type it
	// carries below the bit.
	respBit = uint32(0x40)

	THelloOK    = THello | respBit
	TIngestOK   = TIngest | respBit
	TPublishOK  = TPublish | respBit
	TSnapshotOK = TSnapshot | respBit
	TStatsOK    = TStats | respBit
	TSampleOK   = TSample | respBit

	TNotModified = uint32(0x7E)
	TErr         = uint32(0x7F)
)

// Server error codes carried by Err responses.
const (
	CodeBadRequest  = uint64(1) // malformed or out-of-range request payload
	CodeUnsupported = uint64(2) // protocol magic/version mismatch
	CodeInternal    = uint64(3) // server-side failure applying the request
)

// Decode limits, mirroring persist's: corrupted fields must not drive huge
// allocations or impossible parameters.
const (
	maxNameLen = 64
	maxEll     = 1 << 12
	maxK       = 1 << 16
	maxN       = 1<<31 - 1
)

// Hello is a shard server's identity and current state as reported by the
// handshake.
type Hello struct {
	Family  lsh.FamilySpec
	K, Ell  int
	Version uint64
	N       int
}

// preader is a bounds-checked payload reader; every failure wraps
// ErrProtocol.
type preader struct {
	data []byte
	off  int
}

func pErr(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrProtocol)
}

func (p *preader) rem() int { return len(p.data) - p.off }

func (p *preader) bytes(n int) ([]byte, error) {
	if n < 0 || p.rem() < n {
		return nil, pErr("shardrpc: truncated payload at offset %d", p.off)
	}
	b := p.data[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *preader) u64() (uint64, error) {
	b, err := p.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (p *preader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		return 0, pErr("shardrpc: bad uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *preader) rest() []byte {
	b := p.data[p.off:]
	p.off = len(p.data)
	return b
}

func (p *preader) done() error {
	if p.rem() != 0 {
		return pErr("shardrpc: %d trailing payload bytes", p.rem())
	}
	return nil
}

func encodeHelloReq() []byte {
	buf := []byte(protoMagic)
	return binary.AppendUvarint(buf, protoVersion)
}

// decodeHelloReq returns the peer's protocol version. A wrong magic is a
// protocol violation; a wrong version is for the caller to judge (the server
// answers Err/CodeUnsupported so old clients get a readable reason).
func decodeHelloReq(payload []byte) (uint64, error) {
	p := &preader{data: payload}
	magic, err := p.bytes(len(protoMagic))
	if err != nil || string(magic) != protoMagic {
		return 0, pErr("shardrpc: bad protocol magic")
	}
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	return v, p.done()
}

func encodeHelloResp(h Hello) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, protoVersion)
	buf = binary.AppendUvarint(buf, uint64(len(h.Family.Name)))
	buf = append(buf, h.Family.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Family.Seed)
	buf = binary.AppendUvarint(buf, uint64(h.Family.Bits))
	buf = binary.AppendUvarint(buf, uint64(h.K))
	buf = binary.AppendUvarint(buf, uint64(h.Ell))
	buf = binary.LittleEndian.AppendUint64(buf, h.Version)
	buf = binary.AppendUvarint(buf, uint64(h.N))
	return buf
}

func decodeHelloResp(payload []byte) (Hello, error) {
	var h Hello
	p := &preader{data: payload}
	pv, err := p.uvarint()
	if err != nil {
		return h, err
	}
	if pv != protoVersion {
		return h, pErr("shardrpc: server speaks protocol version %d, want %d", pv, protoVersion)
	}
	nameLen, err := p.uvarint()
	if err != nil {
		return h, err
	}
	if nameLen > maxNameLen {
		return h, pErr("shardrpc: family name length %d", nameLen)
	}
	name, err := p.bytes(int(nameLen))
	if err != nil {
		return h, err
	}
	h.Family.Name = string(name)
	if h.Family.Seed, err = p.u64(); err != nil {
		return h, err
	}
	bits, err := p.uvarint()
	if err != nil {
		return h, err
	}
	h.Family.Bits = int(bits)
	k, err := p.uvarint()
	if err != nil {
		return h, err
	}
	ell, err := p.uvarint()
	if err != nil {
		return h, err
	}
	if k < 1 || k > maxK || ell < 1 || ell > maxEll {
		return h, pErr("shardrpc: parameters k=%d ℓ=%d out of range", k, ell)
	}
	h.K, h.Ell = int(k), int(ell)
	if h.Version, err = p.u64(); err != nil {
		return h, err
	}
	n, err := p.uvarint()
	if err != nil {
		return h, err
	}
	if n > maxN {
		return h, pErr("shardrpc: vector count %d out of range", n)
	}
	h.N = int(n)
	return h, p.done()
}

func encodeIngestResp(first, count int) []byte {
	buf := binary.AppendUvarint(nil, uint64(first))
	return binary.AppendUvarint(buf, uint64(count))
}

func decodeIngestResp(payload []byte) (first, count int, err error) {
	p := &preader{data: payload}
	f, err := p.uvarint()
	if err != nil {
		return 0, 0, err
	}
	c, err := p.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if f > maxN || c > maxN {
		return 0, 0, pErr("shardrpc: ingest ids out of range")
	}
	return int(f), int(c), p.done()
}

func encodeVersion(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

func decodeVersion(payload []byte) (uint64, error) {
	p := &preader{data: payload}
	v, err := p.u64()
	if err != nil {
		return 0, err
	}
	return v, p.done()
}

func encodeSnapshotResp(version uint64, blob []byte) []byte {
	buf := binary.LittleEndian.AppendUint64(make([]byte, 0, 8+len(blob)), version)
	return append(buf, blob...)
}

func decodeSnapshotResp(payload []byte) (uint64, []byte, error) {
	p := &preader{data: payload}
	v, err := p.u64()
	if err != nil {
		return 0, nil, err
	}
	return v, p.rest(), nil
}

func encodeStatsResp(version uint64, sum lsh.SnapshotSummary) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, version)
	buf = binary.AppendUvarint(buf, uint64(sum.N))
	buf = binary.AppendUvarint(buf, uint64(len(sum.TableNH)))
	for _, nh := range sum.TableNH {
		buf = binary.AppendUvarint(buf, uint64(nh))
	}
	return buf
}

func decodeStatsResp(payload []byte) (lsh.SnapshotSummary, error) {
	var sum lsh.SnapshotSummary
	p := &preader{data: payload}
	v, err := p.u64()
	if err != nil {
		return sum, err
	}
	sum.Version = v
	n, err := p.uvarint()
	if err != nil {
		return sum, err
	}
	if n > maxN {
		return sum, pErr("shardrpc: vector count %d out of range", n)
	}
	sum.N = int(n)
	ell, err := p.uvarint()
	if err != nil {
		return sum, err
	}
	if ell < 1 || ell > maxEll {
		return sum, pErr("shardrpc: table count %d out of range", ell)
	}
	sum.TableNH = make([]int64, ell)
	for t := range sum.TableNH {
		nh, err := p.uvarint()
		if err != nil {
			return sum, err
		}
		if nh > 1<<62 {
			return sum, pErr("shardrpc: N_H out of range")
		}
		sum.TableNH[t] = int64(nh)
	}
	return sum, p.done()
}

func encodeSampleReq(table, count int, seed uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(table))
	buf = binary.AppendUvarint(buf, uint64(count))
	return binary.LittleEndian.AppendUint64(buf, seed)
}

func decodeSampleReq(payload []byte) (table, count int, seed uint64, err error) {
	p := &preader{data: payload}
	t, err := p.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	c, err := p.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	if t >= maxEll || c > maxN {
		return 0, 0, 0, pErr("shardrpc: sample request out of range")
	}
	if seed, err = p.u64(); err != nil {
		return 0, 0, 0, err
	}
	return int(t), int(c), seed, p.done()
}

func encodeSampleResp(version uint64, pairs [][2]int32) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, version)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, pr := range pairs {
		buf = binary.AppendUvarint(buf, uint64(pr[0]))
		buf = binary.AppendUvarint(buf, uint64(pr[1]))
	}
	return buf
}

func decodeSampleResp(payload []byte) (uint64, [][2]int32, error) {
	p := &preader{data: payload}
	v, err := p.u64()
	if err != nil {
		return 0, nil, err
	}
	count, err := p.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if count > maxN || count > uint64(p.rem()) {
		return 0, nil, pErr("shardrpc: sample count %d out of range", count)
	}
	pairs := make([][2]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		a, err := p.uvarint()
		if err != nil {
			return 0, nil, err
		}
		b, err := p.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if a > maxN || b > maxN {
			return 0, nil, pErr("shardrpc: sample id out of range")
		}
		pairs = append(pairs, [2]int32{int32(a), int32(b)})
	}
	return v, pairs, p.done()
}

func encodeErrResp(code uint64, msg string) []byte {
	buf := binary.AppendUvarint(nil, code)
	return append(buf, msg...)
}

func decodeErrResp(payload []byte) *ServerError {
	p := &preader{data: payload}
	code, err := p.uvarint()
	if err != nil {
		return &ServerError{Code: 0, Msg: "unreadable error response"}
	}
	return &ServerError{Code: code, Msg: string(p.rest())}
}
