package shardrpc

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lshjoin/internal/lsh"
)

// FuzzFrameDecode drives the frame decoder — the first code that touches
// every byte arriving from the network — with arbitrary input: it must
// never panic, must type every structural failure as ErrProtocol (i/o
// truncation excepted), and on success must round-trip. Decoded payloads
// are then pushed through every response decoder, which must be equally
// panic-free on arbitrary bytes.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, THello, encodeHelloReq()))
	f.Add(AppendFrame(nil, THelloOK, encodeHelloResp(Hello{
		Family: lsh.FamilySpec{Name: "simhash", Seed: 7, Bits: 1}, K: 6, Ell: 3, Version: 1,
	})))
	f.Add(AppendFrame(nil, TSnapshotOK, encodeSnapshotResp(3, []byte("blob"))))
	f.Add(AppendFrame(nil, TStatsOK, encodeStatsResp(2, lsh.SnapshotSummary{N: 4, TableNH: []int64{6, 0, 1}})))
	f.Add(AppendFrame(nil, TSampleOK, encodeSampleResp(2, [][2]int32{{0, 3}, {1, 2}})))
	f.Add(AppendFrame(nil, TErr, encodeErrResp(CodeBadRequest, "nope")))
	f.Add([]byte("LSHRPC1\n"))
	corrupt := AppendFrame(nil, TStatsOK, []byte("payload"))
	corrupt[len(corrupt)-2] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrProtocol) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("ReadFrame error is untyped: %v", err)
			}
			return
		}
		// Round-trip: re-encoding the decoded frame must reproduce the bytes
		// consumed.
		consumed := frameHeaderLen + len(payload) + 4
		if enc := AppendFrame(nil, typ, payload); !bytes.Equal(enc, data[:consumed]) {
			t.Fatalf("frame round-trip mismatch for type %d", typ)
		}
		// Every payload decoder must reject garbage gracefully.
		decodeHelloReq(payload)
		decodeHelloResp(payload)
		decodeIngestResp(payload)
		decodeVersion(payload)
		decodeSnapshotResp(payload)
		decodeStatsResp(payload)
		decodeSampleReq(payload)
		decodeSampleResp(payload)
		decodeErrResp(payload)
	})
}
