package shardrpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// testVectors builds a deterministic corpus with some duplicate-support
// structure so buckets are non-trivial.
func testVectors(n int) []vecmath.Vector {
	rng := xrand.New(99)
	vs := make([]vecmath.Vector, 0, n)
	for i := 0; i < n; i++ {
		dims := make([]uint32, 0, 6)
		base := uint32(rng.Intn(40))
		for d := 0; d < 6; d++ {
			dims = append(dims, base+uint32(rng.Intn(25)))
		}
		vs = append(vs, vecmath.FromDims(dims))
	}
	return vs
}

// startServer runs a real shard server on loopback and returns its address
// and a stop function.
func startServer(t *testing.T, opt ServerOptions) (*Server, string) {
	t.Helper()
	family := lsh.NewSimHash(7)
	idx, err := lsh.NewEmptyIndex(family, 6, 3)
	if err != nil {
		t.Fatalf("NewEmptyIndex: %v", err)
	}
	srv := NewServer(idx, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func testClientOptions() ClientOptions {
	return ClientOptions{
		DialTimeout: 2 * time.Second,
		CallTimeout: 2 * time.Second,
		Retries:     1,
		Backoff:     10 * time.Millisecond,
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, addr := startServer(t, ServerOptions{})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	h := c.Hello()
	if h.Family.Name != "simhash" || h.Family.Seed != 7 || h.K != 6 || h.Ell != 3 {
		t.Fatalf("handshake identity = %+v", h)
	}
	if h.Version != 1 || h.N != 0 {
		t.Fatalf("fresh server reports version %d, n %d", h.Version, h.N)
	}

	vs := testVectors(120)
	first, count, err := c.Ingest(vs[:80])
	if err != nil || first != 0 || count != 80 {
		t.Fatalf("Ingest = (%d, %d, %v)", first, count, err)
	}
	first, count, err = c.Ingest(vs[80:])
	if err != nil || first != 80 || count != 40 {
		t.Fatalf("second Ingest = (%d, %d, %v)", first, count, err)
	}

	ver, err := c.Publish()
	if err != nil || ver != 2 {
		t.Fatalf("Publish = (%d, %v)", ver, err)
	}

	sum, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	want := srv.Index().Current().Summary()
	if sum.Version != want.Version || sum.N != want.N || len(sum.TableNH) != len(want.TableNH) {
		t.Fatalf("Stats = %+v, want %+v", sum, want)
	}
	for i := range sum.TableNH {
		if sum.TableNH[i] != want.TableNH[i] {
			t.Fatalf("Stats N_H[%d] = %d, want %d", i, sum.TableNH[i], want.TableNH[i])
		}
	}

	version, blob, notMod, err := c.Snapshot(0)
	if err != nil || notMod {
		t.Fatalf("Snapshot = (%d, notMod=%v, %v)", version, notMod, err)
	}
	idx2, err := persist.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	snap, local := srv.Index().Current(), idx2.Current()
	if local.Version() != snap.Version() || local.N() != snap.N() {
		t.Fatalf("fetched snapshot at (v%d, n%d), server at (v%d, n%d)",
			local.Version(), local.N(), snap.Version(), snap.N())
	}

	// The fetched snapshot must be sampling-equivalent: the server-side
	// sample batch and a local draw from the reconstructed table with the
	// same seed must agree pair for pair.
	sver, pairs, err := c.SampleBatch(1, 50, 1234)
	if err != nil || sver != version {
		t.Fatalf("SampleBatch = (v%d, %v), want v%d", sver, err, version)
	}
	rng := xrand.New(1234)
	tab := local.Table(1)
	for d, pr := range pairs {
		i, j, ok := tab.SamplePair(rng)
		if !ok || int32(i) != pr[0] || int32(j) != pr[1] {
			t.Fatalf("draw %d: local (%d, %d, %v) vs remote (%d, %d)", d, i, j, ok, pr[0], pr[1])
		}
	}
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs, want 50", len(pairs))
	}

	// Not-modified fast path.
	version2, blob, notMod, err := c.Snapshot(version)
	if err != nil || !notMod || blob != nil || version2 != version {
		t.Fatalf("Snapshot(have) = (%d, %d bytes, notMod=%v, %v)", version2, len(blob), notMod, err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, addr := startServer(t, ServerOptions{})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if _, _, err := c.Ingest(testVectors(2)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	_, _, err = c.SampleBatch(9, 5, 1) // only 3 tables exist
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadRequest {
		t.Fatalf("out-of-range table error = %v, want ServerError/CodeBadRequest", err)
	}
	// The connection survives a request-level rejection.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after rejection: %v", err)
	}
}

func TestServerPublishEvery(t *testing.T) {
	srv, addr := startServer(t, ServerOptions{PublishEvery: 10})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	vs := testVectors(25)
	if _, _, err := c.Ingest(vs[:9]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if v := srv.Index().Current().Version(); v != 1 {
		t.Fatalf("published at %d before policy size", v)
	}
	if _, _, err := c.Ingest(vs[9:]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if v := srv.Index().Current().Version(); v != 2 {
		t.Fatalf("version %d after crossing policy size, want 2", v)
	}
}

// fakeServer accepts connections, answers the handshake like a real shard,
// then hands the connection to behave.
func fakeServer(t *testing.T, behave func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				typ, _, err := ReadFrame(conn)
				if err != nil || typ != THello {
					return
				}
				h := Hello{Family: lsh.FamilySpec{Name: "simhash", Seed: 7, Bits: 1}, K: 6, Ell: 3, Version: 1}
				if err := WriteFrame(conn, THelloOK, encodeHelloResp(h)); err != nil {
					return
				}
				behave(conn)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestClientTimeoutIsUnavailable(t *testing.T) {
	// A server that accepts and handshakes but never answers requests must
	// surface ErrUnavailable within the call timeout budget — no hang.
	addr := fakeServer(t, func(conn net.Conn) {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	})
	opt := ClientOptions{CallTimeout: 150 * time.Millisecond, Retries: 1, Backoff: 5 * time.Millisecond}
	c, err := Dial(addr, opt)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Stats()
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Stats on mute server = %v, want ErrUnavailable", err)
	}
	// 2 attempts × 150ms timeout + backoff + reconnects; anything under a
	// couple of seconds proves the deadline actually bounds the call.
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("unavailability took %v to surface", d)
	}
}

func TestClientCorruptFrameIsProtocolError(t *testing.T) {
	// A server that answers with a corrupted frame (bad checksum) must
	// surface ErrProtocol, not hang and not retry forever.
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := ReadFrame(conn); err != nil {
			return
		}
		frame := AppendFrame(nil, TStatsOK, []byte("junk payload"))
		frame[len(frame)-1] ^= 0xFF // break the CRC
		conn.Write(frame)
	})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Stats on corrupt frame = %v, want ErrProtocol", err)
	}
}

func TestClientShortFrameIsUnavailable(t *testing.T) {
	// A server that writes half a frame and slams the connection looks like
	// a transport failure: retried, then ErrUnavailable.
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := ReadFrame(conn); err != nil {
			return
		}
		full := AppendFrame(nil, TStatsOK, encodeStatsResp(1, lsh.SnapshotSummary{N: 0, TableNH: []int64{0, 0, 0}}))
		conn.Write(full[:len(full)/2])
	})
	c, err := Dial(addr, ClientOptions{CallTimeout: time.Second, Retries: 1, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Stats on short frame = %v, want ErrUnavailable", err)
	}
}

func TestClientWrongResponseTypeIsProtocolError(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := ReadFrame(conn); err != nil {
			return
		}
		WriteFrame(conn, TSampleOK, encodeSampleResp(1, nil))
	})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("mispaired response = %v, want ErrProtocol", err)
	}
}

func TestClientReconnectsAfterServerDrop(t *testing.T) {
	// The server reaps idle connections; an idempotent call on a reaped
	// connection must transparently reconnect and succeed.
	_, addr := startServer(t, ServerOptions{IdleTimeout: 30 * time.Millisecond})
	c, err := Dial(addr, testClientOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	time.Sleep(120 * time.Millisecond) // let the server drop the connection
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after idle drop: %v", err)
	}
}

func TestIngestNotReplayedAfterPartialFailure(t *testing.T) {
	// A connection that dies mid-exchange on a non-idempotent Ingest must
	// surface ErrUnavailable without a second application.
	calls := make(chan struct{}, 16)
	addr := fakeServer(t, func(conn net.Conn) {
		for {
			typ, _, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if typ == TIngest {
				calls <- struct{}{}
				return // close without answering
			}
		}
	})
	c, err := Dial(addr, ClientOptions{CallTimeout: time.Second, Retries: 3, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, _, err := c.Ingest(testVectors(3)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ingest on dropped conn = %v, want ErrUnavailable", err)
	}
	if got := len(calls); got != 1 {
		t.Fatalf("ingest hit the server %d times, want exactly 1 (no replay)", got)
	}
}
