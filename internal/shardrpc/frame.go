// Package shardrpc is the wire protocol between a shard server — one
// process owning one lsh.Index — and the coordinator that merges per-shard
// state into distributed estimates (the public RemoteCollection).
//
// The protocol is deliberately small: length-prefixed binary frames with the
// same CRC32-C discipline as the persist layer's snapshot sections, carrying
// a handful of request/response messages (see protocol.go). Snapshot
// responses reuse the checkpoint file encoding verbatim and ingest reuses
// the delta log's vector encoding, so the network layer adds no second
// codec: persist's decode limits and fuzz coverage apply to every byte that
// crosses the wire, and a fetched shard rebuilds through the same
// lsh.RestoreIndex path whose draw-for-draw equivalence the durability tests
// prove. DESIGN.md documents the byte layouts.
package shardrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// A frame is one protocol message:
//
//	uint32  message type (little endian)
//	uint64  payload length
//	payload
//	uint32  CRC32-C over (type, length, payload)
//
// — the persist section format, framed for a stream: the fixed 12-byte
// header is read first, the length bounds the payload read, and the trailing
// checksum rejects corruption before any payload byte is interpreted.

const (
	frameHeaderLen = 12

	// MaxPayload bounds a frame's payload so a corrupted or hostile length
	// field cannot drive a huge allocation.
	MaxPayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed error classes of the client/server layer. Test with errors.Is.
var (
	// ErrProtocol reports bytes that violate the protocol: a bad checksum,
	// an oversize length, a malformed payload, or a response of the wrong
	// type. Protocol violations are never retried — the peer is speaking the
	// wrong language, not having a bad moment.
	ErrProtocol = errors.New("shardrpc: protocol violation")

	// ErrUnavailable reports a shard that could not be reached or did not
	// answer in time: dial failures, i/o timeouts, and connections closed
	// mid-exchange. Unavailability is transient by definition; the client
	// retries idempotent calls with backoff before surfacing it.
	ErrUnavailable = errors.New("shardrpc: shard unavailable")
)

// ServerError is a shard server's explicit rejection of a request (decoded
// from a TErr response): the request was delivered and understood, and the
// server answered "no". It is never retried.
type ServerError struct {
	Code uint64
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("shardrpc: server error %d: %s", e.Code, e.Msg)
}

// AppendFrame appends the frame encoding of one message to buf.
func AppendFrame(buf []byte, typ uint32, payload []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// WriteFrame writes one framed message to w.
func WriteFrame(w io.Writer, typ uint32, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("shardrpc: %d-byte payload exceeds frame limit", len(payload))
	}
	_, err := w.Write(AppendFrame(nil, typ, payload))
	return err
}

// ReadFrame reads one framed message from r, verifying its checksum. I/O
// failures (including timeouts and peers closing mid-frame) return the
// underlying error; structural violations wrap ErrProtocol. The returned
// payload is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (typ uint32, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = binary.LittleEndian.Uint32(hdr[:4])
	plen := binary.LittleEndian.Uint64(hdr[4:])
	if plen > MaxPayload {
		return 0, nil, fmt.Errorf("shardrpc: frame length %d exceeds limit: %w", plen, ErrProtocol)
	}
	body := make([]byte, plen+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	payload = body[:plen]
	sum := crc32.Checksum(hdr[:], crcTable)
	sum = crc32.Update(sum, crcTable, payload)
	if want := binary.LittleEndian.Uint32(body[plen:]); sum != want {
		return 0, nil, fmt.Errorf("shardrpc: frame type %d checksum mismatch: %w", typ, ErrProtocol)
	}
	return typ, payload, nil
}
