package shardrpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/vecmath"
)

// ClientOptions tunes one shard connection.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response exchange, write and read
	// included (default 10s). A shard that does not answer within it is
	// treated as unavailable — calls never hang.
	CallTimeout time.Duration
	// Retries is how many times a transiently failed call is re-attempted
	// beyond the first try (default 2). Only idempotent requests — and
	// non-idempotent ones whose bytes never reached the wire — are retried;
	// an Ingest that may have been applied is never replayed.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 50ms). Deterministic: no jitter, so tests are exact.
	Backoff time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// WithNoRetries disables transient retries (Retries would default to 2).
func (o ClientOptions) WithNoRetries() ClientOptions {
	o.Retries = -1
	return o
}

// Client is one connection to one shard server, reconnecting on demand
// after transient failures. Calls are serialized per client (the protocol
// is one-request-one-response per connection); a coordinator that wants
// parallel fan-out uses one Client per shard. Every returned error is
// typed: ErrUnavailable for transport failures and timeouts (after
// retries), ErrProtocol for malformed or mismatched responses, *ServerError
// for explicit server rejections.
type Client struct {
	addr string
	opt  ClientOptions

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	hello  Hello
	pinned bool
}

// Dial connects to a shard server and performs the handshake, returning its
// identity alongside the client. The identity is pinned: if a reconnect
// after a transient failure reaches a server with a different hashing
// identity (family, k, ℓ), the call fails with ErrProtocol rather than
// silently mixing incompatible shards.
func Dial(addr string, opt ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opt: opt.withDefaults()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// Hello returns the server identity captured at the last successful
// handshake.
func (c *Client) Hello() Hello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hello
}

// Close closes the connection. The client must not be used afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br = nil, nil
	return err
}

func (c *Client) unavailable(err error) error {
	return fmt.Errorf("shardrpc: %s: %v: %w", c.addr, err, ErrUnavailable)
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}

// connectLocked dials and handshakes. Callers hold c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
	if err != nil {
		return c.unavailable(err)
	}
	conn.SetDeadline(time.Now().Add(c.opt.CallTimeout))
	br := bufio.NewReader(conn)
	if err := WriteFrame(conn, THello, encodeHelloReq()); err != nil {
		conn.Close()
		return c.unavailable(err)
	}
	rtyp, payload, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		if errors.Is(err, ErrProtocol) {
			return err
		}
		return c.unavailable(err)
	}
	switch rtyp {
	case THelloOK:
	case TErr:
		conn.Close()
		return decodeErrResp(payload)
	default:
		conn.Close()
		return pErr("shardrpc: handshake answered with type %d", rtyp)
	}
	h, err := decodeHelloResp(payload)
	if err != nil {
		conn.Close()
		return err
	}
	if c.pinned && (h.Family != c.hello.Family || h.K != c.hello.K || h.Ell != c.hello.Ell) {
		conn.Close()
		return pErr("shardrpc: %s changed hashing identity across reconnect", c.addr)
	}
	conn.SetDeadline(time.Time{})
	c.conn, c.br = conn, br
	c.hello, c.pinned = h, true
	return nil
}

// call performs one request/response exchange, reconnecting and retrying
// transient failures per the client options. want lists the acceptable
// response types; TErr is always decoded into a *ServerError.
func (c *Client) call(typ uint32, payload []byte, idempotent bool, want ...uint32) (uint32, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.opt.Backoff << (attempt - 1))
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				if errors.Is(err, ErrUnavailable) {
					continue // nothing reached the wire; always retryable
				}
				return 0, nil, err // protocol violation or server rejection
			}
		}
		c.conn.SetDeadline(time.Now().Add(c.opt.CallTimeout))
		if err := WriteFrame(c.conn, typ, payload); err != nil {
			c.dropLocked()
			lastErr = c.unavailable(err)
			if !idempotent {
				break // bytes may have reached the server; do not replay
			}
			continue
		}
		rtyp, resp, err := ReadFrame(c.br)
		if err != nil {
			c.dropLocked()
			if errors.Is(err, ErrProtocol) {
				return 0, nil, err
			}
			lastErr = c.unavailable(err)
			if !idempotent {
				break
			}
			continue
		}
		c.conn.SetDeadline(time.Time{})
		if rtyp == TErr {
			return 0, nil, decodeErrResp(resp)
		}
		for _, w := range want {
			if rtyp == w {
				return rtyp, resp, nil
			}
		}
		c.dropLocked() // request/response pairing is broken on this stream
		return 0, nil, pErr("shardrpc: response type %d to request type %d", rtyp, typ)
	}
	return 0, nil, lastErr
}

// Ingest streams a vector batch to the shard, returning the first assigned
// local id and the count. Ingest is not idempotent: a transient failure
// after the request hit the wire surfaces as ErrUnavailable without a
// replay (the batch may or may not have been applied; the caller decides).
func (c *Client) Ingest(vs []vecmath.Vector) (first, count int, err error) {
	if len(vs) == 0 {
		return 0, 0, fmt.Errorf("shardrpc: empty ingest batch")
	}
	_, resp, err := c.call(TIngest, persist.EncodeVectors(vs), false, TIngestOK)
	if err != nil {
		return 0, 0, err
	}
	return decodeIngestResp(resp)
}

// Publish asks the shard to publish pending ingest and returns the
// resulting version. Idempotent.
func (c *Client) Publish() (uint64, error) {
	_, resp, err := c.call(TPublish, nil, true, TPublishOK)
	if err != nil {
		return 0, err
	}
	return decodeVersion(resp)
}

// Snapshot fetches the shard's current snapshot (publishing pending ingest
// first). With have set to a version the caller already holds, an unchanged
// shard answers with notModified=true and ships no blob. The blob is the
// persist checkpoint encoding; decode with persist.DecodeSnapshot.
func (c *Client) Snapshot(have uint64) (version uint64, blob []byte, notModified bool, err error) {
	rtyp, resp, err := c.call(TSnapshot, encodeVersion(have), true, TSnapshotOK, TNotModified)
	if err != nil {
		return 0, nil, false, err
	}
	if rtyp == TNotModified {
		v, err := decodeVersion(resp)
		return v, nil, true, err
	}
	version, blob, err = decodeSnapshotResp(resp)
	return version, blob, false, err
}

// Stats fetches the shard's cheap summary digest (version, n, per-table
// N_H) without shipping the snapshot.
func (c *Client) Stats() (lsh.SnapshotSummary, error) {
	_, resp, err := c.call(TStats, nil, true, TStatsOK)
	if err != nil {
		return lsh.SnapshotSummary{}, err
	}
	return decodeStatsResp(resp)
}

// SampleBatch draws count weighted bucket pairs from the shard's table on
// the server side, from the deterministic stream seeded by seed, returning
// the snapshot version sampled and the (i, j) local-id pairs. A client
// holding the same snapshot version draws the identical pairs locally from
// the same seed — the cross-check RemoteCollection.VerifyShardSampling
// performs.
func (c *Client) SampleBatch(table, count int, seed uint64) (uint64, [][2]int32, error) {
	if count < 0 {
		return 0, nil, fmt.Errorf("shardrpc: negative sample count")
	}
	_, resp, err := c.call(TSample, encodeSampleReq(table, count, seed), true, TSampleOK)
	if err != nil {
		return 0, nil, err
	}
	return decodeSampleResp(resp)
}
