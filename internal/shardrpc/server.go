package shardrpc

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/xrand"
)

// ServerOptions tunes one shard server.
type ServerOptions struct {
	// PublishEvery, when > 0, publishes a fresh snapshot version as soon as
	// the pending ingest delta reaches that many vectors — the same policy
	// as the public Options.PublishEvery. 0 publishes on demand: Snapshot,
	// Stats and Sample requests always publish pending ingest first, so
	// estimates made from fetched state observe every acknowledged ingest.
	PublishEvery int
	// IdleTimeout, when > 0, closes connections that send no request for
	// that long. 0 keeps idle connections open until Close.
	IdleTimeout time.Duration
}

// Server owns one lsh.Index — one shard of a distributed collection — and
// serves the protocol over a listener: streamed ingest, snapshot fetches
// with a not-modified fast path, summaries and server-side sample batches.
//
// Concurrency: each connection is handled by its own goroutine, and all of
// them share the index through its usual write-lock/atomic-snapshot
// discipline, so concurrent ingest and snapshot requests interleave exactly
// like concurrent Insert and capture calls on an in-process collection.
// Durability is orthogonal: attach a persist.Store write hook to the index
// (as the public ShardServer does via Options.Dir) and every published
// version persists with no involvement from this package.
type Server struct {
	idx *lsh.Index
	opt ServerOptions

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Snapshot responses are cached per published version: snapshots are
	// immutable, so the encoding is too, and every connection fetching the
	// same version reuses one buffer.
	blobMu  sync.Mutex
	blobVer uint64
	blob    []byte
}

// NewServer wraps an index (typically lsh.NewEmptyIndex, or a recovered
// durable one) as a shard server. Call Serve to accept connections.
func NewServer(idx *lsh.Index, opt ServerOptions) *Server {
	return &Server{idx: idx, opt: opt, conns: make(map[net.Conn]struct{})}
}

// Index returns the served index, for the process that owns the server
// (local preloading, checkpointing on shutdown).
func (s *Server) Index() *lsh.Index { return s.idx }

// Serve accepts connections on ln until Close, serving each on its own
// goroutine. It returns nil after Close, or the first accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("shardrpc: server is closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("shardrpc: server is already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("shardrpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to drain. The index itself stays usable — the
// owner may still checkpoint or close its store.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	for {
		if s.opt.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout))
		}
		typ, payload, err := ReadFrame(br)
		if err != nil {
			// EOF, a closed connection, an idle timeout, or garbage framing:
			// nothing sensible can be answered on this byte stream either
			// way, so just drop it. Request-level errors (a well-framed but
			// bad payload) are answered with Err below instead.
			return
		}
		rtyp, resp := s.handle(typ, payload)
		if err := WriteFrame(conn, rtyp, resp); err != nil {
			return
		}
	}
}

// handle serves one request frame and returns the response frame.
func (s *Server) handle(typ uint32, payload []byte) (uint32, []byte) {
	switch typ {
	case THello:
		pv, err := decodeHelloReq(payload)
		if err != nil {
			return TErr, encodeErrResp(CodeBadRequest, err.Error())
		}
		if pv != protoVersion {
			return TErr, encodeErrResp(CodeUnsupported,
				fmt.Sprintf("protocol version %d not supported (server speaks %d)", pv, protoVersion))
		}
		snap := s.idx.Current()
		spec, err := lsh.SpecOf(snap.Family())
		if err != nil {
			return TErr, encodeErrResp(CodeInternal, err.Error())
		}
		return THelloOK, encodeHelloResp(Hello{
			Family: spec, K: snap.K(), Ell: snap.L(),
			Version: snap.Version(), N: snap.N(),
		})

	case TIngest:
		vs, err := persist.DecodeVectors(payload)
		if err != nil {
			return TErr, encodeErrResp(CodeBadRequest, err.Error())
		}
		if len(vs) == 0 {
			return TErr, encodeErrResp(CodeBadRequest, "empty ingest batch")
		}
		first := s.idx.InsertBatch(vs)
		if p := s.opt.PublishEvery; p > 0 && s.idx.Pending() >= p {
			s.idx.Snapshot()
		}
		return TIngestOK, encodeIngestResp(first, len(vs))

	case TPublish:
		return TPublishOK, encodeVersion(s.idx.Snapshot().Version())

	case TSnapshot:
		have, err := decodeVersion(payload)
		if err != nil {
			return TErr, encodeErrResp(CodeBadRequest, err.Error())
		}
		snap := s.idx.Snapshot()
		if snap.Version() == have {
			return TNotModified, encodeVersion(have)
		}
		blob, err := s.snapshotBlob(snap)
		if err != nil {
			return TErr, encodeErrResp(CodeInternal, err.Error())
		}
		return TSnapshotOK, encodeSnapshotResp(snap.Version(), blob)

	case TStats:
		snap := s.idx.Snapshot()
		return TStatsOK, encodeStatsResp(snap.Version(), snap.Summary())

	case TSample:
		table, count, seed, err := decodeSampleReq(payload)
		if err != nil {
			return TErr, encodeErrResp(CodeBadRequest, err.Error())
		}
		snap := s.idx.Snapshot()
		if table >= snap.L() {
			return TErr, encodeErrResp(CodeBadRequest,
				fmt.Sprintf("table %d out of range (ℓ = %d)", table, snap.L()))
		}
		tab := snap.Table(table)
		rng := xrand.New(seed)
		pairs := make([][2]int32, 0, count)
		for d := 0; d < count; d++ {
			i, j, ok := tab.SamplePair(rng)
			if !ok {
				break
			}
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
		return TSampleOK, encodeSampleResp(snap.Version(), pairs)
	}
	return TErr, encodeErrResp(CodeBadRequest, fmt.Sprintf("unknown request type %d", typ))
}

// snapshotBlob returns the persist encoding of snap, reusing the cached
// buffer when the version has not moved.
func (s *Server) snapshotBlob(snap *lsh.Snapshot) ([]byte, error) {
	s.blobMu.Lock()
	defer s.blobMu.Unlock()
	if s.blob != nil && s.blobVer == snap.Version() {
		return s.blob, nil
	}
	blob, err := persist.EncodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	// Adopt forward only: concurrent fetches that raced a publish keep the
	// cache at the newest version they saw.
	if s.blob == nil || snap.Version() > s.blobVer {
		s.blob, s.blobVer = blob, snap.Version()
	}
	return blob, nil
}
