// Package dataset provides the three workload presets of the paper's
// evaluation as synthetic equivalents (DESIGN.md §3 documents the
// substitution): DBLP-like binary title vectors, NYT-like long TF-IDF
// articles, and PUBMED-like largely-dissimilar TF-IDF abstracts. Scale is a
// parameter; experiments default to laptop-scale n while preserving the
// similarity-skew shape the estimators are sensitive to.
package dataset

import (
	"fmt"

	"lshjoin/internal/corpus"
	"lshjoin/internal/vecmath"
)

// Dataset is a named vector collection.
type Dataset struct {
	Name    string
	Vectors []vecmath.Vector
	// RecommendedK is the LSH parameter the paper uses with this data
	// (k = 20 for DBLP/NYT per §6.1, k = 5 for PUBMED per App. C.4).
	RecommendedK int
}

// N returns the collection size.
func (d Dataset) N() int { return len(d.Vectors) }

// Kind selects one of the paper's three corpus shapes.
type Kind string

// The three dataset presets.
const (
	DBLP   Kind = "dblp"
	NYT    Kind = "nyt"
	PubMed Kind = "pubmed"
)

// Kinds lists all presets.
func Kinds() []Kind { return []Kind{DBLP, NYT, PubMed} }

// Generate builds the preset identified by kind with n vectors from seed.
func Generate(kind Kind, n int, seed uint64) (Dataset, error) {
	switch kind {
	case DBLP:
		return DBLPLike(n, seed)
	case NYT:
		return NYTLike(n, seed)
	case PubMed:
		return PubMedLike(n, seed)
	default:
		return Dataset{}, fmt.Errorf("dataset: unknown kind %q", kind)
	}
}

// DBLPLike mimics the paper's DBLP corpus: binary vectors over a ~56k-word
// vocabulary, average ~14 features (min 3, max 219), a heavy stop-word head
// (titles share words like "analysis", "system"), and a small population of
// exact and near duplicate records (reissued papers) that dominate the join
// at τ ≥ 0.8.
func DBLPLike(n int, seed uint64) (Dataset, error) {
	cfg := corpus.Config{
		N:            n,
		Vocab:        56000,
		Stopwords:    40,
		Topics:       400,
		TopicVocab:   300,
		TopicZipf:    1.05,
		TopicsPerDoc: 2,
		StopwordRate: 0.35,
		StopwordZipf: 0.9,
		MeanLen:      14,
		MinLen:       3,
		MaxLen:       219,
		LenSpread:    0.35,
		NearDupRate:  0.012,
		NearDupEdits: 2,
		ExactDupRate: 0.008,
	}
	docs, err := corpus.Generate(cfg, seed)
	if err != nil {
		return Dataset{}, fmt.Errorf("dataset: dblp: %w", err)
	}
	return Dataset{Name: "dblp", Vectors: corpus.Binary(docs), RecommendedK: 20}, nil
}

// NYTLike mimics the NYTimes corpus: long documents (avg ~232 features) over
// a ~100k vocabulary with TF-IDF weights, strong topical structure, and some
// syndicated near-duplicates.
func NYTLike(n int, seed uint64) (Dataset, error) {
	cfg := corpus.Config{
		N:            n,
		Vocab:        100000,
		Stopwords:    120,
		Topics:       150,
		TopicVocab:   2000,
		TopicZipf:    1.1,
		TopicsPerDoc: 3,
		StopwordRate: 0.4,
		StopwordZipf: 0.8,
		MeanLen:      232,
		MinLen:       40,
		MaxLen:       1200,
		LenSpread:    0.3,
		NearDupRate:  0.012,
		NearDupEdits: 20,
		ExactDupRate: 0.003,
	}
	docs, err := corpus.Generate(cfg, seed)
	if err != nil {
		return Dataset{}, fmt.Errorf("dataset: nyt: %w", err)
	}
	vecs, err := corpus.TFIDF(docs)
	if err != nil {
		return Dataset{}, fmt.Errorf("dataset: nyt: %w", err)
	}
	return Dataset{Name: "nyt", Vectors: vecs, RecommendedK: 20}, nil
}

// PubMedLike mimics the PubMed corpus of App. C.4: TF-IDF abstracts over a
// ~140k vocabulary that are largely dissimilar (many narrow topics, weak
// stop-word head), the regime where the paper recommends small k (= 5).
func PubMedLike(n int, seed uint64) (Dataset, error) {
	cfg := corpus.Config{
		N:            n,
		Vocab:        140000,
		Stopwords:    60,
		Topics:       1200,
		TopicVocab:   800,
		TopicZipf:    1.0,
		TopicsPerDoc: 2,
		StopwordRate: 0.15,
		StopwordZipf: 0.8,
		MeanLen:      120,
		MinLen:       20,
		MaxLen:       600,
		LenSpread:    0.3,
		NearDupRate:  0.006,
		NearDupEdits: 10,
		ExactDupRate: 0.002,
	}
	docs, err := corpus.Generate(cfg, seed)
	if err != nil {
		return Dataset{}, fmt.Errorf("dataset: pubmed: %w", err)
	}
	vecs, err := corpus.TFIDF(docs)
	if err != nil {
		return Dataset{}, fmt.Errorf("dataset: pubmed: %w", err)
	}
	return Dataset{Name: "pubmed", Vectors: vecs, RecommendedK: 5}, nil
}
