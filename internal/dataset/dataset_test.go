package dataset

import (
	"testing"

	"lshjoin/internal/corpus"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/vecmath"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range Kinds() {
		d, err := Generate(kind, 200, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if d.N() != 200 {
			t.Errorf("%s: n = %d", kind, d.N())
		}
		if d.Name != string(kind) {
			t.Errorf("%s: name %q", kind, d.Name)
		}
		if d.RecommendedK <= 0 {
			t.Errorf("%s: no recommended k", kind)
		}
		for i, v := range d.Vectors {
			if v.IsZero() {
				t.Errorf("%s: vector %d is zero", kind, i)
			}
		}
	}
	if _, err := Generate("bogus", 10, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDBLPShape(t *testing.T) {
	d, err := DBLPLike(2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := corpus.Describe(d.Vectors)
	if s.AvgNNZ < 8 || s.AvgNNZ > 22 {
		t.Errorf("avg features %v, paper reports ~14", s.AvgNNZ)
	}
	if s.MinNNZ < 1 {
		t.Errorf("min features %d", s.MinNNZ)
	}
	if s.MaxNNZ > 219 {
		t.Errorf("max features %d exceeds paper bound 219", s.MaxNNZ)
	}
	// Binary vectors: all weights are 1.
	for _, e := range d.Vectors[0].Entries() {
		if e.Weight != 1 {
			t.Fatalf("DBLP vectors must be binary, got weight %v", e.Weight)
		}
	}
}

func TestNYTShape(t *testing.T) {
	d, err := NYTLike(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := corpus.Describe(d.Vectors)
	if s.AvgNNZ < 80 || s.AvgNNZ > 400 {
		t.Errorf("avg features %v, paper reports ~232", s.AvgNNZ)
	}
	// TF-IDF vectors: weights vary.
	varied := false
	for _, e := range d.Vectors[0].Entries() {
		if e.Weight != d.Vectors[0].Entries()[0].Weight {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("NYT vectors should have varied TF-IDF weights")
	}
}

// TestSimilaritySkewShape verifies the property the whole paper hinges on:
// join size falls by orders of magnitude as τ rises, yet stays non-zero at
// τ = 0.9 (the near/exact duplicates).
func TestSimilaritySkewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skew check is moderately expensive")
	}
	d, err := DBLPLike(4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	j := exactjoin.NewJoiner(d.Vectors)
	counts, err := j.Counts([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	m := float64(j.M())
	selLow := float64(counts[0]) / m
	selMid := float64(counts[1]) / m
	selHigh := float64(counts[2]) / m
	if selLow < 0.005 {
		t.Errorf("selectivity at τ=0.1 is %v; want a fat low end", selLow)
	}
	if counts[2] == 0 {
		t.Error("no true pairs at τ=0.9; duplicates missing")
	}
	if !(selLow > 50*selMid && selMid > 3*selHigh) {
		t.Errorf("selectivity not skewed: %v / %v / %v", selLow, selMid, selHigh)
	}
	if float64(counts[2]) > 0.001*m {
		t.Errorf("τ=0.9 join too large (%d of %.0f pairs); high-threshold regime lost", counts[2], m)
	}
}

func TestPubMedLargelyDissimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("dissimilarity check is moderately expensive")
	}
	d, err := PubMedLike(1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	j := exactjoin.NewJoiner(d.Vectors)
	c, err := j.CountAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sel := float64(c) / float64(j.M())
	if sel > 0.01 {
		t.Errorf("PubMed-like selectivity at τ=0.5 is %v; should be largely dissimilar", sel)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, _ := DBLPLike(100, 5)
	b, _ := DBLPLike(100, 5)
	for i := range a.Vectors {
		if !vecmath.Equal(a.Vectors[i], b.Vectors[i]) {
			t.Fatalf("vector %d differs between runs", i)
		}
	}
}
