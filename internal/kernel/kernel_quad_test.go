package kernel

import (
	"math"
	"testing"
)

// fill32 mirrors fill64's adversarial mix in the float32 lane.
func fill32(rng *testRNG, s []float32) {
	for i := range s {
		switch rng.Intn(20) {
		case 0:
			s[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
		case 1:
			s[i] = float32(math.NaN())
		case 2:
			s[i] = float32(rng.Norm()) * 1e30
		case 3:
			s[i] = float32(rng.Norm()) * 1e-30
		default:
			s[i] = float32(rng.Norm())
		}
	}
}

// zeroEq32 is zeroEq in the float32 lane.
func zeroEq32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b) || (a == 0 && b == 0)
}

// nanEq is bitwise equality except that any NaN matches any NaN: with three
// chained adds the compiler is free to swap commutative operands between
// separately compiled expressions, and x86 resolves two-NaN operations from
// src1 — so NaN sign/payload is not stable across forms even in pure Go.
// Every non-NaN result (including infinities and zeros signs) must still
// match bit for bit.
func nanEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

func nanEq32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b) ||
		(math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
}

func refF64MulAdd4(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64) {
	for j := range dst {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

func refF32MulAdd4(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32) {
	for j := range dst {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// TestF64MulAdd4MatchesScalar sweeps lengths 0..67 with adversarial values
// and pins the quad fold to its definitional association — which must also
// equal four sequential single folds, the order the naive signing path uses.
func TestF64MulAdd4MatchesScalar(t *testing.T) {
	rng := newTestRNG(11)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float64, n)
			rows := make([][]float64, 4)
			fill64(rng, dst)
			for i := range rows {
				rows[i] = make([]float64, n)
				fill64(rng, rows[i])
			}
			w1, w2, w3, w4 := rng.Norm(), rng.Norm(), rng.Norm(), rng.Norm()

			want := append([]float64(nil), dst...)
			refF64MulAdd4(want, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			got := append([]float64(nil), dst...)
			F64MulAdd4(got, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			seq := append([]float64(nil), dst...)
			refF64MulAdd(seq, rows[0], w1)
			refF64MulAdd(seq, rows[1], w2)
			refF64MulAdd(seq, rows[2], w3)
			refF64MulAdd(seq, rows[3], w4)
			for j := range want {
				if !nanEq(want[j], got[j]) {
					t.Fatalf("%s: F64MulAdd4 n=%d lane %d: %x != %x", Impl, n, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
				if !nanEq(seq[j], got[j]) {
					t.Fatalf("%s: F64MulAdd4 n=%d lane %d differs from sequential folds", Impl, n, j)
				}
			}

			wantSet := make([]float64, n)
			refF64MulAdd4(wantSet, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			gotSet := make([]float64, n)
			fill64(rng, gotSet) // Set must overwrite whatever is there
			F64MulAdd4Set(gotSet, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			for j := range wantSet {
				if !zeroEq(wantSet[j], gotSet[j]) && !(math.IsNaN(wantSet[j]) && math.IsNaN(gotSet[j])) {
					t.Fatalf("%s: F64MulAdd4Set n=%d lane %d: %x != %x", Impl, n, j,
						math.Float64bits(gotSet[j]), math.Float64bits(wantSet[j]))
				}
			}
		}
	}
}

// TestF32MulAdd4MatchesScalar is the float32-lane counterpart.
func TestF32MulAdd4MatchesScalar(t *testing.T) {
	rng := newTestRNG(12)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float32, n)
			rows := make([][]float32, 4)
			fill32(rng, dst)
			for i := range rows {
				rows[i] = make([]float32, n)
				fill32(rng, rows[i])
			}
			w1, w2 := float32(rng.Norm()), float32(rng.Norm())
			w3, w4 := float32(rng.Norm()), float32(rng.Norm())

			want := append([]float32(nil), dst...)
			refF32MulAdd4(want, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			got := append([]float32(nil), dst...)
			F32MulAdd4(got, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			seq := append([]float32(nil), dst...)
			refF32MulAdd(seq, rows[0], w1)
			refF32MulAdd(seq, rows[1], w2)
			refF32MulAdd(seq, rows[2], w3)
			refF32MulAdd(seq, rows[3], w4)
			for j := range want {
				if !nanEq32(want[j], got[j]) {
					t.Fatalf("%s: F32MulAdd4 n=%d lane %d: %x != %x", Impl, n, j,
						math.Float32bits(got[j]), math.Float32bits(want[j]))
				}
				if !nanEq32(seq[j], got[j]) {
					t.Fatalf("%s: F32MulAdd4 n=%d lane %d differs from sequential folds", Impl, n, j)
				}
			}

			wantSet := make([]float32, n)
			refF32MulAdd4(wantSet, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			gotSet := make([]float32, n)
			fill32(rng, gotSet)
			F32MulAdd4Set(gotSet, rows[0], rows[1], rows[2], rows[3], w1, w2, w3, w4)
			for j := range wantSet {
				if !zeroEq32(wantSet[j], gotSet[j]) && !nanEq32(wantSet[j], gotSet[j]) {
					t.Fatalf("%s: F32MulAdd4Set n=%d lane %d: %x != %x", Impl, n, j,
						math.Float32bits(gotSet[j]), math.Float32bits(wantSet[j]))
				}
			}
		}
	}
}
