package kernel

import "testing"

// mix64ref is the SplitMix64 finalizer the gauss prep kernel must reproduce
// bit for bit (xrand.Mix64, restated here to keep the package dependency-free).
func mix64ref(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func prepInputs(k, rows int) (pres []uint64, dims []uint32) {
	pres = make([]uint64, k)
	for i := range pres {
		pres[i] = uint64(i)*0x9E3779B97F4A7C15 + 0xABCD
	}
	dims = make([]uint32, rows)
	for i := range dims {
		dims[i] = uint32(i*7919 + 13)
	}
	return pres, dims
}

// The vector prep kernel must agree with the scalar hash chain on every
// (row, lane) pair, across both the 8-wide and 4-wide code paths.
func TestGaussPrepBitExact(t *testing.T) {
	for _, k := range []int{4, 8, 12, 20, 32} {
		if !GaussPrepSize(k) {
			t.Skipf("no gauss prep kernel in %s build", Impl)
		}
		for _, rows := range []int{1, 3, 17} {
			pres, dims := prepInputs(k, rows)
			hv := make([]uint64, rows*k)
			mu := make([]uint64, rows*k)
			GaussPrep(hv, mu, pres, dims)
			for r, d := range dims {
				m := uint64(d) * 0xA0761D6478BD642F
				for f := 0; f < k; f++ {
					h := mix64ref(pres[f]^m) >> 11
					b := h >> 52
					wantMu := h<<1 + 1 - b + (b&h&1)<<1
					if hv[r*k+f] != h || mu[r*k+f] != wantMu {
						t.Fatalf("k=%d rows=%d r=%d f=%d: hv=%#x want %#x, mu=%#x want %#x",
							k, rows, r, f, hv[r*k+f], h, mu[r*k+f], wantMu)
					}
				}
			}
		}
	}
}

// The vector interpolation kernel must reproduce the scalar table lookup —
// same two roundings per central lane — and flag exactly the tail lanes.
func TestGaussInterpBitExact(t *testing.T) {
	if !GaussPrepSize(4) {
		t.Skipf("no gauss interp kernel in %s build", Impl)
	}
	const slots = 256 // smaller table than production so tails are frequent
	const tailSlots = 16
	tab := make([][2]float64, slots)
	rng := newTestRNG(7)
	for s := range tab {
		tab[s][0] = rng.Norm()
		tab[s][1] = rng.Norm() * 0.25
	}
	for _, n := range []int{4, 8, 20, 1024} {
		mu := make([]uint64, n)
		for i := range mu {
			// Random 53-bit hv through the same mu construction as the prep
			// kernel, scaled so slots land across the whole (small) table.
			h := rng.Uint64() >> 11
			b := h >> 52
			m := h<<1 + 1 - b + (b&h&1)<<1
			// Production mu spans 4096 slots at mu>>42; remap into [0, slots).
			mu[i] = m % (uint64(slots) << 42)
		}
		out := make([]float64, n)
		tails := make([]byte, n/4)
		GaussInterp(out, mu, tails, tab, tailSlots)
		const fracMask = 1<<42 - 1
		for i, m := range mu {
			slot := int(m >> 42)
			isTail := slot < tailSlots || slot >= slots-tailSlots
			gotTail := tails[i/4]&(1<<(i%4)) != 0
			if gotTail != isTail {
				t.Fatalf("n=%d lane %d slot %d: tail flag %v, want %v", n, i, slot, gotTail, isTail)
			}
			if isTail {
				continue // output is garbage by contract
			}
			e := &tab[slot]
			want := e[0] + float64(m&fracMask)*(0x1p-42)*e[1]
			if out[i] != want {
				t.Fatalf("n=%d lane %d slot %d: out %x, want %x", n, i, slot, out[i], want)
			}
		}
	}
}

func BenchmarkGaussPrep(b *testing.B) {
	const k, rows = 20, 2000
	if !GaussPrepSize(k) {
		b.Skipf("no gauss prep kernel in %s build", Impl)
	}
	pres, dims := prepInputs(k, rows)
	hv := make([]uint64, rows*k)
	mu := make([]uint64, rows*k)
	b.SetBytes(int64(rows * k * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussPrep(hv, mu, pres, dims)
	}
}

func BenchmarkGaussPrepScalarRef(b *testing.B) {
	const k, rows = 20, 2000
	pres, dims := prepInputs(k, rows)
	hv := make([]uint64, rows*k)
	mu := make([]uint64, rows*k)
	b.SetBytes(int64(rows * k * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r, d := range dims {
			m := uint64(d) * 0xA0761D6478BD642F
			for f := 0; f < k; f++ {
				h := mix64ref(pres[f]^m) >> 11
				bb := h >> 52
				hv[r*k+f] = h
				mu[r*k+f] = h<<1 + 1 - bb + (bb&h&1)<<1
			}
		}
	}
}
