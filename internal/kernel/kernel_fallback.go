//go:build !amd64 && !purego

package kernel

// useAVX2 is constant-false off amd64, so the dispatch branches in the
// unrolled bodies compile away and the stubs below are never reached.
const useAVX2 = false

func f64MulAddAVX2(dst, row *float64, n int, w float64) {
	panic("kernel: no asm")
}

func f64MulAdd2AVX2(dst, r1, r2 *float64, n int, w1, w2 float64) {
	panic("kernel: no asm")
}

func f64MulAdd4AVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64) {
	panic("kernel: no asm")
}

func f64MulAddSetAVX2(dst, row *float64, n int, w float64) {
	panic("kernel: no asm")
}

func f64MulAdd2SetAVX2(dst, r1, r2 *float64, n int, w1, w2 float64) {
	panic("kernel: no asm")
}

func f64MulAdd4SetAVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64) {
	panic("kernel: no asm")
}
