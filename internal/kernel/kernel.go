// Package kernel holds the vectorizable inner loops of batch signing: the
// multiply-add accumulation that projects a vector entry onto a fused row of
// ℓ·k hyperplane components (SimHash) and the element-wise min scan that
// folds a row of keyed ranks into the running minima (MinHash). These loops
// dominate corpus signing once keyed-stream values are cached per dimension,
// so they are written gonum-style: manually unrolled 4-wide with the
// remainder peeled, bounds checks hoisted by reslicing, and independent
// accumulator chains so out-of-order cores overlap the latency.
//
// Every kernel documents — and the purego fallback preserves — its exact
// floating-point evaluation order, because the signature engine's acceptance
// bar is byte-identical signatures to the naive per-vector path: for a given
// lane index j, contributions must fold in exactly the order given, with one
// rounding per multiply and one per add. Unrolling across j is always safe
// (lanes are independent); unrolling across *calls* is the caller's business
// and must keep the per-lane order too, which is why the fused two-entry
// variants (F64MulAdd2, U64Min2) exist: they halve the accumulator
// load/store traffic while evaluating (dst[j] + w1·r1[j]) + w2·r2[j] in that
// exact association.
//
// Builds tagged `purego` swap every unrolled body for the plain range loop
// (kernel_purego.go), keeping a reference implementation compiled and tested
// in CI; kernel_test.go proves the two produce bit-identical results on
// randomized lengths, including the NaN/Inf edge cases the engine can feed
// through non-finite weights. Impl names the compiled-in implementation so
// the engine can report which kernels it selected at construction.
package kernel
